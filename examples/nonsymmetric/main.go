// Nonsymmetric: the paper's closing claim — "the full benefit of
// hypergraph partitioning is realized on unsymmetric and non-square
// problems that cannot be represented easily with graph models." This
// example builds a directed dataflow computation (producers feed
// consumers; dependencies are one-way, like a PageRank sweep or a
// triangular solve), repartitions it across epochs of drift with both the
// hypergraph model and the graph baseline (which must symmetrize), and
// reports the TRUE communication volume each achieves.
package main

import (
	"fmt"
	"log"
	"math/rand"

	"hyperbal"
)

const (
	n      = 2000
	k      = 8
	alpha  = 50
	epochs = 4
)

func main() {
	// Directed dependencies: consumer i reads from a few producers. The
	// hypergraph model is exact: net j = {producer j} ∪ {its consumers},
	// cost = 1 word per consumer part (connectivity-1).
	deps := buildDeps(n, 42)
	h := depsHypergraph(deps)
	fmt.Printf("directed dataflow: %d tasks, %d dependencies (non-symmetric)\n\n",
		n, countDeps(deps))

	for _, m := range []hyperbal.Method{hyperbal.HypergraphRepart, hyperbal.GraphRepart} {
		comm, mig := runEpochs(deps, h, m)
		fmt.Printf("%-18s  true comm/epoch %6.0f   migration/epoch %6.0f   total(α=%d)/epoch %8.0f\n",
			m, comm, mig, alpha, float64(alpha)*comm+mig)
	}
	fmt.Println("\nThe graph method partitions the symmetrized clique expansion, so it")
	fmt.Println("optimizes a distorted objective; the hypergraph method optimizes the")
	fmt.Println("true one-way communication volume directly (paper, Section 6).")
}

// runEpochs drifts the dependency structure each epoch and repartitions,
// returning average true communication and migration volumes.
func runEpochs(deps [][]int, h *hyperbal.Hypergraph, m hyperbal.Method) (avgComm, avgMig float64) {
	bal, err := hyperbal.NewBalancer(hyperbal.BalancerConfig{
		K: k, Alpha: alpha, Seed: 7, Method: m,
	})
	if err != nil {
		log.Fatal(err)
	}
	prob := hyperbal.Problem{H: h}
	first, err := bal.Partition(prob)
	if err != nil {
		log.Fatal(err)
	}
	old := first.Partition
	rng := rand.New(rand.NewSource(99))
	cur := deps
	for e := 1; e <= epochs; e++ {
		cur = drift(cur, rng)
		h2 := depsHypergraph(cur)
		res, err := bal.Repartition(hyperbal.Problem{H: h2}, old, int64(e))
		if err != nil {
			log.Fatal(err)
		}
		// True communication volume is the hypergraph cut regardless of
		// which model did the partitioning.
		avgComm += float64(hyperbal.CutSize(h2, res.Partition))
		avgMig += float64(res.MigrationVolume)
		old = res.Partition
	}
	return avgComm / epochs, avgMig / epochs
}

// buildDeps creates a layered directed dependency structure with skewed
// fan-out (a few hot producers), deliberately non-symmetric.
func buildDeps(n int, seed int64) [][]int {
	rng := rand.New(rand.NewSource(seed))
	deps := make([][]int, n) // deps[consumer] = producers
	for i := 1; i < n; i++ {
		fan := 1 + rng.Intn(3)
		for f := 0; f < fan; f++ {
			var p int
			if rng.Float64() < 0.2 {
				p = rng.Intn(10) // hot producers
			} else {
				p = rng.Intn(i) // any earlier task
			}
			deps[i] = append(deps[i], p)
		}
	}
	return deps
}

// drift rewires ~10% of the dependencies.
func drift(deps [][]int, rng *rand.Rand) [][]int {
	out := make([][]int, len(deps))
	for i, ps := range deps {
		out[i] = append([]int(nil), ps...)
		for j := range out[i] {
			if rng.Float64() < 0.1 && i > 0 {
				out[i][j] = rng.Intn(i)
			}
		}
	}
	return out
}

// depsHypergraph builds the exact column-net model: one net per producer
// covering the producer and all its consumers.
func depsHypergraph(deps [][]int) *hyperbal.Hypergraph {
	n := len(deps)
	consumers := make([][]int, n)
	for i, ps := range deps {
		for _, p := range ps {
			consumers[p] = append(consumers[p], i)
		}
	}
	b := hyperbal.NewHypergraphBuilder(n)
	for p, cs := range consumers {
		if len(cs) == 0 {
			continue
		}
		b.AddNet(1, append([]int{p}, cs...)...)
	}
	return b.Build()
}

func countDeps(deps [][]int) int {
	t := 0
	for _, ps := range deps {
		t += len(ps)
	}
	return t
}
