// Quickstart: partition a small computation, let it drift, repartition
// with the paper's hypergraph model, and compare against repartitioning
// from scratch.
package main

import (
	"fmt"
	"log"

	"hyperbal"
)

func main() {
	// A 32x32 mesh computation: one vertex per cell, one 2-pin net per
	// neighbor dependency.
	const w, h = 32, 32
	gb := hyperbal.NewGraphBuilder(w * h)
	id := func(x, y int) int { return y*w + x }
	for y := 0; y < h; y++ {
		for x := 0; x < w; x++ {
			if x+1 < w {
				gb.AddEdge(id(x, y), id(x+1, y), 1)
			}
			if y+1 < h {
				gb.AddEdge(id(x, y), id(x, y+1), 1)
			}
		}
	}
	g := gb.Build()
	prob := hyperbal.Problem{G: g, H: hyperbal.GraphToHypergraph(g)}

	// Epoch 1: static partitioning into 8 parts.
	bal, err := hyperbal.NewBalancer(hyperbal.BalancerConfig{
		K: 8, Alpha: 50, Seed: 42, Method: hyperbal.HypergraphRepart,
	})
	if err != nil {
		log.Fatal(err)
	}
	first, err := bal.Partition(prob)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("epoch 1 (static):   comm volume %4d   imbalance %.3f\n",
		first.CommVolume,
		hyperbal.Imbalance(hyperbal.PartWeights(prob.H, first.Partition)))

	// The computation drifts: a hot region doubles its load (e.g. a shock
	// front needing smaller time steps).
	hb := hyperbal.NewHypergraphBuilder(w * h)
	for v := 0; v < w*h; v++ {
		weight := int64(1)
		if x, y := v%w, v/w; x < w/4 && y < h/4 {
			weight = 4
		}
		hb.SetWeight(v, weight)
	}
	for n := 0; n < prob.H.NumNets(); n++ {
		pins := prob.H.Pins(n)
		hb.AddNet(prob.H.Cost(n), int(pins[0]), int(pins[1]))
	}
	drifted := hyperbal.Problem{H: hb.Build()}

	// Epoch 2: repartition with the augmented-hypergraph model (fixed
	// partition vertices + migration nets) versus from scratch.
	repart, err := bal.Repartition(drifted, first.Partition, 1)
	if err != nil {
		log.Fatal(err)
	}
	scratchBal, _ := hyperbal.NewBalancer(hyperbal.BalancerConfig{
		K: 8, Alpha: 50, Seed: 42, Method: hyperbal.HypergraphScratch,
	})
	scratch, err := scratchBal.Repartition(drifted, first.Partition, 1)
	if err != nil {
		log.Fatal(err)
	}

	alpha := int64(50)
	fmt.Printf("epoch 2 repart:     comm %4d  migration %4d  total(α=%d) %6d\n",
		repart.CommVolume, repart.MigrationVolume, alpha, repart.TotalCost(alpha))
	fmt.Printf("epoch 2 scratch:    comm %4d  migration %4d  total(α=%d) %6d\n",
		scratch.CommVolume, scratch.MigrationVolume, alpha, scratch.TotalCost(alpha))
	if repart.TotalCost(alpha) <= scratch.TotalCost(alpha) {
		fmt.Println("-> the repartitioning hypergraph model wins (as in the paper)")
	} else {
		fmt.Println("-> scratch won this instance (can happen at large α)")
	}
}
