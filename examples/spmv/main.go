// SpMV: partition a non-symmetric sparse matrix for parallel y = A·x with
// the column-net hypergraph model, then actually run the distributed SpMV
// over the in-process message-passing substrate and verify that the
// measured communication equals the connectivity-1 cut — the property
// ("hypergraphs accurately model the actual communication cost") the
// paper's model builds on. A clique-expanded graph partition of the same
// matrix is shown for contrast.
package main

import (
	"fmt"
	"log"
	"math/rand"
	"sync/atomic"

	"hyperbal"
)

const (
	n = 1200 // square matrix dimension
	k = 4    // parts
)

func main() {
	rows, cols := synthMatrix(n, 9973)

	// Column-net model: vertex i = row i (owns y_i and x_i); net j = column
	// j, pinning every row that needs x_j, plus row j itself (the owner of
	// x_j). Cutting net j with connectivity λ means the owner sends x_j to
	// λ-1 other parts.
	hb := hyperbal.NewHypergraphBuilder(n)
	for j := 0; j < n; j++ {
		pins := append([]int{j}, cols[j]...)
		hb.AddNet(1, pins...)
	}
	h := hb.Build()

	p, err := hyperbal.PartitionHypergraph(h, hyperbal.HGPOptions{K: k, Seed: 3})
	if err != nil {
		log.Fatal(err)
	}
	cut := hyperbal.CutSize(h, p)
	weights := hyperbal.PartWeights(h, p)
	fmt.Printf("matrix: %dx%d, %d nonzeros (non-symmetric)\n", n, n, nnz(rows))
	fmt.Printf("hypergraph partition: k=%d cut=%d imbalance=%.3f\n", k, cut, hyperbal.Imbalance(weights))

	// Run the actual distributed SpMV and count every x_j value shipped.
	var sent atomic.Int64
	err = hyperbal.RunWorld(k, func(c *hyperbal.Comm) error {
		s, err := distributedSpMV(c, rows, p)
		sent.Add(s)
		return err
	})
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("measured SpMV communication: %d values\n", sent.Load())
	if sent.Load() == cut {
		fmt.Println("-> measured communication == connectivity-1 cut (exact, as the model promises)")
	} else {
		fmt.Printf("-> MISMATCH: cut %d vs measured %d\n", cut, sent.Load())
	}

	// Contrast: a graph partitioner on the clique-expanded symmetrized
	// matrix can only approximate this objective.
	g := hyperbal.HypergraphToGraph(h, 32)
	gp, err := hyperbal.PartitionGraph(g, hyperbal.GPOptions{K: k, Seed: 3})
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("graph-model partition of the same matrix: true comm volume %d (vs %d hypergraph)\n",
		hyperbal.CutSize(h, gp), cut)
}

// synthMatrix builds a random sparse non-symmetric matrix with local
// banding plus scattered long-range entries. rows[i] lists the column
// indices of row i (excluding the diagonal); cols is the transpose.
func synthMatrix(n int, seed int64) (rows [][]int, cols [][]int) {
	rng := rand.New(rand.NewSource(seed))
	rows = make([][]int, n)
	cols = make([][]int, n)
	add := func(i, j int) {
		if i == j {
			return
		}
		rows[i] = append(rows[i], j)
		cols[j] = append(cols[j], i)
	}
	for i := 0; i < n; i++ {
		for d := 1; d <= 3; d++ { // band
			if i+d < n {
				add(i, i+d)
			}
		}
		for e := 0; e < 2; e++ { // non-symmetric long-range deps
			add(i, rng.Intn(n))
		}
	}
	return rows, cols
}

func nnz(rows [][]int) int {
	t := 0
	for _, r := range rows {
		t += len(r)
	}
	return t
}

// distributedSpMV executes y = A·x with rows distributed by p. Each rank
// first ships the x values other parts need (one message per destination
// part, deduplicated — exactly the communication the cut counts), then
// computes its rows. Returns the number of x values this rank sent.
func distributedSpMV(c *hyperbal.Comm, rows [][]int, p hyperbal.Partition) (int64, error) {
	me := c.Rank()
	x := make([]float64, len(rows))
	for i := range x {
		if p.Of(i) == me {
			x[i] = float64(i) + 1
		}
	}
	// Which of my x values does each other part need? Part q needs x_j
	// (owned by me) iff some row i with p.Of(i)==q references column j.
	need := make([]map[int]struct{}, c.Size())
	for q := range need {
		need[q] = make(map[int]struct{})
	}
	for i, cs := range rows {
		q := p.Of(i)
		for _, j := range cs {
			if p.Of(j) != q {
				need[q][j] = struct{}{}
			}
		}
	}
	// Ship owned values (index+value pairs) to each needing part.
	type xval struct {
		J int32
		V float64
	}
	var sent int64
	out := make([][]xval, c.Size())
	for q := 0; q < c.Size(); q++ {
		if q == me {
			continue
		}
		for j := range need[q] {
			if p.Of(j) == me {
				out[q] = append(out[q], xval{int32(j), x[j]})
				sent++
			}
		}
	}
	// Alltoall-style exchange via the collective helper on the comm.
	in := alltoall(c, out)
	for _, vals := range in {
		for _, xv := range vals {
			x[xv.J] = xv.V
		}
	}
	// Local compute.
	y := make([]float64, len(rows))
	for i, cs := range rows {
		if p.Of(i) != me {
			continue
		}
		for _, j := range cs {
			y[i] += x[j]
		}
	}
	return sent, nil
}

// alltoall exchanges per-destination buffers (thin wrapper to keep the
// example self-contained over the public Comm API).
func alltoall[T any](c *hyperbal.Comm, out [][]T) [][]T {
	in := make([][]T, c.Size())
	in[c.Rank()] = out[c.Rank()]
	for q := 0; q < c.Size(); q++ {
		if q != c.Rank() {
			c.Send(q, 1, out[q])
		}
	}
	for q := 0; q < c.Size(); q++ {
		if q != c.Rank() {
			in[q] = c.Recv(q, 1).([]T)
		}
	}
	return in
}
