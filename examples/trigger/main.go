// Trigger: threshold-driven rebalancing with a Session. A long-running
// simulation drifts slowly; instead of repartitioning every epoch, the
// session only rebalances when the measured imbalance crosses a
// threshold — the "periodically re-balance" workflow of the paper's
// introduction, with the decision automated.
package main

import (
	"fmt"
	"log"

	"hyperbal"
)

const (
	k     = 6
	alpha = 200
	steps = 12 // drift steps (potential rebalance points)
)

func main() {
	base, err := hyperbal.GenerateDataset("cage14", 2500, 3)
	if err != nil {
		log.Fatal(err)
	}
	prob := hyperbal.Problem{G: base, H: hyperbal.GraphToHypergraph(base)}

	bal, err := hyperbal.NewBalancer(hyperbal.BalancerConfig{
		K: k, Alpha: alpha, Seed: 9, Method: hyperbal.HypergraphRepart, Imbalance: 0.05,
	})
	if err != nil {
		log.Fatal(err)
	}
	sess, first, err := hyperbal.NewSession(bal, prob)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("static partition: comm %d, imbalance threshold %.2f\n\n",
		first.CommVolume, sess.Threshold)
	fmt.Printf("%5s %10s %12s %s\n", "step", "imbalance", "action", "result")

	// Drift: one region's weights creep up a little every step.
	weights := make([]int64, prob.H.NumVertices())
	for v := range weights {
		weights[v] = 1
	}
	rebalances := 0
	for step := 1; step <= steps; step++ {
		for v := 0; v < len(weights)/6; v++ {
			weights[v]++ // hot region grows
		}
		drifted := rebuildWithWeights(prob.H, weights)
		cur := hyperbal.Problem{H: drifted}

		w := hyperbal.PartWeights(drifted, sess.Current())
		imb := hyperbal.Imbalance(w)
		should, err := sess.ShouldRebalance(cur)
		if err != nil {
			log.Fatal(err)
		}
		if !should {
			fmt.Printf("%5d %9.3f  %12s\n", step, imb, "skip")
			continue
		}
		res, err := sess.Rebalance(cur)
		if err != nil {
			log.Fatal(err)
		}
		rebalances++
		nw := hyperbal.PartWeights(drifted, res.Partition)
		fmt.Printf("%5d %9.3f  %12s comm=%d mig=%d imbalance %.3f -> %.3f\n",
			step, imb, "REBALANCE", res.CommVolume, res.MigrationVolume,
			imb, hyperbal.Imbalance(nw))
	}
	fmt.Printf("\n%d rebalances over %d steps; session total cost(α=%d) = %d\n",
		rebalances, steps, alpha, sess.TotalCost(alpha))
}

// rebuildWithWeights clones the hypergraph structure with new weights.
func rebuildWithWeights(h *hyperbal.Hypergraph, weights []int64) *hyperbal.Hypergraph {
	b := hyperbal.NewHypergraphBuilder(h.NumVertices())
	for v := 0; v < h.NumVertices(); v++ {
		b.SetWeight(v, weights[v])
		b.SetSize(v, h.Size(v))
	}
	for n := 0; n < h.NumNets(); n++ {
		pins := h.Pins(n)
		ip := make([]int, len(pins))
		for i, p := range pins {
			ip[i] = int(p)
		}
		b.AddNet(h.Cost(n), ip...)
	}
	return b.Build()
}
