// AMR: a simulated adaptive-mesh-refinement run — the motivating workload
// of the paper's introduction. A 3D mesh computation repeatedly refines
// random regions (vertex weights and sizes grow), and a Balancer
// periodically rebalances. The example tracks the total execution time
// model t_tot = α(t_comp + t_comm) + t_mig + t_repart for the paper's
// method and both baselines.
package main

import (
	"fmt"
	"log"

	"hyperbal"
)

const (
	k      = 8   // parts ("processors" of the simulated application)
	alpha  = 100 // iterations per epoch
	epochs = 5   // load-balance operations
)

func main() {
	mesh, err := hyperbal.GenerateDataset("auto", 3000, 7)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("AMR mesh: %d cells, %d dependencies; %d parts, α=%d, %d epochs\n\n",
		mesh.NumVertices(), mesh.NumEdges(), k, alpha, epochs)

	methods := []hyperbal.Method{
		hyperbal.HypergraphRepart,
		hyperbal.GraphRepart,
		hyperbal.HypergraphScratch,
	}
	fmt.Printf("%-18s %12s %12s %14s %12s\n", "method", "Σ comm", "Σ migration", "Σ total(α)", "t_tot (s)")
	for _, m := range methods {
		comm, mig, total, seconds := run(mesh, m)
		fmt.Printf("%-18s %12d %12d %14d %12.3f\n", m, comm, mig, total, seconds)
	}
	fmt.Println("\nΣ total(α) = Σ over epochs of α·comm + migration (the paper's objective).")
}

// run plays the full AMR simulation with one method and returns the
// accumulated communication volume, migration volume, total cost and
// modeled wall-clock seconds.
func run(mesh *hyperbal.Graph, m hyperbal.Method) (comm, mig, total int64, seconds float64) {
	bal, err := hyperbal.NewBalancer(hyperbal.BalancerConfig{
		K: k, Alpha: alpha, Seed: 11, Method: m,
	})
	if err != nil {
		log.Fatal(err)
	}
	prob := hyperbal.Problem{G: mesh, H: hyperbal.GraphToHypergraph(mesh)}
	static, err := bal.Partition(prob)
	if err != nil {
		log.Fatal(err)
	}
	// The paper's "simulated mesh refinement": 10% of the parts refine each
	// epoch, scaling weight and size to 1.5-7.5x the original.
	gen, err := hyperbal.NewRefinementDynamics(mesh, static.Partition, k, 0.1, 1.5, 7.5, 13)
	if err != nil {
		log.Fatal(err)
	}
	model := hyperbal.DefaultCostModel
	for epoch := 1; epoch <= epochs; epoch++ {
		eprob, old := gen.Next()
		res, err := bal.Repartition(eprob, old, int64(epoch))
		if err != nil {
			log.Fatal(err)
		}
		if err := gen.Observe(res.Partition); err != nil {
			log.Fatal(err)
		}
		comm += res.CommVolume
		mig += res.MigrationVolume
		total += res.TotalCost(alpha)
		seconds += model.Evaluate(res, alpha).Total()
	}
	return comm, mig, total, seconds
}
