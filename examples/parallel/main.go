// Parallel: run the parallel multilevel hypergraph partitioner with fixed
// vertices on an SPMD world (the paper's Section 4 contribution), then
// execute the resulting data migration plan rank-to-rank, and report the
// partitioner's own communication footprint.
package main

import (
	"fmt"
	"log"
	"sync"

	"hyperbal"
)

const (
	ranks = 8
	alpha = 20
)

func main() {
	mesh, err := hyperbal.GenerateDataset("cage14", 4000, 5)
	if err != nil {
		log.Fatal(err)
	}
	h := hyperbal.GraphToHypergraph(mesh)
	fmt.Printf("problem: %d vertices, %d nets; %d ranks (one part per rank)\n",
		h.NumVertices(), h.NumNets(), ranks)

	// Phase 1: parallel static partitioning.
	var old hyperbal.Partition
	var mu sync.Mutex
	stats, err := hyperbal.RunWorldStats(ranks, func(c *hyperbal.Comm) error {
		p, err := hyperbal.ParallelPartitionHypergraph(c, h, hyperbal.PHGOptions{
			Serial: hyperbal.HGPOptions{K: ranks, Imbalance: 0.05, Seed: 17},
		})
		if err != nil {
			return err
		}
		if c.Rank() == 0 {
			mu.Lock()
			old = p
			mu.Unlock()
		}
		return nil
	})
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("static partition: cut=%d imbalance=%.3f\n",
		hyperbal.CutSize(h, old),
		hyperbal.Imbalance(hyperbal.PartWeights(h, old)))
	fmt.Printf("partitioner traffic: %d messages, %d bytes\n",
		stats.Messages.Load(), stats.Bytes.Load())

	// Phase 2: the problem drifts (weights change); build the augmented
	// repartitioning hypergraph and solve it in parallel with its fixed
	// partition vertices.
	drift := hyperbal.NewHypergraphBuilder(h.NumVertices())
	for v := 0; v < h.NumVertices(); v++ {
		w := h.Weight(v)
		if v%7 == 0 {
			w *= 3
		}
		drift.SetWeight(v, w)
		drift.SetSize(v, h.Size(v))
	}
	for nID := 0; nID < h.NumNets(); nID++ {
		pins := h.Pins(nID)
		ip := make([]int, len(pins))
		for i, q := range pins {
			ip[i] = int(q)
		}
		drift.AddNet(h.Cost(nID), ip...)
	}
	h2 := drift.Build()

	r, err := hyperbal.BuildRepartition(h2, old, ranks, alpha)
	if err != nil {
		log.Fatal(err)
	}
	var next hyperbal.Partition
	err = hyperbal.RunWorld(ranks, func(c *hyperbal.Comm) error {
		aug, err := hyperbal.ParallelPartitionHypergraph(c, r.H, hyperbal.PHGOptions{
			Serial: hyperbal.HGPOptions{K: ranks, Imbalance: 0.05, Seed: 19},
		})
		if err != nil {
			return err
		}
		if c.Rank() == 0 {
			p, mig, err := r.Decode(h2, aug)
			if err != nil {
				return err
			}
			mu.Lock()
			next = p
			mu.Unlock()
			fmt.Printf("repartition (α=%d): comm=%d migration=%d (moved %d vertices)\n",
				alpha, hyperbal.CutSize(h2, p), mig.Volume, mig.Moved)
		}
		return nil
	})
	if err != nil {
		log.Fatal(err)
	}

	// Phase 3: actually move the data.
	plan, err := hyperbal.NewMigrationPlan(h2, old, next)
	if err != nil {
		log.Fatal(err)
	}
	stores := buildStores(h2, old)
	var received int64
	err = hyperbal.RunWorld(ranks, func(c *hyperbal.Comm) error {
		got, err := hyperbal.ExecuteMigration(c, plan, stores[c.Rank()])
		if err != nil {
			return err
		}
		mu.Lock()
		received += int64(got)
		mu.Unlock()
		return nil
	})
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("migration executed: %d vertices relocated (plan volume %d, max inbound %d)\n",
		received, plan.TotalVolume(), plan.MaxInbound())
}

func buildStores(h *hyperbal.Hypergraph, owner hyperbal.Partition) []hyperbal.VertexStore {
	stores := make([]hyperbal.VertexStore, owner.K)
	for i := range stores {
		stores[i] = make(hyperbal.VertexStore)
	}
	for v := 0; v < h.NumVertices(); v++ {
		stores[owner.Of(v)][int32(v)] = make([]byte, h.Size(v))
	}
	return stores
}
