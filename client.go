package hyperbal

// The balancerd client: a thin, retrying HTTP client for the serving tier
// (cmd/balancerd, internal/server). It lives in the public façade so
// applications consume the service without importing internal packages:
//
//	c := hyperbal.NewClient("http://localhost:8080", hyperbal.ClientOptions{})
//	sess, first, _ := c.CreateSession(ctx, hyperbal.BalancerConfig{K: 8, Alpha: 100}, h)
//	// ... application epoch drifts the hypergraph to h2 ...
//	next, _ := sess.SubmitEpoch(ctx, h2)
//
// Retry semantics: transport errors, 429 (queue full) and 503 (draining /
// unavailable) are retried with exponential backoff — the server rejects
// those before touching session state, so the retry is safe. A retried
// epoch submission that actually landed (response lost in transit) is
// reconciled through the server's epoch-conflict check: the client tags
// every submission with its expected epoch number, and on 409 fetches the
// session to recover the already-applied result instead of re-submitting.

import (
	"bytes"
	"context"
	"encoding/json"
	"errors"
	"fmt"
	"io"
	"math/rand"
	"net/http"
	"strings"
	"time"

	"hyperbal/internal/hypergraph"
	"hyperbal/internal/obs"
	"hyperbal/internal/server"
)

// Client-side metrics, reported through the same obs registry as the rest
// of the pipeline (loadgen's latency report reads them).
var (
	obsClientRequests = obs.Default().CounterVec("client_requests_total", "op")
	obsClientRetries  = obs.Default().Counter("client_retries_total")
	obsClientErrors   = obs.Default().Counter("client_errors_total")
	// 307 + X-Hyperbal-Owner answers followed to a session's new replica
	// (the serving tier handed the session off during a drain).
	obsClientOwnerHops = obs.Default().Counter("client_owner_redirects_total")
	// Request-body bytes per operation: the "epoch" vs "delta" split is the
	// wire-savings measurement the delta-drift benchmark reports.
	obsClientBytesSent = obs.Default().CounterVec("client_bytes_sent_total", "op")
	// Delta submissions that fell back to a full epoch (409
	// fingerprint_mismatch, or a transition the delta computation refused).
	obsClientDeltaFallbacks = obs.Default().Counter("client_delta_fallbacks_total")
)

// ClientOptions tune the balancerd client's timeout/retry/backoff policy.
// The zero value gives sane defaults.
type ClientOptions struct {
	// RequestTimeout bounds each attempt (default 120s — an epoch
	// submission includes queueing and partitioning time).
	RequestTimeout time.Duration
	// MaxRetries bounds retries after the first attempt (default 5).
	MaxRetries int
	// Backoff is the initial retry delay, doubled per retry (default 50ms).
	Backoff time.Duration
	// MaxBackoff caps the delay growth (default 2s).
	MaxBackoff time.Duration
	// HTTPClient overrides the transport (default: a dedicated
	// http.Client; its Timeout is left to RequestTimeout contexts).
	HTTPClient *http.Client
	// Wire selects the request/response codec: "binary" (the default)
	// speaks the varint-packed application/x-hyperbal protocol and accepts
	// binary responses; "json" forces the JSON wire format (for debugging,
	// curl parity, or servers predating the binary protocol). Both codecs
	// produce byte-identical partitions — the server validates them through
	// one shared path.
	Wire string
}

func (o ClientOptions) withDefaults() ClientOptions {
	if o.RequestTimeout <= 0 {
		o.RequestTimeout = 120 * time.Second
	}
	if o.MaxRetries < 0 {
		o.MaxRetries = 0
	} else if o.MaxRetries == 0 {
		o.MaxRetries = 5
	}
	if o.Backoff <= 0 {
		o.Backoff = 50 * time.Millisecond
	}
	if o.MaxBackoff <= 0 {
		o.MaxBackoff = 2 * time.Second
	}
	if o.HTTPClient == nil {
		o.HTTPClient = &http.Client{}
	}
	if o.Wire == "" {
		o.Wire = "binary"
	}
	return o
}

// Client talks to a balancerd instance.
type Client struct {
	base string
	opt  ClientOptions
}

// NewClient returns a client for the balancerd at baseURL
// (e.g. "http://127.0.0.1:8080").
func NewClient(baseURL string, opt ClientOptions) *Client {
	return &Client{base: strings.TrimRight(baseURL, "/"), opt: opt.withDefaults()}
}

// RemoteResult is one load-balance operation performed by the server.
type RemoteResult struct {
	Partition       Partition
	CommVolume      int64
	MigrationVolume int64
	Moved           int
	Epoch           int64
	RepartMs        float64
	// Cached reports the server answered from its repartition cache.
	Cached bool
	// Rebalanced is false when an only-if-unbalanced submission was
	// skipped because the drift was within threshold.
	Rebalanced bool
	// Warm reports the server warm-started the partitioner from the
	// previous distribution (delta epochs submitted with warm=true).
	Warm bool
}

func remoteResult(r server.WireResult) RemoteResult {
	return RemoteResult{
		Partition:       Partition{Parts: r.Parts, K: r.K},
		CommVolume:      r.CommVolume,
		MigrationVolume: r.MigrationVolume,
		Moved:           r.Moved,
		Epoch:           r.Epoch,
		RepartMs:        r.RepartMs,
		Cached:          r.Cached,
		Rebalanced:      r.Rebalanced,
		Warm:            r.Warm,
	}
}

// RemoteMigration is the wire summary of the latest epoch's migration plan.
type RemoteMigration = server.MigrationSummary

// APIError is a non-2xx answer from the server after retries.
type APIError struct {
	Status int
	Code   string
	Msg    string
}

func (e *APIError) Error() string {
	return fmt.Sprintf("balancerd: HTTP %d (%s): %s", e.Status, e.Code, e.Msg)
}

// retryable reports whether a status is safe and useful to retry: the
// server rejects 429/503 before touching state, and 502/504 come from
// intermediaries.
func retryable(status int) bool {
	switch status {
	case http.StatusTooManyRequests, http.StatusServiceUnavailable,
		http.StatusBadGateway, http.StatusGatewayTimeout:
		return true
	}
	return false
}

// binary reports whether this client speaks the binary wire protocol.
func (c *Client) binary() bool { return c.opt.Wire != "json" }

// jsonBody marshals a JSON request body. The request structs marshal
// without error; the error return exists for do()'s contract.
func jsonBody(in any) ([]byte, string, error) {
	b, err := json.Marshal(in)
	return b, "application/json", err
}

// backoffDelay computes the full-jitter retry delay for an attempt:
// uniform in [0, min(base<<attempt, max)). u is the uniform [0,1) sample
// (injected so tests can pin it). Full jitter keeps the cap's protection
// while decorrelating clients: with the old deterministic doubling, every
// client rejected by the same 429/503 burst retried on the same schedule
// and re-collided each round.
func backoffDelay(attempt int, base, max time.Duration, u float64) time.Duration {
	ceil := base
	for i := 0; i < attempt && ceil < max; i++ {
		ceil *= 2
	}
	if ceil > max {
		ceil = max
	}
	d := time.Duration(u * float64(ceil))
	if d < time.Millisecond {
		d = time.Millisecond // never busy-spin, even for tiny u
	}
	return d
}

// do performs one API call with the retry/backoff policy. body/contentType
// carry a pre-rendered request payload (nil body for GET/DELETE); a nil out
// skips decoding. owner, when non-nil, is the session's redirect override:
// 307 + X-Hyperbal-Owner answers update it and the call is re-issued at
// the new owner; a transport error at an owner falls back to the primary
// base URL. Returns the final status code.
func (c *Client) do(ctx context.Context, op, method, path string, body []byte, contentType string, out any, owner *string) (int, error) {
	obsClientRequests.With(op).Inc()
	if body != nil {
		obsClientBytesSent.With(op).Add(int64(len(body)))
	}
	hops := 0
	for attempt := 0; ; {
		base := c.base
		if owner != nil && *owner != "" {
			base = *owner
		}
		status, moved, err := c.attempt(ctx, base, method, path, body, contentType, out)
		if moved != "" {
			if owner == nil {
				// No redirect override to update (a create has no session to
				// chase): out was never decoded, so falling through to success
				// would hand the caller a zero-valued response.
				obsClientErrors.Inc()
				return status, &APIError{Status: status, Code: "moved",
					Msg: "unexpected owner redirect to " + moved}
			}
			// The replica handed the session off; chase the new owner
			// without consuming a retry or backing off.
			hops++
			if hops > 4 {
				obsClientErrors.Inc()
				return status, &APIError{Status: status, Code: "moved", Msg: "redirect loop chasing session owner"}
			}
			obsClientOwnerHops.Inc()
			*owner = strings.TrimRight(moved, "/")
			continue
		}
		if err == nil {
			return status, nil
		}
		if nr, ok := err.(errNonRetryable); ok {
			obsClientErrors.Inc()
			return status, nr
		}
		// Transport error or retryable API status.
		if status == 0 && owner != nil && *owner != "" {
			// The handed-off owner is unreachable (it may have finished
			// shutting down); fall back to the primary base, which can
			// answer or re-redirect.
			*owner = ""
		}
		if attempt >= c.opt.MaxRetries {
			obsClientErrors.Inc()
			return status, err
		}
		obsClientRetries.Inc()
		select {
		case <-ctx.Done():
			obsClientErrors.Inc()
			return status, ctx.Err()
		case <-time.After(backoffDelay(attempt, c.opt.Backoff, c.opt.MaxBackoff, rand.Float64())):
		}
		attempt++
	}
}

// attempt performs one HTTP round trip against base. Retryable failures
// come back as a non-nil error; non-retryable API errors are decoded into
// *APIError and returned with err == nil so do() stops retrying. moved
// carries the X-Hyperbal-Owner target of a 307 handoff redirect.
func (c *Client) attempt(ctx context.Context, base, method, path string, body []byte, contentType string, out any) (status int, moved string, err error) {
	actx, cancel := context.WithTimeout(ctx, c.opt.RequestTimeout)
	defer cancel()
	var rd io.Reader
	if body != nil {
		rd = bytes.NewReader(body)
	}
	req, err := http.NewRequestWithContext(actx, method, base+path, rd)
	if err != nil {
		return 0, "", err
	}
	if body != nil {
		req.Header.Set("Content-Type", contentType)
	}
	if c.binary() {
		req.Header.Set("Accept", server.ContentTypeBinary+", application/json")
	} else {
		req.Header.Set("Accept", "application/json")
	}
	resp, err := c.opt.HTTPClient.Do(req)
	if err != nil {
		return 0, "", err // transport error: retry
	}
	defer resp.Body.Close()
	if resp.StatusCode == http.StatusTemporaryRedirect {
		if o := resp.Header.Get(server.OwnerHeader); o != "" {
			_, _ = io.Copy(io.Discard, io.LimitReader(resp.Body, 1<<12))
			return resp.StatusCode, o, nil
		}
	}
	if resp.StatusCode >= 300 {
		var apiErr server.ErrorResponse
		data, _ := io.ReadAll(io.LimitReader(resp.Body, 1<<16))
		_ = json.Unmarshal(data, &apiErr)
		if apiErr.Error == "" {
			apiErr.Error = strings.TrimSpace(string(data))
		}
		e := &APIError{Status: resp.StatusCode, Code: apiErr.Code, Msg: apiErr.Error}
		if retryable(resp.StatusCode) {
			return resp.StatusCode, "", e // plain error: do() retries
		}
		return resp.StatusCode, "", errNonRetryable{e}
	}
	if out != nil {
		data, err := io.ReadAll(resp.Body)
		if err != nil {
			return resp.StatusCode, "", fmt.Errorf("balancerd: reading response: %w", err)
		}
		if err := decodeResponse(resp.Header.Get("Content-Type"), data, out); err != nil {
			return resp.StatusCode, "", fmt.Errorf("balancerd: decoding response: %w", err)
		}
	}
	return resp.StatusCode, "", nil
}

// decodeResponse dispatches on the response Content-Type: servers that
// honor the binary Accept answer application/x-hyperbal, anything else is
// decoded as JSON. Error bodies never reach here (always JSON, handled
// above), so only success payload types appear in the switch.
func decodeResponse(contentType string, data []byte, out any) error {
	if !strings.HasPrefix(contentType, server.ContentTypeBinary) {
		return json.Unmarshal(data, out)
	}
	switch v := out.(type) {
	case *server.SessionResponse:
		r, err := server.DecodeSessionResponseBinary(data)
		if err != nil {
			return err
		}
		*v = r
	case *server.PartitionResponse:
		r, err := server.DecodePartitionResponseBinary(data)
		if err != nil {
			return err
		}
		*v = r
	case *server.SessionInfo:
		r, err := server.DecodeSessionInfoBinary(data)
		if err != nil {
			return err
		}
		*v = r
	default:
		return fmt.Errorf("unexpected binary response for %T", out)
	}
	return nil
}

// errNonRetryable wraps an APIError that must not be retried.
type errNonRetryable struct{ err error }

func (e errNonRetryable) Error() string { return e.err.Error() }
func (e errNonRetryable) Unwrap() error { return e.err }

// unwrapFinal strips the non-retryable marker for callers.
func unwrapFinal(err error) error {
	if nr, ok := err.(errNonRetryable); ok {
		return nr.err
	}
	return err
}

// RemoteSession is a session held by a balancerd instance. It is not safe
// for concurrent use: epoch submissions are ordered (the server enforces
// this with per-session serialization and the epoch-conflict check), so
// drive one RemoteSession from one goroutine.
type RemoteSession struct {
	c  *Client
	ID string
	// owner, when non-empty, is the base URL of the replica this session
	// was handed off to (learned from a 307 + X-Hyperbal-Owner answer);
	// requests go there until it becomes unreachable.
	owner string
	// epoch mirrors the server-side epoch for conflict-checked submissions.
	epoch int64
	// baseH is the last hypergraph this client successfully submitted —
	// the base SubmitEpochDelta computes deltas against. Nil after
	// attaching to an existing session with Client.Session (the first
	// delta submission then falls back to a full epoch).
	baseH *Hypergraph
}

// CreateSession creates a server-side session: the server computes (or
// serves from cache) the epoch-1 static partition of h under cfg.
func (c *Client) CreateSession(ctx context.Context, cfg BalancerConfig, h *Hypergraph) (*RemoteSession, RemoteResult, error) {
	var (
		body []byte
		ct   string
		err  error
	)
	if c.binary() {
		// Rendered straight from the CSR arrays — no WireHypergraph
		// intermediate, no per-net JSON materialization.
		body, ct = server.AppendCreateRequestBinary(nil, server.WireConfigFrom(cfg), h), server.ContentTypeBinary
	} else if body, ct, err = jsonBody(server.CreateSessionRequest{
		Config:     server.WireConfigFrom(cfg),
		Hypergraph: server.EncodeHypergraph(h),
	}); err != nil {
		return nil, RemoteResult{}, err
	}
	var resp server.SessionResponse
	if _, err := c.do(ctx, "create", http.MethodPost, "/v1/sessions", body, ct, &resp, nil); err != nil {
		return nil, RemoteResult{}, unwrapFinal(err)
	}
	return &RemoteSession{c: c, ID: resp.SessionID, baseH: h}, remoteResult(resp.Result), nil
}

// Session returns a handle for an existing server-side session id,
// synchronizing the epoch counter from the server.
func (c *Client) Session(ctx context.Context, id string) (*RemoteSession, error) {
	s := &RemoteSession{c: c, ID: id}
	var info server.SessionInfo
	if _, err := c.do(ctx, "info", http.MethodGet, "/v1/sessions/"+id, nil, "", &info, &s.owner); err != nil {
		return nil, unwrapFinal(err)
	}
	s.epoch = info.Epoch
	return s, nil
}

// SubmitEpoch submits a drifted hypergraph with an unchanged vertex set;
// the server rebalances against the session's current distribution.
func (s *RemoteSession) SubmitEpoch(ctx context.Context, h *Hypergraph) (RemoteResult, error) {
	return s.submit(ctx, h, nil, false)
}

// SubmitEpochInherited submits a structurally changed hypergraph with the
// inherited assignment over the new vertex set.
func (s *RemoteSession) SubmitEpochInherited(ctx context.Context, h *Hypergraph, inherited Partition) (RemoteResult, error) {
	return s.submit(ctx, h, inherited.Parts, false)
}

// SubmitEpochIfUnbalanced is SubmitEpoch with the server-side trigger: the
// result has Rebalanced == false (and the unchanged distribution) when the
// drift was still within the session threshold.
func (s *RemoteSession) SubmitEpochIfUnbalanced(ctx context.Context, h *Hypergraph) (RemoteResult, error) {
	return s.submit(ctx, h, nil, true)
}

// SubmitEpochDelta submits a drifted hypergraph with an unchanged vertex
// set as a delta against the last submitted hypergraph, falling back to a
// full SubmitEpoch when no base is held, the transition is not
// delta-able, or the server rejects the base fingerprint (409
// fingerprint_mismatch — e.g. another client advanced the session). warm
// asks the server to warm-start the repartition from the previous
// distribution, restricted to the delta's dirty region.
func (s *RemoteSession) SubmitEpochDelta(ctx context.Context, h *Hypergraph, warm bool) (RemoteResult, error) {
	if s.baseH == nil {
		obsClientDeltaFallbacks.Inc()
		return s.SubmitEpoch(ctx, h)
	}
	d, ok := hypergraph.ComputeDelta(s.baseH, h)
	if !ok {
		obsClientDeltaFallbacks.Inc()
		return s.SubmitEpoch(ctx, h)
	}
	return s.submitDelta(ctx, d, nil, warm, h,
		func() (RemoteResult, error) { return s.SubmitEpoch(ctx, h) })
}

// SubmitEpochDeltaMapped submits a structurally changed hypergraph as a
// delta: vmap maps each new vertex to its base vertex (or -1 for created
// vertices), inherited carries the assignment over the new vertex set.
// Falls back to SubmitEpochInherited when the transition is not
// delta-able or on a base fingerprint mismatch.
func (s *RemoteSession) SubmitEpochDeltaMapped(ctx context.Context, h *Hypergraph, vmap []int32, inherited Partition, warm bool) (RemoteResult, error) {
	if s.baseH == nil {
		obsClientDeltaFallbacks.Inc()
		return s.SubmitEpochInherited(ctx, h, inherited)
	}
	d, ok := hypergraph.ComputeDeltaMapped(s.baseH, h, vmap)
	if !ok {
		obsClientDeltaFallbacks.Inc()
		return s.SubmitEpochInherited(ctx, h, inherited)
	}
	return s.submitDelta(ctx, d, inherited.Parts, warm, h,
		func() (RemoteResult, error) { return s.SubmitEpochInherited(ctx, h, inherited) })
}

func (s *RemoteSession) submit(ctx context.Context, h *Hypergraph, inherited []int32, onlyIfUnbalanced bool) (RemoteResult, error) {
	epoch := s.epoch + 1
	var (
		body []byte
		ct   string
		err  error
	)
	if s.c.binary() {
		body, ct = server.AppendEpochRequestBinary(nil, h, inherited, epoch, onlyIfUnbalanced), server.ContentTypeBinary
	} else if body, ct, err = jsonBody(server.EpochRequest{
		Hypergraph:       server.EncodeHypergraph(h),
		Inherited:        inherited,
		Epoch:            epoch,
		OnlyIfUnbalanced: onlyIfUnbalanced,
	}); err != nil {
		return RemoteResult{}, err
	}
	var resp server.SessionResponse
	status, err := s.c.do(ctx, "epoch", http.MethodPost, "/v1/sessions/"+s.ID+"/epochs", body, ct, &resp, &s.owner)
	if err != nil {
		if status == http.StatusConflict {
			// A retried submission may have landed before its response was
			// lost; reconcile against the server's view.
			if res, rerr := s.reconcile(ctx, epoch); rerr == nil {
				s.baseH = h
				return res, nil
			}
		}
		return RemoteResult{}, unwrapFinal(err)
	}
	res := remoteResult(resp.Result)
	if res.Rebalanced {
		s.epoch = res.Epoch
		s.baseH = h
	}
	return res, nil
}

// submitDelta performs one PATCH epoch submission; full is the fallback
// used on a base fingerprint mismatch.
func (s *RemoteSession) submitDelta(ctx context.Context, d *hypergraph.Delta, inherited []int32, warm bool, h *Hypergraph, full func() (RemoteResult, error)) (RemoteResult, error) {
	epoch := s.epoch + 1
	var (
		body []byte
		ct   string
		err  error
	)
	if s.c.binary() {
		body, ct = server.AppendDeltaRequestBinary(nil, d, inherited, epoch, warm), server.ContentTypeBinary
	} else if body, ct, err = jsonBody(server.DeltaEpochRequest{
		Delta:     *d,
		Inherited: inherited,
		Epoch:     epoch,
		Warm:      warm,
	}); err != nil {
		return RemoteResult{}, err
	}
	var resp server.SessionResponse
	status, err := s.c.do(ctx, "delta", http.MethodPatch, "/v1/sessions/"+s.ID+"/epochs", body, ct, &resp, &s.owner)
	if err != nil {
		if status == http.StatusConflict {
			var apiErr *APIError
			if errors.As(unwrapFinal(err), &apiErr) && apiErr.Code == "fingerprint_mismatch" {
				// The session's base moved under us (or the server never
				// held one): hard fallback to a full resync.
				obsClientDeltaFallbacks.Inc()
				return full()
			}
			// epoch_conflict: a retried submission may have landed before
			// its response was lost; reconcile against the server's view.
			if res, rerr := s.reconcile(ctx, epoch); rerr == nil {
				s.baseH = h
				return res, nil
			}
		}
		return RemoteResult{}, unwrapFinal(err)
	}
	res := remoteResult(resp.Result)
	if res.Rebalanced {
		s.epoch = res.Epoch
		s.baseH = h
	}
	return res, nil
}

// reconcile recovers the result of an epoch submission that was applied
// server-side but whose response was lost: if the server sits exactly at
// the expected epoch, its last result IS our submission's result.
func (s *RemoteSession) reconcile(ctx context.Context, expected int64) (RemoteResult, error) {
	var info server.SessionInfo
	if _, err := s.c.do(ctx, "info", http.MethodGet, "/v1/sessions/"+s.ID, nil, "", &info, &s.owner); err != nil {
		return RemoteResult{}, unwrapFinal(err)
	}
	if expected == 0 || info.Epoch != expected {
		return RemoteResult{}, &APIError{Status: http.StatusConflict, Code: "epoch_conflict",
			Msg: fmt.Sprintf("session at epoch %d, expected %d", info.Epoch, expected)}
	}
	s.epoch = info.Epoch
	return remoteResult(info.Last), nil
}

// Epoch returns the client's view of the session epoch.
func (s *RemoteSession) Epoch() int64 { return s.epoch }

// Partition fetches the session's current distribution and the migration
// plan summary of the latest epoch (nil before the first rebalance).
func (s *RemoteSession) Partition(ctx context.Context) (Partition, *RemoteMigration, error) {
	var resp server.PartitionResponse
	if _, err := s.c.do(ctx, "partition", http.MethodGet, "/v1/sessions/"+s.ID+"/partition", nil, "", &resp, &s.owner); err != nil {
		return Partition{}, nil, unwrapFinal(err)
	}
	return Partition{Parts: resp.Parts, K: resp.K}, resp.Migration, nil
}

// Close deletes the server-side session.
func (s *RemoteSession) Close(ctx context.Context) error {
	_, err := s.c.do(ctx, "delete", http.MethodDelete, "/v1/sessions/"+s.ID, nil, "", nil, &s.owner)
	return unwrapFinal(err)
}
