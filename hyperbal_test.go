package hyperbal_test

import (
	"testing"

	"hyperbal"
)

// buildMesh returns a small mesh problem through the public API only.
func buildMesh(w, h int) hyperbal.Problem {
	b := hyperbal.NewGraphBuilder(w * h)
	id := func(x, y int) int { return y*w + x }
	for y := 0; y < h; y++ {
		for x := 0; x < w; x++ {
			if x+1 < w {
				b.AddEdge(id(x, y), id(x+1, y), 1)
			}
			if y+1 < h {
				b.AddEdge(id(x, y), id(x, y+1), 1)
			}
		}
	}
	g := b.Build()
	return hyperbal.Problem{G: g, H: hyperbal.GraphToHypergraph(g)}
}

func TestPublicAPIEndToEnd(t *testing.T) {
	p := buildMesh(12, 12)
	bal, err := hyperbal.NewBalancer(hyperbal.BalancerConfig{
		K: 4, Alpha: 10, Seed: 1, Method: hyperbal.HypergraphRepart,
	})
	if err != nil {
		t.Fatal(err)
	}
	first, err := bal.Partition(p)
	if err != nil {
		t.Fatal(err)
	}
	w := hyperbal.PartWeights(p.H, first.Partition)
	if !hyperbal.IsBalanced(w, 0.10) {
		t.Fatalf("imbalanced: %v (%.3f)", w, hyperbal.Imbalance(w))
	}
	res, err := bal.Repartition(p, first.Partition, 1)
	if err != nil {
		t.Fatal(err)
	}
	if res.CommVolume != hyperbal.CutSize(p.H, res.Partition) {
		t.Fatal("CommVolume disagrees with CutSize")
	}
	if res.MigrationVolume != hyperbal.MigrationVolume(p.H, first.Partition, res.Partition) {
		t.Fatal("MigrationVolume disagrees with metric")
	}
}

func TestPublicRepartitionModel(t *testing.T) {
	p := buildMesh(8, 8)
	old := hyperbal.NewPartition(64, 2)
	for v := 32; v < 64; v++ {
		old.Assign(v, 1)
	}
	r, err := hyperbal.BuildRepartition(p.H, old, 2, 7)
	if err != nil {
		t.Fatal(err)
	}
	aug, err := hyperbal.PartitionHypergraph(r.H, hyperbal.HGPOptions{K: 2, Seed: 3})
	if err != nil {
		t.Fatal(err)
	}
	newP, mig, err := r.Decode(p.H, aug)
	if err != nil {
		t.Fatal(err)
	}
	if mig.Volume != hyperbal.MigrationVolume(p.H, old, newP) {
		t.Fatal("decode migration disagrees")
	}
}

func TestPublicParallelAndMigration(t *testing.T) {
	p := buildMesh(8, 8)
	var old, next hyperbal.Partition
	err := hyperbal.RunWorld(2, func(c *hyperbal.Comm) error {
		pp, err := hyperbal.ParallelPartitionHypergraph(c, p.H, hyperbal.PHGOptions{
			Serial: hyperbal.HGPOptions{K: 2, Seed: 5},
		})
		if err != nil {
			return err
		}
		if c.Rank() == 0 {
			old = pp
		}
		return nil
	})
	if err != nil {
		t.Fatal(err)
	}
	// shift a few vertices and execute the migration
	next = old.Clone()
	for v := 0; v < 6; v++ {
		next.Assign(v, 1-old.Of(v))
	}
	plan, err := hyperbal.NewMigrationPlan(p.H, old, next)
	if err != nil {
		t.Fatal(err)
	}
	if plan.TotalVolume() != hyperbal.MigrationVolume(p.H, old, next) {
		t.Fatal("plan volume mismatch")
	}
}

func TestPublicDatasetsAndDynamics(t *testing.T) {
	if len(hyperbal.Datasets()) != 5 {
		t.Fatal("expected 5 registry datasets")
	}
	g, err := hyperbal.GenerateDataset("cage14", 500, 1)
	if err != nil {
		t.Fatal(err)
	}
	init := hyperbal.NewPartition(g.NumVertices(), 4)
	for v := 0; v < g.NumVertices(); v++ {
		init.Assign(v, v%4)
	}
	gen, err := hyperbal.NewStructuralDynamics(g, init, 4, 0.25, 0.5, 2)
	if err != nil {
		t.Fatal(err)
	}
	prob, inherited := gen.Next()
	if prob.H.NumVertices() != len(inherited.Parts) {
		t.Fatal("epoch problem and inherited partition disagree")
	}
	if err := gen.Observe(inherited); err != nil {
		t.Fatal(err)
	}
	gen2, err := hyperbal.NewRefinementDynamics(g, init, 4, 0.25, 1.5, 7.5, 3)
	if err != nil {
		t.Fatal(err)
	}
	prob2, _ := gen2.Next()
	if prob2.H.NumVertices() != g.NumVertices() {
		t.Fatal("refinement dynamic changed the vertex set")
	}
}

func TestPublicGraphBaselines(t *testing.T) {
	p := buildMesh(10, 10)
	gp, err := hyperbal.PartitionGraph(p.G, hyperbal.GPOptions{K: 4, Seed: 7})
	if err != nil {
		t.Fatal(err)
	}
	if hyperbal.EdgeCut(p.G, gp) <= 0 {
		t.Fatal("4-way mesh partition must cut something")
	}
	rp, err := hyperbal.AdaptiveRepartGraph(p.G, gp, 100, hyperbal.GPOptions{K: 4, Seed: 9})
	if err != nil {
		t.Fatal(err)
	}
	remapped := hyperbal.RemapParts(p.H, gp, rp)
	if hyperbal.MigrationVolume(p.H, gp, remapped) > hyperbal.MigrationVolume(p.H, gp, rp) {
		t.Fatal("remap made migration worse")
	}
}

func TestPublicCostModel(t *testing.T) {
	m := hyperbal.DefaultCostModel
	e := m.Evaluate(hyperbal.Result{CommVolume: 1000, MigrationVolume: 500}, 100)
	if e.Total() <= 0 {
		t.Fatal("cost model returned nothing")
	}
}

func TestPublicToolkit(t *testing.T) {
	owner := map[hyperbal.ObjectID]int{}
	cb := hyperbal.Callbacks{
		Objects: func() []hyperbal.ObjectID {
			ids := make([]hyperbal.ObjectID, 30)
			for i := range ids {
				ids[i] = hyperbal.ObjectID(i)
			}
			return ids
		},
		NumEdges: func() int { return 30 },
		Edge: func(e int) (int64, []hyperbal.ObjectID) {
			return 1, []hyperbal.ObjectID{hyperbal.ObjectID(e), hyperbal.ObjectID((e + 1) % 30)}
		},
		OwnedBy: func(id hyperbal.ObjectID) int { return owner[id] },
	}
	lb, err := hyperbal.NewLoadBalancer(hyperbal.BalancerConfig{K: 2, Seed: 1}, cb)
	if err != nil {
		t.Fatal(err)
	}
	ch, err := lb.Partition()
	if err != nil {
		t.Fatal(err)
	}
	for id, p := range ch.Assignments {
		owner[id] = p
	}
	if _, err := lb.LoadBalance(1); err != nil {
		t.Fatal(err)
	}
}

func TestPublicSimulateApplication(t *testing.T) {
	p := buildMesh(8, 8)
	part, err := hyperbal.PartitionHypergraph(p.H, hyperbal.HGPOptions{K: 2, Seed: 3})
	if err != nil {
		t.Fatal(err)
	}
	res, err := hyperbal.SimulateApplication(p.H, nil, part, 2)
	if err != nil {
		t.Fatal(err)
	}
	if res.WordsPerIteration != hyperbal.CutSize(p.H, part) {
		t.Fatalf("measured %d != cut %d", res.WordsPerIteration, hyperbal.CutSize(p.H, part))
	}
}

func TestPublicParallelGraph(t *testing.T) {
	p := buildMesh(10, 10)
	err := hyperbal.RunWorld(2, func(c *hyperbal.Comm) error {
		gp, err := hyperbal.ParallelPartitionGraph(c, p.G, hyperbal.PGPOptions{
			Serial: hyperbal.GPOptions{K: 4, Seed: 5},
		})
		if err != nil {
			return err
		}
		if _, err := hyperbal.ParallelAdaptiveRepartGraph(c, p.G, gp, 10, hyperbal.PGPOptions{
			Serial: hyperbal.GPOptions{K: 4, Seed: 7},
		}); err != nil {
			return err
		}
		return nil
	})
	if err != nil {
		t.Fatal(err)
	}
}

func TestPublicCommMatrixAndMetrics(t *testing.T) {
	p := buildMesh(8, 8)
	part, _ := hyperbal.PartitionHypergraph(p.H, hyperbal.HGPOptions{K: 4, Seed: 9})
	m := hyperbal.CommMatrix(p.H, part)
	var total int64
	for _, row := range m {
		for _, v := range row {
			total += v
		}
	}
	if total != hyperbal.CutSize(p.H, part) {
		t.Fatal("comm matrix total != cut")
	}
	if hyperbal.SOED(p.H, part) < hyperbal.CutSize(p.H, part) {
		t.Fatal("SOED below connectivity-1")
	}
	if len(hyperbal.BoundaryVertices(p.H, part)) == 0 {
		t.Fatal("4-way mesh partition must have boundary vertices")
	}
	if hyperbal.CutNets(p.H, part) <= 0 {
		t.Fatal("cut nets must be positive")
	}
}
