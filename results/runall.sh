#!/bin/sh
cd /root/repo/results
for fig in 3 4 5 6; do
  /tmp/repartbench -figure $fig -trials 2 -epochs 2 -procs 4,8,16 -alphas 1,10,100,1000 > figure$fig.txt 2>&1
done
/tmp/repartbench -figure 7 -trials 2 -epochs 2 -procs 4,8,16 -alphas 1,100 > figure7.txt 2>&1
/tmp/repartbench -figure 8 -trials 2 -epochs 2 -procs 4,8,16 -alphas 1,100 > figure8.txt 2>&1
echo DONE > runall.done
