// Command epochsim runs a full simulated application campaign: generate a
// dataset, partition it, then alternate epochs of (dynamics -> rebalance
// -> REAL message-passing execution) measuring, not modeling, the
// communication and migration traffic. It validates the central premise —
// measured traffic equals the connectivity-1 cut — and reports the total
// execution time estimate t_tot = α(t_comp + t_comm) + t_mig + t_repart
// per method.
//
// Usage:
//
//	epochsim -dataset auto -n 2000 -k 8 -alpha 100 -epochs 4 \
//	         -dynamic structure -method all
package main

import (
	"flag"
	"fmt"
	"os"
	"time"

	"hyperbal/internal/appsim"
	"hyperbal/internal/core"
	"hyperbal/internal/datasets"
	"hyperbal/internal/dynamics"
	"hyperbal/internal/graph"
	"hyperbal/internal/hypergraph"
	"hyperbal/internal/obs"
	"hyperbal/internal/partition"
)

func main() {
	var (
		dataset = flag.String("dataset", "auto", "dataset analogue to simulate")
		n       = flag.Int("n", 2000, "vertex count")
		k       = flag.Int("k", 8, "parts (= simulated ranks)")
		alpha   = flag.Int64("alpha", 100, "iterations per epoch")
		epochs  = flag.Int("epochs", 4, "number of rebalance epochs")
		dynamic = flag.String("dynamic", "structure", "structure | weights")
		method  = flag.String("method", "all", "Zoltan-repart | ParMETIS-repart | Zoltan-scratch | ParMETIS-scratch | all")
		iters   = flag.Int("iters", 3, "actually executed iterations per epoch (traffic scales to alpha)")
		seed    = flag.Int64("seed", 1, "random seed")
		warm    = flag.Bool("warm", false, "repartition each epoch via the delta/warm-start path (hypergraph repartitioning only; others run normally)")

		metricsAddr = flag.String("metrics-addr", "", "serve /metrics (Prometheus text, ?format=json) and /debug/pprof on this address")
		metricsJSON = flag.String("metrics-json", "", `write a JSON metrics snapshot to this file on exit ("-" = stdout)`)
	)
	flag.Parse()

	if *metricsAddr != "" {
		bound, shutdown, err := obs.Serve(*metricsAddr, obs.Default())
		check(err)
		defer shutdown()
		fmt.Fprintf(os.Stderr, "epochsim: metrics on http://%s/metrics\n", bound)
	}

	g, err := datasets.Generate(*dataset, *n, *seed)
	check(err)
	fmt.Printf("epochsim: %s analogue |V|=%d |E|=%d, k=%d, α=%d, %d epochs, %s dynamics\n\n",
		*dataset, g.NumVertices(), g.NumEdges(), *k, *alpha, *epochs, *dynamic)

	methods := core.Methods
	if *method != "all" {
		found := false
		for _, m := range core.Methods {
			if m.String() == *method {
				methods = []core.Method{m}
				found = true
			}
		}
		if !found {
			fmt.Fprintf(os.Stderr, "epochsim: unknown method %q\n", *method)
			os.Exit(2)
		}
	}

	fmt.Printf("%-18s %10s %10s %12s %10s %12s\n",
		"method", "meas.comm", "meas.mig", "model t_tot", "repart", "mismatches")
	for _, m := range methods {
		runCampaign(g, m, *k, *alpha, *epochs, *iters, *dynamic, *seed, *warm)
	}
	fmt.Println("\nmeas.comm / meas.mig: words actually exchanged on the message-passing")
	fmt.Println("substrate; 'mismatches' counts epochs where measured traffic differed")
	fmt.Println("from the partition's connectivity-1 cut (must be 0).")

	if *metricsJSON != "" {
		check(obs.DumpJSONFile(*metricsJSON, obs.Default()))
	}
}

func runCampaign(g *graph.Graph, m core.Method, k int, alpha int64, epochs, iters int, dynamic string, seed int64, warm bool) {
	bal, err := core.NewBalancer(core.Config{K: k, Alpha: alpha, Seed: seed, Method: m})
	check(err)
	prob := core.Problem{G: g, H: graph.ToHypergraph(g)}
	static, err := bal.Partition(prob)
	check(err)

	var gen dynamics.Generator
	switch dynamic {
	case "structure":
		gen, err = dynamics.NewStructural(g, static.Partition, k, 0.25, 0.5, seed*3+1)
	case "weights":
		gen, err = dynamics.NewRefinement(g, static.Partition, k, 0.1, 1.5, 7.5, seed*3+2)
	default:
		err = fmt.Errorf("unknown dynamic %q", dynamic)
	}
	check(err)

	var measComm, measMig int64
	var repartTime time.Duration
	var modelSeconds float64
	mismatches := 0
	model := core.DefaultCostModel

	// Warm mode rebuilds each epoch transition as a hypergraph delta and
	// seeds the repartition from the inherited distribution plus the
	// delta's dirty region.
	base := prob.H
	var prevIDs []int32
	if warm {
		prevIDs = make([]int32, g.NumVertices())
		for i := range prevIDs {
			prevIDs[i] = int32(i)
		}
	}
	for e := 1; e <= epochs; e++ {
		eprob, old := gen.Next()
		var res core.Result
		if warm {
			var d *hypergraph.Delta
			var ok bool
			if st, isStruct := gen.(*dynamics.Structural); isStruct {
				curIDs := st.AliveMap()
				vmap := hypergraph.VertexMapFromIDs(prevIDs, curIDs)
				d, ok = hypergraph.ComputeDeltaMapped(base, eprob.H, vmap)
				prevIDs = append(prevIDs[:0], curIDs...)
			} else {
				d, ok = hypergraph.ComputeDelta(base, eprob.H)
			}
			var dirty []bool
			if ok {
				dirty = d.DirtyVertices(base, eprob.H)
			}
			res, err = bal.RepartitionWarm(eprob, old, int64(e), dirty)
			base = eprob.H
		} else {
			res, err = bal.Repartition(eprob, old, int64(e))
		}
		check(err)
		check(gen.Observe(res.Partition))

		sim, err := appsim.Simulate(eprob.H, &old, res.Partition, iters)
		check(err)
		if sim.WordsPerIteration != partition.CutSize(eprob.H, res.Partition) {
			mismatches++
		}
		measComm += sim.WordsPerIteration * alpha // scale executed iters to alpha
		measMig += sim.MigratedWords
		repartTime += res.RepartTime
		modelSeconds += model.Evaluate(res, alpha).Total()
	}
	fmt.Printf("%-18s %10d %10d %11.3fs %9dms %12d\n",
		m, measComm, measMig, modelSeconds, repartTime.Milliseconds(), mismatches)
}

func check(err error) {
	if err != nil {
		fmt.Fprintln(os.Stderr, "epochsim:", err)
		os.Exit(1)
	}
}
