// Command hgpart partitions a hypergraph file (hMETIS-compatible text
// format, extended with vertex sizes) with the serial or parallel
// multilevel partitioner and reports quality metrics.
//
// Usage:
//
//	hgpart -k 8 [-eps 0.05] [-seed 1] [-ranks 4] [-direct] [-mtx] [-o out.part] input.hgr
//
// With -ranks > 1 the parallel partitioner runs on that many in-process
// ranks. With -net-workers the same partitioner runs over the network
// transport, one rank per listed balancerd -compute-worker process, and
// produces the identical partition. The optional output file receives
// one part id per line.
package main

import (
	"bufio"
	"context"
	"flag"
	"fmt"
	"os"
	"runtime/pprof"
	"strings"
	"time"

	"hyperbal/internal/hgp"
	"hyperbal/internal/hypergraph"
	"hyperbal/internal/mpi"
	"hyperbal/internal/mpinet"
	"hyperbal/internal/mpinet/jobs"
	"hyperbal/internal/mtx"
	"hyperbal/internal/obs"
	"hyperbal/internal/partition"
	"hyperbal/internal/phg"
)

func main() {
	var (
		mtxIn       = flag.Bool("mtx", false, "input is a MatrixMarket file (column-net model)")
		k           = flag.Int("k", 2, "number of parts")
		eps         = flag.Float64("eps", 0.05, "allowed imbalance (Eq. 1 epsilon)")
		seed        = flag.Int64("seed", 1, "random seed")
		ranks       = flag.Int("ranks", 1, "in-process ranks (>1 uses the parallel partitioner)")
		direct      = flag.Bool("direct", false, "direct k-way instead of recursive bisection")
		out         = flag.String("o", "", "write part ids to this file")
		parallelism = flag.Int("parallelism", 0, "worker goroutines for the serial partitioner (0 = GOMAXPROCS; results identical for every value)")
		cpuprofile  = flag.String("cpuprofile", "", "write a CPU profile to this file")
		memprofile  = flag.String("memprofile", "", "write a heap profile to this file on exit")

		metricsAddr = flag.String("metrics-addr", "", "serve /metrics (Prometheus text, ?format=json) and /debug/pprof on this address")
		metricsJSON = flag.String("metrics-json", "", `write a JSON metrics snapshot to this file on exit ("-" = stdout)`)

		netWorkers    = flag.String("net-workers", "", "comma-separated compute-worker addresses; run the parallel partitioner over the network transport (one rank per worker)")
		netRanks      = flag.Int("net-ranks", 0, "ranks for -net-workers (0 = one per listed worker; must not exceed the worker count)")
		netJitter     = flag.Duration("net-jitter", 0, "artificial per-message delay bound on the network transport (scheduling-independence check)")
		netJitterSeed = flag.Int64("net-jitter-seed", 1, "seed for -net-jitter delays")
		netTimeout    = flag.Duration("net-timeout", 0, "network transport receive timeout (0 = default)")
	)
	flag.Parse()
	if *metricsAddr != "" {
		bound, shutdown, err := obs.Serve(*metricsAddr, obs.Default())
		check(err)
		defer shutdown()
		fmt.Fprintf(os.Stderr, "hgpart: metrics on http://%s/metrics\n", bound)
	}
	if *cpuprofile != "" {
		pf, err := os.Create(*cpuprofile)
		check(err)
		check(pprof.StartCPUProfile(pf))
		defer func() {
			pprof.StopCPUProfile()
			pf.Close()
		}()
	}
	if *memprofile != "" {
		defer func() {
			pf, err := os.Create(*memprofile)
			check(err)
			defer pf.Close()
			check(pprof.Lookup("allocs").WriteTo(pf, 0))
		}()
	}
	if flag.NArg() != 1 {
		fmt.Fprintln(os.Stderr, "usage: hgpart [flags] input.hgr")
		flag.Usage()
		os.Exit(2)
	}

	f, err := os.Open(flag.Arg(0))
	check(err)
	var h *hypergraph.Hypergraph
	if *mtxIn {
		m, merr := mtx.Read(bufio.NewReader(f))
		check(merr)
		h, err = mtx.ToHypergraph(m)
	} else {
		h, err = hypergraph.ReadText(bufio.NewReader(f))
	}
	f.Close()
	check(err)

	stats := hypergraph.ComputeStats(h)
	fmt.Printf("hypergraph: %d vertices, %d nets, %d pins (avg degree %.1f)\n",
		stats.NumVertices, stats.NumNets, stats.NumPins, stats.AvgDegree)

	opts := hgp.Options{K: *k, Imbalance: *eps, Seed: *seed, DirectKway: *direct, Parallelism: *parallelism}
	start := time.Now()
	var p partition.Partition
	if *netWorkers != "" {
		addrs := strings.Split(*netWorkers, ",")
		n := *netRanks
		if n == 0 {
			n = len(addrs)
		}
		if n > len(addrs) || n < 1 {
			check(fmt.Errorf("-net-ranks %d needs between 1 and %d workers", n, len(addrs)))
		}
		payload, err := jobs.EncodePHG(h, phg.Options{Serial: opts})
		check(err)
		res, err := mpinet.RunWorld(context.Background(), jobs.PHGPartition, payload, addrs[:n],
			mpinet.Options{RecvTimeout: *netTimeout, Jitter: *netJitter, JitterSeed: *netJitterSeed})
		check(err)
		parts, err := jobs.DecodeParts(res.Root())
		check(err)
		p = partition.Partition{Parts: parts, K: *k}
	} else if *ranks > 1 {
		err = mpi.Run(*ranks, func(c *mpi.Comm) error {
			pp, err := phg.Partition(c, h, phg.Options{Serial: opts})
			if c.Rank() == 0 {
				p = pp
			}
			return err
		})
		check(err)
	} else {
		p, err = hgp.Partition(h, opts)
		check(err)
	}
	elapsed := time.Since(start)

	w := partition.Weights(h, p)
	fmt.Printf("k=%d cut=%d cutnets=%d imbalance=%.4f time=%s\n",
		*k, partition.CutSize(h, p), partition.CutNets(h, p), partition.Imbalance(w), elapsed)
	for q, ww := range w {
		fmt.Printf("  part %2d: weight %d\n", q, ww)
	}

	if *out != "" {
		of, err := os.Create(*out)
		check(err)
		bw := bufio.NewWriter(of)
		for _, q := range p.Parts {
			fmt.Fprintln(bw, q)
		}
		check(bw.Flush())
		check(of.Close())
		fmt.Printf("wrote %s\n", *out)
	}

	if *metricsJSON != "" {
		check(obs.DumpJSONFile(*metricsJSON, obs.Default()))
	}
}

func check(err error) {
	if err != nil {
		fmt.Fprintln(os.Stderr, "hgpart:", err)
		os.Exit(1)
	}
}
