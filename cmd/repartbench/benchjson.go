package main

import (
	"encoding/json"
	"fmt"
	"os"
	"runtime"
	"time"

	"hyperbal/internal/core"
	"hyperbal/internal/harness"
)

// figureBench is one tracked figure cell: the α=1 Zoltan-repart bar of a
// dataset/dynamic pair at procs=8, plus the allocation rate of the whole
// reduced sweep.
type figureBench struct {
	Figure          string  `json:"figure"`
	Dataset         string  `json:"dataset"`
	Dynamic         string  `json:"dynamic"`
	MsPerRepart     float64 `json:"ms_per_repart"`
	NormalizedCost  float64 `json:"normalized_cost"`
	AllocsPerRepart uint64  `json:"allocs_per_repart"`
}

// methodBench is one Figure 7-style runtime bar: ms per repartition of one
// method on xyce680s at procs=8, α=100.
type methodBench struct {
	Method      string  `json:"method"`
	MsPerRepart float64 `json:"ms_per_repart"`
}

// kernelBench mirrors one internal/hgp micro-benchmark (go test -bench);
// entries are filled in by hand from bench runs, not by this tool.
type kernelBench struct {
	Name        string  `json:"name"`
	NsPerOp     float64 `json:"ns_per_op"`
	AllocsPerOp uint64  `json:"allocs_per_op"`
}

// sweepPoint is one setting of the intra-cell scaling sweep: the Figure-7
// Zoltan-repart cell timed at a fixed Options.Parallelism, with speedup
// relative to the sweep's Parallelism=1 point. The partitions themselves
// are byte-identical across the sweep (the determinism suites enforce it),
// so the sweep measures pure scheduling.
type sweepPoint struct {
	Parallelism int     `json:"parallelism"`
	MsPerRepart float64 `json:"ms_per_repart"`
	Speedup     float64 `json:"speedup"`
}

// snapshot is one labeled benchmark run; the file accumulates snapshots so
// before/after comparisons live next to each other.
type snapshot struct {
	Label            string        `json:"label"`
	Date             string        `json:"date"`
	GoMaxProcs       int           `json:"gomaxprocs"`
	Parallelism      int           `json:"parallelism"`
	Figures          []figureBench `json:"figures"`
	Fig7Runtime      []methodBench `json:"fig7_runtime"`
	ParallelismSweep []sweepPoint  `json:"parallelism_sweep,omitempty"`
	Kernels          []kernelBench `json:"kernels,omitempty"`
	Notes            string        `json:"notes,omitempty"`
}

type benchFile struct {
	Snapshots []snapshot `json:"snapshots"`
}

// runBenchJSON runs the reduced tracked benchmark suite and appends a
// snapshot to path (creating the file if needed). A non-empty sweep also
// times the Figure-7 Zoltan-repart cell at each listed Parallelism.
func runBenchJSON(path, label string, parallelism int, seed int64, sweep []int) error {
	if parallelism <= 0 {
		parallelism = runtime.GOMAXPROCS(0)
	}
	snap := snapshot{
		Label:       label,
		Date:        time.Now().UTC().Format("2006-01-02"),
		GoMaxProcs:  runtime.GOMAXPROCS(0),
		Parallelism: parallelism,
	}

	figures := []struct {
		fig     string
		dataset string
	}{
		{"fig2", "xyce680s"},
		{"fig3", "2DLipid"},
		{"fig4", "auto"},
		{"fig5", "apoa1-10"},
		{"fig6", "cage14"},
	}
	for _, f := range figures {
		for _, dynamic := range []string{"structure", "weights"} {
			cfg := harness.Config{
				Dataset: f.dataset, Dynamic: dynamic, ScaleV: 1200,
				Procs: []int{8}, Alphas: []int64{1, 100},
				Trials: 1, Epochs: 2, Seed: seed, Parallelism: parallelism,
			}
			var before, after runtime.MemStats
			runtime.ReadMemStats(&before)
			rep, err := harness.Run(cfg)
			if err != nil {
				return err
			}
			runtime.ReadMemStats(&after)
			reparts := uint64(cfg.Trials * cfg.Epochs * len(cfg.Procs) * len(cfg.Alphas) * len(core.Methods))
			var cell *harness.Cell
			for i := range rep.Cells {
				c := &rep.Cells[i]
				if c.Alpha == 1 && c.Method == core.HypergraphRepart {
					cell = c
					break
				}
			}
			if cell == nil {
				return fmt.Errorf("bench-json: no α=1 %v cell for %s/%s", core.HypergraphRepart, f.dataset, dynamic)
			}
			snap.Figures = append(snap.Figures, figureBench{
				Figure:          f.fig,
				Dataset:         f.dataset,
				Dynamic:         dynamic,
				MsPerRepart:     float64(cell.RepartTime.Microseconds()) / 1000,
				NormalizedCost:  cell.NormalizedCost,
				AllocsPerRepart: (after.Mallocs - before.Mallocs) / reparts,
			})
		}
	}

	// Figure 7 runtime bars: all four methods on xyce680s.
	cfg := harness.Config{
		Dataset: "xyce680s", Dynamic: "structure", ScaleV: 1200,
		Procs: []int{8}, Alphas: []int64{100},
		Trials: 1, Epochs: 3, Seed: seed, Parallelism: parallelism,
	}
	rep, err := harness.Run(cfg)
	if err != nil {
		return err
	}
	for _, c := range rep.Cells {
		snap.Fig7Runtime = append(snap.Fig7Runtime, methodBench{
			Method:      c.Method.String(),
			MsPerRepart: float64(c.RepartTime.Microseconds()) / 1000,
		})
	}

	if len(sweep) > 0 {
		points, err := runParallelismSweep(sweep, seed)
		if err != nil {
			return err
		}
		snap.ParallelismSweep = points
	}

	var file benchFile
	if data, err := os.ReadFile(path); err == nil {
		if err := json.Unmarshal(data, &file); err != nil {
			return fmt.Errorf("bench-json: %s exists but is not a benchmark file: %w", path, err)
		}
	}
	file.Snapshots = append(file.Snapshots, snap)
	out, err := json.MarshalIndent(&file, "", "  ")
	if err != nil {
		return err
	}
	return os.WriteFile(path, append(out, '\n'), 0o644)
}

// runParallelismSweep times the Figure-7 Zoltan-repart cell (xyce680s,
// structure dynamic, procs=8, α=100) at each requested Parallelism and
// reports ms_per_repart plus speedup over the sweep's serial point (the
// first entry if it includes 1, else a Parallelism=1 run is prepended).
func runParallelismSweep(settings []int, seed int64) ([]sweepPoint, error) {
	if len(settings) == 0 || settings[0] != 1 {
		settings = append([]int{1}, settings...)
	}
	points := make([]sweepPoint, 0, len(settings))
	var serialMs float64
	for _, par := range settings {
		cfg := harness.Config{
			Dataset: "xyce680s", Dynamic: "structure", ScaleV: 1200,
			Procs: []int{8}, Alphas: []int64{100},
			Trials: 1, Epochs: 3, Seed: seed, Parallelism: par,
		}
		rep, err := harness.Run(cfg)
		if err != nil {
			return nil, err
		}
		var ms float64 = -1
		for _, c := range rep.Cells {
			if c.Method == core.HypergraphRepart {
				ms = float64(c.RepartTime.Microseconds()) / 1000
				break
			}
		}
		if ms < 0 {
			return nil, fmt.Errorf("parallelism-sweep: no %v cell at parallelism %d", core.HypergraphRepart, par)
		}
		if par == 1 {
			serialMs = ms
		}
		speedup := 0.0
		if ms > 0 && serialMs > 0 {
			speedup = serialMs / ms
		}
		points = append(points, sweepPoint{Parallelism: par, MsPerRepart: ms, Speedup: speedup})
	}
	return points, nil
}
