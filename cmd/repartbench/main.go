// Command repartbench regenerates the paper's evaluation (Section 5):
// Table 1 (dataset properties), Figures 2-6 (normalized total cost per
// dataset under both dynamics) and Figures 7-8 (run times), on synthetic
// dataset analogues at laptop scale.
//
// Usage:
//
//	repartbench -table1
//	repartbench -figure 2              # both sub-figures of Figure 2
//	repartbench -figure 7              # runtime figure
//	repartbench -all                   # everything (long)
//	repartbench -dataset auto -dynamic weights -procs 8,16 -alphas 1,100
//
// Flags -trials, -epochs, -scale tune fidelity vs run time (the paper used
// 20 trials on a 64-node cluster; defaults here are scaled down).
package main

import (
	"flag"
	"fmt"
	"os"
	"runtime/pprof"
	"strconv"
	"strings"

	"hyperbal/internal/harness"
	"hyperbal/internal/obs"
)

func main() {
	var (
		table1      = flag.Bool("table1", false, "print Table 1 (paper datasets vs generated analogues)")
		figure      = flag.Int("figure", 0, "regenerate one paper figure (2-8)")
		all         = flag.Bool("all", false, "regenerate every table and figure")
		dataset     = flag.String("dataset", "", "run a single dataset experiment (registry name)")
		dynamic     = flag.String("dynamic", "structure", "dynamic for -dataset: structure | weights")
		procs       = flag.String("procs", "8,16,32", "comma-separated part counts")
		alphas      = flag.String("alphas", "1,10,100,1000", "comma-separated alpha values")
		par         = flag.Bool("parallel", false, "time the parallel partitioners (phg vs pgp) at each -procs rank count")
		trials      = flag.Int("trials", 3, "trials per configuration (paper: 20)")
		epochs      = flag.Int("epochs", 3, "repartitioning epochs per trial")
		scale       = flag.Int("scale", 0, "vertex count override (0 = dataset default)")
		seed        = flag.Int64("seed", 1, "base random seed")
		warm        = flag.Bool("warm", false, "repartition each epoch via the delta/warm-start path (hypergraph repartitioning only; others run normally)")
		parallelism = flag.Int("parallelism", 0, "worker goroutines for the sweep (0 = GOMAXPROCS; results identical for every value)")
		benchJSON   = flag.String("bench-json", "", "run the tracked benchmark suite and append a snapshot to this JSON file")
		benchLabel  = flag.String("bench-label", "current", "label for the -bench-json snapshot")
		parSweep    = flag.String("parallelism-sweep", "", "comma-separated Parallelism settings (e.g. 1,2,4,8): time the Figure-7 Zoltan-repart cell at each and record ms_per_repart + speedup in the -bench-json snapshot")
		cpuprofile  = flag.String("cpuprofile", "", "write a CPU profile to this file")
		memprofile  = flag.String("memprofile", "", "write a heap profile to this file on exit")

		metricsAddr   = flag.String("metrics-addr", "", "serve /metrics (Prometheus text, ?format=json) and /debug/pprof on this address (e.g. :9090)")
		metricsJSON   = flag.String("metrics-json", "", `write a JSON metrics snapshot to this file on exit ("-" = stdout)`)
		metricsSchema = flag.String("metrics-schema", "", "validate the exit metrics snapshot against this schema file (CI golden check)")
	)
	flag.Parse()

	if *metricsAddr != "" {
		bound, shutdown, err := obs.Serve(*metricsAddr, obs.Default())
		check(err)
		defer shutdown()
		fmt.Fprintf(os.Stderr, "repartbench: metrics on http://%s/metrics\n", bound)
	}

	if *cpuprofile != "" {
		f, err := os.Create(*cpuprofile)
		check(err)
		check(pprof.StartCPUProfile(f))
		defer func() {
			pprof.StopCPUProfile()
			f.Close()
		}()
	}
	if *memprofile != "" {
		defer func() {
			f, err := os.Create(*memprofile)
			check(err)
			defer f.Close()
			check(pprof.Lookup("allocs").WriteTo(f, 0))
		}()
	}

	ps, err := parseInts(*procs)
	check(err)
	as, err := parseInt64s(*alphas)
	check(err)

	base := harness.Config{
		Procs: ps, Alphas: as, Trials: *trials, Epochs: *epochs,
		Seed: *seed, ScaleV: *scale, Parallelism: *parallelism, Warm: *warm,
	}

	var sweep []int
	if *parSweep != "" {
		sweep, err = parseInts(*parSweep)
		check(err)
		if *benchJSON == "" {
			check(fmt.Errorf("-parallelism-sweep requires -bench-json"))
		}
	}

	switch {
	case *benchJSON != "":
		check(runBenchJSON(*benchJSON, *benchLabel, *parallelism, *seed, sweep))
	case *par:
		name := *dataset
		if name == "" {
			name = "auto"
		}
		alpha := as[0]
		cells, err := harness.ParallelRuntime(name, *scale, ps, alpha, *seed)
		check(err)
		harness.WriteParallelRuntime(os.Stdout, name, cells)
	case *table1:
		check(harness.WriteTable1(os.Stdout, *seed))
	case *all:
		check(harness.WriteTable1(os.Stdout, *seed))
		fmt.Println()
		for fig := 2; fig <= 8; fig++ {
			check(runFigure(base, fig))
		}
	case *figure != 0:
		check(runFigure(base, *figure))
	case *dataset != "":
		cfg := base
		cfg.Dataset = *dataset
		cfg.Dynamic = *dynamic
		rep, err := harness.Run(cfg)
		check(err)
		rep.WriteFigure(os.Stdout)
		rep.WriteRuntimeFigure(os.Stdout)
	default:
		flag.Usage()
		os.Exit(2)
	}

	if *metricsJSON != "" {
		check(obs.DumpJSONFile(*metricsJSON, obs.Default()))
	}
	if *metricsSchema != "" {
		schema, err := obs.ReadSchema(*metricsSchema)
		check(err)
		check(obs.CheckSnapshot(obs.Default().Snapshot(), schema))
	}
}

// runFigure regenerates one paper figure.
func runFigure(base harness.Config, fig int) error {
	switch fig {
	case 2, 3, 4, 5, 6:
		name := map[int]string{2: "xyce680s", 3: "2DLipid", 4: "auto", 5: "apoa1-10", 6: "cage14"}[fig]
		for _, dyn := range []string{"structure", "weights"} {
			cfg := base
			cfg.Dataset = name
			cfg.Dynamic = dyn
			rep, err := harness.Run(cfg)
			if err != nil {
				return err
			}
			rep.WriteFigure(os.Stdout)
		}
		return nil
	case 7:
		cfg := base
		cfg.Dataset = "xyce680s"
		cfg.Dynamic = "structure"
		rep, err := harness.Run(cfg)
		if err != nil {
			return err
		}
		rep.WriteRuntimeFigure(os.Stdout)
		return nil
	case 8:
		for _, name := range []string{"2DLipid", "auto"} {
			cfg := base
			cfg.Dataset = name
			cfg.Dynamic = "structure"
			rep, err := harness.Run(cfg)
			if err != nil {
				return err
			}
			rep.WriteRuntimeFigure(os.Stdout)
		}
		return nil
	default:
		return fmt.Errorf("no such figure %d (paper has 2-8)", fig)
	}
}

func parseInts(s string) ([]int, error) {
	var out []int
	for _, f := range strings.Split(s, ",") {
		x, err := strconv.Atoi(strings.TrimSpace(f))
		if err != nil {
			return nil, err
		}
		out = append(out, x)
	}
	return out, nil
}

func parseInt64s(s string) ([]int64, error) {
	var out []int64
	for _, f := range strings.Split(s, ",") {
		x, err := strconv.ParseInt(strings.TrimSpace(f), 10, 64)
		if err != nil {
			return nil, err
		}
		out = append(out, x)
	}
	return out, nil
}

func check(err error) {
	if err != nil {
		fmt.Fprintln(os.Stderr, "repartbench:", err)
		os.Exit(1)
	}
}
