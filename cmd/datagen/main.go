// Command datagen generates the synthetic analogues of the paper's Table 1
// datasets and writes them as hypergraph files, or prints their structural
// fingerprints.
//
// Usage:
//
//	datagen -list
//	datagen -dataset auto -n 6000 -seed 1 -o auto.hgr
package main

import (
	"bufio"
	"flag"
	"fmt"
	"os"

	"hyperbal/internal/datasets"
	"hyperbal/internal/graph"
	"hyperbal/internal/hypergraph"
	"hyperbal/internal/obs"
)

func main() {
	var (
		list    = flag.Bool("list", false, "list datasets and their paper vs default-analogue properties")
		dataset = flag.String("dataset", "", "dataset to generate")
		n       = flag.Int("n", 0, "vertex count (0 = default scale)")
		seed    = flag.Int64("seed", 1, "random seed")
		out     = flag.String("o", "", "output hypergraph file (default stdout)")

		metricsJSON = flag.String("metrics-json", "", `write a JSON metrics snapshot to this file on exit ("-" = stdout)`)
	)
	flag.Parse()
	defer func() {
		if *metricsJSON != "" {
			check(obs.DumpJSONFile(*metricsJSON, obs.Default()))
		}
	}()

	if *list {
		fmt.Printf("%-10s %-20s %10s %8s | fingerprint of default analogue\n", "name", "area", "paper |V|", "avg deg")
		for _, info := range datasets.Registry {
			g, err := datasets.Generate(info.Name, 0, *seed)
			check(err)
			s := graph.ComputeStats(g)
			fmt.Printf("%-10s %-20s %10d %8.1f | |V|=%d |E|=%d deg %d/%d/%.1f\n",
				info.Name, info.Area, info.PaperV, info.PaperAvgDeg,
				s.NumVertices, s.NumEdges, s.MinDegree, s.MaxDegree, s.AvgDegree)
		}
		return
	}
	if *dataset == "" {
		flag.Usage()
		os.Exit(2)
	}
	g, err := datasets.Generate(*dataset, *n, *seed)
	check(err)
	h := graph.ToHypergraph(g)
	s := graph.ComputeStats(g)
	fmt.Fprintf(os.Stderr, "%s: |V|=%d |E|=%d deg %d/%d/%.1f\n",
		*dataset, s.NumVertices, s.NumEdges, s.MinDegree, s.MaxDegree, s.AvgDegree)

	w := os.Stdout
	if *out != "" {
		f, err := os.Create(*out)
		check(err)
		defer f.Close()
		w = f
	}
	bw := bufio.NewWriter(w)
	check(hypergraph.WriteText(bw, h))
	check(bw.Flush())
}

func check(err error) {
	if err != nil {
		fmt.Fprintln(os.Stderr, "datagen:", err)
		os.Exit(1)
	}
}
