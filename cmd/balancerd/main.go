// Command balancerd is the hyperbal load-balancing service daemon: it
// serves the core.Balancer/core.Session epoch lifecycle over HTTP/JSON,
// multiplexing many concurrent adaptive-application sessions over a
// bounded worker pool with admission control, TTL-evicted session state,
// and a fingerprint-keyed repartition-result cache.
//
// Usage:
//
//	balancerd [-addr :8080] [-workers N] [-queue 256] [-session-ttl 15m]
//	          [-cache 4096] [-drain-timeout 30s] [-addr-file path]
//	          [-fault-max-delay 0] [-fault-seed 1] [-metrics-addr ""]
//	          [-self URL -peers URL,URL,...]
//	balancerd -gateway -replicas URL,URL,... [-addr :8080]
//	balancerd -compute-worker [-addr :8090] [-addr-file path]
//
// -compute-worker turns the process into a compute-plane rank endpoint:
// it serves the mpinet wire protocol instead of HTTP, hosting one rank
// of each partitioner world a coordinator (hgpart -net-workers, or the
// harness) launches at it. SIGTERM exits cleanly.
//
// The API mux itself serves /metrics and /metrics.json; -metrics-addr
// additionally starts the internal/obs debug server (with /debug/pprof)
// on a separate address. On SIGTERM/SIGINT the daemon drains: in-flight
// and queued epochs complete, new submissions get 503, the listener
// closes, and the process exits 0.
//
// Distributed serving: start N replicas, each with -self set to its own
// reachable URL and -peers to the full replica list, then a gateway with
// -gateway -replicas pointing at the same list. Replicas answer each
// other's partition-cache lookups and hand their sessions to a ring
// successor when drained; the gateway shards session ids across the
// replicas by consistent hashing with bounded loads.
package main

import (
	"context"
	"errors"
	"flag"
	"log"
	"net"
	"net/http"
	"os"
	"os/signal"
	"runtime"
	"strings"
	"syscall"
	"time"

	"hyperbal/internal/mpi"
	"hyperbal/internal/mpinet"
	_ "hyperbal/internal/mpinet/jobs" // partitioner jobs for -compute-worker
	"hyperbal/internal/obs"
	"hyperbal/internal/server"
)

func main() {
	var (
		addr     = flag.String("addr", ":8080", "listen address (use :0 for an ephemeral port)")
		addrFile = flag.String("addr-file", "", "write the bound address to this file once listening (for scripts driving :0)")
		workers  = flag.Int("workers", 0, "concurrently running partitioning jobs (0 = GOMAXPROCS)")
		queue    = flag.Int("queue", 256, "queued jobs beyond the running ones before 429 backpressure")
		ttl      = flag.Duration("session-ttl", 15*time.Minute, "evict sessions idle longer than this (<0 disables)")
		cache    = flag.Int("cache", 4096, "repartition-result cache entries (<0 disables)")
		maxBody  = flag.Int64("max-body", 64<<20, "maximum request body bytes")
		drainT   = flag.Duration("drain-timeout", 30*time.Second, "bound on completing in-flight epochs at shutdown")

		faultMaxDelay = flag.Duration("fault-max-delay", 0, "fault injection: seeded pseudorandom delay in [0, d) per partitioning job (mpi.FaultPlan knob at the serving tier)")
		faultSeed     = flag.Int64("fault-seed", 1, "fault injection: seed for -fault-max-delay")

		metricsAddr = flag.String("metrics-addr", "", "additionally serve the obs debug server (/metrics, /debug/pprof) on this address")

		self        = flag.String("self", "", "this replica's externally reachable base URL (enables cache peering / drain handoff with -peers)")
		peers       = flag.String("peers", "", "comma-separated replica base URLs, including -self")
		peerTimeout = flag.Duration("peer-timeout", 75*time.Millisecond, "bound on a peer cache lookup before solving locally (<0 disables peering lookups)")

		computeWorker = flag.Bool("compute-worker", false, "run as a compute-plane rank endpoint (mpinet wire protocol) instead of an HTTP replica")

		gateway    = flag.Bool("gateway", false, "run as a routing gateway over -replicas instead of a replica")
		replicas   = flag.String("replicas", "", "gateway: comma-separated replica base URLs")
		loadFactor = flag.Float64("load-factor", 1.25, "gateway: bounded-load placement factor")
	)
	flag.Parse()
	logger := log.New(os.Stderr, "balancerd: ", log.LstdFlags|log.Lmicroseconds)

	if *computeWorker {
		runComputeWorker(logger, *addr, *addrFile, *metricsAddr)
		return
	}
	if *gateway {
		runGateway(logger, *addr, *addrFile, *replicas, *loadFactor, *drainT)
		return
	}

	cfg := server.Config{
		Workers:      *workers,
		QueueDepth:   *queue,
		SessionTTL:   *ttl,
		CacheEntries: *cache,
		MaxBodyBytes: *maxBody,
		Self:         *self,
		Peers:        splitURLs(*peers),
		PeerTimeout:  *peerTimeout,
		Logf:         logger.Printf,
	}
	if cfg.Self != "" && len(cfg.Peers) > 0 {
		logger.Printf("replica set: self=%s peers=%v", cfg.Self, cfg.Peers)
	}
	if *faultMaxDelay > 0 {
		cfg.Fault = &mpi.FaultPlan{Seed: *faultSeed, MaxDelay: *faultMaxDelay}
		logger.Printf("fault injection armed: max-delay=%s seed=%d", *faultMaxDelay, *faultSeed)
	}
	srv := server.New(cfg)
	defer srv.Close()

	if *metricsAddr != "" {
		bound, shutdown, err := obs.Serve(*metricsAddr, obs.Default())
		if err != nil {
			logger.Fatalf("metrics server: %v", err)
		}
		defer shutdown()
		logger.Printf("metrics on http://%s/metrics", bound)
	}

	ln, err := net.Listen("tcp", *addr)
	if err != nil {
		logger.Fatalf("listen %s: %v", *addr, err)
	}
	bound := ln.Addr().String()
	logger.Printf("serving on http://%s (workers=%d queue=%d ttl=%s cache=%d)",
		bound, cfgWorkers(cfg), *queue, *ttl, *cache)
	if *addrFile != "" {
		if err := os.WriteFile(*addrFile, []byte(bound+"\n"), 0o644); err != nil {
			logger.Fatalf("addr-file: %v", err)
		}
	}

	httpSrv := &http.Server{
		Handler:           srv.Handler(),
		ReadHeaderTimeout: 10 * time.Second,
	}
	serveErr := make(chan error, 1)
	go func() { serveErr <- httpSrv.Serve(ln) }()

	sig := make(chan os.Signal, 1)
	signal.Notify(sig, os.Interrupt, syscall.SIGTERM)
	select {
	case s := <-sig:
		logger.Printf("received %v; draining", s)
	case err := <-serveErr:
		logger.Fatalf("serve: %v", err)
	}

	ctx, cancel := context.WithTimeout(context.Background(), *drainT)
	defer cancel()
	if err := srv.Drain(ctx); err != nil {
		logger.Printf("drain: %v (shutting down anyway)", err)
	}
	if err := httpSrv.Shutdown(ctx); err != nil {
		logger.Printf("shutdown: %v", err)
		os.Exit(1)
	}
	if err := <-serveErr; err != nil && !errors.Is(err, http.ErrServerClosed) {
		logger.Printf("serve: %v", err)
		os.Exit(1)
	}
	logger.Printf("exited cleanly")
}

// cfgWorkers reports the effective worker count for the startup line.
func cfgWorkers(cfg server.Config) int {
	if cfg.Workers > 0 {
		return cfg.Workers
	}
	return runtime.GOMAXPROCS(0)
}

// splitURLs parses a comma-separated URL list, trimming trailing slashes.
func splitURLs(s string) []string {
	var out []string
	for _, p := range strings.Split(s, ",") {
		p = strings.TrimRight(strings.TrimSpace(p), "/")
		if p != "" {
			out = append(out, p)
		}
	}
	return out
}

// runComputeWorker is the -compute-worker mode: a compute-plane rank
// endpoint speaking the mpinet wire protocol.
func runComputeWorker(logger *log.Logger, addr, addrFile, metricsAddr string) {
	if metricsAddr != "" {
		bound, shutdown, err := obs.Serve(metricsAddr, obs.Default())
		if err != nil {
			logger.Fatalf("metrics server: %v", err)
		}
		defer shutdown()
		logger.Printf("metrics on http://%s/metrics", bound)
	}
	ln, err := net.Listen("tcp", addr)
	if err != nil {
		logger.Fatalf("listen %s: %v", addr, err)
	}
	bound := ln.Addr().String()
	logger.Printf("compute worker on %s", bound)
	if addrFile != "" {
		if err := os.WriteFile(addrFile, []byte(bound+"\n"), 0o644); err != nil {
			logger.Fatalf("addr-file: %v", err)
		}
	}

	w := mpinet.NewWorker(ln)
	serveErr := make(chan error, 1)
	go func() { serveErr <- w.Serve() }()

	sig := make(chan os.Signal, 1)
	signal.Notify(sig, os.Interrupt, syscall.SIGTERM)
	select {
	case s := <-sig:
		logger.Printf("received %v; shutting down", s)
	case err := <-serveErr:
		logger.Fatalf("serve: %v", err)
	}
	w.Close()
	<-serveErr
	logger.Printf("exited cleanly")
}

// runGateway is the -gateway mode: a routing tier over -replicas.
func runGateway(logger *log.Logger, addr, addrFile, replicas string, loadFactor float64, drainT time.Duration) {
	urls := splitURLs(replicas)
	if len(urls) == 0 {
		logger.Fatalf("-gateway requires -replicas URL,URL,...")
	}
	gw, err := server.NewGateway(server.GatewayConfig{
		Replicas:   urls,
		LoadFactor: loadFactor,
		Logf:       logger.Printf,
	})
	if err != nil {
		logger.Fatalf("gateway: %v", err)
	}
	defer gw.Close()

	ln, err := net.Listen("tcp", addr)
	if err != nil {
		logger.Fatalf("listen %s: %v", addr, err)
	}
	bound := ln.Addr().String()
	logger.Printf("gateway on http://%s over %d replicas %v", bound, len(urls), urls)
	if addrFile != "" {
		if err := os.WriteFile(addrFile, []byte(bound+"\n"), 0o644); err != nil {
			logger.Fatalf("addr-file: %v", err)
		}
	}

	httpSrv := &http.Server{Handler: gw.Handler(), ReadHeaderTimeout: 10 * time.Second}
	serveErr := make(chan error, 1)
	go func() { serveErr <- httpSrv.Serve(ln) }()

	sig := make(chan os.Signal, 1)
	signal.Notify(sig, os.Interrupt, syscall.SIGTERM)
	select {
	case s := <-sig:
		logger.Printf("received %v; shutting down", s)
	case err := <-serveErr:
		logger.Fatalf("serve: %v", err)
	}
	ctx, cancel := context.WithTimeout(context.Background(), drainT)
	defer cancel()
	if err := httpSrv.Shutdown(ctx); err != nil {
		logger.Printf("shutdown: %v", err)
		os.Exit(1)
	}
	logger.Printf("exited cleanly")
}
