// Command loadgen is a closed-loop load generator for balancerd: it
// drives N concurrent sessions over the Table-1 dataset analogues, each
// session running E epochs of drift -> submit -> observe against the
// service, and reports throughput, p50/p99 latency (from internal/obs
// histograms), the server's cache hit-rate, and a zero-dropped-epochs
// verdict. With -bench-json it appends a snapshot to BENCH_serve.json.
//
// Usage:
//
//	loadgen -addr http://127.0.0.1:8080 [-sessions 100] [-epochs 3]
//	        [-datasets xyce680s] [-n 1200] [-k 8] [-alpha 100]
//	        [-dynamic weights|structure] [-distinct-seeds]
//	        [-wire binary,json] [-scenario delta-drift|concurrent-identical]
//	        [-warm] [-bench-json BENCH_serve.json] [-check-schema schema.json]
//
// -wire lists the codecs to exercise; each entry gets a full independent
// run (local metrics reset in between, server-side counters diffed around
// the run), so a "binary,json" sweep appends one comparable bench snapshot
// per codec.
//
// -scenario delta-drift submits every epoch as a PATCH delta against the
// previous one instead of a full hypergraph; -warm additionally asks the
// server to warm-start each repartition from the inherited distribution.
// The bench snapshot then records wire bytes by op, the server's
// delta-vs-full-resync byte estimate, and warm/cold repartition times.
//
// -scenario concurrent-identical releases every session's create through a
// start barrier at once, all with the same seed: the server's singleflight
// group collapses the identical cold solves to one leader, and the bench
// snapshot records the leader/shared split.
//
// -scenario replica-kill drives a distributed deployment (-addr pointing at
// the gateway) and SIGTERMs the balancerd replica with pid -kill-pid after
// -kill-after: the replica drains, hands its sessions to a ring successor,
// and the run must finish with zero dropped epochs — the gateway retarget
// and client retry counters quantify the disruption window. -think paces
// each session between epochs so the run spans the kill.
//
// By default every session runs the identical workload (same seed), which
// exercises the server's fingerprint-keyed partition cache: the first
// session computes each epoch, the rest are cache hits. -distinct-seeds
// gives every session its own drift, forcing full partitioning load.
package main

import (
	"context"
	"encoding/json"
	"flag"
	"fmt"
	"net/http"
	"os"
	"runtime"
	"strings"
	"sync"
	"sync/atomic"
	"syscall"
	"time"

	"hyperbal"
	"hyperbal/internal/core"
	"hyperbal/internal/datasets"
	"hyperbal/internal/dynamics"
	"hyperbal/internal/graph"
	"hyperbal/internal/hypergraph"
	"hyperbal/internal/obs"
)

// Latency histograms and counters of the closed loop, in the same obs
// registry the rest of the pipeline uses.
var (
	lgCreateNs = obs.Default().Histogram("loadgen_create_ns", obs.DurationBounds)
	lgEpochNs  = obs.Default().Histogram("loadgen_epoch_ns", obs.DurationBounds)
	lgEpochsOK = obs.Default().Counter("loadgen_epochs_ok_total")
	lgCached   = obs.Default().Counter("loadgen_epochs_cached_total")
	lgDropped  = obs.Default().Counter("loadgen_epochs_dropped_total")
)

func main() {
	var (
		addr     = flag.String("addr", "", "balancerd base URL (required), e.g. http://127.0.0.1:8080")
		sessions = flag.Int("sessions", 100, "concurrent sessions")
		epochs   = flag.Int("epochs", 3, "epochs per session")
		dsList   = flag.String("datasets", "xyce680s", "comma-separated dataset analogues, assigned round-robin")
		n        = flag.Int("n", 1200, "vertex count per dataset analogue")
		k        = flag.Int("k", 8, "parts")
		alpha    = flag.Int64("alpha", 100, "iterations per epoch")
		dynamic  = flag.String("dynamic", "weights", "weights | structure drift")
		method   = flag.String("method", "Zoltan-repart", "load-balancing method")
		seed     = flag.Int64("seed", 1, "base random seed")
		distinct = flag.Bool("distinct-seeds", false, "give every session its own seed (defeats the partition cache)")
		wireList = flag.String("wire", "binary", "comma-separated wire codecs to run (binary|json); each gets a full independent run")
		scenario = flag.String("scenario", "", "named scenario: delta-drift (PATCH deltas), concurrent-identical (singleflight collapse), or replica-kill (SIGTERM a replica mid-run)")
		warm     = flag.Bool("warm", false, "ask the server to warm-start delta epochs from the inherited distribution (delta-drift only)")

		killPid   = flag.Int("kill-pid", 0, "replica-kill: pid of the balancerd replica to SIGTERM mid-run")
		killAfter = flag.Duration("kill-after", 2*time.Second, "replica-kill: delay from run start to the SIGTERM")
		think     = flag.Duration("think", 0, "pause between a session's epochs (paces the run, e.g. across a replica kill)")

		timeout = flag.Duration("timeout", 2*time.Minute, "per-request timeout")
		retries = flag.Int("retries", 5, "max retries per request")

		benchJSON   = flag.String("bench-json", "", "append a throughput/latency snapshot to this JSON file")
		benchLabel  = flag.String("bench-label", "current", "label for the -bench-json snapshot")
		checkSchema = flag.String("check-schema", "", "validate the server's /metrics.json against this obs schema file")
	)
	flag.Parse()
	if *addr == "" {
		fmt.Fprintln(os.Stderr, "loadgen: -addr is required")
		flag.Usage()
		os.Exit(2)
	}
	names := strings.Split(*dsList, ",")
	m, err := core.ParseMethod(*method)
	check(err)
	useDelta, barrier := false, false
	switch *scenario {
	case "":
	case "delta-drift":
		useDelta = true
	case "concurrent-identical":
		barrier = true
	case "replica-kill":
		if *killPid <= 0 {
			fmt.Fprintln(os.Stderr, "loadgen: -scenario replica-kill requires -kill-pid")
			os.Exit(2)
		}
	default:
		fmt.Fprintf(os.Stderr, "loadgen: unknown scenario %q (have: delta-drift, concurrent-identical, replica-kill)\n", *scenario)
		os.Exit(2)
	}
	if *killPid > 0 && *scenario != "replica-kill" {
		fmt.Fprintln(os.Stderr, "loadgen: -kill-pid requires -scenario replica-kill")
		os.Exit(2)
	}
	if *warm && !useDelta {
		fmt.Fprintln(os.Stderr, "loadgen: -warm requires -scenario delta-drift")
		os.Exit(2)
	}
	if barrier && *distinct {
		fmt.Fprintln(os.Stderr, "loadgen: -scenario concurrent-identical needs identical seeds; drop -distinct-seeds")
		os.Exit(2)
	}
	wires := strings.Split(*wireList, ",")
	for _, w := range wires {
		if w != "binary" && w != "json" {
			fmt.Fprintf(os.Stderr, "loadgen: unknown wire codec %q (have: binary, json)\n", w)
			os.Exit(2)
		}
	}

	failed := false
	for _, wire := range wires {
		label := *benchLabel
		if len(wires) > 1 {
			label += "-" + wire
		}
		if !runLoad(loadRun{
			addr: *addr, wire: wire, sessions: *sessions, epochs: *epochs,
			names: names, n: *n, k: *k, alpha: *alpha, m: m, dynamic: *dynamic,
			seed: *seed, distinct: *distinct, useDelta: useDelta, warm: *warm,
			barrier: barrier, scenario: *scenario,
			killPid: *killPid, killAfter: *killAfter, think: *think,
			timeout: *timeout, retries: *retries,
			benchJSON: *benchJSON, benchLabel: label, checkSchema: *checkSchema,
		}) {
			failed = true
		}
	}
	if failed {
		os.Exit(1)
	}
	fmt.Println("loadgen: all epochs served (zero dropped)")
}

// loadRun is one full load-generation pass over a single wire codec.
type loadRun struct {
	addr     string
	wire     string
	sessions int
	epochs   int
	names    []string
	n, k     int
	alpha    int64
	m        core.Method
	dynamic  string
	seed     int64
	distinct bool
	useDelta bool
	warm     bool
	// barrier releases every session's create simultaneously
	// (concurrent-identical scenario).
	barrier  bool
	scenario string
	// replica-kill scenario: SIGTERM killPid after killAfter; think paces
	// sessions between epochs so the run spans the kill.
	killPid   int
	killAfter time.Duration
	think     time.Duration

	timeout time.Duration
	retries int

	benchJSON   string
	benchLabel  string
	checkSchema string
}

// runLoad drives one complete pass and reports/benchmarks it. Local obs
// metrics are reset at entry so per-codec numbers do not bleed between
// passes; server-side counters (cumulative since server start) are diffed
// around the pass. Returns false when any epoch dropped.
func runLoad(rc loadRun) bool {
	obs.Default().Reset()
	before, _ := fetchServerMetrics(rc.addr)

	client := hyperbal.NewClient(rc.addr, hyperbal.ClientOptions{
		RequestTimeout: rc.timeout,
		MaxRetries:     rc.retries,
		Wire:           rc.wire,
	})

	var gate chan struct{}
	if rc.barrier {
		gate = make(chan struct{})
	}
	var failures atomic.Int64
	var wg sync.WaitGroup
	start := time.Now()
	if rc.killPid > 0 {
		killTimer := time.AfterFunc(rc.killAfter, func() {
			proc, err := os.FindProcess(rc.killPid)
			if err == nil {
				err = proc.Signal(syscall.SIGTERM)
			}
			if err != nil {
				fmt.Fprintf(os.Stderr, "loadgen: replica-kill: SIGTERM pid %d: %v\n", rc.killPid, err)
				return
			}
			fmt.Printf("loadgen: replica-kill: SIGTERM sent to pid %d after %s\n", rc.killPid, rc.killAfter.Round(time.Millisecond))
		})
		defer killTimer.Stop()
	}
	for i := 0; i < rc.sessions; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			sseed := rc.seed
			if rc.distinct {
				sseed += int64(i)
			}
			name := rc.names[i%len(rc.names)]
			if gate != nil {
				<-gate
			}
			if err := runSession(client, name, rc.n, rc.k, rc.alpha, rc.m, rc.dynamic, sseed, rc.epochs, rc.useDelta, rc.warm, rc.think); err != nil {
				failures.Add(1)
				fmt.Fprintf(os.Stderr, "loadgen: session %d (%s): %v\n", i, name, err)
			}
		}(i)
	}
	if gate != nil {
		close(gate)
	}
	wg.Wait()
	elapsed := time.Since(start)

	ok := lgEpochsOK.Load()
	dropped := lgDropped.Load()
	total := int64(rc.sessions) * int64(rc.epochs+1) // +1: the create partitioning
	fmt.Printf("loadgen: %d sessions x %d epochs on %v (%s drift, method %s, %s wire)\n",
		rc.sessions, rc.epochs, rc.names, rc.dynamic, rc.m, rc.wire)
	fmt.Printf("  wall time        %s\n", elapsed.Round(time.Millisecond))
	fmt.Printf("  ops ok/dropped   %d/%d (of %d)\n", ok, dropped, total)
	fmt.Printf("  throughput       %.1f ops/s\n", float64(ok)/elapsed.Seconds())
	fmt.Printf("  create p50/p99   %.2f / %.2f ms\n", ms(lgCreateNs.Quantile(0.50)), ms(lgCreateNs.Quantile(0.99)))
	fmt.Printf("  epoch  p50/p99   %.2f / %.2f ms\n", ms(lgEpochNs.Quantile(0.50)), ms(lgEpochNs.Quantile(0.99)))
	fmt.Printf("  client cached    %d/%d responses\n", lgCached.Load(), ok)

	snap, _ := fetchServerMetrics(rc.addr)
	serverHitRate := -1.0
	if snap != nil {
		hits := counterDiff(before, snap, "server_cache_hits_total")
		misses := counterDiff(before, snap, "server_cache_misses_total")
		if hits+misses == 0 {
			serverHitRate = 0
		} else {
			serverHitRate = float64(hits) / float64(hits+misses)
		}
		fmt.Printf("  server cache     %.1f%% hit rate\n", 100*serverHitRate)
	}
	epochWire := labeledCounter("client_bytes_sent_total", "op", "epoch")
	deltaWire := labeledCounter("client_bytes_sent_total", "op", "delta")
	deltaFallbacks := snapshotCounter("client_delta_fallbacks_total")
	rxBytes := counterDiff(before, snap, "server_wire_rx_bytes_total{codec=\""+rc.wire+"\"}")
	txBytes := counterDiff(before, snap, "server_wire_tx_bytes_total{codec=\""+rc.wire+"\"}")
	sfLeaders := counterDiff(before, snap, "server_singleflight_leaders_total")
	sfShared := counterDiff(before, snap, "server_singleflight_shared_total")
	if snap != nil {
		fmt.Printf("  server wire      %d B in / %d B out (%s)\n", rxBytes, txBytes, rc.wire)
	}
	serverDeltaBytes := counterDiff(before, snap, "server_delta_bytes_total")
	serverDeltaFullEst := counterDiff(before, snap, "server_delta_full_bytes_estimated_total")
	warmAvgMs := histDiffAvgMs(before, snap, "server_epoch_warm_ns")
	coldAvgMs := histDiffAvgMs(before, snap, "server_epoch_cold_ns")
	if rc.useDelta {
		fmt.Printf("  delta wire       %d B sent as deltas, %d B as full epochs, %d fallbacks\n",
			deltaWire, epochWire, deltaFallbacks)
		if serverDeltaFullEst > 0 {
			fmt.Printf("  server wire      %d B received vs ~%d B full-resync equivalent (%.1f%% saved)\n",
				serverDeltaBytes, serverDeltaFullEst,
				100*(1-float64(serverDeltaBytes)/float64(serverDeltaFullEst)))
		}
		if warmAvgMs > 0 && coldAvgMs > 0 {
			fmt.Printf("  server repart    warm %.2f ms avg vs cold %.2f ms avg (%.2fx)\n",
				warmAvgMs, coldAvgMs, coldAvgMs/warmAvgMs)
		}
	}
	if rc.barrier {
		fmt.Printf("  singleflight     %d leaders, %d shared followers\n", sfLeaders, sfShared)
	}
	ownerHops := snapshotCounter("client_owner_redirects_total")
	gwRetargets := counterDiff(before, snap, "gateway_retargets_total")
	if rc.killPid > 0 {
		fmt.Printf("  replica kill     %d gateway retargets, %d client owner redirects, %d client retries\n",
			gwRetargets, ownerHops, snapshotCounter("client_retries_total"))
	}
	if rc.checkSchema != "" {
		if snap == nil {
			fmt.Fprintln(os.Stderr, "loadgen: -check-schema: could not fetch server metrics")
			os.Exit(1)
		}
		schema, err := obs.ReadSchema(rc.checkSchema)
		check(err)
		check(obs.CheckSnapshot(*snap, schema))
		fmt.Printf("  metrics schema   ok (%s)\n", rc.checkSchema)
	}

	if rc.benchJSON != "" {
		check(writeBench(rc.benchJSON, rc.benchLabel, benchSnapshot{
			Label: rc.benchLabel, Date: time.Now().UTC().Format("2006-01-02"),
			GoMaxProcs: runtime.GOMAXPROCS(0),
			Sessions:   rc.sessions, EpochsPerSession: rc.epochs,
			Datasets: rc.names, ScaleV: rc.n, K: rc.k, Alpha: rc.alpha,
			Dynamic: rc.dynamic, Method: rc.m.String(), DistinctSeeds: rc.distinct,
			Wire:          rc.wire,
			DurationMs:    float64(elapsed.Microseconds()) / 1000,
			OpsOK:         ok,
			OpsDropped:    dropped,
			ThroughputOps: float64(ok) / elapsed.Seconds(),
			CreateP50Ms:   ms(lgCreateNs.Quantile(0.50)), CreateP99Ms: ms(lgCreateNs.Quantile(0.99)),
			EpochP50Ms: ms(lgEpochNs.Quantile(0.50)), EpochP99Ms: ms(lgEpochNs.Quantile(0.99)),
			ClientCachedFrac:     frac(lgCached.Load(), ok),
			ServerCacheHitRate:   serverHitRate,
			Retries:              snapshotCounter("client_retries_total"),
			Scenario:             rc.scenario,
			Warm:                 rc.warm,
			ClientEpochWireBytes: epochWire,
			ClientDeltaWireBytes: deltaWire,
			ClientDeltaFallbacks: deltaFallbacks,
			ServerRxBytes:        rxBytes,
			ServerTxBytes:        txBytes,
			SingleflightLeaders:  sfLeaders,
			SingleflightShared:   sfShared,
			OwnerRedirects:       ownerHops,
			GatewayRetargets:     gwRetargets,
			SessionsFailed:       failures.Load(),
			ServerDeltaBytes:     serverDeltaBytes,
			ServerDeltaFullEst:   serverDeltaFullEst,
			ServerWarmAvgMs:      warmAvgMs,
			ServerColdAvgMs:      coldAvgMs,
		}))
		fmt.Printf("  bench snapshot   appended to %s\n", rc.benchJSON)
	}

	if dropped > 0 || failures.Load() > 0 {
		fmt.Fprintf(os.Stderr, "loadgen: FAILED: %d dropped epochs, %d failed sessions\n", dropped, failures.Load())
		return false
	}
	return true
}

// runSession drives one full session lifecycle against the server. With
// useDelta it submits every epoch as a PATCH delta against the previous
// hypergraph (the client falls back to full submissions transparently);
// warm additionally asks the server to warm-start from the inherited
// distribution.
func runSession(client *hyperbal.Client, dataset string, n, k int, alpha int64, m core.Method, dynamic string, seed int64, epochs int, useDelta, warm bool, think time.Duration) error {
	ctx := context.Background()
	g, err := datasets.Generate(dataset, n, seed)
	if err != nil {
		return err
	}
	h := graph.ToHypergraph(g)
	cfg := core.Config{K: k, Alpha: alpha, Seed: seed, Method: m}

	t0 := time.Now()
	sess, first, err := client.CreateSession(ctx, cfg, h)
	if err != nil {
		lgDropped.Inc()
		return fmt.Errorf("create: %w", err)
	}
	lgCreateNs.ObserveSince(t0)
	lgEpochsOK.Inc()
	if first.Cached {
		lgCached.Inc()
	}

	var gen dynamics.Generator
	switch dynamic {
	case "structure":
		gen, err = dynamics.NewStructural(g, first.Partition, k, 0.25, 0.5, seed*3+1)
	case "weights":
		gen, err = dynamics.NewRefinement(g, first.Partition, k, 0.1, 1.5, 7.5, seed*3+2)
	default:
		err = fmt.Errorf("unknown dynamic %q", dynamic)
	}
	if err != nil {
		return err
	}

	// prevIDs tracks the stable vertex ids of the last submitted epoch so
	// structural deltas can translate the base vertex space; epoch 0 is the
	// identity (every generator vertex alive, in order).
	var prevIDs []int32
	if useDelta && dynamic == "structure" {
		prevIDs = make([]int32, g.NumVertices())
		for i := range prevIDs {
			prevIDs[i] = int32(i)
		}
	}

	for e := 1; e <= epochs; e++ {
		if think > 0 {
			time.Sleep(think)
		}
		prob, old := gen.Next()
		t := time.Now()
		var res hyperbal.RemoteResult
		switch {
		case useDelta && dynamic == "structure":
			st := gen.(*dynamics.Structural)
			curIDs := st.AliveMap()
			vmap := hypergraph.VertexMapFromIDs(prevIDs, curIDs)
			prevIDs = append(prevIDs[:0], curIDs...)
			res, err = sess.SubmitEpochDeltaMapped(ctx, prob.H, vmap, old, warm)
		case useDelta:
			res, err = sess.SubmitEpochDelta(ctx, prob.H, warm)
		case prob.H.NumVertices() != len(first.Partition.Parts) || dynamic == "structure":
			res, err = sess.SubmitEpochInherited(ctx, prob.H, old)
		default:
			res, err = sess.SubmitEpoch(ctx, prob.H)
		}
		if err != nil {
			lgDropped.Inc()
			return fmt.Errorf("epoch %d: %w", e, err)
		}
		lgEpochNs.ObserveSince(t)
		lgEpochsOK.Inc()
		if res.Cached {
			lgCached.Inc()
		}
		if err := gen.Observe(res.Partition); err != nil {
			return fmt.Errorf("epoch %d observe: %w", e, err)
		}
	}
	return sess.Close(ctx)
}

// fetchServerMetrics pulls the server's obs snapshot and derives the
// partition-cache hit rate (-1 when unavailable).
func fetchServerMetrics(base string) (*obs.Snapshot, float64) {
	resp, err := http.Get(strings.TrimRight(base, "/") + "/metrics.json")
	if err != nil {
		return nil, -1
	}
	defer resp.Body.Close()
	var snap obs.Snapshot
	if err := json.NewDecoder(resp.Body).Decode(&snap); err != nil {
		return nil, -1
	}
	hits := snap.Counters["server_cache_hits_total"]
	misses := snap.Counters["server_cache_misses_total"]
	if hits+misses == 0 {
		return &snap, 0
	}
	return &snap, float64(hits) / float64(hits+misses)
}

// snapshotCounter reads one counter from the local registry.
func snapshotCounter(name string) int64 {
	return obs.Default().Counter(name).Load()
}

// labeledCounter reads one labeled counter from the local registry.
func labeledCounter(name, label, value string) int64 {
	return obs.Default().Counter(name, label, value).Load()
}

// counterDiff reads how much a server counter grew across this run:
// after-value minus before-value (0 when the after snapshot is missing;
// a missing before snapshot counts as zero).
func counterDiff(before, after *obs.Snapshot, key string) int64 {
	if after == nil {
		return 0
	}
	v := after.Counters[key]
	if before != nil {
		v -= before.Counters[key]
	}
	return v
}

// histDiffAvgMs derives the mean sample in milliseconds of a server
// histogram restricted to this run, by diffing count and sum across the
// before/after snapshots.
func histDiffAvgMs(before, after *obs.Snapshot, key string) float64 {
	if after == nil {
		return 0
	}
	h := after.Histograms[key]
	count, sum := h.Count, h.Sum
	if before != nil {
		b := before.Histograms[key]
		count -= b.Count
		sum -= b.Sum
	}
	if count == 0 {
		return 0
	}
	return float64(sum) / float64(count) / 1e6
}

func ms(ns int64) float64 { return float64(ns) / 1e6 }

func frac(a, b int64) float64 {
	if b == 0 {
		return 0
	}
	return float64(a) / float64(b)
}

// benchSnapshot is one BENCH_serve.json entry.
type benchSnapshot struct {
	Label            string   `json:"label"`
	Date             string   `json:"date"`
	GoMaxProcs       int      `json:"gomaxprocs"`
	Sessions         int      `json:"sessions"`
	EpochsPerSession int      `json:"epochs_per_session"`
	Datasets         []string `json:"datasets"`
	ScaleV           int      `json:"scale_v"`
	K                int      `json:"k"`
	Alpha            int64    `json:"alpha"`
	Dynamic          string   `json:"dynamic"`
	Method           string   `json:"method"`
	DistinctSeeds    bool     `json:"distinct_seeds"`
	Wire             string   `json:"wire,omitempty"`

	DurationMs    float64 `json:"duration_ms"`
	OpsOK         int64   `json:"ops_ok"`
	OpsDropped    int64   `json:"ops_dropped"`
	ThroughputOps float64 `json:"throughput_ops_per_s"`
	CreateP50Ms   float64 `json:"create_p50_ms"`
	CreateP99Ms   float64 `json:"create_p99_ms"`
	EpochP50Ms    float64 `json:"epoch_p50_ms"`
	EpochP99Ms    float64 `json:"epoch_p99_ms"`

	ClientCachedFrac   float64 `json:"client_cached_frac"`
	ServerCacheHitRate float64 `json:"server_cache_hit_rate"`
	Retries            int64   `json:"retries"`

	// Delta-drift scenario accounting. Wire bytes are split by submission
	// op: "delta" is PATCH delta traffic, "epoch" full POST bodies (create
	// excluded from both). Server counters are cumulative since server
	// start; benchmarks run loadgen against a freshly started balancerd.
	Scenario             string  `json:"scenario,omitempty"`
	Warm                 bool    `json:"warm,omitempty"`
	ClientEpochWireBytes int64   `json:"client_epoch_wire_bytes,omitempty"`
	ClientDeltaWireBytes int64   `json:"client_delta_wire_bytes,omitempty"`
	ClientDeltaFallbacks int64   `json:"client_delta_fallbacks,omitempty"`
	// Server-side payload bytes for this run's codec and the singleflight
	// leader/shared split (concurrent-identical scenario), both diffed
	// around the run so multi-codec sweeps stay comparable.
	ServerRxBytes       int64 `json:"server_rx_bytes,omitempty"`
	ServerTxBytes       int64 `json:"server_tx_bytes,omitempty"`
	SingleflightLeaders int64 `json:"singleflight_leaders,omitempty"`
	SingleflightShared  int64 `json:"singleflight_shared,omitempty"`
	// Replica-kill scenario accounting: the disruption window of a replica
	// SIGTERM mid-run, as seen by the client (307 owner redirects followed)
	// and the gateway (retargeted requests). SessionsFailed must stay 0 —
	// drain handoff is required to lose no sessions.
	OwnerRedirects   int64 `json:"client_owner_redirects,omitempty"`
	GatewayRetargets int64 `json:"gateway_retargets,omitempty"`
	SessionsFailed   int64 `json:"sessions_failed,omitempty"`
	ServerDeltaBytes     int64   `json:"server_delta_bytes,omitempty"`
	ServerDeltaFullEst   int64   `json:"server_delta_full_bytes_est,omitempty"`
	ServerWarmAvgMs      float64 `json:"server_warm_avg_ms,omitempty"`
	ServerColdAvgMs      float64 `json:"server_cold_avg_ms,omitempty"`
	Notes                string  `json:"notes,omitempty"`
}

type benchFile struct {
	Snapshots []benchSnapshot `json:"snapshots"`
}

// writeBench appends a snapshot to path, creating the file if needed.
func writeBench(path, label string, snap benchSnapshot) error {
	var file benchFile
	if data, err := os.ReadFile(path); err == nil {
		if err := json.Unmarshal(data, &file); err != nil {
			return fmt.Errorf("bench-json: %s exists but is not a benchmark file: %w", path, err)
		}
	}
	file.Snapshots = append(file.Snapshots, snap)
	out, err := json.MarshalIndent(&file, "", "  ")
	if err != nil {
		return err
	}
	return os.WriteFile(path, append(out, '\n'), 0o644)
}

func check(err error) {
	if err != nil {
		fmt.Fprintln(os.Stderr, "loadgen:", err)
		os.Exit(1)
	}
}
