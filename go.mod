module hyperbal

go 1.22
