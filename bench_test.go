// Benchmarks regenerating every table and figure of the paper's
// evaluation (Section 5), plus the ablations called out in DESIGN.md §7.
//
// Each BenchmarkFigN* runs the corresponding experiment at laptop scale
// and reports the figure's quantities as custom metrics:
//
//	comm/epoch      average communication volume per epoch
//	mig/epoch       average migration volume per epoch
//	normcost        normalized total cost (comm + mig/α), the bar height
//	                in Figures 2-6
//	ms/repart       repartitioning time, the bar height in Figures 7-8
//
// Run: go test -bench=. -benchmem   (full sweep: cmd/repartbench -all)
package hyperbal_test

import (
	"testing"

	"hyperbal"
	"hyperbal/internal/core"
	"hyperbal/internal/datasets"
	"hyperbal/internal/graph"
	"hyperbal/internal/harness"
	"hyperbal/internal/hgp"
	"hyperbal/internal/partition"
)

// benchScale keeps per-iteration work modest; cmd/repartbench runs the
// full-scale sweep.
const benchScale = 1200

// figureConfig is the reduced sweep used inside benchmarks.
func figureConfig(dataset, dynamic string) harness.Config {
	return harness.Config{
		Dataset: dataset,
		ScaleV:  benchScale,
		Dynamic: dynamic,
		Procs:   []int{8},
		Alphas:  []int64{1, 100},
		Trials:  1,
		Epochs:  2,
		Seed:    1,
	}
}

// benchFigure runs one dataset × dynamic experiment per iteration and
// reports the figure quantities for the paper's headline cell (α=1,
// Zoltan-repart) plus the winner rate against ParMETIS-repart.
func benchFigure(b *testing.B, dataset, dynamic string) {
	b.Helper()
	var last *harness.Report
	for i := 0; i < b.N; i++ {
		rep, err := harness.Run(figureConfig(dataset, dynamic))
		if err != nil {
			b.Fatal(err)
		}
		last = rep
	}
	reportFigureMetrics(b, last)
}

func reportFigureMetrics(b *testing.B, rep *harness.Report) {
	b.Helper()
	var zr, pr *harness.Cell
	for i := range rep.Cells {
		c := &rep.Cells[i]
		if c.Alpha != 1 {
			continue
		}
		switch c.Method {
		case core.HypergraphRepart:
			zr = c
		case core.GraphRepart:
			pr = c
		}
	}
	if zr != nil {
		b.ReportMetric(zr.CommVolume, "comm/epoch")
		b.ReportMetric(zr.MigrationVolume, "mig/epoch")
		b.ReportMetric(zr.NormalizedCost, "normcost")
	}
	if zr != nil && pr != nil && pr.NormalizedCost > 0 {
		b.ReportMetric(zr.NormalizedCost/pr.NormalizedCost, "zoltan/parmetis")
	}
}

// ---- Table 1 ----

// BenchmarkTable1Stats regenerates the dataset analogues and their Table 1
// statistics.
func BenchmarkTable1Stats(b *testing.B) {
	for i := 0; i < b.N; i++ {
		for _, info := range datasets.Registry {
			g, err := datasets.Generate(info.Name, benchScale, 1)
			if err != nil {
				b.Fatal(err)
			}
			s := graph.ComputeStats(g)
			if s.NumEdges == 0 {
				b.Fatal("degenerate dataset")
			}
		}
	}
}

// ---- Figures 2-6: normalized total cost ----

func BenchmarkFig2XyceStructure(b *testing.B)  { benchFigure(b, "xyce680s", "structure") }
func BenchmarkFig2XyceWeights(b *testing.B)    { benchFigure(b, "xyce680s", "weights") }
func BenchmarkFig3LipidStructure(b *testing.B) { benchFigure(b, "2DLipid", "structure") }
func BenchmarkFig3LipidWeights(b *testing.B)   { benchFigure(b, "2DLipid", "weights") }
func BenchmarkFig4AutoStructure(b *testing.B)  { benchFigure(b, "auto", "structure") }
func BenchmarkFig4AutoWeights(b *testing.B)    { benchFigure(b, "auto", "weights") }
func BenchmarkFig5ApoaStructure(b *testing.B)  { benchFigure(b, "apoa1-10", "structure") }
func BenchmarkFig5ApoaWeights(b *testing.B)    { benchFigure(b, "apoa1-10", "weights") }
func BenchmarkFig6CageStructure(b *testing.B)  { benchFigure(b, "cage14", "structure") }
func BenchmarkFig6CageWeights(b *testing.B)    { benchFigure(b, "cage14", "weights") }

// ---- Figures 7-8: run time ----

// benchRuntime times one repartitioning operation per method per
// iteration, the quantity of Figures 7-8.
func benchRuntime(b *testing.B, dataset string) {
	g, err := datasets.Generate(dataset, benchScale, 1)
	if err != nil {
		b.Fatal(err)
	}
	prob := hyperbal.Problem{G: g, H: hyperbal.GraphToHypergraph(g)}
	for _, m := range []hyperbal.Method{hyperbal.HypergraphRepart, hyperbal.GraphRepart} {
		b.Run(m.String(), func(b *testing.B) {
			bal, err := hyperbal.NewBalancer(hyperbal.BalancerConfig{
				K: 8, Alpha: 100, Seed: 2, Method: m,
			})
			if err != nil {
				b.Fatal(err)
			}
			first, err := bal.Partition(prob)
			if err != nil {
				b.Fatal(err)
			}
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				if _, err := bal.Repartition(prob, first.Partition, int64(i)); err != nil {
					b.Fatal(err)
				}
			}
		})
	}
}

func BenchmarkFig7RuntimeXyce(b *testing.B)  { benchRuntime(b, "xyce680s") }
func BenchmarkFig8RuntimeLipid(b *testing.B) { benchRuntime(b, "2DLipid") }
func BenchmarkFig8RuntimeAuto(b *testing.B)  { benchRuntime(b, "auto") }

// ---- Ablations (DESIGN.md §7) ----

// BenchmarkAblationMatchFilter (A1): fixed-vertex IPM filtering on vs off.
// The paper claims the filter "only adds an insignificant overhead".
func BenchmarkAblationMatchFilter(b *testing.B) {
	g, err := datasets.Generate("auto", benchScale, 3)
	if err != nil {
		b.Fatal(err)
	}
	h := hyperbal.GraphToHypergraph(g)
	for _, tc := range []struct {
		name    string
		disable bool
	}{{"filter-on", false}, {"filter-off", true}} {
		b.Run(tc.name, func(b *testing.B) {
			for i := 0; i < b.N; i++ {
				_, err := hgp.Partition(h, hgp.Options{
					K: 8, Seed: int64(i), DisableMatchFilter: tc.disable,
				})
				if err != nil {
					b.Fatal(err)
				}
			}
		})
	}
}

// BenchmarkAblationModelVsRefineOnly (A2): migration modeled in the
// hypergraph from coarsening onward (the paper's model) vs accounted only
// during refinement — both the hypergraph refine-only ablation and the
// ParMETIS-style unified scheme. Reports each method's α=1 total cost
// after a structural perturbation (the regime where refinement-only gets
// stuck in the inherited partition's local minimum).
func BenchmarkAblationModelVsRefineOnly(b *testing.B) {
	g, err := datasets.Generate("auto", benchScale, 5)
	if err != nil {
		b.Fatal(err)
	}
	prob := hyperbal.Problem{G: g, H: hyperbal.GraphToHypergraph(g)}
	for _, m := range []hyperbal.Method{hyperbal.HypergraphRepart, core.HypergraphRefineOnly, hyperbal.GraphRepart} {
		b.Run(m.String(), func(b *testing.B) {
			bal, err := hyperbal.NewBalancer(hyperbal.BalancerConfig{K: 8, Alpha: 1, Seed: 7, Method: m})
			if err != nil {
				b.Fatal(err)
			}
			first, err := bal.Partition(prob)
			if err != nil {
				b.Fatal(err)
			}
			// Perturb the inherited partition: scatter 15% of the vertices,
			// the local minimum a refinement-only scheme must escape.
			old := first.Partition.Clone()
			for v := 0; v < len(old.Parts); v += 7 {
				old.Parts[v] = int32((int(old.Parts[v]) + 1 + v%3) % 8)
			}
			var total int64
			var res hyperbal.Result
			for i := 0; i < b.N; i++ {
				res, err = bal.Repartition(prob, old, int64(i))
				if err != nil {
					b.Fatal(err)
				}
				total = res.TotalCost(1)
			}
			b.ReportMetric(float64(total), "totalcost@a1")
		})
	}
}

// BenchmarkAblationRBvsKway (A3): recursive bisection (Zoltan's driver) vs
// direct k-way.
func BenchmarkAblationRBvsKway(b *testing.B) {
	g, err := datasets.Generate("cage14", benchScale, 9)
	if err != nil {
		b.Fatal(err)
	}
	h := hyperbal.GraphToHypergraph(g)
	for _, tc := range []struct {
		name   string
		direct bool
	}{{"recursive-bisection", false}, {"direct-kway", true}} {
		b.Run(tc.name, func(b *testing.B) {
			var cut int64
			for i := 0; i < b.N; i++ {
				p, err := hgp.Partition(h, hgp.Options{K: 8, Seed: int64(i), DirectKway: tc.direct})
				if err != nil {
					b.Fatal(err)
				}
				cut = partition.CutSize(h, p)
			}
			b.ReportMetric(float64(cut), "cut")
		})
	}
}

// BenchmarkAblationRemap (A4): scratch repartitioning with and without the
// maximal-matching part remap. Reports the migration volume each incurs.
func BenchmarkAblationRemap(b *testing.B) {
	g, err := datasets.Generate("auto", benchScale, 11)
	if err != nil {
		b.Fatal(err)
	}
	h := hyperbal.GraphToHypergraph(g)
	old, err := hgp.Partition(h, hgp.Options{K: 8, Seed: 1})
	if err != nil {
		b.Fatal(err)
	}
	for _, tc := range []struct {
		name  string
		remap bool
	}{{"with-remap", true}, {"without-remap", false}} {
		b.Run(tc.name, func(b *testing.B) {
			var mig int64
			for i := 0; i < b.N; i++ {
				fresh, err := hgp.Partition(h, hgp.Options{K: 8, Seed: int64(i + 2)})
				if err != nil {
					b.Fatal(err)
				}
				if tc.remap {
					fresh = hyperbal.RemapParts(h, old, fresh)
				}
				mig = hyperbal.MigrationVolume(h, old, fresh)
			}
			b.ReportMetric(float64(mig), "migration")
		})
	}
}

// ---- Scalability (the paper's closing claim) ----

// BenchmarkParallelScalability runs the parallel partitioner at increasing
// rank counts on a fixed problem.
func BenchmarkParallelScalability(b *testing.B) {
	g, err := datasets.Generate("auto", benchScale, 13)
	if err != nil {
		b.Fatal(err)
	}
	h := hyperbal.GraphToHypergraph(g)
	for _, ranks := range []int{1, 2, 4, 8} {
		b.Run(rankName(ranks), func(b *testing.B) {
			for i := 0; i < b.N; i++ {
				err := hyperbal.RunWorld(ranks, func(c *hyperbal.Comm) error {
					_, err := hyperbal.ParallelPartitionHypergraph(c, h, hyperbal.PHGOptions{
						Serial: hyperbal.HGPOptions{K: 8, Seed: int64(i)},
					})
					return err
				})
				if err != nil {
					b.Fatal(err)
				}
			}
		})
	}
}

func rankName(r int) string {
	return string(rune('0'+r)) + "ranks"
}

// BenchmarkAblationKwayFM (A5): greedy-sweep k-way polish vs bucket FM
// polish — quality (cut) and time trade-off.
func BenchmarkAblationKwayFM(b *testing.B) {
	g, err := datasets.Generate("cage14", benchScale, 15)
	if err != nil {
		b.Fatal(err)
	}
	h := hyperbal.GraphToHypergraph(g)
	for _, tc := range []struct {
		name string
		fm   bool
	}{{"greedy-sweep", false}, {"bucket-fm", true}} {
		b.Run(tc.name, func(b *testing.B) {
			var cut int64
			for i := 0; i < b.N; i++ {
				p, err := hgp.Partition(h, hgp.Options{K: 8, Seed: int64(i), KwayFM: tc.fm})
				if err != nil {
					b.Fatal(err)
				}
				cut = partition.CutSize(h, p)
			}
			b.ReportMetric(float64(cut), "cut")
		})
	}
}

// BenchmarkAblationVCycles (A6): iterated V-cycle refinement — quality
// gain per extra cycle.
func BenchmarkAblationVCycles(b *testing.B) {
	g, err := datasets.Generate("auto", benchScale, 17)
	if err != nil {
		b.Fatal(err)
	}
	h := hyperbal.GraphToHypergraph(g)
	for _, cycles := range []int{0, 1, 3} {
		b.Run(vcName(cycles), func(b *testing.B) {
			var cut int64
			for i := 0; i < b.N; i++ {
				p, err := hgp.PartitionWithVCycles(h, hgp.Options{K: 8, Seed: int64(i)}, cycles)
				if err != nil {
					b.Fatal(err)
				}
				cut = partition.CutSize(h, p)
			}
			b.ReportMetric(float64(cut), "cut")
		})
	}
}

func vcName(c int) string { return string(rune('0'+c)) + "cycles" }

// BenchmarkAblationLocalIPM (A7): global candidate-round IPM vs the
// block-local IPM the paper's conclusion proposes as a speedup ("using
// local IPM instead of global IPM"). Reports wall time (ns/op) and the
// substrate traffic per partitioning.
func BenchmarkAblationLocalIPM(b *testing.B) {
	g, err := datasets.Generate("auto", benchScale, 19)
	if err != nil {
		b.Fatal(err)
	}
	h := hyperbal.GraphToHypergraph(g)
	for _, tc := range []struct {
		name  string
		local bool
	}{{"global-ipm", false}, {"local-ipm", true}} {
		b.Run(tc.name, func(b *testing.B) {
			var msgs, bytes int64
			for i := 0; i < b.N; i++ {
				stats, err := hyperbal.RunWorldStats(8, func(c *hyperbal.Comm) error {
					_, err := hyperbal.ParallelPartitionHypergraph(c, h, hyperbal.PHGOptions{
						Serial:   hyperbal.HGPOptions{K: 8, Seed: int64(i)},
						LocalIPM: tc.local,
					})
					return err
				})
				if err != nil {
					b.Fatal(err)
				}
				msgs = stats.Messages.Load()
				bytes = stats.Bytes.Load()
			}
			b.ReportMetric(float64(msgs), "msgs")
			b.ReportMetric(float64(bytes), "bytes")
		})
	}
}
