// Package hyperbal is a Go implementation of hypergraph-based dynamic load
// balancing for adaptive scientific computations, reproducing Catalyurek,
// Boman, Devine, Bozdag, Heaphy & Riesen (IPDPS 2007): a repartitioning
// hypergraph model that minimizes α·(communication volume) + (migration
// volume) via multilevel hypergraph partitioning with fixed vertices, plus
// the graph-based baselines the paper compares against.
//
// This file is the public façade: it re-exports the user-facing types and
// entry points so downstream code imports only "hyperbal".
//
// # Quick start
//
//	b := hyperbal.NewHypergraphBuilder(numVertices)
//	// ... b.AddNet / b.SetWeight / b.SetSize ...
//	h := b.Build()
//
//	bal, _ := hyperbal.NewBalancer(hyperbal.BalancerConfig{
//		K: 8, Alpha: 100, Method: hyperbal.HypergraphRepart,
//	})
//	first, _ := bal.Partition(hyperbal.Problem{H: h})
//	// ... application runs an epoch, the hypergraph drifts to h2 ...
//	next, _ := bal.Repartition(hyperbal.Problem{H: h2}, first.Partition, 1)
//	fmt.Println(next.CommVolume, next.MigrationVolume)
package hyperbal

import (
	"io"

	"hyperbal/internal/appsim"
	"hyperbal/internal/core"
	"hyperbal/internal/datasets"
	"hyperbal/internal/dhg"
	"hyperbal/internal/dynamics"
	"hyperbal/internal/gp"
	"hyperbal/internal/graph"
	"hyperbal/internal/hgp"
	"hyperbal/internal/hypergraph"
	"hyperbal/internal/migrate"
	"hyperbal/internal/mpi"
	"hyperbal/internal/mtx"
	"hyperbal/internal/partition"
	"hyperbal/internal/pgp"
	"hyperbal/internal/phg"
	"hyperbal/internal/server"
	"hyperbal/internal/toolkit"
)

// ---- Hypergraph and graph data structures ----

// Hypergraph is a vertex/net structure with weights, sizes, costs and
// optional fixed-vertex labels. See NewHypergraphBuilder.
type Hypergraph = hypergraph.Hypergraph

// HypergraphBuilder incrementally constructs a Hypergraph.
type HypergraphBuilder = hypergraph.Builder

// NewHypergraphBuilder creates a builder for n vertices.
func NewHypergraphBuilder(n int) *HypergraphBuilder { return hypergraph.NewBuilder(n) }

// FreeVertex marks a vertex as not fixed to any part.
const FreeVertex = hypergraph.Free

// Graph is a CSR weighted undirected graph (input form for the graph
// baselines and the dataset generators).
type Graph = graph.Graph

// GraphBuilder incrementally constructs a Graph.
type GraphBuilder = graph.Builder

// NewGraphBuilder creates a builder for n vertices.
func NewGraphBuilder(n int) *GraphBuilder { return graph.NewBuilder(n) }

// GraphToHypergraph converts a graph to its exact hypergraph form (one
// 2-pin net per edge).
func GraphToHypergraph(g *Graph) *Hypergraph { return graph.ToHypergraph(g) }

// HypergraphToGraph converts a hypergraph to a graph by clique expansion
// (nets above maxClique pins fall back to rings).
func HypergraphToGraph(h *Hypergraph, maxClique int) *Graph {
	return graph.FromHypergraph(h, maxClique)
}

// ---- Partitions and metrics ----

// Partition assigns each vertex to a part in [0, K).
type Partition = partition.Partition

// NewPartition creates an all-zeros partition of n vertices into k parts.
func NewPartition(n, k int) Partition { return partition.New(n, k) }

// CutSize returns the connectivity-1 cut (Eq. 2): the communication volume
// of the modeled computation.
func CutSize(h *Hypergraph, p Partition) int64 { return partition.CutSize(h, p) }

// EdgeCut returns the weighted edge cut of a graph partition.
func EdgeCut(g *Graph, p Partition) int64 { return partition.EdgeCut(g, p) }

// MigrationVolume returns the data volume that must move between two
// assignments of the same hypergraph.
func MigrationVolume(h *Hypergraph, old, new Partition) int64 {
	return partition.MigrationVolume(h, old, new)
}

// PartWeights returns the per-part vertex weight totals.
func PartWeights(h *Hypergraph, p Partition) []int64 { return partition.Weights(h, p) }

// Imbalance returns max_p W_p / W_avg - 1.
func Imbalance(weights []int64) float64 { return partition.Imbalance(weights) }

// IsBalanced reports Eq. 1: W_p <= W_avg(1+eps) for all parts.
func IsBalanced(weights []int64, eps float64) bool { return partition.IsBalanced(weights, eps) }

// RemapParts relabels a freshly computed partition to minimize migration
// from old (the maximal-matching heuristic used by the scratch methods).
func RemapParts(h *Hypergraph, old, fresh Partition) Partition {
	return partition.Remap(h, old, fresh)
}

// ---- The repartitioning model (the paper's contribution) ----

// RepartitionHypergraph is the augmented hypergraph H̄ of Section 3.
type RepartitionHypergraph = core.RepartitionHypergraph

// BuildRepartition constructs H̄ from an epoch hypergraph, the previous
// partition, the part count and α.
func BuildRepartition(h *Hypergraph, old Partition, k int, alpha int64) (*RepartitionHypergraph, error) {
	return core.BuildRepartition(h, old, k, alpha)
}

// Migration summarizes data movement between epochs.
type Migration = core.Migration

// ---- Balancer: the four Section 5 algorithms ----

// Method selects a load-balancing algorithm.
type Method = core.Method

// The four methods benchmarked in the paper.
const (
	HypergraphRepart  = core.HypergraphRepart  // "Zoltan-repart" (the new model)
	HypergraphScratch = core.HypergraphScratch // "Zoltan-scratch"
	GraphRepart       = core.GraphRepart       // "ParMETIS-repart" (AdaptiveRepart)
	GraphScratch      = core.GraphScratch      // "ParMETIS-scratch" (Partkway)
)

// Methods lists all four in the figures' bar order.
var Methods = core.Methods

// BalancerConfig parameterizes a Balancer.
type BalancerConfig = core.Config

// Problem bundles the hypergraph (required) and graph (optional) views of
// an epoch's computation.
type Problem = core.Problem

// Result reports one load-balance operation.
type Result = core.Result

// Balancer runs static partitioning and epoch repartitioning.
type Balancer = core.Balancer

// NewBalancer validates the configuration and returns a Balancer.
func NewBalancer(cfg BalancerConfig) (*Balancer, error) { return core.NewBalancer(cfg) }

// CostModel evaluates t_tot = α(t_comp + t_comm) + t_mig + t_repart.
type CostModel = core.CostModel

// CostEstimate is a t_tot breakdown.
type CostEstimate = core.Estimate

// DefaultCostModel is a nominal cluster profile (ratios matter, not
// absolutes).
var DefaultCostModel = core.DefaultCostModel

// ---- Direct partitioner access ----

// HGPOptions tune the serial multilevel hypergraph partitioner.
type HGPOptions = hgp.Options

// PartitionHypergraph partitions h (honoring fixed vertices) with the
// serial multilevel algorithm of Section 4.
func PartitionHypergraph(h *Hypergraph, opt HGPOptions) (Partition, error) {
	return hgp.Partition(h, opt)
}

// GPOptions tune the baseline multilevel graph partitioner.
type GPOptions = gp.Options

// PartitionGraph partitions a graph from scratch (METIS-style multilevel
// recursive bisection).
func PartitionGraph(g *Graph, opt GPOptions) (Partition, error) { return gp.Partition(g, opt) }

// AdaptiveRepartGraph runs the ParMETIS-style unified adaptive
// repartitioner with trade-off parameter itr (≈ α).
func AdaptiveRepartGraph(g *Graph, old Partition, itr int64, opt GPOptions) (Partition, error) {
	return gp.AdaptiveRepart(g, old, itr, opt)
}

// ---- Parallel execution ----

// Comm is a communicator of the in-process message-passing substrate.
type Comm = mpi.Comm

// RunWorld launches an n-rank SPMD world (the MPI substitute; see
// internal/mpi docs) and waits for completion.
func RunWorld(n int, fn func(c *Comm) error) error { return mpi.Run(n, fn) }

// WorldStats carries the substrate traffic counters of one world.
type WorldStats = mpi.Stats

// RunWorldStats is RunWorld, also returning message/byte counters.
func RunWorldStats(n int, fn func(c *Comm) error) (*WorldStats, error) {
	return mpi.RunStats(n, fn)
}

// WorldOptions configure a world beyond its size: fault injection
// (FaultPlan), the deadlock watchdog, and per-operation tracing.
type WorldOptions = mpi.Options

// FaultPlan is a deterministic (seeded) fault schedule: per-rank message
// delays, delivery reordering across distinct (src,tag) streams, and
// rank-crash-at-step faults.
type FaultPlan = mpi.FaultPlan

// DeadlockError is returned when the watchdog aborts a stalled world; it
// names which ranks were blocked in which operation.
type DeadlockError = mpi.DeadlockError

// CrashError reports a rank killed by an injected crash fault.
type CrashError = mpi.CrashError

// WorldEvent is one completed substrate operation, reported via
// WorldOptions.OnEvent.
type WorldEvent = mpi.Event

// RunWorldWith is RunWorld with fault injection, watchdog diagnostics and
// tracing (see WorldOptions).
func RunWorldWith(n int, opt WorldOptions, fn func(c *Comm) error) (*WorldStats, error) {
	return mpi.RunWith(n, opt, fn)
}

// PHGOptions tune the parallel hypergraph partitioner.
type PHGOptions = phg.Options

// ParallelPartitionHypergraph partitions h in parallel with fixed-vertex
// support; every rank must call it with identical arguments and receives
// the identical result.
func ParallelPartitionHypergraph(c *Comm, h *Hypergraph, opt PHGOptions) (Partition, error) {
	return phg.Partition(c, h, opt)
}

// ---- Migration execution ----

// MigrationPlan schedules vertex data movement between two assignments.
type MigrationPlan = migrate.Plan

// NewMigrationPlan derives the plan for moving h's data from old to new.
func NewMigrationPlan(h *Hypergraph, old, new Partition) (*MigrationPlan, error) {
	return migrate.NewPlan(h, old, new)
}

// VertexStore is one rank's owned vertex payloads.
type VertexStore = migrate.Store

// ExecuteMigration runs the plan over a communicator (one rank per part).
func ExecuteMigration(c *Comm, p *MigrationPlan, store VertexStore) (int, error) {
	return migrate.Execute(c, p, store)
}

// ---- Synthetic datasets and dynamics (Section 5 experiments) ----

// DatasetInfo describes a Table 1 dataset and its synthetic analogue.
type DatasetInfo = datasets.Info

// Datasets lists the five Table 1 datasets in paper order.
func Datasets() []DatasetInfo { return datasets.Registry }

// GenerateDataset builds the synthetic analogue of a Table 1 dataset with
// n vertices (n <= 0 uses the default scale).
func GenerateDataset(name string, n int, seed int64) (*Graph, error) {
	return datasets.Generate(name, n, seed)
}

// DynamicsGenerator produces a sequence of drifted epochs (Next) and
// records computed partitions (Observe).
type DynamicsGenerator = dynamics.Generator

// NewStructuralDynamics builds the biased-perturbation dynamic (half the
// parts lose/gain vertFrac of the vertices each epoch, per Section 5).
func NewStructuralDynamics(orig *Graph, init Partition, k int, vertFrac, partFrac float64, seed int64) (DynamicsGenerator, error) {
	return dynamics.NewStructural(orig, init, k, vertFrac, partFrac, seed)
}

// NewRefinementDynamics builds the simulated-AMR dynamic (partFrac of the
// parts scale vertex weight and size by U(minF, maxF) each epoch).
func NewRefinementDynamics(orig *Graph, init Partition, k int, partFrac, minF, maxF float64, seed int64) (DynamicsGenerator, error) {
	return dynamics.NewRefinement(orig, init, k, partFrac, minF, maxF, seed)
}

// ---- Parallel graph baseline ----

// PGPOptions tune the parallel graph partitioner.
type PGPOptions = pgp.Options

// ParallelPartitionGraph partitions a graph from scratch in parallel
// (candidate-round heavy-edge matching over the mpi substrate).
func ParallelPartitionGraph(c *Comm, g *Graph, opt PGPOptions) (Partition, error) {
	return pgp.Partition(c, g, opt)
}

// ParallelAdaptiveRepartGraph runs the unified adaptive repartitioner in
// parallel with trade-off parameter itr.
func ParallelAdaptiveRepartGraph(c *Comm, g *Graph, old Partition, itr int64, opt PGPOptions) (Partition, error) {
	return pgp.AdaptiveRepart(c, g, old, itr, opt)
}

// ---- Zoltan-style callback toolkit ----

// ObjectID identifies an application object in the callback interface.
type ObjectID = toolkit.ObjectID

// Callbacks is the Zoltan-style query interface applications implement.
type Callbacks = toolkit.Callbacks

// Changes is the import/export result of one load-balance call.
type Changes = toolkit.Changes

// LoadBalancer is the callback-driven front end (Zoltan-style).
type LoadBalancer = toolkit.LB

// NewLoadBalancer binds a configuration to application callbacks.
func NewLoadBalancer(cfg BalancerConfig, cb Callbacks) (*LoadBalancer, error) {
	return toolkit.New(cfg, cb)
}

// ---- Application simulation ----

// SimResult reports a simulated application epoch.
type SimResult = appsim.Result

// SimulateApplication runs a halo-exchange application epoch over the mpi
// substrate (one rank per part): optional migration from old, then the
// given number of iterations under p. The measured per-iteration traffic
// equals CutSize(h, p).
func SimulateApplication(h *Hypergraph, old *Partition, p Partition, iterations int) (SimResult, error) {
	return appsim.Simulate(h, old, p, iterations)
}

// ---- Additional metrics and ablation methods ----

// HypergraphRefineOnly accounts for migration only in refinement (the A2
// ablation; not one of the paper's four algorithms).
const HypergraphRefineOnly = core.HypergraphRefineOnly

// CommMatrix returns per-part-pair communication volumes; its total equals
// CutSize.
func CommMatrix(h *Hypergraph, p Partition) [][]int64 { return partition.CommMatrix(h, p) }

// SOED returns the sum-of-external-degrees metric (cost * lambda per cut
// net).
func SOED(h *Hypergraph, p Partition) int64 { return partition.SOED(h, p) }

// CutNets returns the plain cut-net metric (cost once per cut net).
func CutNets(h *Hypergraph, p Partition) int64 { return partition.CutNetMetric(h, p) }

// BoundaryVertices returns the vertices touching at least one cut net.
func BoundaryVertices(h *Hypergraph, p Partition) []int32 {
	return partition.BoundaryVertices(h, p)
}

// ---- MatrixMarket input ----

// MTXMatrix is a parsed MatrixMarket coordinate pattern.
type MTXMatrix = mtx.Matrix

// ReadMatrixMarket parses a MatrixMarket coordinate file (the format the
// paper's test matrices are published in).
func ReadMatrixMarket(r io.Reader) (*MTXMatrix, error) { return mtx.Read(r) }

// MatrixToHypergraph builds the exact column-net model of a sparse matrix.
func MatrixToHypergraph(m *MTXMatrix) (*Hypergraph, error) { return mtx.ToHypergraph(m) }

// MatrixToGraph builds the symmetrized graph model of a square sparse
// matrix.
func MatrixToGraph(m *MTXMatrix) (*Graph, error) { return mtx.ToGraph(m) }

// ---- Distributed hypergraphs (Zoltan-style data layouts) ----

// DistHypergraph is a 1D-distributed hypergraph share (block vertices,
// owner-held nets).
type DistHypergraph = dhg.DH

// DistHypergraph2D is a 2D processor-grid share (Zoltan's §4.1 layout).
type DistHypergraph2D = dhg.DH2D

// DistStats are globally reduced hypergraph statistics.
type DistStats = dhg.GlobalStats

// DistributeHypergraph scatters a root-held hypergraph over the
// communicator in the 1D layout.
func DistributeHypergraph(c *Comm, root int, h *Hypergraph) (*DistHypergraph, error) {
	return dhg.Distribute(c, root, h)
}

// DistributeHypergraph2D scatters a root-held hypergraph over a px × py
// processor grid.
func DistributeHypergraph2D(c *Comm, root int, h *Hypergraph, px, py int) (*DistHypergraph2D, error) {
	return dhg.Distribute2D(c, root, h, px, py)
}

// PartitionHypergraphVCycles is PartitionHypergraph followed by the given
// number of refinement V-cycles (never worsens the cut).
func PartitionHypergraphVCycles(h *Hypergraph, opt HGPOptions, cycles int) (Partition, error) {
	return hgp.PartitionWithVCycles(h, opt, cycles)
}

// ---- Serving (balancerd) ----

// ServeConfig parameterizes an embedded balancerd serving tier: worker
// pool size, queue depth, session TTL, cache capacity and fault-injection
// knobs. See cmd/balancerd for the daemon wiring.
type ServeConfig = server.Config

// Server is the balancerd serving core: session store, admission control,
// fingerprint-keyed partition cache and the HTTP API. Mount Handler() on a
// listener and call Drain on shutdown.
type Server = server.Server

// NewServer builds an embeddable balancerd serving core.
func NewServer(cfg ServeConfig) *Server { return server.New(cfg) }

// HypergraphFingerprint returns the stable content hash of a hypergraph —
// the cache key component balancerd uses to serve identical epoch
// submissions without re-partitioning.
func HypergraphFingerprint(h *Hypergraph) string { return h.Fingerprint() }

// ---- Delta epochs ----

// HypergraphDelta is the versioned wire form of an epoch transition:
// vertex/net add/remove plus sparse weight/size/cost updates, applied
// against the previous epoch's fingerprint. Apply/Digest/DirtyVertices
// are methods on the type; RemoteSession.SubmitEpochDelta uses it to cut
// epoch wire bytes and warm-start the server-side repartition.
type HypergraphDelta = hypergraph.Delta

// ErrDeltaBaseMismatch is returned by HypergraphDelta.Apply when the base
// fingerprint disagrees — the signal to fall back to a full resync.
var ErrDeltaBaseMismatch = hypergraph.ErrBaseMismatch

// ComputeHypergraphDelta derives the delta from base to next over an
// unchanged vertex set (false when the transition is not delta-able).
func ComputeHypergraphDelta(base, next *Hypergraph) (*HypergraphDelta, bool) {
	return hypergraph.ComputeDelta(base, next)
}

// ComputeHypergraphDeltaMapped derives the delta for a structural
// transition: vmap[i] is the base vertex that became next's vertex i, or
// -1 for a created vertex.
func ComputeHypergraphDeltaMapped(base, next *Hypergraph, vmap []int32) (*HypergraphDelta, bool) {
	return hypergraph.ComputeDeltaMapped(base, next, vmap)
}

// The Client for a remote balancerd (with timeout/retry/backoff) lives in
// client.go: NewClient, Client, RemoteSession, RemoteResult.

// ---- Epoch session management ----

// Session owns an adaptive application's epoch lifecycle: current
// distribution, rebalance triggering, accumulated history.
type Session = core.Session

// NewSession computes the epoch-1 static partition and returns the
// running session.
func NewSession(bal *Balancer, p Problem) (*Session, Result, error) {
	return core.NewSession(bal, p)
}
