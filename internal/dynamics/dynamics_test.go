package dynamics

import (
	"testing"

	"hyperbal/internal/graph"
	"hyperbal/internal/partition"
)

func grid(w, h int) *graph.Graph {
	b := graph.NewBuilder(w * h)
	id := func(x, y int) int { return y*w + x }
	for y := 0; y < h; y++ {
		for x := 0; x < w; x++ {
			if x+1 < w {
				b.AddEdge(id(x, y), id(x+1, y), 1)
			}
			if y+1 < h {
				b.AddEdge(id(x, y), id(x, y+1), 1)
			}
		}
	}
	return b.Build()
}

func stripes(n, k int) partition.Partition {
	p := partition.New(n, k)
	for v := 0; v < n; v++ {
		p.Assign(v, v*k/n)
	}
	return p
}

func TestStructuralDeletesAndRestores(t *testing.T) {
	g := grid(16, 16)
	init := stripes(256, 4)
	s, err := NewStructural(g, init, 4, 0.25, 0.5, 1)
	if err != nil {
		t.Fatal(err)
	}
	sizes := map[int]bool{}
	for epoch := 0; epoch < 6; epoch++ {
		prob, inherited, aliveN := nextEpoch(t, s)
		if aliveN < 256-64-1 || aliveN > 256 {
			t.Fatalf("epoch %d: alive %d, want ~192", epoch, aliveN)
		}
		sizes[aliveN] = true
		if err := prob.G.Validate(); err != nil {
			t.Fatalf("epoch %d: %v", epoch, err)
		}
		if err := inherited.Validate(); err != nil {
			t.Fatalf("epoch %d inherited: %v", epoch, err)
		}
		if prob.H.NumVertices() != aliveN {
			t.Fatal("H and G vertex counts differ")
		}
		// Observe a trivial recomputed partition (keep inherited).
		if err := s.Observe(inherited); err != nil {
			t.Fatal(err)
		}
	}
}

func nextEpoch(t *testing.T, gen Generator) (prob coreProblem, inherited partition.Partition, n int) {
	t.Helper()
	p, inh := gen.Next()
	return coreProblem{p.G, p.H}, inh, p.G.NumVertices()
}

// coreProblem avoids an import cycle in test helpers.
type coreProblem struct {
	G interface {
		Validate() error
		NumVertices() int
	}
	H interface {
		NumVertices() int
	}
}

func TestStructuralObserveLengthCheck(t *testing.T) {
	g := grid(8, 8)
	s, _ := NewStructural(g, stripes(64, 2), 2, 0.25, 0.5, 2)
	s.Next()
	if err := s.Observe(partition.New(3, 2)); err == nil {
		t.Fatal("expected length mismatch error")
	}
}

func TestStructuralValidation(t *testing.T) {
	g := grid(4, 4)
	if _, err := NewStructural(g, partition.New(3, 2), 2, 0.25, 0.5, 1); err == nil {
		t.Fatal("expected error for short init")
	}
	if _, err := NewStructural(g, stripes(16, 2), 2, 1.5, 0.5, 1); err == nil {
		t.Fatal("expected error for vertFrac >= 1")
	}
	if _, err := NewStructural(g, stripes(16, 2), 2, 0.25, 0, 1); err == nil {
		t.Fatal("expected error for partFrac = 0")
	}
}

func TestStructuralTargetsSelectedParts(t *testing.T) {
	// With partFrac = 0.5 and k = 2, each epoch deletes only from one part.
	g := grid(16, 16)
	init := stripes(256, 2)
	s, err := NewStructural(g, init, 2, 0.2, 0.5, 3)
	if err != nil {
		t.Fatal(err)
	}
	prob, inherited := s.Next()
	// count survivors per inherited part
	cnt := map[int32]int{}
	for _, p := range inherited.Parts {
		cnt[p]++
	}
	_ = prob
	// one part must have lost ~51 vertices, the other none
	if cnt[0] == 128 && cnt[1] == 128 {
		t.Fatal("no deletions happened")
	}
	if cnt[0] != 128 && cnt[1] != 128 {
		t.Fatalf("both parts lost vertices: %v; deletions must target selected parts only", cnt)
	}
}

func TestRefinementScalesSelectedParts(t *testing.T) {
	g := grid(16, 16)
	init := stripes(256, 10)
	r, err := NewRefinement(g, init, 10, 0.1, 1.5, 7.5, 5)
	if err != nil {
		t.Fatal(err)
	}
	prob, inherited := r.Next()
	if prob.G.NumVertices() != 256 {
		t.Fatal("refinement must not change the vertex set")
	}
	if err := inherited.Validate(); err != nil {
		t.Fatal(err)
	}
	// Exactly the vertices of one part (k=10, frac=0.1) scale up.
	scaled, unscaled := 0, 0
	for v := 0; v < 256; v++ {
		w := prob.G.Weight(v)
		switch {
		case w == 1:
			unscaled++
		case w >= 1 && w <= 7:
			scaled++
		default:
			t.Fatalf("vertex %d weight %d out of expected range", v, w)
		}
		if prob.G.Size(v) < 1 {
			t.Fatalf("vertex %d size %d < 1", v, prob.G.Size(v))
		}
	}
	if scaled == 0 {
		t.Fatal("no vertices were refined")
	}
	if scaled > 60 {
		t.Fatalf("too many vertices refined: %d (one part is ~26)", scaled)
	}
}

func TestRefinementBoundedRelativeToOriginal(t *testing.T) {
	// Weights must stay within [orig, 7.5*orig] no matter how many epochs
	// pass (no compounding).
	g := grid(8, 8)
	init := stripes(64, 4)
	r, err := NewRefinement(g, init, 4, 0.5, 1.5, 7.5, 7)
	if err != nil {
		t.Fatal(err)
	}
	for epoch := 0; epoch < 20; epoch++ {
		prob, inherited := r.Next()
		for v := 0; v < 64; v++ {
			if w := prob.G.Weight(v); w < 1 || w > 7 {
				t.Fatalf("epoch %d: vertex %d weight %d escaped [1, 7.5]", epoch, v, w)
			}
		}
		if err := r.Observe(inherited); err != nil {
			t.Fatal(err)
		}
	}
}

func TestRefinementValidation(t *testing.T) {
	g := grid(4, 4)
	if _, err := NewRefinement(g, stripes(16, 2), 2, 0, 1.5, 7.5, 1); err == nil {
		t.Fatal("expected error for partFrac = 0")
	}
	if _, err := NewRefinement(g, stripes(16, 2), 2, 0.5, 0.5, 7.5, 1); err == nil {
		t.Fatal("expected error for minF < 1")
	}
	if _, err := NewRefinement(g, stripes(16, 2), 2, 0.5, 3, 2, 1); err == nil {
		t.Fatal("expected error for maxF < minF")
	}
	if _, err := NewRefinement(g, partition.New(5, 2), 2, 0.5, 1.5, 7.5, 1); err == nil {
		t.Fatal("expected error for short init")
	}
}

func TestGeneratorsAreDeterministic(t *testing.T) {
	g := grid(10, 10)
	init := stripes(100, 4)
	s1, _ := NewStructural(g, init, 4, 0.25, 0.5, 42)
	s2, _ := NewStructural(g, init, 4, 0.25, 0.5, 42)
	p1, i1 := s1.Next()
	p2, i2 := s2.Next()
	if p1.G.NumVertices() != p2.G.NumVertices() {
		t.Fatal("same seed, different epoch size")
	}
	for v := range i1.Parts {
		if i1.Parts[v] != i2.Parts[v] {
			t.Fatal("same seed, different inherited partition")
		}
	}
}
