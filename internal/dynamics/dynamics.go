// Package dynamics implements the paper's two synthetic dynamic-workload
// generators (Section 5):
//
//   - Structural: "biased random perturbations that change the structure of
//     the data" — at each iteration a different random subset of the
//     original vertices is deleted along with incident edges, so the
//     problem both loses and gains vertices over time. The reported
//     configuration deletes 25% of the total vertex count drawn from half
//     of the partitions.
//
//   - Refinement: "simulated adaptive mesh refinement" — at each iteration
//     a fraction (10%) of the partitions is selected and every vertex in
//     them has its weight and size scaled to a uniform random multiple
//     (1.5x to 7.5x) of its original value.
//
// Both generators speak a two-phase protocol: Next() yields the epoch's
// problem together with the inherited ("old") partition over the epoch's
// vertex set; after the balancer runs, Observe() records the computed
// partition so the next epoch inherits it.
package dynamics

import (
	"fmt"
	"math/rand"

	"hyperbal/internal/core"
	"hyperbal/internal/graph"
	"hyperbal/internal/partition"
)

// Generator is the epoch-sequence protocol shared by both dynamics.
type Generator interface {
	// Next produces the next epoch's problem and the partition inherited
	// from the previous epoch (over the new epoch's vertex numbering).
	Next() (core.Problem, partition.Partition)
	// Observe records the partition computed for the epoch most recently
	// returned by Next.
	Observe(p partition.Partition) error
}

// Structural implements the vertex deletion/reappearance dynamic.
type Structural struct {
	orig     *graph.Graph
	k        int
	vertFrac float64 // fraction of |V| deleted each epoch (paper: 0.25)
	partFrac float64 // fraction of parts targeted (paper: 0.5)
	rng      *rand.Rand

	lastPart []int32 // per original vertex: last known part
	alive    []int32 // current epoch: epoch vertex -> original vertex
}

// NewStructural creates the structural perturbation generator. init is a
// partition of the full original graph (the epoch-1 static partition);
// vertices re-entering the problem are attributed to the part that last
// owned them, which is where the application would have created them.
func NewStructural(orig *graph.Graph, init partition.Partition, k int, vertFrac, partFrac float64, seed int64) (*Structural, error) {
	if len(init.Parts) != orig.NumVertices() {
		return nil, fmt.Errorf("dynamics: init partition covers %d vertices, graph has %d", len(init.Parts), orig.NumVertices())
	}
	if vertFrac < 0 || vertFrac >= 1 {
		return nil, fmt.Errorf("dynamics: vertex fraction %v out of [0,1)", vertFrac)
	}
	if partFrac <= 0 || partFrac > 1 {
		return nil, fmt.Errorf("dynamics: part fraction %v out of (0,1]", partFrac)
	}
	return &Structural{
		orig:     orig,
		k:        k,
		vertFrac: vertFrac,
		partFrac: partFrac,
		rng:      rand.New(rand.NewSource(seed)),
		lastPart: append([]int32(nil), init.Parts...),
	}, nil
}

// Next deletes a fresh random subset of the original vertices — drawn from
// a randomly selected half of the parts — and returns the induced
// subproblem plus the inherited partition.
func (s *Structural) Next() (core.Problem, partition.Partition) {
	n := s.orig.NumVertices()
	// Select the target parts.
	numSel := int(float64(s.k)*s.partFrac + 0.5)
	if numSel < 1 {
		numSel = 1
	}
	selected := make([]bool, s.k)
	for _, p := range s.rng.Perm(s.k)[:numSel] {
		selected[p] = true
	}
	// Candidate pool: vertices whose last-known part is selected.
	var pool []int32
	for v := 0; v < n; v++ {
		if selected[s.lastPart[v]] {
			pool = append(pool, int32(v))
		}
	}
	// Delete vertFrac * |V| vertices from the pool (all of it if smaller).
	del := int(float64(n) * s.vertFrac)
	if del > len(pool) {
		del = len(pool)
	}
	deleted := make([]bool, n)
	for _, i := range s.rng.Perm(len(pool))[:del] {
		deleted[pool[i]] = true
	}

	// Build the induced subgraph on alive vertices.
	s.alive = s.alive[:0]
	newID := make([]int32, n)
	for v := 0; v < n; v++ {
		if deleted[v] {
			newID[v] = -1
		} else {
			newID[v] = int32(len(s.alive))
			s.alive = append(s.alive, int32(v))
		}
	}
	b := graph.NewBuilder(len(s.alive))
	inherited := partition.Partition{Parts: make([]int32, len(s.alive)), K: s.k}
	for i, ov := range s.alive {
		b.SetWeight(i, s.orig.Weight(int(ov)))
		b.SetSize(i, s.orig.Size(int(ov)))
		inherited.Parts[i] = s.lastPart[ov]
		adj, wts := s.orig.Adj(int(ov)), s.orig.AdjWeights(int(ov))
		for j, u := range adj {
			if int(u) > int(ov) && newID[u] >= 0 {
				b.AddEdge(i, int(newID[u]), wts[j])
			}
		}
	}
	g := b.Build()
	return core.Problem{G: g, H: graph.ToHypergraph(g)}, inherited
}

// AliveMap returns the current epoch's vertex correspondence: entry i is
// the original-graph vertex that became epoch vertex i. Valid after Next;
// the slice is reused by the next Next call. Clients computing deltas
// between consecutive epochs translate it into a base→successor vertex
// map (two epochs' alive lists share original ids for surviving
// vertices, and both are sorted by original id).
func (s *Structural) AliveMap() []int32 { return s.alive }

// Observe records the epoch's computed partition back onto the original
// vertex numbering.
func (s *Structural) Observe(p partition.Partition) error {
	if len(p.Parts) != len(s.alive) {
		return fmt.Errorf("dynamics: observed partition covers %d vertices, epoch has %d", len(p.Parts), len(s.alive))
	}
	for i, ov := range s.alive {
		s.lastPart[ov] = p.Parts[i]
	}
	return nil
}

// Refinement implements the simulated adaptive-mesh-refinement dynamic.
type Refinement struct {
	orig     *graph.Graph
	k        int
	partFrac float64 // fraction of parts refined each epoch (paper: 0.1)
	minF     float64 // lower scale bound (paper: 1.5)
	maxF     float64 // upper scale bound (paper: 7.5)
	rng      *rand.Rand

	lastPart []int32
	curW     []int64
	curS     []int64
}

// NewRefinement creates the weight/size refinement generator.
func NewRefinement(orig *graph.Graph, init partition.Partition, k int, partFrac, minF, maxF float64, seed int64) (*Refinement, error) {
	if len(init.Parts) != orig.NumVertices() {
		return nil, fmt.Errorf("dynamics: init partition covers %d vertices, graph has %d", len(init.Parts), orig.NumVertices())
	}
	if partFrac <= 0 || partFrac > 1 {
		return nil, fmt.Errorf("dynamics: part fraction %v out of (0,1]", partFrac)
	}
	if minF < 1 || maxF < minF {
		return nil, fmt.Errorf("dynamics: bad scale range [%v,%v]", minF, maxF)
	}
	r := &Refinement{
		orig:     orig,
		k:        k,
		partFrac: partFrac,
		minF:     minF,
		maxF:     maxF,
		rng:      rand.New(rand.NewSource(seed)),
		lastPart: append([]int32(nil), init.Parts...),
		curW:     make([]int64, orig.NumVertices()),
		curS:     make([]int64, orig.NumVertices()),
	}
	for v := 0; v < orig.NumVertices(); v++ {
		r.curW[v] = orig.Weight(v)
		r.curS[v] = orig.Size(v)
	}
	return r, nil
}

// Next refines a random partFrac of the parts: each vertex in a refined
// part gets weight and size set to a fresh uniform multiple in
// [minF, maxF] of its original value (bounded, per the paper, relative to
// the original data rather than compounding).
func (r *Refinement) Next() (core.Problem, partition.Partition) {
	n := r.orig.NumVertices()
	numSel := int(float64(r.k)*r.partFrac + 0.5)
	if numSel < 1 {
		numSel = 1
	}
	selected := make([]bool, r.k)
	for _, p := range r.rng.Perm(r.k)[:numSel] {
		selected[p] = true
	}
	for v := 0; v < n; v++ {
		if selected[r.lastPart[v]] {
			f := r.minF + r.rng.Float64()*(r.maxF-r.minF)
			r.curW[v] = int64(float64(r.orig.Weight(v)) * f)
			r.curS[v] = int64(float64(r.orig.Size(v)) * f)
			if r.curW[v] < 1 {
				r.curW[v] = 1
			}
			if r.curS[v] < 1 {
				r.curS[v] = 1
			}
		}
	}
	b := graph.NewBuilder(n)
	for v := 0; v < n; v++ {
		b.SetWeight(v, r.curW[v])
		b.SetSize(v, r.curS[v])
		adj, wts := r.orig.Adj(v), r.orig.AdjWeights(v)
		for i, u := range adj {
			if int(u) > v {
				b.AddEdge(v, int(u), wts[i])
			}
		}
	}
	g := b.Build()
	inherited := partition.Partition{Parts: append([]int32(nil), r.lastPart...), K: r.k}
	return core.Problem{G: g, H: graph.ToHypergraph(g)}, inherited
}

// Observe records the epoch's computed partition.
func (r *Refinement) Observe(p partition.Partition) error {
	if len(p.Parts) != len(r.lastPart) {
		return fmt.Errorf("dynamics: observed partition covers %d vertices, want %d", len(p.Parts), len(r.lastPart))
	}
	copy(r.lastPart, p.Parts)
	return nil
}
