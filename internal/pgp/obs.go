package pgp

import "hyperbal/internal/obs"

// Registry handles for the parallel graph partitioner, mirroring the phg_*
// family so the Figure 7/8 pipelines can be compared metric-for-metric.
// Counters incremented inside loops every rank replicates (round counts,
// applied/rejected moves) are counted on rank 0 only; per-rank work
// (candidates, proposals, bids) is summed across ranks. The coarse-solve
// timer records zero observations on the adaptive path, which inherits the
// coarse partition instead of solving (count stays 0 by design).
var (
	obsPartitions = obs.Default().Counter("pgp_partitions_total")
	obsAdaptive   = obs.Default().Counter("pgp_adaptive_reparts_total")

	obsCoarsenNs     = obs.Default().HistogramVec("pgp_coarsen_ns", "level", obs.DurationBounds)
	obsCoarseSolveNs = obs.Default().Histogram("pgp_coarse_solve_ns", obs.DurationBounds)
	obsRefineNs      = obs.Default().HistogramVec("pgp_refine_ns", "level", obs.DurationBounds)

	obsHEMRounds  = obs.Default().Counter("pgp_hem_rounds_total")
	obsCandidates = obs.Default().Counter("pgp_candidates_total")
	obsBids       = obs.Default().Counter("pgp_bids_total")

	obsRefineRounds  = obs.Default().Counter("pgp_refine_rounds_total")
	obsProposals     = obs.Default().Counter("pgp_refine_proposals_total")
	obsMovesApplied  = obs.Default().Counter("pgp_refine_applied_total")
	obsMovesRejected = obs.Default().Counter("pgp_refine_rejected_total")
)
