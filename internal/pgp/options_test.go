package pgp

import (
	"reflect"
	"testing"

	"hyperbal/internal/gp"
)

// TestOptionsPreserveSerial guards pgp against the field-by-field Serial
// rebuild bug fixed in phg: withDefaults must pass Options.Serial through
// verbatim. Every exported gp.Options field is set non-zero via reflection
// so new fields are covered automatically.
func TestOptionsPreserveSerial(t *testing.T) {
	var in gp.Options
	rv := reflect.ValueOf(&in).Elem()
	rt := rv.Type()
	for i := 0; i < rt.NumField(); i++ {
		f := rv.Field(i)
		switch f.Kind() {
		case reflect.Int, reflect.Int8, reflect.Int16, reflect.Int32, reflect.Int64:
			f.SetInt(int64(i + 3))
		case reflect.Float32, reflect.Float64:
			f.SetFloat(float64(i) + 0.25)
		case reflect.Bool:
			f.SetBool(true)
		case reflect.String:
			f.SetString("x")
		case reflect.Slice:
			f.Set(reflect.MakeSlice(f.Type(), 2, 2))
		default:
			t.Fatalf("gp.Options.%s has kind %s: teach TestOptionsPreserveSerial how to set it",
				rt.Field(i).Name, f.Kind())
		}
		if f.IsZero() {
			t.Fatalf("gp.Options.%s still zero after fixture setup", rt.Field(i).Name)
		}
	}

	out := Options{Serial: in}.withDefaults().Serial
	rvOut := reflect.ValueOf(out)
	for i := 0; i < rt.NumField(); i++ {
		name := rt.Field(i).Name
		if rvOut.Field(i).IsZero() {
			t.Errorf("withDefaults zeroed Serial.%s", name)
		}
		if !reflect.DeepEqual(rv.Field(i).Interface(), rvOut.Field(i).Interface()) {
			t.Errorf("withDefaults changed Serial.%s: %v -> %v",
				name, rv.Field(i).Interface(), rvOut.Field(i).Interface())
		}
	}
}
