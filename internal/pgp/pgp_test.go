package pgp

import (
	"math/rand"
	"testing"
	"time"

	"hyperbal/internal/gp"
	"hyperbal/internal/graph"
	"hyperbal/internal/mpi"
	"hyperbal/internal/partition"
)

func grid(w, h int) *graph.Graph {
	b := graph.NewBuilder(w * h)
	id := func(x, y int) int { return y*w + x }
	for y := 0; y < h; y++ {
		for x := 0; x < w; x++ {
			if x+1 < w {
				b.AddEdge(id(x, y), id(x+1, y), 1)
			}
			if y+1 < h {
				b.AddEdge(id(x, y), id(x, y+1), 1)
			}
		}
	}
	return b.Build()
}

// runParallel runs fn on np ranks under the substrate watchdog (a stall
// fails with a DeadlockError naming the blocked ranks) and returns the
// rank-0 partition after checking all ranks agree.
func runParallel(t *testing.T, np int, fn func(c *mpi.Comm) (partition.Partition, error)) partition.Partition {
	t.Helper()
	return runParallelFault(t, np, nil, fn)
}

// runParallelFault is runParallel under an injected fault schedule.
func runParallelFault(t *testing.T, np int, plan *mpi.FaultPlan, fn func(c *mpi.Comm) (partition.Partition, error)) partition.Partition {
	t.Helper()
	results := make([]partition.Partition, np)
	_, err := mpi.RunWith(np, mpi.Options{Watchdog: 60 * time.Second, Fault: plan}, func(c *mpi.Comm) error {
		p, err := fn(c)
		if err != nil {
			return err
		}
		results[c.Rank()] = p
		return nil
	})
	if err != nil {
		t.Fatal(err)
	}
	for r := 1; r < np; r++ {
		for v := range results[0].Parts {
			if results[r].Parts[v] != results[0].Parts[v] {
				t.Fatalf("rank %d disagrees at vertex %d", r, v)
			}
		}
	}
	return results[0]
}

func TestParallelScratch(t *testing.T) {
	g := grid(20, 20)
	for _, np := range []int{1, 2, 4} {
		p := runParallel(t, np, func(c *mpi.Comm) (partition.Partition, error) {
			return Partition(c, g, Options{Serial: gp.Options{K: 4, Imbalance: 0.05, Seed: 1}})
		})
		if err := p.Validate(); err != nil {
			t.Fatalf("np=%d: %v", np, err)
		}
		w := partition.GraphWeights(g, p)
		if !partition.IsBalanced(w, 0.15) {
			t.Fatalf("np=%d imbalanced: %v", np, w)
		}
		if cut := partition.EdgeCut(g, p); cut > 200 {
			t.Fatalf("np=%d cut %d too high", np, cut)
		}
	}
}

func TestParallelAdaptiveAnchorsAtLowITR(t *testing.T) {
	g := grid(16, 16)
	old, err := gp.Partition(g, gp.Options{K: 4, Seed: 3})
	if err != nil {
		t.Fatal(err)
	}
	p := runParallel(t, 4, func(c *mpi.Comm) (partition.Partition, error) {
		return AdaptiveRepart(c, g, old, 1, Options{Serial: gp.Options{K: 4, Seed: 5}})
	})
	mig := partition.GraphMigrationVolume(g, old, p)
	if mig > int64(g.NumVertices()/5) {
		t.Fatalf("ITR=1 parallel adaptive moved %d (too much on a balanced problem)", mig)
	}
}

func TestParallelAdaptiveRebalances(t *testing.T) {
	// hot stripe as in the serial test
	w, h := 16, 16
	b := graph.NewBuilder(w * h)
	id := func(x, y int) int { return y*w + x }
	for y := 0; y < h; y++ {
		for x := 0; x < w; x++ {
			if x+1 < w {
				b.AddEdge(id(x, y), id(x+1, y), 1)
			}
			if y+1 < h {
				b.AddEdge(id(x, y), id(x, y+1), 1)
			}
			if x < w/4 {
				b.SetWeight(id(x, y), 8)
			}
		}
	}
	g := b.Build()
	old := partition.New(w*h, 4)
	for y := 0; y < h; y++ {
		for x := 0; x < w; x++ {
			old.Assign(id(x, y), x/(w/4))
		}
	}
	oldImb := partition.Imbalance(partition.GraphWeights(g, old))
	p := runParallel(t, 4, func(c *mpi.Comm) (partition.Partition, error) {
		return AdaptiveRepart(c, g, old, 100, Options{Serial: gp.Options{K: 4, Seed: 7, Imbalance: 0.1}})
	})
	newImb := partition.Imbalance(partition.GraphWeights(g, p))
	if newImb >= oldImb/2 {
		t.Fatalf("parallel adaptive failed to rebalance: %.2f -> %.2f", oldImb, newImb)
	}
}

func TestParallelAdaptiveValidation(t *testing.T) {
	g := grid(4, 4)
	err := mpi.Run(2, func(c *mpi.Comm) error {
		_, err := AdaptiveRepart(c, g, partition.New(3, 2), 1, Options{Serial: gp.Options{K: 2}})
		if err == nil {
			t.Error("expected length mismatch error")
		}
		return nil
	})
	if err != nil {
		t.Fatal(err)
	}
}

func TestParallelK1(t *testing.T) {
	g := grid(4, 4)
	p := runParallel(t, 2, func(c *mpi.Comm) (partition.Partition, error) {
		return Partition(c, g, Options{Serial: gp.Options{K: 1}})
	})
	for _, q := range p.Parts {
		if q != 0 {
			t.Fatal("K=1 must assign part 0")
		}
	}
}

func TestParallelHEMLegality(t *testing.T) {
	g := grid(12, 12)
	labels := make([]int32, g.NumVertices())
	for v := range labels {
		labels[v] = int32(v % 3)
	}
	matches := make([][]int32, 3)
	err := mpi.Run(3, func(c *mpi.Comm) error {
		rng := rand.New(rand.NewSource(int64(c.Rank() + 1)))
		m := parallelHEM(c, g, labels, rng, Options{}.withDefaults())
		matches[c.Rank()] = m
		return nil
	})
	if err != nil {
		t.Fatal(err)
	}
	m := matches[0]
	for r := 1; r < 3; r++ {
		for v := range m {
			if matches[r][v] != m[v] {
				t.Fatalf("rank %d match differs at %d", r, v)
			}
		}
	}
	for v := range m {
		u := int(m[v])
		if int(m[u]) != v {
			t.Fatalf("asymmetric match at %d", v)
		}
		if u != v {
			if labels[u] != labels[v] {
				t.Fatalf("matched across labels: %d,%d", v, u)
			}
			if !g.HasEdge(u, v) {
				t.Fatalf("matched non-adjacent: %d,%d", v, u)
			}
		}
	}
}
