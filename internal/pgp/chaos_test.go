package pgp

// Chaos tests: parallel graph partitioning and adaptive repartitioning
// must be schedule independent — identical partitions and migration
// metrics under any injected delay/reorder schedule — and injected rank
// crashes must degrade into clean errors, never hangs.

import (
	"errors"
	"fmt"
	"testing"
	"time"

	"hyperbal/internal/gp"
	"hyperbal/internal/mpi"
	"hyperbal/internal/partition"
)

func chaosPlans() []*mpi.FaultPlan {
	return []*mpi.FaultPlan{
		nil,
		{Seed: 11, MaxDelay: 150 * time.Microsecond},
		{Seed: 12, Reorder: true},
		{Seed: 13, MaxDelay: 80 * time.Microsecond, Reorder: true, DelayRanks: []int{1, 3}},
	}
}

func TestPartitionScheduleIndependent(t *testing.T) {
	g := grid(16, 16)
	var baseline partition.Partition
	var baseCut int64
	for i, plan := range chaosPlans() {
		p := runParallelFault(t, 4, plan, func(c *mpi.Comm) (partition.Partition, error) {
			return Partition(c, g, Options{Serial: gp.Options{K: 4, Imbalance: 0.05, Seed: 1}})
		})
		cut := partition.EdgeCut(g, p)
		if i == 0 {
			baseline, baseCut = p, cut
			continue
		}
		if cut != baseCut {
			t.Fatalf("cut %d under FaultPlan{Seed:%d} differs from clean cut %d", cut, plan.Seed, baseCut)
		}
		for v := range baseline.Parts {
			if p.Parts[v] != baseline.Parts[v] {
				t.Fatalf("partition differs at vertex %d under FaultPlan{Seed:%d}", v, plan.Seed)
			}
		}
	}
}

func TestAdaptiveRepartScheduleIndependent(t *testing.T) {
	g := grid(16, 16)
	old, err := gp.Partition(g, gp.Options{K: 4, Seed: 3})
	if err != nil {
		t.Fatal(err)
	}
	var baseline partition.Partition
	var baseMig int64
	for i, plan := range chaosPlans() {
		p := runParallelFault(t, 4, plan, func(c *mpi.Comm) (partition.Partition, error) {
			return AdaptiveRepart(c, g, old, 10, Options{Serial: gp.Options{K: 4, Seed: 5}})
		})
		mig := partition.GraphMigrationVolume(g, old, p)
		if i == 0 {
			baseline, baseMig = p, mig
			continue
		}
		if mig != baseMig {
			t.Fatalf("migration volume %d under FaultPlan{Seed:%d} differs from clean %d", mig, plan.Seed, baseMig)
		}
		for v := range baseline.Parts {
			if p.Parts[v] != baseline.Parts[v] {
				t.Fatalf("repartition differs at vertex %d under FaultPlan{Seed:%d}", v, plan.Seed)
			}
		}
	}
}

func TestPartitionCrashFailsCleanly(t *testing.T) {
	g := grid(16, 16)
	start := time.Now()
	_, err := mpi.RunWith(4, mpi.Options{
		Watchdog: 2 * time.Second,
		Fault:    &mpi.FaultPlan{Crash: map[int]int{2: 3}},
	}, func(c *mpi.Comm) error {
		_, err := Partition(c, g, Options{Serial: gp.Options{K: 4, Seed: 1}})
		return err
	})
	if err == nil {
		t.Fatal("expected a crash fault to surface as an error")
	}
	var crash *mpi.CrashError
	if !errors.As(err, &crash) {
		t.Fatalf("expected CrashError, got: %v", err)
	}
	if crash.Rank != 2 {
		t.Fatalf("crash = %+v, want rank 2", crash)
	}
	if elapsed := time.Since(start); elapsed > 30*time.Second {
		t.Fatalf("crash took %v to surface (hang-like behavior)", elapsed)
	}
}

// pgp's candidate rounds ship []matchBid (int32+int32+int64 = 16 bytes)
// and refinement ships []moveProposal (same layout); verify both are
// accounted at packed size in the traffic stats.
func TestStructPayloadTrafficAccounting(t *testing.T) {
	stats, err := mpi.RunWith(2, mpi.Options{Watchdog: 30 * time.Second}, func(c *mpi.Comm) error {
		if c.Rank() == 0 {
			c.Send(1, 1, []matchBid{{Cand: 1, Match: 2, Score: 3}, {}})
			c.Send(1, 2, []moveProposal{{V: 1, To: 2, Gain: 3}, {}, {}})
		} else {
			if got := c.Recv(0, 1).([]matchBid); len(got) != 2 {
				return fmt.Errorf("got %d bids", len(got))
			}
			if got := c.Recv(0, 2).([]moveProposal); len(got) != 3 {
				return fmt.Errorf("got %d proposals", len(got))
			}
		}
		return nil
	})
	if err != nil {
		t.Fatal(err)
	}
	if got := stats.Bytes.Load(); got != 2*16+3*16 {
		t.Fatalf("struct payloads accounted as %d bytes, want 80", got)
	}
}
