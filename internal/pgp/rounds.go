package pgp

import (
	"math/rand"

	"hyperbal/internal/gp"
	"hyperbal/internal/graph"
	"hyperbal/internal/mpi"
)

// matchBid is one rank's best heavy-edge offer for a candidate vertex.
type matchBid struct {
	Cand  int32
	Match int32
	Score int64 // edge weight
}

// parallelHEM runs candidate-round heavy-edge matching: each rank
// nominates unmatched vertices from its block; all ranks bid their best
// local unmatched neighbor (restricted to equal samePart labels when
// adaptive); an elementwise reduction picks the heaviest edge; matches
// finalize deterministically on every rank.
func parallelHEM(c *mpi.Comm, g *graph.Graph, samePart []int32, rng *rand.Rand, opt Options) []int32 {
	n := g.NumVertices()
	match := make([]int32, n)
	for v := range match {
		match[v] = -1
	}
	lo, hi := blockRange(n, c.Size(), c.Rank())
	candPerRound := (hi - lo) / 2
	if candPerRound < 8 {
		candPerRound = 8
	}

	for round := 0; round < opt.MatchRounds; round++ {
		var local []int32
		for _, v := range rng.Perm(hi - lo) {
			gv := int32(lo + v)
			if match[gv] == -1 {
				local = append(local, gv)
				if len(local) >= candPerRound {
					break
				}
			}
		}
		obsCandidates.Add(int64(len(local)))
		cands, _ := mpi.AllgatherSlice(c, local)
		if len(cands) == 0 {
			break
		}
		if c.Rank() == 0 {
			obsHEMRounds.Inc()
		}
		bids := make([]matchBid, len(cands))
		feasible := 0
		for i, cand := range cands {
			bids[i] = bestLocalBid(g, match, samePart, int(cand), lo, hi)
			if bids[i].Match >= 0 {
				feasible++
			}
		}
		obsBids.Add(int64(feasible))
		best := mpi.AllreduceSlice(c, bids, func(a, b matchBid) matchBid {
			if b.Score > a.Score || (b.Score == a.Score && b.Score > 0 && b.Match < a.Match) {
				return b
			}
			return a
		})
		for i, cand := range cands {
			b := best[i]
			if b.Score <= 0 || b.Match < 0 {
				continue
			}
			if match[cand] != -1 || match[b.Match] != -1 || cand == b.Match {
				continue
			}
			match[cand] = b.Match
			match[b.Match] = cand
		}
	}
	for v := range match {
		if match[v] == -1 {
			match[v] = int32(v)
		}
	}
	return match
}

func bestLocalBid(g *graph.Graph, match, samePart []int32, cand, lo, hi int) matchBid {
	bid := matchBid{Cand: int32(cand), Match: -1}
	adj, wts := g.Adj(cand), g.AdjWeights(cand)
	for i, u := range adj {
		v := int(u)
		if v < lo || v >= hi || match[v] != -1 {
			continue
		}
		if samePart != nil && samePart[cand] != samePart[v] {
			continue
		}
		if wts[i] > bid.Score || (wts[i] == bid.Score && bid.Match >= 0 && u < bid.Match) {
			bid.Score = wts[i]
			bid.Match = u
		}
	}
	return bid
}

// moveProposal is one suggested relocation with its combined gain.
type moveProposal struct {
	V    int32
	To   int32
	Gain int64
}

// parallelRefine improves parts in place with propose/exchange/apply
// rounds under the combined objective itr*edgecut + migration (pure edge
// cut when oldPart is nil).
func parallelRefine(c *mpi.Comm, g *graph.Graph, k int, parts []int32, oldPart []int32, itr int64, caps []int64, opt Options) {
	if itr < 1 {
		itr = 1
	}
	n := g.NumVertices()
	lo, hi := blockRange(n, c.Size(), c.Rank())
	w := make([]int64, k)
	for v := 0; v < n; v++ {
		w[parts[v]] += g.Weight(v)
	}
	conn := make([]int64, k)
	touched := make([]int32, 0, k)

	gainOf := func(v int, to int32) int64 {
		from := parts[v]
		adj, wts := g.Adj(v), g.AdjWeights(v)
		var connFrom, connTo int64
		for i, u := range adj {
			switch parts[u] {
			case from:
				connFrom += wts[i]
			case to:
				connTo += wts[i]
			}
		}
		gain := itr * (connTo - connFrom)
		if oldPart != nil {
			if from == oldPart[v] {
				gain -= g.Size(v)
			}
			if to == oldPart[v] {
				gain += g.Size(v)
			}
		}
		return gain
	}

	for round := 0; round < opt.RefineRounds; round++ {
		var proposals []moveProposal
		for v := lo; v < hi && len(proposals) < opt.MovesPerRound; v++ {
			from := parts[v]
			adj, wts := g.Adj(v), g.AdjWeights(v)
			touched = touched[:0]
			for i, u := range adj {
				q := parts[u]
				if conn[q] == 0 {
					touched = append(touched, q)
				}
				conn[q] += wts[i]
			}
			var bestTo int32 = -1
			var bestGain int64
			overFrom := w[from] > caps[from]
			for _, q := range touched {
				if q == from || w[q]+g.Weight(v) > caps[q] {
					continue
				}
				gain := itr * (conn[q] - conn[from])
				if oldPart != nil {
					if from == oldPart[v] {
						gain -= g.Size(v)
					}
					if q == oldPart[v] {
						gain += g.Size(v)
					}
				}
				if gain > bestGain || (overFrom && bestTo == -1) {
					bestGain = gain
					bestTo = q
				}
			}
			for _, q := range touched {
				conn[q] = 0
			}
			if bestTo >= 0 && (bestGain > 0 || overFrom) {
				proposals = append(proposals, moveProposal{V: int32(v), To: bestTo, Gain: bestGain})
			}
		}
		obsProposals.Add(int64(len(proposals)))
		all, _ := mpi.AllgatherSlice(c, proposals)
		if len(all) == 0 {
			break
		}
		if c.Rank() == 0 {
			obsRefineRounds.Inc()
		}
		applied := 0
		for _, m := range all {
			v := int(m.V)
			from := parts[v]
			if from == m.To || w[m.To]+g.Weight(v) > caps[m.To] {
				continue
			}
			overFrom := w[from] > caps[from]
			if gn := gainOf(v, m.To); gn <= 0 && !overFrom {
				continue
			}
			w[from] -= g.Weight(v)
			w[m.To] += g.Weight(v)
			parts[v] = m.To
			applied++
		}
		if c.Rank() == 0 {
			obsMovesApplied.Add(int64(applied))
			obsMovesRejected.Add(int64(len(all) - applied))
		}
		if applied == 0 {
			break
		}
	}
	// Final identical-everywhere polish.
	gp.RefineKway(g, k, parts, oldPart, itr, caps, 2)
}
