// Package pgp is the parallel counterpart of internal/gp: a ParMETIS-like
// parallel multilevel graph partitioner and adaptive repartitioner running
// SPMD over the internal/mpi substrate. It completes the Figures 7-8
// comparison so the hypergraph (phg) and graph (pgp) pipelines are timed
// under the same execution model: candidate-round matching, replicated
// coarse solve with a MinLoc reduction, propose/exchange refinement.
//
// The graph pipeline stays deliberately lighter-weight than phg —
// adjacency-array scoring rather than net traversal — preserving the
// paper's run-time relationship ("graph-based approaches 10 to 15 times
// faster" on medium-dense problems, at a quality cost).
package pgp

import (
	"fmt"
	"math/rand"
	"time"

	"hyperbal/internal/gp"
	"hyperbal/internal/graph"
	"hyperbal/internal/mpi"
	"hyperbal/internal/partition"
)

// Options extend the serial gp options with parallel knobs.
type Options struct {
	Serial gp.Options
	// MatchRounds bounds candidate-matching rounds per level (default 10).
	MatchRounds int
	// MovesPerRound bounds refinement proposals per rank per exchange
	// (default 128).
	MovesPerRound int
	// RefineRounds bounds proposal exchanges per level (default 12).
	RefineRounds int
}

func (o Options) withDefaults() Options {
	if o.MatchRounds <= 0 {
		o.MatchRounds = 10
	}
	if o.MovesPerRound <= 0 {
		o.MovesPerRound = 128
	}
	if o.RefineRounds <= 0 {
		o.RefineRounds = 12
	}
	return o
}

// Partition computes a k-way partition from scratch in parallel. Every
// rank calls with identical arguments and receives the identical result.
func Partition(c *mpi.Comm, g *graph.Graph, opt Options) (partition.Partition, error) {
	return run(c, g, nil, 1, opt)
}

// AdaptiveRepart runs the unified adaptive repartitioning scheme in
// parallel: partition-respecting coarsening, inherited coarse solution,
// combined-objective (itr) refinement.
func AdaptiveRepart(c *mpi.Comm, g *graph.Graph, old partition.Partition, itr int64, opt Options) (partition.Partition, error) {
	if len(old.Parts) != g.NumVertices() {
		return partition.Partition{}, fmt.Errorf("pgp: old partition covers %d vertices, graph has %d",
			len(old.Parts), g.NumVertices())
	}
	oldParts := append([]int32(nil), old.Parts...)
	return run(c, g, oldParts, itr, opt)
}

func run(c *mpi.Comm, g *graph.Graph, oldPart []int32, itr int64, opt Options) (partition.Partition, error) {
	opt = opt.withDefaults()
	serial := opt.Serial
	k := serial.K
	if k < 1 {
		return partition.Partition{}, fmt.Errorf("pgp: K must be >= 1")
	}
	p := partition.Partition{Parts: make([]int32, g.NumVertices()), K: k}
	if k == 1 || g.NumVertices() == 0 {
		return p, nil
	}
	rng := rand.New(rand.NewSource(serial.Seed*999983 + int64(c.Rank())))

	coarsenTo := serial.CoarsenTo
	if coarsenTo <= 0 {
		coarsenTo = 100
	}
	if coarsenTo < 2*k {
		coarsenTo = 2 * k
	}
	minShrink := serial.MinShrink
	if minShrink <= 0 {
		minShrink = 0.10
	}

	type level struct {
		g       *graph.Graph
		cmap    []int32
		oldPart []int32
	}
	if c.Rank() == 0 {
		if oldPart != nil {
			obsAdaptive.Inc()
		} else {
			obsPartitions.Inc()
		}
	}
	levels := []level{{g: g, oldPart: oldPart}}
	cur, curOld := g, oldPart
	for cur.NumVertices() > coarsenTo {
		start := time.Now()
		match := parallelHEM(c, cur, curOld, rng, opt)
		coarse, cmap, coarseOld := gp.Contract(cur, match, curOld)
		obsCoarsenNs.At(len(levels) - 1).ObserveSince(start)
		if 1-float64(coarse.NumVertices())/float64(cur.NumVertices()) < minShrink {
			break
		}
		levels[len(levels)-1].cmap = cmap
		levels = append(levels, level{g: coarse, oldPart: coarseOld})
		cur, curOld = coarse, coarseOld
	}

	// Coarse solve.
	coarsest := levels[len(levels)-1]
	var parts []int32
	if oldPart != nil {
		// Adaptive: inherit the coarse old partition (identical on every
		// rank — no election needed).
		parts = append([]int32(nil), coarsest.oldPart...)
	} else {
		// Scratch: replicated multi-start via per-rank serial solves.
		solveStart := time.Now()
		so := serial
		so.Seed = serial.Seed*6361 + int64(c.Rank()+1)
		cp, err := gp.Partition(coarsest.g, so)
		if err != nil {
			return partition.Partition{}, err
		}
		myCut := partition.EdgeCut(coarsest.g, cp)
		winner := mpi.AllreduceMinLoc(c, myCut)
		parts = mpi.BcastSlice(c, winner.Rank, cp.Parts)
		obsCoarseSolveNs.ObserveSince(solveStart)
	}

	eps := serial.Imbalance
	if eps <= 0 {
		eps = 0.05
	}
	caps := capsFor(g, k, eps)
	for i := len(levels) - 1; i >= 0; i-- {
		refineStart := time.Now()
		if i < len(levels)-1 {
			parts = gp.Project(levels[i].cmap, parts)
		}
		parallelRefine(c, levels[i].g, k, parts, levels[i].oldPart, itr, caps, opt)
		obsRefineNs.At(i).ObserveSince(refineStart)
	}
	copy(p.Parts, parts)
	return p, nil
}

func capsFor(g *graph.Graph, k int, eps float64) []int64 {
	total := g.TotalWeight()
	capv := int64(float64(total) / float64(k) * (1 + eps))
	if capv < 1 {
		capv = 1
	}
	caps := make([]int64, k)
	for i := range caps {
		caps[i] = capv
	}
	return caps
}

func blockRange(n, size, r int) (int, int) {
	per := n / size
	rem := n % size
	lo := r*per + minInt(r, rem)
	hi := lo + per
	if r < rem {
		hi++
	}
	return lo, hi
}

func minInt(a, b int) int {
	if a < b {
		return a
	}
	return b
}
