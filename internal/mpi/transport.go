// The transport seam: everything a real-network substrate must provide to
// run the SPMD algorithms unchanged.
//
// The in-process substrate (mpi.Run and friends) wires ranks with a
// channel matrix inside one process. A Transport replaces exactly that
// wiring — point-to-point delivery with per-(comm,src,dst,tag-stream)
// ordering — while the Comm layer keeps everything else: rank/size
// bookkeeping, traffic accounting via payloadBytes (so per-rank
// message/byte counts are identical across substrates), collectives,
// Split, and the OnEvent trace. internal/mpinet implements Transport over
// TCP; tests can implement it over anything.
//
// Payloads cross a Transport as typed values. The in-process path moves
// them as interface values and needs no declarations, but a real network
// must reconstruct the concrete type on the far side, so transportable
// types are declared once via RegisterPayload (scalars, their slices and
// the substrate's own internal types are pre-registered). Registration is
// by reflect type string, which is stable across processes of the same
// binary — the compute plane ships the same code everywhere, exactly like
// an MPI program.
package mpi

import (
	"fmt"
	"reflect"
	"sync"
	"time"
)

// Transport delivers typed messages between the ranks of one world whose
// rank processes live behind a network. Ranks passed here are world ranks
// (the Comm layer translates split-communicator ranks). comm identifies
// the communicator (0 is the world communicator; Split derives fresh ids
// deterministically), so streams of different communicators between the
// same pair never cross-match.
//
// Both calls may block (flow control on Send, waiting for a message on
// Recv) and report how long they blocked so the Comm layer can keep the
// Stats stall/blocked-send accounting honest. A returned error is fatal
// for the calling rank: the Comm layer unwinds the rank with it. A lost
// peer should surface as an error wrapping *CrashError so callers can
// detect crashed ranks structurally.
type Transport interface {
	Send(comm uint64, dst, tag int, data any) (stall time.Duration, err error)
	Recv(comm uint64, src, tag int) (data any, stall time.Duration, err error)
}

// transportFailure unwinds a rank goroutine when its Transport fails; the
// RunTransportRank recover translates it back into an error.
type transportFailure struct{ err error }

// RunTransportRank runs fn as world rank `rank` of a size-`size` SPMD
// world whose messaging flows through tr — the per-process entry point of
// a distributed world (each rank process calls it once; a coordinator
// such as mpinet.RunWorld arranges that). The returned Stats hold this
// rank's traffic only; summing them across ranks reproduces the shared
// Stats of an in-process world.
//
// Fault injection is not supported here (Options.Fault must be nil): on a
// real network, delays and reordering are supplied by the network itself
// and crashes by real process death. Watchdog duties belong to the
// transport (e.g. its receive deadline); Options.Watchdog is ignored.
func RunTransportRank(tr Transport, rank, size int, opt Options, fn func(c *Comm) error) (*Stats, error) {
	if size < 1 {
		return nil, fmt.Errorf("mpi: world size must be >= 1, got %d", size)
	}
	if rank < 0 || rank >= size {
		return nil, fmt.Errorf("mpi: rank %d out of range for world size %d", rank, size)
	}
	if opt.Fault != nil {
		return nil, fmt.Errorf("mpi: fault injection is in-process only; a Transport world gets its faults from the real network")
	}
	opt.Watchdog = 0
	opt = opt.normalized()
	w := newWorld(size, opt)
	var err error
	func() {
		defer func() {
			w.finish(rank)
			switch v := recover().(type) {
			case nil:
			case transportFailure:
				err = v.err
			default:
				panic(v)
			}
		}()
		c := newComm(w, nil, rank, size, nil)
		c.tr = tr
		err = fn(c)
	}()
	bridgeStats(w.stats, false, 0)
	return w.stats, err
}

// deriveCommID computes the communicator id a Split of parent yields for
// one color. It is a pure function of (parent id, split sequence number,
// color), and every rank of the parent communicator executes the same
// Split sequence, so all members of a color agree on the id without any
// extra round trip — and distinct colors (and distinct splits) get
// distinct streams. FNV-1a over the three values; 64 bits make an
// accidental collision between the handful of live communicators of one
// world vanishingly unlikely.
func deriveCommID(parent uint64, seq, color int) uint64 {
	const (
		offset64 = 14695981039346656037
		prime64  = 1099511628211
	)
	h := uint64(offset64)
	for _, v := range [3]uint64{parent, uint64(int64(seq)), uint64(int64(color))} {
		for i := 0; i < 8; i++ {
			h ^= (v >> (8 * i)) & 0xff
			h *= prime64
		}
	}
	// Never collide with the world communicator.
	if h == 0 {
		h = 1
	}
	return h
}

// ---- Transportable payload registry ----

var (
	payloadMu  sync.RWMutex
	payloadReg = map[string]reflect.Type{}
)

// RegisterPayload declares the dynamic types of the given values as
// transportable: a network transport may need to reconstruct the concrete
// type of a received payload, and does so by name through this registry.
// The name is the reflect type string (e.g. "[]int32", "phg.matchBid"),
// stable across processes running the same binary. Registering a type
// twice is a no-op; two distinct types stringifying to the same name is a
// bug and panics. In-process worlds need no registration.
func RegisterPayload(vs ...any) {
	payloadMu.Lock()
	defer payloadMu.Unlock()
	for _, v := range vs {
		t := reflect.TypeOf(v)
		if t == nil {
			panic("mpi: RegisterPayload of untyped nil")
		}
		name := t.String()
		if prev, ok := payloadReg[name]; ok {
			if prev != t {
				panic(fmt.Sprintf("mpi: payload name %q registered for two distinct types", name))
			}
			continue
		}
		payloadReg[name] = t
	}
}

// PayloadTypeByName resolves a registered payload type.
func PayloadTypeByName(name string) (reflect.Type, bool) {
	payloadMu.RLock()
	defer payloadMu.RUnlock()
	t, ok := payloadReg[name]
	return t, ok
}

// PayloadName returns the registry name of v's dynamic type ("" for nil).
func PayloadName(v any) string {
	if v == nil {
		return ""
	}
	return reflect.TypeOf(v).String()
}

func init() {
	// Scalars and homogeneous slices every substrate user may ship, plus
	// the substrate's own collective payload types.
	RegisterPayload(
		bool(false), int(0), int8(0), int16(0), int32(0), int64(0),
		uint(0), uint8(0), uint16(0), uint32(0), uint64(0),
		float32(0), float64(0), string(""),
		[]bool(nil), []int(nil), []int8(nil), []int16(nil), []int32(nil), []int64(nil),
		[]uint(nil), []uint8(nil), []uint16(nil), []uint32(nil), []uint64(nil),
		[]float32(nil), []float64(nil), []string(nil),
		[][]int(nil), [][]int32(nil), [][]int64(nil), [][]float64(nil),
		MinLoc{}, []MinLoc(nil),
		splitEntry{}, []splitEntry(nil),
	)
}
