package mpi

// Typed collectives. All of them must be called by every rank of the
// communicator, in the same order (standard MPI discipline). Simple
// root-centralized algorithms: correctness and traffic accounting matter
// here, not message-complexity asymptotics.

// Bcast distributes root's value to every rank and returns it.
func Bcast[T any](c *Comm, root int, v T) T {
	defer c.collective("bcast")()
	if c.size == 1 {
		return v
	}
	if c.rank == root {
		for r := 0; r < c.size; r++ {
			if r != root {
				c.Send(r, tagBcast, v)
			}
		}
		return v
	}
	return c.Recv(root, tagBcast).(T)
}

// BcastSlice distributes root's slice; non-root ranks receive a copy they
// own.
func BcastSlice[T any](c *Comm, root int, v []T) []T {
	defer c.collective("bcast-slice")()
	if c.size == 1 {
		return v
	}
	if c.rank == root {
		for r := 0; r < c.size; r++ {
			if r != root {
				c.Send(r, tagBcast, append([]T(nil), v...))
			}
		}
		return v
	}
	return c.Recv(root, tagBcast).([]T)
}

// Gather collects one value per rank at root (rank order). Non-root ranks
// receive nil.
func Gather[T any](c *Comm, root int, v T) []T {
	defer c.collective("gather")()
	if c.rank == root {
		out := make([]T, c.size)
		out[root] = v
		for r := 0; r < c.size; r++ {
			if r != root {
				out[r] = c.Recv(r, tagGather).(T)
			}
		}
		return out
	}
	c.Send(root, tagGather, v)
	return nil
}

// Allgather collects one value per rank, in rank order, on every rank.
func Allgather[T any](c *Comm, v T) []T {
	defer c.collective("allgather")()
	all := Gather(c, 0, v)
	return BcastSlice(c, 0, all)
}

// GatherSlice concatenates variable-length per-rank slices at root in rank
// order, also returning the per-rank counts. Non-root ranks receive nils.
func GatherSlice[T any](c *Comm, root int, v []T) (concat []T, counts []int) {
	defer c.collective("gather-slice")()
	parts := Gather(c, root, v)
	if c.rank != root {
		return nil, nil
	}
	counts = make([]int, c.size)
	for r, p := range parts {
		counts[r] = len(p)
		concat = append(concat, p...)
	}
	return concat, counts
}

// AllgatherSlice concatenates per-rank slices on every rank (rank order),
// also returning per-rank counts.
func AllgatherSlice[T any](c *Comm, v []T) (concat []T, counts []int) {
	defer c.collective("allgather-slice")()
	concat, counts = GatherSlice(c, 0, v)
	concat = BcastSlice(c, 0, concat)
	counts = BcastSlice(c, 0, counts)
	return concat, counts
}

// Reduce folds one value per rank at root with op (applied in rank order).
// Non-root ranks receive the zero value.
func Reduce[T any](c *Comm, root int, v T, op func(T, T) T) T {
	defer c.collective("reduce")()
	all := Gather(c, root, v)
	if c.rank != root {
		var zero T
		return zero
	}
	acc := all[0]
	for _, x := range all[1:] {
		acc = op(acc, x)
	}
	return acc
}

// Allreduce folds one value per rank with op and distributes the result.
func Allreduce[T any](c *Comm, v T, op func(T, T) T) T {
	defer c.collective("allreduce")()
	acc := Reduce(c, 0, v, op)
	return Bcast(c, 0, acc)
}

// AllreduceSlice folds equal-length slices elementwise with op and
// distributes the result (like MPI_Allreduce over an array).
func AllreduceSlice[T any](c *Comm, v []T, op func(T, T) T) []T {
	defer c.collective("allreduce-slice")()
	all := Gather(c, 0, v)
	var acc []T
	if c.rank == 0 {
		acc = append([]T(nil), all[0]...)
		for _, x := range all[1:] {
			for i := range acc {
				acc[i] = op(acc[i], x[i])
			}
		}
	}
	return BcastSlice(c, 0, acc)
}

// ExclusiveScan returns the prefix fold of v over ranks below the caller
// (the zero value on rank 0), like MPI_Exscan.
func ExclusiveScan[T any](c *Comm, v T, op func(T, T) T) T {
	defer c.collective("exscan")()
	all := Allgather(c, v)
	var acc T
	for r := 0; r < c.rank; r++ {
		if r == 0 {
			acc = all[0]
		} else {
			acc = op(acc, all[r])
		}
	}
	return acc
}

// Alltoall delivers sendbuf[r] to rank r; returns the values received,
// indexed by source rank.
func Alltoall[T any](c *Comm, sendbuf []T) []T {
	defer c.collective("alltoall")()
	if len(sendbuf) != c.size {
		panic("mpi: Alltoall sendbuf length must equal communicator size")
	}
	// route through rank-ordered point-to-point with deterministic order:
	// send ascending, receive ascending; self-delivery is local.
	out := make([]T, c.size)
	out[c.rank] = sendbuf[c.rank]
	for r := 0; r < c.size; r++ {
		if r != c.rank {
			c.Send(r, tagGather, sendbuf[r])
		}
	}
	for r := 0; r < c.size; r++ {
		if r != c.rank {
			out[r] = c.Recv(r, tagGather).(T)
		}
	}
	return out
}

// MinLoc reduction helper: value with the lowest key wins; ties go to the
// lowest rank (deterministic leader election for multi-start solves).
type MinLoc struct {
	Key  int64
	Rank int
}

// AllreduceMinLoc returns the MinLoc winner across ranks.
func AllreduceMinLoc(c *Comm, key int64) MinLoc {
	return Allreduce(c, MinLoc{Key: key, Rank: c.rank}, func(a, b MinLoc) MinLoc {
		if b.Key < a.Key || (b.Key == a.Key && b.Rank < a.Rank) {
			return b
		}
		return a
	})
}

// SumInt64 is the int64 addition operator for reductions.
func SumInt64(a, b int64) int64 { return a + b }

// MaxInt64 is the int64 max operator for reductions.
func MaxInt64(a, b int64) int64 {
	if a > b {
		return a
	}
	return b
}

// MinInt64 is the int64 min operator for reductions.
func MinInt64(a, b int64) int64 {
	if a < b {
		return a
	}
	return b
}
