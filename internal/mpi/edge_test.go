package mpi

import (
	"reflect"
	"testing"
	"time"
)

// runEdge runs fn on np ranks under a watchdog so an edge case that breaks
// collective symmetry fails with a structured DeadlockError instead of a
// test timeout.
func runEdge(t *testing.T, np int, fn func(c *Comm) error) {
	t.Helper()
	if _, err := RunWith(np, Options{Watchdog: 30 * time.Second}, fn); err != nil {
		t.Fatal(err)
	}
}

func TestCollectivesSizeOneWorld(t *testing.T) {
	runEdge(t, 1, func(c *Comm) error {
		if got := Bcast(c, 0, 42); got != 42 {
			t.Errorf("Bcast = %d, want 42", got)
		}
		if got := Allgather(c, 7); !reflect.DeepEqual(got, []int{7}) {
			t.Errorf("Allgather = %v, want [7]", got)
		}
		if got := ExclusiveScan(c, 5, SumInt64); got != 0 {
			t.Errorf("ExclusiveScan on rank 0 = %d, want zero value", got)
		}
		if got := Allreduce(c, int64(9), SumInt64); got != 9 {
			t.Errorf("Allreduce = %d, want 9", got)
		}
		if got := AllreduceSlice(c, []int64{1, 2}, SumInt64); !reflect.DeepEqual(got, []int64{1, 2}) {
			t.Errorf("AllreduceSlice = %v, want [1 2]", got)
		}
		if got := Alltoall(c, []int{3}); !reflect.DeepEqual(got, []int{3}) {
			t.Errorf("Alltoall = %v, want [3]", got)
		}
		if got := AllreduceMinLoc(c, 11); got.Key != 11 || got.Rank != 0 {
			t.Errorf("AllreduceMinLoc = %+v, want {11 0}", got)
		}
		return nil
	})
}

func TestExclusiveScanPrefixes(t *testing.T) {
	// Exscan semantics: rank r sees the fold of ranks [0, r); rank 0 the
	// zero value — even when contributions are zero.
	runEdge(t, 4, func(c *Comm) error {
		got := ExclusiveScan(c, int64(c.Rank()+1), SumInt64)
		var want int64
		for r := 1; r <= c.Rank(); r++ {
			want += int64(r)
		}
		if got != want {
			t.Errorf("rank %d: ExclusiveScan = %d, want %d", c.Rank(), got, want)
		}
		return nil
	})
}

func TestAllreduceSliceEmptyAndNil(t *testing.T) {
	runEdge(t, 3, func(c *Comm) error {
		// All ranks contribute nil: the reduction must complete (every rank
		// still participates in the underlying Gather/Bcast) and yield an
		// empty slice.
		if got := AllreduceSlice(c, nil, SumInt64); len(got) != 0 {
			t.Errorf("rank %d: AllreduceSlice(nil) = %v, want empty", c.Rank(), got)
		}
		if got := AllreduceSlice(c, []int64{}, SumInt64); len(got) != 0 {
			t.Errorf("rank %d: AllreduceSlice([]) = %v, want empty", c.Rank(), got)
		}
		return nil
	})
}

func TestAlltoallEmptyPayloads(t *testing.T) {
	// Slice-of-slice payloads where most entries are nil: delivery stays
	// symmetric and index-by-source, with empty slices passing through.
	runEdge(t, 3, func(c *Comm) error {
		send := make([][]int32, c.Size())
		send[(c.Rank()+1)%c.Size()] = []int32{int32(c.Rank())}
		got := Alltoall(c, send)
		if len(got) != c.Size() {
			t.Fatalf("rank %d: Alltoall returned %d entries, want %d", c.Rank(), len(got), c.Size())
		}
		src := (c.Rank() + c.Size() - 1) % c.Size()
		for r, pl := range got {
			if r == src {
				if len(pl) != 1 || pl[0] != int32(src) {
					t.Errorf("rank %d: from %d got %v, want [%d]", c.Rank(), r, pl, src)
				}
			} else if len(pl) != 0 {
				t.Errorf("rank %d: from %d got %v, want empty", c.Rank(), r, pl)
			}
		}
		return nil
	})
}

func TestGatherSliceEmptyContributions(t *testing.T) {
	runEdge(t, 4, func(c *Comm) error {
		// Odd ranks contribute nothing; counts must still line up per rank.
		var v []int
		if c.Rank()%2 == 0 {
			v = []int{c.Rank()}
		}
		concat, counts := AllgatherSlice(c, v)
		if want := []int{1, 0, 1, 0}; !reflect.DeepEqual(counts, want) {
			t.Errorf("rank %d: counts = %v, want %v", c.Rank(), counts, want)
		}
		if want := []int{0, 2}; !reflect.DeepEqual(concat, want) {
			t.Errorf("rank %d: concat = %v, want %v", c.Rank(), concat, want)
		}
		return nil
	})
}
