// Fault injection, deadlock diagnostics and tracing for the substrate.
//
// The partitioners in this repository are SPMD programs whose correctness
// claim is *schedule independence*: every rank must compute the identical
// partition no matter how messages are delayed or interleaved. The
// FaultPlan/watchdog machinery here exists to attack that claim directly:
//
//   - FaultPlan deterministically (seeded) injects per-rank message
//     delays, delivery reordering across distinct (src,tag) streams, and
//     rank-crash-at-step faults.
//   - The watchdog turns a hung world into a structured DeadlockError
//     that names which ranks are blocked in which operation, instead of
//     relying on ad-hoc test-level timeouts.
//   - Options.OnEvent exposes a per-operation trace, and Stats gains
//     collective counts and a max-stall gauge for the harness reports.
package mpi

import (
	"errors"
	"fmt"
	"math/rand"
	"strings"
	"sync"
	"sync/atomic"
	"time"
)

// DefaultWatchdog is the stall deadline armed automatically when a
// FaultPlan schedules rank crashes but no explicit watchdog was requested
// (a crash without a watchdog would hang the surviving ranks forever).
const DefaultWatchdog = 30 * time.Second

// Options configure a world beyond its size (see RunWith).
type Options struct {
	// Fault injects deterministic message-level faults; nil runs clean.
	Fault *FaultPlan
	// Watchdog aborts the world with a DeadlockError once every live rank
	// has been blocked inside a substrate operation for this long. 0
	// disables the watchdog (unless Fault schedules crashes, which arm
	// DefaultWatchdog).
	Watchdog time.Duration
	// OnEvent, when non-nil, receives one Event per completed substrate
	// operation. It is called concurrently from rank goroutines and must
	// be safe for concurrent use.
	OnEvent func(Event)
	// ChanCap is the per-pair send buffer capacity in messages; 0 means
	// DefaultChanCap. A send beyond this capacity blocks the sender (and
	// counts in Stats.BlockedSends). Network transports mirror it as their
	// flow-control window.
	ChanCap int
}

// normalized arms the default watchdog for crash plans and fills defaults.
func (o Options) normalized() Options {
	if o.Watchdog <= 0 && o.Fault != nil && len(o.Fault.Crash) > 0 {
		o.Watchdog = DefaultWatchdog
	}
	if o.ChanCap <= 0 {
		o.ChanCap = DefaultChanCap
	}
	return o
}

// FaultPlan describes a deterministic fault schedule. The same plan on the
// same program yields the same injected schedule, so a chaos failure is
// reproducible from its printed seed.
type FaultPlan struct {
	// Seed drives every injected decision (delays, reorder coin flips).
	Seed int64
	// MaxDelay, when positive, sleeps each message send for a seeded
	// pseudorandom duration in [0, MaxDelay).
	MaxDelay time.Duration
	// DelayRanks restricts injected delays to these world ranks
	// (nil delays all ranks).
	DelayRanks []int
	// Reorder enables delivery reordering across distinct (src,tag)
	// streams: the sender may hold one message per destination back and
	// let a later message with a different tag overtake it, and receivers
	// switch to MPI-style tag matching (messages with a non-matching tag
	// are buffered instead of treated as protocol errors). Order within
	// one (src,dst,tag) stream is always preserved.
	Reorder bool
	// Crash maps a world rank to the 1-based index of the substrate
	// operation (Send or Recv entry) at which that rank abruptly dies.
	// The crash surfaces as a *CrashError; peers blocked on the dead rank
	// are cut loose by the watchdog with a *DeadlockError.
	Crash map[int]int
}

// Event is one completed substrate operation, reported via Options.OnEvent.
type Event struct {
	// Rank is the world rank performing the operation.
	Rank int
	// Op is "send", "recv", or a collective name ("barrier", "allreduce", ...).
	Op string
	// Peer is the world rank of the other side (-1 for collectives).
	Peer int
	// Tag is the message tag (0 for collectives).
	Tag int
	// Bytes is the payload size (0 for collectives; their constituent
	// sends and recvs are reported separately).
	Bytes int64
	// Stall is how long the operation blocked (for collectives: the whole
	// call duration).
	Stall time.Duration
}

// CrashError reports a dead rank: killed by an injected crash fault
// (in-process, Step > 0) or lost to a dropped connection / dead process
// (network transport, Step == 0).
type CrashError struct {
	Rank int // world rank that crashed
	Step int // 1-based substrate operation index at which it died; 0 when unknown (connection lost)
}

func (e *CrashError) Error() string {
	if e.Step == 0 {
		return fmt.Sprintf("mpi: rank %d crashed (connection lost)", e.Rank)
	}
	return fmt.Sprintf("mpi: rank %d crashed by fault injection at operation %d", e.Rank, e.Step)
}

// BlockedOp describes one rank stuck in a substrate operation.
type BlockedOp struct {
	Rank int           // world rank
	Op   string        // "send" or "recv"
	Peer int           // world rank of the peer the op is waiting on
	Tag  int           // message tag the op is waiting on
	For  time.Duration // how long the rank has been blocked
}

// DeadlockError reports a stalled world: every live rank was blocked in a
// substrate operation past the watchdog deadline. Its message dumps the
// full blocked-rank table for diagnosis.
type DeadlockError struct {
	Deadline time.Duration
	Blocked  []BlockedOp
}

func (e *DeadlockError) Error() string {
	var b strings.Builder
	fmt.Fprintf(&b, "mpi: world stalled past the %v watchdog deadline; blocked ranks:", e.Deadline)
	for _, op := range e.Blocked {
		fmt.Fprintf(&b, "\n  rank %d blocked in %s(peer=%d, tag=%d) for %v",
			op.Rank, op.Op, op.Peer, op.Tag, op.For.Round(time.Millisecond))
	}
	return b.String()
}

// errAborted marks ranks that were cut loose by the watchdog; it is
// translated into the world-level DeadlockError by RunWith.
var errAborted = errors.New("mpi: rank aborted after watchdog deadline")

// crashSignal and abortSignal unwind a rank goroutine via panic; the
// runner's recover translates them into errors.
type crashSignal struct{ rank, step int }
type abortSignal struct{}

// rankState is the watchdog's view of one rank.
type rankState struct {
	mu      sync.Mutex
	blocked bool
	done    bool
	op      string
	peer    int
	tag     int
	since   time.Time
}

// world is the shared state of one Run invocation: traffic counters, the
// fault plan, watchdog bookkeeping, and the abort broadcast channel.
type world struct {
	n     int
	stats *Stats
	opt   Options
	track bool // record blocked states and stalls (watchdog or OnEvent on)

	abort     chan struct{}
	abortOnce sync.Once
	deadlock  atomic.Pointer[DeadlockError]
	stopc     chan struct{}
	progress  atomic.Int64

	states   []rankState
	colDepth []int32      // per-world-rank collective nesting (own goroutine only)
	steps    []int        // per-world-rank substrate op count (own goroutine only)
	frand    []*rand.Rand // per-world-rank fault rng (own goroutine only)
	delayOn  []bool       // per-world-rank delay injection switch
	flushers [][]func()   // per-world-rank held-message flushers (own goroutine only)
}

func newWorld(n int, opt Options) *world {
	w := &world{
		n:        n,
		stats:    &Stats{},
		opt:      opt,
		track:    opt.Watchdog > 0 || opt.OnEvent != nil,
		abort:    make(chan struct{}),
		stopc:    make(chan struct{}),
		states:   make([]rankState, n),
		colDepth: make([]int32, n),
		flushers: make([][]func(), n),
	}
	if f := opt.Fault; f != nil {
		w.steps = make([]int, n)
		w.frand = make([]*rand.Rand, n)
		w.delayOn = make([]bool, n)
		for r := 0; r < n; r++ {
			w.frand[r] = rand.New(rand.NewSource(f.Seed*1000003 + int64(r)*7919 + 1))
		}
		if f.DelayRanks == nil {
			for r := range w.delayOn {
				w.delayOn[r] = true
			}
		} else {
			for _, r := range f.DelayRanks {
				if r >= 0 && r < n {
					w.delayOn[r] = true
				}
			}
		}
	}
	return w
}

func (w *world) reorder() bool { return w.opt.Fault != nil && w.opt.Fault.Reorder }

// enterBlocked flags rank as blocked inside op; the returned func clears
// the flag, bumps the progress counter and reports the stall. Stall time
// feeds Stats.MaxStall unconditionally — only the watchdog's blocked-state
// bookkeeping is skipped for untracked worlds.
func (w *world) enterBlocked(rank int, op string, peer, tag int) func() time.Duration {
	start := time.Now()
	if !w.track {
		return func() time.Duration {
			stall := time.Since(start)
			w.noteStall(stall)
			return stall
		}
	}
	s := &w.states[rank]
	s.mu.Lock()
	s.blocked, s.op, s.peer, s.tag, s.since = true, op, peer, tag, start
	s.mu.Unlock()
	return func() time.Duration {
		s.mu.Lock()
		s.blocked = false
		s.mu.Unlock()
		w.progress.Add(1)
		stall := time.Since(start)
		w.noteStall(stall)
		return stall
	}
}

func (w *world) noteStall(d time.Duration) {
	ns := int64(d)
	for {
		cur := w.stats.MaxStall.Load()
		if ns <= cur || w.stats.MaxStall.CompareAndSwap(cur, ns) {
			return
		}
	}
}

// finish marks a rank as no longer participating (returned or crashed).
func (w *world) finish(rank int) {
	s := &w.states[rank]
	s.mu.Lock()
	s.done = true
	s.blocked = false
	s.mu.Unlock()
	w.progress.Add(1)
}

// flushRank delivers any held (reorder-injected) messages of the rank's
// communicators so peers are never starved by a hold.
func (w *world) flushRank(rank int) {
	for _, f := range w.flushers[rank] {
		f()
	}
}

func (w *world) abortWith(dl *DeadlockError) {
	w.abortOnce.Do(func() {
		w.deadlock.Store(dl)
		close(w.abort)
	})
}

// watchdog aborts the world once it stalls: the stall condition must hold
// on two consecutive ticks with no progress in between, which closes the
// race against a message delivered exactly at the deadline crossing.
func (w *world) watchdog() {
	period := w.opt.Watchdog / 8
	if period < time.Millisecond {
		period = time.Millisecond
	}
	t := time.NewTicker(period)
	defer t.Stop()
	armed := false
	var lastProgress int64
	for {
		select {
		case <-w.stopc:
			return
		case <-t.C:
			dl := w.stallSnapshot()
			progress := w.progress.Load()
			if dl != nil && armed && progress == lastProgress {
				w.abortWith(dl)
				return
			}
			armed = dl != nil
			lastProgress = progress
		}
	}
}

// stallSnapshot returns a DeadlockError iff every unfinished rank has been
// blocked in a substrate operation for at least the deadline — i.e. the
// world cannot make progress. Ranks busy computing keep the world alive,
// so long local phases never trip the watchdog.
func (w *world) stallSnapshot() *DeadlockError {
	now := time.Now()
	var blocked []BlockedOp
	for r := range w.states {
		s := &w.states[r]
		s.mu.Lock()
		done, isBlocked := s.done, s.blocked
		op, peer, tag, since := s.op, s.peer, s.tag, s.since
		s.mu.Unlock()
		if done {
			continue
		}
		if !isBlocked || now.Sub(since) < w.opt.Watchdog {
			return nil
		}
		blocked = append(blocked, BlockedOp{Rank: r, Op: op, Peer: peer, Tag: tag, For: now.Sub(since)})
	}
	if len(blocked) == 0 {
		return nil
	}
	return &DeadlockError{Deadline: w.opt.Watchdog, Blocked: blocked}
}

// faultStep counts one substrate operation and fires a planned crash.
func (c *Comm) faultStep() {
	f := c.w.opt.Fault
	if f == nil {
		return
	}
	wr := c.worldRank(c.rank)
	c.w.steps[wr]++
	if at, ok := f.Crash[wr]; ok && c.w.steps[wr] == at {
		panic(crashSignal{rank: wr, step: at})
	}
}

// faultDelay sleeps the seeded per-message delay, if one is planned.
func (c *Comm) faultDelay() {
	f := c.w.opt.Fault
	if f == nil || f.MaxDelay <= 0 {
		return
	}
	wr := c.worldRank(c.rank)
	if !c.w.delayOn[wr] {
		return
	}
	if d := time.Duration(c.w.frand[wr].Int63n(int64(f.MaxDelay))); d > 0 {
		time.Sleep(d)
	}
}

// collective notes entry into a named collective for Stats and OnEvent;
// nested collective calls (the Gather inside Allgather, say) are not
// double counted. The returned func must be deferred.
func (c *Comm) collective(name string) func() {
	w := c.w
	wr := c.worldRank(c.rank)
	w.colDepth[wr]++
	if w.colDepth[wr] > 1 {
		return func() { w.colDepth[wr]-- }
	}
	w.stats.Collectives.Add(1)
	obsCollectiveOps.With(name).Inc()
	if w.opt.OnEvent == nil {
		return func() { w.colDepth[wr]-- }
	}
	start := time.Now()
	return func() {
		w.colDepth[wr]--
		w.opt.OnEvent(Event{Rank: wr, Op: name, Peer: -1, Stall: time.Since(start)})
	}
}
