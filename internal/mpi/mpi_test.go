package mpi

import (
	"errors"
	"fmt"
	"math/rand"
	"sync/atomic"
	"testing"
	"testing/quick"
	"time"
)

// runChecked guards against substrate deadlocks via the built-in watchdog:
// a stall turns into a DeadlockError naming the blocked ranks instead of a
// bare test timeout.
func runChecked(t *testing.T, n int, fn func(c *Comm) error) {
	t.Helper()
	if _, err := RunWith(n, Options{Watchdog: 10 * time.Second}, fn); err != nil {
		t.Fatal(err)
	}
}

func TestRunBasics(t *testing.T) {
	var count atomic.Int64
	runChecked(t, 8, func(c *Comm) error {
		if c.Size() != 8 {
			return fmt.Errorf("size %d", c.Size())
		}
		count.Add(int64(c.Rank()))
		return nil
	})
	if count.Load() != 28 {
		t.Fatalf("ranks did not all run: sum %d", count.Load())
	}
}

func TestRunPropagatesError(t *testing.T) {
	sentinel := errors.New("rank failure")
	err := Run(4, func(c *Comm) error {
		if c.Rank() == 2 {
			return sentinel
		}
		return nil
	})
	if !errors.Is(err, sentinel) {
		t.Fatalf("got %v, want sentinel", err)
	}
}

func TestRunRejectsBadSize(t *testing.T) {
	if err := Run(0, func(c *Comm) error { return nil }); err == nil {
		t.Fatal("expected error for world size 0")
	}
}

func TestSendRecvOrdering(t *testing.T) {
	runChecked(t, 2, func(c *Comm) error {
		if c.Rank() == 0 {
			for i := 0; i < 100; i++ {
				c.Send(1, 7, []int32{int32(i)})
			}
		} else {
			for i := 0; i < 100; i++ {
				got := c.Recv(0, 7).([]int32)
				if got[0] != int32(i) {
					return fmt.Errorf("message %d arrived out of order: %d", i, got[0])
				}
			}
		}
		return nil
	})
}

func TestBarrier(t *testing.T) {
	var phase atomic.Int64
	runChecked(t, 8, func(c *Comm) error {
		phase.Add(1)
		c.Barrier()
		if phase.Load() != 8 {
			return fmt.Errorf("barrier released early: %d", phase.Load())
		}
		return nil
	})
}

func TestBcast(t *testing.T) {
	runChecked(t, 6, func(c *Comm) error {
		v := 0
		if c.Rank() == 2 {
			v = 99
		}
		got := Bcast(c, 2, v)
		if got != 99 {
			return fmt.Errorf("rank %d got %d", c.Rank(), got)
		}
		return nil
	})
}

func TestGatherAllgather(t *testing.T) {
	runChecked(t, 5, func(c *Comm) error {
		got := Gather(c, 0, c.Rank()*10)
		if c.Rank() == 0 {
			for r := 0; r < 5; r++ {
				if got[r] != r*10 {
					return fmt.Errorf("gather[%d] = %d", r, got[r])
				}
			}
		} else if got != nil {
			return fmt.Errorf("non-root got non-nil gather")
		}
		all := Allgather(c, c.Rank()+1)
		for r := 0; r < 5; r++ {
			if all[r] != r+1 {
				return fmt.Errorf("allgather[%d] = %d", r, all[r])
			}
		}
		return nil
	})
}

func TestAllgatherSlice(t *testing.T) {
	runChecked(t, 4, func(c *Comm) error {
		mine := make([]int32, c.Rank()) // rank r contributes r elements
		for i := range mine {
			mine[i] = int32(c.Rank())
		}
		concat, counts := AllgatherSlice(c, mine)
		if len(concat) != 0+1+2+3 {
			return fmt.Errorf("concat length %d", len(concat))
		}
		idx := 0
		for r := 0; r < 4; r++ {
			if counts[r] != r {
				return fmt.Errorf("counts[%d] = %d", r, counts[r])
			}
			for j := 0; j < counts[r]; j++ {
				if concat[idx] != int32(r) {
					return fmt.Errorf("concat[%d] = %d, want %d", idx, concat[idx], r)
				}
				idx++
			}
		}
		return nil
	})
}

func TestAllreduce(t *testing.T) {
	runChecked(t, 7, func(c *Comm) error {
		sum := Allreduce(c, int64(c.Rank()), SumInt64)
		if sum != 21 {
			return fmt.Errorf("sum = %d", sum)
		}
		max := Allreduce(c, int64(c.Rank()), MaxInt64)
		if max != 6 {
			return fmt.Errorf("max = %d", max)
		}
		min := Allreduce(c, int64(c.Rank()+3), MinInt64)
		if min != 3 {
			return fmt.Errorf("min = %d", min)
		}
		return nil
	})
}

func TestAllreduceSlice(t *testing.T) {
	runChecked(t, 4, func(c *Comm) error {
		v := []int64{int64(c.Rank()), 1, int64(c.Rank() * c.Rank())}
		got := AllreduceSlice(c, v, SumInt64)
		want := []int64{6, 4, 14}
		for i := range want {
			if got[i] != want[i] {
				return fmt.Errorf("got %v, want %v", got, want)
			}
		}
		return nil
	})
}

func TestExclusiveScan(t *testing.T) {
	runChecked(t, 5, func(c *Comm) error {
		got := ExclusiveScan(c, int64(c.Rank()+1), SumInt64)
		// rank r gets sum of (1..r)
		want := int64(c.Rank() * (c.Rank() + 1) / 2)
		if got != want {
			return fmt.Errorf("rank %d: scan = %d, want %d", c.Rank(), got, want)
		}
		return nil
	})
}

func TestAlltoall(t *testing.T) {
	runChecked(t, 4, func(c *Comm) error {
		send := make([]int, 4)
		for r := range send {
			send[r] = c.Rank()*100 + r
		}
		got := Alltoall(c, send)
		for r := range got {
			want := r*100 + c.Rank()
			if got[r] != want {
				return fmt.Errorf("rank %d: from %d got %d, want %d", c.Rank(), r, got[r], want)
			}
		}
		return nil
	})
}

func TestAllreduceMinLoc(t *testing.T) {
	runChecked(t, 6, func(c *Comm) error {
		// rank 3 has the smallest key; tie at rank 5 resolved to 3 by rank.
		key := int64(10)
		if c.Rank() == 3 || c.Rank() == 5 {
			key = 1
		}
		got := AllreduceMinLoc(c, key)
		if got.Rank != 3 || got.Key != 1 {
			return fmt.Errorf("minloc = %+v", got)
		}
		return nil
	})
}

func TestSplit(t *testing.T) {
	runChecked(t, 8, func(c *Comm) error {
		color := c.Rank() % 2
		sub := c.Split(color, c.Rank())
		if sub.Size() != 4 {
			return fmt.Errorf("sub size %d", sub.Size())
		}
		// world rank = 2*subRank + color under this split
		if wantRank := c.Rank() / 2; sub.Rank() != wantRank {
			return fmt.Errorf("sub rank %d, want %d", sub.Rank(), wantRank)
		}
		// collective inside the subcommunicator
		sum := Allreduce(sub, int64(c.Rank()), SumInt64)
		want := int64(0 + 2 + 4 + 6)
		if color == 1 {
			want = 1 + 3 + 5 + 7
		}
		if sum != want {
			return fmt.Errorf("sub sum = %d, want %d", sum, want)
		}
		return nil
	})
}

func TestSplitUndefined(t *testing.T) {
	runChecked(t, 4, func(c *Comm) error {
		color := 0
		if c.Rank() == 3 {
			color = -1 // opt out
		}
		sub := c.Split(color, 0)
		if c.Rank() == 3 {
			if sub != nil {
				return fmt.Errorf("opted-out rank got a communicator")
			}
			return nil
		}
		if sub.Size() != 3 {
			return fmt.Errorf("sub size %d, want 3", sub.Size())
		}
		return nil
	})
}

func TestStatsAccounted(t *testing.T) {
	stats, err := RunStats(2, func(c *Comm) error {
		if c.Rank() == 0 {
			c.Send(1, 1, []int64{1, 2, 3})
		} else {
			c.Recv(0, 1)
		}
		return nil
	})
	if err != nil {
		t.Fatal(err)
	}
	if stats.Messages.Load() != 1 {
		t.Fatalf("messages = %d", stats.Messages.Load())
	}
	if stats.Bytes.Load() != 24 {
		t.Fatalf("bytes = %d", stats.Bytes.Load())
	}
}

func TestTagMismatchPanics(t *testing.T) {
	err := Run(2, func(c *Comm) error {
		defer func() { recover() }()
		if c.Rank() == 0 {
			c.Send(1, 1, nil)
		} else {
			defer func() {
				if recover() == nil {
					panic("expected tag mismatch panic")
				}
			}()
			c.Recv(0, 2)
		}
		return nil
	})
	if err != nil {
		t.Fatal(err)
	}
}

// Property: Allreduce sum equals the serial fold for arbitrary per-rank
// values and world sizes.
func TestQuickAllreduceEqualsSerial(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		n := 1 + rng.Intn(12)
		vals := make([]int64, n)
		var want int64
		for i := range vals {
			vals[i] = int64(rng.Intn(1000) - 500)
			want += vals[i]
		}
		ok := true
		err := Run(n, func(c *Comm) error {
			if got := Allreduce(c, vals[c.Rank()], SumInt64); got != want {
				ok = false
			}
			return nil
		})
		return err == nil && ok
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 30}); err != nil {
		t.Fatal(err)
	}
}
