package mpi

import (
	"testing"
	"time"
)

// Regression: MaxStall used to be recorded only when the world ran with a
// watchdog or OnEvent hook (RunWith); a plain RunStats caller always read
// 0. Stall time must be recorded unconditionally.
func TestMaxStallRecordedWithoutWatchdog(t *testing.T) {
	const nap = 20 * time.Millisecond
	stats, err := RunStats(2, func(c *Comm) error {
		if c.Rank() == 0 {
			c.Recv(1, 7) // blocks until rank 1 wakes up
		} else {
			time.Sleep(nap)
			c.Send(0, 7, int32(1))
		}
		return nil
	})
	if err != nil {
		t.Fatal(err)
	}
	if got := stats.MaxStallDuration(); got < nap/2 {
		t.Fatalf("MaxStall = %v under plain RunStats, want >= %v (blocked recv must be recorded without a watchdog)", got, nap/2)
	}
}

// Options.ChanCap bounds the per-pair send buffer, and sends that hit the
// bound count in Stats.BlockedSends.
func TestChanCapOptionAndBlockedSends(t *testing.T) {
	const msgs = 8
	stats, err := RunWith(2, Options{ChanCap: 1}, func(c *Comm) error {
		if c.Rank() == 0 {
			// Outrun the receiver: with capacity 1, at least one of these
			// sends must block until rank 1 drains.
			for i := 0; i < msgs; i++ {
				c.Send(1, 3, int32(i))
			}
		} else {
			time.Sleep(10 * time.Millisecond)
			for i := 0; i < msgs; i++ {
				if got := c.Recv(0, 3).(int32); got != int32(i) {
					t.Errorf("recv %d: got %d", i, got)
				}
			}
		}
		return nil
	})
	if err != nil {
		t.Fatal(err)
	}
	if got := stats.BlockedSends.Load(); got < 1 {
		t.Fatalf("BlockedSends = %d with ChanCap 1 and a slow receiver, want >= 1", got)
	}
	if got := stats.MaxStallDuration(); got <= 0 {
		t.Fatalf("MaxStall = %v after blocked sends, want > 0", got)
	}
}

// The default capacity keeps small bursts unblocked.
func TestDefaultChanCapUnchanged(t *testing.T) {
	stats, err := RunStats(2, func(c *Comm) error {
		if c.Rank() == 0 {
			for i := 0; i < 100; i++ {
				c.Send(1, 1, int32(i))
			}
		} else {
			time.Sleep(5 * time.Millisecond)
			for i := 0; i < 100; i++ {
				c.Recv(0, 1)
			}
		}
		return nil
	})
	if err != nil {
		t.Fatal(err)
	}
	if got := stats.BlockedSends.Load(); got != 0 {
		t.Fatalf("BlockedSends = %d for a 100-message burst under the default capacity, want 0", got)
	}
}
