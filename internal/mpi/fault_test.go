package mpi

import (
	"errors"
	"fmt"
	"math/rand"
	"sync"
	"testing"
	"testing/quick"
	"time"
)

func TestWatchdogReportsDeadlock(t *testing.T) {
	// Two ranks each receive from the other without anyone sending: a
	// textbook deadlock. The watchdog must name both blocked ranks.
	start := time.Now()
	_, err := RunWith(2, Options{Watchdog: 150 * time.Millisecond}, func(c *Comm) error {
		c.Recv(1-c.Rank(), 42)
		return nil
	})
	if err == nil {
		t.Fatal("expected a DeadlockError, got nil")
	}
	var dl *DeadlockError
	if !errors.As(err, &dl) {
		t.Fatalf("expected DeadlockError, got %T: %v", err, err)
	}
	if dl.Deadline != 150*time.Millisecond {
		t.Fatalf("deadline = %v", dl.Deadline)
	}
	if len(dl.Blocked) != 2 {
		t.Fatalf("blocked ranks = %+v, want both", dl.Blocked)
	}
	for _, op := range dl.Blocked {
		if op.Op != "recv" || op.Tag != 42 || op.Peer != 1-op.Rank {
			t.Fatalf("blocked op %+v, want recv(peer=%d, tag=42)", op, 1-op.Rank)
		}
		if op.For < 150*time.Millisecond {
			t.Fatalf("blocked for %v, below the deadline", op.For)
		}
	}
	if elapsed := time.Since(start); elapsed > 5*time.Second {
		t.Fatalf("watchdog took %v to fire on a 150ms deadline", elapsed)
	}
}

func TestWatchdogIgnoresBusyRanks(t *testing.T) {
	// One rank computes (sleeps) well past the deadline while its peer
	// waits in Recv; the watchdog must not fire, because the busy rank can
	// still unblock the world — exactly what happens here.
	_, err := RunWith(2, Options{Watchdog: 50 * time.Millisecond}, func(c *Comm) error {
		if c.Rank() == 0 {
			time.Sleep(300 * time.Millisecond) // "compute"
			c.Send(1, 1, int64(7))
		} else {
			if got := c.Recv(0, 1).(int64); got != 7 {
				return fmt.Errorf("got %d", got)
			}
		}
		return nil
	})
	if err != nil {
		t.Fatalf("watchdog fired on a live world: %v", err)
	}
}

func TestCrashPropagates(t *testing.T) {
	// Rank 2 dies at its 7th substrate operation (mid-barrier-round); the
	// world must surface both the crash and the resulting stall as a clean
	// error well within the deadline, never a hang.
	start := time.Now()
	_, err := RunWith(4, Options{
		Watchdog: 200 * time.Millisecond,
		Fault:    &FaultPlan{Crash: map[int]int{2: 7}},
	}, func(c *Comm) error {
		for i := 0; i < 100; i++ {
			c.Barrier()
		}
		return nil
	})
	if err == nil {
		t.Fatal("expected crash to surface as an error")
	}
	var crash *CrashError
	if !errors.As(err, &crash) {
		t.Fatalf("expected CrashError in %v", err)
	}
	if crash.Rank != 2 || crash.Step != 7 {
		t.Fatalf("crash = %+v", crash)
	}
	var dl *DeadlockError
	if !errors.As(err, &dl) {
		t.Fatalf("expected the stalled peers to be reported as a DeadlockError in %v", err)
	}
	if elapsed := time.Since(start); elapsed > 10*time.Second {
		t.Fatalf("crash handling took %v", elapsed)
	}
}

func TestCrashArmsDefaultWatchdog(t *testing.T) {
	opt := Options{Fault: &FaultPlan{Crash: map[int]int{0: 1}}}.normalized()
	if opt.Watchdog != DefaultWatchdog {
		t.Fatalf("watchdog = %v, want %v", opt.Watchdog, DefaultWatchdog)
	}
}

// chaosPlans is a spread of distinct injected schedules used by the
// determinism tests here and mirrored by the chaos tests in phg/pgp/harness.
func chaosPlans() []*FaultPlan {
	return []*FaultPlan{
		{Seed: 1, MaxDelay: 200 * time.Microsecond},
		{Seed: 2, Reorder: true},
		{Seed: 3, MaxDelay: 100 * time.Microsecond, Reorder: true, DelayRanks: []int{0, 2}},
	}
}

// Property: every collective matches its serial reference under injected
// delay + reordering, for arbitrary world sizes and inputs.
func TestQuickCollectivesMatchSerialUnderFault(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		n := 1 + rng.Intn(6)
		vals := make([]int64, n)
		var sum int64
		maxv := int64(-1 << 62)
		for i := range vals {
			vals[i] = int64(rng.Intn(2000) - 1000)
			sum += vals[i]
			if vals[i] > maxv {
				maxv = vals[i]
			}
		}
		plan := &FaultPlan{Seed: seed, MaxDelay: 50 * time.Microsecond, Reorder: seed%2 == 0}
		ok := true
		check := func(cond bool) {
			if !cond {
				ok = false
			}
		}
		_, err := RunWith(n, Options{Fault: plan, Watchdog: 30 * time.Second}, func(c *Comm) error {
			r := c.Rank()
			check(Allreduce(c, vals[r], SumInt64) == sum)
			check(Allreduce(c, vals[r], MaxInt64) == maxv)
			all := Allgather(c, vals[r])
			for i := range all {
				check(all[i] == vals[i])
			}
			var prefix int64
			for i := 0; i < r; i++ {
				prefix += vals[i]
			}
			check(ExclusiveScan(c, vals[r], SumInt64) == prefix)
			sl := AllreduceSlice(c, []int64{vals[r], -vals[r]}, SumInt64)
			check(sl[0] == sum && sl[1] == -sum)
			return nil
		})
		if err != nil {
			t.Logf("seed %d: %v", seed, err)
			return false
		}
		if !ok {
			t.Logf("seed %d: collective mismatch (reproduce with FaultPlan{Seed: %d, ...})", seed, seed)
		}
		return ok
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 25}); err != nil {
		t.Fatal(err)
	}
}

func TestReorderedTagStreamsMatch(t *testing.T) {
	// Under Reorder the receiver does MPI-style tag matching: it can drain
	// tag 2 before tag 1 even though the sends interleaved, and within each
	// (src,tag) stream order is still FIFO.
	for _, plan := range chaosPlans() {
		plan := &FaultPlan{Seed: plan.Seed, Reorder: true, MaxDelay: plan.MaxDelay}
		_, err := RunWith(2, Options{Fault: plan, Watchdog: 10 * time.Second}, func(c *Comm) error {
			const per = 25
			if c.Rank() == 0 {
				for i := 0; i < per; i++ {
					c.Send(1, 1, int64(i))
					c.Send(1, 2, int64(100+i))
				}
				return nil
			}
			for i := 0; i < per; i++ { // drain tag 2 first
				if got := c.Recv(0, 2).(int64); got != int64(100+i) {
					return fmt.Errorf("tag 2 message %d out of order: %d", i, got)
				}
			}
			for i := 0; i < per; i++ {
				if got := c.Recv(0, 1).(int64); got != int64(i) {
					return fmt.Errorf("tag 1 message %d out of order: %d", i, got)
				}
			}
			return nil
		})
		if err != nil {
			t.Fatalf("seed %d: %v", plan.Seed, err)
		}
	}
}

func TestSplitUnderFault(t *testing.T) {
	for _, plan := range chaosPlans() {
		_, err := RunWith(6, Options{Fault: plan, Watchdog: 10 * time.Second}, func(c *Comm) error {
			sub := c.Split(c.Rank()%2, c.Rank())
			sum := Allreduce(sub, int64(c.Rank()), SumInt64)
			want := int64(0 + 2 + 4)
			if c.Rank()%2 == 1 {
				want = 1 + 3 + 5
			}
			if sum != want {
				return fmt.Errorf("rank %d: sub sum %d, want %d", c.Rank(), sum, want)
			}
			return nil
		})
		if err != nil {
			t.Fatalf("seed %d: %v", plan.Seed, err)
		}
	}
}

func TestTracingEventsAndStats(t *testing.T) {
	var mu sync.Mutex
	var collectives, p2p int
	stats, err := RunWith(4, Options{
		Watchdog: 10 * time.Second,
		OnEvent: func(e Event) {
			mu.Lock()
			defer mu.Unlock()
			if e.Peer == -1 {
				collectives++
			} else {
				p2p++
			}
		},
	}, func(c *Comm) error {
		if c.Rank() == 3 {
			time.Sleep(50 * time.Millisecond) // make the barrier stall measurable
		}
		c.Barrier()
		Allreduce(c, int64(c.Rank()), SumInt64)
		return nil
	})
	if err != nil {
		t.Fatal(err)
	}
	// One barrier + one allreduce entered by each of 4 ranks; the gathers
	// and bcasts inside Allreduce must not be double counted.
	if got := stats.Collectives.Load(); got != 8 {
		t.Fatalf("Collectives = %d, want 8", got)
	}
	mu.Lock()
	defer mu.Unlock()
	if collectives != 8 {
		t.Fatalf("collective events = %d, want 8", collectives)
	}
	if p2p == 0 {
		t.Fatal("no point-to-point events observed")
	}
	if stats.MaxStallDuration() < 20*time.Millisecond {
		t.Fatalf("MaxStall = %v, expected the barrier to stall ~50ms", stats.MaxStallDuration())
	}
}

func TestDeterministicScheduleAcrossRuns(t *testing.T) {
	// The same FaultPlan must inject the same schedule: traffic counters
	// (and thus the injected coin flips) are identical run to run.
	run := func() (int64, int64) {
		plan := &FaultPlan{Seed: 99, Reorder: true, MaxDelay: 20 * time.Microsecond}
		stats, err := RunWith(4, Options{Fault: plan, Watchdog: 10 * time.Second}, func(c *Comm) error {
			for i := 0; i < 5; i++ {
				Allreduce(c, int64(c.Rank()+i), SumInt64)
			}
			return nil
		})
		if err != nil {
			t.Fatal(err)
		}
		return stats.Messages.Load(), stats.Bytes.Load()
	}
	m1, b1 := run()
	m2, b2 := run()
	if m1 != m2 || b1 != b2 {
		t.Fatalf("schedule not reproducible: (%d,%d) vs (%d,%d)", m1, b1, m2, b2)
	}
}

func TestPayloadBytesKinds(t *testing.T) {
	// Struct shapes mirroring what phg/pgp actually ship: fixed-size bid
	// and proposal records, and a variable-size migration payload.
	type bid struct { // phg's matchBid / pgp's moveProposal shape
		A int32
		B int32
		C int64
	}
	type payload struct { // migrate's VertexPayload shape
		ID   int32
		Data []byte
	}
	type nested struct {
		P  *int64
		BS []bid
	}
	seven := int64(7)
	cases := []struct {
		name string
		data any
		want int64
	}{
		{"nil", nil, 0},
		{"int", int(5), 8},
		{"int64", int64(5), 8},
		{"int32", int32(5), 4},
		{"uint16", uint16(5), 2},
		{"bool", true, 1},
		{"float64", 3.14, 8},
		{"float32", float32(3.14), 4},
		{"string", "hello", 5},
		{"bytes", []byte("abcd"), 4},
		{"int32-slice", []int32{1, 2, 3}, 12},
		{"int64-slice", []int64{1, 2, 3}, 24},
		{"float64-slice", []float64{1, 2}, 16},
		{"nil-typed-slice", []int64(nil), 0},
		{"bool-slice", []bool{true, false, true}, 3},
		{"int-slice", []int{1, 2}, 16},
		{"minloc", MinLoc{Key: 1, Rank: 2}, 16},
		{"bid-struct", bid{}, 16},
		{"bid-slice", []bid{{}, {}, {}}, 48},
		{"bid-slice-slice", [][]bid{{{}, {}}, {{}}}, 48},
		{"payload", payload{ID: 1, Data: []byte("abcde")}, 9},
		{"payload-slice", []payload{{Data: []byte("ab")}, {Data: nil}}, 10},
		{"nil-pointer", (*int64)(nil), 0},
		{"pointer", &seven, 8},
		{"nested", nested{P: &seven, BS: []bid{{}}}, 24},
		{"array", [3]int32{1, 2, 3}, 12},
		{"map-opaque", map[int]int{1: 2}, 8},
	}
	for _, tc := range cases {
		if got := payloadBytes(tc.data); got != tc.want {
			t.Errorf("payloadBytes(%s) = %d, want %d", tc.name, got, tc.want)
		}
	}
}

func TestPayloadBytesAccountedOnWire(t *testing.T) {
	// End-to-end: struct-slice traffic lands in Stats at packed size.
	type bid struct {
		V int32
		G int32
		W int64
	}
	stats, err := RunStats(2, func(c *Comm) error {
		if c.Rank() == 0 {
			c.Send(1, 1, []bid{{1, 2, 3}, {4, 5, 6}})
		} else {
			c.Recv(0, 1)
		}
		return nil
	})
	if err != nil {
		t.Fatal(err)
	}
	if got := stats.Bytes.Load(); got != 32 {
		t.Fatalf("bytes = %d, want 32 (2 × 16-byte bids)", got)
	}
	if got := stats.Messages.Load(); got != 1 {
		t.Fatalf("messages = %d", got)
	}
}
