// Package mpi is an in-process message-passing substrate standing in for
// MPI (the paper's code "is written in C and uses MPI for communication";
// Go has no mature MPI binding, so the SPMD algorithms in this repository
// run on this substrate instead). Ranks are goroutines; a Comm carries
// point-to-point typed messages and the usual collective operations.
//
// Semantics follow MPI where it matters for the algorithms:
//
//   - Send is buffered and non-blocking up to the channel capacity;
//     messages between a pair of ranks are delivered in order.
//   - Recv(src, tag) blocks for the next message from src and verifies the
//     tag, panicking on protocol mismatches (a deliberate fail-fast stance:
//     a tag mismatch is a bug in the algorithm, not a runtime condition).
//   - Ownership of slice payloads transfers with the message: the sender
//     must not mutate a sent buffer (MPI_Send's "don't touch the buffer
//     until complete" rule, made permanent).
//
// Collectives are implemented with simple root-centralized algorithms;
// asymptotic message complexity is not the point of this substrate, but
// per-rank traffic is accounted (Stats) so experiments can report
// communication volume of the partitioner itself.
package mpi

import (
	"fmt"
	"sync"
	"sync/atomic"
)

// Stats accumulates substrate traffic, shared by all Comms of a World.
type Stats struct {
	Messages atomic.Int64
	Bytes    atomic.Int64
}

type message struct {
	tag  int
	data any
}

// Comm is a communicator over a group of ranks. All collective methods
// must be called by every rank of the communicator.
type Comm struct {
	rank  int
	size  int
	chans [][]chan message // chans[src][dst]
	stats *Stats
}

// Rank returns the caller's rank within the communicator.
func (c *Comm) Rank() int { return c.rank }

// Size returns the number of ranks in the communicator.
func (c *Comm) Size() int { return c.size }

// Stats returns the world-level traffic counters.
func (c *Comm) Stats() *Stats { return c.stats }

const chanCap = 1024

// Run launches an n-rank SPMD world and waits for all ranks to finish.
// Each rank runs fn with its own Comm. The first non-nil error is
// returned. Panics in ranks propagate.
func Run(n int, fn func(c *Comm) error) error {
	_, err := RunStats(n, fn)
	return err
}

// RunStats is Run, also returning the world's traffic counters.
func RunStats(n int, fn func(c *Comm) error) (*Stats, error) {
	if n < 1 {
		return nil, fmt.Errorf("mpi: world size must be >= 1, got %d", n)
	}
	stats := &Stats{}
	chans := newChanMatrix(n)
	errs := make([]error, n)
	var wg sync.WaitGroup
	for r := 0; r < n; r++ {
		wg.Add(1)
		go func(rank int) {
			defer wg.Done()
			c := &Comm{rank: rank, size: n, chans: chans, stats: stats}
			errs[rank] = fn(c)
		}(r)
	}
	wg.Wait()
	for _, err := range errs {
		if err != nil {
			return stats, err
		}
	}
	return stats, nil
}

func newChanMatrix(n int) [][]chan message {
	chans := make([][]chan message, n)
	for i := range chans {
		chans[i] = make([]chan message, n)
		for j := range chans[i] {
			chans[i][j] = make(chan message, chanCap)
		}
	}
	return chans
}

// Send delivers data to dst with the given tag. Ownership of slice
// payloads transfers to the receiver.
func (c *Comm) Send(dst, tag int, data any) {
	if dst < 0 || dst >= c.size {
		panic(fmt.Sprintf("mpi: send to rank %d, world size %d", dst, c.size))
	}
	c.stats.Messages.Add(1)
	c.stats.Bytes.Add(payloadBytes(data))
	c.chans[c.rank][dst] <- message{tag: tag, data: data}
}

// Recv blocks for the next message from src and returns its payload,
// panicking if the tag differs (protocol error).
func (c *Comm) Recv(src, tag int) any {
	if src < 0 || src >= c.size {
		panic(fmt.Sprintf("mpi: recv from rank %d, world size %d", src, c.size))
	}
	m := <-c.chans[src][c.rank]
	if m.tag != tag {
		panic(fmt.Sprintf("mpi: rank %d expected tag %d from %d, got %d", c.rank, tag, src, m.tag))
	}
	return m.data
}

// payloadBytes approximates the wire size of common payload types.
func payloadBytes(data any) int64 {
	switch v := data.(type) {
	case nil:
		return 0
	case []int32:
		return int64(4 * len(v))
	case []int64:
		return int64(8 * len(v))
	case []float64:
		return int64(8 * len(v))
	case []byte:
		return int64(len(v))
	case int, int64, float64:
		return 8
	case int32, float32:
		return 4
	case bool:
		return 1
	default:
		return 8 // opaque scalar assumption
	}
}

// Split partitions the communicator into disjoint sub-communicators by
// color (ranks passing the same color share a new Comm; ranks are ordered
// by key, ties by old rank). Every rank of c must call Split. A negative
// color returns nil (the rank does not participate; mirrors
// MPI_UNDEFINED).
func (c *Comm) Split(color, key int) *Comm {
	type entry struct{ color, key, rank int }
	all := AllgatherAny(c, entry{color, key, c.rank}).([]entry)
	if color < 0 {
		return nil
	}
	var members []entry
	for _, e := range all {
		if e.color == color {
			members = append(members, e)
		}
	}
	// order by (key, rank)
	for i := 1; i < len(members); i++ {
		for j := i; j > 0 && (members[j].key < members[j-1].key ||
			(members[j].key == members[j-1].key && members[j].rank < members[j-1].rank)); j-- {
			members[j], members[j-1] = members[j-1], members[j]
		}
	}
	newRank := -1
	for i, e := range members {
		if e.rank == c.rank {
			newRank = i
		}
	}
	// The split communicator gets fresh channels. Build them cooperatively:
	// the lowest old rank of each color allocates and distributes.
	sub := &Comm{rank: newRank, size: len(members), stats: c.stats}
	if newRank == 0 {
		sub.chans = newChanMatrix(len(members))
		for i := 1; i < len(members); i++ {
			c.Send(members[i].rank, tagSplit, sub.chans)
		}
	} else {
		sub.chans = c.Recv(members[0].rank, tagSplit).([][]chan message)
	}
	return sub
}

// Internal collective tags (user tags are free-form; collisions avoided by
// the strict matched-order discipline).
const (
	tagSplit = -1000 - iota
	tagBarrier
	tagGather
	tagBcast
	tagAllgatherAny
)

// Barrier blocks until every rank of c has entered it.
func (c *Comm) Barrier() {
	if c.size == 1 {
		return
	}
	if c.rank == 0 {
		for r := 1; r < c.size; r++ {
			c.Recv(r, tagBarrier)
		}
		for r := 1; r < c.size; r++ {
			c.Send(r, tagBarrier, nil)
		}
	} else {
		c.Send(0, tagBarrier, nil)
		c.Recv(0, tagBarrier)
	}
}

// AllgatherAny gathers one opaque value per rank, in rank order, to every
// rank. The return value is a slice of the element's dynamic type (e.g.
// []entry), produced with a small reflection-free trick: rank 0 assembles
// a []any and each rank converts; to keep call sites typed, prefer the
// generic Allgather for concrete element types. This variant exists for
// internal structural payloads.
func AllgatherAny[T any](c *Comm, v T) any {
	out := make([]T, c.size)
	if c.rank == 0 {
		out[0] = v
		for r := 1; r < c.size; r++ {
			out[r] = c.Recv(r, tagAllgatherAny).(T)
		}
		for r := 1; r < c.size; r++ {
			c.Send(r, tagAllgatherAny, append([]T(nil), out...))
		}
	} else {
		c.Send(0, tagAllgatherAny, v)
		out = c.Recv(0, tagAllgatherAny).([]T)
	}
	return out
}
