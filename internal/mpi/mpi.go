// Package mpi is an in-process message-passing substrate standing in for
// MPI (the paper's code "is written in C and uses MPI for communication";
// Go has no mature MPI binding, so the SPMD algorithms in this repository
// run on this substrate instead). Ranks are goroutines; a Comm carries
// point-to-point typed messages and the usual collective operations.
//
// Semantics follow MPI where it matters for the algorithms:
//
//   - Send is buffered and non-blocking up to the channel capacity;
//     messages between a pair of ranks are delivered in order.
//   - Recv(src, tag) blocks for the next message from src and verifies the
//     tag, panicking on protocol mismatches (a deliberate fail-fast stance:
//     a tag mismatch is a bug in the algorithm, not a runtime condition).
//     Under reorder injection (FaultPlan.Reorder) matching switches to
//     MPI-style per-tag matching instead.
//   - Ownership of slice payloads transfers with the message: the sender
//     must not mutate a sent buffer (MPI_Send's "don't touch the buffer
//     until complete" rule, made permanent).
//
// Collectives are implemented with simple root-centralized algorithms;
// asymptotic message complexity is not the point of this substrate, but
// per-rank traffic is accounted (Stats) so experiments can report
// communication volume of the partitioner itself.
//
// RunWith adds a fault-injection and diagnostics layer (see fault.go):
// seeded message delays and reordering, rank crashes, a deadlock watchdog
// that replaces ad-hoc test timeouts with a structured DeadlockError, and
// per-operation tracing.
package mpi

import (
	"errors"
	"fmt"
	"reflect"
	"sync"
	"sync/atomic"
	"time"
)

// Stats accumulates substrate traffic, shared by all Comms of a World.
type Stats struct {
	Messages atomic.Int64
	Bytes    atomic.Int64
	// Collectives counts top-level collective operations entered, summed
	// over ranks (a Barrier on an 8-rank world adds 8). Collectives
	// implemented in terms of other collectives count once.
	Collectives atomic.Int64
	// MaxStall is the longest time, in nanoseconds, any rank spent blocked
	// inside a single substrate operation. Recorded unconditionally, so
	// plain Run/RunStats callers get honest stall numbers too.
	MaxStall atomic.Int64
	// BlockedSends counts sends that could not complete immediately —
	// in-process: the destination channel was full (capacity Options.ChanCap);
	// over a Transport: the flow-control window was exhausted. A nonzero
	// count means receivers are falling behind the senders.
	BlockedSends atomic.Int64
}

// MaxStallDuration returns the max-stall gauge as a time.Duration.
func (s *Stats) MaxStallDuration() time.Duration { return time.Duration(s.MaxStall.Load()) }

type message struct {
	tag  int
	data any
}

// Comm is a communicator over a group of ranks. All collective methods
// must be called by every rank of the communicator.
type Comm struct {
	rank    int
	size    int
	chans   [][]chan message // chans[src][dst]
	w       *world
	worldOf []int // comm rank -> world rank (nil means identity)

	// Transport-backed worlds (RunTransportRank) route point-to-point
	// traffic through tr instead of chans; commID names this communicator
	// on the wire (0 = world) and splitSeq numbers Split calls so derived
	// communicator ids agree across ranks without a round trip.
	tr       Transport
	commID   uint64
	splitSeq int

	// Reorder-injection state (nil unless FaultPlan.Reorder):
	pending [][]message // received-but-unmatched messages, per source
	held    []*message  // sender-side held message, per destination
}

// Rank returns the caller's rank within the communicator.
func (c *Comm) Rank() int { return c.rank }

// Size returns the number of ranks in the communicator.
func (c *Comm) Size() int { return c.size }

// Stats returns the world-level traffic counters.
func (c *Comm) Stats() *Stats { return c.w.stats }

// worldRank translates a comm-local rank to its world rank.
func (c *Comm) worldRank(r int) int {
	if c.worldOf == nil {
		return r
	}
	return c.worldOf[r]
}

// DefaultChanCap is the default per-pair send buffer capacity (messages),
// used when Options.ChanCap is zero. A network transport should mirror the
// effective value as its flow-control window so backpressure behaves the
// same on both substrates.
const DefaultChanCap = 1024

// newComm wires a communicator of the given world. Each Comm instance
// belongs to exactly one rank goroutine, so its reorder buffers need no
// locking.
func newComm(w *world, chans [][]chan message, rank, size int, worldOf []int) *Comm {
	c := &Comm{rank: rank, size: size, chans: chans, w: w, worldOf: worldOf}
	if w.reorder() {
		c.pending = make([][]message, size)
		c.held = make([]*message, size)
		wr := c.worldRank(rank)
		w.flushers[wr] = append(w.flushers[wr], c.flushHeld)
	}
	return c
}

// Run launches an n-rank SPMD world and waits for all ranks to finish.
// Each rank runs fn with its own Comm. The first non-nil error is
// returned. Panics in ranks propagate.
func Run(n int, fn func(c *Comm) error) error {
	_, err := RunWith(n, Options{}, fn)
	return err
}

// RunStats is Run, also returning the world's traffic counters.
func RunStats(n int, fn func(c *Comm) error) (*Stats, error) {
	return RunWith(n, Options{}, fn)
}

// RunWith is Run with fault injection, watchdog diagnostics and tracing
// (see Options). On a watchdog abort the returned error is (or wraps, when
// a crash fault triggered the stall) a *DeadlockError; injected crashes
// surface as *CrashError. Stats are returned even on error.
func RunWith(n int, opt Options, fn func(c *Comm) error) (*Stats, error) {
	if n < 1 {
		return nil, fmt.Errorf("mpi: world size must be >= 1, got %d", n)
	}
	opt = opt.normalized()
	w := newWorld(n, opt)
	chans := newChanMatrix(n, opt.ChanCap)
	errs := make([]error, n)
	var wg sync.WaitGroup
	for r := 0; r < n; r++ {
		wg.Add(1)
		go func(rank int) {
			defer wg.Done()
			defer func() {
				w.finish(rank)
				switch v := recover().(type) {
				case nil:
				case crashSignal:
					errs[rank] = &CrashError{Rank: v.rank, Step: v.step}
				case abortSignal:
					errs[rank] = errAborted
				default:
					panic(v)
				}
			}()
			c := newComm(w, chans, rank, n, nil)
			errs[rank] = fn(c)
			w.flushRank(rank)
		}(r)
	}
	if opt.Watchdog > 0 {
		go w.watchdog()
	}
	wg.Wait()
	close(w.stopc)
	var first error
	var crashes int64
	for _, err := range errs {
		var ce *CrashError
		if errors.As(err, &ce) {
			crashes++
		}
		if err != nil && first == nil && !errors.Is(err, errAborted) {
			first = err
		}
	}
	bridgeStats(w.stats, w.deadlock.Load() != nil, crashes)
	if dl := w.deadlock.Load(); dl != nil {
		if first == nil {
			return w.stats, dl
		}
		return w.stats, errors.Join(first, dl)
	}
	return w.stats, first
}

func newChanMatrix(n, cap int) [][]chan message {
	if cap <= 0 {
		cap = DefaultChanCap
	}
	chans := make([][]chan message, n)
	for i := range chans {
		chans[i] = make([]chan message, n)
		for j := range chans[i] {
			chans[i][j] = make(chan message, cap)
		}
	}
	return chans
}

// Send delivers data to dst with the given tag. Ownership of slice
// payloads transfers to the receiver.
func (c *Comm) Send(dst, tag int, data any) {
	if dst < 0 || dst >= c.size {
		panic(fmt.Sprintf("mpi: send to rank %d, world size %d", dst, c.size))
	}
	c.faultStep()
	c.faultDelay()
	nb := payloadBytes(data)
	c.w.stats.Messages.Add(1)
	c.w.stats.Bytes.Add(nb)
	var stall time.Duration
	if c.tr != nil {
		var err error
		stall, err = c.tr.Send(c.commID, c.worldRank(dst), tag, data)
		if err != nil {
			panic(transportFailure{err: fmt.Errorf("mpi: send to rank %d: %w", c.worldRank(dst), err)})
		}
		if stall > 0 {
			c.w.stats.BlockedSends.Add(1)
			c.w.noteStall(stall)
		}
	} else {
		stall = c.deliver(dst, message{tag: tag, data: data})
	}
	if hook := c.w.opt.OnEvent; hook != nil {
		hook(Event{Rank: c.worldRank(c.rank), Op: "send", Peer: c.worldRank(dst), Tag: tag, Bytes: nb, Stall: stall})
	}
}

// deliver routes a message to dst, applying reorder injection when
// enabled, and returns how long the send blocked. Under injection the
// sender may hold one message per destination back so that a later
// message with a *different* tag overtakes it; order within one
// (src,dst,tag) stream is always preserved.
func (c *Comm) deliver(dst int, m message) time.Duration {
	if c.held == nil {
		return c.push(dst, m)
	}
	rng := c.w.frand[c.worldRank(c.rank)]
	var stall time.Duration
	if h := c.held[dst]; h != nil && (h.tag == m.tag || rng.Intn(2) == 0) {
		c.held[dst] = nil
		stall += c.push(dst, *h)
	}
	if c.held[dst] == nil && rng.Intn(2) == 0 {
		held := m
		c.held[dst] = &held
		return stall
	}
	return stall + c.push(dst, m)
}

// push writes to the wire, abort-aware and stall-tracked.
func (c *Comm) push(dst int, m message) time.Duration {
	ch := c.chans[c.rank][dst]
	select {
	case ch <- m:
		return 0
	default:
	}
	c.w.stats.BlockedSends.Add(1)
	end := c.w.enterBlocked(c.worldRank(c.rank), "send", c.worldRank(dst), m.tag)
	select {
	case ch <- m:
		return end()
	case <-c.w.abort:
		end()
		panic(abortSignal{})
	}
}

// flushHeld delivers every held (reorder-injected) message. Called before
// any potentially blocking receive and when the rank finishes, so a hold
// can never starve a peer.
func (c *Comm) flushHeld() {
	for dst, h := range c.held {
		if h != nil {
			c.held[dst] = nil
			c.push(dst, *h)
		}
	}
}

// Recv blocks for the next message from src and returns its payload,
// panicking if the tag differs (protocol error). Under reorder injection
// it performs MPI-style tag matching instead: non-matching messages are
// buffered until asked for.
func (c *Comm) Recv(src, tag int) any {
	if src < 0 || src >= c.size {
		panic(fmt.Sprintf("mpi: recv from rank %d, world size %d", src, c.size))
	}
	c.faultStep()
	if c.tr != nil {
		data, stall, err := c.tr.Recv(c.commID, c.worldRank(src), tag)
		if err != nil {
			panic(transportFailure{err: fmt.Errorf("mpi: recv from rank %d: %w", c.worldRank(src), err)})
		}
		if stall > 0 {
			c.w.noteStall(stall)
		}
		if hook := c.w.opt.OnEvent; hook != nil {
			hook(Event{Rank: c.worldRank(c.rank), Op: "recv", Peer: c.worldRank(src), Tag: tag, Bytes: payloadBytes(data), Stall: stall})
		}
		return data
	}
	if c.held != nil {
		c.w.flushRank(c.worldRank(c.rank))
	}
	m, stall := c.fetch(src, tag)
	if hook := c.w.opt.OnEvent; hook != nil {
		hook(Event{Rank: c.worldRank(c.rank), Op: "recv", Peer: c.worldRank(src), Tag: tag, Bytes: payloadBytes(m.data), Stall: stall})
	}
	return m.data
}

// fetch returns the next message from src with the given tag.
func (c *Comm) fetch(src, tag int) (message, time.Duration) {
	if c.pending != nil {
		q := c.pending[src]
		for i, m := range q {
			if m.tag == tag {
				c.pending[src] = append(q[:i], q[i+1:]...)
				return m, 0
			}
		}
		var stall time.Duration
		for {
			m, st := c.take(src, tag)
			stall += st
			if m.tag == tag {
				return m, stall
			}
			c.pending[src] = append(c.pending[src], m)
		}
	}
	m, stall := c.take(src, tag)
	if m.tag != tag {
		panic(fmt.Sprintf("mpi: rank %d expected tag %d from %d, got %d", c.rank, tag, src, m.tag))
	}
	return m, stall
}

// take reads the next raw message from src, abort-aware and stall-tracked.
func (c *Comm) take(src, tag int) (message, time.Duration) {
	ch := c.chans[src][c.rank]
	select {
	case m := <-ch:
		return m, 0
	default:
	}
	end := c.w.enterBlocked(c.worldRank(c.rank), "recv", c.worldRank(src), tag)
	select {
	case m := <-ch:
		return m, end()
	case <-c.w.abort:
		end()
		panic(abortSignal{})
	}
}

// payloadBytes approximates the wire size of a payload: fast paths for the
// common scalar and slice types, a structural reflection walk for
// everything else (struct slices like match bids and move proposals are
// accounted at their packed field size, so the traffic numbers reported
// for the parallel partitioners are real, not "8 bytes per opaque value").
func payloadBytes(data any) int64 {
	switch v := data.(type) {
	case nil:
		return 0
	case []int32:
		return int64(4 * len(v))
	case []int64:
		return int64(8 * len(v))
	case []float64:
		return int64(8 * len(v))
	case []byte:
		return int64(len(v))
	case string:
		return int64(len(v))
	case int, int64, uint64, float64:
		return 8
	case int32, uint32, float32:
		return 4
	case int16, uint16:
		return 2
	case int8, uint8, bool:
		return 1
	}
	return wireSize(reflect.ValueOf(data))
}

// wireSize walks a value structurally: fixed-width kinds by width,
// strings and slices by element, structs field by field. Reference kinds
// (chan, func, map) count as one word; the substrate only ships those in
// internal bootstrap payloads (Split's channel matrix).
func wireSize(v reflect.Value) int64 {
	switch v.Kind() {
	case reflect.Invalid:
		return 0
	case reflect.Bool, reflect.Int8, reflect.Uint8:
		return 1
	case reflect.Int16, reflect.Uint16:
		return 2
	case reflect.Int32, reflect.Uint32, reflect.Float32:
		return 4
	case reflect.Int, reflect.Int64, reflect.Uint, reflect.Uint64, reflect.Uintptr, reflect.Float64, reflect.Complex64:
		return 8
	case reflect.Complex128:
		return 16
	case reflect.String:
		return int64(v.Len())
	case reflect.Slice, reflect.Array:
		if v.Kind() == reflect.Slice && v.IsNil() {
			return 0
		}
		if sz, fixed := fixedWireSize(v.Type().Elem()); fixed {
			return sz * int64(v.Len())
		}
		var total int64
		for i := 0; i < v.Len(); i++ {
			total += wireSize(v.Index(i))
		}
		return total
	case reflect.Struct:
		var total int64
		for i := 0; i < v.NumField(); i++ {
			total += wireSize(v.Field(i))
		}
		return total
	case reflect.Pointer, reflect.Interface:
		if v.IsNil() {
			return 0
		}
		return wireSize(v.Elem())
	default: // chan, func, map, unsafe pointer: opaque word
		return 8
	}
}

// fixedWireSize reports the wire size of t when every value of t has the
// same size (no strings, slices, interfaces or pointers anywhere), letting
// slice accounting skip the per-element walk.
func fixedWireSize(t reflect.Type) (int64, bool) {
	switch t.Kind() {
	case reflect.Bool, reflect.Int8, reflect.Uint8:
		return 1, true
	case reflect.Int16, reflect.Uint16:
		return 2, true
	case reflect.Int32, reflect.Uint32, reflect.Float32:
		return 4, true
	case reflect.Int, reflect.Int64, reflect.Uint, reflect.Uint64, reflect.Uintptr, reflect.Float64, reflect.Complex64:
		return 8, true
	case reflect.Complex128:
		return 16, true
	case reflect.Array:
		sz, ok := fixedWireSize(t.Elem())
		return sz * int64(t.Len()), ok
	case reflect.Struct:
		var total int64
		for i := 0; i < t.NumField(); i++ {
			sz, ok := fixedWireSize(t.Field(i).Type)
			if !ok {
				return 0, false
			}
			total += sz
		}
		return total, true
	}
	return 0, false
}

// Split partitions the communicator into disjoint sub-communicators by
// color (ranks passing the same color share a new Comm; ranks are ordered
// by key, ties by old rank). Every rank of c must call Split. A negative
// color returns nil (the rank does not participate; mirrors
// MPI_UNDEFINED).
func (c *Comm) Split(color, key int) *Comm {
	defer c.collective("split")()
	seq := c.splitSeq
	c.splitSeq++ // counted for every rank, participating or not, so ids agree
	all := AllgatherAny(c, splitEntry{color, key, c.rank}).([]splitEntry)
	if color < 0 {
		return nil
	}
	var members []splitEntry
	for _, e := range all {
		if e.Color == color {
			members = append(members, e)
		}
	}
	// order by (key, rank)
	for i := 1; i < len(members); i++ {
		for j := i; j > 0 && (members[j].Key < members[j-1].Key ||
			(members[j].Key == members[j-1].Key && members[j].Rank < members[j-1].Rank)); j-- {
			members[j], members[j-1] = members[j-1], members[j]
		}
	}
	newRank := -1
	worldOf := make([]int, len(members))
	for i, e := range members {
		if e.Rank == c.rank {
			newRank = i
		}
		worldOf[i] = c.worldRank(e.Rank)
	}
	sub := newComm(c.w, nil, newRank, len(members), worldOf)
	if c.tr != nil {
		// Over a transport the sub-communicator needs no new wiring, just a
		// fresh stream id; every member derives the same one locally.
		sub.tr = c.tr
		sub.commID = deriveCommID(c.commID, seq, color)
		return sub
	}
	// The split communicator gets fresh channels. Build them cooperatively:
	// the lowest old rank of each color allocates and distributes.
	if newRank == 0 {
		sub.chans = newChanMatrix(len(members), c.w.opt.ChanCap)
		for i := 1; i < len(members); i++ {
			c.Send(members[i].Rank, tagSplit, sub.chans)
		}
	} else {
		sub.chans = c.Recv(members[0].Rank, tagSplit).([][]chan message)
	}
	return sub
}

// splitEntry is Split's allgather payload (package-level with exported
// fields so it can cross a network transport).
type splitEntry struct{ Color, Key, Rank int }

// Internal collective tags (user tags are free-form; collisions avoided by
// the strict matched-order discipline).
const (
	tagSplit = -1000 - iota
	tagBarrier
	tagGather
	tagBcast
	tagAllgatherAny
)

// Barrier blocks until every rank of c has entered it.
func (c *Comm) Barrier() {
	defer c.collective("barrier")()
	if c.size == 1 {
		return
	}
	if c.rank == 0 {
		for r := 1; r < c.size; r++ {
			c.Recv(r, tagBarrier)
		}
		for r := 1; r < c.size; r++ {
			c.Send(r, tagBarrier, nil)
		}
	} else {
		c.Send(0, tagBarrier, nil)
		c.Recv(0, tagBarrier)
	}
}

// AllgatherAny gathers one opaque value per rank, in rank order, to every
// rank. The return value is a slice of the element's dynamic type (e.g.
// []entry), produced with a small reflection-free trick: rank 0 assembles
// a []any and each rank converts; to keep call sites typed, prefer the
// generic Allgather for concrete element types. This variant exists for
// internal structural payloads.
func AllgatherAny[T any](c *Comm, v T) any {
	defer c.collective("allgather-any")()
	out := make([]T, c.size)
	if c.rank == 0 {
		out[0] = v
		for r := 1; r < c.size; r++ {
			out[r] = c.Recv(r, tagAllgatherAny).(T)
		}
		for r := 1; r < c.size; r++ {
			c.Send(r, tagAllgatherAny, append([]T(nil), out...))
		}
	} else {
		c.Send(0, tagAllgatherAny, v)
		out = c.Recv(0, tagAllgatherAny).([]T)
	}
	return out
}
