package mpi

import "hyperbal/internal/obs"

// Registry handles bridging the substrate's per-world Stats into the
// process-wide metrics registry. Traffic totals are folded in once per
// world when RunWith returns (the per-world atomics stay the hot-path
// accounting); only the per-collective-op counters increment inside
// collectives, at nesting depth 1, through pre-registered handles.
var (
	obsWorlds      = obs.Default().Counter("mpi_worlds_total")
	obsMessages    = obs.Default().Counter("mpi_messages_total")
	obsBytes       = obs.Default().Counter("mpi_bytes_total")
	obsCollectives = obs.Default().Counter("mpi_collectives_total")
	obsMaxStall    = obs.Default().Gauge("mpi_max_stall_ns")
	obsBlockedSend = obs.Default().Counter("mpi_blocked_sends_total")

	obsDeadlocks = obs.Default().Counter("mpi_deadlocks_total")
	obsCrashes   = obs.Default().Counter("mpi_crashes_total")

	obsCollectiveOps = obs.Default().CounterVec("mpi_collective_ops_total", "op")
)

// bridgeStats folds one finished world's traffic into the registry.
func bridgeStats(s *Stats, deadlocked bool, crashes int64) {
	obsWorlds.Inc()
	obsMessages.Add(s.Messages.Load())
	obsBytes.Add(s.Bytes.Load())
	obsCollectives.Add(s.Collectives.Load())
	obsMaxStall.SetMax(s.MaxStall.Load())
	obsBlockedSend.Add(s.BlockedSends.Load())
	if deadlocked {
		obsDeadlocks.Inc()
	}
	obsCrashes.Add(crashes)
}
