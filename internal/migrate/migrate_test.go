package migrate

import (
	"sync"
	"testing"
	"time"

	"hyperbal/internal/hypergraph"
	"hyperbal/internal/mpi"
	"hyperbal/internal/partition"
)

func sampleHG(n int) *hypergraph.Hypergraph {
	b := hypergraph.NewBuilder(n)
	for v := 0; v < n; v++ {
		b.SetSize(v, int64(1+v%4))
	}
	return b.Build()
}

func TestNewPlan(t *testing.T) {
	h := sampleHG(8)
	old := partition.Partition{K: 3, Parts: []int32{0, 0, 0, 1, 1, 1, 2, 2}}
	new := partition.Partition{K: 3, Parts: []int32{0, 1, 0, 1, 2, 1, 2, 0}}
	p, err := NewPlan(h, old, new)
	if err != nil {
		t.Fatal(err)
	}
	// moved: v1 (0->1, size 2), v4 (1->2, size 1), v7 (2->0, size 4)
	if len(p.Moves) != 3 {
		t.Fatalf("moves = %v", p.Moves)
	}
	if p.TotalVolume() != 2+1+4 {
		t.Fatalf("volume = %d, want 7", p.TotalVolume())
	}
	if p.Volume[0][1] != 2 || p.Volume[1][2] != 1 || p.Volume[2][0] != 4 {
		t.Fatalf("volume matrix wrong: %v", p.Volume)
	}
	if p.MaxOutbound() != 4 || p.MaxInbound() != 4 {
		t.Fatalf("bounds: out %d in %d", p.MaxOutbound(), p.MaxInbound())
	}
	// Plan volume agrees with the metric used everywhere else.
	if p.TotalVolume() != partition.MigrationVolume(h, old, new) {
		t.Fatal("plan volume != MigrationVolume")
	}
}

func TestNewPlanValidation(t *testing.T) {
	h := sampleHG(4)
	ok := partition.New(4, 2)
	if _, err := NewPlan(h, partition.New(3, 2), ok); err == nil {
		t.Fatal("expected error for short old partition")
	}
	if _, err := NewPlan(h, ok, partition.New(4, 3)); err == nil {
		t.Fatal("expected error for K mismatch")
	}
}

func TestExecuteMovesPayloads(t *testing.T) {
	h := sampleHG(12)
	k := 4
	old := partition.Partition{K: k, Parts: make([]int32, 12)}
	new := partition.Partition{K: k, Parts: make([]int32, 12)}
	for v := 0; v < 12; v++ {
		old.Parts[v] = int32(v % k)
		new.Parts[v] = int32((v + 1) % k) // everyone moves one part over
	}
	plan, err := NewPlan(h, old, new)
	if err != nil {
		t.Fatal(err)
	}
	stores := BuildStores(h, old)
	var mu sync.Mutex
	totalReceived := 0
	err = mpi.Run(k, func(c *mpi.Comm) error {
		got, err := Execute(c, plan, stores[c.Rank()])
		if err != nil {
			return err
		}
		mu.Lock()
		totalReceived += got
		mu.Unlock()
		return nil
	})
	if err != nil {
		t.Fatal(err)
	}
	if totalReceived != 12 {
		t.Fatalf("received %d vertices, want 12", totalReceived)
	}
	// Every store now holds exactly its new vertices with intact payloads.
	for v := 0; v < 12; v++ {
		store := stores[new.Parts[v]]
		data, ok := store[int32(v)]
		if !ok {
			t.Fatalf("vertex %d missing from its new owner", v)
		}
		if int64(len(data)) != h.Size(v) {
			t.Fatalf("vertex %d payload resized: %d != %d", v, len(data), h.Size(v))
		}
		for _, bb := range data {
			if bb != byte(v) {
				t.Fatalf("vertex %d payload corrupted", v)
			}
		}
	}
}

func TestExecuteNoMoves(t *testing.T) {
	h := sampleHG(6)
	old := partition.Partition{K: 2, Parts: []int32{0, 0, 0, 1, 1, 1}}
	plan, _ := NewPlan(h, old, old)
	stores := BuildStores(h, old)
	err := mpi.Run(2, func(c *mpi.Comm) error {
		got, err := Execute(c, plan, stores[c.Rank()])
		if err != nil {
			return err
		}
		if got != 0 {
			t.Errorf("rank %d received %d, want 0", c.Rank(), got)
		}
		return nil
	})
	if err != nil {
		t.Fatal(err)
	}
}

func TestExecuteWrongWorldSize(t *testing.T) {
	h := sampleHG(4)
	old := partition.Partition{K: 2, Parts: []int32{0, 0, 1, 1}}
	plan, _ := NewPlan(h, old, old)
	err := mpi.Run(3, func(c *mpi.Comm) error {
		_, err := Execute(c, plan, Store{})
		if err == nil {
			t.Error("expected world-size mismatch error")
		}
		return nil
	})
	if err != nil {
		t.Fatal(err)
	}
}

// TestExecuteDeferredErrorSymmetry pins the error-handling contract of
// Execute: a rank that cannot produce a scheduled payload reports the
// error but still enters the Alltoall with its remaining payloads, so
// healthy peers neither deadlock nor lose the deliverable vertices. Run
// under a watchdog so a symmetry break fails fast as a DeadlockError.
func TestExecuteDeferredErrorSymmetry(t *testing.T) {
	h := sampleHG(6)
	old := partition.Partition{K: 2, Parts: []int32{0, 0, 0, 1, 1, 1}}
	new := partition.Partition{K: 2, Parts: []int32{1, 1, 0, 1, 0, 1}}
	// Schedule: rank 0 sends vertices 0 and 1; rank 1 sends vertex 4.
	plan, err := NewPlan(h, old, new)
	if err != nil {
		t.Fatal(err)
	}
	stores := BuildStores(h, old)
	delete(stores[0], 0) // rank 0 cannot produce vertex 0
	var mu sync.Mutex
	received := make([]int, 2)
	execErrs := make([]error, 2)
	_, err = mpi.RunWith(2, mpi.Options{Watchdog: 30 * time.Second}, func(c *mpi.Comm) error {
		n, execErr := Execute(c, plan, stores[c.Rank()])
		mu.Lock()
		received[c.Rank()] = n
		execErrs[c.Rank()] = execErr
		mu.Unlock()
		return nil
	})
	if err != nil {
		t.Fatal(err)
	}
	if execErrs[0] == nil {
		t.Error("rank 0: want missing-vertex error, got nil")
	}
	if execErrs[1] != nil {
		t.Errorf("rank 1: unexpected error %v", execErrs[1])
	}
	// Vertex 1 still made it across despite rank 0's error; vertex 4 came
	// back the other way.
	if received[1] != 1 {
		t.Errorf("rank 1 received %d vertices, want 1 (vertex 1)", received[1])
	}
	if received[0] != 1 {
		t.Errorf("rank 0 received %d vertices, want 1 (vertex 4)", received[0])
	}
	if _, ok := stores[1][1]; !ok {
		t.Error("vertex 1 payload missing from rank 1's store")
	}
	if _, ok := stores[0][4]; !ok {
		t.Error("vertex 4 payload missing from rank 0's store")
	}
}

// TestExecuteDuplicateReceive drives the other deferred-error branch: a
// destination that already holds an incoming vertex keeps its copy,
// reports the duplicate, and the exchange still completes on both ranks.
func TestExecuteDuplicateReceive(t *testing.T) {
	h := sampleHG(4)
	old := partition.Partition{K: 2, Parts: []int32{0, 0, 1, 1}}
	new := partition.Partition{K: 2, Parts: []int32{1, 0, 1, 1}}
	plan, err := NewPlan(h, old, new)
	if err != nil {
		t.Fatal(err)
	}
	stores := BuildStores(h, old)
	stores[1][0] = []byte{0xEE} // rank 1 somehow already holds vertex 0
	var mu sync.Mutex
	execErrs := make([]error, 2)
	_, err = mpi.RunWith(2, mpi.Options{Watchdog: 30 * time.Second}, func(c *mpi.Comm) error {
		_, execErr := Execute(c, plan, stores[c.Rank()])
		mu.Lock()
		execErrs[c.Rank()] = execErr
		mu.Unlock()
		return nil
	})
	if err != nil {
		t.Fatal(err)
	}
	if execErrs[1] == nil {
		t.Error("rank 1: want duplicate-vertex error, got nil")
	}
	if got := stores[1][0]; len(got) != 1 || got[0] != 0xEE {
		t.Errorf("rank 1's pre-existing payload overwritten: %v", got)
	}
}

func TestExecuteMissingVertex(t *testing.T) {
	h := sampleHG(4)
	old := partition.Partition{K: 2, Parts: []int32{0, 0, 1, 1}}
	new := partition.Partition{K: 2, Parts: []int32{1, 0, 1, 1}}
	plan, _ := NewPlan(h, old, new)
	err := mpi.Run(2, func(c *mpi.Comm) error {
		store := Store{} // rank 0's store is missing vertex 0
		if c.Rank() == 1 {
			store[2] = []byte{1}
			store[3] = []byte{1}
		}
		_, err := Execute(c, plan, store)
		if c.Rank() == 0 && err == nil {
			t.Error("expected missing-vertex error on rank 0")
		}
		return nil
	})
	if err != nil {
		t.Fatal(err)
	}
}
