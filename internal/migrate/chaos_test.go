package migrate

// Chaos tests: data migration must land every payload at its destination
// under any injected delay/reorder schedule, and its Alltoall traffic is
// accounted at exact packed size ([]VertexPayload = 4 bytes of vertex id
// plus the payload bytes, per vertex).

import (
	"bytes"
	"fmt"
	"sync"
	"testing"
	"time"

	"hyperbal/internal/hypergraph"
	"hyperbal/internal/mpi"
	"hyperbal/internal/partition"
)

func TestExecuteScheduleIndependent(t *testing.T) {
	h := sampleHG(24)
	old := partition.Partition{K: 4, Parts: make([]int32, 24)}
	next := partition.Partition{K: 4, Parts: make([]int32, 24)}
	for v := 0; v < 24; v++ {
		old.Parts[v] = int32(v % 4)
		next.Parts[v] = int32((v + 1) % 4) // rotate every vertex one part over
	}
	plan, err := NewPlan(h, old, next)
	if err != nil {
		t.Fatal(err)
	}
	plans := []*mpi.FaultPlan{
		nil,
		{Seed: 41, MaxDelay: 100 * time.Microsecond},
		{Seed: 42, Reorder: true},
		{Seed: 43, MaxDelay: 50 * time.Microsecond, Reorder: true},
	}
	var baseline []Store
	var baseReceived []int
	for i, fp := range plans {
		stores := BuildStores(h, old)
		received := make([]int, 4)
		var mu sync.Mutex
		_, err := mpi.RunWith(4, mpi.Options{Watchdog: 30 * time.Second, Fault: fp}, func(c *mpi.Comm) error {
			n, err := Execute(c, plan, stores[c.Rank()])
			if err != nil {
				return err
			}
			mu.Lock()
			received[c.Rank()] = n
			mu.Unlock()
			return nil
		})
		if err != nil {
			t.Fatalf("plan %d: %v", i, err)
		}
		// Every vertex must sit in its destination store with intact payload.
		for v := 0; v < 24; v++ {
			data, ok := stores[next.Parts[v]][int32(v)]
			if !ok {
				t.Fatalf("plan %d: vertex %d missing from destination store", i, v)
			}
			want := make([]byte, h.Size(v))
			for j := range want {
				want[j] = byte(v)
			}
			if !bytes.Equal(data, want) {
				t.Fatalf("plan %d: vertex %d payload corrupted", i, v)
			}
		}
		if i == 0 {
			baseline, baseReceived = stores, received
			continue
		}
		for r := 0; r < 4; r++ {
			if received[r] != baseReceived[r] {
				t.Fatalf("rank %d received %d vertices under FaultPlan{Seed:%d}, clean run received %d",
					r, received[r], fp.Seed, baseReceived[r])
			}
			if len(stores[r]) != len(baseline[r]) {
				t.Fatalf("rank %d store size %d under FaultPlan{Seed:%d}, clean %d",
					r, len(stores[r]), fp.Seed, len(baseline[r]))
			}
		}
	}
}

// Exact byte accounting of the migration Alltoall: moving one 5-byte
// vertex between 2 parts ships one VertexPayload (4-byte id + 5 data
// bytes) one way and an empty bucket the other way, in exactly 2 messages.
func TestExecuteTrafficAccountedExactly(t *testing.T) {
	hb := hypergraph.NewBuilder(2)
	hb.SetSize(0, 5)
	hb.SetSize(1, 1)
	h := hb.Build()
	old := partition.Partition{K: 2, Parts: []int32{0, 1}}
	next := partition.Partition{K: 2, Parts: []int32{1, 1}} // vertex 0 moves 0->1
	plan, err := NewPlan(h, old, next)
	if err != nil {
		t.Fatal(err)
	}
	stores := BuildStores(h, old)
	stats, err := mpi.RunWith(2, mpi.Options{Watchdog: 30 * time.Second}, func(c *mpi.Comm) error {
		n, err := Execute(c, plan, stores[c.Rank()])
		if err != nil {
			return err
		}
		if c.Rank() == 1 && n != 1 {
			return fmt.Errorf("rank 1 received %d vertices, want 1", n)
		}
		return nil
	})
	if err != nil {
		t.Fatal(err)
	}
	if got := stats.Messages.Load(); got != 2 {
		t.Fatalf("messages = %d, want 2 (one bucket each way)", got)
	}
	if got := stats.Bytes.Load(); got != 9 {
		t.Fatalf("bytes = %d, want 9 (4-byte id + 5 payload bytes; empty bucket is 0)", got)
	}
}
