// Package migrate turns a pair of partitions (old, new) into an explicit
// data-migration plan — who sends which vertices where, and how much — and
// executes it over the mpi substrate, moving the actual vertex payloads
// between rank-owned stores. This is the "decode the resulting partition
// to infer the data-migration pattern and cost" step of Section 3, plus
// the Zoltan-style migration tools the application would call afterwards.
package migrate

import (
	"fmt"

	"hyperbal/internal/hypergraph"
	"hyperbal/internal/mpi"
	"hyperbal/internal/partition"
)

// Move is one vertex relocation.
type Move struct {
	Vertex int32
	From   int32
	To     int32
	Size   int64
}

// Plan is the full migration schedule between two assignments.
type Plan struct {
	K     int
	Moves []Move
	// Volume[from][to] is the data volume moving from part `from` to part
	// `to` (zero diagonal).
	Volume [][]int64
}

// NewPlan derives the migration plan for moving h's vertex data from old
// to new. Both partitions must cover h's vertices and use the same K.
func NewPlan(h *hypergraph.Hypergraph, old, new partition.Partition) (*Plan, error) {
	if len(old.Parts) != h.NumVertices() || len(new.Parts) != h.NumVertices() {
		return nil, fmt.Errorf("migrate: partitions cover %d/%d vertices, hypergraph has %d",
			len(old.Parts), len(new.Parts), h.NumVertices())
	}
	if old.K != new.K {
		return nil, fmt.Errorf("migrate: K mismatch %d vs %d", old.K, new.K)
	}
	p := &Plan{K: old.K, Volume: make([][]int64, old.K)}
	for i := range p.Volume {
		p.Volume[i] = make([]int64, old.K)
	}
	for v := 0; v < h.NumVertices(); v++ {
		from, to := old.Parts[v], new.Parts[v]
		if from == to {
			continue
		}
		sz := h.Size(v)
		p.Moves = append(p.Moves, Move{Vertex: int32(v), From: from, To: to, Size: sz})
		p.Volume[from][to] += sz
	}
	return p, nil
}

// TotalVolume is the sum of all moved data sizes.
func (p *Plan) TotalVolume() int64 {
	var t int64
	for _, row := range p.Volume {
		for _, v := range row {
			t += v
		}
	}
	return t
}

// MaxOutbound returns the largest per-part send volume (the migration
// bottleneck on the sending side).
func (p *Plan) MaxOutbound() int64 {
	var m int64
	for _, row := range p.Volume {
		var s int64
		for _, v := range row {
			s += v
		}
		if s > m {
			m = s
		}
	}
	return m
}

// MaxInbound returns the largest per-part receive volume.
func (p *Plan) MaxInbound() int64 {
	var m int64
	for to := 0; to < p.K; to++ {
		var s int64
		for from := 0; from < p.K; from++ {
			s += p.Volume[from][to]
		}
		if s > m {
			m = s
		}
	}
	return m
}

// VertexPayload is a vertex's application data in flight.
type VertexPayload struct {
	Vertex int32
	Data   []byte
}

// Store is one rank's owned vertex data.
type Store map[int32][]byte

// Execute runs the plan over the communicator: each rank plays part
// c.Rank(), sending the payloads of its outgoing vertices and receiving
// incoming ones. The store is mutated in place. The communicator size must
// equal the plan's K. Returns the number of vertices received.
//
// Every rank must call Execute with the plan and its own store; payload
// ownership transfers with the message (the sender deletes its copy),
// exactly like a real Zoltan data migration.
func Execute(c *mpi.Comm, p *Plan, store Store) (int, error) {
	if c.Size() != p.K {
		return 0, fmt.Errorf("migrate: plan has %d parts, communicator %d ranks", p.K, c.Size())
	}
	me := int32(c.Rank())
	// Bucket outgoing payloads per destination. Errors are deferred until
	// after the collective exchange so a faulty rank cannot deadlock its
	// peers mid-Alltoall (collective symmetry is preserved even on error).
	var firstErr error
	out := make([][]VertexPayload, p.K)
	for _, m := range p.Moves {
		if m.From != me {
			continue
		}
		data, ok := store[m.Vertex]
		if !ok {
			if firstErr == nil {
				firstErr = fmt.Errorf("migrate: rank %d does not own vertex %d scheduled to move", me, m.Vertex)
			}
			continue
		}
		out[m.To] = append(out[m.To], VertexPayload{Vertex: m.Vertex, Data: data})
		delete(store, m.Vertex)
	}
	in := mpi.Alltoall(c, out)
	received := 0
	for src, payloads := range in {
		if src == int(me) {
			continue
		}
		for _, pl := range payloads {
			if _, dup := store[pl.Vertex]; dup {
				if firstErr == nil {
					firstErr = fmt.Errorf("migrate: rank %d received duplicate vertex %d", me, pl.Vertex)
				}
				continue
			}
			store[pl.Vertex] = pl.Data
			received++
		}
	}
	return received, firstErr
}

// BuildStores constructs per-part stores with synthetic payloads sized by
// each vertex's Size (one byte per size unit), for tests and simulations.
func BuildStores(h *hypergraph.Hypergraph, owner partition.Partition) []Store {
	stores := make([]Store, owner.K)
	for i := range stores {
		stores[i] = make(Store)
	}
	for v := 0; v < h.NumVertices(); v++ {
		payload := make([]byte, h.Size(v))
		for i := range payload {
			payload[i] = byte(v)
		}
		stores[owner.Parts[v]][int32(v)] = payload
	}
	return stores
}
