package hypergraph

import (
	"bytes"
	"math/rand"
	"strings"
	"testing"
	"testing/quick"
)

// paperExample builds the epoch j-1 hypergraph of Figure 1: nine unit
// vertices, three nets.
func paperExample() *Hypergraph {
	b := NewBuilder(9)
	b.AddNet(1, 0, 1, 2) // {1,2,3}
	b.AddNet(1, 3, 4, 5) // {4,5,6}
	b.AddNet(1, 6, 7, 8) // {7,8,9}
	return b.Build()
}

func TestBuilderBasic(t *testing.T) {
	h := paperExample()
	if h.NumVertices() != 9 {
		t.Fatalf("NumVertices = %d, want 9", h.NumVertices())
	}
	if h.NumNets() != 3 {
		t.Fatalf("NumNets = %d, want 3", h.NumNets())
	}
	if h.NumPins() != 9 {
		t.Fatalf("NumPins = %d, want 9", h.NumPins())
	}
	if err := h.Validate(); err != nil {
		t.Fatalf("Validate: %v", err)
	}
	if got := h.Pins(1); len(got) != 3 || got[0] != 3 || got[2] != 5 {
		t.Fatalf("Pins(1) = %v", got)
	}
	if h.Degree(4) != 1 {
		t.Fatalf("Degree(4) = %d, want 1", h.Degree(4))
	}
	if h.TotalWeight() != 9 {
		t.Fatalf("TotalWeight = %d, want 9", h.TotalWeight())
	}
}

func TestBuilderDuplicatePinsRemoved(t *testing.T) {
	b := NewBuilder(3)
	b.AddNet(5, 0, 1, 1, 0, 2)
	h := b.Build()
	if h.NetSize(0) != 3 {
		t.Fatalf("NetSize = %d, want 3 after dedup", h.NetSize(0))
	}
	if err := h.Validate(); err != nil {
		t.Fatalf("Validate: %v", err)
	}
}

func TestBuilderOutOfRangePinPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic for out-of-range pin")
		}
	}()
	NewBuilder(2).AddNet(1, 0, 5)
}

func TestVertexNetCSRConsistency(t *testing.T) {
	rng := rand.New(rand.NewSource(1))
	b := NewBuilder(50)
	for n := 0; n < 120; n++ {
		sz := 2 + rng.Intn(6)
		pins := rng.Perm(50)[:sz]
		b.AddNet(int64(1+rng.Intn(9)), pins...)
	}
	h := b.Build()
	if err := h.Validate(); err != nil {
		t.Fatalf("Validate: %v", err)
	}
	// Every pin appears exactly once in each direction.
	count := 0
	for v := 0; v < h.NumVertices(); v++ {
		count += h.Degree(v)
	}
	if count != h.NumPins() {
		t.Fatalf("sum of degrees %d != pins %d", count, h.NumPins())
	}
}

func TestFixedLabels(t *testing.T) {
	b := NewBuilder(4)
	b.Fix(2, 1)
	h := b.Build()
	if !h.HasFixed() {
		t.Fatal("HasFixed = false")
	}
	if h.Fixed(2) != 1 || h.Fixed(0) != Free {
		t.Fatalf("Fixed labels wrong: %d %d", h.Fixed(2), h.Fixed(0))
	}
	free := h.WithoutFixed()
	if free.HasFixed() {
		t.Fatal("WithoutFixed still has fixed labels")
	}
	relabeled := h.WithFixed([]int32{0, Free, Free, 1})
	if relabeled.Fixed(0) != 0 || relabeled.Fixed(3) != 1 {
		t.Fatal("WithFixed labels not applied")
	}
	// Original untouched.
	if h.Fixed(0) != Free {
		t.Fatal("WithFixed mutated original")
	}
}

func TestWithFixedLengthMismatchPanics(t *testing.T) {
	h := paperExample()
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic")
		}
	}()
	h.WithFixed([]int32{0})
}

func TestScaleCosts(t *testing.T) {
	h := paperExample()
	s := h.ScaleCosts(5)
	for n := 0; n < s.NumNets(); n++ {
		if s.Cost(n) != 5 {
			t.Fatalf("scaled cost = %d, want 5", s.Cost(n))
		}
		if h.Cost(n) != 1 {
			t.Fatalf("original cost mutated")
		}
	}
}

func TestClone(t *testing.T) {
	b := NewBuilder(3)
	b.SetWeight(1, 7)
	b.SetSize(2, 9)
	b.Fix(0, 2)
	b.AddNet(4, 0, 1, 2)
	h := b.Build()
	c := h.Clone()
	if err := c.Validate(); err != nil {
		t.Fatalf("clone Validate: %v", err)
	}
	if c.Weight(1) != 7 || c.Size(2) != 9 || c.Fixed(0) != 2 {
		t.Fatal("clone lost attributes")
	}
}

func TestStats(t *testing.T) {
	h := paperExample()
	s := ComputeStats(h)
	if s.NumVertices != 9 || s.NumNets != 3 || s.NumPins != 9 {
		t.Fatalf("stats counts wrong: %+v", s)
	}
	if s.MinDegree != 1 || s.MaxDegree != 1 || s.AvgDegree != 1 {
		t.Fatalf("degree stats wrong: %+v", s)
	}
	if s.MinNetSize != 3 || s.MaxNetSize != 3 || s.AvgNetSize != 3 {
		t.Fatalf("net size stats wrong: %+v", s)
	}
}

func TestStatsEmpty(t *testing.T) {
	h := NewBuilder(0).Build()
	s := ComputeStats(h)
	if s.NumVertices != 0 || s.MaxDegree != 0 {
		t.Fatalf("empty stats wrong: %+v", s)
	}
}

func TestIORoundTrip(t *testing.T) {
	rng := rand.New(rand.NewSource(7))
	b := NewBuilder(30)
	for v := 0; v < 30; v++ {
		b.SetWeight(v, int64(1+rng.Intn(10)))
		b.SetSize(v, int64(1+rng.Intn(5)))
	}
	for n := 0; n < 40; n++ {
		sz := 2 + rng.Intn(5)
		b.AddNet(int64(1+rng.Intn(4)), rng.Perm(30)[:sz]...)
	}
	h := b.Build()

	var buf bytes.Buffer
	if err := WriteText(&buf, h); err != nil {
		t.Fatalf("WriteText: %v", err)
	}
	g, err := ReadText(&buf)
	if err != nil {
		t.Fatalf("ReadText: %v", err)
	}
	if g.NumVertices() != h.NumVertices() || g.NumNets() != h.NumNets() || g.NumPins() != h.NumPins() {
		t.Fatalf("round trip size mismatch: %v vs %v", g, h)
	}
	for v := 0; v < h.NumVertices(); v++ {
		if g.Weight(v) != h.Weight(v) || g.Size(v) != h.Size(v) {
			t.Fatalf("vertex %d attribute mismatch", v)
		}
	}
	for n := 0; n < h.NumNets(); n++ {
		if g.Cost(n) != h.Cost(n) {
			t.Fatalf("net %d cost mismatch", n)
		}
		gp, hp := g.SortedPins(n), h.SortedPins(n)
		for i := range gp {
			if gp[i] != hp[i] {
				t.Fatalf("net %d pins differ: %v vs %v", n, gp, hp)
			}
		}
	}
}

func TestReadTextPlainHMETIS(t *testing.T) {
	// fmtcode absent: unit costs, unit weights.
	in := "% comment\n3 4\n1 2\n2 3 4\n1 4\n"
	h, err := ReadText(strings.NewReader(in))
	if err != nil {
		t.Fatalf("ReadText: %v", err)
	}
	if h.NumVertices() != 4 || h.NumNets() != 3 {
		t.Fatalf("parsed %v", h)
	}
	if h.Cost(0) != 1 || h.Weight(0) != 1 {
		t.Fatal("defaults not applied")
	}
}

func TestReadTextErrors(t *testing.T) {
	cases := []string{
		"",                   // no header
		"x y\n",              // non-numeric header
		"1\n",                // short header
		"1 3\n",              // missing net line
		"1 3 1\n5\n",         // net with cost only, no pins
		"1 3\n1 9\n",         // pin out of range
		"1 2 11\n1 1 2\n5\n", // missing one weight
	}
	for i, in := range cases {
		if _, err := ReadText(strings.NewReader(in)); err == nil {
			t.Errorf("case %d: expected error for %q", i, in)
		}
	}
}

// Property: for random hypergraphs, Build output always validates and
// degree sums equal pin counts.
func TestQuickBuildInvariants(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		nv := 1 + rng.Intn(40)
		b := NewBuilder(nv)
		nn := rng.Intn(60)
		for n := 0; n < nn; n++ {
			sz := 1 + rng.Intn(nv)
			if sz > 8 {
				sz = 8
			}
			b.AddNet(int64(rng.Intn(10)), rng.Perm(nv)[:sz]...)
		}
		h := b.Build()
		if err := h.Validate(); err != nil {
			return false
		}
		sum := 0
		for v := 0; v < nv; v++ {
			sum += h.Degree(v)
		}
		return sum == h.NumPins()
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 50}); err != nil {
		t.Fatal(err)
	}
}

// Property: IO round trip preserves stats.
func TestQuickIORoundTripStats(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		nv := 1 + rng.Intn(20)
		b := NewBuilder(nv)
		for v := 0; v < nv; v++ {
			b.SetWeight(v, int64(1+rng.Intn(6)))
			b.SetSize(v, int64(1+rng.Intn(6)))
		}
		for n := 0; n < rng.Intn(25); n++ {
			sz := 1 + rng.Intn(nv)
			b.AddNet(int64(1+rng.Intn(5)), rng.Perm(nv)[:sz]...)
		}
		h := b.Build()
		var buf bytes.Buffer
		if WriteText(&buf, h) != nil {
			return false
		}
		g, err := ReadText(&buf)
		if err != nil {
			return false
		}
		return ComputeStats(g) == ComputeStats(h)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 40}); err != nil {
		t.Fatal(err)
	}
}
