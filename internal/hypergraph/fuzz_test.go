package hypergraph

import (
	"bytes"
	"strconv"
	"strings"
	"testing"
)

// declaredCounts pre-parses the header so the fuzzer can skip inputs that
// declare absurd entity counts (ReadText allocates O(vertices) up front;
// rejecting giants here keeps the fuzz loop memory-bounded without
// changing the reader's semantics).
func declaredCounts(data []byte) (nets, verts int, ok bool) {
	for _, line := range strings.Split(string(data), "\n") {
		line = strings.TrimSpace(line)
		if line == "" || strings.HasPrefix(line, "%") {
			continue
		}
		fields := strings.Fields(line)
		if len(fields) < 2 {
			return 0, 0, false
		}
		n, err1 := strconv.Atoi(fields[0])
		v, err2 := strconv.Atoi(fields[1])
		if err1 != nil || err2 != nil {
			return 0, 0, false
		}
		return n, v, true
	}
	return 0, 0, false
}

// FuzzReadText asserts the text reader never panics and that successful
// parses reach a write→read→write fixpoint (the serialized form is
// canonical).
func FuzzReadText(f *testing.F) {
	f.Add([]byte("3 4\n1 2\n2 3\n3 4 1\n"))
	f.Add([]byte("2 3 1\n5 1 2\n2 2 3\n"))
	f.Add([]byte("% comment\n2 3 111\n5 1 2\n2 2 3\n4\n1\n9\n2\n2\n2\n"))
	f.Add([]byte("1 2 11\n7 1 2\n3\n4\n"))
	f.Add([]byte("0 0\n"))
	f.Add([]byte("not a header"))
	f.Fuzz(func(t *testing.T, data []byte) {
		if len(data) > 1<<16 {
			t.Skip("oversized input")
		}
		if nets, verts, ok := declaredCounts(data); ok && (nets > 1<<20 || verts > 1<<20) {
			t.Skip("absurd declared counts")
		}
		h, err := ReadText(bytes.NewReader(data))
		if err != nil {
			return
		}
		var first bytes.Buffer
		if err := WriteText(&first, h); err != nil {
			t.Fatalf("WriteText on parsed hypergraph: %v", err)
		}
		h2, err := ReadText(bytes.NewReader(first.Bytes()))
		if err != nil {
			t.Fatalf("re-reading own output: %v\noutput:\n%s", err, first.String())
		}
		var second bytes.Buffer
		if err := WriteText(&second, h2); err != nil {
			t.Fatal(err)
		}
		if !bytes.Equal(first.Bytes(), second.Bytes()) {
			t.Fatalf("write→read→write not a fixpoint:\nfirst:\n%s\nsecond:\n%s", first.String(), second.String())
		}
		if h2.NumVertices() != h.NumVertices() || h2.NumNets() != h.NumNets() || h2.NumPins() != h.NumPins() {
			t.Fatalf("round trip changed shape: (%d,%d,%d) -> (%d,%d,%d)",
				h.NumVertices(), h.NumNets(), h.NumPins(),
				h2.NumVertices(), h2.NumNets(), h2.NumPins())
		}
	})
}
