package hypergraph

import (
	"encoding/binary"
	"errors"
	"fmt"
	"math"
)

// Binary wire codec for hypergraphs and deltas: the varint-packed frames
// the balancerd binary protocol embeds in its messages. A hypergraph frame
// carries the CSR form directly (net sizes, flat pin stream, costs, then
// optional per-vertex sections), so encoding is a single pass over the CSR
// arrays with no intermediate per-net structures, and decoding rebuilds
// the CSR with one allocation per section. Uniform all-1 weight/size
// vectors — the common case for the paper's dynamics — are elided behind a
// flags byte, which is where most of the wire-byte win over JSON comes
// from on top of varint packing.
//
// Both the binary decoder and the JSON wire decoder funnel into
// BuildFromWire, the single validation + build + fingerprint path, so the
// two codecs cannot drift: the same inputs are rejected with the same
// errors, and accepted inputs produce fingerprint-identical hypergraphs.
//
// Every length prefix a decoder reads is checked against both an absolute
// cap and the bytes remaining in the frame (each counted element occupies
// at least one encoded byte), so a hostile frame cannot make the decoder
// allocate more than O(frame size) before failing.

const (
	// BinaryFrameVersion tags hypergraph binary frames.
	BinaryFrameVersion = 1
	// DeltaFrameVersion tags delta binary frames.
	DeltaFrameVersion = 1

	// MaxWireVertices / MaxWireNets / MaxWirePins cap the dimensions a
	// wire decoder will accept, binary or JSON.
	MaxWireVertices = 1 << 24
	MaxWireNets     = 1 << 24
	MaxWirePins     = 1 << 26
)

// ErrTruncated reports a binary frame that ended mid-field.
var ErrTruncated = errors.New("hypergraph: truncated binary frame")

// ErrMalformed reports a binary frame with an invalid field (bad version,
// unknown flags, or a length prefix that cannot be satisfied).
var ErrMalformed = errors.New("hypergraph: malformed binary frame")

// Hypergraph frame flags: which optional per-vertex sections are present.
const (
	binFlagWeights byte = 1 << iota
	binFlagSizes
	binFlagFixed
)

// Delta frame flags: which optional Delta fields are present (distinguishing
// nil from empty, which Digest and Identity care about).
const (
	deltaFlagVertexMap byte = 1 << iota
	deltaFlagNewWeights
	deltaFlagNewSizes
	deltaFlagNewFixed
	deltaFlagNetMap
	deltaFlagNewNetCosts
	deltaFlagNewNetPins
)

// BinReader is a bounds-checked cursor over one binary frame. The server
// message codec shares it across the header and the embedded hypergraph /
// delta frames of one message.
type BinReader struct {
	data []byte
	off  int
}

// NewBinReader wraps data; the reader does not copy it.
func NewBinReader(data []byte) *BinReader { return &BinReader{data: data} }

// Rem returns the number of unread bytes.
func (r *BinReader) Rem() int { return len(r.data) - r.off }

// Rest returns the unread tail without consuming it.
func (r *BinReader) Rest() []byte { return r.data[r.off:] }

// Byte reads one byte.
func (r *BinReader) Byte() (byte, error) {
	if r.off >= len(r.data) {
		return 0, ErrTruncated
	}
	b := r.data[r.off]
	r.off++
	return b, nil
}

// Bytes reads n raw bytes (aliasing the frame, not a copy).
func (r *BinReader) Bytes(n int) ([]byte, error) {
	if n < 0 || r.Rem() < n {
		return nil, ErrTruncated
	}
	b := r.data[r.off : r.off+n]
	r.off += n
	return b, nil
}

// Uvarint reads one unsigned varint.
func (r *BinReader) Uvarint() (uint64, error) {
	v, n := binary.Uvarint(r.data[r.off:])
	if n == 0 {
		return 0, ErrTruncated
	}
	if n < 0 {
		return 0, fmt.Errorf("%w: uvarint overflow", ErrMalformed)
	}
	r.off += n
	return v, nil
}

// Varint reads one zigzag-encoded signed varint.
func (r *BinReader) Varint() (int64, error) {
	v, n := binary.Varint(r.data[r.off:])
	if n == 0 {
		return 0, ErrTruncated
	}
	if n < 0 {
		return 0, fmt.Errorf("%w: varint overflow", ErrMalformed)
	}
	r.off += n
	return v, nil
}

// Count reads a length prefix, rejecting values past limit or past the
// bytes remaining in the frame — the alloc-bomb guard: a decoder may
// allocate Count elements knowing the frame paid at least one byte each.
func (r *BinReader) Count(limit int) (int, error) {
	v, err := r.Uvarint()
	if err != nil {
		return 0, err
	}
	if v > uint64(limit) {
		return 0, fmt.Errorf("%w: length prefix %d exceeds limit %d", ErrMalformed, v, limit)
	}
	if v > uint64(r.Rem()) {
		return 0, fmt.Errorf("%w: length prefix %d exceeds %d remaining bytes", ErrMalformed, v, r.Rem())
	}
	return int(v), nil
}

// int32s reads a count-prefixed zigzag int32 slice (non-nil when the count
// is zero, so presence flags round-trip nil-ness exactly).
func (r *BinReader) int32s(limit int) ([]int32, error) {
	n, err := r.Count(limit)
	if err != nil {
		return nil, err
	}
	xs := make([]int32, n)
	for i := range xs {
		v, err := r.Varint()
		if err != nil {
			return nil, err
		}
		if v < math.MinInt32 || v > math.MaxInt32 {
			return nil, fmt.Errorf("%w: value %d overflows int32", ErrMalformed, v)
		}
		xs[i] = int32(v)
	}
	return xs, nil
}

// int64s reads a count-prefixed zigzag int64 slice.
func (r *BinReader) int64s(limit int) ([]int64, error) {
	n, err := r.Count(limit)
	if err != nil {
		return nil, err
	}
	xs := make([]int64, n)
	for i := range xs {
		v, err := r.Varint()
		if err != nil {
			return nil, err
		}
		xs[i] = v
	}
	return xs, nil
}

// AppendInt32s appends a count-prefixed zigzag int32 slice.
func AppendInt32s(buf []byte, xs []int32) []byte {
	buf = binary.AppendUvarint(buf, uint64(len(xs)))
	for _, x := range xs {
		buf = binary.AppendVarint(buf, int64(x))
	}
	return buf
}

// AppendInt64s appends a count-prefixed zigzag int64 slice.
func AppendInt64s(buf []byte, xs []int64) []byte {
	buf = binary.AppendUvarint(buf, uint64(len(xs)))
	for _, x := range xs {
		buf = binary.AppendVarint(buf, x)
	}
	return buf
}

// DecodeInt32s reads a count-prefixed zigzag int32 slice from r (the
// inverse of AppendInt32s), bounded by limit.
func DecodeInt32s(r *BinReader, limit int) ([]int32, error) { return r.int32s(limit) }

// AppendBinary appends h's binary frame to buf and returns the extended
// slice. The frame is canonical: equal hypergraphs (same fingerprint)
// encode to identical bytes. All-unit weight/size vectors and absent fixed
// labels are elided.
func (h *Hypergraph) AppendBinary(buf []byte) []byte {
	nv, nn := h.NumVertices(), h.NumNets()
	var flags byte
	for _, w := range h.weights {
		if w != 1 {
			flags |= binFlagWeights
			break
		}
	}
	for _, s := range h.sizes {
		if s != 1 {
			flags |= binFlagSizes
			break
		}
	}
	if h.fixed != nil {
		flags |= binFlagFixed
	}
	buf = append(buf, BinaryFrameVersion)
	buf = binary.AppendUvarint(buf, uint64(nv))
	buf = binary.AppendUvarint(buf, uint64(nn))
	buf = binary.AppendUvarint(buf, uint64(h.NumPins()))
	buf = append(buf, flags)
	for n := 0; n < nn; n++ {
		buf = binary.AppendUvarint(buf, uint64(h.netStart[n+1]-h.netStart[n]))
	}
	for _, p := range h.netPins {
		buf = binary.AppendUvarint(buf, uint64(uint32(p)))
	}
	for _, c := range h.costs {
		buf = binary.AppendUvarint(buf, uint64(c))
	}
	if flags&binFlagWeights != 0 {
		for _, w := range h.weights {
			buf = binary.AppendUvarint(buf, uint64(w))
		}
	}
	if flags&binFlagSizes != 0 {
		for _, s := range h.sizes {
			buf = binary.AppendUvarint(buf, uint64(s))
		}
	}
	if flags&binFlagFixed != 0 {
		for _, f := range h.fixed {
			buf = binary.AppendUvarint(buf, uint64(f-Free)) // Free maps to 0
		}
	}
	return buf
}

// DecodeBinary reads one hypergraph frame from r, validating through
// BuildFromWire, and returns the hypergraph together with its content
// fingerprint (computed once, during decode). Trailing message fields stay
// unread in r.
func DecodeBinary(r *BinReader) (*Hypergraph, string, error) {
	ver, err := r.Byte()
	if err != nil {
		return nil, "", err
	}
	if ver != BinaryFrameVersion {
		return nil, "", fmt.Errorf("%w: hypergraph frame version %d (want %d)", ErrMalformed, ver, BinaryFrameVersion)
	}
	nvU, err := r.Uvarint()
	if err != nil {
		return nil, "", err
	}
	if nvU > MaxWireVertices {
		return nil, "", fmt.Errorf("%w: num_vertices %d exceeds limit %d", ErrMalformed, nvU, MaxWireVertices)
	}
	nv := int(nvU)
	nn, err := r.Count(MaxWireNets)
	if err != nil {
		return nil, "", err
	}
	np, err := r.Count(MaxWirePins)
	if err != nil {
		return nil, "", err
	}
	flags, err := r.Byte()
	if err != nil {
		return nil, "", err
	}
	if flags&^(binFlagWeights|binFlagSizes|binFlagFixed) != 0 {
		return nil, "", fmt.Errorf("%w: unknown hypergraph flags %#x", ErrMalformed, flags)
	}
	// Per-vertex allocations are not count-checked field by field (the
	// sections may legitimately be elided), so bound |V| by the frame size:
	// a frame describing v vertices with any content at all spends bytes
	// proportional to them, and a tiny hostile frame cannot declare 2^24
	// bare vertices.
	if nv > 64+16*r.Rem() {
		return nil, "", fmt.Errorf("%w: num_vertices %d exceeds frame budget", ErrMalformed, nv)
	}
	netSizes := make([]int32, nn)
	for i := range netSizes {
		v, err := r.Uvarint()
		if err != nil {
			return nil, "", err
		}
		if v > uint64(np) {
			return nil, "", fmt.Errorf("%w: net %d size %d exceeds pin count %d", ErrMalformed, i, v, np)
		}
		netSizes[i] = int32(v)
	}
	pins := make([]int32, np)
	for i := range pins {
		v, err := r.Uvarint()
		if err != nil {
			return nil, "", err
		}
		if v > math.MaxInt32 {
			return nil, "", fmt.Errorf("%w: pin %d overflows int32", ErrMalformed, v)
		}
		pins[i] = int32(v)
	}
	costs := make([]int64, nn)
	for i := range costs {
		v, err := r.Uvarint()
		if err != nil {
			return nil, "", err
		}
		if v > math.MaxInt64 {
			return nil, "", fmt.Errorf("%w: net %d cost overflows int64", ErrMalformed, i)
		}
		costs[i] = int64(v)
	}
	var weights, sizes []int64
	var fixed []int32
	if flags&binFlagWeights != 0 {
		weights = make([]int64, nv)
		for i := range weights {
			v, err := r.Uvarint()
			if err != nil {
				return nil, "", err
			}
			if v > math.MaxInt64 {
				return nil, "", fmt.Errorf("%w: vertex %d weight overflows int64", ErrMalformed, i)
			}
			weights[i] = int64(v)
		}
	}
	if flags&binFlagSizes != 0 {
		sizes = make([]int64, nv)
		for i := range sizes {
			v, err := r.Uvarint()
			if err != nil {
				return nil, "", err
			}
			if v > math.MaxInt64 {
				return nil, "", fmt.Errorf("%w: vertex %d size overflows int64", ErrMalformed, i)
			}
			sizes[i] = int64(v)
		}
	}
	if flags&binFlagFixed != 0 {
		fixed = make([]int32, nv)
		for i := range fixed {
			v, err := r.Uvarint()
			if err != nil {
				return nil, "", err
			}
			if v > math.MaxInt32 {
				return nil, "", fmt.Errorf("%w: vertex %d fixed label overflows int32", ErrMalformed, i)
			}
			fixed[i] = int32(v) + Free // 0 maps back to Free
		}
	}
	return BuildFromWire(nv, costs, netSizes, pins, weights, sizes, fixed)
}

// BuildFromWire validates wire-shaped hypergraph data, builds the CSR form
// and returns the content fingerprint computed from the freshly built
// hypergraph — the single decode path shared by the JSON and binary codecs
// so the two cannot drift. It takes ownership of every slice argument.
//
// weights, sizes and fixed may be nil (unit weights/sizes, all vertices
// free); a fixed vector with no non-Free entry is normalized away, exactly
// as the Builder does, so both codecs fingerprint it identically. pins is
// the concatenation of each net's pin list in net order, netSizes the
// per-net lengths; duplicate pins within a net are dropped preserving
// first-occurrence order (matching Builder.AddNet). The validation errors
// use the wire field names (num_vertices, weights, ...) since they surface
// verbatim in 400 responses.
func BuildFromWire(numVertices int, costs []int64, netSizes []int32, pins []int32, weights, sizes []int64, fixed []int32) (*Hypergraph, string, error) {
	if numVertices < 0 {
		return nil, "", fmt.Errorf("num_vertices is negative")
	}
	if numVertices > MaxWireVertices {
		return nil, "", fmt.Errorf("num_vertices %d exceeds limit %d", numVertices, MaxWireVertices)
	}
	if len(netSizes) > MaxWireNets {
		return nil, "", fmt.Errorf("%d nets exceed limit %d", len(netSizes), MaxWireNets)
	}
	if len(pins) > MaxWirePins {
		return nil, "", fmt.Errorf("%d pins exceed limit %d", len(pins), MaxWirePins)
	}
	if len(costs) != len(netSizes) {
		return nil, "", fmt.Errorf("nets have %d costs for %d pin lists", len(costs), len(netSizes))
	}
	if weights != nil && len(weights) != numVertices {
		return nil, "", fmt.Errorf("weights has %d entries, want 0 or %d", len(weights), numVertices)
	}
	if sizes != nil && len(sizes) != numVertices {
		return nil, "", fmt.Errorf("sizes has %d entries, want 0 or %d", len(sizes), numVertices)
	}
	if fixed != nil && len(fixed) != numVertices {
		return nil, "", fmt.Errorf("fixed has %d entries, want 0 or %d", len(fixed), numVertices)
	}
	if weights == nil {
		weights = make([]int64, numVertices)
		for i := range weights {
			weights[i] = 1
		}
	} else {
		for i, v := range weights {
			if v < 0 {
				return nil, "", fmt.Errorf("vertex %d has negative weight %d", i, v)
			}
		}
	}
	if sizes == nil {
		sizes = make([]int64, numVertices)
		for i := range sizes {
			sizes[i] = 1
		}
	} else {
		for i, v := range sizes {
			if v < 0 {
				return nil, "", fmt.Errorf("vertex %d has negative size %d", i, v)
			}
		}
	}
	if fixed != nil {
		hasFixed := false
		for i, p := range fixed {
			if p == Free {
				continue
			}
			if p < 0 {
				return nil, "", fmt.Errorf("vertex %d has invalid fixed label %d", i, p)
			}
			hasFixed = true
		}
		if !hasFixed {
			fixed = nil
		}
	}

	// One pass over the flat pin stream: range-check, dedup within each net
	// via a stamp array (no per-net map), compact in place.
	netStart := make([]int32, len(netSizes)+1)
	stamp := make([]int32, numVertices)
	for i := range stamp {
		stamp[i] = -1
	}
	read, write := 0, 0
	for n, sz32 := range netSizes {
		if costs[n] < 0 {
			return nil, "", fmt.Errorf("net %d has negative cost %d", n, costs[n])
		}
		sz := int(sz32)
		if sz <= 0 {
			return nil, "", fmt.Errorf("net %d is empty", n)
		}
		if read+sz > len(pins) {
			return nil, "", fmt.Errorf("nets declare %d pins, only %d provided", read+sz, len(pins))
		}
		for k := 0; k < sz; k++ {
			p := pins[read+k]
			if p < 0 || int(p) >= numVertices {
				return nil, "", fmt.Errorf("net %d: pin %d out of range [0,%d)", n, p, numVertices)
			}
			if stamp[p] == int32(n) {
				continue // duplicate pin within the net
			}
			stamp[p] = int32(n)
			pins[write] = p
			write++
		}
		read += sz
		netStart[n+1] = int32(write)
	}
	if read != len(pins) {
		return nil, "", fmt.Errorf("nets declare %d pins, %d provided", read, len(pins))
	}
	h := FromCSR(netStart, pins[:write], costs, weights, sizes, fixed)
	return h, h.Fingerprint(), nil
}

// AppendBinary appends d's binary frame to buf. Field presence is recorded
// in a flags byte so nil-ness — which Identity and Digest distinguish from
// empty — survives the round trip exactly; sparse override streams encode
// nil and empty identically (Digest already treats them as equal).
func (d *Delta) AppendBinary(buf []byte) []byte {
	buf = append(buf, DeltaFrameVersion)
	buf = binary.AppendUvarint(buf, uint64(d.Version))
	buf = binary.AppendUvarint(buf, uint64(len(d.Base)))
	buf = append(buf, d.Base...)
	var flags byte
	if d.VertexMap != nil {
		flags |= deltaFlagVertexMap
	}
	if d.NewWeights != nil {
		flags |= deltaFlagNewWeights
	}
	if d.NewSizes != nil {
		flags |= deltaFlagNewSizes
	}
	if d.NewFixed != nil {
		flags |= deltaFlagNewFixed
	}
	if d.NetMap != nil {
		flags |= deltaFlagNetMap
	}
	if d.NewNetCosts != nil {
		flags |= deltaFlagNewNetCosts
	}
	if d.NewNetPins != nil {
		flags |= deltaFlagNewNetPins
	}
	buf = append(buf, flags)
	if d.VertexMap != nil {
		buf = AppendInt32s(buf, d.VertexMap)
	}
	if d.NewWeights != nil {
		buf = AppendInt64s(buf, d.NewWeights)
	}
	if d.NewSizes != nil {
		buf = AppendInt64s(buf, d.NewSizes)
	}
	if d.NewFixed != nil {
		buf = AppendInt32s(buf, d.NewFixed)
	}
	if d.NetMap != nil {
		buf = AppendInt32s(buf, d.NetMap)
	}
	if d.NewNetCosts != nil {
		buf = AppendInt64s(buf, d.NewNetCosts)
	}
	if d.NewNetPins != nil {
		buf = binary.AppendUvarint(buf, uint64(len(d.NewNetPins)))
		for _, pins := range d.NewNetPins {
			buf = AppendInt32s(buf, pins)
		}
	}
	buf = AppendInt32s(buf, d.WeightIDs)
	buf = AppendInt64s(buf, d.WeightVals)
	buf = AppendInt32s(buf, d.SizeIDs)
	buf = AppendInt64s(buf, d.SizeVals)
	buf = AppendInt32s(buf, d.CostIDs)
	buf = AppendInt64s(buf, d.CostVals)
	return buf
}

// DecodeDeltaBinary reads one delta frame from r. Semantic validation
// (map ranges, parallel lengths, ...) stays where it always was — in
// Delta.Apply — so hostile frames that decode structurally still fail the
// same way hostile JSON deltas do.
func DecodeDeltaBinary(r *BinReader) (*Delta, error) {
	tag, err := r.Byte()
	if err != nil {
		return nil, err
	}
	if tag != DeltaFrameVersion {
		return nil, fmt.Errorf("%w: delta frame version %d (want %d)", ErrMalformed, tag, DeltaFrameVersion)
	}
	ver, err := r.Uvarint()
	if err != nil {
		return nil, err
	}
	if ver > 255 {
		return nil, fmt.Errorf("%w: delta version %d out of range", ErrMalformed, ver)
	}
	blen, err := r.Count(256)
	if err != nil {
		return nil, err
	}
	base, err := r.Bytes(blen)
	if err != nil {
		return nil, err
	}
	flags, err := r.Byte()
	if err != nil {
		return nil, err
	}
	const known = deltaFlagVertexMap | deltaFlagNewWeights | deltaFlagNewSizes |
		deltaFlagNewFixed | deltaFlagNetMap | deltaFlagNewNetCosts | deltaFlagNewNetPins
	if flags&^known != 0 {
		return nil, fmt.Errorf("%w: unknown delta flags %#x", ErrMalformed, flags)
	}
	d := &Delta{Version: int(ver), Base: string(base)}
	if flags&deltaFlagVertexMap != 0 {
		if d.VertexMap, err = r.int32s(MaxWireVertices); err != nil {
			return nil, err
		}
	}
	if flags&deltaFlagNewWeights != 0 {
		if d.NewWeights, err = r.int64s(MaxWireVertices); err != nil {
			return nil, err
		}
	}
	if flags&deltaFlagNewSizes != 0 {
		if d.NewSizes, err = r.int64s(MaxWireVertices); err != nil {
			return nil, err
		}
	}
	if flags&deltaFlagNewFixed != 0 {
		if d.NewFixed, err = r.int32s(MaxWireVertices); err != nil {
			return nil, err
		}
	}
	if flags&deltaFlagNetMap != 0 {
		if d.NetMap, err = r.int32s(MaxWireNets); err != nil {
			return nil, err
		}
	}
	if flags&deltaFlagNewNetCosts != 0 {
		if d.NewNetCosts, err = r.int64s(MaxWireNets); err != nil {
			return nil, err
		}
	}
	if flags&deltaFlagNewNetPins != 0 {
		nn, err := r.Count(MaxWireNets)
		if err != nil {
			return nil, err
		}
		d.NewNetPins = make([][]int32, nn)
		for i := range d.NewNetPins {
			if d.NewNetPins[i], err = r.int32s(MaxWirePins); err != nil {
				return nil, err
			}
		}
	}
	sparse32 := func(dst *[]int32, limit int) error {
		xs, err := r.int32s(limit)
		if err != nil {
			return err
		}
		if len(xs) > 0 {
			*dst = xs
		}
		return nil
	}
	sparse64 := func(dst *[]int64, limit int) error {
		xs, err := r.int64s(limit)
		if err != nil {
			return err
		}
		if len(xs) > 0 {
			*dst = xs
		}
		return nil
	}
	if err := sparse32(&d.WeightIDs, MaxWireVertices); err != nil {
		return nil, err
	}
	if err := sparse64(&d.WeightVals, MaxWireVertices); err != nil {
		return nil, err
	}
	if err := sparse32(&d.SizeIDs, MaxWireVertices); err != nil {
		return nil, err
	}
	if err := sparse64(&d.SizeVals, MaxWireVertices); err != nil {
		return nil, err
	}
	if err := sparse32(&d.CostIDs, MaxWireNets); err != nil {
		return nil, err
	}
	if err := sparse64(&d.CostVals, MaxWireNets); err != nil {
		return nil, err
	}
	return d, nil
}
