package hypergraph

import (
	"encoding/json"
	"math/rand"
	"testing"
)

// FuzzDeltaApply drives the delta pipeline two ways from one input:
//
//  1. Trusted path: derive a random base and a chain of random successor
//     hypergraphs from (seed, steps), compute the delta for each hop with
//     ComputeDeltaMapped, apply it, and assert the applied result is
//     fingerprint-identical to the from-scratch rebuild with all CSR
//     invariants intact (Validate).
//  2. Hostile path: decode `raw` as a JSON delta and apply it against the
//     chain's final hypergraph — it must either fail cleanly or yield a
//     hypergraph that passes Validate; it must never panic or produce a
//     structurally broken CSR.
func FuzzDeltaApply(f *testing.F) {
	f.Add(int64(1), uint8(1), []byte(`{}`))
	f.Add(int64(7), uint8(4), []byte(`{"v":1,"base":"x"}`))
	f.Add(int64(42), uint8(8), []byte(`{"v":1,"weight_ids":[0],"weight_vals":[5]}`))
	f.Add(int64(3), uint8(2), []byte(`{"v":1,"vertex_map":[1,0,-1],"net_map":[-1],"new_net_pins":[[0,2]],"new_net_costs":[2]}`))
	f.Fuzz(func(t *testing.T, seed int64, steps uint8, raw []byte) {
		rng := rand.New(rand.NewSource(seed))
		nv := 4 + rng.Intn(30)
		nn := 2 + rng.Intn(40)
		cur := randomHypergraph(rng, nv, nn)
		if err := cur.Validate(); err != nil {
			t.Fatalf("random base invalid: %v", err)
		}
		for i := 0; i < int(steps%8); i++ {
			next := mutateHypergraph(rng, cur)
			d, ok := ComputeDeltaMapped(cur, next, lastVmap)
			if !ok {
				t.Fatalf("step %d: ComputeDeltaMapped refused its own mutation", i)
			}
			// The delta must survive its wire form.
			data, err := json.Marshal(d)
			if err != nil {
				t.Fatal(err)
			}
			var dw Delta
			if err := json.Unmarshal(data, &dw); err != nil {
				t.Fatal(err)
			}
			got, err := dw.Apply(cur)
			if err != nil {
				t.Fatalf("step %d: apply: %v", i, err)
			}
			if got.Fingerprint() != next.Fingerprint() {
				t.Fatalf("step %d: applied fingerprint != rebuilt fingerprint", i)
			}
			if err := got.Validate(); err != nil {
				t.Fatalf("step %d: applied hypergraph invalid: %v", i, err)
			}
			cur = got
		}

		// Hostile delta: arbitrary JSON against the current base.
		var hostile Delta
		if err := json.Unmarshal(raw, &hostile); err != nil {
			return
		}
		hostile.Base = cur.Fingerprint() // get past the fingerprint gate
		got, err := hostile.Apply(cur)
		if err != nil {
			return // clean rejection is fine
		}
		if err := got.Validate(); err != nil {
			t.Fatalf("hostile delta produced invalid hypergraph: %v\ndelta: %s", err, raw)
		}
	})
}
