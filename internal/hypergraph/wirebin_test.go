package hypergraph

import (
	"bytes"
	"errors"
	"math/rand"
	"reflect"
	"strings"
	"testing"
)

// binTestGraphs builds a spread of hypergraphs covering every optional
// section combination: uniform/non-uniform weights and sizes, fixed
// vertices present/absent, single-pin nets, and an empty-net-list graph.
func binTestGraphs() map[string]*Hypergraph {
	plain := NewBuilder(5)
	plain.AddNet(1, 0, 1, 2)
	plain.AddNet(1, 2, 3)
	plain.AddNet(1, 4)

	weighted := NewBuilder(4)
	weighted.SetWeight(0, 7)
	weighted.SetSize(2, 3)
	weighted.AddNet(5, 0, 1)
	weighted.AddNet(2, 1, 2, 3)

	fixed := NewBuilder(6)
	fixed.Fix(0, 0)
	fixed.Fix(5, 2)
	fixed.AddNet(1, 0, 5)
	fixed.AddNet(3, 1, 2, 3, 4)

	noNets := NewBuilder(3)

	return map[string]*Hypergraph{
		"plain":    plain.Build(),
		"weighted": weighted.Build(),
		"fixed":    fixed.Build(),
		"no-nets":  noNets.Build(),
		// randomHypergraph is the delta_test.go helper.
		"random": randomHypergraph(rand.New(rand.NewSource(42)), 200, 300),
	}
}

func sameHypergraph(t *testing.T, want, got *Hypergraph) {
	t.Helper()
	if got.NumVertices() != want.NumVertices() || got.NumNets() != want.NumNets() || got.NumPins() != want.NumPins() {
		t.Fatalf("shape mismatch: got %d/%d/%d vertices/nets/pins, want %d/%d/%d",
			got.NumVertices(), got.NumNets(), got.NumPins(),
			want.NumVertices(), want.NumNets(), want.NumPins())
	}
	if got.Fingerprint() != want.Fingerprint() {
		t.Fatalf("fingerprint mismatch: got %s want %s", got.Fingerprint(), want.Fingerprint())
	}
	for n := 0; n < want.NumNets(); n++ {
		if !bytes.Equal(int32Bytes(got.Pins(n)), int32Bytes(want.Pins(n))) {
			t.Fatalf("net %d pins differ: got %v want %v", n, got.Pins(n), want.Pins(n))
		}
		if got.Cost(n) != want.Cost(n) {
			t.Fatalf("net %d cost differs", n)
		}
	}
	for v := 0; v < want.NumVertices(); v++ {
		if got.Weight(v) != want.Weight(v) || got.Size(v) != want.Size(v) || got.Fixed(v) != want.Fixed(v) {
			t.Fatalf("vertex %d attrs differ", v)
		}
	}
	if got.HasFixed() != want.HasFixed() {
		t.Fatalf("HasFixed: got %v want %v", got.HasFixed(), want.HasFixed())
	}
}

func int32Bytes(xs []int32) []byte {
	out := make([]byte, 0, 4*len(xs))
	for _, x := range xs {
		out = append(out, byte(x), byte(x>>8), byte(x>>16), byte(x>>24))
	}
	return out
}

func TestBinaryRoundTrip(t *testing.T) {
	for name, h := range binTestGraphs() {
		t.Run(name, func(t *testing.T) {
			enc := h.AppendBinary(nil)
			got, fp, err := DecodeBinary(NewBinReader(enc))
			if err != nil {
				t.Fatalf("decode: %v", err)
			}
			if fp != h.Fingerprint() {
				t.Fatalf("decode-time fingerprint %s != %s", fp, h.Fingerprint())
			}
			sameHypergraph(t, h, got)
			// The encoding is canonical: re-encoding the decoded graph
			// reproduces the bytes.
			if !bytes.Equal(got.AppendBinary(nil), enc) {
				t.Fatal("re-encoding differs from original encoding")
			}
		})
	}
}

// TestBinaryUniformElision checks the wire-byte win the codec is built
// around: all-1 weight/size sections are elided behind the flags byte.
func TestBinaryUniformElision(t *testing.T) {
	uniform := NewBuilder(100)
	weighted := NewBuilder(100)
	for v := 0; v < 100; v++ {
		weighted.SetWeight(v, 2)
	}
	for n := 0; n < 50; n++ {
		uniform.AddNet(1, n, n+1)
		weighted.AddNet(1, n, n+1)
	}
	u, w := uniform.Build().AppendBinary(nil), weighted.Build().AppendBinary(nil)
	if len(u) >= len(w) {
		t.Fatalf("uniform graph (%d B) should encode smaller than weighted (%d B)", len(u), len(w))
	}
}

// TestBuildFromWire checks the shared validation path both codecs funnel
// through: Builder-equivalent pin dedup (first occurrence wins), all-Free
// fixed arrays normalized to nil, and nil weight/size defaulting.
func TestBuildFromWire(t *testing.T) {
	// Duplicate pins collapse exactly like Builder.AddNet.
	b := NewBuilder(4)
	b.AddNet(2, 1, 3, 1, 0, 3)
	want := b.Build()
	got, fp, err := BuildFromWire(4, []int64{2}, []int32{5}, []int32{1, 3, 1, 0, 3}, nil, nil, nil)
	if err != nil {
		t.Fatal(err)
	}
	if fp != want.Fingerprint() {
		t.Fatalf("fingerprint %s != %s", fp, want.Fingerprint())
	}
	sameHypergraph(t, want, got)

	// An all-Free fixed array means "no fixed vertices".
	got, _, err = BuildFromWire(3, []int64{1}, []int32{2}, []int32{0, 1}, nil, nil, []int32{Free, Free, Free})
	if err != nil {
		t.Fatal(err)
	}
	if got.HasFixed() {
		t.Fatal("all-Free fixed array should normalize to no fixed vertices")
	}
}

func TestBuildFromWireErrors(t *testing.T) {
	cases := []struct {
		name string
		nv   int
		cost []int64
		size []int32
		pins []int32
		want string
	}{
		{"negative-nv", -1, nil, nil, nil, "num_vertices is negative"},
		{"empty-net", 2, []int64{1}, []int32{0}, nil, "net 0 is empty"},
		{"pin-range", 2, []int64{1}, []int32{1}, []int32{5}, "pin 5 out of range"},
		{"pin-deficit", 2, []int64{1}, []int32{3}, []int32{0, 1}, "nets declare 3 pins, only 2 provided"},
		{"pin-surplus", 2, []int64{1}, []int32{1}, []int32{0, 1}, "nets declare 1 pins, 2 provided"},
		{"negative-cost", 2, []int64{-1}, []int32{1}, []int32{0}, "net 0 has negative cost"},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			_, _, err := BuildFromWire(tc.nv, tc.cost, tc.size, tc.pins, nil, nil, nil)
			if err == nil || !strings.Contains(err.Error(), tc.want) {
				t.Fatalf("got %v, want error containing %q", err, tc.want)
			}
		})
	}
}

// TestDecodeBinaryMalformed feeds the decoder adversarial frames: every
// truncation point of a valid frame, a wrong version byte, unknown flag
// bits, and a length prefix claiming far more elements than the frame
// carries (the alloc-bomb shape) — all must error, never panic, and the
// bomb must be rejected by the length-vs-remaining-bytes check rather
// than by attempting the allocation.
func TestDecodeBinaryMalformed(t *testing.T) {
	h := binTestGraphs()["weighted"]
	enc := h.AppendBinary(nil)
	for i := 0; i < len(enc); i++ {
		if _, _, err := DecodeBinary(NewBinReader(enc[:i])); err == nil {
			t.Fatalf("truncation at %d/%d bytes decoded successfully", i, len(enc))
		}
	}

	bad := append([]byte(nil), enc...)
	bad[0] = 99 // version
	if _, _, err := DecodeBinary(NewBinReader(bad)); err == nil {
		t.Fatal("wrong version byte accepted")
	}

	// nv claims 2^24 vertices in a 3-byte frame: must fail fast on the
	// frame-budget check, not allocate gigabytes.
	bomb := []byte{BinaryFrameVersion, 0x80, 0x80, 0x80, 0x08, 0, 0, 0}
	if _, _, err := DecodeBinary(NewBinReader(bomb)); err == nil {
		t.Fatal("vertex-count bomb accepted")
	}

	// Pin-count prefix larger than the remaining bytes.
	var pinBomb []byte
	pinBomb = append(pinBomb, BinaryFrameVersion, 2, 1)             // nv=2, nn=1
	pinBomb = append(pinBomb, 0xFF, 0xFF, 0xFF, 0xFF, 0x07)        // np bomb
	if _, _, err := DecodeBinary(NewBinReader(pinBomb)); err == nil {
		t.Fatal("pin-count bomb accepted")
	}
}

func TestDeltaBinaryRoundTrip(t *testing.T) {
	deltas := map[string]*Delta{
		"identity": {Version: DeltaVersion, Base: "hbfp1:abc"},
		"sparse": {
			Version: DeltaVersion, Base: "hbfp1:abc",
			WeightIDs: []int32{0, 3}, WeightVals: []int64{5, 9},
			CostIDs: []int32{1}, CostVals: []int64{7},
		},
		"structural": {
			Version: DeltaVersion, Base: "hbfp1:def",
			VertexMap:  []int32{0, 2, -1},
			NewWeights: []int64{4}, NewSizes: []int64{2}, NewFixed: []int32{Free},
			NetMap:      []int32{0, -1},
			NewNetCosts: []int64{3}, NewNetPins: [][]int32{{0, 2}},
		},
	}
	for name, d := range deltas {
		t.Run(name, func(t *testing.T) {
			enc := d.AppendBinary(nil)
			got, err := DecodeDeltaBinary(NewBinReader(enc))
			if err != nil {
				t.Fatalf("decode: %v", err)
			}
			if !reflect.DeepEqual(d, got) {
				t.Fatalf("round trip mismatch:\n got %+v\nwant %+v", got, d)
			}
			if d.Digest() != got.Digest() {
				t.Fatal("digest changed across round trip")
			}
			// Nil-ness is load-bearing (Identity(), Digest()): it must
			// survive the wire exactly.
			if (d.VertexMap == nil) != (got.VertexMap == nil) || (d.NetMap == nil) != (got.NetMap == nil) {
				t.Fatal("map nil-ness not preserved")
			}
			for i := 0; i < len(enc); i++ {
				if _, err := DecodeDeltaBinary(NewBinReader(enc[:i])); err == nil {
					t.Fatalf("truncation at %d/%d bytes decoded successfully", i, len(enc))
				}
			}
		})
	}
}

// TestDeltaBinaryMatchesApply encodes a computed delta, decodes it, and
// applies both to the base: results must be fingerprint-identical.
func TestDeltaBinaryMatchesApply(t *testing.T) {
	rng := rand.New(rand.NewSource(7))
	base := randomHypergraph(rng, 60, 90)
	drift := base.Clone()
	d, ok := ComputeDelta(base, drift)
	if !ok {
		t.Fatal("identity delta not computable")
	}
	got, err := DecodeDeltaBinary(NewBinReader(d.AppendBinary(nil)))
	if err != nil {
		t.Fatal(err)
	}
	a, err := d.Apply(base)
	if err != nil {
		t.Fatal(err)
	}
	b, err := got.Apply(base)
	if err != nil {
		t.Fatal(err)
	}
	if a.Fingerprint() != b.Fingerprint() {
		t.Fatal("wire round trip changed the delta's effect")
	}
}

func TestBinReaderTruncationErrors(t *testing.T) {
	r := NewBinReader(nil)
	if _, err := r.Byte(); !errors.Is(err, ErrTruncated) {
		t.Fatalf("Byte on empty reader: %v", err)
	}
	if _, err := NewBinReader([]byte{0x80}).Uvarint(); err == nil {
		t.Fatal("dangling varint continuation accepted")
	}
}

// FuzzBinaryCodec exercises both frame decoders on arbitrary input. The
// parsers must never panic, and any frame that decodes successfully must
// re-encode canonically: encode(decode(data)) decodes to the same
// fingerprint and re-encodes to identical bytes.
func FuzzBinaryCodec(f *testing.F) {
	for _, h := range binTestGraphs() {
		f.Add(h.AppendBinary(nil))
	}
	d := Delta{Version: DeltaVersion, Base: "hbfp1:seed", WeightIDs: []int32{1}, WeightVals: []int64{3}}
	f.Add(d.AppendBinary(nil))
	f.Add([]byte{BinaryFrameVersion, 0x80, 0x80, 0x80, 0x08})
	f.Fuzz(func(t *testing.T, data []byte) {
		if h, fp, err := DecodeBinary(NewBinReader(data)); err == nil {
			enc := h.AppendBinary(nil)
			h2, fp2, err := DecodeBinary(NewBinReader(enc))
			if err != nil {
				t.Fatalf("re-decode failed: %v", err)
			}
			if fp2 != fp {
				t.Fatalf("fingerprint drifted across round trip: %s != %s", fp2, fp)
			}
			if !bytes.Equal(h2.AppendBinary(nil), enc) {
				t.Fatal("encoding not canonical")
			}
		}
		if d, err := DecodeDeltaBinary(NewBinReader(data)); err == nil {
			enc := d.AppendBinary(nil)
			d2, err := DecodeDeltaBinary(NewBinReader(enc))
			if err != nil {
				t.Fatalf("delta re-decode failed: %v", err)
			}
			if d.Digest() != d2.Digest() {
				t.Fatal("delta digest drifted across round trip")
			}
		}
	})
}
