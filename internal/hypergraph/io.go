package hypergraph

import (
	"bufio"
	"fmt"
	"io"
	"strconv"
	"strings"
)

// The text format is a superset of the classic hMETIS format:
//
//	% comment lines start with '%'
//	<numNets> <numVertices> [fmtcode]
//	<net lines: [cost] v1 v2 ... (1-based vertex ids)>
//	<vertex weight lines, one per vertex, if fmtcode has weights>
//	<vertex size lines, one per vertex, if fmtcode has sizes>
//
// fmtcode is a string of flags: "1" net costs present, "10" vertex weights
// present, "11" both, and hyperbal's extension "111" adds vertex sizes.

// WriteText serializes h in the text format described above. Fixed-vertex
// labels are not serialized; they are runtime state.
func WriteText(w io.Writer, h *Hypergraph) error {
	bw := bufio.NewWriter(w)
	fmt.Fprintf(bw, "%% hyperbal hypergraph: %d nets %d vertices %d pins\n",
		h.NumNets(), h.NumVertices(), h.NumPins())
	fmt.Fprintf(bw, "%d %d 111\n", h.NumNets(), h.NumVertices())
	for n := 0; n < h.NumNets(); n++ {
		fmt.Fprintf(bw, "%d", h.Cost(n))
		for _, v := range h.Pins(n) {
			fmt.Fprintf(bw, " %d", v+1)
		}
		fmt.Fprintln(bw)
	}
	for v := 0; v < h.NumVertices(); v++ {
		fmt.Fprintln(bw, h.Weight(v))
	}
	for v := 0; v < h.NumVertices(); v++ {
		fmt.Fprintln(bw, h.Size(v))
	}
	return bw.Flush()
}

// ReadText parses the text format written by WriteText (and plain hMETIS
// files with fmtcodes "", "1", "10", "11").
func ReadText(r io.Reader) (*Hypergraph, error) {
	sc := bufio.NewScanner(r)
	sc.Buffer(make([]byte, 1<<20), 1<<26)
	line, err := nextLine(sc)
	if err != nil {
		return nil, fmt.Errorf("hypergraph: missing header: %w", err)
	}
	fields := strings.Fields(line)
	if len(fields) < 2 {
		return nil, fmt.Errorf("hypergraph: bad header %q", line)
	}
	numNets, err := strconv.Atoi(fields[0])
	if err != nil {
		return nil, fmt.Errorf("hypergraph: bad net count: %w", err)
	}
	numVertices, err := strconv.Atoi(fields[1])
	if err != nil {
		return nil, fmt.Errorf("hypergraph: bad vertex count: %w", err)
	}
	if numNets < 0 || numVertices < 0 {
		return nil, fmt.Errorf("hypergraph: negative counts in header %q", line)
	}
	fmtcode := ""
	if len(fields) >= 3 {
		fmtcode = fields[2]
	}
	hasCosts := strings.HasSuffix(fmtcode, "1")
	hasWeights := len(fmtcode) >= 2 && fmtcode[len(fmtcode)-2] == '1'
	hasSizes := len(fmtcode) >= 3 && fmtcode[len(fmtcode)-3] == '1'

	b := NewBuilder(numVertices)
	for n := 0; n < numNets; n++ {
		line, err := nextLine(sc)
		if err != nil {
			return nil, fmt.Errorf("hypergraph: net %d: %w", n, err)
		}
		nums, err := parseInts(line)
		if err != nil {
			return nil, fmt.Errorf("hypergraph: net %d: %w", n, err)
		}
		cost := int64(1)
		if hasCosts {
			if len(nums) < 1 {
				return nil, fmt.Errorf("hypergraph: net %d: missing cost", n)
			}
			cost = nums[0]
			nums = nums[1:]
		}
		if len(nums) == 0 {
			return nil, fmt.Errorf("hypergraph: net %d is empty", n)
		}
		pins := make([]int, len(nums))
		for i, x := range nums {
			if x < 1 || x > int64(numVertices) {
				return nil, fmt.Errorf("hypergraph: net %d: pin %d out of range", n, x)
			}
			pins[i] = int(x - 1)
		}
		b.AddNet(cost, pins...)
	}
	if hasWeights {
		for v := 0; v < numVertices; v++ {
			x, err := readOneInt(sc)
			if err != nil {
				return nil, fmt.Errorf("hypergraph: weight of vertex %d: %w", v, err)
			}
			b.SetWeight(v, x)
		}
	}
	if hasSizes {
		for v := 0; v < numVertices; v++ {
			x, err := readOneInt(sc)
			if err != nil {
				return nil, fmt.Errorf("hypergraph: size of vertex %d: %w", v, err)
			}
			b.SetSize(v, x)
		}
	}
	return b.Build(), nil
}

func nextLine(sc *bufio.Scanner) (string, error) {
	for sc.Scan() {
		line := strings.TrimSpace(sc.Text())
		if line == "" || strings.HasPrefix(line, "%") {
			continue
		}
		return line, nil
	}
	if err := sc.Err(); err != nil {
		return "", err
	}
	return "", io.ErrUnexpectedEOF
}

func parseInts(line string) ([]int64, error) {
	fields := strings.Fields(line)
	out := make([]int64, len(fields))
	for i, f := range fields {
		x, err := strconv.ParseInt(f, 10, 64)
		if err != nil {
			return nil, err
		}
		out[i] = x
	}
	return out, nil
}

func readOneInt(sc *bufio.Scanner) (int64, error) {
	line, err := nextLine(sc)
	if err != nil {
		return 0, err
	}
	return strconv.ParseInt(strings.Fields(line)[0], 10, 64)
}
