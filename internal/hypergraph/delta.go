package hypergraph

import (
	"crypto/sha256"
	"encoding/binary"
	"encoding/hex"
	"errors"
	"fmt"
)

// The delta epoch format: instead of shipping a full hypergraph every
// epoch, a client ships the difference against the previous epoch's
// hypergraph, identified by its content fingerprint. A Delta is exact: for
// a well-formed delta, Apply(base) produces a hypergraph byte-identical
// (fingerprint-equal) to the epoch hypergraph the delta was computed from,
// so delta-applied and full submissions are interchangeable everywhere a
// fingerprint is a key (the balancerd partition cache in particular).
//
// The format expresses every transition the paper's dynamics produce:
//
//   - pure weight/size drift (simulated AMR): sparse per-vertex updates,
//     nil maps — the wire cost is proportional to the drift, not |H|;
//   - net cost drift: sparse per-net updates;
//   - structural churn (vertex deletion/reappearance, net add/remove):
//     explicit vertex/net maps from the new index space to the base,
//     with full definitions only for genuinely new vertices and nets.
//
// Mapped nets inherit the base net's pins translated through the vertex
// map, dropping pins whose vertex left the problem — the common "net
// shrinks because a member vertex disappeared" case costs four bytes, not
// a pin list. A mapped net that would lose all pins is invalid; such nets
// must simply be left unmapped (removed).
//
// Deltas carry the base fingerprint and Apply enforces it: a mismatch
// returns ErrBaseMismatch, the signal for the caller to fall back to a
// full resync (ship the whole hypergraph). The struct is its own wire
// form (JSON tags); Version guards format evolution.

// DeltaVersion is the current delta wire format version.
const DeltaVersion = 1

// ErrBaseMismatch reports that a delta was applied against a hypergraph
// whose fingerprint differs from the delta's base — the caller must fall
// back to a full resync.
var ErrBaseMismatch = errors.New("hypergraph: delta base fingerprint mismatch")

// IsBaseMismatch reports whether err is (or wraps) ErrBaseMismatch.
func IsBaseMismatch(err error) bool { return errors.Is(err, ErrBaseMismatch) }

// Delta describes the transition from a base hypergraph to a successor.
// The zero value (plus Version and Base) is the empty delta: applying it
// reproduces the base exactly.
type Delta struct {
	// Version is the wire format version (DeltaVersion).
	Version int `json:"v"`
	// Base is the fingerprint of the hypergraph the delta applies to.
	Base string `json:"base"`

	// VertexMap, when non-nil, defines the successor's vertex set: entry i
	// is the base vertex that becomes vertex i, or -1 for a brand-new
	// vertex. Base vertices may appear at most once; omitted base vertices
	// are removed. Nil means the identity map (vertex set unchanged).
	VertexMap []int32 `json:"vertex_map,omitempty"`
	// NewWeights / NewSizes / NewFixed give the weight, size and fixed
	// label of each -1 entry of VertexMap, in order of appearance. Nil
	// NewWeights/NewSizes default to 1; nil NewFixed means all free.
	NewWeights []int64 `json:"new_weights,omitempty"`
	NewSizes   []int64 `json:"new_sizes,omitempty"`
	NewFixed   []int32 `json:"new_fixed,omitempty"`

	// NetMap, when non-nil, defines the successor's net list: entry i is
	// the base net that becomes net i, or -1 for a new net. A mapped net
	// keeps the base net's cost and its pins translated through VertexMap
	// (pins of removed vertices are dropped; at least one must survive).
	// Nil means the identity map (every base net kept, in order).
	NetMap []int32 `json:"net_map,omitempty"`
	// NewNetCosts / NewNetPins define each -1 entry of NetMap, in order.
	// Pins are successor vertex ids, duplicate-free.
	NewNetCosts []int64   `json:"new_net_costs,omitempty"`
	NewNetPins  [][]int32 `json:"new_net_pins,omitempty"`

	// Sparse overrides, applied after the maps, in successor ids with
	// strictly increasing ids (the canonical order; Apply enforces it so
	// a delta has exactly one wire form).
	WeightIDs  []int32 `json:"weight_ids,omitempty"`
	WeightVals []int64 `json:"weight_vals,omitempty"`
	SizeIDs    []int32 `json:"size_ids,omitempty"`
	SizeVals   []int64 `json:"size_vals,omitempty"`
	CostIDs    []int32 `json:"cost_ids,omitempty"`
	CostVals   []int64 `json:"cost_vals,omitempty"`
}

// Identity reports whether the delta keeps the base structure unchanged
// (both maps nil): only weights, sizes and costs may differ.
func (d *Delta) Identity() bool { return d.VertexMap == nil && d.NetMap == nil }

// NumNew returns the number of brand-new vertices and nets the delta
// introduces.
func (d *Delta) NumNew() (vertices, nets int) {
	for _, b := range d.VertexMap {
		if b < 0 {
			vertices++
		}
	}
	for _, b := range d.NetMap {
		if b < 0 {
			nets++
		}
	}
	return
}

// validate checks the delta's internal consistency against the base shape
// (it does not touch base pins; Apply does that while translating).
func (d *Delta) validate(baseV, baseN int) error {
	if d.Version != DeltaVersion {
		return fmt.Errorf("hypergraph: unsupported delta version %d (want %d)", d.Version, DeltaVersion)
	}
	newV, newN := d.NumNew()
	if d.VertexMap == nil && (len(d.NewWeights) > 0 || len(d.NewSizes) > 0 || len(d.NewFixed) > 0) {
		return fmt.Errorf("hypergraph: delta has new-vertex attributes but no vertex map")
	}
	if d.VertexMap != nil {
		seen := make([]bool, baseV)
		for i, b := range d.VertexMap {
			if b < -1 || int(b) >= baseV {
				return fmt.Errorf("hypergraph: vertex_map[%d] = %d out of range [-1,%d)", i, b, baseV)
			}
			if b >= 0 {
				if seen[b] {
					return fmt.Errorf("hypergraph: vertex_map lists base vertex %d twice", b)
				}
				seen[b] = true
			}
		}
		if len(d.NewWeights) != 0 && len(d.NewWeights) != newV {
			return fmt.Errorf("hypergraph: %d new_weights for %d new vertices", len(d.NewWeights), newV)
		}
		if len(d.NewSizes) != 0 && len(d.NewSizes) != newV {
			return fmt.Errorf("hypergraph: %d new_sizes for %d new vertices", len(d.NewSizes), newV)
		}
		if len(d.NewFixed) != 0 && len(d.NewFixed) != newV {
			return fmt.Errorf("hypergraph: %d new_fixed for %d new vertices", len(d.NewFixed), newV)
		}
	}
	if d.NetMap == nil && (len(d.NewNetCosts) > 0 || len(d.NewNetPins) > 0) {
		return fmt.Errorf("hypergraph: delta has new-net definitions but no net map")
	}
	if d.NetMap != nil {
		seen := make([]bool, baseN)
		for i, b := range d.NetMap {
			if b < -1 || int(b) >= baseN {
				return fmt.Errorf("hypergraph: net_map[%d] = %d out of range [-1,%d)", i, b, baseN)
			}
			if b >= 0 {
				if seen[b] {
					return fmt.Errorf("hypergraph: net_map lists base net %d twice", b)
				}
				seen[b] = true
			}
		}
		if len(d.NewNetCosts) != newN {
			return fmt.Errorf("hypergraph: %d new_net_costs for %d new nets", len(d.NewNetCosts), newN)
		}
		if len(d.NewNetPins) != newN {
			return fmt.Errorf("hypergraph: %d new_net_pins for %d new nets", len(d.NewNetPins), newN)
		}
	}
	resV := baseV
	if d.VertexMap != nil {
		resV = len(d.VertexMap)
	}
	resN := baseN
	if d.NetMap != nil {
		resN = len(d.NetMap)
	}
	if err := checkSparse("weight", d.WeightIDs, d.WeightVals, resV); err != nil {
		return err
	}
	if err := checkSparse("size", d.SizeIDs, d.SizeVals, resV); err != nil {
		return err
	}
	if err := checkSparse("cost", d.CostIDs, d.CostVals, resN); err != nil {
		return err
	}
	return nil
}

// checkSparse validates one sparse update stream: parallel lengths,
// strictly increasing in-range ids, non-negative values.
func checkSparse(kind string, ids []int32, vals []int64, n int) error {
	if len(ids) != len(vals) {
		return fmt.Errorf("hypergraph: %d %s_ids for %d %s_vals", len(ids), kind, len(vals), kind)
	}
	prev := int32(-1)
	for i, id := range ids {
		if id < 0 || int(id) >= n {
			return fmt.Errorf("hypergraph: %s_ids[%d] = %d out of range [0,%d)", kind, i, id, n)
		}
		if id <= prev {
			return fmt.Errorf("hypergraph: %s_ids not strictly increasing at index %d", kind, i)
		}
		prev = id
		if vals[i] < 0 {
			return fmt.Errorf("hypergraph: %s_vals[%d] = %d is negative", kind, i, vals[i])
		}
	}
	return nil
}

// Apply materializes the successor hypergraph. It verifies the base
// fingerprint first (ErrBaseMismatch on disagreement — the full-resync
// signal) and builds the result CSR directly, so the cost is O(|result|)
// with no per-net map allocations. The result's fingerprint equals the
// fingerprint of the hypergraph the delta was computed from.
func (d *Delta) Apply(base *Hypergraph) (*Hypergraph, error) {
	if got := base.Fingerprint(); got != d.Base {
		return nil, fmt.Errorf("%w: delta base %s, hypergraph is %s", ErrBaseMismatch, d.Base, got)
	}
	return d.apply(base)
}

// apply is Apply without the fingerprint gate (for callers that already
// verified it, and for the fuzz harness that wants to exercise arbitrary
// bases).
func (d *Delta) apply(base *Hypergraph) (*Hypergraph, error) {
	baseV, baseN := base.NumVertices(), base.NumNets()
	if err := d.validate(baseV, baseN); err != nil {
		return nil, err
	}

	// Vertex space: forward map base -> successor.
	resV := baseV
	var fwd []int32
	if d.VertexMap != nil {
		resV = len(d.VertexMap)
		fwd = make([]int32, baseV)
		for i := range fwd {
			fwd[i] = -1
		}
		for i, b := range d.VertexMap {
			if b >= 0 {
				fwd[b] = int32(i)
			}
		}
	}

	weights := make([]int64, resV)
	sizes := make([]int64, resV)
	fixed := make([]int32, resV)
	hasFixed := false
	newIdx := 0
	for v := 0; v < resV; v++ {
		b := int32(v)
		if d.VertexMap != nil {
			b = d.VertexMap[v]
		}
		if b >= 0 {
			weights[v] = base.Weight(int(b))
			sizes[v] = base.Size(int(b))
			fixed[v] = base.Fixed(int(b))
		} else {
			weights[v], sizes[v] = 1, 1
			if d.NewWeights != nil {
				weights[v] = d.NewWeights[newIdx]
			}
			if d.NewSizes != nil {
				sizes[v] = d.NewSizes[newIdx]
			}
			fixed[v] = Free
			if d.NewFixed != nil {
				fixed[v] = d.NewFixed[newIdx]
			}
			newIdx++
		}
		if fixed[v] < Free {
			return nil, fmt.Errorf("hypergraph: vertex %d has invalid fixed label %d", v, fixed[v])
		}
		if fixed[v] != Free {
			hasFixed = true
		}
		if weights[v] < 0 || sizes[v] < 0 {
			return nil, fmt.Errorf("hypergraph: vertex %d has negative weight or size", v)
		}
	}

	// Net space: translate mapped nets, splice in new ones.
	resN := baseN
	if d.NetMap != nil {
		resN = len(d.NetMap)
	}
	netStart := make([]int32, 1, resN+1)
	netPins := make([]int32, 0, base.NumPins())
	costs := make([]int64, resN)
	newNet := 0
	seen := make(map[int32]struct{}, 16)
	for n := 0; n < resN; n++ {
		b := int32(n)
		if d.NetMap != nil {
			b = d.NetMap[n]
		}
		if b >= 0 {
			costs[n] = base.Cost(int(b))
			before := len(netPins)
			for _, p := range base.Pins(int(b)) {
				np := p
				if fwd != nil {
					np = fwd[p]
				}
				if np >= 0 {
					netPins = append(netPins, np)
				}
			}
			if len(netPins) == before {
				return nil, fmt.Errorf("hypergraph: mapped net %d (base %d) loses all pins; remove it instead", n, b)
			}
		} else {
			costs[n] = d.NewNetCosts[newNet]
			pins := d.NewNetPins[newNet]
			newNet++
			if costs[n] < 0 {
				return nil, fmt.Errorf("hypergraph: new net %d has negative cost %d", n, costs[n])
			}
			if len(pins) == 0 {
				return nil, fmt.Errorf("hypergraph: new net %d is empty", n)
			}
			clear(seen)
			for _, p := range pins {
				if p < 0 || int(p) >= resV {
					return nil, fmt.Errorf("hypergraph: new net %d: pin %d out of range [0,%d)", n, p, resV)
				}
				if _, dup := seen[p]; dup {
					return nil, fmt.Errorf("hypergraph: new net %d has duplicate pin %d", n, p)
				}
				seen[p] = struct{}{}
				netPins = append(netPins, p)
			}
		}
		netStart = append(netStart, int32(len(netPins)))
	}

	// Sparse overrides (validated in-range and ordered above).
	for i, id := range d.WeightIDs {
		weights[id] = d.WeightVals[i]
	}
	for i, id := range d.SizeIDs {
		sizes[id] = d.SizeVals[i]
	}
	for i, id := range d.CostIDs {
		costs[id] = d.CostVals[i]
	}

	var fx []int32
	if hasFixed {
		fx = fixed
	}
	return FromCSR(netStart, netPins, costs, weights, sizes, fx), nil
}

// Digest returns a stable content hash of the delta — combined with the
// base fingerprint it keys delta-epoch caches without materializing the
// applied hypergraph. The encoding is section-tagged and length-prefixed
// like Fingerprint's.
func (d *Delta) Digest() string {
	hw := sha256.New()
	var buf [8]byte
	put32 := func(tag byte, xs []int32) {
		hw.Write([]byte{tag})
		binary.LittleEndian.PutUint64(buf[:], uint64(len(xs)))
		hw.Write(buf[:])
		for _, x := range xs {
			binary.LittleEndian.PutUint32(buf[:4], uint32(x))
			hw.Write(buf[:4])
		}
	}
	put64 := func(tag byte, xs []int64) {
		hw.Write([]byte{tag})
		binary.LittleEndian.PutUint64(buf[:], uint64(len(xs)))
		hw.Write(buf[:])
		for _, x := range xs {
			binary.LittleEndian.PutUint64(buf[:], uint64(x))
			hw.Write(buf[:])
		}
	}
	fmt.Fprintf(hw, "hyperbal-delta-v%d;base=%s;", d.Version, d.Base)
	if d.VertexMap != nil {
		put32('V', d.VertexMap)
		put64('w', d.NewWeights)
		put64('s', d.NewSizes)
		put32('f', d.NewFixed)
	}
	if d.NetMap != nil {
		put32('N', d.NetMap)
		put64('c', d.NewNetCosts)
		hw.Write([]byte{'P'})
		binary.LittleEndian.PutUint64(buf[:], uint64(len(d.NewNetPins)))
		hw.Write(buf[:])
		for _, pins := range d.NewNetPins {
			put32('p', pins)
		}
	}
	put32('W', d.WeightIDs)
	put64('X', d.WeightVals)
	put32('S', d.SizeIDs)
	put64('Y', d.SizeVals)
	put32('C', d.CostIDs)
	put64('Z', d.CostVals)
	sum := hw.Sum(nil)
	return "hbdd1:" + hex.EncodeToString(sum)
}

// DirtyVertices marks the successor vertices whose local neighborhood the
// delta touched: brand-new vertices, vertices with weight or size
// overrides, and every pin of a changed net (new, cost-updated, or mapped
// with fewer pins than its base net — a neighbor vanished). The warm-start
// partitioner confines re-refinement to this set plus a one-hop halo.
func (d *Delta) DirtyVertices(base, result *Hypergraph) []bool {
	dirty := make([]bool, result.NumVertices())
	for v, b := range d.VertexMap {
		if b < 0 {
			dirty[v] = true
		}
	}
	for _, id := range d.WeightIDs {
		dirty[id] = true
	}
	for _, id := range d.SizeIDs {
		dirty[id] = true
	}
	markNet := func(n int) {
		for _, p := range result.Pins(n) {
			dirty[p] = true
		}
	}
	for _, id := range d.CostIDs {
		markNet(int(id))
	}
	for n := 0; n < result.NumNets(); n++ {
		b := int32(n)
		if d.NetMap != nil {
			b = d.NetMap[n]
		}
		if b < 0 {
			markNet(n)
		} else if result.NetSize(n) != base.NetSize(int(b)) {
			markNet(n)
		}
	}
	// Removed nets dirty their surviving pins too: a vertex that lost a
	// net changed its connectivity even though the net has no successor to
	// mark it through.
	if d.NetMap != nil {
		fwd := make([]int32, base.NumVertices())
		if d.VertexMap == nil {
			for v := range fwd {
				fwd[v] = int32(v)
			}
		} else {
			for v := range fwd {
				fwd[v] = -1
			}
			for v, b := range d.VertexMap {
				if b >= 0 {
					fwd[b] = int32(v)
				}
			}
		}
		mapped := make([]bool, base.NumNets())
		for _, b := range d.NetMap {
			if b >= 0 {
				mapped[b] = true
			}
		}
		for bn := 0; bn < base.NumNets(); bn++ {
			if mapped[bn] {
				continue
			}
			for _, p := range base.Pins(bn) {
				if f := fwd[p]; f >= 0 {
					dirty[f] = true
				}
			}
		}
	}
	return dirty
}

// ComputeDelta diffs two hypergraphs under the identity vertex
// correspondence: successor vertex i is base vertex i. It covers the pure
// drift cases (weights, sizes, costs) and net add/remove over an unchanged
// vertex set. It returns ok=false when the vertex counts differ — use
// ComputeDeltaMapped with an explicit correspondence for structural churn.
func ComputeDelta(base, next *Hypergraph) (*Delta, bool) {
	if base.NumVertices() != next.NumVertices() {
		return nil, false
	}
	vmap := make([]int32, next.NumVertices())
	for i := range vmap {
		vmap[i] = int32(i)
	}
	return ComputeDeltaMapped(base, next, vmap)
}

// ComputeDeltaMapped diffs two hypergraphs given the vertex
// correspondence vmap: vmap[i] is the base vertex that became successor
// vertex i, or -1 for a new vertex. It returns ok=false when the
// transition is not expressible as a delta (non-injective map, or fixed
// labels of surviving vertices changed). Nets are matched by translated
// pin sequence, so any net whose pin list equals a base net's surviving
// pins (in order) rides the map for free; everything else ships as a new
// net. The produced delta is canonical: applying it to base yields a
// hypergraph fingerprint-identical to next.
func ComputeDeltaMapped(base, next *Hypergraph, vmap []int32) (*Delta, bool) {
	if len(vmap) != next.NumVertices() {
		return nil, false
	}
	baseV := base.NumVertices()
	fwd := make([]int32, baseV)
	for i := range fwd {
		fwd[i] = -1
	}
	identityV := len(vmap) == baseV
	for i, b := range vmap {
		if b < -1 {
			return nil, false
		}
		if b < 0 {
			identityV = false
			continue
		}
		if int(b) >= baseV || fwd[b] >= 0 {
			return nil, false // out of range or non-injective
		}
		fwd[b] = int32(i)
		if int(b) != i {
			identityV = false
		}
		if base.Fixed(int(b)) != next.Fixed(i) {
			return nil, false // fixed-label changes are not expressible
		}
	}

	d := &Delta{Version: DeltaVersion, Base: base.Fingerprint()}
	if !identityV {
		d.VertexMap = append([]int32(nil), vmap...)
	}

	// New-vertex attributes and sparse overrides for survivors.
	for i := 0; i < next.NumVertices(); i++ {
		b := vmap[i]
		if b < 0 {
			d.NewWeights = append(d.NewWeights, next.Weight(i))
			d.NewSizes = append(d.NewSizes, next.Size(i))
			if next.Fixed(i) != Free {
				return nil, false // new fixed vertices: ship a full epoch
			}
			continue
		}
		if base.Weight(int(b)) != next.Weight(i) {
			d.WeightIDs = append(d.WeightIDs, int32(i))
			d.WeightVals = append(d.WeightVals, next.Weight(i))
		}
		if base.Size(int(b)) != next.Size(i) {
			d.SizeIDs = append(d.SizeIDs, int32(i))
			d.SizeVals = append(d.SizeVals, next.Size(i))
		}
	}
	if nv, _ := d.NumNew(); nv == 0 {
		d.NewWeights, d.NewSizes = nil, nil
	}

	// Net matching: index base nets by their translated pin sequence.
	// Matching is first-come within equal sequences, so it is deterministic
	// and each base net is used at most once.
	type candidate struct {
		id   int32
		pins []int32 // translated, in base pin order
	}
	sigs := make(map[uint64][]candidate, base.NumNets())
	var tbuf []int32
	for n := 0; n < base.NumNets(); n++ {
		tbuf = tbuf[:0]
		for _, p := range base.Pins(n) {
			if np := fwd[p]; np >= 0 {
				tbuf = append(tbuf, np)
			}
		}
		if len(tbuf) == 0 {
			continue // net vanishes entirely; never matchable
		}
		sig := pinSig(tbuf)
		sigs[sig] = append(sigs[sig], candidate{id: int32(n), pins: append([]int32(nil), tbuf...)})
	}
	used := make(map[uint64]int, len(sigs)) // consumed prefix per signature

	netMap := make([]int32, next.NumNets())
	identityN := next.NumNets() == base.NumNets()
	for n := 0; n < next.NumNets(); n++ {
		pins := next.Pins(n)
		sig := pinSig(pins)
		match := int32(-1)
		cands := sigs[sig]
		for i := used[sig]; i < len(cands); i++ {
			if pinsEqual(cands[i].pins, pins) {
				match = cands[i].id
				// Consume this candidate and everything before it stays
				// consumed; swap-free: advance only when it is the next one.
				if i == used[sig] {
					used[sig] = i + 1
				} else {
					// Preserve order by compacting the slice.
					copy(cands[i:], cands[i+1:])
					sigs[sig] = cands[:len(cands)-1]
				}
				break
			}
		}
		netMap[n] = match
		if match >= 0 {
			if int(match) != n {
				identityN = false
			}
			if base.Cost(int(match)) != next.Cost(n) {
				d.CostIDs = append(d.CostIDs, int32(n))
				d.CostVals = append(d.CostVals, next.Cost(n))
			}
		} else {
			identityN = false
			d.NewNetCosts = append(d.NewNetCosts, next.Cost(n))
			d.NewNetPins = append(d.NewNetPins, append([]int32(nil), pins...))
		}
	}
	if !identityN {
		d.NetMap = netMap
	}
	return d, true
}

// pinSig hashes a pin sequence (FNV-1a over the raw ids); collisions are
// resolved by exact comparison in ComputeDeltaMapped.
func pinSig(pins []int32) uint64 {
	h := uint64(14695981039346656037)
	for _, p := range pins {
		h ^= uint64(uint32(p))
		h *= 1099511628211
	}
	return h
}

func pinsEqual(a, b []int32) bool {
	if len(a) != len(b) {
		return false
	}
	for i := range a {
		if a[i] != b[i] {
			return false
		}
	}
	return true
}

// VertexMapFromIDs derives a base→successor VertexMap from per-epoch
// stable-id lists: baseIDs[i] is the stable id of base vertex i, nextIDs[j]
// the stable id of successor vertex j, both strictly increasing. The result
// has one entry per successor vertex: the base index carrying the same id,
// or -1 when the id is absent from the base (a new vertex). This is the
// shape produced by structural dynamics that track an "alive" list of
// original-graph vertices per epoch.
func VertexMapFromIDs(baseIDs, nextIDs []int32) []int32 {
	vmap := make([]int32, len(nextIDs))
	i := 0
	for j, id := range nextIDs {
		for i < len(baseIDs) && baseIDs[i] < id {
			i++
		}
		if i < len(baseIDs) && baseIDs[i] == id {
			vmap[j] = int32(i)
		} else {
			vmap[j] = -1
		}
	}
	return vmap
}
