package hypergraph_test

// Property tests for the content fingerprint (external test package so we
// can drive it with the Table-1 dataset analogues from internal/datasets).

import (
	"bytes"
	"strings"
	"testing"

	"hyperbal/internal/datasets"
	"hyperbal/internal/graph"
	"hyperbal/internal/hypergraph"
)

// TestFingerprintRoundTripStable: WriteText -> ReadText must preserve the
// fingerprint for every dataset analogue. This is the property the server's
// partition cache depends on: a hypergraph that round-trips through any
// serialization must hash to the same cache key. (The analogues carry no
// fixed labels; WriteText deliberately does not serialize fixed labels,
// which are runtime state, so fixed hypergraphs are out of scope here.)
func TestFingerprintRoundTripStable(t *testing.T) {
	for _, name := range datasets.Names() {
		t.Run(name, func(t *testing.T) {
			g, err := datasets.Generate(name, 400, 7)
			if err != nil {
				t.Fatal(err)
			}
			h := graph.ToHypergraph(g)
			fp := h.Fingerprint()
			if !strings.HasPrefix(fp, "hbfp1:") {
				t.Fatalf("fingerprint missing version prefix: %q", fp)
			}

			var buf bytes.Buffer
			if err := hypergraph.WriteText(&buf, h); err != nil {
				t.Fatal(err)
			}
			h2, err := hypergraph.ReadText(&buf)
			if err != nil {
				t.Fatal(err)
			}
			if fp2 := h2.Fingerprint(); fp2 != fp {
				t.Errorf("fingerprint changed across WriteText/ReadText: %s -> %s", fp, fp2)
			}
			// Clone must also be identity-stable.
			if fp3 := h.Clone().Fingerprint(); fp3 != fp {
				t.Errorf("fingerprint changed across Clone: %s -> %s", fp, fp3)
			}
			// And deterministic across calls.
			if fp4 := h.Fingerprint(); fp4 != fp {
				t.Errorf("fingerprint not deterministic: %s -> %s", fp, fp4)
			}
		})
	}
}

// TestFingerprintSensitivity: perturbing any content channel — a vertex
// weight, a vertex size, a net cost, the pin structure, or fixed labels —
// must change the fingerprint. A collision here would make the server's
// cache serve a stale partition for a drifted hypergraph.
func TestFingerprintSensitivity(t *testing.T) {
	build := func(mutate func(*hypergraph.Builder)) *hypergraph.Hypergraph {
		b := hypergraph.NewBuilder(6)
		b.AddNet(1, 0, 1, 2)
		b.AddNet(2, 2, 3)
		b.AddNet(1, 3, 4, 5)
		for v := 0; v < 6; v++ {
			b.SetWeight(v, int64(10+v))
			b.SetSize(v, int64(100+v))
		}
		if mutate != nil {
			mutate(b)
		}
		return b.Build()
	}

	base := build(nil).Fingerprint()
	perturbations := map[string]*hypergraph.Hypergraph{
		"weight":    build(func(b *hypergraph.Builder) { b.SetWeight(3, 999) }),
		"size":      build(func(b *hypergraph.Builder) { b.SetSize(3, 999) }),
		"extra net": build(func(b *hypergraph.Builder) { b.AddNet(1, 0, 1, 2) }),
		"fixed":     build(func(b *hypergraph.Builder) { b.Fix(0, 1) }),
		"structure": build(func(b *hypergraph.Builder) { b.AddNet(5, 0, 5) }),
	}
	for name, h := range perturbations {
		if fp := h.Fingerprint(); fp == base {
			t.Errorf("%s perturbation did not change the fingerprint", name)
		}
	}
	if build(nil).ScaleCosts(3).Fingerprint() == base {
		t.Error("net-cost perturbation (ScaleCosts) did not change the fingerprint")
	}

	// WithFixed / WithoutFixed views must hash the labels in and out.
	h := build(nil)
	fixed := make([]int32, 6)
	for i := range fixed {
		fixed[i] = -1
	}
	fixed[2] = 1
	hf := h.WithFixed(fixed)
	if hf.Fingerprint() == base {
		t.Error("WithFixed did not change the fingerprint")
	}
	if got := hf.WithoutFixed().Fingerprint(); got != base {
		t.Errorf("WithoutFixed fingerprint = %s, want base %s", got, base)
	}

	// Different fixed assignments must differ from each other.
	fixed2 := append([]int32(nil), fixed...)
	fixed2[2] = 0
	if h.WithFixed(fixed).Fingerprint() == h.WithFixed(fixed2).Fingerprint() {
		t.Error("different fixed labels collide")
	}
}
