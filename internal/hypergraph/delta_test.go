package hypergraph

import (
	"bytes"
	"encoding/json"
	"math/rand"
	"testing"
)

// deltaBase builds a small hypergraph with varied weights/sizes/costs.
func deltaBase() *Hypergraph {
	b := NewBuilder(6)
	for v := 0; v < 6; v++ {
		b.SetWeight(v, int64(v+1))
		b.SetSize(v, int64(2*v+1))
	}
	b.AddNet(3, 0, 1, 2)
	b.AddNet(1, 2, 3)
	b.AddNet(5, 3, 4, 5)
	b.AddNet(2, 0, 5)
	return b.Build()
}

// assertSame asserts fingerprint and byte-level (WriteText) identity.
func assertSame(t *testing.T, want, got *Hypergraph) {
	t.Helper()
	if want.Fingerprint() != got.Fingerprint() {
		t.Fatalf("fingerprints differ:\nwant %s\ngot  %s", want.Fingerprint(), got.Fingerprint())
	}
	var wb, gb bytes.Buffer
	if err := WriteText(&wb, want); err != nil {
		t.Fatal(err)
	}
	if err := WriteText(&gb, got); err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(wb.Bytes(), gb.Bytes()) {
		t.Fatalf("serialized forms differ:\nwant:\n%s\ngot:\n%s", wb.String(), gb.String())
	}
	if err := got.Validate(); err != nil {
		t.Fatalf("applied hypergraph invalid: %v", err)
	}
}

func TestDeltaEmptyRoundTrip(t *testing.T) {
	h := deltaBase()
	d := &Delta{Version: DeltaVersion, Base: h.Fingerprint()}
	got, err := d.Apply(h)
	if err != nil {
		t.Fatal(err)
	}
	assertSame(t, h, got)
}

func TestDeltaBaseMismatch(t *testing.T) {
	h := deltaBase()
	d := &Delta{Version: DeltaVersion, Base: "hbfp1:deadbeef"}
	if _, err := d.Apply(h); err == nil {
		t.Fatal("want base mismatch error")
	} else if !IsBaseMismatch(err) {
		t.Fatalf("want ErrBaseMismatch, got %v", err)
	}
}

func TestDeltaBadVersion(t *testing.T) {
	h := deltaBase()
	d := &Delta{Version: 99, Base: h.Fingerprint()}
	if _, err := d.Apply(h); err == nil {
		t.Fatal("want version error")
	}
}

func TestDeltaWeightDrift(t *testing.T) {
	base := deltaBase()
	b := NewBuilder(6)
	for v := 0; v < 6; v++ {
		b.SetWeight(v, base.Weight(v))
		b.SetSize(v, base.Size(v))
	}
	b.SetWeight(2, 40)
	b.SetWeight(5, 41)
	b.SetSize(0, 99)
	for n := 0; n < base.NumNets(); n++ {
		pins := make([]int, 0, base.NetSize(n))
		for _, p := range base.Pins(n) {
			pins = append(pins, int(p))
		}
		b.AddNet(base.Cost(n), pins...)
	}
	next := b.Build()

	d, ok := ComputeDelta(base, next)
	if !ok {
		t.Fatal("weight drift should be delta-able")
	}
	if !d.Identity() {
		t.Fatalf("weight drift should keep identity maps: %+v", d)
	}
	if len(d.WeightIDs) != 2 || len(d.SizeIDs) != 1 {
		t.Fatalf("want 2 weight + 1 size update, got %d + %d", len(d.WeightIDs), len(d.SizeIDs))
	}
	got, err := d.Apply(base)
	if err != nil {
		t.Fatal(err)
	}
	assertSame(t, next, got)
}

func TestDeltaCostDrift(t *testing.T) {
	base := deltaBase()
	next := base.ScaleCosts(3)
	d, ok := ComputeDelta(base, next)
	if !ok {
		t.Fatal("cost drift should be delta-able")
	}
	if len(d.CostIDs) != base.NumNets() {
		t.Fatalf("want %d cost updates, got %d", base.NumNets(), len(d.CostIDs))
	}
	got, err := d.Apply(base)
	if err != nil {
		t.Fatal(err)
	}
	assertSame(t, next, got)
}

func TestDeltaNetAddRemove(t *testing.T) {
	base := deltaBase()
	// Drop net 1, add a new net {1, 4}.
	b := NewBuilder(6)
	for v := 0; v < 6; v++ {
		b.SetWeight(v, base.Weight(v))
		b.SetSize(v, base.Size(v))
	}
	b.AddNet(3, 0, 1, 2)
	b.AddNet(5, 3, 4, 5)
	b.AddNet(2, 0, 5)
	b.AddNet(7, 1, 4)
	next := b.Build()

	d, ok := ComputeDelta(base, next)
	if !ok {
		t.Fatal("net add/remove should be delta-able")
	}
	if d.VertexMap != nil {
		t.Fatal("vertex map should stay identity")
	}
	if d.NetMap == nil || len(d.NewNetPins) != 1 {
		t.Fatalf("want net map + 1 new net, got %+v", d)
	}
	got, err := d.Apply(base)
	if err != nil {
		t.Fatal(err)
	}
	assertSame(t, next, got)
}

func TestDeltaVertexChurn(t *testing.T) {
	base := deltaBase()
	// Remove vertex 3, add a new vertex (old ids 0,1,2,4,5 -> 0,1,2,3,4;
	// new vertex 5). Nets touching vertex 3 shrink; net {2,3} becomes {2}.
	vmap := []int32{0, 1, 2, 4, 5, -1}
	b := NewBuilder(6)
	for i, ov := range vmap[:5] {
		b.SetWeight(i, base.Weight(int(ov)))
		b.SetSize(i, base.Size(int(ov)))
	}
	b.SetWeight(5, 10)
	b.SetSize(5, 20)
	b.AddNet(3, 0, 1, 2) // unchanged
	b.AddNet(1, 2)       // {2,3} lost vertex 3
	b.AddNet(5, 3, 4)    // {3,4,5} -> {4,5} renumbered
	b.AddNet(2, 0, 4)    // {0,5} renumbered
	b.AddNet(9, 3, 5)    // brand-new net with the new vertex
	next := b.Build()

	d, ok := ComputeDeltaMapped(base, next, vmap)
	if !ok {
		t.Fatal("vertex churn should be delta-able with a map")
	}
	nv, nn := d.NumNew()
	if nv != 1 || nn != 1 {
		t.Fatalf("want 1 new vertex and 1 new net, got %d, %d", nv, nn)
	}
	got, err := d.Apply(base)
	if err != nil {
		t.Fatal(err)
	}
	assertSame(t, next, got)

	// Dirty set: the new vertex, pins of shrunk nets, pins of the new net.
	dirty := d.DirtyVertices(base, got)
	if !dirty[5] {
		t.Fatal("new vertex must be dirty")
	}
	if !dirty[2] { // pin of the shrunk net {2}
		t.Fatal("pin of shrunk net must be dirty")
	}
	if dirty[1] && dirty[0] && dirty[2] && dirty[3] && dirty[4] && dirty[5] {
		t.Fatal("dirty set should not cover everything for a local change")
	}
}

func TestDeltaDigestStable(t *testing.T) {
	base := deltaBase()
	next := base.ScaleCosts(2)
	d1, _ := ComputeDelta(base, next)
	d2, _ := ComputeDelta(base, next)
	if d1.Digest() != d2.Digest() {
		t.Fatal("equal deltas must share a digest")
	}
	d3, _ := ComputeDelta(base, base.ScaleCosts(4))
	if d1.Digest() == d3.Digest() {
		t.Fatal("different deltas must not share a digest")
	}
}

func TestDeltaJSONRoundTrip(t *testing.T) {
	base := deltaBase()
	vmap := []int32{0, 1, 2, 4, 5, -1}
	b := NewBuilder(6)
	b.SetWeight(5, 3)
	b.AddNet(3, 0, 1, 2)
	b.AddNet(5, 3, 4)
	b.AddNet(4, 5, 0)
	next := b.Build()
	d, ok := ComputeDeltaMapped(base, next, vmap)
	if !ok {
		t.Fatal("not delta-able")
	}
	data, err := json.Marshal(d)
	if err != nil {
		t.Fatal(err)
	}
	var d2 Delta
	if err := json.Unmarshal(data, &d2); err != nil {
		t.Fatal(err)
	}
	if d.Digest() != d2.Digest() {
		t.Fatal("JSON round trip changed the delta digest")
	}
	got, err := d2.Apply(base)
	if err != nil {
		t.Fatal(err)
	}
	assertSame(t, next, got)
}

func TestDeltaRejectsMalformed(t *testing.T) {
	base := deltaBase()
	fp := base.Fingerprint()
	cases := []struct {
		name string
		d    Delta
	}{
		{"vmap out of range", Delta{Version: DeltaVersion, Base: fp, VertexMap: []int32{0, 1, 2, 3, 4, 99}}},
		{"vmap duplicate", Delta{Version: DeltaVersion, Base: fp, VertexMap: []int32{0, 0, 2, 3, 4, 5}}},
		{"netmap out of range", Delta{Version: DeltaVersion, Base: fp, NetMap: []int32{0, 1, 2, 9}}},
		{"netmap duplicate", Delta{Version: DeltaVersion, Base: fp, NetMap: []int32{0, 0, 2, 3}}},
		{"sparse ids unsorted", Delta{Version: DeltaVersion, Base: fp, WeightIDs: []int32{3, 1}, WeightVals: []int64{1, 1}}},
		{"sparse length mismatch", Delta{Version: DeltaVersion, Base: fp, WeightIDs: []int32{1}, WeightVals: []int64{1, 2}}},
		{"negative value", Delta{Version: DeltaVersion, Base: fp, WeightIDs: []int32{1}, WeightVals: []int64{-4}}},
		{"new net attrs without map", Delta{Version: DeltaVersion, Base: fp, NewNetCosts: []int64{1}}},
		{"mapped net loses all pins", Delta{Version: DeltaVersion, Base: fp,
			VertexMap: []int32{0, 1, 4, 5}, NetMap: []int32{0, 1, 2, 3}}},
	}
	for _, tc := range cases {
		if _, err := tc.d.Apply(base); err == nil {
			t.Errorf("%s: want error", tc.name)
		}
	}
}

// TestDeltaChainRandom applies a chain of random weight/structure deltas
// and cross-checks each hop against a from-scratch rebuild.
func TestDeltaChainRandom(t *testing.T) {
	rng := rand.New(rand.NewSource(7))
	cur := randomHypergraph(rng, 40, 60)
	for step := 0; step < 10; step++ {
		next := mutateHypergraph(rng, cur)
		vmap := lastVmap
		d, ok := ComputeDeltaMapped(cur, next, vmap)
		if !ok {
			t.Fatalf("step %d: not delta-able", step)
		}
		got, err := d.Apply(cur)
		if err != nil {
			t.Fatalf("step %d: %v", step, err)
		}
		assertSame(t, next, got)
		cur = next
	}
}

// lastVmap records the vertex correspondence of the latest
// mutateHypergraph call (test helper state).
var lastVmap []int32

// randomHypergraph builds a random valid hypergraph.
func randomHypergraph(rng *rand.Rand, nv, nn int) *Hypergraph {
	b := NewBuilder(nv)
	for v := 0; v < nv; v++ {
		b.SetWeight(v, 1+rng.Int63n(9))
		b.SetSize(v, 1+rng.Int63n(9))
	}
	for n := 0; n < nn; n++ {
		sz := min(2+rng.Intn(4), nv)
		pins := rng.Perm(nv)[:sz]
		b.AddNet(1+rng.Int63n(5), pins...)
	}
	return b.Build()
}

// mutateHypergraph derives a successor with mixed drift: some weights
// change, some vertices are dropped, a couple are added, and nets follow.
func mutateHypergraph(rng *rand.Rand, h *Hypergraph) *Hypergraph {
	nv := h.NumVertices()
	drop := make(map[int]bool)
	for i := 0; i < nv/10; i++ {
		drop[rng.Intn(nv)] = true
	}
	add := 1 + rng.Intn(3)

	var vmap []int32
	newID := make([]int32, nv)
	for v := 0; v < nv; v++ {
		if drop[v] {
			newID[v] = -1
			continue
		}
		newID[v] = int32(len(vmap))
		vmap = append(vmap, int32(v))
	}
	for i := 0; i < add; i++ {
		vmap = append(vmap, -1)
	}
	lastVmap = vmap

	b := NewBuilder(len(vmap))
	for i, ov := range vmap {
		if ov < 0 {
			b.SetWeight(i, 1+rng.Int63n(9))
			b.SetSize(i, 1+rng.Int63n(9))
			continue
		}
		w, s := h.Weight(int(ov)), h.Size(int(ov))
		if rng.Intn(4) == 0 {
			w = 1 + rng.Int63n(20)
		}
		if rng.Intn(6) == 0 {
			s = 1 + rng.Int63n(20)
		}
		b.SetWeight(i, w)
		b.SetSize(i, s)
	}
	for n := 0; n < h.NumNets(); n++ {
		if rng.Intn(12) == 0 {
			continue // drop net
		}
		var pins []int
		for _, p := range h.Pins(n) {
			if id := newID[p]; id >= 0 {
				pins = append(pins, int(id))
			}
		}
		if len(pins) == 0 {
			continue
		}
		cost := h.Cost(n)
		if rng.Intn(8) == 0 {
			cost = 1 + rng.Int63n(9)
		}
		b.AddNet(cost, pins...)
	}
	// A couple of new nets, possibly touching new vertices.
	for i := 0; i < 1+rng.Intn(2); i++ {
		sz := min(2+rng.Intn(3), len(vmap))
		pins := rng.Perm(len(vmap))[:sz]
		b.AddNet(1+rng.Int63n(5), pins...)
	}
	return b.Build()
}
