package hypergraph

import (
	"crypto/sha256"
	"encoding/binary"
	"encoding/hex"
)

// Fingerprint returns a stable content hash of the hypergraph: two
// hypergraphs have the same fingerprint exactly when they have the same
// vertex count, the same nets in the same order (cost and pin sequence),
// the same vertex weights and sizes, and the same fixed-vertex labels.
//
// The hash covers everything that determines a partitioning result for a
// given configuration, so it is a sound cache key for repartition-result
// caches (the balancerd partition cache keys on it). It is stable across
// processes and across a WriteText -> ReadText round trip: the text codec
// preserves net order, pin order within a net, costs, weights and sizes
// (fixed labels are runtime state and not serialized, so a round-tripped
// hypergraph fingerprints equal only if it had no fixed labels — callers
// carrying fixed labels must re-apply them).
//
// The encoding is length-prefixed and section-tagged, so structurally
// different hypergraphs cannot collide by concatenation ambiguity.
func (h *Hypergraph) Fingerprint() string {
	sum := h.fingerprintSum()
	return "hbfp1:" + hex.EncodeToString(sum[:])
}

// fingerprintSum computes the raw SHA-256 of the canonical encoding.
func (h *Hypergraph) fingerprintSum() [sha256.Size]byte {
	hw := sha256.New()
	var buf [8]byte
	put32 := func(tag byte, xs []int32) {
		hw.Write([]byte{tag})
		binary.LittleEndian.PutUint64(buf[:], uint64(len(xs)))
		hw.Write(buf[:])
		for _, x := range xs {
			binary.LittleEndian.PutUint32(buf[:4], uint32(x))
			hw.Write(buf[:4])
		}
	}
	put64 := func(tag byte, xs []int64) {
		hw.Write([]byte{tag})
		binary.LittleEndian.PutUint64(buf[:], uint64(len(xs)))
		hw.Write(buf[:])
		for _, x := range xs {
			binary.LittleEndian.PutUint64(buf[:], uint64(x))
			hw.Write(buf[:])
		}
	}
	hw.Write([]byte("hyperbal-hg-v1"))
	binary.LittleEndian.PutUint64(buf[:], uint64(h.NumVertices()))
	hw.Write(buf[:])
	put32('N', h.netStart)
	put32('P', h.netPins)
	put64('C', h.costs)
	put64('W', h.weights)
	put64('S', h.sizes)
	if h.fixed != nil {
		put32('F', h.fixed)
	}
	var sum [sha256.Size]byte
	hw.Sum(sum[:0])
	return sum
}
