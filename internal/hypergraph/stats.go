package hypergraph

// Stats summarizes structural properties of a hypergraph, mirroring the
// columns of Table 1 in the paper (vertex counts, edge counts, degree
// minimum/maximum/average).
type Stats struct {
	NumVertices int
	NumNets     int
	NumPins     int
	MinDegree   int
	MaxDegree   int
	AvgDegree   float64
	MinNetSize  int
	MaxNetSize  int
	AvgNetSize  float64
	TotalWeight int64
	TotalSize   int64
	TotalCost   int64
}

// ComputeStats scans h once and returns its summary statistics.
func ComputeStats(h *Hypergraph) Stats {
	s := Stats{
		NumVertices: h.NumVertices(),
		NumNets:     h.NumNets(),
		NumPins:     h.NumPins(),
		TotalWeight: h.TotalWeight(),
		TotalSize:   h.TotalSize(),
		TotalCost:   h.TotalCost(),
	}
	if s.NumVertices > 0 {
		s.MinDegree = h.Degree(0)
		for v := 0; v < s.NumVertices; v++ {
			d := h.Degree(v)
			if d < s.MinDegree {
				s.MinDegree = d
			}
			if d > s.MaxDegree {
				s.MaxDegree = d
			}
		}
		s.AvgDegree = float64(s.NumPins) / float64(s.NumVertices)
	}
	if s.NumNets > 0 {
		s.MinNetSize = h.NetSize(0)
		for n := 0; n < s.NumNets; n++ {
			sz := h.NetSize(n)
			if sz < s.MinNetSize {
				s.MinNetSize = sz
			}
			if sz > s.MaxNetSize {
				s.MaxNetSize = sz
			}
		}
		s.AvgNetSize = float64(s.NumPins) / float64(s.NumNets)
	}
	return s
}
