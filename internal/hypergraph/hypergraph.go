// Package hypergraph provides the core hypergraph data structure used
// throughout hyperbal: a compressed sparse (CSR-like) representation of a
// hypergraph H = (V, N) with vertex weights, vertex data sizes, net costs,
// and optional fixed-vertex labels for partitioning with fixed vertices.
//
// The representation stores pins in both directions: net -> vertices and
// vertex -> nets, so that partitioners can iterate either way in O(pins).
package hypergraph

import (
	"fmt"
	"slices"
)

// Free marks a vertex that is not fixed to any part.
const Free int32 = -1

// Hypergraph is an immutable-after-Finalize hypergraph.
//
// Vertices and nets are identified by dense indices [0, NumVertices()) and
// [0, NumNets()). Pins are stored CSR-style in both directions. Vertex
// weights model computational load; vertex sizes model the amount of data
// that must move if the vertex migrates; net costs model the size of the
// data item communicated along the net (scaled by the caller as needed).
type Hypergraph struct {
	// net -> pins CSR
	netStart []int32 // len = numNets+1
	netPins  []int32 // len = numPins, vertex ids

	// vertex -> nets CSR (built by Finalize)
	vtxStart []int32 // len = numVertices+1
	vtxNets  []int32 // len = numPins, net ids

	weights []int64 // vertex computational weights, len = numVertices
	sizes   []int64 // vertex migration data sizes, len = numVertices
	costs   []int64 // net communication costs, len = numNets

	fixed []int32 // fixed part per vertex or Free; nil means all free

	finalized bool
}

// Builder incrementally constructs a Hypergraph. Not safe for concurrent use.
type Builder struct {
	numVertices int
	weights     []int64
	sizes       []int64
	fixed       []int32
	hasFixed    bool

	netStart []int32
	netPins  []int32
	costs    []int64
}

// NewBuilder creates a builder for a hypergraph with n vertices, all with
// unit weight and unit size, and no nets.
func NewBuilder(n int) *Builder {
	b := &Builder{
		numVertices: n,
		weights:     make([]int64, n),
		sizes:       make([]int64, n),
		fixed:       make([]int32, n),
		netStart:    []int32{0},
	}
	for i := range b.weights {
		b.weights[i] = 1
		b.sizes[i] = 1
		b.fixed[i] = Free
	}
	return b
}

// SetWeight sets the computational weight of vertex v.
func (b *Builder) SetWeight(v int, w int64) { b.weights[v] = w }

// SetSize sets the migration data size of vertex v.
func (b *Builder) SetSize(v int, s int64) { b.sizes[v] = s }

// Fix pins vertex v to part p for partitioning with fixed vertices.
func (b *Builder) Fix(v int, p int) {
	b.fixed[v] = int32(p)
	b.hasFixed = true
}

// AddNet appends a net with the given cost over the given vertices and
// returns its index. Duplicate pins within a net are removed.
func (b *Builder) AddNet(cost int64, pins ...int) int {
	seen := make(map[int]struct{}, len(pins))
	for _, p := range pins {
		if p < 0 || p >= b.numVertices {
			panic(fmt.Sprintf("hypergraph: pin %d out of range [0,%d)", p, b.numVertices))
		}
		if _, dup := seen[p]; dup {
			continue
		}
		seen[p] = struct{}{}
		b.netPins = append(b.netPins, int32(p))
	}
	b.netStart = append(b.netStart, int32(len(b.netPins)))
	b.costs = append(b.costs, cost)
	return len(b.costs) - 1
}

// AddNetInt32 is AddNet for an existing []int32 pin list (no copy of the
// caller's slice is retained). Duplicates must already be removed.
func (b *Builder) AddNetInt32(cost int64, pins []int32) int {
	b.netPins = append(b.netPins, pins...)
	b.netStart = append(b.netStart, int32(len(b.netPins)))
	b.costs = append(b.costs, cost)
	return len(b.costs) - 1
}

// FromCSR constructs a finalized hypergraph directly from prebuilt CSR
// arrays, taking ownership of every slice: netStart must hold one offset
// per net plus the trailing total pin count, netPins the concatenated
// dedup-free pin lists, and weights/sizes one entry per vertex. fixed may
// be nil for an all-free hypergraph. This is the fast path for kernels
// (contraction, sub-hypergraph induction) that already produce CSR form
// and would otherwise re-copy every pin through a Builder. Only the
// vertex->net CSR is derived; callers feeding untrusted data should use
// Builder or call Validate.
func FromCSR(netStart, netPins []int32, costs, weights, sizes []int64, fixed []int32) *Hypergraph {
	h := &Hypergraph{
		netStart: netStart,
		netPins:  netPins,
		weights:  weights,
		sizes:    sizes,
		costs:    costs,
		fixed:    fixed,
	}
	h.buildVertexCSR(len(weights))
	h.finalized = true
	return h
}

// Build finalizes the hypergraph, constructing the vertex->net CSR.
func (b *Builder) Build() *Hypergraph {
	h := &Hypergraph{
		netStart: b.netStart,
		netPins:  b.netPins,
		weights:  b.weights,
		sizes:    b.sizes,
		costs:    b.costs,
	}
	if b.hasFixed {
		h.fixed = b.fixed
	}
	h.buildVertexCSR(b.numVertices)
	h.finalized = true
	return h
}

func (h *Hypergraph) buildVertexCSR(numVertices int) {
	deg := make([]int32, numVertices+1)
	for _, v := range h.netPins {
		deg[v+1]++
	}
	for i := 1; i <= numVertices; i++ {
		deg[i] += deg[i-1]
	}
	h.vtxStart = deg
	h.vtxNets = make([]int32, len(h.netPins))
	cursor := make([]int32, numVertices)
	for n := 0; n < len(h.netStart)-1; n++ {
		for _, v := range h.netPins[h.netStart[n]:h.netStart[n+1]] {
			h.vtxNets[h.vtxStart[v]+cursor[v]] = int32(n)
			cursor[v]++
		}
	}
}

// NumVertices returns |V|.
func (h *Hypergraph) NumVertices() int { return len(h.weights) }

// NumNets returns |N|.
func (h *Hypergraph) NumNets() int { return len(h.costs) }

// NumPins returns the total number of pins (sum of net sizes).
func (h *Hypergraph) NumPins() int { return len(h.netPins) }

// Pins returns the vertices of net n. The returned slice aliases internal
// storage and must not be modified.
func (h *Hypergraph) Pins(n int) []int32 {
	return h.netPins[h.netStart[n]:h.netStart[n+1]]
}

// NetSize returns the number of pins of net n.
func (h *Hypergraph) NetSize(n int) int {
	return int(h.netStart[n+1] - h.netStart[n])
}

// Nets returns the nets incident to vertex v. The returned slice aliases
// internal storage and must not be modified.
func (h *Hypergraph) Nets(v int) []int32 {
	return h.vtxNets[h.vtxStart[v]:h.vtxStart[v+1]]
}

// Degree returns the number of nets incident to vertex v.
func (h *Hypergraph) Degree(v int) int {
	return int(h.vtxStart[v+1] - h.vtxStart[v])
}

// Weight returns the computational weight of vertex v.
func (h *Hypergraph) Weight(v int) int64 { return h.weights[v] }

// Size returns the migration data size of vertex v.
func (h *Hypergraph) Size(v int) int64 { return h.sizes[v] }

// Cost returns the communication cost of net n.
func (h *Hypergraph) Cost(n int) int64 { return h.costs[n] }

// Fixed returns the part vertex v is fixed to, or Free.
func (h *Hypergraph) Fixed(v int) int32 {
	if h.fixed == nil {
		return Free
	}
	return h.fixed[v]
}

// HasFixed reports whether any vertex carries a fixed-part label.
func (h *Hypergraph) HasFixed() bool { return h.fixed != nil }

// TotalWeight returns the sum of all vertex weights.
func (h *Hypergraph) TotalWeight() int64 {
	var t int64
	for _, w := range h.weights {
		t += w
	}
	return t
}

// TotalSize returns the sum of all vertex sizes.
func (h *Hypergraph) TotalSize() int64 {
	var t int64
	for _, s := range h.sizes {
		t += s
	}
	return t
}

// TotalCost returns the sum of all net costs.
func (h *Hypergraph) TotalCost() int64 {
	var t int64
	for _, c := range h.costs {
		t += c
	}
	return t
}

// MaxDegree returns the maximum vertex degree, 0 for an empty hypergraph.
func (h *Hypergraph) MaxDegree() int {
	m := 0
	for v := 0; v < h.NumVertices(); v++ {
		if d := h.Degree(v); d > m {
			m = d
		}
	}
	return m
}

// Clone returns a deep copy of h. The fixed labels, if any, are copied too.
func (h *Hypergraph) Clone() *Hypergraph {
	c := &Hypergraph{
		netStart:  append([]int32(nil), h.netStart...),
		netPins:   append([]int32(nil), h.netPins...),
		vtxStart:  append([]int32(nil), h.vtxStart...),
		vtxNets:   append([]int32(nil), h.vtxNets...),
		weights:   append([]int64(nil), h.weights...),
		sizes:     append([]int64(nil), h.sizes...),
		costs:     append([]int64(nil), h.costs...),
		finalized: true,
	}
	if h.fixed != nil {
		c.fixed = append([]int32(nil), h.fixed...)
	}
	return c
}

// WithFixed returns a shallow copy of h that carries the given fixed-part
// labels (length NumVertices, entries Free or a part id). The pin structure
// is shared with h.
func (h *Hypergraph) WithFixed(fixed []int32) *Hypergraph {
	if len(fixed) != h.NumVertices() {
		panic(fmt.Sprintf("hypergraph: fixed labels length %d != %d vertices", len(fixed), h.NumVertices()))
	}
	c := *h
	c.fixed = fixed
	return &c
}

// WithoutFixed returns a shallow copy of h with all fixed labels cleared.
func (h *Hypergraph) WithoutFixed() *Hypergraph {
	c := *h
	c.fixed = nil
	return &c
}

// ScaleCosts returns a shallow copy of h whose net costs are all multiplied
// by factor. The pin structure is shared with h.
func (h *Hypergraph) ScaleCosts(factor int64) *Hypergraph {
	c := *h
	c.costs = make([]int64, len(h.costs))
	for i, v := range h.costs {
		c.costs[i] = v * factor
	}
	return &c
}

// Validate checks structural invariants and returns a descriptive error if
// any is violated. A finalized Builder output always validates.
func (h *Hypergraph) Validate() error {
	nv, nn := h.NumVertices(), h.NumNets()
	if len(h.netStart) != nn+1 {
		return fmt.Errorf("netStart length %d, want %d", len(h.netStart), nn+1)
	}
	if len(h.vtxStart) != nv+1 {
		return fmt.Errorf("vtxStart length %d, want %d", len(h.vtxStart), nv+1)
	}
	if h.netStart[0] != 0 || int(h.netStart[nn]) != len(h.netPins) {
		return fmt.Errorf("netStart bounds invalid")
	}
	for n := 0; n < nn; n++ {
		if h.netStart[n] > h.netStart[n+1] {
			return fmt.Errorf("netStart not monotone at net %d", n)
		}
		seen := map[int32]struct{}{}
		for _, v := range h.Pins(n) {
			if v < 0 || int(v) >= nv {
				return fmt.Errorf("net %d has out-of-range pin %d", n, v)
			}
			if _, dup := seen[v]; dup {
				return fmt.Errorf("net %d has duplicate pin %d", n, v)
			}
			seen[v] = struct{}{}
		}
	}
	if len(h.vtxNets) != len(h.netPins) {
		return fmt.Errorf("vertex CSR has %d entries, want %d", len(h.vtxNets), len(h.netPins))
	}
	for v := 0; v < nv; v++ {
		for _, n := range h.Nets(v) {
			if n < 0 || int(n) >= nn {
				return fmt.Errorf("vertex %d lists out-of-range net %d", v, n)
			}
			found := false
			for _, p := range h.Pins(int(n)) {
				if int(p) == v {
					found = true
					break
				}
			}
			if !found {
				return fmt.Errorf("vertex %d lists net %d which does not pin it", v, n)
			}
		}
	}
	for v, w := range h.weights {
		if w < 0 {
			return fmt.Errorf("vertex %d has negative weight %d", v, w)
		}
	}
	for v, s := range h.sizes {
		if s < 0 {
			return fmt.Errorf("vertex %d has negative size %d", v, s)
		}
	}
	for n, c := range h.costs {
		if c < 0 {
			return fmt.Errorf("net %d has negative cost %d", n, c)
		}
	}
	if h.fixed != nil && len(h.fixed) != nv {
		return fmt.Errorf("fixed labels length %d, want %d", len(h.fixed), nv)
	}
	return nil
}

// String returns a short diagnostic summary.
func (h *Hypergraph) String() string {
	return fmt.Sprintf("Hypergraph{V=%d N=%d pins=%d fixed=%v}",
		h.NumVertices(), h.NumNets(), h.NumPins(), h.fixed != nil)
}

// SortedPins returns the pins of net n as a freshly allocated sorted slice.
// Useful for deterministic comparisons in tests and net hashing. Hot paths
// should prefer SortedPinsInto with a reused buffer.
func (h *Hypergraph) SortedPins(n int) []int32 {
	return h.SortedPinsInto(n, nil)
}

// SortedPinsInto writes the sorted pins of net n into buf (grown as
// needed) and returns the filled slice, avoiding the per-call copy and
// closure sort of SortedPins.
func (h *Hypergraph) SortedPinsInto(n int, buf []int32) []int32 {
	buf = append(buf[:0], h.Pins(n)...)
	slices.Sort(buf)
	return buf
}
