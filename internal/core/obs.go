package core

import "hyperbal/internal/obs"

// Registry handles for the balancing API layer, labeled by method name
// (Zoltan-repart, Zoltan-scratch, ...) so a run can be broken down the way
// Figures 7-8 present it: repartition wall time per method, and the comm /
// migration volumes that form the normalized-cost bars.
var (
	obsPartitions    = obs.Default().Counter("core_partitions_total")
	obsRepartitions  = obs.Default().CounterVec("core_repartitions_total", "method")
	obsRepartNs      = obs.Default().HistogramVec("core_repart_ns", "method", obs.DurationBounds)
	obsCommVolume    = obs.Default().CounterVec("core_comm_volume_total", "method")
	obsMigVolume     = obs.Default().CounterVec("core_migration_volume_total", "method")
	obsSessionEpochs = obs.Default().Counter("core_session_epochs_total")
	obsRebalanceYes  = obs.Default().Counter("core_rebalance_decisions_true_total")
	obsRebalanceNo   = obs.Default().Counter("core_rebalance_decisions_false_total")
	obsSessionCost   = obs.Default().Counter("core_session_cost_total")

	// Warm-started repartitions, split by whether the method could honor
	// the warm request ("warm") or silently fell back to cold ("cold").
	obsWarmReparts = obs.Default().CounterVec("core_warm_repartitions_total", "path")
)
