package core

import (
	"math/rand"
	"testing"
	"testing/quick"

	"hyperbal/internal/hypergraph"
	"hyperbal/internal/partition"
)

// figure1 builds the epoch-j hypergraph of the paper's Figure 1 worked
// example. Vertices (paper -> index): 1..7 -> 0..6, a -> 7, b -> 8.
// Communication nets: {2,3,a}, {5,6,7}, {4,6,a}. Every vertex has size 3
// (the example's migration cost per vertex). Epoch j-1 assignment (epoch
// j-1 parts were {1,2,3}, {4,5,6}, {7,8,9}; a was created on V1, b on V3):
// V1 = {1,2,3,a}, V2 = {4,5,6}, V3 = {7,b}; alpha_j = 5.
func figure1() (*hypergraph.Hypergraph, partition.Partition) {
	b := hypergraph.NewBuilder(9)
	for v := 0; v < 9; v++ {
		b.SetSize(v, 3)
	}
	b.AddNet(1, 1, 2, 7) // {2,3,a}
	b.AddNet(1, 4, 5, 6) // {5,6,7}
	b.AddNet(1, 3, 5, 7) // {4,6,a}
	h := b.Build()
	old := partition.Partition{K: 3, Parts: []int32{0, 0, 0, 1, 1, 1, 2, 0, 2}}
	return h, old
}

// TestFigure1WorkedExample verifies the arithmetic of Section 3 end to
// end: with vertices 3 and 6 moved to V2 and V3 respectively, the total
// model cut must be 26 = 20 (communication) + 6 (migration).
func TestFigure1WorkedExample(t *testing.T) {
	h, old := figure1()
	r, err := BuildRepartition(h, old, 3, 5)
	if err != nil {
		t.Fatal(err)
	}
	// Augmented hypergraph shape: 9 + 3 vertices, 3 + 9 nets.
	if r.H.NumVertices() != 12 {
		t.Fatalf("augmented |V| = %d, want 12", r.H.NumVertices())
	}
	if r.H.NumNets() != 12 {
		t.Fatalf("augmented |N| = %d, want 12", r.H.NumNets())
	}
	// The paper's final assignment: vertex 3 (index 2) -> V2, vertex 6
	// (index 5) -> V3; everything else keeps its epoch j-1 part.
	newP := partition.Partition{K: 3, Parts: []int32{0, 0, 1, 1, 1, 2, 2, 0, 2}}
	aug := r.Extend(newP)
	if got := r.ModelCut(aug); got != 26 {
		t.Fatalf("model cut = %d, want 26 (= 20 comm + 6 migration)", got)
	}
	// Decompose: communication = alpha * cut(H^j), migration = moved sizes.
	comm := partition.CutSize(h, newP) // unscaled per-iteration volume
	if comm*5 != 20 {
		t.Fatalf("alpha*comm = %d, want 20", comm*5)
	}
	mig := ComputeMigration(h, old, newP)
	if mig.Volume != 6 || mig.Moved != 2 {
		t.Fatalf("migration = %+v, want volume 6, moved 2", mig)
	}
}

// The central identity: cut(H̄, extended p) == alpha*cut(H, p) + mig(old,p)
// for arbitrary partitions, hypergraphs and alphas.
func TestQuickModelIdentity(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		n := 2 + rng.Intn(40)
		k := 2 + rng.Intn(5)
		alpha := int64(1 + rng.Intn(50))
		b := hypergraph.NewBuilder(n)
		for v := 0; v < n; v++ {
			b.SetWeight(v, int64(1+rng.Intn(5)))
			b.SetSize(v, int64(1+rng.Intn(7)))
		}
		for i := 0; i < rng.Intn(3*n); i++ {
			sz := 2 + rng.Intn(5)
			if sz > n {
				sz = n
			}
			b.AddNet(int64(1+rng.Intn(4)), rng.Perm(n)[:sz]...)
		}
		h := b.Build()
		old := partition.Partition{K: k, Parts: make([]int32, n)}
		newP := partition.Partition{K: k, Parts: make([]int32, n)}
		for v := 0; v < n; v++ {
			old.Parts[v] = int32(rng.Intn(k))
			newP.Parts[v] = int32(rng.Intn(k))
		}
		r, err := BuildRepartition(h, old, k, alpha)
		if err != nil {
			return false
		}
		want := alpha*partition.CutSize(h, newP) + partition.MigrationVolume(h, old, newP)
		return r.ModelCut(r.Extend(newP)) == want
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 60}); err != nil {
		t.Fatal(err)
	}
}

func TestBuildRepartitionValidation(t *testing.T) {
	h, old := figure1()
	if _, err := BuildRepartition(h, partition.Partition{K: 3, Parts: make([]int32, 2)}, 3, 5); err == nil {
		t.Fatal("expected error for short old partition")
	}
	if _, err := BuildRepartition(h, old, 3, 0); err == nil {
		t.Fatal("expected error for alpha < 1")
	}
	if _, err := BuildRepartition(h, old, 0, 5); err == nil {
		t.Fatal("expected error for k < 1")
	}
	bad := old.Clone()
	bad.Parts[0] = 99
	if _, err := BuildRepartition(h, bad, 3, 5); err == nil {
		t.Fatal("expected error for out-of-range old part")
	}
}

func TestDecodeChecksFixedConstraint(t *testing.T) {
	h, old := figure1()
	r, _ := BuildRepartition(h, old, 3, 5)
	aug := r.Extend(old)
	// corrupt a partition vertex assignment
	aug.Parts[9] = 2
	if _, _, err := r.Decode(h, aug); err == nil {
		t.Fatal("expected error when a partition vertex moves")
	}
	aug.Parts[9] = 0
	p, mig, err := r.Decode(h, aug)
	if err != nil {
		t.Fatal(err)
	}
	if mig.Volume != 0 || mig.Moved != 0 {
		t.Fatalf("identity decode should have zero migration, got %+v", mig)
	}
	for v := range p.Parts {
		if p.Parts[v] != old.Parts[v] {
			t.Fatal("decode changed assignments")
		}
	}
}

func TestDecodeWrongLength(t *testing.T) {
	h, old := figure1()
	r, _ := BuildRepartition(h, old, 3, 5)
	if _, _, err := r.Decode(h, old); err == nil { // not extended
		t.Fatal("expected error for non-augmented partition length")
	}
}

func TestPartitionVerticesProperties(t *testing.T) {
	h, old := figure1()
	r, _ := BuildRepartition(h, old, 3, 5)
	for i := 0; i < 3; i++ {
		u := r.NumVertices + i
		if r.H.Weight(u) != 0 {
			t.Fatalf("partition vertex %d has nonzero weight", i)
		}
		if r.H.Fixed(u) != int32(i) {
			t.Fatalf("partition vertex %d not fixed to part %d", i, i)
		}
	}
	// Original vertices are free.
	for v := 0; v < r.NumVertices; v++ {
		if r.H.Fixed(v) != hypergraph.Free {
			t.Fatalf("computation vertex %d unexpectedly fixed", v)
		}
	}
	// Balance is unaffected by partition vertices (zero weight).
	if r.H.TotalWeight() != h.TotalWeight() {
		t.Fatal("augmentation changed total weight")
	}
}

func TestCostModel(t *testing.T) {
	m := CostModel{CommSecPerUnit: 1, MigSecPerUnit: 2, CompSecPerIter: 10}
	r := Result{CommVolume: 3, MigrationVolume: 5}
	e := m.Evaluate(r, 4)
	if e.Comp != 40 || e.Comm != 12 || e.Mig != 10 {
		t.Fatalf("estimate = %+v", e)
	}
	if e.Total() != 62 {
		t.Fatalf("total = %v, want 62", e.Total())
	}
	if m.DroppedTerms(r, 4) != 22 {
		t.Fatalf("dropped terms = %v, want 22", m.DroppedTerms(r, 4))
	}
}

func TestResultCostHelpers(t *testing.T) {
	r := Result{CommVolume: 7, MigrationVolume: 20}
	if r.TotalCost(10) != 90 {
		t.Fatalf("TotalCost = %d, want 90", r.TotalCost(10))
	}
	if r.NormalizedCost(10) != 9 {
		t.Fatalf("NormalizedCost = %v, want 9", r.NormalizedCost(10))
	}
}
