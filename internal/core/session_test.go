package core

import (
	"testing"

	"hyperbal/internal/hypergraph"
	"hyperbal/internal/partition"
)

func TestSessionLifecycle(t *testing.T) {
	p := mesh(12, 12)
	bal, err := NewBalancer(Config{K: 4, Alpha: 10, Seed: 1, Method: HypergraphRepart})
	if err != nil {
		t.Fatal(err)
	}
	s, first, err := NewSession(bal, p)
	if err != nil {
		t.Fatal(err)
	}
	if first.MigrationVolume != 0 || len(s.History) != 1 || s.Epoch() != 0 {
		t.Fatalf("fresh session state wrong: %+v", s)
	}
	// Balanced unchanged problem: no rebalance needed.
	should, err := s.ShouldRebalance(p)
	if err != nil {
		t.Fatal(err)
	}
	if should {
		t.Fatal("balanced problem should not trigger rebalancing")
	}
	// Inflate a hot corner's weights past the threshold.
	hb := hypergraph.NewBuilder(144)
	for v := 0; v < 144; v++ {
		w := int64(1)
		if v < 36 {
			w = 6
		}
		hb.SetWeight(v, w)
	}
	for n := 0; n < p.H.NumNets(); n++ {
		pins := p.H.Pins(n)
		hb.AddNet(p.H.Cost(n), int(pins[0]), int(pins[1]))
	}
	hot := Problem{H: hb.Build()}
	should, err = s.ShouldRebalance(hot)
	if err != nil {
		t.Fatal(err)
	}
	if !should {
		t.Fatal("hot problem should trigger rebalancing")
	}
	res, err := s.Rebalance(hot)
	if err != nil {
		t.Fatal(err)
	}
	if s.Epoch() != 1 || len(s.History) != 2 {
		t.Fatal("session bookkeeping wrong after rebalance")
	}
	w := partition.Weights(hot.H, res.Partition)
	if partition.Imbalance(w) > 0.25 {
		t.Fatalf("rebalance left imbalance %.3f", partition.Imbalance(w))
	}
	if s.TotalCost(10) != first.TotalCost(10)+res.TotalCost(10) {
		t.Fatal("TotalCost accumulation wrong")
	}
}

func TestSessionStructuralChange(t *testing.T) {
	p := mesh(10, 10)
	bal, _ := NewBalancer(Config{K: 2, Seed: 3, Method: HypergraphRepart})
	s, _, err := NewSession(bal, p)
	if err != nil {
		t.Fatal(err)
	}
	smaller := mesh(9, 9) // 81 vertices vs 100
	// Rebalance must refuse a changed vertex set...
	if _, err := s.Rebalance(smaller); err == nil {
		t.Fatal("expected vertex-set-change error")
	}
	// ...and ShouldRebalance flags it unconditionally.
	should, _ := s.ShouldRebalance(smaller)
	if !should {
		t.Fatal("structural change should trigger rebalance")
	}
	inherited := partition.New(81, 2)
	for v := 0; v < 81; v++ {
		inherited.Assign(v, v%2)
	}
	if _, err := s.RebalanceInherited(smaller, inherited); err != nil {
		t.Fatal(err)
	}
	if len(s.Current().Parts) != 81 {
		t.Fatal("current partition not updated to new vertex set")
	}
	// Length validation on inherited.
	if _, err := s.RebalanceInherited(p, inherited); err == nil {
		t.Fatal("expected inherited-length error")
	}
}

// reweight returns p with per-vertex weights from f, structure unchanged.
func reweight(p Problem, f func(v int) int64) Problem {
	n := p.H.NumVertices()
	hb := hypergraph.NewBuilder(n)
	for v := 0; v < n; v++ {
		hb.SetWeight(v, f(v))
	}
	for net := 0; net < p.H.NumNets(); net++ {
		pins := p.H.Pins(net)
		ip := make([]int, len(pins))
		for i, pin := range pins {
			ip[i] = int(pin)
		}
		hb.AddNet(p.H.Cost(net), ip...)
	}
	return Problem{H: hb.Build()}
}

// TestNewSessionAt: a session restored from another replica's serialized
// state (last result + epoch) must continue byte-identically to the
// uninterrupted original — the correctness property of drain handoff.
func TestNewSessionAt(t *testing.T) {
	p := mesh(12, 12)
	drift1 := reweight(p, func(v int) int64 {
		if v < 36 {
			return 5
		}
		return 1
	})
	drift2 := reweight(p, func(v int) int64 {
		if v >= 108 {
			return 7
		}
		return 1
	})
	cfg := Config{K: 4, Alpha: 10, Seed: 9, Method: HypergraphRepart}

	balA, err := NewBalancer(cfg)
	if err != nil {
		t.Fatal(err)
	}
	orig, _, err := NewSession(balA, p)
	if err != nil {
		t.Fatal(err)
	}
	r1, err := orig.Rebalance(drift1)
	if err != nil {
		t.Fatal(err)
	}

	// Hand off: a fresh balancer (the receiving replica builds its own from
	// the wire config) restored at epoch 1 with the last result.
	balB, err := NewBalancer(cfg)
	if err != nil {
		t.Fatal(err)
	}
	restored := NewSessionAt(balB, r1, orig.Epoch())
	if restored.Epoch() != 1 {
		t.Fatalf("restored epoch = %d, want 1", restored.Epoch())
	}
	if restored.HistoryLen() != 1 {
		t.Fatalf("restored history length = %d, want 1 (history restarts at the handoff)", restored.HistoryLen())
	}
	if !int32Equal(restored.Current().Parts, r1.Partition.Parts) {
		t.Fatal("restored current distribution differs from the handed-off result")
	}
	if !int32Equal(restored.LastResult().Partition.Parts, r1.Partition.Parts) {
		t.Fatal("restored last result differs from the handed-off result")
	}

	// Both sessions see the same next drift; results must stay identical.
	wantR2, err := orig.Rebalance(drift2)
	if err != nil {
		t.Fatal(err)
	}
	gotR2, err := restored.Rebalance(drift2)
	if err != nil {
		t.Fatal(err)
	}
	if restored.Epoch() != orig.Epoch() {
		t.Fatalf("epoch diverged: restored %d vs original %d", restored.Epoch(), orig.Epoch())
	}
	if !int32Equal(gotR2.Partition.Parts, wantR2.Partition.Parts) {
		t.Fatal("post-handoff rebalance diverged from the uninterrupted session")
	}
	if gotR2.CommVolume != wantR2.CommVolume || gotR2.Moved != wantR2.Moved {
		t.Fatalf("post-handoff result stats diverged: %+v vs %+v", gotR2, wantR2)
	}
}

func int32Equal(a, b []int32) bool {
	if len(a) != len(b) {
		return false
	}
	for i := range a {
		if a[i] != b[i] {
			return false
		}
	}
	return true
}
