package core

import (
	"testing"

	"hyperbal/internal/hypergraph"
	"hyperbal/internal/partition"
)

func TestSessionLifecycle(t *testing.T) {
	p := mesh(12, 12)
	bal, err := NewBalancer(Config{K: 4, Alpha: 10, Seed: 1, Method: HypergraphRepart})
	if err != nil {
		t.Fatal(err)
	}
	s, first, err := NewSession(bal, p)
	if err != nil {
		t.Fatal(err)
	}
	if first.MigrationVolume != 0 || len(s.History) != 1 || s.Epoch() != 0 {
		t.Fatalf("fresh session state wrong: %+v", s)
	}
	// Balanced unchanged problem: no rebalance needed.
	should, err := s.ShouldRebalance(p)
	if err != nil {
		t.Fatal(err)
	}
	if should {
		t.Fatal("balanced problem should not trigger rebalancing")
	}
	// Inflate a hot corner's weights past the threshold.
	hb := hypergraph.NewBuilder(144)
	for v := 0; v < 144; v++ {
		w := int64(1)
		if v < 36 {
			w = 6
		}
		hb.SetWeight(v, w)
	}
	for n := 0; n < p.H.NumNets(); n++ {
		pins := p.H.Pins(n)
		hb.AddNet(p.H.Cost(n), int(pins[0]), int(pins[1]))
	}
	hot := Problem{H: hb.Build()}
	should, err = s.ShouldRebalance(hot)
	if err != nil {
		t.Fatal(err)
	}
	if !should {
		t.Fatal("hot problem should trigger rebalancing")
	}
	res, err := s.Rebalance(hot)
	if err != nil {
		t.Fatal(err)
	}
	if s.Epoch() != 1 || len(s.History) != 2 {
		t.Fatal("session bookkeeping wrong after rebalance")
	}
	w := partition.Weights(hot.H, res.Partition)
	if partition.Imbalance(w) > 0.25 {
		t.Fatalf("rebalance left imbalance %.3f", partition.Imbalance(w))
	}
	if s.TotalCost(10) != first.TotalCost(10)+res.TotalCost(10) {
		t.Fatal("TotalCost accumulation wrong")
	}
}

func TestSessionStructuralChange(t *testing.T) {
	p := mesh(10, 10)
	bal, _ := NewBalancer(Config{K: 2, Seed: 3, Method: HypergraphRepart})
	s, _, err := NewSession(bal, p)
	if err != nil {
		t.Fatal(err)
	}
	smaller := mesh(9, 9) // 81 vertices vs 100
	// Rebalance must refuse a changed vertex set...
	if _, err := s.Rebalance(smaller); err == nil {
		t.Fatal("expected vertex-set-change error")
	}
	// ...and ShouldRebalance flags it unconditionally.
	should, _ := s.ShouldRebalance(smaller)
	if !should {
		t.Fatal("structural change should trigger rebalance")
	}
	inherited := partition.New(81, 2)
	for v := 0; v < 81; v++ {
		inherited.Assign(v, v%2)
	}
	if _, err := s.RebalanceInherited(smaller, inherited); err != nil {
		t.Fatal(err)
	}
	if len(s.Current().Parts) != 81 {
		t.Fatal("current partition not updated to new vertex set")
	}
	// Length validation on inherited.
	if _, err := s.RebalanceInherited(p, inherited); err == nil {
		t.Fatal("expected inherited-length error")
	}
}
