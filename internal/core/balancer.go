package core

import (
	"fmt"
	"strings"
	"time"

	"hyperbal/internal/gp"
	"hyperbal/internal/graph"
	"hyperbal/internal/hgp"
	"hyperbal/internal/hypergraph"
	"hyperbal/internal/partition"
)

// Method selects one of the four algorithms compared in Section 5.
type Method int

const (
	// HypergraphRepart is the paper's contribution: repartitioning via the
	// augmented hypergraph with fixed vertices ("Zoltan-repart").
	HypergraphRepart Method = iota
	// HypergraphScratch partitions the epoch hypergraph from scratch and
	// remaps part labels with the maximal-matching heuristic
	// ("Zoltan-scratch").
	HypergraphScratch
	// GraphRepart runs the unified adaptive graph repartitioner with
	// ITR = alpha ("ParMETIS-repart" with AdaptiveRepart).
	GraphRepart
	// GraphScratch partitions the graph form from scratch and remaps
	// ("ParMETIS-scratch" with Partkway).
	GraphScratch
	// HypergraphRefineOnly accounts for migration only during refinement
	// (the Schloegel-style strategy of [27] applied to the hypergraph):
	// inherit the old partition and improve it with combined-objective
	// k-way passes, with no migration nets and no migration-aware
	// coarsening. Not one of the paper's four algorithms — it exists to
	// measure the Section 1 claim that "directly incorporating both the
	// communication and migration costs into a single hypergraph model is
	// more suitable ... than accounting for migration costs only in
	// refinement" (ablation A2).
	HypergraphRefineOnly
)

// String returns the paper's name for the method.
func (m Method) String() string {
	switch m {
	case HypergraphRepart:
		return "Zoltan-repart"
	case HypergraphScratch:
		return "Zoltan-scratch"
	case GraphRepart:
		return "ParMETIS-repart"
	case GraphScratch:
		return "ParMETIS-scratch"
	case HypergraphRefineOnly:
		return "Zoltan-refineonly"
	default:
		return fmt.Sprintf("Method(%d)", int(m))
	}
}

// Methods lists all four in the figures' bar order.
var Methods = []Method{HypergraphRepart, GraphRepart, HypergraphScratch, GraphScratch}

// ParseMethod resolves a method from its paper name (the String form,
// case-insensitive): "Zoltan-repart", "Zoltan-scratch", "ParMETIS-repart",
// "ParMETIS-scratch", "Zoltan-refineonly". This is the wire form the
// balancerd service accepts.
func ParseMethod(s string) (Method, error) {
	for _, m := range []Method{HypergraphRepart, HypergraphScratch, GraphRepart, GraphScratch, HypergraphRefineOnly} {
		if strings.EqualFold(s, m.String()) {
			return m, nil
		}
	}
	return 0, fmt.Errorf("core: unknown method %q (want Zoltan-repart, Zoltan-scratch, ParMETIS-repart, ParMETIS-scratch or Zoltan-refineonly)", s)
}

// Config parameterizes a Balancer.
type Config struct {
	K         int     // number of parts (processors)
	Alpha     int64   // iterations per epoch; the communication/migration trade-off
	Imbalance float64 // Eq. 1 epsilon (default 0.05)
	Seed      int64
	Method    Method
	// MaxClique bounds clique expansion when deriving a graph from a
	// hypergraph for the graph-based methods (default 32).
	MaxClique int
	// Tuning knobs forwarded to the partitioners (0 = their defaults).
	CoarsenTo     int
	InitialStarts int
	RefinePasses  int
	// Parallelism bounds the worker goroutines of each hypergraph
	// partitioning call; results are identical for every value
	// (0 = the partitioner's default, GOMAXPROCS).
	Parallelism int
}

func (c Config) withDefaults() Config {
	if c.Imbalance <= 0 {
		c.Imbalance = 0.05
	}
	if c.Alpha < 1 {
		c.Alpha = 1
	}
	if c.MaxClique <= 0 {
		c.MaxClique = 32
	}
	return c
}

// Problem bundles the two representations of an epoch's computation. H is
// required; G is optional and derived by clique expansion when a
// graph-based method needs it.
type Problem struct {
	H *hypergraph.Hypergraph
	G *graph.Graph
}

// Result reports one load-balancing operation.
type Result struct {
	Partition partition.Partition
	// CommVolume is the connectivity-1 cut of the epoch hypergraph under
	// the new partition: the application's communication volume per
	// iteration.
	CommVolume int64
	// MigrationVolume is the data volume moved from the old to the new
	// distribution (0 for a first/static partitioning).
	MigrationVolume int64
	// Moved is the number of vertices that changed parts.
	Moved int
	// RepartTime is the wall-clock time of the load-balance operation.
	RepartTime time.Duration
	// Warm reports that the partitioner was warm-started from the previous
	// distribution (RepartitionWarm with a method that supports it).
	Warm bool
}

// TotalCost returns α·comm + mig, the objective of Section 2.
func (r Result) TotalCost(alpha int64) int64 {
	return alpha*r.CommVolume + r.MigrationVolume
}

// NormalizedCost returns comm + mig/α, the quantity plotted in Figures 2-6
// ("Total cost in each bar is normalized by α").
func (r Result) NormalizedCost(alpha int64) float64 {
	return float64(r.CommVolume) + float64(r.MigrationVolume)/float64(alpha)
}

// Balancer runs static partitioning and epoch repartitioning with one of
// the four methods.
type Balancer struct {
	cfg Config
}

// NewBalancer validates cfg and returns a Balancer.
func NewBalancer(cfg Config) (*Balancer, error) {
	cfg = cfg.withDefaults()
	if cfg.K < 1 {
		return nil, fmt.Errorf("core: K must be >= 1, got %d", cfg.K)
	}
	return &Balancer{cfg: cfg}, nil
}

// Config returns the balancer's effective configuration.
func (b *Balancer) Config() Config { return b.cfg }

// Partition computes the epoch-1 (static) partition of the problem.
func (b *Balancer) Partition(p Problem) (Result, error) {
	start := time.Now()
	var newP partition.Partition
	var err error
	switch b.cfg.Method {
	case HypergraphRepart, HypergraphScratch, HypergraphRefineOnly:
		newP, err = hgp.Partition(p.H.WithoutFixed(), b.hgpOptions(0))
	case GraphRepart, GraphScratch:
		g := b.graphOf(p)
		newP, err = gp.Partition(g, b.gpOptions(0))
	default:
		err = fmt.Errorf("core: unknown method %v", b.cfg.Method)
	}
	if err != nil {
		return Result{}, err
	}
	res := Result{
		Partition:  newP,
		CommVolume: partition.CutSize(p.H, newP),
		RepartTime: time.Since(start),
	}
	obsPartitions.Inc()
	obsCommVolume.With(b.cfg.Method.String()).Add(res.CommVolume)
	return res, nil
}

// Repartition rebalances the problem given the previous epoch's
// assignment, using the configured method. The returned result accounts
// both communication (cut of p.H under the new partition) and migration
// (data size moved relative to old).
func (b *Balancer) Repartition(p Problem, old partition.Partition, epoch int64) (Result, error) {
	start := time.Now()
	var newP partition.Partition
	var err error
	switch b.cfg.Method {
	case HypergraphRepart:
		newP, err = b.hypergraphRepart(p.H, old, epoch)
	case HypergraphScratch:
		newP, err = hgp.Partition(p.H.WithoutFixed(), b.hgpOptions(epoch))
		if err == nil {
			newP = partition.Remap(p.H, old, newP)
		}
	case GraphRepart:
		g := b.graphOf(p)
		newP, err = gp.AdaptiveRepart(g, old, b.cfg.Alpha, b.gpOptions(epoch))
	case GraphScratch:
		g := b.graphOf(p)
		newP, err = gp.Partition(g, b.gpOptions(epoch))
		if err == nil {
			newP = partition.Remap(p.H, old, newP)
		}
	case HypergraphRefineOnly:
		newP = old.Clone()
		caps := refineCaps(p.H, b.cfg.K, b.cfg.Imbalance)
		hgp.RefineKwayWithMigration(p.H.WithoutFixed(), b.cfg.K, newP.Parts,
			old.Parts, b.cfg.Alpha, caps, 8)
	default:
		err = fmt.Errorf("core: unknown method %v", b.cfg.Method)
	}
	if err != nil {
		return Result{}, err
	}
	mig := ComputeMigration(p.H, old, newP)
	res := Result{
		Partition:       newP,
		CommVolume:      partition.CutSize(p.H, newP),
		MigrationVolume: mig.Volume,
		Moved:           mig.Moved,
		RepartTime:      time.Since(start),
	}
	method := b.cfg.Method.String()
	obsRepartitions.With(method).Inc()
	obsRepartNs.With(method).Observe(int64(res.RepartTime))
	obsCommVolume.With(method).Add(res.CommVolume)
	obsMigVolume.With(method).Add(res.MigrationVolume)
	return res, nil
}

// RepartitionWarm rebalances like Repartition but warm-starts the
// partitioner from the previous assignment, restricting work to the dirty
// region when one is given (nil dirty = everything changed; the seeded
// V-cycle still skips the from-scratch coarse solve). Only the
// hypergraph-repartitioning method can honor a warm start — it seeds the
// augmented hypergraph H̄ with the inherited parts — so every other method
// falls back to the cold Repartition path; check Result.Warm to see which
// path ran. Warm results are deterministic at every Config.Parallelism.
func (b *Balancer) RepartitionWarm(p Problem, old partition.Partition, epoch int64, dirty []bool) (Result, error) {
	if b.cfg.Method != HypergraphRepart {
		res, err := b.Repartition(p, old, epoch)
		if err == nil {
			obsWarmReparts.With("cold").Inc()
		}
		return res, err
	}
	start := time.Now()
	r, err := BuildRepartition(p.H, old, b.cfg.K, b.cfg.Alpha)
	if err != nil {
		return Result{}, err
	}
	// Inherited assignment in the augmented vertex space: real vertices
	// keep their old parts, partition vertices sit on their fixed parts.
	n := p.H.NumVertices()
	augParts := make([]int32, n+b.cfg.K)
	copy(augParts, old.Parts)
	for i := 0; i < b.cfg.K; i++ {
		augParts[n+i] = int32(i)
	}
	var augDirty []bool
	if dirty != nil {
		augDirty = make([]bool, n+b.cfg.K)
		copy(augDirty, dirty)
	}
	aug, _, err := hgp.PartitionWarm(r.H, b.hgpOptions(epoch), hgp.WarmSpec{Parts: augParts, Dirty: augDirty})
	if err != nil {
		return Result{}, err
	}
	newP, mig, err := r.Decode(p.H, aug)
	if err != nil {
		return Result{}, err
	}
	res := Result{
		Partition:       newP,
		CommVolume:      partition.CutSize(p.H, newP),
		MigrationVolume: mig.Volume,
		Moved:           mig.Moved,
		RepartTime:      time.Since(start),
		Warm:            true,
	}
	method := b.cfg.Method.String()
	obsWarmReparts.With("warm").Inc()
	obsRepartitions.With(method).Inc()
	obsRepartNs.With(method).Observe(int64(res.RepartTime))
	obsCommVolume.With(method).Add(res.CommVolume)
	obsMigVolume.With(method).Add(res.MigrationVolume)
	return res, nil
}

// hypergraphRepart is the paper's algorithm: build H̄, partition with fixed
// vertices, decode.
func (b *Balancer) hypergraphRepart(h *hypergraph.Hypergraph, old partition.Partition, epoch int64) (partition.Partition, error) {
	r, err := BuildRepartition(h, old, b.cfg.K, b.cfg.Alpha)
	if err != nil {
		return partition.Partition{}, err
	}
	aug, err := hgp.Partition(r.H, b.hgpOptions(epoch))
	if err != nil {
		return partition.Partition{}, err
	}
	p, _, err := r.Decode(h, aug)
	return p, err
}

func (b *Balancer) graphOf(p Problem) *graph.Graph {
	if p.G != nil {
		return p.G
	}
	return graph.FromHypergraph(p.H, b.cfg.MaxClique)
}

func (b *Balancer) hgpOptions(epoch int64) hgp.Options {
	return hgp.Options{
		K:             b.cfg.K,
		Imbalance:     b.cfg.Imbalance,
		Seed:          b.cfg.Seed + epoch*7919,
		CoarsenTo:     b.cfg.CoarsenTo,
		InitialStarts: b.cfg.InitialStarts,
		RefinePasses:  b.cfg.RefinePasses,
		Parallelism:   b.cfg.Parallelism,
	}
}

func (b *Balancer) gpOptions(epoch int64) gp.Options {
	return gp.Options{
		K:             b.cfg.K,
		Imbalance:     b.cfg.Imbalance,
		Seed:          b.cfg.Seed + epoch*7919,
		CoarsenTo:     b.cfg.CoarsenTo,
		InitialStarts: b.cfg.InitialStarts,
		RefinePasses:  b.cfg.RefinePasses,
	}
}

// refineCaps returns per-part weight caps for the refine-only ablation.
func refineCaps(h *hypergraph.Hypergraph, k int, eps float64) []int64 {
	total := h.TotalWeight()
	capv := int64(float64(total) / float64(k) * (1 + eps))
	if capv < 1 {
		capv = 1
	}
	caps := make([]int64, k)
	for p := range caps {
		caps[p] = capv
	}
	return caps
}
