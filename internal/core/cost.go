package core

import "time"

// CostModel evaluates the total execution time model of Section 1:
//
//	t_tot = α (t_comp + t_comm) + t_mig + t_repart
//
// with per-unit rates turning volumes into times. The paper drops t_comp
// (assumed balanced) and t_repart (assumed small); DroppedTerms reproduces
// that reduced objective α·t_comm + t_mig.
type CostModel struct {
	// CommSecPerUnit converts one unit of communication volume into
	// seconds per iteration.
	CommSecPerUnit float64
	// MigSecPerUnit converts one unit of migration volume into seconds.
	MigSecPerUnit float64
	// CompSecPerIter is the (balanced) computation time per iteration.
	CompSecPerIter float64
}

// Estimate is a t_tot breakdown for one epoch.
type Estimate struct {
	Comp, Comm, Mig, Repart float64 // seconds
}

// Total returns t_tot in seconds.
func (e Estimate) Total() float64 { return e.Comp + e.Comm + e.Mig + e.Repart }

// Evaluate applies the model to one epoch's result.
func (m CostModel) Evaluate(r Result, alpha int64) Estimate {
	return Estimate{
		Comp:   float64(alpha) * m.CompSecPerIter,
		Comm:   float64(alpha) * float64(r.CommVolume) * m.CommSecPerUnit,
		Mig:    float64(r.MigrationVolume) * m.MigSecPerUnit,
		Repart: r.RepartTime.Seconds(),
	}
}

// DroppedTerms returns the reduced objective α·t_comm + t_mig the paper
// minimizes, in seconds.
func (m CostModel) DroppedTerms(r Result, alpha int64) float64 {
	return float64(alpha)*float64(r.CommVolume)*m.CommSecPerUnit +
		float64(r.MigrationVolume)*m.MigSecPerUnit
}

// DefaultCostModel is a nominal cluster profile: 1 µs per communication
// unit, 1 µs per migration unit, 10 ms of computation per iteration. Only
// ratios matter for method comparisons.
var DefaultCostModel = CostModel{
	CommSecPerUnit: 1e-6,
	MigSecPerUnit:  1e-6,
	CompSecPerIter: 1e-2,
}

// RepartSeconds converts a measured repartitioning duration for inclusion
// in Estimate.Repart.
func RepartSeconds(d time.Duration) float64 { return d.Seconds() }
