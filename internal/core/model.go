// Package core implements the paper's primary contribution: the
// repartitioning hypergraph model of Section 3. Given the epoch-j
// computation hypergraph H^j and the epoch j-1 partition, it constructs the
// augmented hypergraph H̄^j whose connectivity-1 cut under a fixed-vertex
// constraint equals α·(communication volume) + (migration volume), reduces
// dynamic load balancing to hypergraph partitioning with fixed vertices,
// and decodes the result back into a partition plus a migration plan.
//
// The package also provides the Balancer front-end exposing the four
// algorithms benchmarked in Section 5 (Zoltan-repart, Zoltan-scratch,
// ParMETIS-repart, ParMETIS-scratch equivalents) and the total-cost model
// t_tot = α(t_comp + t_comm) + t_mig + t_repart of Section 1.
package core

import (
	"fmt"

	"hyperbal/internal/hypergraph"
	"hyperbal/internal/partition"
)

// RepartitionHypergraph is the augmented hypergraph H̄^j together with the
// bookkeeping needed to decode a partition of it.
type RepartitionHypergraph struct {
	// H is the augmented hypergraph: the original numVertices vertices
	// followed by K partition vertices u_0..u_{K-1}, each fixed to its
	// part. Original net costs are scaled by Alpha; each original vertex
	// carries one migration net {v, u_old(v)} with cost Size(v).
	H *hypergraph.Hypergraph
	// NumVertices is the number of original (computation) vertices.
	NumVertices int
	// K is the part count; partition vertex u_i has index NumVertices+i.
	K int
	// Alpha is the iteration count the communication costs were scaled by.
	Alpha int64
	// Old is the epoch j-1 partition the migration nets encode.
	Old partition.Partition
}

// BuildRepartition constructs the repartitioning hypergraph H̄^j from the
// epoch hypergraph h and the previous assignment old (Section 3):
//
//   - one zero-weight partition vertex u_i per part i, fixed to part i;
//   - every communication net's cost multiplied by alpha;
//   - one migration net {v, u_i} per vertex v previously assigned to part
//     i, with cost Size(v) — if v lands in part q != i, the net is cut with
//     connectivity 2 and contributes exactly Size(v) to the cut.
//
// New vertices (absent from the old epoch) must carry old assignments too —
// the paper attaches them to "the partition vertex associated with the
// partition they were created" on; callers encode that in old.
func BuildRepartition(h *hypergraph.Hypergraph, old partition.Partition, k int, alpha int64) (*RepartitionHypergraph, error) {
	n := h.NumVertices()
	if len(old.Parts) != n {
		return nil, fmt.Errorf("core: old partition covers %d vertices, hypergraph has %d", len(old.Parts), n)
	}
	if alpha < 1 {
		return nil, fmt.Errorf("core: alpha must be >= 1, got %d", alpha)
	}
	if k < 1 {
		return nil, fmt.Errorf("core: k must be >= 1, got %d", k)
	}
	for v, p := range old.Parts {
		if p < 0 || int(p) >= k {
			return nil, fmt.Errorf("core: vertex %d previously on part %d, want [0,%d)", v, p, k)
		}
	}

	b := hypergraph.NewBuilder(n + k)
	for v := 0; v < n; v++ {
		b.SetWeight(v, h.Weight(v))
		b.SetSize(v, h.Size(v))
	}
	for i := 0; i < k; i++ {
		u := n + i
		b.SetWeight(u, 0) // partition vertices carry no computational load
		b.SetSize(u, 0)
		b.Fix(u, i)
	}
	// Communication nets, scaled by alpha.
	for netID := 0; netID < h.NumNets(); netID++ {
		b.AddNetInt32(h.Cost(netID)*alpha, h.Pins(netID))
	}
	// Migration nets.
	for v := 0; v < n; v++ {
		b.AddNet(h.Size(v), v, n+int(old.Parts[v]))
	}
	return &RepartitionHypergraph{
		H:           b.Build(),
		NumVertices: n,
		K:           k,
		Alpha:       alpha,
		Old:         old.Clone(),
	}, nil
}

// Decode extracts the epoch-j partition of the original vertices from a
// partition of the augmented hypergraph, verifying the fixed-vertex
// constraint held, and returns it together with the migration statistics.
func (r *RepartitionHypergraph) Decode(h *hypergraph.Hypergraph, aug partition.Partition) (partition.Partition, Migration, error) {
	if len(aug.Parts) != r.NumVertices+r.K {
		return partition.Partition{}, Migration{}, fmt.Errorf("core: augmented partition covers %d vertices, want %d", len(aug.Parts), r.NumVertices+r.K)
	}
	for i := 0; i < r.K; i++ {
		if got := aug.Of(r.NumVertices + i); got != i {
			return partition.Partition{}, Migration{}, fmt.Errorf("core: partition vertex u_%d landed on part %d; fixed-vertex constraint violated", i, got)
		}
	}
	p := partition.Partition{Parts: append([]int32(nil), aug.Parts[:r.NumVertices]...), K: r.K}
	mig := ComputeMigration(h, r.Old, p)
	return p, mig, nil
}

// Migration summarizes the data movement between two epochs.
type Migration struct {
	Volume int64 // total size of moved vertex data
	Moved  int   // number of moved vertices
}

// ComputeMigration measures the migration implied by moving from old to new.
func ComputeMigration(h *hypergraph.Hypergraph, old, new partition.Partition) Migration {
	return Migration{
		Volume: partition.MigrationVolume(h, old, new),
		Moved:  partition.MovedVertices(old, new),
	}
}

// ModelCut verifies the central identity of the model: the connectivity-1
// cut of the augmented hypergraph equals alpha*commVolume + migrationVolume.
// Exposed for tests and the worked example of Figure 1.
func (r *RepartitionHypergraph) ModelCut(aug partition.Partition) int64 {
	return partition.CutSize(r.H, aug)
}

// Extend lifts an epoch partition to the augmented vertex set (partition
// vertices appended at their fixed parts), for feeding ModelCut.
func (r *RepartitionHypergraph) Extend(p partition.Partition) partition.Partition {
	parts := make([]int32, r.NumVertices+r.K)
	copy(parts, p.Parts)
	for i := 0; i < r.K; i++ {
		parts[r.NumVertices+i] = int32(i)
	}
	return partition.Partition{Parts: parts, K: r.K}
}
