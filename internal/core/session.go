package core

import (
	"fmt"

	"hyperbal/internal/partition"
)

// Session manages the epoch lifecycle of an adaptive application: it owns
// the current distribution, decides when rebalancing is worthwhile (the
// "even if the original problem is well balanced ... the computation may
// become unbalanced over time" motivation of Section 1), and accumulates
// per-epoch results for the t_tot accounting.
type Session struct {
	bal   *Balancer
	cur   partition.Partition
	epoch int64

	// Threshold is the imbalance above which ShouldRebalance fires
	// (default: 2x the balancer's epsilon).
	Threshold float64

	// History records every load-balance operation of the session.
	History []Result
}

// NewSession computes the epoch-1 static partition of the problem and
// returns the running session.
func NewSession(bal *Balancer, p Problem) (*Session, Result, error) {
	res, err := bal.Partition(p)
	if err != nil {
		return nil, Result{}, err
	}
	s := &Session{
		bal:       bal,
		cur:       res.Partition.Clone(),
		Threshold: 2 * bal.Config().Imbalance,
	}
	s.History = append(s.History, res)
	return s, res, nil
}

// Current returns the session's current distribution.
func (s *Session) Current() partition.Partition { return s.cur }

// Epoch returns the number of completed load-balance operations after the
// initial partition.
func (s *Session) Epoch() int64 { return s.epoch }

// ShouldRebalance reports whether the current distribution has drifted out
// of balance on the (possibly weight-updated) problem. It requires an
// unchanged vertex set; structural changes always warrant Rebalance with
// an inherited partition.
func (s *Session) ShouldRebalance(p Problem) (bool, error) {
	if p.H.NumVertices() != len(s.cur.Parts) {
		obsRebalanceYes.Inc()
		return true, nil // structure changed: rebalance unconditionally
	}
	w := partition.Weights(p.H, s.cur)
	should := partition.Imbalance(w) > s.Threshold
	if should {
		obsRebalanceYes.Inc()
	} else {
		obsRebalanceNo.Inc()
	}
	return should, nil
}

// Rebalance repartitions the problem against the session's current
// distribution (unchanged vertex set) and installs the result.
func (s *Session) Rebalance(p Problem) (Result, error) {
	if p.H.NumVertices() != len(s.cur.Parts) {
		return Result{}, fmt.Errorf("core: vertex set changed (%d -> %d); use RebalanceInherited with the epoch's inherited partition",
			len(s.cur.Parts), p.H.NumVertices())
	}
	return s.rebalance(p, s.cur)
}

// RebalanceInherited repartitions a structurally changed problem given the
// inherited assignment over the new vertex set (e.g. from a dynamics
// generator) and installs the result.
func (s *Session) RebalanceInherited(p Problem, inherited partition.Partition) (Result, error) {
	if len(inherited.Parts) != p.H.NumVertices() {
		return Result{}, fmt.Errorf("core: inherited partition covers %d vertices, problem has %d",
			len(inherited.Parts), p.H.NumVertices())
	}
	return s.rebalance(p, inherited)
}

func (s *Session) rebalance(p Problem, old partition.Partition) (Result, error) {
	s.epoch++
	res, err := s.bal.Repartition(p, old, s.epoch)
	if err != nil {
		s.epoch--
		return Result{}, err
	}
	s.cur = res.Partition.Clone()
	s.History = append(s.History, res)
	obsSessionEpochs.Inc()
	obsSessionCost.Add(res.TotalCost(s.bal.Config().Alpha))
	return res, nil
}

// TotalCost sums α·comm + mig over the session's history (the objective
// the paper minimizes, accumulated over the whole run).
func (s *Session) TotalCost(alpha int64) int64 {
	var t int64
	for _, r := range s.History {
		t += r.TotalCost(alpha)
	}
	return t
}
