package core

import (
	"fmt"
	"sync"

	"hyperbal/internal/partition"
)

// Session manages the epoch lifecycle of an adaptive application: it owns
// the current distribution, decides when rebalancing is worthwhile (the
// "even if the original problem is well balanced ... the computation may
// become unbalanced over time" motivation of Section 1), and accumulates
// per-epoch results for the t_tot accounting.
//
// # Concurrency contract
//
// Every Session method is safe for concurrent use: an internal mutex
// serializes them, so two concurrent Rebalance calls execute one after the
// other with consistent epoch numbering (this is what the balancerd
// session store relies on in addition to its own per-session queueing).
// The mutex does NOT make concurrent lifecycles meaningful — a caller that
// interleaves ShouldRebalance and Rebalance from different goroutines gets
// serialized but arbitrary ordering; coordinate epochs above the Session
// if ordering matters. The exported Threshold and History fields are NOT
// guarded: mutate Threshold and read History only while no method call is
// in flight, or use the HistoryLen/LastResult accessors.
type Session struct {
	mu    sync.Mutex
	bal   *Balancer
	cur   partition.Partition
	epoch int64

	// Threshold is the imbalance above which ShouldRebalance fires
	// (default: 2x the balancer's epsilon). Set it before sharing the
	// session across goroutines.
	Threshold float64

	// History records every load-balance operation of the session. Safe to
	// read only while no method call is in flight (see the concurrency
	// contract above).
	History []Result
}

// NewSession computes the epoch-1 static partition of the problem and
// returns the running session.
func NewSession(bal *Balancer, p Problem) (*Session, Result, error) {
	res, err := bal.Partition(p)
	if err != nil {
		return nil, Result{}, err
	}
	return NewSessionWith(bal, res), res, nil
}

// NewSessionWith returns a running session seeded with a previously
// computed epoch-1 result — the cache-hit path of a serving layer that
// already holds the static partition for this problem and configuration.
// The result must come from a Balancer with the same configuration.
func NewSessionWith(bal *Balancer, res Result) *Session {
	s := &Session{
		bal:       bal,
		cur:       res.Partition.Clone(),
		Threshold: 2 * bal.Config().Imbalance,
	}
	s.History = append(s.History, res)
	return s
}

// NewSessionAt returns a running session restored at a given epoch — the
// handoff path of a distributed serving tier adopting a session serialized
// by another replica. res must be the session's last load-balance result
// (its partition becomes the current distribution) and epoch the number of
// completed operations; the next Rebalance then runs with exactly the
// inputs the originating replica would have used, so post-handoff results
// stay byte-identical to an uninterrupted run. History starts over at res.
func NewSessionAt(bal *Balancer, res Result, epoch int64) *Session {
	s := NewSessionWith(bal, res)
	s.epoch = epoch
	return s
}

// Balancer returns the balancer the session partitions with.
func (s *Session) Balancer() *Balancer { return s.bal }

// Current returns the session's current distribution. The returned
// partition is a snapshot reference: it is replaced (not mutated) by
// Rebalance, so holding it across a rebalance is safe but stale.
func (s *Session) Current() partition.Partition {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.cur
}

// Epoch returns the number of completed load-balance operations after the
// initial partition.
func (s *Session) Epoch() int64 {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.epoch
}

// HistoryLen returns the number of recorded load-balance operations
// (including the initial partition).
func (s *Session) HistoryLen() int {
	s.mu.Lock()
	defer s.mu.Unlock()
	return len(s.History)
}

// LastResult returns the most recent load-balance result.
func (s *Session) LastResult() Result {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.History[len(s.History)-1]
}

// ShouldRebalance reports whether the current distribution has drifted out
// of balance on the (possibly weight-updated) problem. It requires an
// unchanged vertex set; structural changes always warrant Rebalance with
// an inherited partition.
func (s *Session) ShouldRebalance(p Problem) (bool, error) {
	s.mu.Lock()
	defer s.mu.Unlock()
	if p.H.NumVertices() != len(s.cur.Parts) {
		obsRebalanceYes.Inc()
		return true, nil // structure changed: rebalance unconditionally
	}
	w := partition.Weights(p.H, s.cur)
	should := partition.Imbalance(w) > s.Threshold
	if should {
		obsRebalanceYes.Inc()
	} else {
		obsRebalanceNo.Inc()
	}
	return should, nil
}

// Rebalance repartitions the problem against the session's current
// distribution (unchanged vertex set) and installs the result.
func (s *Session) Rebalance(p Problem) (Result, error) {
	s.mu.Lock()
	defer s.mu.Unlock()
	if p.H.NumVertices() != len(s.cur.Parts) {
		return Result{}, fmt.Errorf("core: vertex set changed (%d -> %d); use RebalanceInherited with the epoch's inherited partition",
			len(s.cur.Parts), p.H.NumVertices())
	}
	return s.rebalance(p, s.cur)
}

// RebalanceInherited repartitions a structurally changed problem given the
// inherited assignment over the new vertex set (e.g. from a dynamics
// generator) and installs the result.
func (s *Session) RebalanceInherited(p Problem, inherited partition.Partition) (Result, error) {
	s.mu.Lock()
	defer s.mu.Unlock()
	if len(inherited.Parts) != p.H.NumVertices() {
		return Result{}, fmt.Errorf("core: inherited partition covers %d vertices, problem has %d",
			len(inherited.Parts), p.H.NumVertices())
	}
	return s.rebalance(p, inherited)
}

// RebalanceWarm is Rebalance with a warm-started partitioner: the epoch's
// solve is seeded from the session's current distribution and, when dirty
// is non-nil (e.g. from hypergraph.Delta.DirtyVertices), restricted to the
// dirty region. Methods without warm support fall back to the cold path;
// see Balancer.RepartitionWarm.
func (s *Session) RebalanceWarm(p Problem, dirty []bool) (Result, error) {
	s.mu.Lock()
	defer s.mu.Unlock()
	if p.H.NumVertices() != len(s.cur.Parts) {
		return Result{}, fmt.Errorf("core: vertex set changed (%d -> %d); use RebalanceWarmInherited with the epoch's inherited partition",
			len(s.cur.Parts), p.H.NumVertices())
	}
	return s.rebalanceWarm(p, s.cur, dirty)
}

// RebalanceWarmInherited is RebalanceInherited with a warm-started
// partitioner seeded from the given inherited assignment.
func (s *Session) RebalanceWarmInherited(p Problem, inherited partition.Partition, dirty []bool) (Result, error) {
	s.mu.Lock()
	defer s.mu.Unlock()
	if len(inherited.Parts) != p.H.NumVertices() {
		return Result{}, fmt.Errorf("core: inherited partition covers %d vertices, problem has %d",
			len(inherited.Parts), p.H.NumVertices())
	}
	return s.rebalanceWarm(p, inherited, dirty)
}

// Adopt installs a previously computed rebalance result as the next epoch
// without running the partitioner — the cache-hit path of a serving layer.
// The result must be exactly what Rebalance would have produced for the
// session's next epoch (same problem fingerprint, configuration, epoch
// seed and previous distribution); the caller is responsible for that
// equivalence, typically via a fingerprint-keyed cache.
func (s *Session) Adopt(res Result) {
	s.mu.Lock()
	defer s.mu.Unlock()
	s.epoch++
	s.cur = res.Partition.Clone()
	s.History = append(s.History, res)
	obsSessionEpochs.Inc()
	obsSessionCost.Add(res.TotalCost(s.bal.Config().Alpha))
}

// rebalance runs with s.mu held.
func (s *Session) rebalance(p Problem, old partition.Partition) (Result, error) {
	s.epoch++
	res, err := s.bal.Repartition(p, old, s.epoch)
	if err != nil {
		s.epoch--
		return Result{}, err
	}
	s.install(res)
	return res, nil
}

// rebalanceWarm runs with s.mu held.
func (s *Session) rebalanceWarm(p Problem, old partition.Partition, dirty []bool) (Result, error) {
	s.epoch++
	res, err := s.bal.RepartitionWarm(p, old, s.epoch, dirty)
	if err != nil {
		s.epoch--
		return Result{}, err
	}
	s.install(res)
	return res, nil
}

// install records a completed epoch result (s.mu held, epoch already
// advanced).
func (s *Session) install(res Result) {
	s.cur = res.Partition.Clone()
	s.History = append(s.History, res)
	obsSessionEpochs.Inc()
	obsSessionCost.Add(res.TotalCost(s.bal.Config().Alpha))
}

// TotalCost sums α·comm + mig over the session's history (the objective
// the paper minimizes, accumulated over the whole run).
func (s *Session) TotalCost(alpha int64) int64 {
	s.mu.Lock()
	defer s.mu.Unlock()
	var t int64
	for _, r := range s.History {
		t += r.TotalCost(alpha)
	}
	return t
}
