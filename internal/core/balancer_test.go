package core

import (
	"math/rand"
	"testing"

	"hyperbal/internal/graph"
	"hyperbal/internal/hypergraph"
	"hyperbal/internal/partition"
)

// mesh returns the hypergraph + graph pair of a w x h grid, the shape of
// problem the paper's datasets model (structurally symmetric).
func mesh(w, h int) Problem {
	b := graph.NewBuilder(w * h)
	id := func(x, y int) int { return y*w + x }
	for y := 0; y < h; y++ {
		for x := 0; x < w; x++ {
			if x+1 < w {
				b.AddEdge(id(x, y), id(x+1, y), 1)
			}
			if y+1 < h {
				b.AddEdge(id(x, y), id(x, y+1), 1)
			}
		}
	}
	g := b.Build()
	return Problem{H: graph.ToHypergraph(g), G: g}
}

func TestBalancerStaticAllMethods(t *testing.T) {
	p := mesh(16, 16)
	for _, m := range Methods {
		b, err := NewBalancer(Config{K: 4, Alpha: 10, Seed: 1, Method: m})
		if err != nil {
			t.Fatal(err)
		}
		res, err := b.Partition(p)
		if err != nil {
			t.Fatalf("%v: %v", m, err)
		}
		if err := res.Partition.Validate(); err != nil {
			t.Fatalf("%v: %v", m, err)
		}
		w := partition.Weights(p.H, res.Partition)
		if !partition.IsBalanced(w, 0.15) {
			t.Fatalf("%v: imbalanced %v", m, w)
		}
		if res.CommVolume <= 0 || res.CommVolume > 200 {
			t.Fatalf("%v: suspicious comm volume %d", m, res.CommVolume)
		}
		if res.MigrationVolume != 0 {
			t.Fatalf("%v: static partition reported migration", m)
		}
	}
}

func TestBalancerRepartitionAllMethods(t *testing.T) {
	p := mesh(16, 16)
	for _, m := range Methods {
		b, err := NewBalancer(Config{K: 4, Alpha: 10, Seed: 2, Method: m})
		if err != nil {
			t.Fatal(err)
		}
		first, err := b.Partition(p)
		if err != nil {
			t.Fatalf("%v: %v", m, err)
		}
		res, err := b.Repartition(p, first.Partition, 1)
		if err != nil {
			t.Fatalf("%v: %v", m, err)
		}
		if err := res.Partition.Validate(); err != nil {
			t.Fatalf("%v: %v", m, err)
		}
		// Unchanged problem: repartitioning should not blow up migration;
		// for the repart methods it should move little.
		if m == HypergraphRepart || m == GraphRepart {
			if res.MigrationVolume > p.H.TotalSize()/4 {
				t.Fatalf("%v: moved %d of %d on an unchanged problem", m, res.MigrationVolume, p.H.TotalSize())
			}
		}
		if res.TotalCost(10) != 10*res.CommVolume+res.MigrationVolume {
			t.Fatalf("%v: TotalCost identity broken", m)
		}
	}
}

// The headline behaviour at alpha=1: repartitioning must beat
// partition-from-scratch on total cost when the problem barely changed.
func TestRepartBeatsScratchAtLowAlpha(t *testing.T) {
	p := mesh(20, 20)
	mkBalancer := func(m Method) *Balancer {
		b, err := NewBalancer(Config{K: 8, Alpha: 1, Seed: 5, Method: m})
		if err != nil {
			t.Fatal(err)
		}
		return b
	}
	base := mkBalancer(HypergraphRepart)
	first, err := base.Partition(p)
	if err != nil {
		t.Fatal(err)
	}
	// Perturb vertex weights slightly (simulating drift).
	rng := rand.New(rand.NewSource(7))
	hb := hypergraph.NewBuilder(p.H.NumVertices())
	for v := 0; v < p.H.NumVertices(); v++ {
		w := p.H.Weight(v)
		if rng.Float64() < 0.1 {
			w *= 2
		}
		hb.SetWeight(v, w)
		hb.SetSize(v, p.H.Size(v))
	}
	for n := 0; n < p.H.NumNets(); n++ {
		pins := p.H.Pins(n)
		ip := make([]int, len(pins))
		for i, q := range pins {
			ip[i] = int(q)
		}
		hb.AddNet(p.H.Cost(n), ip...)
	}
	p2 := Problem{H: hb.Build()}

	repart, err := mkBalancer(HypergraphRepart).Repartition(p2, first.Partition, 1)
	if err != nil {
		t.Fatal(err)
	}
	scratch, err := mkBalancer(HypergraphScratch).Repartition(p2, first.Partition, 1)
	if err != nil {
		t.Fatal(err)
	}
	if repart.TotalCost(1) >= scratch.TotalCost(1) {
		t.Fatalf("at alpha=1 repart (%d) should beat scratch (%d)",
			repart.TotalCost(1), scratch.TotalCost(1))
	}
	if repart.MigrationVolume >= scratch.MigrationVolume {
		t.Fatalf("repart migration %d should be below scratch %d",
			repart.MigrationVolume, scratch.MigrationVolume)
	}
}

func TestBalancerGraphDerivation(t *testing.T) {
	// Graph-based methods must work when only H is supplied.
	p := mesh(10, 10)
	p.G = nil
	b, err := NewBalancer(Config{K: 4, Alpha: 10, Seed: 3, Method: GraphRepart})
	if err != nil {
		t.Fatal(err)
	}
	first, err := b.Partition(p)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := b.Repartition(p, first.Partition, 1); err != nil {
		t.Fatal(err)
	}
}

func TestBalancerConfigValidation(t *testing.T) {
	if _, err := NewBalancer(Config{K: 0}); err == nil {
		t.Fatal("expected error for K=0")
	}
	b, err := NewBalancer(Config{K: 2})
	if err != nil {
		t.Fatal(err)
	}
	if b.Config().Alpha != 1 || b.Config().Imbalance != 0.05 {
		t.Fatalf("defaults not applied: %+v", b.Config())
	}
}

func TestMethodString(t *testing.T) {
	names := map[Method]string{
		HypergraphRepart:  "Zoltan-repart",
		HypergraphScratch: "Zoltan-scratch",
		GraphRepart:       "ParMETIS-repart",
		GraphScratch:      "ParMETIS-scratch",
	}
	for m, want := range names {
		if m.String() != want {
			t.Fatalf("%d.String() = %q, want %q", int(m), m.String(), want)
		}
	}
	if Method(99).String() == "" {
		t.Fatal("unknown method should stringify")
	}
}

func TestRefineOnlyAblation(t *testing.T) {
	// The A2 ablation method must produce valid partitions, never move
	// more than it gains, and generally lose to the full model on total
	// cost (the Section 1 claim). We assert validity plus the model
	// inequality on the method's own objective.
	p := mesh(16, 16)
	mk := func(m Method) *Balancer {
		b, err := NewBalancer(Config{K: 4, Alpha: 10, Seed: 21, Method: m})
		if err != nil {
			t.Fatal(err)
		}
		return b
	}
	first, err := mk(HypergraphRepart).Partition(p)
	if err != nil {
		t.Fatal(err)
	}
	// Perturb the old partition to give refinement something to do.
	old := first.Partition.Clone()
	for v := 0; v < 40; v++ {
		old.Parts[v*5%256] = int32(v % 4)
	}
	oldCost := 10*partition.CutSize(p.H, old) + 0 // staying put has zero migration
	ro, err := mk(HypergraphRefineOnly).Repartition(p, old, 1)
	if err != nil {
		t.Fatal(err)
	}
	if err := ro.Partition.Validate(); err != nil {
		t.Fatal(err)
	}
	if ro.TotalCost(10) > oldCost {
		t.Fatalf("refine-only worsened the combined objective: %d > %d", ro.TotalCost(10), oldCost)
	}
	full, err := mk(HypergraphRepart).Repartition(p, old, 1)
	if err != nil {
		t.Fatal(err)
	}
	t.Logf("A2: full model total %d vs refine-only %d (α=10)", full.TotalCost(10), ro.TotalCost(10))
	if name := HypergraphRefineOnly.String(); name != "Zoltan-refineonly" {
		t.Fatalf("name: %s", name)
	}
}
