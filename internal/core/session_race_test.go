package core

import (
	"sync"
	"testing"
)

// TestSessionConcurrentRebalance is a regression test for the Session
// concurrency contract: concurrent Rebalance / ShouldRebalance / accessor
// calls must be serialized by the internal mutex (run under -race).
// Concurrent callers may interleave in any order, but bookkeeping must
// stay consistent: epoch == len(History)-1 and every epoch advances by 1.
func TestSessionConcurrentRebalance(t *testing.T) {
	p := mesh(12, 12)
	bal, err := NewBalancer(Config{K: 4, Alpha: 10, Seed: 3, Method: HypergraphRepart})
	if err != nil {
		t.Fatal(err)
	}
	s, _, err := NewSession(bal, p)
	if err != nil {
		t.Fatal(err)
	}

	const callers, rounds = 8, 4
	var wg sync.WaitGroup
	errs := make(chan error, callers*rounds)
	for c := 0; c < callers; c++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for r := 0; r < rounds; r++ {
				if _, err := s.ShouldRebalance(p); err != nil {
					errs <- err
					return
				}
				if _, err := s.Rebalance(p); err != nil {
					errs <- err
					return
				}
				_ = s.Current()
				_ = s.Epoch()
				_ = s.LastResult()
				_ = s.HistoryLen()
				_ = s.TotalCost(10)
			}
		}()
	}
	wg.Wait()
	close(errs)
	for err := range errs {
		t.Fatal(err)
	}

	wantEpoch := int64(callers * rounds)
	if s.Epoch() != wantEpoch {
		t.Fatalf("epoch = %d, want %d (lost update under concurrency)", s.Epoch(), wantEpoch)
	}
	if got := s.HistoryLen(); int64(got) != wantEpoch+1 {
		t.Fatalf("history len = %d, want %d", got, wantEpoch+1)
	}
}
