package hgp

import (
	"hyperbal/internal/hypergraph"
)

// RefineKwayWithMigration performs greedy k-way refinement under the
// combined repartitioning objective alpha*cut + migration: moving v off
// its old part costs Size(v), moving it home refunds Size(v). This is the
// "account for migration costs only in the refinement phase" strategy of
// Schloegel et al. that Section 1 of the paper argues is weaker than
// folding migration into the model itself (migration nets + fixed
// vertices) — implemented here to make that comparison measurable (the A2
// ablation). Fixed vertices never move. Returns the final cut.
func RefineKwayWithMigration(h *hypergraph.Hypergraph, k int, parts []int32, oldPart []int32, alpha int64, caps []int64, passes int) int64 {
	if alpha < 1 {
		alpha = 1
	}
	s := NewKwayState(h, k, parts)
	buf := make([]int32, 0, k)
	mark := make([]bool, k)
	for pass := 0; pass < passes; pass++ {
		improved := false
		for v := 0; v < h.NumVertices(); v++ {
			if h.Fixed(v) != hypergraph.Free {
				continue
			}
			from := s.PartOf(v)
			cands := s.AdjacentParts(v, buf, mark)
			var bestTo int32 = -1
			var bestGain int64
			overFrom := s.PartWeight(from) > caps[from]
			var forcedTo int32 = -1
			var forcedGain int64
			for _, to := range cands {
				if s.PartWeight(to)+h.Weight(v) > caps[to] {
					continue
				}
				gain := alpha * s.MoveGain(v, to)
				if oldPart != nil {
					if from == oldPart[v] {
						gain -= h.Size(v)
					}
					if to == oldPart[v] {
						gain += h.Size(v)
					}
				}
				if gain > bestGain {
					bestGain = gain
					bestTo = to
				}
				if overFrom && (forcedTo == -1 || gain > forcedGain) {
					forcedGain = gain
					forcedTo = to
				}
			}
			to := bestTo
			if bestGain <= 0 {
				to = -1
			}
			if to == -1 && overFrom {
				to = forcedTo
			}
			if to >= 0 {
				s.Move(v, to)
				improved = true
			}
		}
		if !improved {
			break
		}
	}
	return s.Cut()
}
