package hgp

import (
	"fmt"
	"math/rand"
	"time"

	"hyperbal/internal/hypergraph"
	"hyperbal/internal/partition"
)

// WarmSpec seeds PartitionWarm from a previous epoch's solution.
type WarmSpec struct {
	// Parts is the inherited assignment over h's vertex set (entries in
	// [0,K)). It is not mutated.
	Parts []int32
	// Dirty marks the vertices touched by the epoch transition (from
	// hypergraph.Delta.DirtyVertices). Nil means unknown — the whole
	// hypergraph is treated as dirty and the full seeded V-cycle runs.
	Dirty []bool
}

// warmVCycleFraction is the dirty fraction above which localized
// refinement stops paying for itself and the warm path escalates to a
// partition-seeded V-cycle. Past roughly a quarter of the vertices, the
// 1-hop halo covers most of the hypergraph anyway.
const warmVCycleFraction = 0.25

// warmColdFraction is the dirty fraction above which the inherited
// solution carries too little signal to be worth seeding from at all: the
// V-cycle's partition-restricted coarsening would mostly preserve a
// stale structure, so the warm path runs the cold partitioner instead —
// warm-starting is an optimization for small transitions, not a license
// to degrade quality on large ones.
const warmColdFraction = 0.4

// WarmStats reports what the warm path actually did.
type WarmStats struct {
	// Mode is "localized" (dirty-region refinement only), "vcycle"
	// (partition-seeded V-cycle), "cold" (drift too large or warm result
	// infeasible — the cold partitioner ran) or "trivial" (K < 2 or empty
	// hypergraph).
	Mode string
	// DirtyFraction is the fraction of vertices marked dirty (1 when the
	// spec carried no dirty set).
	DirtyFraction float64
	// Cut is the connectivity-1 cut of the returned partition.
	Cut int64
}

// PartitionWarm computes a k-way partition of h seeded from an inherited
// solution instead of from scratch: it skips the multi-start coarse solve
// and recursive bisection entirely, repairs balance, and re-refines only
// the dirty region (plus a 1-hop halo) when the epoch transition touched
// a small part of the hypergraph — escalating to a full partition-seeded
// V-cycle when it did not. Fixed vertices are honored throughout.
//
// The warm path shares the deterministic kernel parallelism of Partition:
// the balance repair scan, the restricted dirty∪halo refinement, and the
// seeded V-cycle all run their propose phases on Options.Parallelism
// workers with index-ordered serial resolution, so results stay
// byte-identical for every parallelism value — by invariant now, not by
// being serial. Like Partition it satisfies Eq. 1 on all but pathological
// inputs; callers can check with partition.IsBalanced.
func PartitionWarm(h *hypergraph.Hypergraph, opt Options, spec WarmSpec) (partition.Partition, WarmStats, error) {
	opt = opt.withDefaults()
	if err := checkFixed(h, opt.K); err != nil {
		return partition.Partition{}, WarmStats{}, err
	}
	if err := checkFractions(opt); err != nil {
		return partition.Partition{}, WarmStats{}, err
	}
	n := h.NumVertices()
	if len(spec.Parts) != n {
		return partition.Partition{}, WarmStats{}, fmt.Errorf("hgp: warm spec covers %d vertices, hypergraph has %d", len(spec.Parts), n)
	}
	if spec.Dirty != nil && len(spec.Dirty) != n {
		return partition.Partition{}, WarmStats{}, fmt.Errorf("hgp: warm dirty set covers %d vertices, hypergraph has %d", len(spec.Dirty), n)
	}
	p := partition.Partition{Parts: make([]int32, n), K: opt.K}
	if opt.K == 1 || n == 0 {
		return p, WarmStats{Mode: "trivial"}, nil
	}

	start := time.Now()
	// Seed from the inherited solution; fixed labels win over inheritance
	// (a delta may have introduced new fixed vertices).
	for v := 0; v < n; v++ {
		pv := spec.Parts[v]
		if pv < 0 || int(pv) >= opt.K {
			return partition.Partition{}, WarmStats{}, fmt.Errorf("hgp: inherited part %d of vertex %d out of range [0,%d)", pv, v, opt.K)
		}
		if f := h.Fixed(v); f != hypergraph.Free {
			pv = f
		}
		p.Parts[v] = pv
	}

	dirtyFrac := 1.0
	if spec.Dirty != nil {
		d := 0
		for _, b := range spec.Dirty {
			if b {
				d++
			}
		}
		dirtyFrac = float64(d) / float64(n)
	}
	obsWarmDirtyPermille.Observe(int64(dirtyFrac * 1000))

	px := newParctx(opt.Parallelism)
	ws := px.getWS()
	defer px.putWS(ws)
	caps := capsForTargets(h, opt.K, opt.Imbalance, opt.TargetFractions)

	var stats WarmStats
	stats.DirtyFraction = dirtyFrac
	switch {
	case spec.Dirty != nil && dirtyFrac <= warmVCycleFraction:
		stats.Mode = "localized"
		// The inherited solution can be arbitrarily imbalanced on the new
		// weights (adaptive refinement scales vertices in place). Repair
		// at the finest level with least-cut-damage moves; the moved
		// vertices join the refinement region below.
		moved := repairBalance(h, opt.K, p.Parts, caps, ws, px)
		region := expandDirty(h, spec.Dirty)
		for _, v := range moved {
			region[v] = true
		}
		// Restrict refinement to the halo: clean vertices are temporarily
		// fixed to their inherited parts, so only the region moves.
		restricted := make([]int32, n)
		for v := 0; v < n; v++ {
			if region[v] {
				restricted[v] = h.Fixed(v) // original label (usually Free)
			} else {
				restricted[v] = p.Parts[v]
			}
		}
		hr := h.WithFixed(restricted)
		if opt.KwayFM {
			refineKwayFM(hr, opt.K, p.Parts, caps, opt.RefinePasses, ws, px)
		} else {
			refineKway(hr, opt.K, p.Parts, caps, opt.RefinePasses, ws, px)
		}
		// Global polish against the original fixed labels: cheap O(V)
		// sweeps that clean up region-boundary myopia and finish any
		// balance repair the restricted pass could not complete.
		stats.Cut = warmPolish(h, opt, p.Parts, caps, ws, px)
		if !feasible(h, p.Parts, caps) {
			// The dirty region did not hold enough movable weight;
			// escalate to the seeded V-cycle.
			stats.Mode = "vcycle"
			rng := rand.New(rand.NewSource(opt.Seed ^ 0x77a7))
			vCycle(h, p.Parts, opt.K, rng, opt, px)
			stats.Cut = warmPolish(h, opt, p.Parts, caps, ws, px)
		}
	case spec.Dirty != nil && dirtyFrac <= warmColdFraction:
		stats.Mode = "vcycle"
		repairBalance(h, opt.K, p.Parts, caps, ws, px)
		rng := rand.New(rand.NewSource(opt.Seed ^ 0x77a7))
		vCycle(h, p.Parts, opt.K, rng, opt, px)
		stats.Cut = warmPolish(h, opt, p.Parts, caps, ws, px)
	default:
		// Unknown or large drift: the seed is stale — run cold.
		stats.Mode = "cold"
		cold, err := Partition(h, opt)
		if err != nil {
			return partition.Partition{}, WarmStats{}, err
		}
		copy(p.Parts, cold.Parts)
		stats.Cut = partition.CutSize(h, p)
	}

	if stats.Mode != "cold" && !feasible(h, p.Parts, caps) {
		// Safety net: warm-starting is an optimization, never a license to
		// ship an infeasible distribution. Fall back to the cold
		// partitioner, which is what the caller would have run anyway.
		cold, err := Partition(h, opt)
		if err != nil {
			return partition.Partition{}, WarmStats{}, err
		}
		copy(p.Parts, cold.Parts)
		stats.Mode = "cold"
		stats.Cut = partition.CutSize(h, p)
	}

	obsWarmPartitions.With(stats.Mode).Inc()
	obsWarmNs.ObserveSince(start)
	obsFinalCut.Set(stats.Cut)
	obsKernelEfficiency.Set(px.efficiencyPermille())
	return p, stats, nil
}

// warmPolish runs unrestricted k-way refinement sweeps on the full
// hypergraph (original fixed labels only) and returns the cut.
func warmPolish(h *hypergraph.Hypergraph, opt Options, parts []int32, caps []int64, ws *workspace, px *parctx) int64 {
	hv := h
	if !h.HasFixed() {
		hv = h.WithoutFixed()
	}
	if opt.KwayFM {
		return refineKwayFM(hv, opt.K, parts, caps, opt.RefinePasses, ws, px)
	}
	return refineKway(hv, opt.K, parts, caps, opt.RefinePasses, ws, px)
}

// expandDirty grows the dirty set by one net hop: every vertex sharing a
// net with a dirty vertex joins the region, so refinement can move the
// immediate neighborhood of a change, not just the changed vertices.
func expandDirty(h *hypergraph.Hypergraph, dirty []bool) []bool {
	n := h.NumVertices()
	region := make([]bool, n)
	copy(region, dirty)
	touched := make([]bool, h.NumNets())
	for v := 0; v < n; v++ {
		if !dirty[v] {
			continue
		}
		for _, nn := range h.Nets(v) {
			touched[nn] = true
		}
	}
	for nn := 0; nn < h.NumNets(); nn++ {
		if !touched[nn] {
			continue
		}
		for _, pin := range h.Pins(nn) {
			region[pin] = true
		}
	}
	return region
}

// repairBalance drains over-cap parts at the finest level, one
// least-cut-damage move at a time: while some part exceeds its cap, the
// free vertex of the most overloaded part whose best relocation loses
// the least connectivity-1 cut is moved to the lightest part that can
// take it. Repairing before the V-cycle matters because its
// partition-restricted coarsening would freeze an overload into coarse
// mega-vertices no refinement pass can move. Returns the moved vertices
// (for the caller to include in its refinement region).
//
// The O(V·k) candidate scan of each move runs in parallel over vertex
// shards, each keeping its local winner under the serial scan's exact
// predicate (best gain, then lightest destination); the shard winners are
// then reduced in shard index order with strict-improvement comparisons,
// which — since shard i holds strictly lower vertex ids than shard i+1 —
// reproduces the serial lowest-id-wins tie-break, so the chosen move is
// identical at every Parallelism value.
func repairBalance(h *hypergraph.Hypergraph, k int, parts []int32, caps []int64, ws *workspace, px *parctx) []int32 {
	s := ws.kwayState(h, k, parts)
	defer s.release()
	n := h.NumVertices()
	shards := kernelShards(n)
	shardV := make([]int32, shards)
	shardTo := make([]int32, shards)
	shardGain := make([]int64, shards)
	var moved []int32
	rounds := 0
	for len(moved) <= n {
		src := int32(-1)
		var worst int64
		for p := 0; p < k; p++ {
			if over := s.w[p] - caps[p]; over > worst {
				worst, src = over, int32(p)
			}
		}
		if src < 0 {
			break
		}
		rounds++
		px.forEach(shards, ws, func(i int, _ *workspace) {
			lo, hi := shardRange(n, shards, i)
			bestV, bestTo := int32(-1), int32(-1)
			var bestGain int64
			for v := lo; v < hi; v++ {
				if s.parts[v] != src || h.Fixed(v) != hypergraph.Free {
					continue
				}
				wt := h.Weight(v)
				for p := 0; p < k; p++ {
					to := int32(p)
					if to == src || s.w[p]+wt > caps[p] {
						continue
					}
					g := s.MoveGain(v, to)
					if bestV < 0 || g > bestGain || (g == bestGain && s.w[to] < s.w[bestTo]) {
						bestV, bestTo, bestGain = int32(v), to, g
					}
				}
			}
			shardV[i], shardTo[i], shardGain[i] = bestV, bestTo, bestGain
		})
		bestV, bestTo := int32(-1), int32(-1)
		var bestGain int64
		for i := 0; i < shards; i++ {
			if shardV[i] < 0 {
				continue
			}
			if bestV < 0 || shardGain[i] > bestGain || (shardGain[i] == bestGain && s.w[shardTo[i]] < s.w[bestTo]) {
				bestV, bestTo, bestGain = shardV[i], shardTo[i], shardGain[i]
			}
		}
		if bestV < 0 {
			// Nothing movable fits anywhere; the final feasibility check
			// decides whether to fall back cold.
			break
		}
		s.Move(int(bestV), bestTo)
		moved = append(moved, bestV)
	}
	obsKernelRounds.Add(int64(rounds))
	return moved
}

// feasible reports whether every part respects its weight cap.
func feasible(h *hypergraph.Hypergraph, parts []int32, caps []int64) bool {
	w := make([]int64, len(caps))
	for v, p := range parts {
		w[p] += h.Weight(v)
	}
	for p := range w {
		if w[p] > caps[p] {
			return false
		}
	}
	return true
}
