//go:build !race

package hgp

import (
	"math/rand"
	"testing"

	"hyperbal/internal/datasets"
	"hyperbal/internal/graph"
)

// TestKernelAllocGuards pins the steady-state allocs/op of the parallel
// kernel hot paths at the serial (reference-schedule) setting, so the
// arena discipline of the workspace survives refactors. Limits carry
// ~50% headroom over measured values; the contraction kernel's budget
// covers its per-shard translate buffers, which are the price of the
// parallel path and bounded by kernelShards. Excluded under -race: the
// detector inserts allocations of its own.
func TestKernelAllocGuards(t *testing.T) {
	g, err := datasets.Generate("xyce680s", kernelBenchScale, 1)
	if err != nil {
		t.Fatal(err)
	}
	h := graph.ToHypergraph(g)
	ws := newWorkspace()
	px := newParctx(1)

	rng := rand.New(rand.NewSource(1))
	match := ipmMatch(h, rng, 500, true, ws, px)
	matchCopy := append([]int32(nil), match...)

	if n := testing.AllocsPerRun(10, func() {
		r := rand.New(rand.NewSource(1))
		ipmMatch(h, r, 500, true, ws, px)
	}); n > 16 {
		t.Errorf("ipmMatch: %.0f allocs/op, want <= 16", n)
	}

	if n := testing.AllocsPerRun(10, func() {
		copy(match, matchCopy)
		contractWS(h, match, ws, px)
	}); n > 120 {
		t.Errorf("contractWS: %.0f allocs/op, want <= 120", n)
	}

	const k = 8
	rng = rand.New(rand.NewSource(3))
	base := randomBalanced(h, k, nil, rng)
	caps := capsFor(h, k, 0.10)
	parts := make([]int32, len(base))
	if n := testing.AllocsPerRun(10, func() {
		copy(parts, base)
		refineKway(h, k, parts, caps, 2, ws, px)
	}); n > 8 {
		t.Errorf("refineKway round: %.0f allocs/op, want <= 8", n)
	}
}
