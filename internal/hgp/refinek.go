package hgp

import (
	"hyperbal/internal/hypergraph"
)

// KwayState tracks per-net part pin counts for k-way incremental gain
// computation.
type KwayState struct {
	h     *hypergraph.Hypergraph
	k     int
	parts []int32
	// pinCount[n*k+p] = pins of net n in part p
	pinCount []int32
	// lambda[n] = current connectivity of net n
	lambda []int32
	w      []int64
}

func NewKwayState(h *hypergraph.Hypergraph, k int, parts []int32) *KwayState {
	s := &KwayState{
		h:        h,
		k:        k,
		parts:    parts,
		pinCount: make([]int32, h.NumNets()*k),
		lambda:   make([]int32, h.NumNets()),
		w:        make([]int64, k),
	}
	s.accumulate()
	return s
}

// accumulate fills part weights, per-net part pin counts, and
// connectivities from scratch; pinCount, lambda, and w must be zeroed.
func (s *KwayState) accumulate() {
	h, k, parts := s.h, s.k, s.parts
	for v := 0; v < h.NumVertices(); v++ {
		s.w[parts[v]] += h.Weight(v)
	}
	for n := 0; n < h.NumNets(); n++ {
		base := n * k
		for _, p := range h.Pins(n) {
			q := parts[p]
			if s.pinCount[base+int(q)] == 0 {
				s.lambda[n]++
			}
			s.pinCount[base+int(q)]++
		}
	}
}

// Cut returns the current connectivity-1 cut.
func (s *KwayState) Cut() int64 {
	var c int64
	for n := range s.lambda {
		if s.lambda[n] > 1 {
			c += s.h.Cost(n) * int64(s.lambda[n]-1)
		}
	}
	return c
}

// MoveGain returns the connectivity-1 cut reduction of moving v to part to.
func (s *KwayState) MoveGain(v int, to int32) int64 {
	from := s.parts[v]
	if from == to {
		return 0
	}
	var g int64
	for _, nn := range s.h.Nets(v) {
		n := int(nn)
		base := n * s.k
		// v leaves `from`: if it was the only pin there, lambda drops.
		if s.pinCount[base+int(from)] == 1 {
			g += s.h.Cost(n)
		}
		// v enters `to`: if no pin there yet, lambda grows.
		if s.pinCount[base+int(to)] == 0 {
			g -= s.h.Cost(n)
		}
	}
	return g
}

// Move applies the relocation and updates bookkeeping.
func (s *KwayState) Move(v int, to int32) {
	from := s.parts[v]
	if from == to {
		return
	}
	wv := s.h.Weight(v)
	s.w[from] -= wv
	s.w[to] += wv
	s.parts[v] = to
	for _, nn := range s.h.Nets(v) {
		base := int(nn) * s.k
		s.pinCount[base+int(from)]--
		if s.pinCount[base+int(from)] == 0 {
			s.lambda[nn]--
		}
		if s.pinCount[base+int(to)] == 0 {
			s.lambda[nn]++
		}
		s.pinCount[base+int(to)]++
	}
}

// AdjacentParts collects the parts that nets of v touch (excluding v's own
// part), bounded by k; used to restrict candidate destinations.
func (s *KwayState) AdjacentParts(v int, buf []int32, mark []bool) []int32 {
	buf = buf[:0]
	from := s.parts[v]
	for _, nn := range s.h.Nets(v) {
		base := int(nn) * s.k
		for p := 0; p < s.k; p++ {
			if int32(p) != from && s.pinCount[base+p] > 0 && !mark[p] {
				mark[p] = true
				buf = append(buf, int32(p))
			}
		}
	}
	for _, p := range buf {
		mark[p] = false
	}
	return buf
}

// refineKway performs greedy k-way refinement as synchronous
// propose–apply rounds. The propose phase computes, for every free vertex
// in parallel over index shards, the best positive-gain balanced
// destination against the round-start snapshot (plus the zero-gain escape
// for over-cap source parts). The serial apply phase then walks vertices
// in index order with attributed gains: each proposal's gain is recomputed
// against the *current* state and applied only if it still strictly
// improves the cut (or rebalances an over-cap part without worsening it),
// with balance caps enforced at apply time. Proposals are pure functions
// of the snapshot and the apply order is fixed, so the result is
// bit-identical for every Parallelism value. Fixed vertices never move.
// Returns the final cut.
func refineKway(h *hypergraph.Hypergraph, k int, parts []int32, caps []int64, passes int, ws *workspace, px *parctx) int64 {
	n := h.NumVertices()
	s := ws.kwayState(h, k, parts)
	defer s.release()
	ws.kto = growI32(ws.kto, n)
	kto := ws.kto
	shards := kernelShards(n)
	rounds, conflicts := 0, 0
	for pass := 0; pass < passes; pass++ {
		rounds++
		px.forEach(shards, ws, func(i int, wws *workspace) {
			lo, hi := shardRange(n, shards, i)
			proposeMovesRange(s, caps, kto, lo, hi, wws)
		})
		moves := 0
		for v := 0; v < n; v++ {
			to := kto[v]
			if to < 0 {
				continue
			}
			from := s.parts[v]
			applied := false
			if to != from && s.w[to]+h.Weight(v) <= caps[to] {
				// Attributed gain: the snapshot only nominated the
				// destination; the gain that counts is the one at apply time.
				g := s.MoveGain(v, to)
				if g > 0 || (g >= 0 && s.w[from] > caps[from]) {
					s.Move(v, to)
					moves++
					applied = true
				}
			}
			if !applied {
				conflicts++ // earlier applies invalidated this proposal
			}
		}
		obsKwayPasses.Inc()
		obsKwayMoves.Add(int64(moves))
		if moves == 0 {
			break
		}
	}
	obsKernelRounds.Add(int64(rounds))
	obsKernelConflicts.Add(int64(conflicts))
	return s.Cut()
}

// proposeMovesRange fills kto[lo:hi] with the proposed destination of each
// vertex of the shard (-1 when the snapshot admits no move): the
// best-positive-gain destination under the caps, else — for vertices on an
// over-cap source part — the first non-worsening feasible destination. It
// only reads the refinement state and writes its own kto range, so shards
// run concurrently; scratch comes from the shard's workspace.
func proposeMovesRange(s *KwayState, caps []int64, kto []int32, lo, hi int, ws *workspace) {
	h := s.h
	ws.kbuf = growI32(ws.kbuf, s.k)
	ws.kmark = growBool(ws.kmark, s.k)
	buf, mark := ws.kbuf[:0], ws.kmark
	for v := lo; v < hi; v++ {
		kto[v] = -1
		if h.Fixed(v) != hypergraph.Free {
			continue
		}
		cands := s.AdjacentParts(v, buf, mark)
		from := s.parts[v]
		wv := h.Weight(v)
		var bestTo int32 = -1
		var bestGain int64
		for _, to := range cands {
			if s.w[to]+wv > caps[to] {
				continue
			}
			if g := s.MoveGain(v, to); g > bestGain {
				bestGain = g
				bestTo = to
			}
		}
		// also allow zero-gain moves that reduce imbalance of an over-cap
		// source part
		if bestTo == -1 && s.w[from] > caps[from] {
			for _, to := range cands {
				if s.w[to]+wv <= caps[to] && s.MoveGain(v, to) >= 0 {
					bestTo = to
					break
				}
			}
		}
		kto[v] = bestTo
	}
}

// PartWeight returns the current total vertex weight of part p.
func (s *KwayState) PartWeight(p int32) int64 { return s.w[p] }

// PartOf returns the current part of vertex v.
func (s *KwayState) PartOf(v int) int32 { return s.parts[v] }

// RefineKwayPass exposes one greedy k-way refinement sweep for external
// drivers (the parallel partitioner applies sweeps between communication
// rounds). It returns whether any move was applied.
func RefineKwayPass(s *KwayState, caps []int64) bool {
	h, k := s.h, s.k
	buf := make([]int32, 0, k)
	mark := make([]bool, k)
	moves := 0
	for v := 0; v < h.NumVertices(); v++ {
		if h.Fixed(v) != hypergraph.Free {
			continue
		}
		cands := s.AdjacentParts(v, buf, mark)
		var bestTo int32 = -1
		var bestGain int64
		for _, to := range cands {
			if s.w[to]+h.Weight(v) > caps[to] {
				continue
			}
			if g := s.MoveGain(v, to); g > bestGain {
				bestGain = g
				bestTo = to
			}
		}
		if bestTo >= 0 && bestGain > 0 {
			s.Move(v, bestTo)
			moves++
		}
	}
	obsKwayPasses.Inc()
	obsKwayMoves.Add(int64(moves))
	return moves > 0
}
