package hgp

import (
	"sync"

	"hyperbal/internal/hypergraph"
)

// workspace holds the scratch arenas of one multilevel-pipeline worker:
// matching, contraction, and refinement buffers that would otherwise be
// reallocated at every level of every bisection. All fields grow lazily
// and are reused across levels, starts, and bisections, so the hot path
// allocates only the arrays that outlive a call (the coarse hypergraphs,
// cmaps, and partitions themselves). A workspace is owned by exactly one
// goroutine at a time; wsPool recycles them across Partition calls.
type workspace struct {
	// ipmMatch
	perm     []int32
	score    []float64
	touched  []int32
	match    []int32
	proposal []int32 // propose-resolve rounds: best partner per vertex

	// contract
	cmark  []bool  // per-coarse-vertex dedup marks (always restored to false)
	pinBuf []int32 // coarse pins of the net being built
	htab   []int32 // open-addressing table: coarse net id or -1

	// 2-way state (ghg2 / fm2)
	pins0  []int32
	locked []bool
	dead   []bool
	inHeap []bool
	moved  []int32
	stash  []gainEntry
	heap   gainHeap

	// k-way state (refineKway / refineKwayFM)
	kstate  KwayState
	kbuf    []int32
	kmark   []bool
	klocked []bool
	kto     []int32 // parallel gain rounds: proposed destination per vertex
	kgain   []int64 // parallel gain rounds: snapshot gain per vertex

	// recursive bisection
	fixedSide []int32
	newID     []int32
}

// wsPool recycles workspaces across Partition calls and across the worker
// goroutines of one call. Workspace contents never influence results:
// every kernel fully (re)initializes the state it reads.
var wsPool = sync.Pool{New: func() any { return new(workspace) }}

func newWorkspace() *workspace { return new(workspace) }

// growI32 returns s resized to n, reallocating only on growth. Contents
// are unspecified; callers must initialize what they read.
func growI32(s []int32, n int) []int32 {
	if cap(s) < n {
		return make([]int32, n)
	}
	return s[:n]
}

// growI64 is growI32 for int64 slices.
func growI64(s []int64, n int) []int64 {
	if cap(s) < n {
		return make([]int64, n)
	}
	return s[:n]
}

// growF64 returns s resized to n with every entry zeroed.
func growF64(s []float64, n int) []float64 {
	if cap(s) < n {
		return make([]float64, n)
	}
	s = s[:n]
	clear(s)
	return s
}

// growF64Zero returns s resized to n, zeroing only fresh allocations. It
// relies on the caller maintaining the restore-to-zero invariant (every
// touched entry is reset before the call returns), which makes repeated
// per-round use O(touched) instead of O(n).
func growF64Zero(s []float64, n int) []float64 {
	if cap(s) < n {
		return make([]float64, n)
	}
	return s[:n]
}

// growBool returns s resized to n with every entry false.
func growBool(s []bool, n int) []bool {
	if cap(s) < n {
		return make([]bool, n)
	}
	s = s[:n]
	clear(s)
	return s
}

// kwayState (re)initializes the workspace's k-way refinement state for
// the given hypergraph and partition, reusing its arrays. The returned
// state aliases ws and is valid until the next kwayState call.
func (ws *workspace) kwayState(h *hypergraph.Hypergraph, k int, parts []int32) *KwayState {
	s := &ws.kstate
	s.h, s.k, s.parts = h, k, parts
	s.pinCount = growI32(s.pinCount, h.NumNets()*k)
	clear(s.pinCount)
	s.lambda = growI32(s.lambda, h.NumNets())
	clear(s.lambda)
	s.w = growI64(s.w, k)
	clear(s.w)
	s.accumulate()
	return s
}

// release drops the state's references to caller data so pooled
// workspaces do not keep large hypergraphs alive.
func (s *KwayState) release() {
	s.h = nil
	s.parts = nil
}
