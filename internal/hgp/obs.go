package hgp

import "hyperbal/internal/obs"

// Registry handles for the serial multilevel pipeline. All handles are
// registered once at init; the hot paths only touch atomics. Per-pass
// counters are accumulated locally inside the refinement loops and added
// once per pass, so the FM inner loops stay allocation- and contention-
// free (the measured overhead budget for the whole layer is <2% of a
// Figure-7 repartition).
var (
	obsPartitions = obs.Default().Counter("hgp_partitions_total")
	obsLevels     = obs.Default().Counter("hgp_coarsen_levels_total")

	// Per-level V-cycle shape: vertex/net counts of the produced coarse
	// hypergraph and the shrink fraction of the level, in permille.
	obsLevelVertices = obs.Default().HistogramVec("hgp_level_vertices", "level", obs.SizeBounds)
	obsLevelNets     = obs.Default().HistogramVec("hgp_level_nets", "level", obs.SizeBounds)
	obsLevelShrink   = obs.Default().HistogramVec("hgp_level_shrink_permille", "level", obs.LinBounds(50, 50, 20))

	// Stage timers (nanoseconds): coarsening per level, the multi-start
	// coarse solve, refinement per level, and the final k-way polish.
	obsCoarsenNs     = obs.Default().HistogramVec("hgp_coarsen_ns", "level", obs.DurationBounds)
	obsCoarseSolveNs = obs.Default().Histogram("hgp_coarse_solve_ns", obs.DurationBounds)
	obsRefineNs      = obs.Default().HistogramVec("hgp_refine_ns", "level", obs.DurationBounds)
	obsPolishNs      = obs.Default().Histogram("hgp_kway_polish_ns", obs.DurationBounds)

	// FM activity: pass-pairs and applied moves, split by refinement kind.
	obsFM2Passes  = obs.Default().Counter("hgp_fm2_passes_total")
	obsFM2Moves   = obs.Default().Counter("hgp_fm2_moves_total")
	obsKwayPasses = obs.Default().Counter("hgp_kway_passes_total")
	obsKwayMoves  = obs.Default().Counter("hgp_kway_moves_total")

	// Cut of the last completed Partition call, after refinement.
	obsFinalCut = obs.Default().Gauge("hgp_final_cut")

	// Intra-level kernel parallelism: synchronous propose/resolve (or
	// propose/apply) rounds executed by the matching and refinement
	// kernels, proposals that lost their round to an index-earlier winner,
	// work items that actually ran on a spawned worker goroutine (stays 0
	// under the rank-local SPMD pin), and the spilled-item share of the
	// last Partition/PartitionWarm call in permille.
	obsKernelRounds      = obs.Default().Counter("hgp_kernel_rounds_total")
	obsKernelConflicts   = obs.Default().Counter("hgp_kernel_conflicts_total")
	obsKernelWorkerItems = obs.Default().Counter("hgp_kernel_worker_items_total")
	obsKernelEfficiency  = obs.Default().Gauge("hgp_kernel_parallel_efficiency_permille")

	// Warm-start path: calls by mode (localized / vcycle / trivial), the
	// dirty fraction of each call in permille, and the wall time of the
	// whole warm partition (the cold analogue is the sum of the stage
	// timers above).
	obsWarmPartitions    = obs.Default().CounterVec("hgp_warm_partitions_total", "mode")
	obsWarmDirtyPermille = obs.Default().Histogram("hgp_warm_dirty_permille", obs.LinBounds(50, 50, 20))
	obsWarmNs            = obs.Default().Histogram("hgp_warm_partition_ns", obs.DurationBounds)
)
