package hgp

import (
	"math/rand"

	"hyperbal/internal/hypergraph"
	"hyperbal/internal/partition"
)

// vCycle re-runs the multilevel pipeline using an existing partition as
// guidance (the iterated V-cycle of PaToH/hMETIS): coarsening is
// restricted to same-part vertex pairs, so the current partition projects
// losslessly onto every level; the coarsest solution is the projected
// partition itself, improved by refinement on the way back up. Each cycle
// can only improve the cut. Fixed vertices are honored throughout.
func vCycle(h *hypergraph.Hypergraph, parts []int32, k int, rng *rand.Rand, opt Options, px *parctx) {
	ws := wsPool.Get().(*workspace)
	defer wsPool.Put(ws)
	caps := capsFor(h, k, opt.Imbalance)

	// Partition-respecting matching: encode current parts as additional
	// fixed labels only for the match filter by temporarily fixing free
	// vertices to their current part. Original fixed labels agree with
	// parts (the caller guarantees fixed vertices sit on their parts), so
	// this is a pure restriction.
	restricted := make([]int32, h.NumVertices())
	copy(restricted, parts)
	hr := h.WithFixed(restricted)

	coarsenTo := opt.CoarsenTo
	if coarsenTo < 2*k {
		coarsenTo = 2 * k
	}
	levels := coarsen(hr, rng, coarsenTo, opt.MinShrink, opt.MaxNetSize, true, ws, px)

	// Project the current partition down the hierarchy. Because matching
	// never crosses parts, every coarse vertex has a well-defined part.
	partsAt := make([][]int32, len(levels))
	partsAt[0] = append([]int32(nil), parts...)
	for i := 0; i+1 < len(levels); i++ {
		cmap := levels[i].cmap
		coarseParts := make([]int32, levels[i+1].h.NumVertices())
		for v, c := range cmap {
			coarseParts[c] = partsAt[i][v]
		}
		partsAt[i+1] = coarseParts
	}

	// Refine upward against the ORIGINAL fixed labels (free vertices may
	// move; genuinely fixed ones may not). levels[i].h carries the
	// restricted labels, so refine on a relabeled view.
	for i := len(levels) - 1; i >= 0; i-- {
		var cur []int32
		if i == len(levels)-1 {
			cur = partsAt[i]
		} else {
			cur = project(levels[i].cmap, partsAt[i+1])
		}
		partsAt[i] = cur
		view := levelViewWithOriginalFixed(h, levels[i].h, levels, i)
		if opt.KwayFM {
			refineKwayFM(view, k, cur, caps, opt.RefinePasses, ws, px)
		} else {
			refineKway(view, k, cur, caps, opt.RefinePasses, ws, px)
		}
	}
	copy(parts, partsAt[0])
}

// levelViewWithOriginalFixed rebuilds the fixed labels of a coarse level
// from the original hypergraph's labels: a coarse vertex is fixed iff one
// of its constituents was genuinely fixed in h (not merely
// partition-restricted for matching).
func levelViewWithOriginalFixed(orig *hypergraph.Hypergraph, level *hypergraph.Hypergraph, levels []level, idx int) *hypergraph.Hypergraph {
	if idx == 0 {
		if orig.HasFixed() {
			return orig
		}
		return orig.WithoutFixed()
	}
	// Compose cmaps from level 0 down to idx.
	n := orig.NumVertices()
	comp := make([]int32, n)
	for v := range comp {
		comp[v] = int32(v)
	}
	for i := 0; i < idx; i++ {
		cmap := levels[i].cmap
		for v := range comp {
			comp[v] = cmap[comp[v]]
		}
	}
	fixed := make([]int32, level.NumVertices())
	for i := range fixed {
		fixed[i] = hypergraph.Free
	}
	hasFixed := false
	for v := 0; v < n; v++ {
		if f := orig.Fixed(v); f != hypergraph.Free {
			fixed[comp[v]] = f
			hasFixed = true
		}
	}
	if !hasFixed {
		return level.WithoutFixed()
	}
	return level.WithFixed(fixed)
}

// PartitionWithVCycles runs Partition and then the given number of
// refinement V-cycles; each cycle never worsens the cut. It is exposed as
// the A6 ablation and as a quality knob for users with time to spare.
func PartitionWithVCycles(h *hypergraph.Hypergraph, opt Options, cycles int) (partition.Partition, error) {
	p, err := Partition(h, opt)
	if err != nil || cycles <= 0 || opt.K < 2 || h.NumVertices() == 0 {
		return p, err
	}
	opt = opt.withDefaults()
	rng := rand.New(rand.NewSource(opt.Seed ^ 0x5eed))
	px := newParctx(opt.Parallelism)
	best := partition.CutSize(h, p)
	for c := 0; c < cycles; c++ {
		trial := append([]int32(nil), p.Parts...)
		vCycle(h, trial, opt.K, rng, opt, px)
		cut := partition.CutSize(h, partition.Partition{Parts: trial, K: opt.K})
		if cut < best {
			best = cut
			copy(p.Parts, trial)
		}
	}
	obsKernelEfficiency.Set(px.efficiencyPermille())
	return p, nil
}
