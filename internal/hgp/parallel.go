package hgp

import (
	"sync"
	"sync/atomic"
)

// parctx is the per-Partition parallel execution context: a token pool
// bounding the extra worker goroutines of one call, with workspaces
// recycled through wsPool. A nil-sem parctx executes everything inline.
//
// One pool serves every layer of the call: recursive-bisection sides and
// multi-starts (coarse-grained items via fork/forEach) and the intra-level
// kernel shards (fine-grained items via the same forEach), so the
// RB-level and kernel-level parallelism share the Options.Parallelism
// budget and can never oversubscribe it — a kernel round nested inside a
// busy multi-start simply runs inline on its caller.
//
// Determinism: the inline path is also the reference schedule. Every work
// item handed to fork or forEach derives its random stream from its index
// (never from execution order), writes only to its own result slot or
// vertex range, and winners are reduced by a scan in index order — so
// every Parallelism value, 1 included, produces bit-identical partitions.
type parctx struct {
	sem chan struct{} // capacity = Parallelism-1 extra workers; nil = serial

	// Parallel-efficiency accounting: items scheduled through fork and
	// forEach, and the subset that actually ran on a spawned worker.
	// Reported as a permille gauge at the end of each Partition call and
	// as the hgp_kernel_worker_items_total counter (the rank-local
	// oversubscription pin asserts this stays zero at Parallelism=1).
	items  atomic.Int64
	spills atomic.Int64
}

func newParctx(parallelism int) *parctx {
	px := &parctx{}
	if parallelism > 1 {
		px.sem = make(chan struct{}, parallelism-1)
	}
	return px
}

func (px *parctx) getWS() *workspace   { return wsPool.Get().(*workspace) }
func (px *parctx) putWS(ws *workspace) { wsPool.Put(ws) }

// efficiencyPermille reports the share of scheduled work items that ran on
// spawned workers, in permille: 0 for a fully serial call, approaching
// (Parallelism-1)/Parallelism*1000 when the pool keeps every worker busy.
func (px *parctx) efficiencyPermille() int64 {
	t := px.items.Load()
	if t == 0 {
		return 0
	}
	return px.spills.Load() * 1000 / t
}

// fork runs fn, in a fresh goroutine when a worker token is free and
// inline otherwise, and returns a join function the caller must invoke
// before touching data fn writes. fn receives a workspace of its own.
func (px *parctx) fork(fn func(ws *workspace)) (join func()) {
	px.items.Add(1)
	if px.sem != nil {
		select {
		case px.sem <- struct{}{}:
			px.spills.Add(1)
			obsKernelWorkerItems.Inc()
			done := make(chan struct{})
			go func() {
				defer close(done)
				defer func() { <-px.sem }()
				ws := px.getWS()
				defer px.putWS(ws)
				fn(ws)
			}()
			return func() { <-done }
		default:
		}
	}
	ws := px.getWS()
	fn(ws)
	px.putWS(ws)
	return func() {}
}

// forEach runs fn(0..n-1), spilling items onto worker goroutines while
// tokens are free and running the rest inline on the caller's workspace.
// It returns only after every item completed.
func (px *parctx) forEach(n int, ws *workspace, fn func(i int, ws *workspace)) {
	px.items.Add(int64(n))
	if px.sem == nil || n <= 1 {
		for i := 0; i < n; i++ {
			fn(i, ws)
		}
		return
	}
	var wg sync.WaitGroup
	spilled := 0
	for i := 0; i < n; i++ {
		select {
		case px.sem <- struct{}{}:
			spilled++
			wg.Add(1)
			go func(i int) {
				defer wg.Done()
				defer func() { <-px.sem }()
				w := px.getWS()
				defer px.putWS(w)
				fn(i, w)
			}(i)
		default:
			fn(i, ws)
		}
	}
	if spilled > 0 {
		px.spills.Add(int64(spilled))
		obsKernelWorkerItems.Add(int64(spilled))
	}
	wg.Wait()
}

// kernelShards returns the shard count for an n-item kernel round. It is a
// pure function of the problem size — never of Parallelism or GOMAXPROCS —
// so the round structure, and therefore the result, is identical at every
// thread count; only the assignment of shards to goroutines varies. Shards
// hold at least minKernelShard items to amortize scheduling overhead.
func kernelShards(n int) int {
	const minKernelShard = 64
	if n < 2*minKernelShard {
		return 1
	}
	s := n / minKernelShard
	if s > 32 {
		s = 32
	}
	return s
}

// shardRange returns the half-open index range [lo, hi) of shard i of n
// items split into the given shard count.
func shardRange(n, shards, i int) (lo, hi int) {
	return i * n / shards, (i + 1) * n / shards
}

// startSeed derives the RNG seed of multi-start attempt s from the base
// seed drawn once from the level's stream. The constant is the odd PCG
// multiplier, so distinct starts get well-separated streams.
func startSeed(base int64, s int) int64 {
	return base + int64(s+1)*0x5851F42D4C957F2D
}

// mix64 is the splitmix64 finalizer: an index-seeded stand-in for a
// per-vertex RNG draw. Kernels key it on (seed, round, vertex indices) to
// break score ties pseudo-randomly without any execution-order dependence.
func mix64(x uint64) uint64 {
	x ^= x >> 33
	x *= 0xff51afd7ed558ccd
	x ^= x >> 33
	x *= 0xc4ceb9fe1a85ec53
	x ^= x >> 33
	return x
}
