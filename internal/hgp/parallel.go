package hgp

import "sync"

// parctx is the per-Partition parallel execution context: a token pool
// bounding the extra worker goroutines of one call, with workspaces
// recycled through wsPool. A nil-sem parctx executes everything inline.
//
// Determinism: the inline path is also the reference schedule. Every work
// item handed to fork or forEach derives its random stream from its index
// (never from execution order), writes only to its own result slot or
// vertex range, and winners are reduced by a scan in index order — so
// every Parallelism value, 1 included, produces bit-identical partitions.
type parctx struct {
	sem chan struct{} // capacity = Parallelism-1 extra workers; nil = serial
}

func newParctx(parallelism int) *parctx {
	px := &parctx{}
	if parallelism > 1 {
		px.sem = make(chan struct{}, parallelism-1)
	}
	return px
}

func (px *parctx) getWS() *workspace   { return wsPool.Get().(*workspace) }
func (px *parctx) putWS(ws *workspace) { wsPool.Put(ws) }

// fork runs fn, in a fresh goroutine when a worker token is free and
// inline otherwise, and returns a join function the caller must invoke
// before touching data fn writes. fn receives a workspace of its own.
func (px *parctx) fork(fn func(ws *workspace)) (join func()) {
	if px.sem != nil {
		select {
		case px.sem <- struct{}{}:
			done := make(chan struct{})
			go func() {
				defer close(done)
				defer func() { <-px.sem }()
				ws := px.getWS()
				defer px.putWS(ws)
				fn(ws)
			}()
			return func() { <-done }
		default:
		}
	}
	ws := px.getWS()
	fn(ws)
	px.putWS(ws)
	return func() {}
}

// forEach runs fn(0..n-1), spilling items onto worker goroutines while
// tokens are free and running the rest inline on the caller's workspace.
// It returns only after every item completed.
func (px *parctx) forEach(n int, ws *workspace, fn func(i int, ws *workspace)) {
	if px.sem == nil || n <= 1 {
		for i := 0; i < n; i++ {
			fn(i, ws)
		}
		return
	}
	var wg sync.WaitGroup
	for i := 0; i < n; i++ {
		select {
		case px.sem <- struct{}{}:
			wg.Add(1)
			go func(i int) {
				defer wg.Done()
				defer func() { <-px.sem }()
				w := px.getWS()
				defer px.putWS(w)
				fn(i, w)
			}(i)
		default:
			fn(i, ws)
		}
	}
	wg.Wait()
}

// startSeed derives the RNG seed of multi-start attempt s from the base
// seed drawn once from the level's stream. The constant is the odd PCG
// multiplier, so distinct starts get well-separated streams.
func startSeed(base int64, s int) int64 {
	return base + int64(s+1)*0x5851F42D4C957F2D
}
