package hgp

import (
	"math/rand"
	"testing"

	"hyperbal/internal/graph"
	"hyperbal/internal/hypergraph"
	"hyperbal/internal/partition"
)

// grid2D builds the hypergraph of a w x h 2D mesh (one 2-pin net per grid
// edge) — a structure where good partitions are obvious (stripes).
func grid2D(w, h int) *hypergraph.Hypergraph {
	b := hypergraph.NewBuilder(w * h)
	id := func(x, y int) int { return y*w + x }
	for y := 0; y < h; y++ {
		for x := 0; x < w; x++ {
			if x+1 < w {
				b.AddNet(1, id(x, y), id(x+1, y))
			}
			if y+1 < h {
				b.AddNet(1, id(x, y), id(x, y+1))
			}
		}
	}
	return b.Build()
}

func randomHG(rng *rand.Rand, n, nets, maxPins int) *hypergraph.Hypergraph {
	b := hypergraph.NewBuilder(n)
	for v := 0; v < n; v++ {
		b.SetWeight(v, int64(1+rng.Intn(4)))
		b.SetSize(v, int64(1+rng.Intn(4)))
	}
	for i := 0; i < nets; i++ {
		sz := 2 + rng.Intn(maxPins-1)
		if sz > n {
			sz = n
		}
		b.AddNet(int64(1+rng.Intn(3)), rng.Perm(n)[:sz]...)
	}
	return b.Build()
}

func TestPartitionBisection(t *testing.T) {
	h := grid2D(16, 16)
	p, err := Partition(h, Options{K: 2, Imbalance: 0.05, Seed: 1})
	if err != nil {
		t.Fatal(err)
	}
	if err := p.Validate(); err != nil {
		t.Fatal(err)
	}
	w := partition.Weights(h, p)
	if !partition.IsBalanced(w, 0.05) {
		t.Fatalf("imbalanced: %v", w)
	}
	cut := partition.CutSize(h, p)
	// A 16x16 grid has a 16-edge optimal bisection; multilevel should land
	// within 2x of optimal.
	if cut > 32 {
		t.Fatalf("cut = %d, want <= 32", cut)
	}
}

func TestPartitionKway(t *testing.T) {
	h := grid2D(20, 20)
	for _, k := range []int{3, 4, 8} {
		p, err := Partition(h, Options{K: k, Imbalance: 0.05, Seed: 7})
		if err != nil {
			t.Fatal(err)
		}
		if err := p.Validate(); err != nil {
			t.Fatal(err)
		}
		w := partition.Weights(h, p)
		if !partition.IsBalanced(w, 0.10) { // small slack over the 0.05 request
			t.Fatalf("k=%d imbalanced: %v (imb=%.3f)", k, w, partition.Imbalance(w))
		}
		cut := partition.CutSize(h, p)
		// each extra part boundary costs ~20; sanity bound
		if cut > int64(60*k) {
			t.Fatalf("k=%d cut = %d unreasonably high", k, cut)
		}
		// all parts non-trivially populated
		for q, ww := range w {
			if ww == 0 {
				t.Fatalf("k=%d part %d empty", k, q)
			}
		}
	}
}

func TestPartitionK1(t *testing.T) {
	h := grid2D(4, 4)
	p, err := Partition(h, Options{K: 1, Seed: 3})
	if err != nil {
		t.Fatal(err)
	}
	for v := range p.Parts {
		if p.Parts[v] != 0 {
			t.Fatal("K=1 must assign everything to part 0")
		}
	}
}

func TestPartitionDirectKway(t *testing.T) {
	h := grid2D(12, 12)
	p, err := Partition(h, Options{K: 4, Imbalance: 0.05, Seed: 5, DirectKway: true})
	if err != nil {
		t.Fatal(err)
	}
	w := partition.Weights(h, p)
	if !partition.IsBalanced(w, 0.15) {
		t.Fatalf("direct k-way imbalanced: %v", w)
	}
	if cut := partition.CutSize(h, p); cut > 150 {
		t.Fatalf("direct k-way cut = %d too high", cut)
	}
}

func TestFixedVerticesRespected(t *testing.T) {
	rng := rand.New(rand.NewSource(2))
	h := randomHG(rng, 120, 200, 5)
	k := 4
	fixed := make([]int32, h.NumVertices())
	for v := range fixed {
		fixed[v] = hypergraph.Free
	}
	// fix 20 scattered vertices
	fixedSet := map[int]int{}
	for i := 0; i < 20; i++ {
		v := rng.Intn(h.NumVertices())
		p := rng.Intn(k)
		fixed[v] = int32(p)
		fixedSet[v] = p
	}
	hf := h.WithFixed(fixed)
	p, err := Partition(hf, Options{K: k, Imbalance: 0.10, Seed: 9})
	if err != nil {
		t.Fatal(err)
	}
	for v, want := range fixedSet {
		if p.Of(v) != want {
			t.Fatalf("fixed vertex %d moved: fixed to %d, assigned %d", v, want, p.Of(v))
		}
	}
}

func TestFixedVerticesRespectedDirectKway(t *testing.T) {
	rng := rand.New(rand.NewSource(4))
	h := randomHG(rng, 100, 150, 4)
	k := 3
	fixed := make([]int32, h.NumVertices())
	for v := range fixed {
		fixed[v] = hypergraph.Free
	}
	for v := 0; v < 15; v++ {
		fixed[v] = int32(v % k)
	}
	hf := h.WithFixed(fixed)
	p, err := Partition(hf, Options{K: k, Imbalance: 0.10, Seed: 9, DirectKway: true})
	if err != nil {
		t.Fatal(err)
	}
	for v := 0; v < 15; v++ {
		if p.Of(v) != v%k {
			t.Fatalf("fixed vertex %d at %d, want %d", v, p.Of(v), v%k)
		}
	}
}

func TestFixedOutOfRangeRejected(t *testing.T) {
	b := hypergraph.NewBuilder(3)
	b.Fix(0, 7)
	h := b.Build()
	if _, err := Partition(h, Options{K: 2, Seed: 1}); err == nil {
		t.Fatal("expected error for fixed part out of range")
	}
}

func TestDeterminism(t *testing.T) {
	rng := rand.New(rand.NewSource(8))
	h := randomHG(rng, 150, 250, 6)
	p1, _ := Partition(h, Options{K: 4, Seed: 42})
	p2, _ := Partition(h, Options{K: 4, Seed: 42})
	for v := range p1.Parts {
		if p1.Parts[v] != p2.Parts[v] {
			t.Fatal("same seed produced different partitions")
		}
	}
}

func TestIPMMatchLegality(t *testing.T) {
	rng := rand.New(rand.NewSource(6))
	h := randomHG(rng, 80, 120, 5)
	fixed := make([]int32, 80)
	for v := range fixed {
		fixed[v] = hypergraph.Free
	}
	for v := 0; v < 30; v++ {
		fixed[v] = int32(v % 3)
	}
	hf := h.WithFixed(fixed)
	match := ipmMatch(hf, rng, 500, true, newWorkspace(), newParctx(1))
	for v := 0; v < 80; v++ {
		u := int(match[v])
		if u < 0 || u >= 80 {
			t.Fatalf("match[%d] = %d out of range", v, u)
		}
		if int(match[u]) != v {
			t.Fatalf("match not symmetric: match[%d]=%d match[%d]=%d", v, u, u, match[u])
		}
		if u != v {
			fv, fu := hf.Fixed(v), hf.Fixed(u)
			if fv != hypergraph.Free && fu != hypergraph.Free && fv != fu {
				t.Fatalf("matched vertices %d,%d fixed to different parts %d,%d", v, u, fv, fu)
			}
		}
	}
}

func TestContractConservation(t *testing.T) {
	rng := rand.New(rand.NewSource(10))
	h := randomHG(rng, 100, 160, 6)
	match := ipmMatch(h, rng, 500, true, newWorkspace(), newParctx(1))
	coarse, cmap := Contract(h, match)
	if err := coarse.Validate(); err != nil {
		t.Fatal(err)
	}
	if coarse.TotalWeight() != h.TotalWeight() {
		t.Fatalf("weight not conserved: %d -> %d", h.TotalWeight(), coarse.TotalWeight())
	}
	if coarse.TotalSize() != h.TotalSize() {
		t.Fatalf("size not conserved: %d -> %d", h.TotalSize(), coarse.TotalSize())
	}
	// cmap is a valid surjection
	seen := make([]bool, coarse.NumVertices())
	for _, c := range cmap {
		if c < 0 || int(c) >= coarse.NumVertices() {
			t.Fatalf("cmap entry %d out of range", c)
		}
		seen[c] = true
	}
	for c, ok := range seen {
		if !ok {
			t.Fatalf("coarse vertex %d has no fine vertex", c)
		}
	}
}

// The key multilevel invariant: the cut of a coarse partition equals the
// cut of its projection to the fine hypergraph. (Single-pin coarse nets
// were dropped, but they are uncut by construction — all their fine pins
// map to one coarse vertex... they can still be cut at fine level? No:
// a net whose pins all collapse into one coarse vertex has all fine pins
// in the same part after projection, so it is uncut. Identical-net merging
// sums costs, preserving totals.)
func TestProjectedCutInvariant(t *testing.T) {
	rng := rand.New(rand.NewSource(12))
	for trial := 0; trial < 10; trial++ {
		h := randomHG(rng, 60, 90, 5)
		match := ipmMatch(h, rng, 500, true, newWorkspace(), newParctx(1))
		coarse, cmap := Contract(h, match)
		k := 2 + rng.Intn(3)
		cp := make([]int32, coarse.NumVertices())
		for v := range cp {
			cp[v] = int32(rng.Intn(k))
		}
		fp := project(cmap, cp)
		cutCoarse := partition.CutSize(coarse, partition.Partition{Parts: cp, K: k})
		cutFine := partition.CutSize(h, partition.Partition{Parts: fp, K: k})
		if cutCoarse != cutFine {
			t.Fatalf("trial %d: coarse cut %d != projected fine cut %d", trial, cutCoarse, cutFine)
		}
	}
}

func TestFM2NeverWorsensCut(t *testing.T) {
	rng := rand.New(rand.NewSource(14))
	for trial := 0; trial < 10; trial++ {
		h := randomHG(rng, 80, 140, 5)
		parts := make([]int32, 80)
		for v := range parts {
			parts[v] = int32(rng.Intn(2))
		}
		fixed := make([]int32, 80)
		for v := range fixed {
			fixed[v] = hypergraph.Free
		}
		before := partition.CutSize(h, partition.Partition{Parts: append([]int32(nil), parts...), K: 2})
		total := h.TotalWeight()
		cap := int64(float64(total) * 0.55)
		fm2(h, parts, fixed, cap, cap, 4, 500, newWorkspace())
		after := partition.CutSize(h, partition.Partition{Parts: parts, K: 2})
		if after > before {
			t.Fatalf("trial %d: FM worsened cut %d -> %d", trial, before, after)
		}
	}
}

func TestFM2RespectsFixed(t *testing.T) {
	rng := rand.New(rand.NewSource(16))
	h := randomHG(rng, 60, 100, 4)
	parts := make([]int32, 60)
	fixed := make([]int32, 60)
	for v := range parts {
		parts[v] = int32(rng.Intn(2))
		fixed[v] = hypergraph.Free
	}
	for v := 0; v < 10; v++ {
		fixed[v] = parts[v]
	}
	want := append([]int32(nil), parts[:10]...)
	total := h.TotalWeight()
	cap := int64(float64(total) * 0.6)
	fm2(h, parts, fixed, cap, cap, 4, 500, newWorkspace())
	for v := 0; v < 10; v++ {
		if parts[v] != want[v] {
			t.Fatalf("FM moved fixed vertex %d", v)
		}
	}
}

func TestRefineKwayNeverWorsens(t *testing.T) {
	rng := rand.New(rand.NewSource(18))
	for trial := 0; trial < 8; trial++ {
		h := randomHG(rng, 70, 110, 5)
		k := 3 + rng.Intn(3)
		parts := make([]int32, 70)
		for v := range parts {
			parts[v] = int32(rng.Intn(k))
		}
		before := partition.CutSize(h, partition.Partition{Parts: append([]int32(nil), parts...), K: k})
		caps := capsFor(h, k, 0.3)
		refineKway(h, k, parts, caps, 4, newWorkspace(), newParctx(1))
		after := partition.CutSize(h, partition.Partition{Parts: parts, K: k})
		if after > before {
			t.Fatalf("trial %d: k-way refinement worsened cut %d -> %d", trial, before, after)
		}
	}
}

func TestKwayStateIncrementalConsistency(t *testing.T) {
	rng := rand.New(rand.NewSource(20))
	h := randomHG(rng, 50, 80, 5)
	k := 4
	parts := make([]int32, 50)
	for v := range parts {
		parts[v] = int32(rng.Intn(k))
	}
	s := NewKwayState(h, k, parts)
	for i := 0; i < 200; i++ {
		v := rng.Intn(50)
		to := int32(rng.Intn(k))
		g := s.MoveGain(v, to)
		before := s.Cut()
		s.Move(v, to)
		after := s.Cut()
		if before-after != g {
			t.Fatalf("move %d: gain %d but cut delta %d", i, g, before-after)
		}
		// cross-check against the reference metric
		ref := partition.CutSize(h, partition.Partition{Parts: parts, K: k})
		if after != ref {
			t.Fatalf("incremental cut %d != reference %d", after, ref)
		}
	}
}

func TestGHGReachesTarget(t *testing.T) {
	h := grid2D(10, 10)
	rng := rand.New(rand.NewSource(22))
	fixed := make([]int32, 100)
	for v := range fixed {
		fixed[v] = hypergraph.Free
	}
	parts := ghg2(h, rng, fixed, 50, 55, 55, 500, newWorkspace())
	var w0 int64
	for v, p := range parts {
		if p == 0 {
			w0 += h.Weight(v)
		}
	}
	if w0 < 45 || w0 > 55 {
		t.Fatalf("GHG side-0 weight %d, want ~50", w0)
	}
}

func TestGHGFixedSeedsAndExclusions(t *testing.T) {
	h := grid2D(8, 8)
	rng := rand.New(rand.NewSource(24))
	fixed := make([]int32, 64)
	for v := range fixed {
		fixed[v] = hypergraph.Free
	}
	fixed[0] = 0  // must end on side 0
	fixed[63] = 1 // must never be absorbed
	parts := ghg2(h, rng, fixed, 32, 36, 36, 500, newWorkspace())
	if parts[0] != 0 {
		t.Fatal("side-0 fixed vertex not on side 0")
	}
	if parts[63] != 1 {
		t.Fatal("side-1 fixed vertex absorbed into side 0")
	}
}

func TestBisectionEps(t *testing.T) {
	if e := bisectionEps(0.05, 2); e != 0.05 {
		t.Fatalf("k=2 eps = %v", e)
	}
	if e := bisectionEps(0.08, 16); e < 0.01 || e > 0.02+1e-9 {
		t.Fatalf("k=16 eps = %v, want 0.02", e)
	}
	if e := bisectionEps(0.001, 64); e != 0.01 {
		t.Fatalf("tiny eps should clamp to 0.01, got %v", e)
	}
}

func TestMatchFilterAblation(t *testing.T) {
	// With the filter disabled and no fixed vertices, partitioning still
	// works; this is the A1 ablation configuration.
	h := grid2D(12, 12)
	p, err := Partition(h, Options{K: 4, Seed: 30, DisableMatchFilter: true})
	if err != nil {
		t.Fatal(err)
	}
	if err := p.Validate(); err != nil {
		t.Fatal(err)
	}
}

// Partitioning a hypergraph derived from a graph should behave sensibly too
// (exercises the 2-pin-net fast paths).
func TestPartitionFromGraph(t *testing.T) {
	gb := graph.NewBuilder(64)
	for i := 0; i < 64; i++ {
		if i+1 < 64 {
			gb.AddEdge(i, i+1, 1)
		}
		if i+8 < 64 {
			gb.AddEdge(i, i+8, 1)
		}
	}
	h := graph.ToHypergraph(gb.Build())
	p, err := Partition(h, Options{K: 2, Seed: 33})
	if err != nil {
		t.Fatal(err)
	}
	if cut := partition.CutSize(h, p); cut > 16 {
		t.Fatalf("8x8 grid bisection cut = %d, want <= 16", cut)
	}
}

func TestEmptyHypergraph(t *testing.T) {
	h := hypergraph.NewBuilder(0).Build()
	p, err := Partition(h, Options{K: 4, Seed: 1})
	if err != nil {
		t.Fatal(err)
	}
	if len(p.Parts) != 0 {
		t.Fatal("expected empty partition")
	}
}

func TestSingleVertex(t *testing.T) {
	h := hypergraph.NewBuilder(1).Build()
	p, err := Partition(h, Options{K: 2, Seed: 1})
	if err != nil {
		t.Fatal(err)
	}
	if err := p.Validate(); err != nil {
		t.Fatal(err)
	}
}

func TestKwayFMPolish(t *testing.T) {
	rng := rand.New(rand.NewSource(60))
	h := randomHG(rng, 150, 250, 6)
	k := 4
	// FM polish never worsens a random partition and respects caps roughly.
	parts := make([]int32, 150)
	for v := range parts {
		parts[v] = int32(rng.Intn(k))
	}
	before := partition.CutSize(h, partition.Partition{Parts: append([]int32(nil), parts...), K: k})
	caps := capsFor(h, k, 0.4)
	refineKwayFM(h, k, parts, caps, 4, newWorkspace(), newParctx(1))
	after := partition.CutSize(h, partition.Partition{Parts: parts, K: k})
	if after > before {
		t.Fatalf("k-way FM worsened cut %d -> %d", before, after)
	}
	// end-to-end through Options
	p, err := Partition(h, Options{K: k, Seed: 61, KwayFM: true})
	if err != nil {
		t.Fatal(err)
	}
	if err := p.Validate(); err != nil {
		t.Fatal(err)
	}
}

func TestKwayFMRespectsFixed(t *testing.T) {
	rng := rand.New(rand.NewSource(62))
	h := randomHG(rng, 100, 150, 5)
	fixed := make([]int32, 100)
	for v := range fixed {
		fixed[v] = hypergraph.Free
	}
	for v := 0; v < 20; v++ {
		fixed[v] = int32(v % 3)
	}
	hf := h.WithFixed(fixed)
	parts := make([]int32, 100)
	for v := range parts {
		parts[v] = int32(rng.Intn(3))
		if fixed[v] != hypergraph.Free {
			parts[v] = fixed[v]
		}
	}
	caps := capsFor(hf, 3, 0.5)
	refineKwayFM(hf, 3, parts, caps, 3, newWorkspace(), newParctx(1))
	for v := 0; v < 20; v++ {
		if parts[v] != fixed[v] {
			t.Fatalf("FM moved fixed vertex %d", v)
		}
	}
}

func TestVCycleNeverWorsens(t *testing.T) {
	rng := rand.New(rand.NewSource(70))
	for trial := 0; trial < 5; trial++ {
		h := randomHG(rng, 200, 350, 5)
		k := 2 + rng.Intn(4)
		p, err := Partition(h, Options{K: k, Seed: int64(trial)})
		if err != nil {
			t.Fatal(err)
		}
		before := partition.CutSize(h, p)
		pv, err := PartitionWithVCycles(h, Options{K: k, Seed: int64(trial)}, 2)
		if err != nil {
			t.Fatal(err)
		}
		after := partition.CutSize(h, pv)
		if after > before {
			t.Fatalf("trial %d: V-cycles worsened cut %d -> %d", trial, before, after)
		}
		if err := pv.Validate(); err != nil {
			t.Fatal(err)
		}
		w := partition.Weights(h, pv)
		if !partition.IsBalanced(w, 0.25) {
			t.Fatalf("trial %d: V-cycle output imbalanced %v", trial, w)
		}
	}
}

func TestVCycleRespectsFixed(t *testing.T) {
	rng := rand.New(rand.NewSource(72))
	h := randomHG(rng, 150, 220, 5)
	k := 3
	fixed := make([]int32, 150)
	for v := range fixed {
		fixed[v] = hypergraph.Free
	}
	for v := 0; v < 24; v++ {
		fixed[v] = int32(v % k)
	}
	hf := h.WithFixed(fixed)
	p, err := PartitionWithVCycles(hf, Options{K: k, Seed: 73}, 2)
	if err != nil {
		t.Fatal(err)
	}
	for v := 0; v < 24; v++ {
		if p.Of(v) != v%k {
			t.Fatalf("V-cycle moved fixed vertex %d to %d", v, p.Of(v))
		}
	}
}

func TestVCycleZeroCyclesIsPlainPartition(t *testing.T) {
	rng := rand.New(rand.NewSource(74))
	h := randomHG(rng, 80, 120, 4)
	p1, _ := Partition(h, Options{K: 4, Seed: 75})
	p2, _ := PartitionWithVCycles(h, Options{K: 4, Seed: 75}, 0)
	for v := range p1.Parts {
		if p1.Parts[v] != p2.Parts[v] {
			t.Fatal("0 cycles must equal plain Partition")
		}
	}
}

func TestTargetFractions(t *testing.T) {
	h := grid2D(24, 24) // 576 unit-weight vertices
	fracs := []float64{0.5, 0.25, 0.125, 0.125}
	p, err := Partition(h, Options{K: 4, Imbalance: 0.05, Seed: 81, TargetFractions: fracs})
	if err != nil {
		t.Fatal(err)
	}
	w := partition.Weights(h, p)
	total := float64(h.TotalWeight())
	for q, f := range fracs {
		got := float64(w[q]) / total
		if got < f*0.85 || got > f*1.15 {
			t.Fatalf("part %d got %.3f of total weight, want ~%.3f (weights %v)", q, got, f, w)
		}
	}
}

func TestTargetFractionsValidation(t *testing.T) {
	h := grid2D(4, 4)
	if _, err := Partition(h, Options{K: 3, TargetFractions: []float64{0.5, 0.5}}); err == nil {
		t.Fatal("expected length mismatch error")
	}
	if _, err := Partition(h, Options{K: 2, TargetFractions: []float64{0.9, 0.9}}); err == nil {
		t.Fatal("expected sum error")
	}
	if _, err := Partition(h, Options{K: 2, TargetFractions: []float64{1.0, 0.0}}); err == nil {
		t.Fatal("expected positivity error")
	}
}

func TestTargetFractionsDirectKway(t *testing.T) {
	h := grid2D(20, 20)
	fracs := []float64{0.4, 0.3, 0.3}
	p, err := Partition(h, Options{K: 3, Seed: 83, DirectKway: true, TargetFractions: fracs})
	if err != nil {
		t.Fatal(err)
	}
	w := partition.Weights(h, p)
	total := float64(h.TotalWeight())
	for q, f := range fracs {
		got := float64(w[q]) / total
		if got < f*0.75 || got > f*1.25 {
			t.Fatalf("direct k-way part %d got %.3f, want ~%.3f (%v)", q, got, f, w)
		}
	}
}
