package hgp

import (
	"math/rand"

	"hyperbal/internal/hypergraph"
)

// bisect computes a 2-way partition of h with target side-0 weight
// fraction frac0 and per-bisection imbalance eps, using the full
// multilevel pipeline: IPM coarsening, multi-start greedy hypergraph
// growing at the coarsest level, and FM refinement at every level.
// fixedSide maps each vertex to 0, 1, or Free.
func bisect(h *hypergraph.Hypergraph, rng *rand.Rand, fixedSide []int32, frac0, eps float64, opt Options) []int32 {
	hf := h.WithFixed(fixedSide)
	coarsenTo := opt.CoarsenTo
	if coarsenTo < 4 {
		coarsenTo = 4
	}
	levels := coarsen(hf, rng, coarsenTo, opt.MinShrink, opt.MaxNetSize, !opt.DisableMatchFilter)

	// Coarsest-level solve: multi-start GHG + FM, keep the best.
	coarsest := levels[len(levels)-1].h
	cFixed := fixedLabels(coarsest)
	ctotal := coarsest.TotalWeight()
	ct0 := int64(float64(ctotal) * frac0)
	cc0 := int64(float64(ctotal) * frac0 * (1 + eps))
	cc1 := int64(float64(ctotal) * (1 - frac0) * (1 + eps))
	if cc0 < ct0 {
		cc0 = ct0
	}
	var best []int32
	var bestCut int64 = -1
	for s := 0; s < opt.InitialStarts; s++ {
		parts := ghg2(coarsest, rng, cFixed, ct0, cc0, cc1, opt.MaxNetSize)
		cut := fm2(coarsest, parts, cFixed, cc0, cc1, opt.RefinePasses, opt.MaxNetSize)
		if bestCut < 0 || cut < bestCut {
			bestCut = cut
			best = append(best[:0], parts...)
		}
	}
	parts := best

	// Uncoarsen: project and refine at each finer level.
	for i := len(levels) - 2; i >= 0; i-- {
		parts = project(levels[i].cmap, parts)
		lf := fixedLabels(levels[i].h)
		lt := levels[i].h.TotalWeight()
		lc0 := int64(float64(lt) * frac0 * (1 + eps))
		lc1 := int64(float64(lt) * (1 - frac0) * (1 + eps))
		fm2(levels[i].h, parts, lf, lc0, lc1, opt.RefinePasses, opt.MaxNetSize)
	}
	return parts
}

// fixedLabels extracts the fixed-side labels of h into a slice (Free for
// unfixed vertices).
func fixedLabels(h *hypergraph.Hypergraph) []int32 {
	out := make([]int32, h.NumVertices())
	for v := range out {
		out[v] = h.Fixed(v)
	}
	return out
}
