package hgp

import (
	"math/rand"
	"time"

	"hyperbal/internal/hypergraph"
)

// bisect computes a 2-way partition of h with target side-0 weight
// fraction frac0 and per-bisection imbalance eps, using the full
// multilevel pipeline: IPM coarsening, multi-start greedy hypergraph
// growing at the coarsest level, and FM refinement at every level.
// fixedSide maps each vertex to 0, 1, or Free.
//
// The coarsest-level starts run concurrently on px when workers are free.
// Each start draws its RNG from startSeed(baseSeed, s) — a function of the
// start index only — and the winner is chosen by an index-ordered scan
// (lowest cut, then lowest balance deviation, then lowest start index), so
// the result is bit-identical for every Parallelism value.
func bisect(h *hypergraph.Hypergraph, rng *rand.Rand, fixedSide []int32, frac0, eps float64, opt Options, px *parctx, ws *workspace) []int32 {
	hf := h.WithFixed(fixedSide)
	coarsenTo := opt.CoarsenTo
	if coarsenTo < 4 {
		coarsenTo = 4
	}
	levels := coarsen(hf, rng, coarsenTo, opt.MinShrink, opt.MaxNetSize, !opt.DisableMatchFilter, ws, px)

	// Coarsest-level solve: multi-start GHG + FM, keep the best.
	coarsest := levels[len(levels)-1].h
	cFixed := fixedLabels(coarsest)
	ctotal := coarsest.TotalWeight()
	ct0 := int64(float64(ctotal) * frac0)
	cc0 := int64(float64(ctotal) * frac0 * (1 + eps))
	cc1 := int64(float64(ctotal) * (1 - frac0) * (1 + eps))
	if cc0 < ct0 {
		cc0 = ct0
	}
	type startOut struct {
		parts []int32
		cut   int64
		dev   int64 // |side-0 weight - target|, the balance tiebreak
	}
	outs := make([]startOut, opt.InitialStarts)
	baseSeed := rng.Int63()
	solveStart := time.Now()
	px.forEach(opt.InitialStarts, ws, func(s int, sws *workspace) {
		srng := rand.New(rand.NewSource(startSeed(baseSeed, s)))
		parts := ghg2(coarsest, srng, cFixed, ct0, cc0, cc1, opt.MaxNetSize, sws)
		cut := fm2(coarsest, parts, cFixed, cc0, cc1, opt.RefinePasses, opt.MaxNetSize, sws)
		var w0 int64
		for v, p := range parts {
			if p == 0 {
				w0 += coarsest.Weight(v)
			}
		}
		dev := w0 - ct0
		if dev < 0 {
			dev = -dev
		}
		outs[s] = startOut{parts: parts, cut: cut, dev: dev}
	})
	obsCoarseSolveNs.ObserveSince(solveStart)
	best := 0
	for s := 1; s < len(outs); s++ {
		if outs[s].cut < outs[best].cut ||
			(outs[s].cut == outs[best].cut && outs[s].dev < outs[best].dev) {
			best = s
		}
	}
	parts := outs[best].parts

	// Uncoarsen: project and refine at each finer level.
	for i := len(levels) - 2; i >= 0; i-- {
		refineStart := time.Now()
		parts = project(levels[i].cmap, parts)
		lf := fixedLabels(levels[i].h)
		lt := levels[i].h.TotalWeight()
		lc0 := int64(float64(lt) * frac0 * (1 + eps))
		lc1 := int64(float64(lt) * (1 - frac0) * (1 + eps))
		fm2(levels[i].h, parts, lf, lc0, lc1, opt.RefinePasses, opt.MaxNetSize, ws)
		obsRefineNs.At(i).ObserveSince(refineStart)
	}
	return parts
}

// fixedLabels extracts the fixed-side labels of h into a slice (Free for
// unfixed vertices).
func fixedLabels(h *hypergraph.Hypergraph) []int32 {
	out := make([]int32, h.NumVertices())
	for v := range out {
		out[v] = h.Fixed(v)
	}
	return out
}
