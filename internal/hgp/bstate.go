package hgp

import (
	"hyperbal/internal/hypergraph"
)

// bisectState tracks incremental cut bookkeeping for a 2-way partition:
// per-net pin counts on side 0, side weights, and targets/caps. The
// pin-count array comes from the workspace, so building a state per level
// or per start allocates nothing once the arenas are warm.
type bisectState struct {
	h          *hypergraph.Hypergraph
	parts      []int32
	pins0      []int32  // per net: pins currently in part 0
	w          [2]int64 // side weights
	cap        [2]int64 // max allowed side weights
	maxNetSize int
}

func (s *bisectState) init(h *hypergraph.Hypergraph, parts []int32, cap0, cap1 int64, maxNetSize int, ws *workspace) {
	ws.pins0 = growI32(ws.pins0, h.NumNets())
	*s = bisectState{
		h:          h,
		parts:      parts,
		pins0:      ws.pins0,
		cap:        [2]int64{cap0, cap1},
		maxNetSize: maxNetSize,
	}
	for v := 0; v < h.NumVertices(); v++ {
		s.w[parts[v]] += h.Weight(v)
	}
	for n := 0; n < h.NumNets(); n++ {
		c := int32(0)
		for _, p := range h.Pins(n) {
			if parts[p] == 0 {
				c++
			}
		}
		s.pins0[n] = c
	}
}

// Cut returns the current cut size (2-way connectivity-1 == cut-net).
func (s *bisectState) Cut() int64 {
	var c int64
	for n := 0; n < s.h.NumNets(); n++ {
		sz := int32(s.h.NetSize(n))
		if s.pins0[n] > 0 && s.pins0[n] < sz {
			c += s.h.Cost(n)
		}
	}
	return c
}

// gain returns the cut reduction of moving v to the other side. Nets larger
// than maxNetSize are skipped (approximation; the cut accounting in move()
// remains exact).
func (s *bisectState) gain(v int) int64 {
	var g int64
	from := s.parts[v]
	for _, nn := range s.h.Nets(v) {
		n := int(nn)
		sz := int32(s.h.NetSize(n))
		if sz < 2 || int(sz) > s.maxNetSize {
			continue
		}
		onFrom := s.pins0[n]
		if from == 1 {
			onFrom = sz - s.pins0[n]
		}
		if onFrom == 1 {
			g += s.h.Cost(n) // net leaves the cut
		} else if onFrom == sz {
			g -= s.h.Cost(n) // net enters the cut
		}
	}
	return g
}

// Move flips v to the other side and updates bookkeeping.
func (s *bisectState) Move(v int) {
	from := s.parts[v]
	to := 1 - from
	w := s.h.Weight(v)
	s.w[from] -= w
	s.w[to] += w
	s.parts[v] = to
	for _, nn := range s.h.Nets(v) {
		if from == 0 {
			s.pins0[nn]--
		} else {
			s.pins0[nn]++
		}
	}
}

// fits reports whether moving v to the other side keeps the destination
// under its cap, or rescues an over-cap source side without pushing the
// destination further over its cap than the source was.
func (s *bisectState) fits(v int) bool {
	from := s.parts[v]
	to := 1 - from
	w := s.h.Weight(v)
	if s.w[to]+w <= s.cap[to] {
		return true
	}
	// rescue: source side is over cap and the move strictly reduces the
	// total overflow.
	overBefore := over(s.w[0], s.cap[0]) + over(s.w[1], s.cap[1])
	overAfter := over(s.w[from]-w, s.cap[from]) + over(s.w[to]+w, s.cap[to])
	return overBefore > 0 && overAfter < overBefore
}

func over(w, cap int64) int64 {
	if w > cap {
		return w - cap
	}
	return 0
}

// gainEntry is one (vertex, gain) heap record; stale entries are detected
// by stamp comparison.
type gainEntry struct {
	v     int32
	gain  int64
	stamp uint32
}

// gainHeap is a max-heap of (vertex, gain) entries with lazy invalidation
// via per-vertex stamps. It is a hand-rolled binary heap: container/heap
// boxes every entry into an interface value, which made each push an
// allocation and dominated the FM kernels' allocation profile. Pops come
// out in (gain desc, vertex asc) order, a total order over live entries,
// so the pop sequence is implementation-independent and deterministic.
type gainHeap struct {
	entries []gainEntry
	stamp   []uint32 // current stamp per vertex
}

// reset prepares the heap for n vertices, clearing entries and stamps but
// keeping capacity.
func (g *gainHeap) reset(n int) {
	g.entries = g.entries[:0]
	if cap(g.stamp) < n {
		g.stamp = make([]uint32, n)
		return
	}
	g.stamp = g.stamp[:n]
	clear(g.stamp)
}

func (g *gainHeap) less(i, j int) bool {
	if g.entries[i].gain != g.entries[j].gain {
		return g.entries[i].gain > g.entries[j].gain
	}
	return g.entries[i].v < g.entries[j].v
}

func (g *gainHeap) up(i int) {
	for i > 0 {
		parent := (i - 1) / 2
		if !g.less(i, parent) {
			break
		}
		g.entries[i], g.entries[parent] = g.entries[parent], g.entries[i]
		i = parent
	}
}

func (g *gainHeap) down(i int) {
	n := len(g.entries)
	for {
		l := 2*i + 1
		if l >= n {
			break
		}
		best := l
		if r := l + 1; r < n && g.less(r, l) {
			best = r
		}
		if !g.less(best, i) {
			break
		}
		g.entries[i], g.entries[best] = g.entries[best], g.entries[i]
		i = best
	}
}

// update (re)inserts v with the given gain, invalidating earlier entries.
func (g *gainHeap) update(v int, gain int64) {
	g.stamp[v]++
	g.entries = append(g.entries, gainEntry{v: int32(v), gain: gain, stamp: g.stamp[v]})
	g.up(len(g.entries) - 1)
}

// popValid removes and returns the best currently valid entry, or ok=false
// when the heap is exhausted.
func (g *gainHeap) popValid() (gainEntry, bool) {
	for len(g.entries) > 0 {
		e := g.entries[0]
		last := len(g.entries) - 1
		g.entries[0] = g.entries[last]
		g.entries = g.entries[:last]
		if last > 0 {
			g.down(0)
		}
		if e.stamp == g.stamp[e.v] {
			return e, true
		}
	}
	return gainEntry{}, false
}

// invalidate removes v from consideration.
func (g *gainHeap) invalidate(v int) { g.stamp[v]++ }
