package hgp

import (
	"container/heap"

	"hyperbal/internal/hypergraph"
)

// bisectState tracks incremental cut bookkeeping for a 2-way partition:
// per-net pin counts on side 0, side weights, and targets/caps.
type bisectState struct {
	h          *hypergraph.Hypergraph
	parts      []int32
	pins0      []int32  // per net: pins currently in part 0
	w          [2]int64 // side weights
	cap        [2]int64 // max allowed side weights
	maxNetSize int
}

func newBisectState(h *hypergraph.Hypergraph, parts []int32, cap0, cap1 int64, maxNetSize int) *bisectState {
	s := &bisectState{
		h:          h,
		parts:      parts,
		pins0:      make([]int32, h.NumNets()),
		cap:        [2]int64{cap0, cap1},
		maxNetSize: maxNetSize,
	}
	for v := 0; v < h.NumVertices(); v++ {
		s.w[parts[v]] += h.Weight(v)
	}
	for n := 0; n < h.NumNets(); n++ {
		c := int32(0)
		for _, p := range h.Pins(n) {
			if parts[p] == 0 {
				c++
			}
		}
		s.pins0[n] = c
	}
	return s
}

// Cut returns the current cut size (2-way connectivity-1 == cut-net).
func (s *bisectState) Cut() int64 {
	var c int64
	for n := 0; n < s.h.NumNets(); n++ {
		sz := int32(s.h.NetSize(n))
		if s.pins0[n] > 0 && s.pins0[n] < sz {
			c += s.h.Cost(n)
		}
	}
	return c
}

// gain returns the cut reduction of moving v to the other side. Nets larger
// than maxNetSize are skipped (approximation; the cut accounting in move()
// remains exact).
func (s *bisectState) gain(v int) int64 {
	var g int64
	from := s.parts[v]
	for _, nn := range s.h.Nets(v) {
		n := int(nn)
		sz := int32(s.h.NetSize(n))
		if sz < 2 || int(sz) > s.maxNetSize {
			continue
		}
		onFrom := s.pins0[n]
		if from == 1 {
			onFrom = sz - s.pins0[n]
		}
		if onFrom == 1 {
			g += s.h.Cost(n) // net leaves the cut
		} else if onFrom == sz {
			g -= s.h.Cost(n) // net enters the cut
		}
	}
	return g
}

// Move flips v to the other side and updates bookkeeping.
func (s *bisectState) Move(v int) {
	from := s.parts[v]
	to := 1 - from
	w := s.h.Weight(v)
	s.w[from] -= w
	s.w[to] += w
	s.parts[v] = to
	for _, nn := range s.h.Nets(v) {
		if from == 0 {
			s.pins0[nn]--
		} else {
			s.pins0[nn]++
		}
	}
}

// fits reports whether moving v to the other side keeps the destination
// under its cap, or rescues an over-cap source side without pushing the
// destination further over its cap than the source was.
func (s *bisectState) fits(v int) bool {
	from := s.parts[v]
	to := 1 - from
	w := s.h.Weight(v)
	if s.w[to]+w <= s.cap[to] {
		return true
	}
	// rescue: source side is over cap and the move strictly reduces the
	// total overflow.
	overBefore := over(s.w[0], s.cap[0]) + over(s.w[1], s.cap[1])
	overAfter := over(s.w[from]-w, s.cap[from]) + over(s.w[to]+w, s.cap[to])
	return overBefore > 0 && overAfter < overBefore
}

func over(w, cap int64) int64 {
	if w > cap {
		return w - cap
	}
	return 0
}

// gainHeap is a max-heap of (vertex, gain) entries with lazy invalidation
// via per-vertex stamps.
type gainEntry struct {
	v     int32
	gain  int64
	stamp uint32
}

type gainHeap struct {
	entries []gainEntry
	stamp   []uint32 // current stamp per vertex
}

func newGainHeap(n int) *gainHeap {
	return &gainHeap{stamp: make([]uint32, n)}
}

func (g *gainHeap) Len() int { return len(g.entries) }
func (g *gainHeap) Less(i, j int) bool {
	if g.entries[i].gain != g.entries[j].gain {
		return g.entries[i].gain > g.entries[j].gain
	}
	return g.entries[i].v < g.entries[j].v
}
func (g *gainHeap) Swap(i, j int) { g.entries[i], g.entries[j] = g.entries[j], g.entries[i] }
func (g *gainHeap) Push(x any)    { g.entries = append(g.entries, x.(gainEntry)) }
func (g *gainHeap) Pop() any {
	old := g.entries
	n := len(old)
	e := old[n-1]
	g.entries = old[:n-1]
	return e
}

// update (re)inserts v with the given gain, invalidating earlier entries.
func (g *gainHeap) update(v int, gain int64) {
	g.stamp[v]++
	heap.Push(g, gainEntry{v: int32(v), gain: gain, stamp: g.stamp[v]})
}

// popValid removes and returns the best currently valid entry, or ok=false
// when the heap is exhausted.
func (g *gainHeap) popValid() (gainEntry, bool) {
	for g.Len() > 0 {
		e := heap.Pop(g).(gainEntry)
		if e.stamp == g.stamp[e.v] {
			return e, true
		}
	}
	return gainEntry{}, false
}

// invalidate removes v from consideration.
func (g *gainHeap) invalidate(v int) { g.stamp[v]++ }
