package hgp

import (
	"bytes"
	"math/rand"
	"testing"

	"hyperbal/internal/hypergraph"
)

// partitionBytes runs Partition and flattens the result for bytewise
// comparison.
func partitionBytes(t *testing.T, h *hypergraph.Hypergraph, opt Options) []byte {
	t.Helper()
	p, err := Partition(h, opt)
	if err != nil {
		t.Fatalf("Partition(%+v): %v", opt, err)
	}
	var buf bytes.Buffer
	for _, q := range p.Parts {
		buf.WriteByte(byte(q))
	}
	return buf.Bytes()
}

// TestPartitionParallelismDeterminism verifies the core contract of the
// parallel pipeline: every Parallelism value produces a bit-identical
// partition, across drivers (recursive bisection, direct k-way, k-way FM
// polish) and with fixed vertices present.
func TestPartitionParallelismDeterminism(t *testing.T) {
	variants := []struct {
		name string
		mod  func(*Options)
	}{
		{"rb", func(o *Options) {}},
		{"rb-kwayfm", func(o *Options) { o.KwayFM = true }},
		{"direct-kway", func(o *Options) { o.DirectKway = true }},
	}
	for seed := int64(1); seed <= 4; seed++ {
		rng := rand.New(rand.NewSource(seed * 977))
		h := quickHG(rng)
		k := 2 + rng.Intn(6)
		fixed := make([]int32, h.NumVertices())
		for v := range fixed {
			fixed[v] = hypergraph.Free
			if rng.Float64() < 0.15 {
				fixed[v] = int32(rng.Intn(k))
			}
		}
		hf := h.WithFixed(fixed)
		for _, variant := range variants {
			opt := Options{K: k, Imbalance: 0.10, Seed: seed}
			variant.mod(&opt)
			opt.Parallelism = 1
			ref := partitionBytes(t, hf, opt)
			for _, par := range []int{2, 4, 8} {
				opt.Parallelism = par
				got := partitionBytes(t, hf, opt)
				if !bytes.Equal(ref, got) {
					t.Errorf("seed %d %s: Parallelism=%d diverges from Parallelism=1",
						seed, variant.name, par)
				}
			}
		}
	}
}

// TestKernelWorkersRespectSerialPin asserts the PR 3 rank-local regime
// extends to the intra-level kernel shards: at Parallelism=1 (the pin the
// SPMD coarse solve applies per rank) no work item — RB side, multi-start,
// or kernel shard — may run on a spawned worker, which the
// hgp_kernel_worker_items_total counter records.
func TestKernelWorkersRespectSerialPin(t *testing.T) {
	rng := rand.New(rand.NewSource(99))
	h := quickHG(rng)

	before := obsKernelWorkerItems.Load()
	if _, err := Partition(h, Options{K: 4, Imbalance: 0.10, Seed: 3, Parallelism: 1}); err != nil {
		t.Fatal(err)
	}
	if d := obsKernelWorkerItems.Load() - before; d != 0 {
		t.Fatalf("Parallelism=1 spawned %d kernel worker items, want 0", d)
	}

	// Sanity check the counter is live: an unpinned run must spill at
	// least one item onto the pool.
	before = obsKernelWorkerItems.Load()
	if _, err := Partition(h, Options{K: 4, Imbalance: 0.10, Seed: 3, Parallelism: 4}); err != nil {
		t.Fatal(err)
	}
	if obsKernelWorkerItems.Load() == before {
		t.Fatal("Parallelism=4 spawned no kernel worker items; spill accounting is dead")
	}
}

// TestPartitionWithVCyclesParallelismDeterminism covers the V-cycle driver,
// which shares the workspace-threaded kernels.
func TestPartitionWithVCyclesParallelismDeterminism(t *testing.T) {
	rng := rand.New(rand.NewSource(42))
	h := quickHG(rng)
	opt := Options{K: 4, Imbalance: 0.10, Seed: 7, Parallelism: 1}
	ref, err := PartitionWithVCycles(h, opt, 2)
	if err != nil {
		t.Fatal(err)
	}
	for _, par := range []int{2, 4, 8} {
		opt.Parallelism = par
		got, err := PartitionWithVCycles(h, opt, 2)
		if err != nil {
			t.Fatal(err)
		}
		for v := range ref.Parts {
			if ref.Parts[v] != got.Parts[v] {
				t.Fatalf("Parallelism=%d diverges from 1 at vertex %d", par, v)
			}
		}
	}
}
