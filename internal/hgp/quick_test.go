package hgp

import (
	"math/rand"
	"testing"
	"testing/quick"

	"hyperbal/internal/hypergraph"
	"hyperbal/internal/partition"
)

// quickHG builds a random connected-ish hypergraph for property tests.
func quickHG(rng *rand.Rand) *hypergraph.Hypergraph {
	n := 20 + rng.Intn(80)
	b := hypergraph.NewBuilder(n)
	for v := 0; v < n; v++ {
		b.SetWeight(v, int64(1+rng.Intn(3)))
		b.SetSize(v, int64(1+rng.Intn(3)))
	}
	// chain for connectivity plus random nets
	for v := 0; v+1 < n; v++ {
		b.AddNet(1, v, v+1)
	}
	for i := 0; i < n; i++ {
		sz := 2 + rng.Intn(4)
		if sz > n {
			sz = n
		}
		b.AddNet(int64(1+rng.Intn(3)), rng.Perm(n)[:sz]...)
	}
	return b.Build()
}

// Property: Partition always returns a valid assignment with every fixed
// vertex at its fixed part and balance within a generous envelope.
func TestQuickPartitionInvariants(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		h := quickHG(rng)
		k := 2 + rng.Intn(4)
		fixed := make([]int32, h.NumVertices())
		for v := range fixed {
			fixed[v] = hypergraph.Free
			if rng.Float64() < 0.15 {
				fixed[v] = int32(rng.Intn(k))
			}
		}
		hf := h.WithFixed(fixed)
		p, err := Partition(hf, Options{K: k, Imbalance: 0.10, Seed: seed})
		if err != nil || p.Validate() != nil {
			return false
		}
		for v, fv := range fixed {
			if fv != hypergraph.Free && p.Parts[v] != fv {
				return false
			}
		}
		// Generous balance envelope: random fixed assignments can make the
		// ideal infeasible, so only reject gross violations.
		w := partition.Weights(hf, p)
		return partition.Imbalance(w) < 1.0
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 25}); err != nil {
		t.Fatal(err)
	}
}

// Property: the same seed always produces the same partition, and the cut
// never exceeds the total net cost (trivial upper bound sanity).
func TestQuickDeterminismAndBounds(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		h := quickHG(rng)
		k := 2 + rng.Intn(3)
		p1, err1 := Partition(h, Options{K: k, Seed: seed})
		p2, err2 := Partition(h, Options{K: k, Seed: seed})
		if err1 != nil || err2 != nil {
			return false
		}
		for v := range p1.Parts {
			if p1.Parts[v] != p2.Parts[v] {
				return false
			}
		}
		cut := partition.CutSize(h, p1)
		var bound int64
		for n := 0; n < h.NumNets(); n++ {
			bound += h.Cost(n) * int64(k-1)
		}
		return cut >= 0 && cut <= bound
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 20}); err != nil {
		t.Fatal(err)
	}
}

// Property: coarsening hierarchies conserve total weight and size at every
// level, and every cmap is a valid surjection.
func TestQuickCoarsenHierarchyInvariants(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		h := quickHG(rng)
		levels := coarsen(h, rng, 20, 0.1, 500, true, newWorkspace(), newParctx(1))
		for i := 0; i < len(levels); i++ {
			if levels[i].h.TotalWeight() != h.TotalWeight() {
				return false
			}
			if levels[i].h.TotalSize() != h.TotalSize() {
				return false
			}
			if i+1 < len(levels) {
				cmap := levels[i].cmap
				if len(cmap) != levels[i].h.NumVertices() {
					return false
				}
				seen := make([]bool, levels[i+1].h.NumVertices())
				for _, c := range cmap {
					if c < 0 || int(c) >= len(seen) {
						return false
					}
					seen[c] = true
				}
				for _, ok := range seen {
					if !ok {
						return false
					}
				}
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 25}); err != nil {
		t.Fatal(err)
	}
}

// Property: RefineKwayWithMigration never worsens the combined objective
// alpha*cut + migration and respects caps-feasible fixed vertices.
func TestQuickRefineMigrationMonotone(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		h := quickHG(rng)
		k := 2 + rng.Intn(4)
		alpha := int64(1 + rng.Intn(20))
		// Round-robin start keeps every part under the generous caps so the
		// forced-rebalance path (which may legitimately worsen the combined
		// objective to restore feasibility) never triggers.
		old := make([]int32, h.NumVertices())
		parts := make([]int32, h.NumVertices())
		for v := range parts {
			old[v] = int32(v % k)
			parts[v] = old[v]
		}
		caps := capsFor(h, k, 0.5)
		objective := func(ps []int32) int64 {
			p := partition.Partition{Parts: ps, K: k}
			op := partition.Partition{Parts: old, K: k}
			return alpha*partition.CutSize(h, p) + partition.MigrationVolume(h, op, p)
		}
		before := objective(append([]int32(nil), parts...))
		RefineKwayWithMigration(h, k, parts, old, alpha, caps, 4)
		after := objective(parts)
		return after <= before
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 25}); err != nil {
		t.Fatal(err)
	}
}
