package hgp

import (
	"math/rand"
	"time"

	"hyperbal/internal/hypergraph"
)

// level holds one rung of the multilevel hierarchy.
type level struct {
	h    *hypergraph.Hypergraph
	cmap []int32 // fine vertex -> coarse vertex in the next level
}

// coarsen builds the hierarchy of successively smaller hypergraphs
// (Section 4.1). levels[0].h is the input; the last entry's cmap is nil and
// its h is the coarsest hypergraph. Coarsening stops when the vertex count
// drops to coarsenTo or a round shrinks the hypergraph by less than
// minShrink.
func coarsen(h *hypergraph.Hypergraph, rng *rand.Rand, coarsenTo int, minShrink float64, maxNetSize int, filterFixed bool, ws *workspace, px *parctx) []level {
	levels := []level{{h: h}}
	cur := h
	for cur.NumVertices() > coarsenTo {
		start := time.Now()
		match := ipmMatch(cur, rng, maxNetSize, filterFixed, ws, px)
		coarse, cmap := contractWS(cur, match, ws, px)
		shrink := 1 - float64(coarse.NumVertices())/float64(cur.NumVertices())
		lvl := len(levels) - 1
		obsCoarsenNs.At(lvl).ObserveSince(start)
		obsLevelVertices.At(lvl).Observe(int64(coarse.NumVertices()))
		obsLevelNets.At(lvl).Observe(int64(coarse.NumNets()))
		obsLevelShrink.At(lvl).Observe(int64(shrink * 1000))
		if shrink < minShrink {
			break // unsuccessful coarsening; stop early
		}
		obsLevels.Inc()
		levels[len(levels)-1].cmap = cmap
		levels = append(levels, level{h: coarse})
		cur = coarse
	}
	return levels
}

// project lifts a partition of the coarse hypergraph to the fine one
// through cmap.
func project(cmap []int32, coarseParts []int32) []int32 {
	fine := make([]int32, len(cmap))
	for v, c := range cmap {
		fine[v] = coarseParts[c]
	}
	return fine
}
