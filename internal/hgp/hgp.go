package hgp

import (
	"fmt"
	"math/rand"
	"time"

	"hyperbal/internal/hypergraph"
	"hyperbal/internal/partition"
)

// Partition computes a k-way partition of h honoring any fixed-vertex
// labels carried by h. By default it uses recursive bisection (Zoltan's
// approach, Section 4.4); Options.DirectKway selects the direct k-way
// driver instead. The result satisfies Eq. 1 with Options.Imbalance on all
// but pathological inputs (e.g. a single vertex heavier than a part cap);
// callers can check with partition.IsBalanced.
func Partition(h *hypergraph.Hypergraph, opt Options) (partition.Partition, error) {
	opt = opt.withDefaults()
	if err := checkFixed(h, opt.K); err != nil {
		return partition.Partition{}, err
	}
	if err := checkFractions(opt); err != nil {
		return partition.Partition{}, err
	}
	p := partition.Partition{Parts: make([]int32, h.NumVertices()), K: opt.K}
	if opt.K == 1 {
		return p, nil
	}
	rng := rand.New(rand.NewSource(opt.Seed))
	px := newParctx(opt.Parallelism)
	ws := px.getWS()
	defer px.putWS(ws)

	obsPartitions.Inc()
	if opt.DirectKway {
		directKway(h, rng, opt, p.Parts, px, ws)
	} else {
		vs := make([]int32, h.NumVertices())
		for v := range vs {
			vs[v] = int32(v)
		}
		eps := bisectionEps(opt.Imbalance, opt.K)
		recursiveBisect(h, vs, 0, opt.K, p.Parts, rng, eps, opt.TargetFractions, opt, px, ws)
		// Final k-way polish pass to recover from per-bisection myopia.
		caps := capsForTargets(h, opt.K, opt.Imbalance, opt.TargetFractions)
		polishStart := time.Now()
		var cut int64
		if opt.KwayFM {
			cut = refineKwayFM(h, opt.K, p.Parts, caps, opt.RefinePasses, ws, px)
		} else {
			cut = refineKway(h, opt.K, p.Parts, caps, opt.RefinePasses, ws, px)
		}
		obsPolishNs.ObserveSince(polishStart)
		obsFinalCut.Set(cut)
	}
	obsKernelEfficiency.Set(px.efficiencyPermille())
	return p, nil
}

// directKway runs one multilevel pipeline with k-way coarse solution and
// k-way refinement (the A3 ablation path).
func directKway(h *hypergraph.Hypergraph, rng *rand.Rand, opt Options, out []int32, px *parctx, ws *workspace) {
	coarsenTo := opt.CoarsenTo
	if coarsenTo < 2*opt.K {
		coarsenTo = 2 * opt.K
	}
	levels := coarsen(h, rng, coarsenTo, opt.MinShrink, opt.MaxNetSize, !opt.DisableMatchFilter, ws, px)
	coarsest := levels[len(levels)-1].h

	// Coarse solution: balanced random assignment honoring fixed labels,
	// improved by k-way refinement; multi-start keeps the best. Starts run
	// concurrently with index-derived seeds and are reduced by an
	// index-ordered scan (cut, then total cap overflow, then index), so the
	// winner is the same for every Parallelism value.
	ccaps := capsForTargets(coarsest, opt.K, opt.Imbalance, opt.TargetFractions)
	type startOut struct {
		parts []int32
		cut   int64
		over  int64
	}
	outs := make([]startOut, opt.InitialStarts)
	baseSeed := rng.Int63()
	solveStart := time.Now()
	px.forEach(opt.InitialStarts, ws, func(s int, sws *workspace) {
		srng := rand.New(rand.NewSource(startSeed(baseSeed, s)))
		parts := randomBalanced(coarsest, opt.K, opt.TargetFractions, srng)
		cut := refineKway(coarsest, opt.K, parts, ccaps, opt.RefinePasses*2, sws, px)
		w := make([]int64, opt.K)
		for v, p := range parts {
			w[p] += coarsest.Weight(v)
		}
		var over int64
		for p := range w {
			if w[p] > ccaps[p] {
				over += w[p] - ccaps[p]
			}
		}
		outs[s] = startOut{parts: parts, cut: cut, over: over}
	})
	obsCoarseSolveNs.ObserveSince(solveStart)
	best := 0
	for s := 1; s < len(outs); s++ {
		if outs[s].cut < outs[best].cut ||
			(outs[s].cut == outs[best].cut && outs[s].over < outs[best].over) {
			best = s
		}
	}
	parts := outs[best].parts
	var cut int64 = -1
	for i := len(levels) - 2; i >= 0; i-- {
		refineStart := time.Now()
		parts = project(levels[i].cmap, parts)
		caps := capsForTargets(levels[i].h, opt.K, opt.Imbalance, opt.TargetFractions)
		cut = refineKway(levels[i].h, opt.K, parts, caps, opt.RefinePasses, ws, px)
		obsRefineNs.At(i).ObserveSince(refineStart)
	}
	if cut >= 0 {
		obsFinalCut.Set(cut)
	}
	copy(out, parts)
}

// randomBalanced assigns free vertices round-robin in random order (a
// balanced start), keeping fixed vertices at their parts.
func randomBalanced(h *hypergraph.Hypergraph, k int, fracs []float64, rng *rand.Rand) []int32 {
	parts := make([]int32, h.NumVertices())
	w := make([]int64, k)
	for v := range parts {
		if f := h.Fixed(v); f != hypergraph.Free {
			parts[v] = f
			w[f] += h.Weight(v)
		} else {
			parts[v] = -1
		}
	}
	order := rng.Perm(h.NumVertices())
	for _, v := range order {
		if parts[v] != -1 {
			continue
		}
		// part with the lowest fill ratio relative to its target share
		best := 0
		bestRatio := fillRatio(w[0], k, 0, fracs)
		for p := 1; p < k; p++ {
			if r := fillRatio(w[p], k, p, fracs); r < bestRatio {
				best = p
				bestRatio = r
			}
		}
		parts[v] = int32(best)
		w[best] += h.Weight(v)
	}
	return parts
}

// fillRatio normalizes a part's weight by its target fraction.
func fillRatio(w int64, k, p int, fracs []float64) float64 {
	f := 1.0 / float64(k)
	if fracs != nil {
		f = fracs[p]
	}
	if f <= 0 {
		f = 1e-9
	}
	return float64(w) / f
}

// capsForTargets returns per-part weight caps total*frac_p*(1+eps),
// with uniform fractions when fracs is nil.
func capsForTargets(h *hypergraph.Hypergraph, k int, eps float64, fracs []float64) []int64 {
	if fracs == nil {
		return capsFor(h, k, eps)
	}
	total := h.TotalWeight()
	caps := make([]int64, k)
	for p := range caps {
		capv := int64(float64(total) * fracs[p] * (1 + eps))
		if capv < 1 {
			capv = 1
		}
		caps[p] = capv
	}
	return caps
}

// checkFractions validates Options.TargetFractions.
func checkFractions(opt Options) error {
	fr := opt.TargetFractions
	if fr == nil {
		return nil
	}
	if len(fr) != opt.K {
		return fmt.Errorf("hgp: %d target fractions for K=%d parts", len(fr), opt.K)
	}
	sum := 0.0
	for p, f := range fr {
		if f <= 0 {
			return fmt.Errorf("hgp: target fraction of part %d must be positive, got %v", p, f)
		}
		sum += f
	}
	if sum < 0.99 || sum > 1.01 {
		return fmt.Errorf("hgp: target fractions sum to %v, want ~1", sum)
	}
	return nil
}

// capsFor returns per-part weight caps W_avg*(1+eps).
func capsFor(h *hypergraph.Hypergraph, k int, eps float64) []int64 {
	total := h.TotalWeight()
	caps := make([]int64, k)
	capv := int64(float64(total) / float64(k) * (1 + eps))
	if capv < 1 {
		capv = 1
	}
	for p := range caps {
		caps[p] = capv
	}
	return caps
}

func checkFixed(h *hypergraph.Hypergraph, k int) error {
	if !h.HasFixed() {
		return nil
	}
	for v := 0; v < h.NumVertices(); v++ {
		if f := h.Fixed(v); f != hypergraph.Free && (f < 0 || int(f) >= k) {
			return fmt.Errorf("hgp: vertex %d fixed to part %d, want [0,%d)", v, f, k)
		}
	}
	return nil
}
