package hgp

import (
	"hash/fnv"
	"sort"

	"hyperbal/internal/hypergraph"
)

// contract builds the coarse hypergraph induced by a match vector.
// It returns the coarse hypergraph and the coarse map cmap (fine vertex ->
// coarse vertex). Coarse vertex weight and size are the sums of the
// constituents. Fixed labels propagate by the three-case rule of
// Section 4.1: same-fixed pairs stay fixed, fixed+free pairs inherit the
// fixed part, free pairs stay free. Single-pin coarse nets are dropped;
// identical coarse nets are merged with summed costs.
func Contract(h *hypergraph.Hypergraph, match []int32) (*hypergraph.Hypergraph, []int32) {
	n := h.NumVertices()
	cmap := make([]int32, n)
	for v := range cmap {
		cmap[v] = -1
	}
	numCoarse := 0
	for v := 0; v < n; v++ {
		if cmap[v] != -1 {
			continue
		}
		u := int(match[v])
		cmap[v] = int32(numCoarse)
		if u != v {
			cmap[u] = int32(numCoarse)
		}
		numCoarse++
	}

	weights := make([]int64, numCoarse)
	sizes := make([]int64, numCoarse)
	fixed := make([]int32, numCoarse)
	hasFixed := false
	for i := range fixed {
		fixed[i] = hypergraph.Free
	}
	for v := 0; v < n; v++ {
		c := cmap[v]
		weights[c] += h.Weight(v)
		sizes[c] += h.Size(v)
		if f := h.Fixed(v); f != hypergraph.Free {
			fixed[c] = f
			hasFixed = true
		}
	}

	// Build coarse nets with dedup of identical pin sets.
	type netKey struct {
		hash uint64
		size int
	}
	seen := make(map[netKey][]int, h.NumNets()/2+1) // key -> candidate coarse net ids
	var coarsePins [][]int32
	var coarseCosts []int64

	mark := make([]bool, numCoarse)
	buf := make([]int32, 0, 64)
	for netID := 0; netID < h.NumNets(); netID++ {
		buf = buf[:0]
		for _, p := range h.Pins(netID) {
			c := cmap[p]
			if !mark[c] {
				mark[c] = true
				buf = append(buf, c)
			}
		}
		for _, c := range buf {
			mark[c] = false
		}
		if len(buf) < 2 {
			continue // uncuttable net
		}
		pins := append([]int32(nil), buf...)
		sort.Slice(pins, func(i, j int) bool { return pins[i] < pins[j] })
		key := netKey{hash: hashPins(pins), size: len(pins)}
		merged := false
		for _, id := range seen[key] {
			if equalPins(coarsePins[id], pins) {
				coarseCosts[id] += h.Cost(netID)
				merged = true
				break
			}
		}
		if !merged {
			seen[key] = append(seen[key], len(coarsePins))
			coarsePins = append(coarsePins, pins)
			coarseCosts = append(coarseCosts, h.Cost(netID))
		}
	}

	b := hypergraph.NewBuilder(numCoarse)
	for c := 0; c < numCoarse; c++ {
		b.SetWeight(c, weights[c])
		b.SetSize(c, sizes[c])
		if hasFixed && fixed[c] != hypergraph.Free {
			b.Fix(c, int(fixed[c]))
		}
	}
	for i, pins := range coarsePins {
		b.AddNetInt32(coarseCosts[i], pins)
	}
	return b.Build(), cmap
}

func hashPins(pins []int32) uint64 {
	h := fnv.New64a()
	var b [4]byte
	for _, p := range pins {
		b[0] = byte(p)
		b[1] = byte(p >> 8)
		b[2] = byte(p >> 16)
		b[3] = byte(p >> 24)
		h.Write(b[:])
	}
	return h.Sum64()
}

func equalPins(a, b []int32) bool {
	if len(a) != len(b) {
		return false
	}
	for i := range a {
		if a[i] != b[i] {
			return false
		}
	}
	return true
}
