package hgp

import (
	"slices"

	"hyperbal/internal/hypergraph"
)

// Contract builds the coarse hypergraph induced by a match vector.
// It returns the coarse hypergraph and the coarse map cmap (fine vertex ->
// coarse vertex). Coarse vertex weight and size are the sums of the
// constituents. Fixed labels propagate by the three-case rule of
// Section 4.1: same-fixed pairs stay fixed, fixed+free pairs inherit the
// fixed part, free pairs stay free. Single-pin coarse nets are dropped;
// identical coarse nets are merged with summed costs.
func Contract(h *hypergraph.Hypergraph, match []int32) (*hypergraph.Hypergraph, []int32) {
	ws := wsPool.Get().(*workspace)
	defer wsPool.Put(ws)
	return contractWS(h, match, ws, newParctx(1))
}

// contractShard is the output of one parallel net-translation shard: the
// kept (>=2 coarse pins) nets of its fine-net range, pins translated to
// coarse ids, sorted, locally concatenated. ids keeps the fine net id of
// each kept net so the merge can read its cost.
type contractShard struct {
	ids   []int32
	start []int32
	pins  []int32
}

// contractWS is Contract with explicit scratch space: the dedup hash table,
// per-net pin buffer, and dedup marks live in ws, so coarsening a level
// allocates only the coarse CSR arrays and cmap that outlive the call.
//
// The net translation runs in parallel: the fine-net range is split into
// kernelShards shards (a pure function of the net count, so the structure
// is identical at every Parallelism), each translating, deduping within
// the net, dropping, and sorting its nets into a private buffer. Shards do
// NOT deduplicate across nets — identical coarse nets require the global
// table — so the serial merge walks the shards in index order (= fine-net
// order) performing the open-addressing dedup exactly as the serial code
// did, producing a byte-identical coarse CSR.
func contractWS(h *hypergraph.Hypergraph, match []int32, ws *workspace, px *parctx) (*hypergraph.Hypergraph, []int32) {
	n := h.NumVertices()
	cmap := make([]int32, n)
	for v := range cmap {
		cmap[v] = -1
	}
	numCoarse := 0
	for v := 0; v < n; v++ {
		if cmap[v] != -1 {
			continue
		}
		u := int(match[v])
		cmap[v] = int32(numCoarse)
		if u != v {
			cmap[u] = int32(numCoarse)
		}
		numCoarse++
	}

	weights := make([]int64, numCoarse)
	sizes := make([]int64, numCoarse)
	var fixed []int32
	hasFixed := false
	if h.HasFixed() {
		fixed = make([]int32, numCoarse)
		for i := range fixed {
			fixed[i] = hypergraph.Free
		}
	}
	for v := 0; v < n; v++ {
		c := cmap[v]
		weights[c] += h.Weight(v)
		sizes[c] += h.Size(v)
		if fixed != nil {
			if f := h.Fixed(v); f != hypergraph.Free {
				fixed[c] = f
				hasFixed = true
			}
		}
	}
	if !hasFixed {
		fixed = nil
	}

	numNets := h.NumNets()
	shards := kernelShards(numNets)
	out := make([]contractShard, shards)
	px.forEach(shards, ws, func(i int, wws *workspace) {
		lo, hi := shardRange(numNets, shards, i)
		out[i] = translateNets(h, cmap, numCoarse, lo, hi, wws)
	})

	// Serial merge with global dedup through an open-addressing table keyed
	// by the sorted pin list. Slots hold coarse net ids (or -1 when empty);
	// probing compares actual pin lists, so hash collisions are benign.
	// Nets are appended in fine-net order, keeping output deterministic.
	tabSize := 1
	for tabSize < 2*numNets {
		tabSize *= 2
	}
	ws.htab = growI32(ws.htab, tabSize)
	htab := ws.htab
	for i := range htab {
		htab[i] = -1
	}
	mask := uint64(tabSize - 1)

	netStart := make([]int32, 1, numNets+1)
	netPins := make([]int32, 0, h.NumPins())
	costs := make([]int64, 0, numNets)

	for s := range out {
		sh := &out[s]
		for j, fineID := range sh.ids {
			buf := sh.pins[sh.start[j]:sh.start[j+1]]
			slot := hashPins(buf) & mask
			for {
				id := htab[slot]
				if id == -1 {
					htab[slot] = int32(len(costs))
					netPins = append(netPins, buf...)
					netStart = append(netStart, int32(len(netPins)))
					costs = append(costs, h.Cost(int(fineID)))
					break
				}
				if equalPins(netPins[netStart[id]:netStart[id+1]], buf) {
					costs[id] += h.Cost(int(fineID))
					break
				}
				slot = (slot + 1) & mask
			}
		}
	}

	return hypergraph.FromCSR(netStart, netPins, costs, weights, sizes, fixed), cmap
}

// translateNets translates the pins of fine nets [lo, hi) to coarse ids,
// dropping duplicates within a net (via the workspace mark array, always
// restored) and nets left with fewer than two pins, sorting each survivor.
// It writes only shard-private output, so shards run concurrently.
func translateNets(h *hypergraph.Hypergraph, cmap []int32, numCoarse, lo, hi int, ws *workspace) contractShard {
	ws.cmark = growBool(ws.cmark, numCoarse)
	mark := ws.cmark

	capPins := 0
	for netID := lo; netID < hi; netID++ {
		capPins += len(h.Pins(netID))
	}
	sh := contractShard{
		ids:   make([]int32, 0, hi-lo),
		start: make([]int32, 1, hi-lo+1),
		pins:  make([]int32, 0, capPins),
	}

	for netID := lo; netID < hi; netID++ {
		base := len(sh.pins)
		for _, p := range h.Pins(netID) {
			c := cmap[p]
			if !mark[c] {
				mark[c] = true
				sh.pins = append(sh.pins, c)
			}
		}
		buf := sh.pins[base:]
		for _, c := range buf {
			mark[c] = false
		}
		if len(buf) < 2 {
			sh.pins = sh.pins[:base] // uncuttable net
			continue
		}
		slices.Sort(buf)
		sh.ids = append(sh.ids, int32(netID))
		sh.start = append(sh.start, int32(len(sh.pins)))
	}
	return sh
}

// hashPins is an FNV-1a-style hash over the pin ids.
func hashPins(pins []int32) uint64 {
	h := uint64(14695981039346656037)
	for _, p := range pins {
		h ^= uint64(uint32(p))
		h *= 1099511628211
	}
	return h
}

func equalPins(a, b []int32) bool {
	if len(a) != len(b) {
		return false
	}
	for i := range a {
		if a[i] != b[i] {
			return false
		}
	}
	return true
}
