package hgp

import (
	"slices"

	"hyperbal/internal/hypergraph"
)

// Contract builds the coarse hypergraph induced by a match vector.
// It returns the coarse hypergraph and the coarse map cmap (fine vertex ->
// coarse vertex). Coarse vertex weight and size are the sums of the
// constituents. Fixed labels propagate by the three-case rule of
// Section 4.1: same-fixed pairs stay fixed, fixed+free pairs inherit the
// fixed part, free pairs stay free. Single-pin coarse nets are dropped;
// identical coarse nets are merged with summed costs.
func Contract(h *hypergraph.Hypergraph, match []int32) (*hypergraph.Hypergraph, []int32) {
	ws := wsPool.Get().(*workspace)
	defer wsPool.Put(ws)
	return contractWS(h, match, ws)
}

// contractWS is Contract with explicit scratch space: the dedup hash table,
// per-net pin buffer, and dedup marks live in ws, so coarsening a level
// allocates only the coarse CSR arrays and cmap that outlive the call.
func contractWS(h *hypergraph.Hypergraph, match []int32, ws *workspace) (*hypergraph.Hypergraph, []int32) {
	n := h.NumVertices()
	cmap := make([]int32, n)
	for v := range cmap {
		cmap[v] = -1
	}
	numCoarse := 0
	for v := 0; v < n; v++ {
		if cmap[v] != -1 {
			continue
		}
		u := int(match[v])
		cmap[v] = int32(numCoarse)
		if u != v {
			cmap[u] = int32(numCoarse)
		}
		numCoarse++
	}

	weights := make([]int64, numCoarse)
	sizes := make([]int64, numCoarse)
	var fixed []int32
	hasFixed := false
	if h.HasFixed() {
		fixed = make([]int32, numCoarse)
		for i := range fixed {
			fixed[i] = hypergraph.Free
		}
	}
	for v := 0; v < n; v++ {
		c := cmap[v]
		weights[c] += h.Weight(v)
		sizes[c] += h.Size(v)
		if fixed != nil {
			if f := h.Fixed(v); f != hypergraph.Free {
				fixed[c] = f
				hasFixed = true
			}
		}
	}
	if !hasFixed {
		fixed = nil
	}

	// Coarse nets, deduplicated through an open-addressing table keyed by
	// the sorted pin list. Slots hold coarse net ids (or -1 when empty);
	// probing compares actual pin lists, so hash collisions are benign.
	// Nets are appended in fine-net order, keeping output deterministic.
	tabSize := 1
	for tabSize < 2*h.NumNets() {
		tabSize *= 2
	}
	ws.htab = growI32(ws.htab, tabSize)
	htab := ws.htab
	for i := range htab {
		htab[i] = -1
	}
	mask := uint64(tabSize - 1)

	ws.cmark = growBool(ws.cmark, numCoarse)
	mark := ws.cmark
	buf := ws.pinBuf[:0]

	netStart := make([]int32, 1, h.NumNets()+1)
	netPins := make([]int32, 0, h.NumPins())
	costs := make([]int64, 0, h.NumNets())

	for netID := 0; netID < h.NumNets(); netID++ {
		buf = buf[:0]
		for _, p := range h.Pins(netID) {
			c := cmap[p]
			if !mark[c] {
				mark[c] = true
				buf = append(buf, c)
			}
		}
		for _, c := range buf {
			mark[c] = false
		}
		if len(buf) < 2 {
			continue // uncuttable net
		}
		slices.Sort(buf)
		slot := hashPins(buf) & mask
		for {
			id := htab[slot]
			if id == -1 {
				htab[slot] = int32(len(costs))
				netPins = append(netPins, buf...)
				netStart = append(netStart, int32(len(netPins)))
				costs = append(costs, h.Cost(netID))
				break
			}
			if equalPins(netPins[netStart[id]:netStart[id+1]], buf) {
				costs[id] += h.Cost(netID)
				break
			}
			slot = (slot + 1) & mask
		}
	}
	ws.pinBuf = buf

	return hypergraph.FromCSR(netStart, netPins, costs, weights, sizes, fixed), cmap
}

// hashPins is an FNV-1a-style hash over the pin ids.
func hashPins(pins []int32) uint64 {
	h := uint64(14695981039346656037)
	for _, p := range pins {
		h ^= uint64(uint32(p))
		h *= 1099511628211
	}
	return h
}

func equalPins(a, b []int32) bool {
	if len(a) != len(b) {
		return false
	}
	for i := range a {
		if a[i] != b[i] {
			return false
		}
	}
	return true
}
