package hgp

import (
	"math/rand"
	"testing"

	"hyperbal/internal/datasets"
	"hyperbal/internal/graph"
	"hyperbal/internal/hypergraph"
)

// kernelBenchScale matches the repo-level benchScale so kernel numbers are
// comparable with the figure benchmarks in bench_test.go.
const kernelBenchScale = 1200

func benchHypergraph(b *testing.B) *hypergraph.Hypergraph {
	b.Helper()
	g, err := datasets.Generate("xyce680s", kernelBenchScale, 1)
	if err != nil {
		b.Fatal(err)
	}
	return graph.ToHypergraph(g)
}

// BenchmarkContract measures one coarsening contraction at benchScale:
// the dominant allocation site of the multilevel pipeline.
func BenchmarkContract(b *testing.B) {
	h := benchHypergraph(b)
	rng := rand.New(rand.NewSource(1))
	ws := newWorkspace()
	px := newParctx(1)
	match := ipmMatch(h, rng, 500, true, ws, px)
	matchCopy := append([]int32(nil), match...)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		copy(match, matchCopy)
		contractWS(h, match, ws, px)
	}
}

// BenchmarkIPMMatch measures one inner-product matching round.
func BenchmarkIPMMatch(b *testing.B) {
	h := benchHypergraph(b)
	ws := newWorkspace()
	px := newParctx(1)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		rng := rand.New(rand.NewSource(1))
		ipmMatch(h, rng, 500, true, ws, px)
	}
}

// BenchmarkFM2Pass measures one 2-way FM pass-pair over a balanced random
// start (the per-level refinement kernel).
func BenchmarkFM2Pass(b *testing.B) {
	h := benchHypergraph(b)
	n := h.NumVertices()
	rng := rand.New(rand.NewSource(2))
	base := make([]int32, n)
	for _, v := range rng.Perm(n)[:n/2] {
		base[v] = 1
	}
	fixed := make([]int32, n)
	for v := range fixed {
		fixed[v] = hypergraph.Free
	}
	caps := capsFor(h, 2, 0.10)
	parts := make([]int32, n)
	ws := newWorkspace()
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		copy(parts, base)
		fm2(h, parts, fixed, caps[0], caps[1], 1, 500, ws)
	}
}

// benchParallelisms are the worker-pool sizes the parallel kernel
// benchmarks sweep; 1 is the inline reference schedule.
var benchParallelisms = []struct {
	name string
	par  int
}{{"par1", 1}, {"par2", 2}, {"par4", 4}}

// BenchmarkIPMMatchParallel measures the propose–resolve matching kernel
// across worker-pool sizes (the propose shards spill onto the pool).
func BenchmarkIPMMatchParallel(b *testing.B) {
	h := benchHypergraph(b)
	for _, c := range benchParallelisms {
		b.Run(c.name, func(b *testing.B) {
			ws := newWorkspace()
			px := newParctx(c.par)
			b.ReportAllocs()
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				rng := rand.New(rand.NewSource(1))
				ipmMatch(h, rng, 500, true, ws, px)
			}
		})
	}
}

// BenchmarkContractParallel measures the sharded-translate contraction
// kernel across worker-pool sizes.
func BenchmarkContractParallel(b *testing.B) {
	h := benchHypergraph(b)
	rng := rand.New(rand.NewSource(1))
	ws := newWorkspace()
	match := ipmMatch(h, rng, 500, true, ws, newParctx(1))
	matchCopy := append([]int32(nil), match...)
	for _, c := range benchParallelisms {
		b.Run(c.name, func(b *testing.B) {
			px := newParctx(c.par)
			b.ReportAllocs()
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				copy(match, matchCopy)
				contractWS(h, match, ws, px)
			}
		})
	}
}

// BenchmarkKwayRoundParallel measures propose–apply k-way refinement
// rounds (k=8) over a balanced random start across worker-pool sizes.
func BenchmarkKwayRoundParallel(b *testing.B) {
	h := benchHypergraph(b)
	const k = 8
	rng := rand.New(rand.NewSource(3))
	base := randomBalanced(h, k, nil, rng)
	caps := capsFor(h, k, 0.10)
	parts := make([]int32, len(base))
	for _, c := range benchParallelisms {
		b.Run(c.name, func(b *testing.B) {
			ws := newWorkspace()
			px := newParctx(c.par)
			b.ReportAllocs()
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				copy(parts, base)
				refineKway(h, k, parts, caps, 2, ws, px)
			}
		})
	}
}
