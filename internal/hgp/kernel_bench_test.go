package hgp

import (
	"math/rand"
	"testing"

	"hyperbal/internal/datasets"
	"hyperbal/internal/graph"
	"hyperbal/internal/hypergraph"
)

// kernelBenchScale matches the repo-level benchScale so kernel numbers are
// comparable with the figure benchmarks in bench_test.go.
const kernelBenchScale = 1200

func benchHypergraph(b *testing.B) *hypergraph.Hypergraph {
	b.Helper()
	g, err := datasets.Generate("xyce680s", kernelBenchScale, 1)
	if err != nil {
		b.Fatal(err)
	}
	return graph.ToHypergraph(g)
}

// BenchmarkContract measures one coarsening contraction at benchScale:
// the dominant allocation site of the multilevel pipeline.
func BenchmarkContract(b *testing.B) {
	h := benchHypergraph(b)
	rng := rand.New(rand.NewSource(1))
	ws := newWorkspace()
	match := ipmMatch(h, rng, 500, true, ws)
	matchCopy := append([]int32(nil), match...)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		copy(match, matchCopy)
		contractWS(h, match, ws)
	}
}

// BenchmarkIPMMatch measures one inner-product matching round.
func BenchmarkIPMMatch(b *testing.B) {
	h := benchHypergraph(b)
	ws := newWorkspace()
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		rng := rand.New(rand.NewSource(1))
		ipmMatch(h, rng, 500, true, ws)
	}
}

// BenchmarkFM2Pass measures one 2-way FM pass-pair over a balanced random
// start (the per-level refinement kernel).
func BenchmarkFM2Pass(b *testing.B) {
	h := benchHypergraph(b)
	n := h.NumVertices()
	rng := rand.New(rand.NewSource(2))
	base := make([]int32, n)
	for _, v := range rng.Perm(n)[:n/2] {
		base[v] = 1
	}
	fixed := make([]int32, n)
	for v := range fixed {
		fixed[v] = hypergraph.Free
	}
	caps := capsFor(h, 2, 0.10)
	parts := make([]int32, n)
	ws := newWorkspace()
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		copy(parts, base)
		fm2(h, parts, fixed, caps[0], caps[1], 1, 500, ws)
	}
}
