package hgp

import (
	"math/rand"

	"hyperbal/internal/hypergraph"
)

// ipmMatch computes a greedy first-choice inner-product matching of h,
// honoring the fixed-vertex compatibility filter of Section 4.1: two
// vertices fixed to different parts never match. The returned match vector
// has match[v] == u (and match[u] == v) for matched pairs and
// match[v] == v for singletons. It aliases workspace storage and is valid
// until the next ipmMatch call on the same workspace.
//
// The similarity (inner product / heavy connectivity) between u and v is
// sum over shared nets n of cost(n)/(|n|-1); nets larger than maxNetSize
// are skipped for speed.
func ipmMatch(h *hypergraph.Hypergraph, rng *rand.Rand, maxNetSize int, filterFixed bool, ws *workspace) []int32 {
	n := h.NumVertices()
	ws.match = growI32(ws.match, n)
	match := ws.match
	for v := range match {
		match[v] = -1
	}
	// Fisher–Yates fill, identical to rand.Perm but into a reused buffer.
	ws.perm = growI32(ws.perm, n)
	order := ws.perm
	for i := 0; i < n; i++ {
		j := rng.Intn(i + 1)
		order[i] = order[j]
		order[j] = int32(i)
	}

	// score accumulation scratch: candidate -> accumulated score. The
	// selection loop restores every touched entry to zero, so the all-zero
	// invariant holds across calls.
	ws.score = growF64(ws.score, n)
	score := ws.score
	touched := ws.touched[:0]

	for _, uu := range order {
		u := int(uu)
		if match[u] != -1 {
			continue
		}
		fu := h.Fixed(u)
		// Accumulate inner products with unmatched neighbors.
		touched = touched[:0]
		for _, netID := range h.Nets(u) {
			pins := h.Pins(int(netID))
			if len(pins) < 2 || len(pins) > maxNetSize {
				continue
			}
			contrib := float64(h.Cost(int(netID))) / float64(len(pins)-1)
			if contrib <= 0 {
				contrib = 1e-9
			}
			for _, w := range pins {
				v := int(w)
				if v == u || match[v] != -1 {
					continue
				}
				if score[v] == 0 {
					touched = append(touched, w)
				}
				score[v] += contrib
			}
		}
		// Pick the best feasible candidate. Infeasible scores are computed
		// anyway (as in Zoltan) but filtered at selection time.
		best := -1
		bestScore := 0.0
		for _, w := range touched {
			v := int(w)
			s := score[v]
			score[v] = 0
			if s <= bestScore {
				// ties broken toward the earlier-seen candidate; strict
				// inequality keeps determinism under the random visit order
				continue
			}
			if filterFixed {
				fv := h.Fixed(v)
				if fu != hypergraph.Free && fv != hypergraph.Free && fu != fv {
					continue // match filter: incompatible fixed parts
				}
			}
			best = v
			bestScore = s
		}
		if best >= 0 {
			match[u] = int32(best)
			match[best] = int32(u)
		} else {
			match[u] = int32(u)
		}
	}
	ws.touched = touched
	return match
}
