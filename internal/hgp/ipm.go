package hgp

import (
	"math/rand"

	"hyperbal/internal/hypergraph"
)

// ipmMatch computes an inner-product matching of h, honoring the
// fixed-vertex compatibility filter of Section 4.1: two vertices fixed to
// different parts never match. The returned match vector has
// match[v] == u (and match[u] == v) for matched pairs and match[v] == v
// for singletons. It aliases workspace storage and is valid until the next
// ipmMatch call on the same workspace.
//
// The kernel runs synchronous propose–resolve rounds (the Mt-KaHyPar /
// PMondriaan structure): in the propose phase every still-unmatched vertex
// scores its unmatched neighbors against the round-start snapshot and
// picks the best partner — shards of the index range run in parallel on
// px — and the serial resolve phase then grants proposals in vertex-index
// order, so a vertex whose partner was claimed earlier in the scan loses
// the round (a conflict) and re-proposes in the next. Proposals are pure
// functions of the snapshot and tie-breaks are keyed on (seed, round,
// vertex indices), never on execution order, so the matching is
// bit-identical for every Parallelism value. A vertex with no unmatched
// compatible neighbor retires as a singleton — the unmatched set only
// shrinks, so no later round could do better.
//
// The similarity (inner product / heavy connectivity) between u and v is
// sum over shared nets n of cost(n)/(|n|-1); nets larger than maxNetSize
// are skipped for speed.
func ipmMatch(h *hypergraph.Hypergraph, rng *rand.Rand, maxNetSize int, filterFixed bool, ws *workspace, px *parctx) []int32 {
	n := h.NumVertices()
	ws.match = growI32(ws.match, n)
	match := ws.match
	for v := range match {
		match[v] = -1
	}
	ws.proposal = growI32(ws.proposal, n)
	proposal := ws.proposal

	// One draw keeps the caller's stream deterministic; every per-vertex
	// "random" decision derives from it by index-keyed hashing.
	base := uint64(rng.Int63())
	shards := kernelShards(n)

	unmatched := n
	rounds, conflicts := 0, 0
	for unmatched > 0 {
		rounds++
		px.forEach(shards, ws, func(i int, wws *workspace) {
			lo, hi := shardRange(n, shards, i)
			proposeRange(h, match, proposal, lo, hi, maxNetSize, filterFixed, base, rounds, wws)
		})
		// Resolve in index order: first proposer wins its partner.
		matched := 0
		for u := 0; u < n; u++ {
			if match[u] != -1 {
				continue
			}
			p := proposal[u]
			if p < 0 {
				// No unmatched compatible neighbor; matches never unmake,
				// so this cannot improve later — retire as a singleton.
				match[u] = int32(u)
				unmatched--
				continue
			}
			if match[p] != -1 {
				conflicts++ // partner claimed earlier this scan; retry next round
				continue
			}
			match[u] = p
			match[p] = int32(u)
			matched++
			unmatched -= 2
		}
		if matched == 0 && unmatched > 0 {
			// Defensive: cannot happen (a zero-match round retires every
			// remaining vertex), but never loop forever on a logic bug.
			for u := 0; u < n; u++ {
				if match[u] == -1 {
					match[u] = int32(u)
				}
			}
			unmatched = 0
		}
	}
	obsKernelRounds.Add(int64(rounds))
	obsKernelConflicts.Add(int64(conflicts))
	return match
}

// proposeRange fills proposal[lo:hi] for the unmatched vertices of the
// shard: each picks its best-scoring unmatched neighbor (-1 if none).
// It reads only the round-start match snapshot and writes only its own
// index range, so shards are independent. Ties are broken by an
// index-seeded hash so the choice is pseudo-random but identical at every
// thread count.
func proposeRange(h *hypergraph.Hypergraph, match, proposal []int32, lo, hi, maxNetSize int, filterFixed bool, base uint64, round int, ws *workspace) {
	n := h.NumVertices()
	// Score scratch keeps the all-zero invariant: the selection loop
	// restores every touched entry, so only fresh allocations need zeroing.
	ws.score = growF64Zero(ws.score, n)
	score := ws.score
	touched := ws.touched[:0]

	for u := lo; u < hi; u++ {
		if match[u] != -1 {
			continue
		}
		fu := h.Fixed(u)
		touched = touched[:0]
		for _, netID := range h.Nets(u) {
			pins := h.Pins(int(netID))
			if len(pins) < 2 || len(pins) > maxNetSize {
				continue
			}
			contrib := float64(h.Cost(int(netID))) / float64(len(pins)-1)
			if contrib <= 0 {
				contrib = 1e-9
			}
			for _, w := range pins {
				v := int(w)
				if v == u || match[v] != -1 {
					continue
				}
				if score[v] == 0 {
					touched = append(touched, w)
				}
				score[v] += contrib
			}
		}
		// Pick the best feasible candidate. Infeasible scores are computed
		// anyway (as in Zoltan) but filtered at selection time.
		best := int32(-1)
		bestScore := 0.0
		var bestKey uint64
		for _, w := range touched {
			v := int(w)
			s := score[v]
			score[v] = 0
			if filterFixed {
				fv := h.Fixed(v)
				if fu != hypergraph.Free && fv != hypergraph.Free && fu != fv {
					continue // match filter: incompatible fixed parts
				}
			}
			key := mix64(base ^ uint64(round)*0x9E3779B97F4A7C15 ^ uint64(u)*0xBF58476D1CE4E5B9 ^ uint64(v))
			if best < 0 || s > bestScore || (s == bestScore && key < bestKey) {
				best, bestScore, bestKey = w, s, key
			}
		}
		proposal[u] = best
	}
	ws.touched = touched
}
