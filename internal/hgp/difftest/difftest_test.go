package difftest

import (
	"bytes"
	"fmt"
	"testing"

	"hyperbal/internal/datasets"
	"hyperbal/internal/dynamics"
	"hyperbal/internal/graph"
	"hyperbal/internal/hgp"
	"hyperbal/internal/hypergraph"
	"hyperbal/internal/partition"
)

const (
	diffN      = 300 // vertices per dataset analogue
	diffEpochs = 4

	// warmCutSlack is the fixed multiplicative tolerance for the warm
	// path: warmCut <= (1+warmCutSlack)*coldCut + warmCutFloor. The warm
	// path inherits the previous epoch's solution instead of re-running
	// multi-start initial partitioning, so a bounded regression is the
	// accepted price for skipping the full V-cycle; large transitions
	// escalate to the cold partitioner and cost nothing extra.
	warmCutSlack = 1.0
	warmCutFloor = 10

	// warmBalanceSlack is the additive imbalance the warm path may add
	// over what the cold partitioner itself achieved on the same input.
	warmBalanceSlack = 0.02
)

// step is one epoch transition handed to a visit callback: the scratch
// hypergraph is what the generator built from scratch, delta is the wire
// transition from the previous epoch's scratch hypergraph, inherited the
// previous distribution over the new vertex set.
type step struct {
	epoch     int
	base      *hypergraph.Hypergraph
	scratch   *hypergraph.Hypergraph
	delta     *hypergraph.Delta
	inherited partition.Partition
}

// walk drives the named dynamic over the named dataset analogue and
// invokes visit once per epoch; visit returns the partition to feed back
// into the generator (what the application "ran with").
func walk(t *testing.T, ds, dynamic string, k int, seed int64, epochs int, init partition.Partition, h0 *hypergraph.Hypergraph, g *graph.Graph, visit func(step) partition.Partition) {
	t.Helper()
	var gen dynamics.Generator
	var err error
	switch dynamic {
	case "structure":
		gen, err = dynamics.NewStructural(g, init, k, 0.25, 0.5, seed*3+1)
	case "weights":
		gen, err = dynamics.NewRefinement(g, init, k, 0.1, 1.5, 7.5, seed*3+2)
	default:
		t.Fatalf("unknown dynamic %q", dynamic)
	}
	if err != nil {
		t.Fatal(err)
	}
	base := h0
	prevIDs := make([]int32, g.NumVertices())
	for i := range prevIDs {
		prevIDs[i] = int32(i)
	}
	for e := 1; e <= epochs; e++ {
		prob, old := gen.Next()
		var d *hypergraph.Delta
		var ok bool
		if st, isStruct := gen.(*dynamics.Structural); isStruct {
			curIDs := st.AliveMap()
			vmap := hypergraph.VertexMapFromIDs(prevIDs, curIDs)
			d, ok = hypergraph.ComputeDeltaMapped(base, prob.H, vmap)
			prevIDs = append(prevIDs[:0], curIDs...)
		} else {
			d, ok = hypergraph.ComputeDelta(base, prob.H)
		}
		if !ok {
			t.Fatalf("epoch %d: transition not delta-able", e)
		}
		computed := visit(step{epoch: e, base: base, scratch: prob.H, delta: d, inherited: old})
		if err := gen.Observe(computed); err != nil {
			t.Fatal(err)
		}
		base = prob.H
	}
}

// setup generates the dataset analogue and its epoch-0 cold partition.
func setup(t *testing.T, ds string, k int, seed int64, opt hgp.Options) (*graph.Graph, *hypergraph.Hypergraph, partition.Partition) {
	t.Helper()
	g, err := datasets.Generate(ds, diffN, seed)
	if err != nil {
		t.Fatal(err)
	}
	h := graph.ToHypergraph(g)
	init, err := hgp.Partition(h, opt)
	if err != nil {
		t.Fatal(err)
	}
	return g, h, init
}

// assertIdentical asserts fingerprint equality and byte-level text
// serialization equality between the delta-applied and scratch-built
// hypergraphs.
func assertIdentical(t *testing.T, e int, applied, scratch *hypergraph.Hypergraph) {
	t.Helper()
	if af, sf := applied.Fingerprint(), scratch.Fingerprint(); af != sf {
		t.Fatalf("epoch %d: applied fingerprint %s != scratch %s", e, af, sf)
	}
	var ab, sb bytes.Buffer
	if err := hypergraph.WriteText(&ab, applied); err != nil {
		t.Fatal(err)
	}
	if err := hypergraph.WriteText(&sb, scratch); err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(ab.Bytes(), sb.Bytes()) {
		t.Fatalf("epoch %d: applied and scratch hypergraphs serialize differently", e)
	}
	if err := applied.Validate(); err != nil {
		t.Fatalf("epoch %d: applied hypergraph invalid: %v", e, err)
	}
}

// TestDeltaApplyMatchesRebuild: for every dataset analogue and both
// dynamics, a chain of delta applications must reproduce each epoch's
// from-scratch hypergraph byte-identically — the delta wire format loses
// nothing, including across vertex churn and reappearance.
func TestDeltaApplyMatchesRebuild(t *testing.T) {
	for _, ds := range datasets.Names() {
		for _, dynamic := range []string{"weights", "structure"} {
			t.Run(ds+"_"+dynamic, func(t *testing.T) {
				const k = 4
				opt := hgp.Options{K: k, Seed: 41}
				g, h0, init := setup(t, ds, k, 41, opt)
				applied := h0
				walk(t, ds, dynamic, k, 41, diffEpochs, init, h0, g, func(s step) partition.Partition {
					next, err := s.delta.Apply(applied)
					if err != nil {
						t.Fatalf("epoch %d: apply: %v", s.epoch, err)
					}
					assertIdentical(t, s.epoch, next, s.scratch)
					applied = next
					return s.inherited
				})
			})
		}
	}
}

// TestWarmStartQuality: across every dataset analogue, both dynamics and
// k in {4,8}, the warm-started partition must satisfy the cold path's
// balance constraint (up to a small additive slack over what cold itself
// achieved) and keep the connectivity-1 cut within the fixed tolerance of
// the cold partitioner on the identical hypergraph.
func TestWarmStartQuality(t *testing.T) {
	for _, ds := range datasets.Names() {
		for _, dynamic := range []string{"weights", "structure"} {
			for _, k := range []int{4, 8} {
				t.Run(fmt.Sprintf("%s_%s_k%d", ds, dynamic, k), func(t *testing.T) {
					opt := hgp.Options{K: k, Seed: 43}
					g, h0, init := setup(t, ds, k, 43, opt)
					walk(t, ds, dynamic, k, 43, diffEpochs, init, h0, g, func(s step) partition.Partition {
						cold, err := hgp.Partition(s.scratch, opt)
						if err != nil {
							t.Fatalf("epoch %d: cold: %v", s.epoch, err)
						}
						dirty := s.delta.DirtyVertices(s.base, s.scratch)
						warm, stats, err := hgp.PartitionWarm(s.scratch, opt, hgp.WarmSpec{Parts: s.inherited.Parts, Dirty: dirty})
						if err != nil {
							t.Fatalf("epoch %d: warm: %v", s.epoch, err)
						}
						coldCut := partition.CutSize(s.scratch, cold)
						if limit := int64(float64(coldCut)*(1+warmCutSlack)) + warmCutFloor; stats.Cut > limit {
							t.Errorf("epoch %d (%s): warm cut %d exceeds cold %d beyond tolerance (limit %d)",
								s.epoch, stats.Mode, stats.Cut, coldCut, limit)
						}
						coldImb := partition.Imbalance(partition.Weights(s.scratch, cold))
						warmImb := partition.Imbalance(partition.Weights(s.scratch, warm))
						bound := opt.Imbalance
						if bound == 0 {
							bound = 0.05
						}
						if coldImb > bound {
							bound = coldImb
						}
						if warmImb > bound+warmBalanceSlack {
							t.Errorf("epoch %d (%s): warm imbalance %.4f exceeds bound %.4f (cold %.4f)",
								s.epoch, stats.Mode, warmImb, bound+warmBalanceSlack, coldImb)
						}
						// Drive the next epoch from the cold solution so
						// both paths always face the same inheritance.
						return cold
					})
				})
			}
		}
	}
}

// TestWarmParallelismInvariance: the full pipeline — initial cold
// partition, per-epoch deltas, dirty sets, warm repartitions, and a cold
// repartition of every epoch's hypergraph — must be byte-identical at
// every Parallelism setting, on every dataset analogue and both dynamics.
// This is the invariant the fingerprint-keyed partition cache serves
// results under, now carried by the deterministic kernel round structure
// rather than by the warm path being serial.
func TestWarmParallelismInvariance(t *testing.T) {
	for _, ds := range datasets.Names() {
		for _, dynamic := range []string{"weights", "structure"} {
			t.Run(ds+"_"+dynamic, func(t *testing.T) {
				const k = 4
				type epochOut struct{ warm, cold []int32 }
				var ref []epochOut
				for _, par := range []int{1, 2, 4, 8} {
					opt := hgp.Options{K: k, Seed: 47, Parallelism: par}
					g, h0, init := setup(t, ds, k, 47, opt)
					var got []epochOut
					walk(t, ds, dynamic, k, 47, diffEpochs, init, h0, g, func(s step) partition.Partition {
						cold, err := hgp.Partition(s.scratch, opt)
						if err != nil {
							t.Fatalf("epoch %d: cold: %v", s.epoch, err)
						}
						dirty := s.delta.DirtyVertices(s.base, s.scratch)
						warm, _, err := hgp.PartitionWarm(s.scratch, opt, hgp.WarmSpec{Parts: s.inherited.Parts, Dirty: dirty})
						if err != nil {
							t.Fatalf("epoch %d: warm: %v", s.epoch, err)
						}
						got = append(got, epochOut{
							warm: append([]int32(nil), warm.Parts...),
							cold: append([]int32(nil), cold.Parts...),
						})
						return warm
					})
					if ref == nil {
						ref = got
						continue
					}
					for e := range got {
						if !int32Equal(got[e].warm, ref[e].warm) {
							t.Errorf("parallelism %d epoch %d: warm partition differs from parallelism 1", par, e+1)
						}
						if !int32Equal(got[e].cold, ref[e].cold) {
							t.Errorf("parallelism %d epoch %d: cold partition differs from parallelism 1", par, e+1)
						}
					}
				}
			})
		}
	}
}

// TestWarmModesCovered: the harness must exercise the warm tiers — the
// refinement dynamic's small dirty sets the localized path, the
// structural dynamic's churn the cold escalation — otherwise the quality
// assertions above prove less than they claim. (The mid-drift V-cycle
// tier is covered deterministically by the hgp unit tests.)
func TestWarmModesCovered(t *testing.T) {
	modes := map[string]bool{}
	for _, dynamic := range []string{"weights", "structure"} {
		// k=8 keeps the refinement dynamic's dirty fraction (~1/k of the
		// vertices) under the escalation threshold; the structural
		// dynamic's churn exceeds it at any k.
		k := 8
		if dynamic == "structure" {
			k = 4
		}
		opt := hgp.Options{K: k, Seed: 53}
		g, h0, init := setup(t, "cage14", k, 53, opt)
		walk(t, "cage14", dynamic, k, 53, diffEpochs, init, h0, g, func(s step) partition.Partition {
			dirty := s.delta.DirtyVertices(s.base, s.scratch)
			warm, stats, err := hgp.PartitionWarm(s.scratch, opt, hgp.WarmSpec{Parts: s.inherited.Parts, Dirty: dirty})
			if err != nil {
				t.Fatalf("epoch %d: warm: %v", s.epoch, err)
			}
			modes[stats.Mode] = true
			return warm
		})
	}
	if !modes["localized"] {
		t.Error("no epoch took the localized warm path")
	}
	if !modes["cold"] {
		t.Error("no epoch took the cold escalation path")
	}
}

func int32Equal(a, b []int32) bool {
	if len(a) != len(b) {
		return false
	}
	for i := range a {
		if a[i] != b[i] {
			return false
		}
	}
	return true
}
