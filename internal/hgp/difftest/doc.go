// Package difftest is the differential equivalence harness for delta
// epochs and warm-started repartitioning: it drives both dynamic-workload
// generators over every dataset analogue and cross-checks the incremental
// path against the from-scratch path —
//
//   - a delta-applied hypergraph chain must stay byte-identical
//     (fingerprint and text serialization) to the hypergraphs the
//     generator builds from scratch, epoch after epoch;
//   - warm-started partitions must satisfy the cold path's balance
//     constraint and land within a fixed cut tolerance of the cold
//     partitioner on the same hypergraph;
//   - the warm pipeline must be byte-deterministic at any Parallelism.
//
// The package contains only tests; it exists so the whole harness can be
// invoked as one unit (go test ./internal/hgp/difftest/).
package difftest
