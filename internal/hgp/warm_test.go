package hgp

import (
	"math/rand"
	"testing"

	"hyperbal/internal/hypergraph"
	"hyperbal/internal/partition"
)

// warmSeed produces a cold partition plus a mildly perturbed hypergraph
// and the dirty set of the perturbation.
func warmSeed(t *testing.T, rng *rand.Rand, n int, k int) (*hypergraph.Hypergraph, partition.Partition, []bool) {
	t.Helper()
	h := randomHG(rng, n, n*3/2, 5)
	cold, err := Partition(h, Options{K: k, Imbalance: 0.05, Seed: 9})
	if err != nil {
		t.Fatal(err)
	}
	dirty := make([]bool, n)
	for i := 0; i < n/20+1; i++ {
		dirty[rng.Intn(n)] = true
	}
	return h, cold, dirty
}

func TestPartitionWarmLocalized(t *testing.T) {
	rng := rand.New(rand.NewSource(4))
	h, cold, dirty := warmSeed(t, rng, 300, 4)
	p, st, err := PartitionWarm(h, Options{K: 4, Imbalance: 0.05, Seed: 9}, WarmSpec{Parts: cold.Parts, Dirty: dirty})
	if err != nil {
		t.Fatal(err)
	}
	if st.Mode != "localized" {
		t.Fatalf("small dirty set should localize, got %q (frac %.3f)", st.Mode, st.DirtyFraction)
	}
	if err := p.Validate(); err != nil {
		t.Fatal(err)
	}
	w := partition.Weights(h, p)
	if !partition.IsBalanced(w, 0.05) {
		t.Fatalf("warm partition imbalanced: %v", w)
	}
	coldCut := partition.CutSize(h, cold)
	if st.Cut > coldCut {
		t.Fatalf("warm start on an unchanged hypergraph worsened the cut: %d > %d", st.Cut, coldCut)
	}
}

func TestPartitionWarmNilDirtyRunsCold(t *testing.T) {
	rng := rand.New(rand.NewSource(5))
	h, cold, _ := warmSeed(t, rng, 200, 4)
	p, st, err := PartitionWarm(h, Options{K: 4, Imbalance: 0.05, Seed: 9}, WarmSpec{Parts: cold.Parts})
	if err != nil {
		t.Fatal(err)
	}
	if st.Mode != "cold" {
		t.Fatalf("nil dirty set must run the cold partitioner, got %q", st.Mode)
	}
	if !partition.IsBalanced(partition.Weights(h, p), 0.05) {
		t.Fatal("warm-path cold partition imbalanced")
	}
	if st.Cut > partition.CutSize(h, cold) {
		t.Fatalf("warm-path cold run worsened the cut")
	}
}

// TestPartitionWarmMediumDriftVCycle: a dirty fraction between the
// localized and cold thresholds must take the seeded V-cycle.
func TestPartitionWarmMediumDriftVCycle(t *testing.T) {
	rng := rand.New(rand.NewSource(8))
	h, cold, _ := warmSeed(t, rng, 200, 4)
	dirty := make([]bool, 200)
	for v := 0; v < 80; v++ { // 40%: past localized, under cold
		dirty[v] = true
	}
	p, st, err := PartitionWarm(h, Options{K: 4, Imbalance: 0.05, Seed: 9}, WarmSpec{Parts: cold.Parts, Dirty: dirty})
	if err != nil {
		t.Fatal(err)
	}
	if st.Mode != "vcycle" {
		t.Fatalf("medium drift should take the seeded V-cycle, got %q", st.Mode)
	}
	if !partition.IsBalanced(partition.Weights(h, p), 0.05) {
		t.Fatal("warm V-cycle partition imbalanced")
	}
}

// TestPartitionWarmParallelismInvariant: the warm path runs the parallel
// repair/refinement kernels — assert the propose-resolve round structure
// keeps results byte-identical across Parallelism.
func TestPartitionWarmParallelismInvariant(t *testing.T) {
	rng := rand.New(rand.NewSource(6))
	h, cold, dirty := warmSeed(t, rng, 250, 8)
	var ref []int32
	for _, par := range []int{1, 2, 4, 7} {
		p, _, err := PartitionWarm(h, Options{K: 8, Imbalance: 0.05, Seed: 9, Parallelism: par}, WarmSpec{Parts: cold.Parts, Dirty: dirty})
		if err != nil {
			t.Fatal(err)
		}
		if ref == nil {
			ref = p.Parts
			continue
		}
		for v := range ref {
			if ref[v] != p.Parts[v] {
				t.Fatalf("Parallelism=%d diverges at vertex %d", par, v)
			}
		}
	}
}

func TestPartitionWarmHonorsFixed(t *testing.T) {
	rng := rand.New(rand.NewSource(7))
	h, cold, dirty := warmSeed(t, rng, 150, 4)
	fixed := make([]int32, h.NumVertices())
	for v := range fixed {
		fixed[v] = hypergraph.Free
	}
	fixed[3], fixed[70] = 2, 1
	hf := h.WithFixed(fixed)
	p, _, err := PartitionWarm(hf, Options{K: 4, Imbalance: 0.05, Seed: 9}, WarmSpec{Parts: cold.Parts, Dirty: dirty})
	if err != nil {
		t.Fatal(err)
	}
	if p.Parts[3] != 2 || p.Parts[70] != 1 {
		t.Fatalf("fixed vertices moved: got %d, %d", p.Parts[3], p.Parts[70])
	}
}

func TestPartitionWarmRejectsBadSpec(t *testing.T) {
	h := grid2D(4, 4)
	opt := Options{K: 2, Imbalance: 0.05}
	if _, _, err := PartitionWarm(h, opt, WarmSpec{Parts: make([]int32, 3)}); err == nil {
		t.Fatal("want length error")
	}
	bad := make([]int32, 16)
	bad[5] = 9
	if _, _, err := PartitionWarm(h, opt, WarmSpec{Parts: bad}); err == nil {
		t.Fatal("want range error")
	}
	if _, _, err := PartitionWarm(h, opt, WarmSpec{Parts: make([]int32, 16), Dirty: make([]bool, 2)}); err == nil {
		t.Fatal("want dirty length error")
	}
}
