package hgp

import (
	"math/rand"
	"slices"

	"hyperbal/internal/hypergraph"
)

// recursiveBisect partitions the vertex subset vs (global vertex ids) of
// the original hypergraph into parts [lo, hi), writing assignments into
// out. sub is the sub-hypergraph induced by vs (sub vertex i == global
// vertex vs[i]). Fixed labels on sub are original part ids; they are folded
// per Section 4.4 at each bisection.
//
// After a bisection the two sides are independent: the left recursion may
// run on a px worker while the right continues on the caller's goroutine.
// Each side receives an RNG seeded from the parent's stream in a fixed
// order (left first), and the sides write disjoint ranges of out, so the
// result does not depend on the interleaving.
func recursiveBisect(sub *hypergraph.Hypergraph, vs []int32, lo, hi int, out []int32, rng *rand.Rand, eps float64, fracs []float64, opt Options, px *parctx, ws *workspace) {
	k := hi - lo
	if k <= 1 || sub.NumVertices() == 0 {
		for _, v := range vs {
			out[v] = int32(lo)
		}
		return
	}
	kLeft := (k + 1) / 2
	mid := lo + kLeft
	// Side-0 target = its parts' share of the range's total target mass
	// (uniform 1/k parts when fracs is nil).
	frac0 := float64(kLeft) / float64(k)
	if fracs != nil {
		var left, all float64
		for p := lo; p < hi; p++ {
			all += fracs[p]
			if p < mid {
				left += fracs[p]
			}
		}
		if all > 0 {
			frac0 = left / all
		}
	}

	// Fold fixed labels: parts [lo,mid) -> side 0, [mid,hi) -> side 1.
	// The slice must stay untouched for the duration of bisect (the fixed
	// view aliases it), but is dead before the recursion reuses ws.
	ws.fixedSide = growI32(ws.fixedSide, sub.NumVertices())
	fixedSide := ws.fixedSide
	for v := range fixedSide {
		f := sub.Fixed(v)
		switch {
		case f == hypergraph.Free:
			fixedSide[v] = hypergraph.Free
		case int(f) < mid:
			fixedSide[v] = 0
		default:
			fixedSide[v] = 1
		}
	}

	sides := bisect(sub, rng, fixedSide, frac0, eps, opt, px, ws)

	if k == 2 {
		for i, v := range vs {
			out[v] = int32(lo + int(sides[i]))
		}
		return
	}
	left, leftVs := induce(sub, vs, sides, 0, ws)
	right, rightVs := induce(sub, vs, sides, 1, ws)
	seedL := rng.Int63()
	seedR := rng.Int63()
	join := px.fork(func(ws2 *workspace) {
		recursiveBisect(left, leftVs, lo, mid, out, rand.New(rand.NewSource(seedL)), eps, fracs, opt, px, ws2)
	})
	recursiveBisect(right, rightVs, mid, hi, out, rand.New(rand.NewSource(seedR)), eps, fracs, opt, px, ws)
	join()
}

// induce extracts the side sub-hypergraph: vertices of sub on the given
// side, nets restricted to pins on that side (nets reduced below two pins
// are dropped; they can no longer be cut within the side). Fixed labels
// (original part ids) carry over. The returned vertex list maps new sub
// indices to global ids. The CSR arrays are assembled directly; only the
// id-remap table is workspace scratch.
func induce(sub *hypergraph.Hypergraph, vs []int32, sides []int32, side int32, ws *workspace) (*hypergraph.Hypergraph, []int32) {
	ws.newID = growI32(ws.newID, sub.NumVertices())
	newID := ws.newID
	for i := range newID {
		newID[i] = -1
	}
	var keepVs []int32
	for v := 0; v < sub.NumVertices(); v++ {
		if sides[v] == side {
			newID[v] = int32(len(keepVs))
			keepVs = append(keepVs, vs[v])
		}
	}
	nKeep := len(keepVs)
	weights := make([]int64, nKeep)
	sizes := make([]int64, nKeep)
	var fixed []int32
	if sub.HasFixed() {
		fixed = make([]int32, nKeep)
		for i := range fixed {
			fixed[i] = hypergraph.Free
		}
	}
	hasFixed := false
	for v := 0; v < sub.NumVertices(); v++ {
		i := newID[v]
		if i < 0 {
			continue
		}
		weights[i] = sub.Weight(v)
		sizes[i] = sub.Size(v)
		if fixed != nil {
			if f := sub.Fixed(v); f != hypergraph.Free {
				fixed[i] = f
				hasFixed = true
			}
		}
	}
	if !hasFixed {
		fixed = nil
	}

	netStart := make([]int32, 1, sub.NumNets()+1)
	netPins := make([]int32, 0, sub.NumPins())
	var costs []int64
	for n := 0; n < sub.NumNets(); n++ {
		mark := len(netPins)
		for _, p := range sub.Pins(n) {
			if newID[p] >= 0 {
				netPins = append(netPins, newID[p])
			}
		}
		if len(netPins)-mark < 2 {
			netPins = netPins[:mark]
			continue
		}
		slices.Sort(netPins[mark:])
		netStart = append(netStart, int32(len(netPins)))
		costs = append(costs, sub.Cost(n))
	}
	return hypergraph.FromCSR(netStart, netPins, costs, weights, sizes, fixed), keepVs
}
