package hgp

import (
	"math/rand"
	"sort"

	"hyperbal/internal/hypergraph"
)

// recursiveBisect partitions the vertex subset vs (global vertex ids) of
// the original hypergraph into parts [lo, hi), writing assignments into
// out. sub is the sub-hypergraph induced by vs (sub vertex i == global
// vertex vs[i]). Fixed labels on sub are original part ids; they are folded
// per Section 4.4 at each bisection.
func recursiveBisect(sub *hypergraph.Hypergraph, vs []int32, lo, hi int, out []int32, rng *rand.Rand, eps float64, fracs []float64, opt Options) {
	k := hi - lo
	if k <= 1 || sub.NumVertices() == 0 {
		for _, v := range vs {
			out[v] = int32(lo)
		}
		return
	}
	kLeft := (k + 1) / 2
	mid := lo + kLeft
	// Side-0 target = its parts' share of the range's total target mass
	// (uniform 1/k parts when fracs is nil).
	frac0 := float64(kLeft) / float64(k)
	if fracs != nil {
		var left, all float64
		for p := lo; p < hi; p++ {
			all += fracs[p]
			if p < mid {
				left += fracs[p]
			}
		}
		if all > 0 {
			frac0 = left / all
		}
	}

	// Fold fixed labels: parts [lo,mid) -> side 0, [mid,hi) -> side 1.
	fixedSide := make([]int32, sub.NumVertices())
	for v := range fixedSide {
		f := sub.Fixed(v)
		switch {
		case f == hypergraph.Free:
			fixedSide[v] = hypergraph.Free
		case int(f) < mid:
			fixedSide[v] = 0
		default:
			fixedSide[v] = 1
		}
	}

	sides := bisect(sub, rng, fixedSide, frac0, eps, opt)

	if k == 2 {
		for i, v := range vs {
			out[v] = int32(lo + int(sides[i]))
		}
		return
	}
	left, leftVs := induce(sub, vs, sides, 0)
	right, rightVs := induce(sub, vs, sides, 1)
	recursiveBisect(left, leftVs, lo, mid, out, rng, eps, fracs, opt)
	recursiveBisect(right, rightVs, mid, hi, out, rng, eps, fracs, opt)
}

// induce extracts the side sub-hypergraph: vertices of sub on the given
// side, nets restricted to pins on that side (nets reduced below two pins
// are dropped; they can no longer be cut within the side). Fixed labels
// (original part ids) carry over. The returned vertex list maps new sub
// indices to global ids.
func induce(sub *hypergraph.Hypergraph, vs []int32, sides []int32, side int32) (*hypergraph.Hypergraph, []int32) {
	newID := make([]int32, sub.NumVertices())
	for i := range newID {
		newID[i] = -1
	}
	var keepVs []int32
	for v := 0; v < sub.NumVertices(); v++ {
		if sides[v] == side {
			newID[v] = int32(len(keepVs))
			keepVs = append(keepVs, vs[v])
		}
	}
	b := hypergraph.NewBuilder(len(keepVs))
	for v := 0; v < sub.NumVertices(); v++ {
		if newID[v] < 0 {
			continue
		}
		i := int(newID[v])
		b.SetWeight(i, sub.Weight(v))
		b.SetSize(i, sub.Size(v))
		if f := sub.Fixed(v); f != hypergraph.Free {
			b.Fix(i, int(f))
		}
	}
	pins := make([]int32, 0, 64)
	for n := 0; n < sub.NumNets(); n++ {
		pins = pins[:0]
		for _, p := range sub.Pins(n) {
			if newID[p] >= 0 {
				pins = append(pins, newID[p])
			}
		}
		if len(pins) >= 2 {
			sort.Slice(pins, func(i, j int) bool { return pins[i] < pins[j] })
			b.AddNetInt32(sub.Cost(n), pins) // builder copies the pin values

		}
	}
	return b.Build(), keepVs
}
