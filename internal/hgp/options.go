// Package hgp implements serial multilevel hypergraph partitioning with
// fixed vertices, following Section 4 of the paper: inner-product-matching
// (IPM) coarsening with a fixed-compatibility match filter, randomized
// greedy hypergraph growing for the coarse solution, Fiduccia–Mattheyses
// refinement with pass-pairs, and k-way partitioning via recursive
// bisection with fixed-label folding (Zoltan's approach) or a direct
// k-way driver.
package hgp

import (
	"math"
	"runtime"
)

// Options control the multilevel partitioner.
type Options struct {
	// K is the number of parts. Required, >= 1.
	K int
	// Imbalance is the allowed imbalance epsilon of Eq. 1 (e.g. 0.05).
	Imbalance float64
	// Seed makes runs deterministic.
	Seed int64
	// CoarsenTo stops coarsening when the hypergraph has at most this many
	// vertices (before the 2K floor). Default 100.
	CoarsenTo int
	// MinShrink aborts coarsening when a level shrinks the vertex count by
	// less than this fraction (paper: typically 10%). Default 0.10.
	MinShrink float64
	// InitialStarts is the number of randomized greedy-growing starts at the
	// coarsest level. Default 8.
	InitialStarts int
	// RefinePasses bounds FM pass-pairs per level. Default 4.
	RefinePasses int
	// MaxNetSize: nets larger than this are skipped during IPM scoring and
	// FM gain updates (they rarely influence local decisions and dominate
	// run time). Default 500. The cut metric always counts them.
	MaxNetSize int
	// DirectKway selects the direct k-way driver instead of recursive
	// bisection. Recursive bisection is the default (as in Zoltan).
	DirectKway bool
	// KwayFM selects the bucket/heap boundary FM for the k-way polish
	// passes instead of the greedy sweep (slower, sometimes better; the
	// A5 ablation).
	KwayFM bool
	// TargetFractions optionally sets non-uniform part sizes (heterogeneous
	// processors, as Zoltan's part-size interface allows): entry p is the
	// fraction of total vertex weight part p should receive. Must have
	// length K and sum to ~1. Nil means uniform 1/K parts (Eq. 1).
	TargetFractions []float64
	// DisableMatchFilter turns off the fixed-vertex compatibility filter in
	// coarsening (for the A1 ablation only; produces invalid partitions if
	// fixed vertices exist and the filter is off at coarse-solution time,
	// so fixed assignment is still enforced there).
	DisableMatchFilter bool
	// Parallelism bounds the worker goroutines of one Partition,
	// PartitionWithVCycles, or PartitionWarm call. One token pool serves
	// every layer: recursive-bisection sides, coarse multi-starts, and the
	// intra-level kernel shards (matching proposals, contraction
	// translation, refinement gain rounds, warm balance-repair scans), so
	// the call never runs more than Parallelism goroutines no matter how
	// the layers nest. Results are bit-identical for every value; 1 forces
	// fully serial execution.
	//
	// Two regimes resolve the default for <= 0:
	//   - Top-level calls (this package's exported entry points):
	//     withDefaults resolves <= 0 to runtime.GOMAXPROCS(0) — use the
	//     machine.
	//   - Rank-local calls inside an SPMD coarse solve (internal/phg):
	//     the driver pins unset Parallelism to 1 before calling down,
	//     because its ranks already occupy the machine — a GOMAXPROCS
	//     default per rank would oversubscribe it multiplicatively. The
	//     pin covers kernel shard workers too (they draw from the same
	//     pool); phg's hgp_coarse_solve_serialized_total counts the pins
	//     and hgp_kernel_worker_items_total staying flat proves no kernel
	//     worker escapes one. An explicit Parallelism > 1 is honored in
	//     both regimes.
	Parallelism int
}

// withDefaults fills unset fields.
func (o Options) withDefaults() Options {
	if o.K <= 0 {
		o.K = 1
	}
	if o.Imbalance <= 0 {
		o.Imbalance = 0.05
	}
	if o.CoarsenTo <= 0 {
		o.CoarsenTo = 100
	}
	if o.MinShrink <= 0 {
		o.MinShrink = 0.10
	}
	if o.InitialStarts <= 0 {
		o.InitialStarts = 8
	}
	if o.RefinePasses <= 0 {
		o.RefinePasses = 4
	}
	if o.MaxNetSize <= 0 {
		o.MaxNetSize = 500
	}
	if o.Parallelism <= 0 {
		o.Parallelism = runtime.GOMAXPROCS(0)
	}
	return o
}

// bisectionEps spreads the global imbalance budget over the levels of
// recursive bisection so the final k-way partition meets Eq. 1.
func bisectionEps(globalEps float64, k int) float64 {
	if k <= 2 {
		return globalEps
	}
	levels := math.Ceil(math.Log2(float64(k)))
	e := globalEps / levels
	if e < 0.01 {
		e = 0.01
	}
	return e
}
