package hgp

import (
	"hyperbal/internal/hypergraph"
)

// refineKwayFM is the bucket/heap variant of k-way refinement: a
// Fiduccia–Mattheyses-style pass over boundary vertices with hill
// climbing and best-prefix rollback, generalized from 2-way to k-way
// (each heap entry carries the vertex's current best destination). It is
// slower per pass than the greedy sweep in refineKway but escapes
// shallower local minima; Options.KwayFM selects it for the final polish
// (the A5 ablation measures the trade-off). Fixed vertices never move.
// Returns the final cut.
func refineKwayFM(h *hypergraph.Hypergraph, k int, parts []int32, caps []int64, maxPasses int, ws *workspace) int64 {
	n := h.NumVertices()
	s := ws.kwayState(h, k, parts)
	defer s.release()
	ws.kbuf = growI32(ws.kbuf, k)
	buf := ws.kbuf[:0]
	ws.kmark = growBool(ws.kmark, k)
	mark := ws.kmark
	ws.klocked = growBool(ws.klocked, n)
	locked := ws.klocked

	bestMove := func(v int) (int32, int64) {
		cands := s.AdjacentParts(v, buf, mark)
		var to int32 = -1
		var gain int64 = -1 << 62
		for _, q := range cands {
			if s.PartWeight(q)+h.Weight(v) > caps[q] {
				continue
			}
			if g := s.MoveGain(v, q); g > gain {
				gain = g
				to = q
			}
		}
		return to, gain
	}

	type appliedMove struct {
		v    int32
		from int32
	}

	gh := &ws.heap
	for pass := 0; pass < maxPasses; pass++ {
		gh.reset(n)
		inHeap := 0
		for v := 0; v < n; v++ {
			locked[v] = false
			if h.Fixed(v) != hypergraph.Free {
				continue
			}
			if to, gain := bestMove(v); to >= 0 {
				// encode destination implicitly: recompute at pop (state
				// changes invalidate it anyway); the heap orders by gain.
				gh.update(v, gain)
				inHeap++
			}
		}
		if inHeap == 0 {
			break
		}
		var moves []appliedMove
		var cum, best int64
		bestPrefix := 0
		sinceBest := 0
		limit := n/20 + 50

		for {
			e, ok := gh.popValid()
			if !ok {
				break
			}
			v := int(e.v)
			if locked[v] {
				continue
			}
			to, gain := bestMove(v) // fresh evaluation against current state
			if to < 0 {
				continue
			}
			from := s.PartOf(v)
			s.Move(v, to)
			locked[v] = true
			moves = append(moves, appliedMove{v: int32(v), from: from})
			cum += gain
			if cum > best {
				best = cum
				bestPrefix = len(moves)
				sinceBest = 0
			} else if sinceBest++; sinceBest > limit {
				break
			}
			// refresh unlocked neighbors
			for _, nn := range h.Nets(v) {
				pins := h.Pins(int(nn))
				if len(pins) > 500 {
					continue
				}
				for _, p := range pins {
					u := int(p)
					if !locked[u] && h.Fixed(u) == hypergraph.Free {
						if uto, ug := bestMove(u); uto >= 0 {
							gh.update(u, ug)
						} else {
							gh.invalidate(u)
						}
					}
				}
			}
		}
		// rollback past the best prefix
		for i := len(moves) - 1; i >= bestPrefix; i-- {
			s.Move(int(moves[i].v), moves[i].from)
		}
		obsKwayPasses.Inc()
		obsKwayMoves.Add(int64(bestPrefix))
		if best <= 0 {
			break
		}
	}
	return s.Cut()
}
