package hgp

import (
	"hyperbal/internal/hypergraph"
)

// refineKwayFM is the bucket/heap variant of k-way refinement: a
// Fiduccia–Mattheyses-style pass over boundary vertices with hill
// climbing and best-prefix rollback, generalized from 2-way to k-way
// (each heap entry carries the vertex's current best destination). It is
// slower per pass than the greedy sweep in refineKway but escapes
// shallower local minima; Options.KwayFM selects it for the final polish
// (the A5 ablation measures the trade-off). Fixed vertices never move.
//
// Parallelism: the per-pass seeding — one bestMove evaluation per vertex —
// dominates the pass on large levels and runs in parallel over index
// shards against the pass-start snapshot; the heap is then filled serially
// in vertex-index order from the precomputed gains, so its contents (and
// the whole pass) are bit-identical to the serial evaluation at every
// Parallelism value. The hill-climbing pop loop itself stays serial: each
// pop recomputes the move against the current state (attributed gains), so
// its result is exactly the reference schedule.
//
// Returns the final cut.
func refineKwayFM(h *hypergraph.Hypergraph, k int, parts []int32, caps []int64, maxPasses int, ws *workspace, px *parctx) int64 {
	n := h.NumVertices()
	s := ws.kwayState(h, k, parts)
	defer s.release()
	ws.kbuf = growI32(ws.kbuf, k)
	buf := ws.kbuf[:0]
	ws.kmark = growBool(ws.kmark, k)
	mark := ws.kmark
	ws.klocked = growBool(ws.klocked, n)
	locked := ws.klocked
	ws.kto = growI32(ws.kto, n)
	ws.kgain = growI64(ws.kgain, n)
	kto, kgain := ws.kto, ws.kgain
	shards := kernelShards(n)

	bestMove := func(v int) (int32, int64) {
		cands := s.AdjacentParts(v, buf, mark)
		var to int32 = -1
		var gain int64 = -1 << 62
		for _, q := range cands {
			if s.PartWeight(q)+h.Weight(v) > caps[q] {
				continue
			}
			if g := s.MoveGain(v, q); g > gain {
				gain = g
				to = q
			}
		}
		return to, gain
	}

	type appliedMove struct {
		v    int32
		from int32
	}

	gh := &ws.heap
	rounds := 0
	for pass := 0; pass < maxPasses; pass++ {
		rounds++
		gh.reset(n)
		px.forEach(shards, ws, func(i int, wws *workspace) {
			lo, hi := shardRange(n, shards, i)
			proposeFMRange(s, caps, kto, kgain, lo, hi, wws)
		})
		inHeap := 0
		for v := 0; v < n; v++ {
			locked[v] = false
			if kto[v] >= 0 {
				// destination stays implicit: recompute at pop (state
				// changes invalidate it anyway); the heap orders by gain.
				gh.update(v, kgain[v])
				inHeap++
			}
		}
		if inHeap == 0 {
			break
		}
		var moves []appliedMove
		var cum, best int64
		bestPrefix := 0
		sinceBest := 0
		limit := n/20 + 50

		for {
			e, ok := gh.popValid()
			if !ok {
				break
			}
			v := int(e.v)
			if locked[v] {
				continue
			}
			to, gain := bestMove(v) // fresh evaluation against current state
			if to < 0 {
				continue
			}
			from := s.PartOf(v)
			s.Move(v, to)
			locked[v] = true
			moves = append(moves, appliedMove{v: int32(v), from: from})
			cum += gain
			if cum > best {
				best = cum
				bestPrefix = len(moves)
				sinceBest = 0
			} else if sinceBest++; sinceBest > limit {
				break
			}
			// refresh unlocked neighbors
			for _, nn := range h.Nets(v) {
				pins := h.Pins(int(nn))
				if len(pins) > 500 {
					continue
				}
				for _, p := range pins {
					u := int(p)
					if !locked[u] && h.Fixed(u) == hypergraph.Free {
						if uto, ug := bestMove(u); uto >= 0 {
							gh.update(u, ug)
						} else {
							gh.invalidate(u)
						}
					}
				}
			}
		}
		// rollback past the best prefix
		for i := len(moves) - 1; i >= bestPrefix; i-- {
			s.Move(int(moves[i].v), moves[i].from)
		}
		obsKwayPasses.Inc()
		obsKwayMoves.Add(int64(bestPrefix))
		if best <= 0 {
			break
		}
	}
	obsKernelRounds.Add(int64(rounds))
	return s.Cut()
}

// proposeFMRange evaluates the pass-seeding bestMove of every free vertex
// in [lo, hi) against the pass-start snapshot: kto[v] gets the best
// feasible destination (-1 if none) and kgain[v] its snapshot gain. Reads
// only the refinement state, writes only its own index range.
func proposeFMRange(s *KwayState, caps []int64, kto []int32, kgain []int64, lo, hi int, ws *workspace) {
	h := s.h
	ws.kbuf = growI32(ws.kbuf, s.k)
	ws.kmark = growBool(ws.kmark, s.k)
	buf, mark := ws.kbuf[:0], ws.kmark
	for v := lo; v < hi; v++ {
		kto[v] = -1
		if h.Fixed(v) != hypergraph.Free {
			continue
		}
		cands := s.AdjacentParts(v, buf, mark)
		var to int32 = -1
		var gain int64 = -1 << 62
		for _, q := range cands {
			if s.PartWeight(q)+h.Weight(v) > caps[q] {
				continue
			}
			if g := s.MoveGain(v, q); g > gain {
				gain = g
				to = q
			}
		}
		kto[v] = to
		kgain[v] = gain
	}
}
