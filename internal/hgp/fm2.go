package hgp

import (
	"hyperbal/internal/hypergraph"
)

// fm2 refines a 2-way partition in place using the Fiduccia–Mattheyses
// heuristic with pass-pairs and prefix rollback (Section 4.3). Vertices
// with fixedSide != Free are never moved. parts must be a 0/1 assignment.
// It returns the final cut size.
func fm2(h *hypergraph.Hypergraph, parts []int32, fixedSide []int32, cap0, cap1 int64, maxPasses, maxNetSize int, ws *workspace) int64 {
	n := h.NumVertices()
	var s bisectState
	s.init(h, parts, cap0, cap1, maxNetSize, ws)
	bestCut := s.Cut()

	moved := growI32(ws.moved, n)[:0] // move order within a pass, for rollback
	ws.locked = growBool(ws.locked, n)
	locked := ws.locked
	gh := &ws.heap
	stash := ws.stash[:0]

	for pass := 0; pass < maxPasses; pass++ {
		gh.reset(n)
		for v := 0; v < n; v++ {
			locked[v] = false
			if fixedSide[v] == hypergraph.Free {
				gh.update(v, s.gain(v))
			}
		}
		moved = moved[:0]
		curCut := s.Cut()
		passStartCut := curCut
		bestPrefix := 0
		bestPrefixCut := curCut
		sinceBest := 0
		limit := n/20 + 50

		stash = stash[:0]
		for {
			e, ok := gh.popValid()
			if !ok {
				break
			}
			v := int(e.v)
			if locked[v] {
				continue
			}
			if !s.fits(v) {
				stash = append(stash, e)
				continue
			}
			// reinsert balance-skipped entries: the weights changed contexts
			for _, se := range stash {
				if !locked[se.v] {
					gh.update(int(se.v), se.gain)
				}
			}
			stash = stash[:0]

			g := s.gain(v) // exact gain (heap entry may be approximate for huge nets)
			s.Move(v)
			locked[v] = true
			moved = append(moved, int32(v))
			curCut -= g
			if curCut < bestPrefixCut {
				bestPrefixCut = curCut
				bestPrefix = len(moved)
				sinceBest = 0
			} else {
				sinceBest++
				if sinceBest > limit {
					break
				}
			}
			// refresh gains of unlocked neighbors
			for _, nn := range h.Nets(v) {
				pins := h.Pins(int(nn))
				if len(pins) > maxNetSize {
					continue
				}
				for _, p := range pins {
					u := int(p)
					if !locked[u] && fixedSide[u] == hypergraph.Free {
						gh.update(u, s.gain(u))
					}
				}
			}
		}
		// roll back to the best prefix
		for i := len(moved) - 1; i >= bestPrefix; i-- {
			s.Move(int(moved[i]))
		}
		obsFM2Passes.Inc()
		obsFM2Moves.Add(int64(bestPrefix))
		if bestPrefixCut >= passStartCut {
			break // no improvement this pass
		}
		bestCut = bestPrefixCut
	}
	_ = bestCut
	ws.moved = moved
	ws.stash = stash
	return s.Cut()
}
