package hgp

import (
	"math/rand"

	"hyperbal/internal/hypergraph"
)

// ghg2 computes a 2-way initial partition by randomized greedy hypergraph
// growing (Section 4.2) honoring fixed vertices: vertices fixed to side 0
// seed the growing side and vertices fixed to side 1 are never absorbed.
// target0 is the desired weight of side 0; cap0/cap1 bound the sides.
//
// fixedSide must map each vertex to 0, 1, or hypergraph.Free (side-folded
// labels, not original part ids). The returned partition is freshly
// allocated (multi-start keeps several alive at once); all other scratch
// lives in ws.
func ghg2(h *hypergraph.Hypergraph, rng *rand.Rand, fixedSide []int32, target0, cap0, cap1 int64, maxNetSize int, ws *workspace) []int32 {
	n := h.NumVertices()
	parts := make([]int32, n)
	for v := range parts {
		parts[v] = 1
	}
	for v, f := range fixedSide {
		if f == 0 {
			parts[v] = 0
		}
	}
	var s bisectState
	s.init(h, parts, cap0, cap1, maxNetSize, ws)

	gh := &ws.heap
	gh.reset(n)
	ws.inHeap = growBool(ws.inHeap, n)
	inHeap := ws.inHeap
	// dead marks vertices that can no longer fit side 0; since side 0 only
	// grows, a vertex that overfills once overfills forever.
	ws.dead = growBool(ws.dead, n)
	dead := ws.dead
	seed := func() bool {
		// find a random movable vertex on side 1 to restart growth
		start := rng.Intn(n)
		for i := 0; i < n; i++ {
			v := (start + i) % n
			if parts[v] == 1 && fixedSide[v] != 1 && !inHeap[v] && !dead[v] {
				gh.update(v, s.gain(v))
				inHeap[v] = true
				return true
			}
		}
		return false
	}
	// Seed with neighbors of side-0 fixed vertices first so growth starts
	// around them; otherwise from a random vertex.
	seeded := false
	for v := 0; v < n && !seeded; v++ {
		if parts[v] != 0 {
			continue
		}
		for _, nn := range h.Nets(v) {
			for _, p := range h.Pins(int(nn)) {
				u := int(p)
				if parts[u] == 1 && fixedSide[u] != 1 && !inHeap[u] {
					gh.update(u, s.gain(u))
					inHeap[u] = true
					seeded = true
				}
			}
			if seeded {
				break
			}
		}
	}
	if !seeded {
		seeded = seed()
	}

	for s.w[0] < target0 {
		e, ok := gh.popValid()
		if !ok {
			if !seed() {
				break // nothing left to grow
			}
			continue
		}
		v := int(e.v)
		inHeap[v] = false
		if parts[v] != 1 || fixedSide[v] == 1 {
			continue
		}
		if s.w[0]+h.Weight(v) > cap0 {
			dead[v] = true
			continue // would overfill side 0; try next best
		}
		s.Move(v)
		// enqueue/refresh neighbors on side 1
		for _, nn := range h.Nets(v) {
			pins := h.Pins(int(nn))
			if len(pins) > maxNetSize {
				continue
			}
			for _, p := range pins {
				u := int(p)
				if parts[u] == 1 && fixedSide[u] != 1 {
					gh.update(u, s.gain(u))
					inHeap[u] = true
				}
			}
		}
	}
	return parts
}
