package server

import (
	"hyperbal/internal/core"
	"hyperbal/internal/hypergraph"
)

// Wire types of the balancerd JSON API. The request/response bodies are
// plain JSON renderings of the core types: a hypergraph is its net list
// plus per-vertex weights/sizes, a configuration is core.Config with the
// method spelled by its paper name, a result is the partition plus the
// volumes of core.Result. The Go client in the root package and the
// server handlers share these so the two sides cannot drift.

// WireNet is one net: its communication cost and pin list (0-based vertex
// ids, no duplicates).
type WireNet struct {
	Cost int64   `json:"cost"`
	Pins []int32 `json:"pins"`
}

// WireHypergraph is the JSON form of a hypergraph. Weights, Sizes and
// Fixed may be omitted: absent weights/sizes default to 1 per vertex,
// absent fixed means all vertices free.
type WireHypergraph struct {
	NumVertices int       `json:"num_vertices"`
	Nets        []WireNet `json:"nets"`
	Weights     []int64   `json:"weights,omitempty"`
	Sizes       []int64   `json:"sizes,omitempty"`
	Fixed       []int32   `json:"fixed,omitempty"`
}

// EncodeHypergraph renders h in wire form. Every slice is a copy — pin
// lists included, backed by one shared allocation — so a caller mutating
// the result cannot corrupt a live session's base hypergraph (the pins
// used to alias h's CSR storage; see TestEncodeHypergraphDoesNotAlias).
func EncodeHypergraph(h *hypergraph.Hypergraph) WireHypergraph {
	w := WireHypergraph{
		NumVertices: h.NumVertices(),
		Nets:        make([]WireNet, h.NumNets()),
		Weights:     make([]int64, h.NumVertices()),
		Sizes:       make([]int64, h.NumVertices()),
	}
	backing := make([]int32, 0, h.NumPins())
	for n := 0; n < h.NumNets(); n++ {
		start := len(backing)
		backing = append(backing, h.Pins(n)...)
		w.Nets[n] = WireNet{Cost: h.Cost(n), Pins: backing[start:len(backing):len(backing)]}
	}
	for v := 0; v < h.NumVertices(); v++ {
		w.Weights[v] = h.Weight(v)
		w.Sizes[v] = h.Size(v)
	}
	if h.HasFixed() {
		w.Fixed = make([]int32, h.NumVertices())
		for v := range w.Fixed {
			w.Fixed[v] = h.Fixed(v)
		}
	}
	return w
}

// Decode validates the wire hypergraph and builds the in-memory form.
func (w WireHypergraph) Decode() (*hypergraph.Hypergraph, error) {
	h, _, err := w.DecodeFingerprint()
	return h, err
}

// DecodeFingerprint is Decode returning the content fingerprint alongside
// — computed once while building, so handlers never re-hash a hypergraph
// they just decoded. Validation and construction are shared with the
// binary codec (hypergraph.BuildFromWire), so the two codecs accept and
// reject exactly the same hypergraphs.
func (w WireHypergraph) DecodeFingerprint() (*hypergraph.Hypergraph, string, error) {
	total := 0
	for _, net := range w.Nets {
		total += len(net.Pins)
	}
	costs := make([]int64, len(w.Nets))
	netSizes := make([]int32, len(w.Nets))
	pins := make([]int32, 0, total)
	for n, net := range w.Nets {
		costs[n] = net.Cost
		netSizes[n] = int32(len(net.Pins))
		pins = append(pins, net.Pins...)
	}
	var weights, sizes []int64
	var fixed []int32
	if len(w.Weights) != 0 {
		weights = append([]int64(nil), w.Weights...)
	}
	if len(w.Sizes) != 0 {
		sizes = append([]int64(nil), w.Sizes...)
	}
	if len(w.Fixed) != 0 {
		fixed = append([]int32(nil), w.Fixed...)
	}
	return hypergraph.BuildFromWire(w.NumVertices, costs, netSizes, pins, weights, sizes, fixed)
}

// WireConfig is the JSON form of core.Config; Method uses the paper name
// ("Zoltan-repart" by default).
type WireConfig struct {
	K             int     `json:"k"`
	Alpha         int64   `json:"alpha,omitempty"`
	Imbalance     float64 `json:"imbalance,omitempty"`
	Seed          int64   `json:"seed,omitempty"`
	Method        string  `json:"method,omitempty"`
	MaxClique     int     `json:"max_clique,omitempty"`
	CoarsenTo     int     `json:"coarsen_to,omitempty"`
	InitialStarts int     `json:"initial_starts,omitempty"`
	RefinePasses  int     `json:"refine_passes,omitempty"`
	Parallelism   int     `json:"parallelism,omitempty"`
}

// ToCore resolves the wire configuration into a core.Config.
func (w WireConfig) ToCore() (core.Config, error) {
	cfg := core.Config{
		K:             w.K,
		Alpha:         w.Alpha,
		Imbalance:     w.Imbalance,
		Seed:          w.Seed,
		MaxClique:     w.MaxClique,
		CoarsenTo:     w.CoarsenTo,
		InitialStarts: w.InitialStarts,
		RefinePasses:  w.RefinePasses,
		Parallelism:   w.Parallelism,
	}
	if w.Method != "" {
		m, err := core.ParseMethod(w.Method)
		if err != nil {
			return cfg, err
		}
		cfg.Method = m
	}
	return cfg, nil
}

// WireConfigFrom renders a core.Config in wire form.
func WireConfigFrom(cfg core.Config) WireConfig {
	return WireConfig{
		K:             cfg.K,
		Alpha:         cfg.Alpha,
		Imbalance:     cfg.Imbalance,
		Seed:          cfg.Seed,
		Method:        cfg.Method.String(),
		MaxClique:     cfg.MaxClique,
		CoarsenTo:     cfg.CoarsenTo,
		InitialStarts: cfg.InitialStarts,
		RefinePasses:  cfg.RefinePasses,
		Parallelism:   cfg.Parallelism,
	}
}

// CreateSessionRequest is the body of POST /v1/sessions.
type CreateSessionRequest struct {
	Config     WireConfig     `json:"config"`
	Hypergraph WireHypergraph `json:"hypergraph"`
}

// EpochRequest is the body of POST /v1/sessions/{id}/epochs: the epoch's
// drifted hypergraph, plus the inherited assignment when the vertex set
// changed. Epoch, when positive, is the expected epoch number of this
// submission (current+1); a mismatch is rejected with 409 so a retried
// submission cannot advance a session twice. OnlyIfUnbalanced asks the
// server to first evaluate the session's rebalance trigger and return the
// unchanged distribution (rebalanced=false) if the drift is still within
// threshold.
type EpochRequest struct {
	Hypergraph       WireHypergraph `json:"hypergraph"`
	Inherited        []int32        `json:"inherited,omitempty"`
	Epoch            int64          `json:"epoch,omitempty"`
	OnlyIfUnbalanced bool           `json:"only_if_unbalanced,omitempty"`
}

// DeltaEpochRequest is the body of PATCH /v1/sessions/{id}/epochs: the
// epoch's hypergraph expressed as a delta against the session's last
// accepted hypergraph (Delta.Base must equal that fingerprint — a
// mismatch is rejected with 409 code "fingerprint_mismatch" carrying the
// server's base fingerprint, the client's signal to resubmit as a full
// epoch). Inherited is optional for structural deltas: when absent the
// server derives it from the delta's vertex map (mapped vertices keep
// their parts, new vertices go to the lightest part). Warm asks for a
// warm-started repartition restricted to the delta's dirty region.
type DeltaEpochRequest struct {
	Delta     hypergraph.Delta `json:"delta"`
	Inherited []int32          `json:"inherited,omitempty"`
	Epoch     int64            `json:"epoch,omitempty"`
	Warm      bool             `json:"warm,omitempty"`
}

// WireResult is one load-balance operation in wire form.
type WireResult struct {
	Epoch           int64   `json:"epoch"`
	K               int     `json:"k"`
	Parts           []int32 `json:"parts"`
	CommVolume      int64   `json:"comm_volume"`
	MigrationVolume int64   `json:"migration_volume"`
	Moved           int     `json:"moved"`
	RepartMs        float64 `json:"repart_ms"`
	// Cached reports that the partition was served from the
	// fingerprint-keyed result cache without running the partitioner.
	Cached bool `json:"cached,omitempty"`
	// Rebalanced is false only for only_if_unbalanced submissions whose
	// drift was still within threshold (the epoch did not advance).
	Rebalanced bool `json:"rebalanced"`
	// Warm reports that the partitioner was warm-started from the previous
	// distribution (delta epochs with warm=true).
	Warm bool `json:"warm,omitempty"`
}

// SessionResponse is the body of POST /v1/sessions and of
// POST /v1/sessions/{id}/epochs.
type SessionResponse struct {
	SessionID string     `json:"session_id"`
	Result    WireResult `json:"result"`
}

// MigrationSummary condenses a migrate.Plan for the wire.
type MigrationSummary struct {
	Moves       int       `json:"moves"`
	TotalVolume int64     `json:"total_volume"`
	MaxOutbound int64     `json:"max_outbound"`
	MaxInbound  int64     `json:"max_inbound"`
	Volume      [][]int64 `json:"volume,omitempty"`
}

// PartitionResponse is the body of GET /v1/sessions/{id}/partition: the
// current distribution plus the migration plan of the latest epoch (nil
// before the first rebalance).
type PartitionResponse struct {
	SessionID string            `json:"session_id"`
	Epoch     int64             `json:"epoch"`
	K         int               `json:"k"`
	Parts     []int32           `json:"parts"`
	Migration *MigrationSummary `json:"migration,omitempty"`
}

// SessionInfo is the body of GET /v1/sessions/{id}.
type SessionInfo struct {
	SessionID  string     `json:"session_id"`
	Config     WireConfig `json:"config"`
	Epoch      int64      `json:"epoch"`
	HistoryLen int        `json:"history_len"`
	TotalCost  int64      `json:"total_cost"`
	Last       WireResult `json:"last"`
}

// ErrorResponse is the body of every non-2xx response. Code is a stable
// machine-readable discriminator: bad_request, not_found, epoch_conflict,
// fingerprint_mismatch, busy, draining, internal.
type ErrorResponse struct {
	Error string `json:"error"`
	Code  string `json:"code,omitempty"`
	// Epoch carries the session's current epoch on epoch_conflict so the
	// client can reconcile a retried submission.
	Epoch int64 `json:"epoch,omitempty"`
	// Base carries the session's current base fingerprint on
	// fingerprint_mismatch so the client can resubmit a full epoch (or a
	// delta against the right base).
	Base string `json:"base,omitempty"`
}
