package server

import (
	"encoding/binary"
	"fmt"
	"math"
	"time"

	"hyperbal/internal/core"
	"hyperbal/internal/hypergraph"
	"hyperbal/internal/partition"
)

// Binary wire protocol of the balancerd API: the same messages as the JSON
// wire types, framed as `magic "HBW" + version + message type` followed by
// varint-packed fields, with hypergraph and delta payloads embedded as
// internal/hypergraph binary frames. Content negotiation selects it: a
// request with Content-Type application/x-hyperbal is decoded binary, a
// request with that media type in Accept is answered binary. Error
// responses are always JSON (they are tiny, and a client that negotiated
// binary still needs errors it can decode before trusting the frame
// layer).
//
// Both codecs funnel hypergraphs through hypergraph.BuildFromWire, so a
// hypergraph accepted over one codec is accepted — with an identical
// fingerprint — over the other. See DESIGN.md §12 for the frame layout.

// ContentTypeBinary is the media type of the binary wire protocol.
const ContentTypeBinary = "application/x-hyperbal"

// binMagic prefixes every binary message; the fourth byte is the protocol
// version.
var binMagic = [4]byte{'H', 'B', 'W', 1}

// Message type discriminators (fifth header byte).
const (
	binMsgCreate byte = iota + 1
	binMsgEpoch
	binMsgDelta
	binMsgSessionResponse
	binMsgPartitionResponse
	binMsgSessionInfo
	// Replica-to-replica messages of the distributed serving tier: a
	// peer-cache lookup answer (GET /internal/cache/{key}) and a drain-time
	// session-state handoff (POST /internal/handoff).
	binMsgCacheResult
	binMsgHandoff
)

// Result frame flags.
const (
	binResCached byte = 1 << iota
	binResRebalanced
	binResWarm
)

// Epoch / delta request flags.
const (
	binReqOnlyIfUnbalanced byte = 1 << iota
	binReqWarm
)

func appendBinHeader(buf []byte, msgType byte) []byte {
	buf = append(buf, binMagic[:]...)
	return append(buf, msgType)
}

func readBinHeader(r *hypergraph.BinReader, want byte) error {
	hdr, err := r.Bytes(5)
	if err != nil {
		return fmt.Errorf("%w: missing message header", hypergraph.ErrTruncated)
	}
	if hdr[0] != binMagic[0] || hdr[1] != binMagic[1] || hdr[2] != binMagic[2] {
		return fmt.Errorf("%w: bad magic %q", hypergraph.ErrMalformed, hdr[:3])
	}
	if hdr[3] != binMagic[3] {
		return fmt.Errorf("%w: protocol version %d (want %d)", hypergraph.ErrMalformed, hdr[3], binMagic[3])
	}
	if hdr[4] != want {
		return fmt.Errorf("%w: message type %d (want %d)", hypergraph.ErrMalformed, hdr[4], want)
	}
	return nil
}

func binDone(r *hypergraph.BinReader) error {
	if r.Rem() != 0 {
		return fmt.Errorf("%w: %d trailing bytes", hypergraph.ErrMalformed, r.Rem())
	}
	return nil
}

func appendString(buf []byte, s string) []byte {
	buf = binary.AppendUvarint(buf, uint64(len(s)))
	return append(buf, s...)
}

func readString(r *hypergraph.BinReader, limit int) (string, error) {
	n, err := r.Count(limit)
	if err != nil {
		return "", err
	}
	b, err := r.Bytes(n)
	if err != nil {
		return "", err
	}
	return string(b), nil
}

func appendFloat64(buf []byte, f float64) []byte {
	var b [8]byte
	binary.LittleEndian.PutUint64(b[:], math.Float64bits(f))
	return append(buf, b[:]...)
}

func readFloat64(r *hypergraph.BinReader) (float64, error) {
	b, err := r.Bytes(8)
	if err != nil {
		return 0, err
	}
	return math.Float64frombits(binary.LittleEndian.Uint64(b)), nil
}

func appendWireConfig(buf []byte, cfg WireConfig) []byte {
	buf = binary.AppendVarint(buf, int64(cfg.K))
	buf = binary.AppendVarint(buf, cfg.Alpha)
	buf = appendFloat64(buf, cfg.Imbalance)
	buf = binary.AppendVarint(buf, cfg.Seed)
	buf = appendString(buf, cfg.Method)
	buf = binary.AppendVarint(buf, int64(cfg.MaxClique))
	buf = binary.AppendVarint(buf, int64(cfg.CoarsenTo))
	buf = binary.AppendVarint(buf, int64(cfg.InitialStarts))
	buf = binary.AppendVarint(buf, int64(cfg.RefinePasses))
	buf = binary.AppendVarint(buf, int64(cfg.Parallelism))
	return buf
}

func readWireConfig(r *hypergraph.BinReader) (WireConfig, error) {
	var cfg WireConfig
	read := func(dst *int) error {
		v, err := r.Varint()
		if err != nil {
			return err
		}
		if v < math.MinInt32 || v > math.MaxInt32 {
			return fmt.Errorf("%w: config field %d out of range", hypergraph.ErrMalformed, v)
		}
		*dst = int(v)
		return nil
	}
	var err error
	if err = read(&cfg.K); err != nil {
		return cfg, err
	}
	if cfg.Alpha, err = r.Varint(); err != nil {
		return cfg, err
	}
	if cfg.Imbalance, err = readFloat64(r); err != nil {
		return cfg, err
	}
	if cfg.Seed, err = r.Varint(); err != nil {
		return cfg, err
	}
	if cfg.Method, err = readString(r, 128); err != nil {
		return cfg, err
	}
	if err = read(&cfg.MaxClique); err != nil {
		return cfg, err
	}
	if err = read(&cfg.CoarsenTo); err != nil {
		return cfg, err
	}
	if err = read(&cfg.InitialStarts); err != nil {
		return cfg, err
	}
	if err = read(&cfg.RefinePasses); err != nil {
		return cfg, err
	}
	if err = read(&cfg.Parallelism); err != nil {
		return cfg, err
	}
	return cfg, nil
}

func appendWireResult(buf []byte, res WireResult) []byte {
	buf = binary.AppendVarint(buf, res.Epoch)
	buf = binary.AppendVarint(buf, int64(res.K))
	buf = hypergraph.AppendInt32s(buf, res.Parts)
	buf = binary.AppendVarint(buf, res.CommVolume)
	buf = binary.AppendVarint(buf, res.MigrationVolume)
	buf = binary.AppendVarint(buf, int64(res.Moved))
	buf = appendFloat64(buf, res.RepartMs)
	var flags byte
	if res.Cached {
		flags |= binResCached
	}
	if res.Rebalanced {
		flags |= binResRebalanced
	}
	if res.Warm {
		flags |= binResWarm
	}
	return append(buf, flags)
}

func readWireResult(r *hypergraph.BinReader) (WireResult, error) {
	var res WireResult
	var err error
	if res.Epoch, err = r.Varint(); err != nil {
		return res, err
	}
	k, err := r.Varint()
	if err != nil {
		return res, err
	}
	res.K = int(k)
	if res.Parts, err = hypergraph.DecodeInt32s(r, hypergraph.MaxWireVertices); err != nil {
		return res, err
	}
	if len(res.Parts) == 0 {
		res.Parts = nil
	}
	if res.CommVolume, err = r.Varint(); err != nil {
		return res, err
	}
	if res.MigrationVolume, err = r.Varint(); err != nil {
		return res, err
	}
	moved, err := r.Varint()
	if err != nil {
		return res, err
	}
	res.Moved = int(moved)
	if res.RepartMs, err = readFloat64(r); err != nil {
		return res, err
	}
	flags, err := r.Byte()
	if err != nil {
		return res, err
	}
	res.Cached = flags&binResCached != 0
	res.Rebalanced = flags&binResRebalanced != 0
	res.Warm = flags&binResWarm != 0
	return res, nil
}

// AppendCreateRequestBinary renders POST /v1/sessions in binary form,
// encoding the hypergraph straight from its CSR storage (no WireHypergraph
// intermediate).
func AppendCreateRequestBinary(buf []byte, cfg WireConfig, h *hypergraph.Hypergraph) []byte {
	buf = appendBinHeader(buf, binMsgCreate)
	buf = appendWireConfig(buf, cfg)
	return h.AppendBinary(buf)
}

func decodeCreateRequestBinary(data []byte) (WireConfig, *hypergraph.Hypergraph, string, error) {
	r := hypergraph.NewBinReader(data)
	if err := readBinHeader(r, binMsgCreate); err != nil {
		return WireConfig{}, nil, "", err
	}
	cfg, err := readWireConfig(r)
	if err != nil {
		return cfg, nil, "", err
	}
	h, fp, err := hypergraph.DecodeBinary(r)
	if err != nil {
		return cfg, nil, "", err
	}
	return cfg, h, fp, binDone(r)
}

// AppendEpochRequestBinary renders POST /v1/sessions/{id}/epochs in binary
// form.
func AppendEpochRequestBinary(buf []byte, h *hypergraph.Hypergraph, inherited []int32, epoch int64, onlyIfUnbalanced bool) []byte {
	buf = appendBinHeader(buf, binMsgEpoch)
	buf = h.AppendBinary(buf)
	buf = hypergraph.AppendInt32s(buf, inherited)
	buf = binary.AppendVarint(buf, epoch)
	var flags byte
	if onlyIfUnbalanced {
		flags |= binReqOnlyIfUnbalanced
	}
	return append(buf, flags)
}

// binEpochRequest is the decoded binary epoch submission; FP is the
// hypergraph fingerprint computed during decode.
type binEpochRequest struct {
	H                *hypergraph.Hypergraph
	FP               string
	Inherited        []int32
	Epoch            int64
	OnlyIfUnbalanced bool
}

func decodeEpochRequestBinary(data []byte) (*binEpochRequest, error) {
	r := hypergraph.NewBinReader(data)
	if err := readBinHeader(r, binMsgEpoch); err != nil {
		return nil, err
	}
	req := &binEpochRequest{}
	var err error
	if req.H, req.FP, err = hypergraph.DecodeBinary(r); err != nil {
		return nil, err
	}
	if req.Inherited, err = hypergraph.DecodeInt32s(r, hypergraph.MaxWireVertices); err != nil {
		return nil, err
	}
	if len(req.Inherited) == 0 {
		req.Inherited = nil
	}
	if req.Epoch, err = r.Varint(); err != nil {
		return nil, err
	}
	flags, err := r.Byte()
	if err != nil {
		return nil, err
	}
	req.OnlyIfUnbalanced = flags&binReqOnlyIfUnbalanced != 0
	return req, binDone(r)
}

// AppendDeltaRequestBinary renders PATCH /v1/sessions/{id}/epochs in
// binary form.
func AppendDeltaRequestBinary(buf []byte, d *hypergraph.Delta, inherited []int32, epoch int64, warm bool) []byte {
	buf = appendBinHeader(buf, binMsgDelta)
	buf = d.AppendBinary(buf)
	buf = hypergraph.AppendInt32s(buf, inherited)
	buf = binary.AppendVarint(buf, epoch)
	var flags byte
	if warm {
		flags |= binReqWarm
	}
	return append(buf, flags)
}

type binDeltaRequest struct {
	Delta     *hypergraph.Delta
	Inherited []int32
	Epoch     int64
	Warm      bool
}

func decodeDeltaRequestBinary(data []byte) (*binDeltaRequest, error) {
	r := hypergraph.NewBinReader(data)
	if err := readBinHeader(r, binMsgDelta); err != nil {
		return nil, err
	}
	req := &binDeltaRequest{}
	var err error
	if req.Delta, err = hypergraph.DecodeDeltaBinary(r); err != nil {
		return nil, err
	}
	if req.Inherited, err = hypergraph.DecodeInt32s(r, hypergraph.MaxWireVertices); err != nil {
		return nil, err
	}
	if len(req.Inherited) == 0 {
		req.Inherited = nil
	}
	if req.Epoch, err = r.Varint(); err != nil {
		return nil, err
	}
	flags, err := r.Byte()
	if err != nil {
		return nil, err
	}
	req.Warm = flags&binReqWarm != 0
	return req, binDone(r)
}

// appendCacheResultBinary renders a peer-cache lookup answer: the cached
// repartition result for one cache key, enough for the asking replica to
// adopt it as if it had solved locally (parallelism invariance makes the
// adoption byte-identical).
func appendCacheResultBinary(buf []byte, res core.Result) []byte {
	buf = appendBinHeader(buf, binMsgCacheResult)
	buf = hypergraph.AppendInt32s(buf, res.Partition.Parts)
	buf = binary.AppendVarint(buf, int64(res.Partition.K))
	buf = binary.AppendVarint(buf, res.CommVolume)
	buf = binary.AppendVarint(buf, res.MigrationVolume)
	buf = binary.AppendVarint(buf, int64(res.Moved))
	// Provenance travels with the entry: the adopter republishes it into
	// its own cache, and later responses report the owner's warm-start flag
	// and solve time, not a zeroed one.
	buf = binary.AppendVarint(buf, int64(res.RepartTime))
	var flags byte
	if res.Warm {
		flags |= binResWarm
	}
	return append(buf, flags)
}

func decodeCacheResultBinary(data []byte) (core.Result, error) {
	var res core.Result
	r := hypergraph.NewBinReader(data)
	if err := readBinHeader(r, binMsgCacheResult); err != nil {
		return res, err
	}
	parts, err := hypergraph.DecodeInt32s(r, hypergraph.MaxWireVertices)
	if err != nil {
		return res, err
	}
	k, err := r.Varint()
	if err != nil {
		return res, err
	}
	res.Partition = partition.Partition{Parts: parts, K: int(k)}
	if res.CommVolume, err = r.Varint(); err != nil {
		return res, err
	}
	if res.MigrationVolume, err = r.Varint(); err != nil {
		return res, err
	}
	moved, err := r.Varint()
	if err != nil {
		return res, err
	}
	res.Moved = int(moved)
	ns, err := r.Varint()
	if err != nil {
		return res, err
	}
	res.RepartTime = time.Duration(ns)
	flags, err := r.Byte()
	if err != nil {
		return res, err
	}
	res.Warm = flags&binResWarm != 0
	return res, binDone(r)
}

// handoffState is one serialized session crossing replicas at drain time:
// everything a successor needs to continue the epoch sequence
// byte-identically — the effective config, the epoch counter, the last
// result (its partition is the current distribution), the latest migration
// summary, and the base hypergraph the next delta applies against (its
// fingerprint is recomputed during decode, so it cannot drift in transit).
type handoffState struct {
	ID     string
	Config WireConfig
	Epoch  int64
	Last   WireResult
	Mig    *MigrationSummary
	H      *hypergraph.Hypergraph
	FP     string
}

// appendHandoffBinary renders POST /internal/handoff.
func appendHandoffBinary(buf []byte, st handoffState) []byte {
	buf = appendBinHeader(buf, binMsgHandoff)
	buf = appendString(buf, st.ID)
	buf = appendWireConfig(buf, st.Config)
	buf = binary.AppendVarint(buf, st.Epoch)
	buf = appendWireResult(buf, st.Last)
	buf = appendMigrationSummary(buf, st.Mig)
	return st.H.AppendBinary(buf)
}

func decodeHandoffBinary(data []byte) (handoffState, error) {
	var st handoffState
	r := hypergraph.NewBinReader(data)
	if err := readBinHeader(r, binMsgHandoff); err != nil {
		return st, err
	}
	var err error
	if st.ID, err = readString(r, 256); err != nil {
		return st, err
	}
	if st.Config, err = readWireConfig(r); err != nil {
		return st, err
	}
	if st.Epoch, err = r.Varint(); err != nil {
		return st, err
	}
	if st.Last, err = readWireResult(r); err != nil {
		return st, err
	}
	if st.Mig, err = readMigrationSummary(r); err != nil {
		return st, err
	}
	if st.H, st.FP, err = hypergraph.DecodeBinary(r); err != nil {
		return st, err
	}
	return st, binDone(r)
}

// appendSessionResponseBinary renders a SessionResponse.
func appendSessionResponseBinary(buf []byte, resp SessionResponse) []byte {
	buf = appendBinHeader(buf, binMsgSessionResponse)
	buf = appendString(buf, resp.SessionID)
	return appendWireResult(buf, resp.Result)
}

// DecodeSessionResponseBinary parses a binary SessionResponse (the client
// side of appendSessionResponseBinary).
func DecodeSessionResponseBinary(data []byte) (SessionResponse, error) {
	var resp SessionResponse
	r := hypergraph.NewBinReader(data)
	if err := readBinHeader(r, binMsgSessionResponse); err != nil {
		return resp, err
	}
	var err error
	if resp.SessionID, err = readString(r, 256); err != nil {
		return resp, err
	}
	if resp.Result, err = readWireResult(r); err != nil {
		return resp, err
	}
	return resp, binDone(r)
}

func appendMigrationSummary(buf []byte, m *MigrationSummary) []byte {
	if m == nil {
		return append(buf, 0)
	}
	buf = append(buf, 1)
	buf = binary.AppendVarint(buf, int64(m.Moves))
	buf = binary.AppendVarint(buf, m.TotalVolume)
	buf = binary.AppendVarint(buf, m.MaxOutbound)
	buf = binary.AppendVarint(buf, m.MaxInbound)
	buf = binary.AppendUvarint(buf, uint64(len(m.Volume)))
	for _, row := range m.Volume {
		buf = hypergraph.AppendInt64s(buf, row)
	}
	return buf
}

func readMigrationSummary(r *hypergraph.BinReader) (*MigrationSummary, error) {
	present, err := r.Byte()
	if err != nil {
		return nil, err
	}
	if present == 0 {
		return nil, nil
	}
	if present != 1 {
		return nil, fmt.Errorf("%w: migration presence byte %d", hypergraph.ErrMalformed, present)
	}
	m := &MigrationSummary{}
	moves, err := r.Varint()
	if err != nil {
		return nil, err
	}
	m.Moves = int(moves)
	if m.TotalVolume, err = r.Varint(); err != nil {
		return nil, err
	}
	if m.MaxOutbound, err = r.Varint(); err != nil {
		return nil, err
	}
	if m.MaxInbound, err = r.Varint(); err != nil {
		return nil, err
	}
	rows, err := r.Count(1 << 16)
	if err != nil {
		return nil, err
	}
	if rows > 0 {
		m.Volume = make([][]int64, rows)
		for i := range m.Volume {
			row, err := r.Count(1 << 16)
			if err != nil {
				return nil, err
			}
			m.Volume[i] = make([]int64, row)
			for j := range m.Volume[i] {
				if m.Volume[i][j], err = r.Varint(); err != nil {
					return nil, err
				}
			}
		}
	}
	return m, nil
}

// appendPartitionResponseBinary renders a PartitionResponse.
func appendPartitionResponseBinary(buf []byte, resp PartitionResponse) []byte {
	buf = appendBinHeader(buf, binMsgPartitionResponse)
	buf = appendString(buf, resp.SessionID)
	buf = binary.AppendVarint(buf, resp.Epoch)
	buf = binary.AppendVarint(buf, int64(resp.K))
	buf = hypergraph.AppendInt32s(buf, resp.Parts)
	return appendMigrationSummary(buf, resp.Migration)
}

// DecodePartitionResponseBinary parses a binary PartitionResponse.
func DecodePartitionResponseBinary(data []byte) (PartitionResponse, error) {
	var resp PartitionResponse
	r := hypergraph.NewBinReader(data)
	if err := readBinHeader(r, binMsgPartitionResponse); err != nil {
		return resp, err
	}
	var err error
	if resp.SessionID, err = readString(r, 256); err != nil {
		return resp, err
	}
	if resp.Epoch, err = r.Varint(); err != nil {
		return resp, err
	}
	k, err := r.Varint()
	if err != nil {
		return resp, err
	}
	resp.K = int(k)
	if resp.Parts, err = hypergraph.DecodeInt32s(r, hypergraph.MaxWireVertices); err != nil {
		return resp, err
	}
	if len(resp.Parts) == 0 {
		resp.Parts = nil
	}
	if resp.Migration, err = readMigrationSummary(r); err != nil {
		return resp, err
	}
	return resp, binDone(r)
}

// appendSessionInfoBinary renders a SessionInfo.
func appendSessionInfoBinary(buf []byte, info SessionInfo) []byte {
	buf = appendBinHeader(buf, binMsgSessionInfo)
	buf = appendString(buf, info.SessionID)
	buf = appendWireConfig(buf, info.Config)
	buf = binary.AppendVarint(buf, info.Epoch)
	buf = binary.AppendVarint(buf, int64(info.HistoryLen))
	buf = binary.AppendVarint(buf, info.TotalCost)
	return appendWireResult(buf, info.Last)
}

// DecodeSessionInfoBinary parses a binary SessionInfo.
func DecodeSessionInfoBinary(data []byte) (SessionInfo, error) {
	var info SessionInfo
	r := hypergraph.NewBinReader(data)
	if err := readBinHeader(r, binMsgSessionInfo); err != nil {
		return info, err
	}
	var err error
	if info.SessionID, err = readString(r, 256); err != nil {
		return info, err
	}
	if info.Config, err = readWireConfig(r); err != nil {
		return info, err
	}
	if info.Epoch, err = r.Varint(); err != nil {
		return info, err
	}
	hl, err := r.Varint()
	if err != nil {
		return info, err
	}
	info.HistoryLen = int(hl)
	if info.TotalCost, err = r.Varint(); err != nil {
		return info, err
	}
	if info.Last, err = readWireResult(r); err != nil {
		return info, err
	}
	return info, binDone(r)
}
