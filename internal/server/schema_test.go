package server_test

import (
	"context"
	"encoding/json"
	"net/http"
	"testing"

	"hyperbal/internal/core"
	"hyperbal/internal/datasets"
	"hyperbal/internal/graph"
	"hyperbal/internal/obs"
	"hyperbal/internal/server"
)

// TestMetricsSchema: after a minimal workload, the server's /metrics.json
// must satisfy testdata/serve_schema.json — the same contract the CI smoke
// job asserts through `loadgen -check-schema`.
func TestMetricsSchema(t *testing.T) {
	_, ts, client := newTestServer(t, server.Config{})
	ctx := context.Background()
	g, err := datasets.Generate("xyce680s", 200, 13)
	if err != nil {
		t.Fatal(err)
	}
	h := graph.ToHypergraph(g)
	sess, _, err := client.CreateSession(ctx, core.Config{K: 4, Alpha: 50, Seed: 13}, h)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := sess.SubmitEpoch(ctx, h); err != nil {
		t.Fatal(err)
	}
	// One warm delta epoch so the server_delta_* families carry samples.
	if _, err := sess.SubmitEpochDelta(ctx, reweighted(h, 3), true); err != nil {
		t.Fatal(err)
	}

	resp, err := http.Get(ts.URL + "/metrics.json")
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	var snap obs.Snapshot
	if err := json.NewDecoder(resp.Body).Decode(&snap); err != nil {
		t.Fatal(err)
	}
	schema, err := obs.ReadSchema("testdata/serve_schema.json")
	if err != nil {
		t.Fatal(err)
	}
	if err := obs.CheckSnapshot(snap, schema); err != nil {
		t.Fatal(err)
	}
}
