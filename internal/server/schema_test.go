package server_test

import (
	"context"
	"encoding/json"
	"net/http"
	"testing"

	"hyperbal/internal/core"
	"hyperbal/internal/datasets"
	"hyperbal/internal/graph"
	"hyperbal/internal/obs"
	"hyperbal/internal/server"
)

// TestMetricsSchema: after a minimal workload, the server's /metrics.json
// must satisfy testdata/serve_schema.json — the same contract the CI smoke
// job asserts through `loadgen -check-schema`.
func TestMetricsSchema(t *testing.T) {
	srv, ts, client := newTestServer(t, server.Config{})
	ctx := context.Background()
	g, err := datasets.Generate("xyce680s", 200, 13)
	if err != nil {
		t.Fatal(err)
	}
	h := graph.ToHypergraph(g)
	sess, _, err := client.CreateSession(ctx, core.Config{K: 4, Alpha: 50, Seed: 13}, h)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := sess.SubmitEpoch(ctx, h); err != nil {
		t.Fatal(err)
	}
	// One warm delta epoch so the server_delta_* families carry samples.
	if _, err := sess.SubmitEpochDelta(ctx, reweighted(h, 3), true); err != nil {
		t.Fatal(err)
	}

	resp, err := http.Get(ts.URL + "/metrics.json")
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	var snap obs.Snapshot
	if err := json.NewDecoder(resp.Body).Decode(&snap); err != nil {
		t.Fatal(err)
	}
	schema, err := obs.ReadSchema("testdata/serve_schema.json")
	if err != nil {
		t.Fatal(err)
	}
	if err := obs.CheckSnapshot(snap, schema); err != nil {
		t.Fatal(err)
	}

	// Gauge consistency after a quiesced workload: the admission gauges must
	// have returned to zero (they are derived from locked bookkeeping, not
	// the racy channel length), and the cache-entries gauge must agree with
	// the cache's actual size (put refreshes it on every path, including the
	// duplicate-key early return).
	if got := snap.Gauges["server_inflight_epochs"]; got != 0 {
		t.Errorf("server_inflight_epochs = %d after the workload quiesced, want 0", got)
	}
	if got := snap.Gauges["server_queue_depth"]; got != 0 {
		t.Errorf("server_queue_depth = %d after the workload quiesced, want 0", got)
	}
	if got, want := snap.Gauges["server_cache_entries"], int64(srv.CacheLen()); got != want {
		t.Errorf("server_cache_entries = %d, but the cache holds %d entries", got, want)
	}
}
