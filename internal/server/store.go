package server

import (
	"crypto/rand"
	"encoding/hex"
	"sync"
	"sync/atomic"
	"time"

	"hyperbal/internal/core"
	"hyperbal/internal/hypergraph"
)

// session is one served core.Session plus its serving state: the
// per-session mutex that serializes epoch submissions (so two concurrent
// submissions for the same session execute in some order, never
// interleaved), the effective configuration for cache keying, and the
// latest migration plan summary for GET /partition.
type session struct {
	id   string
	cfg  core.Config // effective (defaulted) balancer configuration
	sess *core.Session

	mu      sync.Mutex // serializes epoch work on this session
	lastMig *MigrationSummary
	// baseH / baseFP are the last accepted epoch hypergraph and its
	// fingerprint — the base the next delta submission applies against.
	// Guarded by mu.
	baseH  *hypergraph.Hypergraph
	baseFP string

	lastAccess atomic.Int64 // unix nanos, for TTL eviction
}

func (s *session) touch() { s.lastAccess.Store(time.Now().UnixNano()) }

// store is the concurrent session store: RWMutex-guarded id map plus a
// TTL janitor that evicts sessions idle longer than ttl.
type store struct {
	mu  sync.RWMutex
	m   map[string]*session
	ttl time.Duration

	stop     chan struct{}
	stopOnce sync.Once
}

func newStore(ttl time.Duration) *store {
	st := &store{m: make(map[string]*session), ttl: ttl, stop: make(chan struct{})}
	if ttl > 0 {
		interval := ttl / 4
		if interval < 10*time.Millisecond {
			interval = 10 * time.Millisecond
		}
		go st.janitor(interval)
	}
	return st
}

func (st *store) janitor(interval time.Duration) {
	t := time.NewTicker(interval)
	defer t.Stop()
	for {
		select {
		case <-st.stop:
			return
		case now := <-t.C:
			st.sweep(now)
		}
	}
}

// sweep evicts sessions whose last access is older than ttl. A session
// mid-epoch is never evicted: epoch handlers hold a reference and touch
// the session when done, and eviction only deletes the map entry.
func (st *store) sweep(now time.Time) {
	cutoff := now.Add(-st.ttl).UnixNano()
	st.mu.Lock()
	for id, s := range st.m {
		if s.lastAccess.Load() < cutoff {
			delete(st.m, id)
			obsSessionsEvicted.Inc()
		}
	}
	obsSessionsActive.Set(int64(len(st.m)))
	st.mu.Unlock()
}

func (st *store) add(s *session) {
	s.touch()
	st.mu.Lock()
	st.m[s.id] = s
	obsSessionsActive.Set(int64(len(st.m)))
	st.mu.Unlock()
}

func (st *store) get(id string) *session {
	st.mu.RLock()
	s := st.m[id]
	st.mu.RUnlock()
	if s != nil {
		s.touch()
	}
	return s
}

func (st *store) remove(id string) bool {
	st.mu.Lock()
	_, ok := st.m[id]
	delete(st.m, id)
	obsSessionsActive.Set(int64(len(st.m)))
	st.mu.Unlock()
	return ok
}

func (st *store) len() int {
	st.mu.RLock()
	defer st.mu.RUnlock()
	return len(st.m)
}

// close stops the janitor. Sessions remain readable.
func (st *store) close() { st.stopOnce.Do(func() { close(st.stop) }) }

// newSessionID returns a 128-bit random session id.
func newSessionID() string {
	var b [16]byte
	if _, err := rand.Read(b[:]); err != nil {
		panic("server: crypto/rand unavailable: " + err.Error())
	}
	return "s-" + hex.EncodeToString(b[:])
}
