package server

import (
	"crypto/rand"
	"encoding/hex"
	"sync"
	"sync/atomic"
	"time"

	"hyperbal/internal/core"
	"hyperbal/internal/hypergraph"
)

// session is one served core.Session plus its serving state: the
// per-session mutex that serializes epoch submissions (so two concurrent
// submissions for the same session execute in some order, never
// interleaved), the effective configuration for cache keying, and the
// latest migration plan summary for GET /partition.
type session struct {
	id   string
	cfg  core.Config // effective (defaulted) balancer configuration
	sess *core.Session

	mu      sync.Mutex // serializes epoch work on this session
	lastMig *MigrationSummary
	// baseH / baseFP are the last accepted epoch hypergraph and its
	// fingerprint — the base the next delta submission applies against.
	// Guarded by mu.
	baseH  *hypergraph.Hypergraph
	baseFP string

	lastAccess atomic.Int64 // unix nanos, for TTL eviction

	// busy counts handlers currently working on this session. The TTL
	// janitor never evicts a busy session: lastAccess alone is touched at
	// lookup time, so a cold solve longer than the TTL used to get its
	// session deleted while the handler still held it — the next request
	// 404'd and the result was orphaned. Incremented under the store's read
	// lock (sweep holds the write lock, so it never observes a torn state).
	busy atomic.Int32
}

func (s *session) touch() { s.lastAccess.Store(time.Now().UnixNano()) }

// store is the concurrent session store: RWMutex-guarded id map plus a
// TTL janitor that evicts sessions idle longer than ttl.
type store struct {
	mu  sync.RWMutex
	m   map[string]*session
	ttl time.Duration

	stop     chan struct{}
	stopOnce sync.Once
}

func newStore(ttl time.Duration) *store {
	st := &store{m: make(map[string]*session), ttl: ttl, stop: make(chan struct{})}
	if ttl > 0 {
		interval := ttl / 4
		if interval < 10*time.Millisecond {
			interval = 10 * time.Millisecond
		}
		go st.janitor(interval)
	}
	return st
}

func (st *store) janitor(interval time.Duration) {
	t := time.NewTicker(interval)
	defer t.Stop()
	for {
		select {
		case <-st.stop:
			return
		case now := <-t.C:
			st.sweep(now)
		}
	}
}

// sweep evicts sessions whose last access is older than ttl, skipping any
// session a handler currently holds (busy refcount > 0) — the handler
// touches the session when it releases, so a long solve just restarts the
// idle clock instead of orphaning its result.
func (st *store) sweep(now time.Time) {
	cutoff := now.Add(-st.ttl).UnixNano()
	st.mu.Lock()
	for id, s := range st.m {
		if s.busy.Load() > 0 {
			continue
		}
		if s.lastAccess.Load() < cutoff {
			delete(st.m, id)
			obsSessionsEvicted.Inc()
		}
	}
	obsSessionsActive.Set(int64(len(st.m)))
	st.mu.Unlock()
}

func (st *store) add(s *session) {
	s.touch()
	st.mu.Lock()
	st.m[s.id] = s
	obsSessionsActive.Set(int64(len(st.m)))
	st.mu.Unlock()
}

// addIfAbsent inserts s unless a session with the same id already exists;
// check and insert happen under one write lock, so two concurrent creates
// pre-assigned the same id cannot both pass a lookup and silently
// overwrite each other.
func (st *store) addIfAbsent(s *session) bool {
	s.touch()
	st.mu.Lock()
	if _, ok := st.m[s.id]; ok {
		st.mu.Unlock()
		return false
	}
	st.m[s.id] = s
	obsSessionsActive.Set(int64(len(st.m)))
	st.mu.Unlock()
	return true
}

func (st *store) get(id string) *session {
	st.mu.RLock()
	s := st.m[id]
	st.mu.RUnlock()
	if s != nil {
		s.touch()
	}
	return s
}

// acquire is get plus a busy hold: the returned release must be called
// exactly once when the handler is done with the session. While held, the
// TTL janitor will not evict the session regardless of how long the
// handler's solve takes; release touches the session so the idle clock
// restarts at completion time, not at lookup time.
func (st *store) acquire(id string) (*session, func()) {
	st.mu.RLock()
	s := st.m[id]
	if s != nil {
		s.busy.Add(1)
	}
	st.mu.RUnlock()
	if s == nil {
		return nil, nil
	}
	s.touch()
	return s, func() {
		s.touch()
		s.busy.Add(-1)
	}
}

// snapshot returns every live session (for drain-time handoff).
func (st *store) snapshot() []*session {
	st.mu.RLock()
	defer st.mu.RUnlock()
	out := make([]*session, 0, len(st.m))
	for _, s := range st.m {
		out = append(out, s)
	}
	return out
}

func (st *store) remove(id string) bool {
	st.mu.Lock()
	_, ok := st.m[id]
	delete(st.m, id)
	obsSessionsActive.Set(int64(len(st.m)))
	st.mu.Unlock()
	return ok
}

func (st *store) len() int {
	st.mu.RLock()
	defer st.mu.RUnlock()
	return len(st.m)
}

// close stops the janitor. Sessions remain readable.
func (st *store) close() { st.stopOnce.Do(func() { close(st.stop) }) }

// newSessionID returns a 128-bit random session id.
func newSessionID() string {
	var b [16]byte
	if _, err := rand.Read(b[:]); err != nil {
		panic("server: crypto/rand unavailable: " + err.Error())
	}
	return "s-" + hex.EncodeToString(b[:])
}
