package server

// Cache peering and drain-time session handoff: the replica-to-replica
// half of the distributed serving tier.
//
// Peering: every replica knows the full replica list and the same
// consistent-hash ring, so for any partition-cache key all replicas agree
// on one owner. On a local cache miss the solving replica asks the owner
// (GET /internal/cache/{key}, binary frame) before cold-solving; the
// parallelism-invariance property guarantees the owner's entry for that
// key is byte-identical to what the local solve would produce, so adopting
// it is exactly as safe as a local cache hit. The lookup is bounded by a
// short PeerTimeout and every failure mode (miss, timeout, transport or
// decode error) degrades to the local cold solve — peering can only remove
// work, never add failures.
//
// Handoff: when a replica drains (SIGTERM), it serializes every live
// session — base hypergraph, fingerprint, epoch counter, last result —
// into a binary frame and POSTs it to the session's ring successor, which
// restores the session under the same id at the same epoch. The draining
// replica keeps a forwarding tombstone and answers subsequent requests for
// the session with 307 + X-Hyperbal-Owner, which both the gateway and the
// client follow. The successor choice (first ring candidate after self)
// matches where the gateway re-routes the session id once the replica is
// gone, so routing converges without coordination.

import (
	"bytes"
	"context"
	"encoding/hex"
	"errors"
	"fmt"
	"io"
	"net/http"
	"time"

	"hyperbal/internal/core"
	"hyperbal/internal/partition"
)

const (
	// OwnerHeader carries the base URL of the replica that now owns a
	// session, on 307 responses from the replica that handed it off.
	OwnerHeader = "X-Hyperbal-Owner"
	// SessionIDHeader lets a gateway pre-assign the session id on create so
	// routing (hash of the id) and storage agree on the same replica.
	SessionIDHeader = "X-Hyperbal-Session-ID"
)

// validSessionID accepts exactly the ids newSessionID generates:
// "s-" + 32 lowercase hex digits.
func validSessionID(id string) bool {
	if len(id) != 34 || id[0] != 's' || id[1] != '-' {
		return false
	}
	for i := 2; i < len(id); i++ {
		c := id[i]
		if (c < '0' || c > '9') && (c < 'a' || c > 'f') {
			return false
		}
	}
	return true
}

// SetPeering configures (or reconfigures) this replica's place in the
// replica set: self is its externally reachable base URL, peers the full
// replica list (including self). Call before serving traffic; tests with
// httptest listeners call it right after binding.
func (s *Server) SetPeering(self string, peers []string) {
	s.peerMu.Lock()
	defer s.peerMu.Unlock()
	s.self = self
	if len(peers) == 0 {
		s.peerRing = nil
		return
	}
	s.peerRing = newRing(peers)
}

// peerTopology snapshots the ring and self URL.
func (s *Server) peerTopology() (string, *ring) {
	s.peerMu.RLock()
	defer s.peerMu.RUnlock()
	return s.self, s.peerRing
}

// cacheKeyOwner returns the peer that owns a cache key, or "" when this
// replica owns it (or peering is off).
func (s *Server) cacheKeyOwner(key string) string {
	self, r := s.peerTopology()
	if r == nil {
		return ""
	}
	owner := r.owner(key)
	if owner == "" || owner == self {
		return ""
	}
	return owner
}

// peerFetch asks the key's owner replica for its cached result. The lookup
// is bounded by PeerTimeout; every failure mode returns (_, false) and the
// caller cold-solves locally.
func (s *Server) peerFetch(ctx context.Context, key string) (core.Result, bool) {
	if s.cfg.PeerTimeout <= 0 {
		return core.Result{}, false
	}
	owner := s.cacheKeyOwner(key)
	if owner == "" {
		return core.Result{}, false
	}
	pctx, cancel := context.WithTimeout(ctx, s.cfg.PeerTimeout)
	defer cancel()
	req, err := http.NewRequestWithContext(pctx, http.MethodGet,
		owner+"/internal/cache/"+hex.EncodeToString([]byte(key)), nil)
	if err != nil {
		obsPeerErrors.Inc()
		return core.Result{}, false
	}
	resp, err := s.peerHTTP.Do(req)
	if err != nil {
		if errors.Is(err, context.DeadlineExceeded) || pctx.Err() != nil {
			obsPeerTimeouts.Inc()
			s.cfg.Logf("server: peer cache lookup at %s timed out after %s; solving locally", owner, s.cfg.PeerTimeout)
		} else {
			obsPeerErrors.Inc()
		}
		return core.Result{}, false
	}
	defer resp.Body.Close()
	switch resp.StatusCode {
	case http.StatusOK:
	case http.StatusNotFound:
		obsPeerMisses.Inc()
		return core.Result{}, false
	default:
		obsPeerErrors.Inc()
		return core.Result{}, false
	}
	data, err := io.ReadAll(io.LimitReader(resp.Body, s.cfg.MaxBodyBytes))
	if err != nil {
		obsPeerErrors.Inc()
		return core.Result{}, false
	}
	res, err := decodeCacheResultBinary(data)
	if err != nil {
		obsPeerErrors.Inc()
		return core.Result{}, false
	}
	obsPeerHits.Inc()
	return res, true
}

// handlePeerCache serves GET /internal/cache/{key}: the peer side of
// peerFetch. Always binary (replicas speak the wire protocol natively),
// never admission-controlled (a lookup is a map read).
func (s *Server) handlePeerCache(w http.ResponseWriter, r *http.Request) {
	key, err := hex.DecodeString(r.PathValue("key"))
	if err != nil {
		writeError(w, http.StatusBadRequest, "bad_request", "cache key must be hex")
		return
	}
	res, ok := s.cache.get(string(key))
	if !ok {
		writeError(w, http.StatusNotFound, "not_found", "no cache entry")
		return
	}
	obsPeerServed.Inc()
	bp, buf := getWireBuf()
	buf = appendCacheResultBinary(buf, res)
	w.Header().Set("Content-Type", ContentTypeBinary)
	w.WriteHeader(http.StatusOK)
	_, _ = w.Write(buf)
	putWireBuf(bp, buf)
}

// handleHandoff serves POST /internal/handoff: adopt a session serialized
// by a draining peer. Rejected while this replica is itself draining (503)
// so the sender can try the next ring candidate instead of stranding the
// session on a dying process.
func (s *Server) handleHandoff(w http.ResponseWriter, r *http.Request) {
	if s.adm.isDraining() {
		writeError(w, http.StatusServiceUnavailable, "draining", "replica is draining; cannot adopt sessions")
		return
	}
	body, releaseBuf, ok := s.readBody(w, r)
	if !ok {
		return
	}
	st, err := decodeHandoffBinary(body)
	releaseBuf()
	if err != nil {
		writeError(w, http.StatusBadRequest, "bad_request", "handoff: "+err.Error())
		return
	}
	cfg, err := st.Config.ToCore()
	if err != nil {
		writeError(w, http.StatusBadRequest, "bad_request", "handoff config: "+err.Error())
		return
	}
	bal, err := core.NewBalancer(cfg)
	if err != nil {
		writeError(w, http.StatusBadRequest, "bad_request", "handoff config: "+err.Error())
		return
	}
	res := core.Result{
		Partition:       partition.Partition{Parts: st.Last.Parts, K: st.Last.K},
		CommVolume:      st.Last.CommVolume,
		MigrationVolume: st.Last.MigrationVolume,
		Moved:           st.Last.Moved,
		RepartTime:      time.Duration(st.Last.RepartMs * 1e6),
		Warm:            st.Last.Warm,
	}
	entry := &session{
		id:      st.ID,
		cfg:     bal.Config(),
		sess:    core.NewSessionAt(bal, res, st.Epoch),
		baseH:   st.H,
		baseFP:  st.FP,
		lastMig: st.Mig,
	}
	s.clearHandoff(st.ID) // a session may return to a revived replica
	s.store.add(entry)
	obsHandoffReceived.Inc()
	s.cfg.Logf("server: adopted session %s at epoch %d via handoff (|V|=%d)",
		st.ID, st.Epoch, st.H.NumVertices())
	w.WriteHeader(http.StatusNoContent)
}

// handoffAll serializes every live session to its ring successor. Called
// from Drain after in-flight epochs completed; admission is already
// rejecting new epoch work, so session state is quiescent.
func (s *Server) handoffAll(ctx context.Context) {
	self, r := s.peerTopology()
	if r == nil || len(r.urls) < 2 {
		return
	}
	sessions := s.store.snapshot()
	if len(sessions) == 0 {
		return
	}
	handed := 0
	for _, entry := range sessions {
		if s.handoffSession(ctx, entry, self, r) {
			handed++
		} else {
			obsHandoffFailed.Inc()
		}
	}
	s.cfg.Logf("server: drain handoff moved %d/%d sessions", handed, len(sessions))
}

// handoffSession offers one session to the ring candidates after self, in
// order, and tombstones it on success.
func (s *Server) handoffSession(ctx context.Context, entry *session, self string, r *ring) bool {
	entry.mu.Lock()
	last := entry.sess.LastResult()
	st := handoffState{
		ID:     entry.id,
		Config: WireConfigFrom(entry.cfg),
		Epoch:  entry.sess.Epoch(),
		Last:   wireResult(entry.sess.Epoch(), last, false, true),
		Mig:    entry.lastMig,
		H:      entry.baseH,
		FP:     entry.baseFP,
	}
	st.Last.Warm = last.Warm
	entry.mu.Unlock()
	if st.H == nil {
		// A session created but never submitted to still has no base; its
		// initial hypergraph is the base recorded at create time, so this
		// only happens for the zero value. Nothing to hand off.
		return false
	}
	frame := appendHandoffBinary(nil, st)
	for _, cand := range r.candidates(entry.id) {
		url := r.urls[cand]
		if url == self {
			continue
		}
		if s.postHandoff(ctx, url, frame) {
			s.store.remove(entry.id)
			s.recordHandoff(entry.id, url)
			obsHandoffSent.Inc()
			s.cfg.Logf("server: handed session %s (epoch %d) to %s", entry.id, st.Epoch, url)
			return true
		}
	}
	return false
}

func (s *Server) postHandoff(ctx context.Context, url string, frame []byte) bool {
	timeout := s.cfg.HandoffTimeout
	hctx, cancel := context.WithTimeout(ctx, timeout)
	defer cancel()
	req, err := http.NewRequestWithContext(hctx, http.MethodPost, url+"/internal/handoff", bytes.NewReader(frame))
	if err != nil {
		return false
	}
	req.Header.Set("Content-Type", ContentTypeBinary)
	resp, err := s.peerHTTP.Do(req)
	if err != nil {
		return false
	}
	defer resp.Body.Close()
	_, _ = io.Copy(io.Discard, io.LimitReader(resp.Body, 1<<16))
	return resp.StatusCode == http.StatusNoContent
}

// recordHandoff remembers where a session went so later requests can be
// pointed at the new owner (307 + X-Hyperbal-Owner).
func (s *Server) recordHandoff(id, url string) {
	s.handedMu.Lock()
	if s.handed == nil {
		s.handed = make(map[string]string)
	}
	s.handed[id] = url
	s.handedMu.Unlock()
}

func (s *Server) clearHandoff(id string) {
	s.handedMu.Lock()
	delete(s.handed, id)
	s.handedMu.Unlock()
}

// handoffOwner returns the post-handoff owner of a session, "" if never
// handed off.
func (s *Server) handoffOwner(id string) string {
	s.handedMu.Lock()
	defer s.handedMu.Unlock()
	return s.handed[id]
}

// sessionGone answers a request for a session this replica does not hold:
// 307 + X-Hyperbal-Owner when it was handed off (the caller re-issues the
// request there — 307 preserves the method and body semantics), plain 404
// otherwise.
func (s *Server) sessionGone(w http.ResponseWriter, id string) {
	if owner := s.handoffOwner(id); owner != "" {
		obsOwnerRedirects.Inc()
		w.Header().Set(OwnerHeader, owner)
		writeJSON(w, http.StatusTemporaryRedirect, ErrorResponse{
			Error: fmt.Sprintf("session %s was handed off to %s", id, owner),
			Code:  "moved",
		})
		return
	}
	writeError(w, http.StatusNotFound, "not_found", "unknown session")
}
