// Package server is the balancerd serving tier: a stdlib-only HTTP/JSON
// service that exposes the core.Balancer / core.Session epoch lifecycle as
// a long-running daemon. It multiplexes many concurrent sessions over a
// bounded worker pool (admission control with queueing and backpressure),
// serializes epoch submissions per session, evicts idle sessions by TTL,
// and serves identical epoch submissions from a repartition-result cache
// keyed by the hypergraph content fingerprint.
//
// Endpoints:
//
//	POST   /v1/sessions                create a session (config + hypergraph)
//	GET    /v1/sessions/{id}           session info
//	POST   /v1/sessions/{id}/epochs    submit an epoch (drifted hypergraph)
//	GET    /v1/sessions/{id}/partition current partition + last migration plan
//	DELETE /v1/sessions/{id}           close a session
//	GET    /healthz                    liveness + drain state
//	GET    /metrics, /metrics.json     the internal/obs registry
//
// Backpressure contract: when the queue is full the server answers 429
// (code "busy"); during drain it answers 503 (code "draining"). Both are
// rejected before any session state changes, so clients retry them safely.
package server

import (
	"context"
	"encoding/json"
	"errors"
	"fmt"
	"io"
	"math/rand"
	"net/http"
	"runtime"
	"strings"
	"sync"
	"time"

	"hyperbal/internal/core"
	"hyperbal/internal/hypergraph"
	"hyperbal/internal/migrate"
	"hyperbal/internal/mpi"
	"hyperbal/internal/obs"
	"hyperbal/internal/partition"
)

// Config parameterizes a Server.
type Config struct {
	// Workers bounds concurrently running partitioning jobs
	// (default GOMAXPROCS).
	Workers int
	// QueueDepth bounds jobs waiting for a worker beyond the running ones;
	// submissions past workers+queue get 429 (default 256; negative = 0).
	QueueDepth int
	// SessionTTL evicts sessions idle longer than this (default 15m;
	// negative disables eviction).
	SessionTTL time.Duration
	// CacheEntries bounds the repartition-result cache (default 4096;
	// negative disables the cache).
	CacheEntries int
	// MaxBodyBytes bounds request bodies (default 64 MiB).
	MaxBodyBytes int64
	// Fault, when non-nil with a positive MaxDelay, injects a seeded
	// pseudorandom delay in [0, MaxDelay) into every partitioning job —
	// the mpi.FaultPlan knob reused at the serving tier to exercise client
	// timeout/retry paths deterministically. Other FaultPlan fields are
	// message-level and ignored here.
	Fault *mpi.FaultPlan

	// Self is this replica's externally reachable base URL; Peers is the
	// full replica list (including Self). When both are set the replica
	// participates in cache peering and drain-time session handoff
	// (see peering.go). Tests that only learn their URL after binding can
	// leave these empty and call SetPeering instead.
	Self  string
	Peers []string
	// PeerTimeout bounds a peer cache lookup; past it the replica solves
	// locally (default 75ms; negative disables peering lookups).
	PeerTimeout time.Duration
	// HandoffTimeout bounds one drain-time session handoff POST
	// (default 5s).
	HandoffTimeout time.Duration

	// Logf, when non-nil, receives one line per notable server event.
	Logf func(format string, args ...any)
}

func (c Config) withDefaults() Config {
	if c.Workers <= 0 {
		c.Workers = runtime.GOMAXPROCS(0)
	}
	if c.QueueDepth == 0 {
		c.QueueDepth = 256
	}
	if c.QueueDepth < 0 {
		c.QueueDepth = 0
	}
	if c.SessionTTL == 0 {
		c.SessionTTL = 15 * time.Minute
	}
	if c.SessionTTL < 0 {
		c.SessionTTL = 0
	}
	if c.CacheEntries == 0 {
		c.CacheEntries = 4096
	}
	if c.MaxBodyBytes <= 0 {
		c.MaxBodyBytes = 64 << 20
	}
	if c.PeerTimeout == 0 {
		c.PeerTimeout = 75 * time.Millisecond
	}
	if c.HandoffTimeout <= 0 {
		c.HandoffTimeout = 5 * time.Second
	}
	if c.Logf == nil {
		c.Logf = func(string, ...any) {}
	}
	return c
}

// Server is the balancerd serving core, independent of the listener: New
// builds it, Handler returns the routed mux, Drain implements graceful
// shutdown, Close releases background resources.
type Server struct {
	cfg     Config
	store   *store
	adm     *admission
	cache   *partitionCache
	flights *flightGroup
	mux     *http.ServeMux

	// Replica-set state (peering.go): the consistent-hash ring over the
	// replica URLs, this replica's own URL, the HTTP client used for peer
	// lookups and handoffs, and the post-handoff forwarding tombstones.
	peerMu   sync.RWMutex
	self     string
	peerRing *ring
	peerHTTP *http.Client
	handedMu sync.Mutex
	handed   map[string]string
}

// New builds a Server from cfg.
func New(cfg Config) *Server {
	cfg = cfg.withDefaults()
	s := &Server{
		cfg:      cfg,
		store:    newStore(cfg.SessionTTL),
		adm:      newAdmission(cfg.Workers, cfg.QueueDepth),
		cache:    newPartitionCache(cfg.CacheEntries),
		flights:  newFlightGroup(),
		peerHTTP: &http.Client{},
	}
	if cfg.Self != "" && len(cfg.Peers) > 0 {
		s.SetPeering(cfg.Self, cfg.Peers)
	}
	mux := http.NewServeMux()
	mux.HandleFunc("POST /v1/sessions", s.route("create", s.handleCreate))
	mux.HandleFunc("GET /v1/sessions/{id}", s.route("info", s.handleInfo))
	mux.HandleFunc("POST /v1/sessions/{id}/epochs", s.route("epoch", s.handleEpoch))
	mux.HandleFunc("PATCH /v1/sessions/{id}/epochs", s.route("delta", s.handleDeltaEpoch))
	mux.HandleFunc("GET /v1/sessions/{id}/partition", s.route("partition", s.handlePartition))
	mux.HandleFunc("DELETE /v1/sessions/{id}", s.route("delete", s.handleDelete))
	mux.HandleFunc("GET /healthz", s.route("healthz", s.handleHealthz))
	mux.HandleFunc("GET /internal/cache/{key}", s.route("peer_cache", s.handlePeerCache))
	mux.HandleFunc("POST /internal/handoff", s.route("handoff", s.handleHandoff))
	mux.Handle("GET /metrics", obs.Handler(obs.Default()))
	mux.HandleFunc("GET /metrics.json", func(w http.ResponseWriter, r *http.Request) {
		w.Header().Set("Content-Type", "application/json")
		_ = obs.Default().WriteJSON(w)
	})
	s.mux = mux
	return s
}

// Handler returns the server's HTTP handler.
func (s *Server) Handler() http.Handler { return s.mux }

// Drain stops admitting new partitioning work (subsequent submissions get
// 503) and waits, bounded by ctx, for every in-flight and queued epoch to
// complete; with peering configured it then hands every live session to
// its ring successor so a rolling restart loses no session state. Read
// endpoints keep serving (handed-off sessions answer 307 +
// X-Hyperbal-Owner); call the http.Server's Shutdown after Drain to close
// the listener.
func (s *Server) Drain(ctx context.Context) error {
	s.cfg.Logf("server: draining (completing in-flight epochs)")
	err := s.adm.drain(ctx)
	if err != nil {
		s.cfg.Logf("server: drain incomplete: %v", err)
	} else {
		s.cfg.Logf("server: drained")
	}
	s.handoffAll(ctx)
	return err
}

// Draining reports whether Drain has started.
func (s *Server) Draining() bool { return s.adm.isDraining() }

// Close stops background goroutines (the TTL janitor). The handler stays
// functional for reads.
func (s *Server) Close() { s.store.close() }

// Sessions returns the number of live sessions (for tests and health).
func (s *Server) Sessions() int { return s.store.len() }

// CacheLen returns the partition cache's current entry count (for tests
// asserting gauge consistency).
func (s *Server) CacheLen() int { return s.cache.len() }

// statusWriter records the response code for the per-route metrics.
type statusWriter struct {
	http.ResponseWriter
	code int
}

func (w *statusWriter) WriteHeader(code int) {
	w.code = code
	w.ResponseWriter.WriteHeader(code)
}

// route wraps a handler with request counting, latency observation and
// response-class accounting.
func (s *Server) route(name string, h http.HandlerFunc) http.HandlerFunc {
	return func(w http.ResponseWriter, r *http.Request) {
		start := time.Now()
		obsRequests.With(name).Inc()
		sw := &statusWriter{ResponseWriter: w, code: http.StatusOK}
		h(sw, r)
		obsRequestNs.With(name).ObserveSince(start)
		obsResponses.With(fmt.Sprintf("%dxx", sw.code/100)).Inc()
	}
}

// writeJSON writes v with the given status.
func writeJSON(w http.ResponseWriter, status int, v any) {
	w.Header().Set("Content-Type", "application/json")
	w.WriteHeader(status)
	_ = json.NewEncoder(w).Encode(v)
}

// writeError maps an error to the wire.
func writeError(w http.ResponseWriter, status int, code, msg string) {
	writeJSON(w, status, ErrorResponse{Error: msg, Code: code})
}

// admit runs the admission controller against the request, writing the
// backpressure response on rejection.
func (s *Server) admit(w http.ResponseWriter, r *http.Request) (release func(), ok bool) {
	release, err := s.adm.acquire(r.Context())
	switch {
	case err == nil:
		return release, true
	case errors.Is(err, errDraining):
		writeError(w, http.StatusServiceUnavailable, "draining", "server is draining; not accepting new epochs")
	case errors.Is(err, errBusy):
		writeError(w, http.StatusTooManyRequests, "busy", "worker queue is full; retry with backoff")
	default: // client went away while queued
		writeError(w, 499, "canceled", err.Error())
	}
	return nil, false
}

// faultDelay applies the configured seeded delay to one partitioning job.
func (s *Server) faultDelay(job int64) {
	f := s.cfg.Fault
	if f == nil || f.MaxDelay <= 0 {
		return
	}
	rng := rand.New(rand.NewSource(f.Seed ^ (job * 0x5851F42D4C957F2D)))
	d := time.Duration(rng.Int63n(int64(f.MaxDelay)))
	obsFaultDelayNs.Observe(int64(d))
	time.Sleep(d)
}

// Pooled wire buffers: one pool serves both request-body reads and
// response encodes. Buffers past the cap are dropped rather than pooled so
// a single giant body cannot pin memory for the life of the process.
var wireBufPool = sync.Pool{
	New: func() any {
		b := make([]byte, 0, 64<<10)
		return &b
	},
}

const maxPooledWireBuf = 4 << 20

func getWireBuf() (*[]byte, []byte) {
	bp := wireBufPool.Get().(*[]byte)
	return bp, (*bp)[:0]
}

func putWireBuf(bp *[]byte, buf []byte) {
	if cap(buf) <= maxPooledWireBuf {
		*bp = buf[:0]
		wireBufPool.Put(bp)
	}
}

// readBody slurps the request body into a pooled buffer. On success the
// caller must invoke release once it is done with the returned bytes —
// decoded hypergraphs never alias them, so release right after decoding.
func (s *Server) readBody(w http.ResponseWriter, r *http.Request) (body []byte, release func(), ok bool) {
	bp, buf := getWireBuf()
	lr := http.MaxBytesReader(w, r.Body, s.cfg.MaxBodyBytes)
	for {
		if len(buf) == cap(buf) {
			buf = append(buf, 0)[:len(buf)]
		}
		n, err := lr.Read(buf[len(buf):cap(buf)])
		buf = buf[:len(buf)+n]
		if err == io.EOF {
			break
		}
		if err != nil {
			putWireBuf(bp, buf)
			writeError(w, http.StatusBadRequest, "bad_request", "invalid request body: "+err.Error())
			return nil, nil, false
		}
	}
	return buf, func() { putWireBuf(bp, buf) }, true
}

// isBinaryRequest reports whether the request body uses the binary wire
// protocol (Content-Type: application/x-hyperbal).
func isBinaryRequest(r *http.Request) bool {
	ct := r.Header.Get("Content-Type")
	return ct == ContentTypeBinary || strings.HasPrefix(ct, ContentTypeBinary+";")
}

// wantsBinary reports whether the client asked for binary responses
// (Accept lists application/x-hyperbal).
func wantsBinary(r *http.Request) bool {
	return strings.Contains(r.Header.Get("Accept"), ContentTypeBinary)
}

// requestCodec labels the request body codec for the wire metrics.
func requestCodec(r *http.Request) string {
	if isBinaryRequest(r) {
		return "binary"
	}
	return "json"
}

// writeNegotiated writes the success response in the codec the client
// asked for: binEnc appends the binary rendering when Accept negotiates
// application/x-hyperbal, otherwise jsonBody is marshaled. Both render
// into a pooled buffer so the encode path allocates nothing per request
// beyond what encoding/json itself needs.
func writeNegotiated(w http.ResponseWriter, r *http.Request, status int, jsonBody any, binEnc func([]byte) []byte) {
	bp, buf := getWireBuf()
	if wantsBinary(r) {
		start := time.Now()
		buf = binEnc(buf)
		obsCodecNs.With("binary_encode").ObserveSince(start)
		obsWireTxBytes.With("binary").Add(int64(len(buf)))
		w.Header().Set("Content-Type", ContentTypeBinary)
	} else {
		start := time.Now()
		data, err := json.Marshal(jsonBody)
		if err != nil {
			putWireBuf(bp, buf)
			writeError(w, http.StatusInternalServerError, "internal", err.Error())
			return
		}
		buf = append(buf, data...)
		buf = append(buf, '\n')
		obsCodecNs.With("json_encode").ObserveSince(start)
		obsWireTxBytes.With("json").Add(int64(len(buf)))
		w.Header().Set("Content-Type", "application/json")
	}
	w.WriteHeader(status)
	_, _ = w.Write(buf)
	putWireBuf(bp, buf)
}

func (s *Server) handleCreate(w http.ResponseWriter, r *http.Request) {
	body, releaseBuf, ok := s.readBody(w, r)
	if !ok {
		return
	}
	codec := requestCodec(r)
	obsWireRxBytes.With(codec).Add(int64(len(body)))
	var (
		wcfg WireConfig
		h    *hypergraph.Hypergraph
		fp   string
	)
	if codec == "binary" {
		start := time.Now()
		var err error
		wcfg, h, fp, err = decodeCreateRequestBinary(body)
		obsCodecNs.With("binary_decode").ObserveSince(start)
		releaseBuf()
		if err != nil {
			writeError(w, http.StatusBadRequest, "bad_request", "binary: "+err.Error())
			return
		}
	} else {
		var req CreateSessionRequest
		start := time.Now()
		if err := json.Unmarshal(body, &req); err != nil {
			releaseBuf()
			writeError(w, http.StatusBadRequest, "bad_request", "invalid request body: "+err.Error())
			return
		}
		wcfg = req.Config
		var err error
		h, fp, err = req.Hypergraph.DecodeFingerprint()
		obsCodecNs.With("json_decode").ObserveSince(start)
		releaseBuf()
		if err != nil {
			writeError(w, http.StatusBadRequest, "bad_request", "hypergraph: "+err.Error())
			return
		}
	}
	cfg, err := wcfg.ToCore()
	if err != nil {
		writeError(w, http.StatusBadRequest, "bad_request", err.Error())
		return
	}
	bal, err := core.NewBalancer(cfg)
	if err != nil {
		writeError(w, http.StatusBadRequest, "bad_request", err.Error())
		return
	}

	release, ok := s.admit(w, r)
	if !ok {
		return
	}
	defer release()

	// A gateway pre-assigns the session id (X-Hyperbal-Session-ID) so the
	// id it hashes for routing is the id the replica stores; direct clients
	// leave the header empty and get a server-generated id.
	id := r.Header.Get(SessionIDHeader)
	switch {
	case id == "":
		id = newSessionID()
	case !validSessionID(id):
		writeError(w, http.StatusBadRequest, "bad_request", "invalid "+SessionIDHeader+" (want s-<32 hex>)")
		return
	case s.store.get(id) != nil:
		writeError(w, http.StatusConflict, "duplicate_session", "session id already exists")
		return
	}

	eff := bal.Config()
	key := cacheKey(eff, 0, fp, partition.Partition{}, "")
	res, origin, err := s.solveShared(r.Context(), key, func() (core.Result, error) {
		s.faultDelay(int64(obsSessionsCreated.Load() + 1))
		_, res, err := core.NewSession(bal, core.Problem{H: h})
		if err == nil {
			s.cache.put(key, res)
		}
		return res, err
	})
	if err != nil {
		writeError(w, http.StatusInternalServerError, "internal", err.Error())
		return
	}
	// Every origin takes the same construction path, so a session built
	// from a cached, shared or freshly solved result is byte-identical.
	sess := core.NewSessionWith(bal, res)
	cached := origin != originLeader

	entry := &session{id: id, cfg: eff, sess: sess, baseH: h, baseFP: fp}
	s.clearHandoff(id)
	// The pre-solve duplicate check is only a cheap fast path; the insert
	// itself must be atomic or two concurrent creates with the same
	// pre-assigned id both pass it and the loser silently overwrites.
	if !s.store.addIfAbsent(entry) {
		writeError(w, http.StatusConflict, "duplicate_session", "session id already exists")
		return
	}
	obsSessionsCreated.Inc()
	s.cfg.Logf("server: session %s created (k=%d method=%s |V|=%d cached=%v)",
		entry.id, eff.K, eff.Method, h.NumVertices(), cached)
	resp := SessionResponse{
		SessionID: entry.id,
		Result:    wireResult(0, res, cached, true),
	}
	writeNegotiated(w, r, http.StatusCreated, resp, func(buf []byte) []byte {
		return appendSessionResponseBinary(buf, resp)
	})
}

func (s *Server) handleEpoch(w http.ResponseWriter, r *http.Request) {
	entry, releaseSess := s.store.acquire(r.PathValue("id"))
	if entry == nil {
		s.sessionGone(w, r.PathValue("id"))
		return
	}
	defer releaseSess()
	body, releaseBuf, ok := s.readBody(w, r)
	if !ok {
		return
	}
	codec := requestCodec(r)
	obsWireRxBytes.With(codec).Add(int64(len(body)))
	var req binEpochRequest
	if codec == "binary" {
		start := time.Now()
		breq, err := decodeEpochRequestBinary(body)
		obsCodecNs.With("binary_decode").ObserveSince(start)
		releaseBuf()
		if err != nil {
			writeError(w, http.StatusBadRequest, "bad_request", "binary: "+err.Error())
			return
		}
		req = *breq
	} else {
		var jreq EpochRequest
		start := time.Now()
		if err := json.Unmarshal(body, &jreq); err != nil {
			releaseBuf()
			writeError(w, http.StatusBadRequest, "bad_request", "invalid request body: "+err.Error())
			return
		}
		h, fp, err := jreq.Hypergraph.DecodeFingerprint()
		obsCodecNs.With("json_decode").ObserveSince(start)
		releaseBuf()
		if err != nil {
			writeError(w, http.StatusBadRequest, "bad_request", "hypergraph: "+err.Error())
			return
		}
		req = binEpochRequest{
			H: h, FP: fp,
			Inherited:        jreq.Inherited,
			Epoch:            jreq.Epoch,
			OnlyIfUnbalanced: jreq.OnlyIfUnbalanced,
		}
	}
	h, fp := req.H, req.FP

	release, ok := s.admit(w, r)
	if !ok {
		return
	}
	defer release()

	// Per-session serialization: one epoch at a time per session, while
	// other sessions proceed on other workers.
	entry.mu.Lock()
	defer entry.mu.Unlock()

	epoch := entry.sess.Epoch()
	if req.Epoch > 0 && req.Epoch != epoch+1 {
		writeJSON(w, http.StatusConflict, ErrorResponse{
			Error: fmt.Sprintf("expected epoch %d, session is at %d", req.Epoch, epoch),
			Code:  "epoch_conflict",
			Epoch: epoch,
		})
		return
	}

	old := entry.sess.Current()
	structural := h.NumVertices() != len(old.Parts)
	inherited := old
	if structural {
		if len(req.Inherited) != h.NumVertices() {
			writeError(w, http.StatusBadRequest, "bad_request", fmt.Sprintf(
				"vertex set changed (%d -> %d); submit `inherited` with one part per new vertex",
				len(old.Parts), h.NumVertices()))
			return
		}
	}
	if len(req.Inherited) > 0 {
		for v, p := range req.Inherited {
			if p < 0 || int(p) >= entry.cfg.K {
				writeError(w, http.StatusBadRequest, "bad_request", fmt.Sprintf(
					"inherited[%d] = %d out of range [0,%d)", v, p, entry.cfg.K))
				return
			}
		}
		inherited = partition.Partition{Parts: req.Inherited, K: entry.cfg.K}
	}

	if req.OnlyIfUnbalanced && !structural {
		should, err := entry.sess.ShouldRebalance(core.Problem{H: h})
		if err != nil {
			writeError(w, http.StatusInternalServerError, "internal", err.Error())
			return
		}
		if !should {
			obsEpochSkipped.Inc()
			cur := entry.sess.Current()
			resp := SessionResponse{
				SessionID: entry.id,
				Result: WireResult{
					Epoch:      epoch,
					K:          cur.K,
					Parts:      cur.Parts,
					CommVolume: partition.CutSize(h, cur),
					Rebalanced: false,
				},
			}
			writeNegotiated(w, r, http.StatusOK, resp, func(buf []byte) []byte {
				return appendSessionResponseBinary(buf, resp)
			})
			return
		}
	}

	key := cacheKey(entry.cfg, epoch+1, fp, inherited, "")
	res, origin, err := s.solveShared(r.Context(), key, func() (core.Result, error) {
		s.faultDelay(int64(obsEpochs.Load() + 1))
		start := time.Now()
		var res core.Result
		var err error
		if structural || len(req.Inherited) > 0 {
			res, err = entry.sess.RebalanceInherited(core.Problem{H: h}, inherited)
		} else {
			res, err = entry.sess.Rebalance(core.Problem{H: h})
		}
		if err == nil {
			obsEpochColdNs.ObserveSince(start)
			s.cache.put(key, res)
		}
		return res, err
	})
	if err != nil {
		writeError(w, http.StatusInternalServerError, "internal", err.Error())
		return
	}
	cached := origin != originLeader
	if cached {
		entry.sess.Adopt(res)
	}
	obsEpochs.Inc()
	entry.baseH, entry.baseFP = h, fp

	entry.lastMig = migrationSummary(h, inherited, res.Partition)
	resp := SessionResponse{
		SessionID: entry.id,
		Result:    wireResult(entry.sess.Epoch(), res, cached, true),
	}
	writeNegotiated(w, r, http.StatusOK, resp, func(buf []byte) []byte {
		return appendSessionResponseBinary(buf, resp)
	})
}

// handleDeltaEpoch is the PATCH-style epoch submission: the epoch's
// hypergraph arrives as a delta against the session's last accepted
// hypergraph, keyed by base fingerprint. A base mismatch (the session
// advanced since the client computed the delta, or the server lost the
// base) is a 409 "fingerprint_mismatch" carrying the current base — the
// client's hard signal to fall back to a full epoch submission.
func (s *Server) handleDeltaEpoch(w http.ResponseWriter, r *http.Request) {
	entry, releaseSess := s.store.acquire(r.PathValue("id"))
	if entry == nil {
		s.sessionGone(w, r.PathValue("id"))
		return
	}
	defer releaseSess()
	body, releaseBuf, ok := s.readBody(w, r)
	if !ok {
		return
	}
	codec := requestCodec(r)
	bodyBytes := int64(len(body))
	obsWireRxBytes.With(codec).Add(bodyBytes)
	var req binDeltaRequest
	if codec == "binary" {
		start := time.Now()
		breq, err := decodeDeltaRequestBinary(body)
		obsCodecNs.With("binary_decode").ObserveSince(start)
		releaseBuf()
		if err != nil {
			writeError(w, http.StatusBadRequest, "bad_request", "binary: "+err.Error())
			return
		}
		req = *breq
	} else {
		var jreq DeltaEpochRequest
		start := time.Now()
		err := json.Unmarshal(body, &jreq)
		obsCodecNs.With("json_decode").ObserveSince(start)
		releaseBuf()
		if err != nil {
			writeError(w, http.StatusBadRequest, "bad_request", "invalid request body: "+err.Error())
			return
		}
		req = binDeltaRequest{
			Delta:     &jreq.Delta,
			Inherited: jreq.Inherited,
			Epoch:     jreq.Epoch,
			Warm:      jreq.Warm,
		}
	}

	release, ok := s.admit(w, r)
	if !ok {
		return
	}
	defer release()

	entry.mu.Lock()
	defer entry.mu.Unlock()

	epoch := entry.sess.Epoch()
	if req.Epoch > 0 && req.Epoch != epoch+1 {
		writeJSON(w, http.StatusConflict, ErrorResponse{
			Error: fmt.Sprintf("expected epoch %d, session is at %d", req.Epoch, epoch),
			Code:  "epoch_conflict",
			Epoch: epoch,
			Base:  entry.baseFP,
		})
		return
	}
	if entry.baseH == nil || req.Delta.Base != entry.baseFP {
		obsDeltaMismatches.Inc()
		writeJSON(w, http.StatusConflict, ErrorResponse{
			Error: fmt.Sprintf("delta base %s does not match session base %s; resubmit a full epoch", req.Delta.Base, entry.baseFP),
			Code:  "fingerprint_mismatch",
			Epoch: epoch,
			Base:  entry.baseFP,
		})
		return
	}
	h, err := req.Delta.Apply(entry.baseH)
	if err != nil {
		writeError(w, http.StatusBadRequest, "bad_request", "delta: "+err.Error())
		return
	}
	fp := h.Fingerprint()

	old := entry.sess.Current()
	structural := h.NumVertices() != len(old.Parts)
	inherited := old
	if len(req.Inherited) > 0 {
		if len(req.Inherited) != h.NumVertices() {
			writeError(w, http.StatusBadRequest, "bad_request", fmt.Sprintf(
				"inherited covers %d vertices, delta result has %d", len(req.Inherited), h.NumVertices()))
			return
		}
		for v, p := range req.Inherited {
			if p < 0 || int(p) >= entry.cfg.K {
				writeError(w, http.StatusBadRequest, "bad_request", fmt.Sprintf(
					"inherited[%d] = %d out of range [0,%d)", v, p, entry.cfg.K))
				return
			}
		}
		inherited = partition.Partition{Parts: req.Inherited, K: entry.cfg.K}
	} else if structural {
		// Derive the inherited assignment from the delta's vertex map:
		// mapped vertices keep their parts; new vertices go to the
		// currently lightest part (deterministic: ties break low).
		inherited = deriveInherited(h, old, req.Delta, entry.cfg.K)
	}

	var dirty []bool
	warmKey := ""
	if req.Warm {
		dirty = req.Delta.DirtyVertices(entry.baseH, h)
		warmKey = "warm:" + req.Delta.Digest()
		d := 0
		for _, b := range dirty {
			if b {
				d++
			}
		}
		if n := h.NumVertices(); n > 0 {
			obsDeltaDirtyPermille.Observe(int64(d * 1000 / n))
		}
	}

	key := cacheKey(entry.cfg, epoch+1, fp, inherited, warmKey)
	res, origin, err := s.solveShared(r.Context(), key, func() (core.Result, error) {
		s.faultDelay(int64(obsEpochs.Load() + 1))
		start := time.Now()
		var res core.Result
		var err error
		switch {
		case req.Warm && (structural || len(req.Inherited) > 0):
			res, err = entry.sess.RebalanceWarmInherited(core.Problem{H: h}, inherited, dirty)
		case req.Warm:
			res, err = entry.sess.RebalanceWarm(core.Problem{H: h}, dirty)
		case structural || len(req.Inherited) > 0:
			res, err = entry.sess.RebalanceInherited(core.Problem{H: h}, inherited)
		default:
			res, err = entry.sess.Rebalance(core.Problem{H: h})
		}
		if err == nil {
			if req.Warm {
				obsEpochWarmNs.ObserveSince(start)
			} else {
				obsEpochColdNs.ObserveSince(start)
			}
			s.cache.put(key, res)
		}
		return res, err
	})
	if err != nil {
		writeError(w, http.StatusInternalServerError, "internal", err.Error())
		return
	}
	cached := origin != originLeader
	if cached {
		entry.sess.Adopt(res)
	}
	obsEpochs.Inc()
	obsDeltaEpochs.Inc()
	if bodyBytes > 0 {
		obsDeltaBytes.Add(bodyBytes)
	}
	obsDeltaFullBytesEst.Add(fullWireEstimate(h))
	entry.baseH, entry.baseFP = h, fp

	entry.lastMig = migrationSummary(h, inherited, res.Partition)
	wr := wireResult(entry.sess.Epoch(), res, cached, true)
	wr.Warm = res.Warm
	resp := SessionResponse{SessionID: entry.id, Result: wr}
	writeNegotiated(w, r, http.StatusOK, resp, func(buf []byte) []byte {
		return appendSessionResponseBinary(buf, resp)
	})
}

// deriveInherited maps the previous distribution through a structural
// delta: vertices the delta carried over keep their parts; brand-new
// vertices are assigned greedily to the lightest part in vertex order.
func deriveInherited(h *hypergraph.Hypergraph, old partition.Partition, d *hypergraph.Delta, k int) partition.Partition {
	n := h.NumVertices()
	parts := make([]int32, n)
	w := make([]int64, k)
	var news []int
	for v := 0; v < n; v++ {
		b := int32(v)
		if d.VertexMap != nil {
			b = d.VertexMap[v]
		}
		if b >= 0 && int(b) < len(old.Parts) {
			parts[v] = old.Parts[b]
			w[parts[v]] += h.Weight(v)
		} else {
			news = append(news, v)
		}
	}
	for _, v := range news {
		best := 0
		for p := 1; p < k; p++ {
			if w[p] < w[best] {
				best = p
			}
		}
		parts[v] = int32(best)
		w[best] += h.Weight(v)
	}
	return partition.Partition{Parts: parts, K: k}
}

// fullWireEstimate approximates the JSON body size of a full-epoch
// submission of h (the bytes a delta saved): ~7 bytes per pin, ~20 per
// net, ~14 per vertex for weights+sizes, plus envelope.
func fullWireEstimate(h *hypergraph.Hypergraph) int64 {
	return 64 + int64(h.NumPins())*7 + int64(h.NumNets())*20 + int64(h.NumVertices())*14
}

func (s *Server) handleInfo(w http.ResponseWriter, r *http.Request) {
	entry, releaseSess := s.store.acquire(r.PathValue("id"))
	if entry == nil {
		s.sessionGone(w, r.PathValue("id"))
		return
	}
	defer releaseSess()
	entry.mu.Lock()
	defer entry.mu.Unlock()
	last := entry.sess.LastResult()
	info := SessionInfo{
		SessionID:  entry.id,
		Config:     WireConfigFrom(entry.cfg),
		Epoch:      entry.sess.Epoch(),
		HistoryLen: entry.sess.HistoryLen(),
		TotalCost:  entry.sess.TotalCost(entry.cfg.Alpha),
		Last:       wireResult(entry.sess.Epoch(), last, false, true),
	}
	writeNegotiated(w, r, http.StatusOK, info, func(buf []byte) []byte {
		return appendSessionInfoBinary(buf, info)
	})
}

func (s *Server) handlePartition(w http.ResponseWriter, r *http.Request) {
	entry, releaseSess := s.store.acquire(r.PathValue("id"))
	if entry == nil {
		s.sessionGone(w, r.PathValue("id"))
		return
	}
	defer releaseSess()
	entry.mu.Lock()
	defer entry.mu.Unlock()
	cur := entry.sess.Current()
	resp := PartitionResponse{
		SessionID: entry.id,
		Epoch:     entry.sess.Epoch(),
		K:         cur.K,
		Parts:     cur.Parts,
		Migration: entry.lastMig,
	}
	writeNegotiated(w, r, http.StatusOK, resp, func(buf []byte) []byte {
		return appendPartitionResponseBinary(buf, resp)
	})
}

func (s *Server) handleDelete(w http.ResponseWriter, r *http.Request) {
	if s.store.remove(r.PathValue("id")) {
		obsSessionsClosed.Inc()
		w.WriteHeader(http.StatusNoContent)
		return
	}
	s.sessionGone(w, r.PathValue("id"))
}

func (s *Server) handleHealthz(w http.ResponseWriter, r *http.Request) {
	status := "ok"
	code := http.StatusOK
	if s.adm.isDraining() {
		status = "draining"
		code = http.StatusServiceUnavailable
	}
	writeJSON(w, code, map[string]any{"status": status, "sessions": s.store.len()})
}

// wireResult renders a core.Result.
func wireResult(epoch int64, res core.Result, cached, rebalanced bool) WireResult {
	return WireResult{
		Epoch:           epoch,
		K:               res.Partition.K,
		Parts:           res.Partition.Parts,
		CommVolume:      res.CommVolume,
		MigrationVolume: res.MigrationVolume,
		Moved:           res.Moved,
		RepartMs:        float64(res.RepartTime.Microseconds()) / 1000,
		Cached:          cached,
		Rebalanced:      rebalanced,
	}
}

// migrationSummary condenses the migration plan from old to new under h
// (nil when the plan cannot be built, e.g. mismatched K — not reachable
// through the handlers).
func migrationSummary(h *hypergraph.Hypergraph, old, new partition.Partition) *MigrationSummary {
	plan, err := migrate.NewPlan(h, old, new)
	if err != nil {
		return nil
	}
	return &MigrationSummary{
		Moves:       len(plan.Moves),
		TotalVolume: plan.TotalVolume(),
		MaxOutbound: plan.MaxOutbound(),
		MaxInbound:  plan.MaxInbound(),
		Volume:      plan.Volume,
	}
}
