package server

import (
	"crypto/sha256"
	"encoding/binary"
	"math"
	"sort"
)

// ring is the consistent-hash ring the distributed serving tier routes on.
// Replica base URLs are placed on a 64-bit ring at ringVnodes points each;
// a key's candidate order is the distinct replicas encountered walking
// clockwise from the key's point. Two properties matter:
//
//   - Determinism: every node (gateway or replica) given the same replica
//     list computes the same candidate order for every key, so the gateway's
//     routing, a replica's cache-key ownership, and a draining replica's
//     handoff successor all agree without coordination.
//   - Stability: removing a replica only reroutes the keys it owned — each
//     moves to the next candidate on its own walk, which is exactly where
//     drain-time handoff sent the session.
//
// Bounded-load placement (pickBounded) is the Consistent Hashing with
// Bounded Loads policy: walk the key's candidates and take the first whose
// current load is under ceil(c · total/alive), so one hot ring segment
// cannot overload a single replica while placements stay ring-affine.
type ring struct {
	urls   []string
	points []ringPoint // sorted by hash
}

type ringPoint struct {
	hash uint64
	idx  int // index into urls
}

// ringVnodes is the virtual-node count per replica: enough to spread
// ownership within a few percent at 3-16 replicas, cheap to rebuild.
const ringVnodes = 64

func newRing(urls []string) *ring {
	r := &ring{urls: urls}
	for i, u := range urls {
		for v := 0; v < ringVnodes; v++ {
			sum := sha256.Sum256(append([]byte(u), byte('#'), byte(v), byte(v>>8)))
			r.points = append(r.points, ringPoint{hash: binary.BigEndian.Uint64(sum[:8]), idx: i})
		}
	}
	sort.Slice(r.points, func(a, b int) bool {
		p, q := r.points[a], r.points[b]
		if p.hash != q.hash {
			return p.hash < q.hash
		}
		return p.idx < q.idx
	})
	return r
}

// hashKey maps an arbitrary key (session id, cache key) to its ring point.
func hashKey(key string) uint64 {
	sum := sha256.Sum256([]byte(key))
	return binary.BigEndian.Uint64(sum[:8])
}

// candidates returns every replica index in the key's preference order:
// the walk clockwise from the key's point, keeping the first occurrence of
// each replica.
func (r *ring) candidates(key string) []int {
	if r == nil || len(r.urls) == 0 {
		return nil
	}
	h := hashKey(key)
	start := sort.Search(len(r.points), func(i int) bool { return r.points[i].hash >= h })
	seen := make([]bool, len(r.urls))
	order := make([]int, 0, len(r.urls))
	for i := 0; i < len(r.points) && len(order) < len(r.urls); i++ {
		p := r.points[(start+i)%len(r.points)]
		if !seen[p.idx] {
			seen[p.idx] = true
			order = append(order, p.idx)
		}
	}
	return order
}

// owner returns the first candidate URL for key, "" for an empty ring.
func (r *ring) owner(key string) string {
	c := r.candidates(key)
	if len(c) == 0 {
		return ""
	}
	return r.urls[c[0]]
}

// pickBounded returns the first alive candidate for key whose load is
// within the bounded-load cap ceil(factor · (total+1)/alive), falling back
// to the least-loaded alive candidate when every one is at the cap (only
// possible with factor <= 1). Returns -1 when no candidate is alive.
func (r *ring) pickBounded(key string, load func(int) int, alive func(int) bool, factor float64) int {
	if factor <= 0 {
		factor = 1.25
	}
	total, nAlive := 0, 0
	for i := range r.urls {
		if alive(i) {
			nAlive++
			total += load(i)
		}
	}
	if nAlive == 0 {
		return -1
	}
	cap_ := int(math.Ceil(factor * float64(total+1) / float64(nAlive)))
	best, bestLoad := -1, math.MaxInt
	for _, c := range r.candidates(key) {
		if !alive(c) {
			continue
		}
		l := load(c)
		if l < cap_ {
			return c
		}
		if l < bestLoad {
			best, bestLoad = c, l
		}
	}
	return best
}
