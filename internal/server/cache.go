package server

import (
	"container/list"
	"crypto/sha256"
	"encoding/binary"
	"fmt"
	"sync"

	"hyperbal/internal/core"
	"hyperbal/internal/partition"
)

// partitionCache is the fingerprint-keyed repartition-result cache: the
// key covers everything that determines a load-balance result — the
// hypergraph content fingerprint, the effective configuration, the epoch
// number (it seeds the partitioner) and the previous distribution — so a
// hit is exactly the result the partitioner would recompute, and identical
// epoch submissions (retries, or N sessions running the same workload)
// are served without re-partitioning. Config.Parallelism is deliberately
// excluded: results are identical for every parallelism value.
type partitionCache struct {
	mu  sync.Mutex
	max int
	ll  *list.List // front = most recently used
	m   map[string]*list.Element
}

type cacheEntry struct {
	key   string
	parts []int32
	k     int
	comm  int64
	mig   int64
	moved int
}

func newPartitionCache(max int) *partitionCache {
	if max <= 0 {
		return nil
	}
	return &partitionCache{max: max, ll: list.New(), m: make(map[string]*list.Element)}
}

// cacheKey derives the cache key for partitioning `fp` at `epoch` under
// cfg given the previous distribution (zero-value partition for the
// epoch-0 static partitioning). warm is "" for the cold path — a
// cold-applied delta epoch produces the exact result a full submission of
// the same hypergraph would, so the two share cache entries — and
// "warm:"+delta.Digest() for warm-started delta epochs, whose result
// additionally depends on the delta's dirty region.
func cacheKey(cfg core.Config, epoch int64, fp string, old partition.Partition, warm string) string {
	h := sha256.New()
	fmt.Fprintf(h, "k=%d a=%d eps=%g seed=%d m=%d mc=%d ct=%d is=%d rp=%d epoch=%d oldk=%d fp=%s warm=%s;",
		cfg.K, cfg.Alpha, cfg.Imbalance, cfg.Seed, cfg.Method,
		cfg.MaxClique, cfg.CoarsenTo, cfg.InitialStarts, cfg.RefinePasses,
		epoch, old.K, fp, warm)
	var buf [4]byte
	for _, p := range old.Parts {
		binary.LittleEndian.PutUint32(buf[:], uint32(p))
		h.Write(buf[:])
	}
	return string(h.Sum(nil))
}

// get returns the cached result (with a freshly cloned partition) and
// whether it was present.
func (c *partitionCache) get(key string) (core.Result, bool) {
	if c == nil {
		return core.Result{}, false
	}
	c.mu.Lock()
	el, ok := c.m[key]
	if !ok {
		c.mu.Unlock()
		obsCacheMisses.Inc()
		return core.Result{}, false
	}
	c.ll.MoveToFront(el)
	e := el.Value.(*cacheEntry)
	res := core.Result{
		Partition:       partition.Partition{Parts: append([]int32(nil), e.parts...), K: e.k},
		CommVolume:      e.comm,
		MigrationVolume: e.mig,
		Moved:           e.moved,
	}
	c.mu.Unlock()
	obsCacheHits.Inc()
	return res, true
}

// put stores a result, evicting the least recently used entry past the
// capacity bound.
func (c *partitionCache) put(key string, res core.Result) {
	if c == nil {
		return
	}
	c.mu.Lock()
	defer c.mu.Unlock()
	// The gauge is refreshed on every exit path — including the
	// existing-key early return — so it can never go stale relative to the
	// real entry count (it used to be set only on the insert path).
	defer func() { obsCacheEntries.Set(int64(c.ll.Len())) }()
	if el, ok := c.m[key]; ok {
		c.ll.MoveToFront(el)
		return
	}
	e := &cacheEntry{
		key:   key,
		parts: append([]int32(nil), res.Partition.Parts...),
		k:     res.Partition.K,
		comm:  res.CommVolume,
		mig:   res.MigrationVolume,
		moved: res.Moved,
	}
	c.m[key] = c.ll.PushFront(e)
	for c.ll.Len() > c.max {
		last := c.ll.Back()
		c.ll.Remove(last)
		delete(c.m, last.Value.(*cacheEntry).key)
	}
}

// len returns the current entry count.
func (c *partitionCache) len() int {
	if c == nil {
		return 0
	}
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.ll.Len()
}
