package server_test

// End-to-end tests for the balancerd serving tier, driven through the
// public client façade against an httptest listener. The acceptance
// criterion is byte-identical equivalence: a partition obtained through
// the service must equal the one computed by an in-process core.Session
// with the same seed and config.

import (
	"bytes"
	"context"
	"encoding/json"
	"fmt"
	"net/http"
	"net/http/httptest"
	"sync"
	"testing"
	"time"

	"hyperbal"
	"hyperbal/internal/core"
	"hyperbal/internal/datasets"
	"hyperbal/internal/dynamics"
	"hyperbal/internal/graph"
	"hyperbal/internal/mpi"
	"hyperbal/internal/partition"
	"hyperbal/internal/server"
)

func newTestServer(t *testing.T, cfg server.Config) (*server.Server, *httptest.Server, *hyperbal.Client) {
	t.Helper()
	srv := server.New(cfg)
	ts := httptest.NewServer(srv.Handler())
	t.Cleanup(func() { ts.Close(); srv.Close() })
	client := hyperbal.NewClient(ts.URL, hyperbal.ClientOptions{MaxRetries: 2, Backoff: 5 * time.Millisecond})
	return srv, ts, client
}

// epochTrace is one session's partition history: parts per epoch plus
// whether each response came from the server's cache.
type epochTrace struct {
	parts  [][]int32
	cached []bool
}

// runRemote drives one full session through the service.
func runRemote(t *testing.T, client *hyperbal.Client, cfg core.Config, dsName string, n int, seed int64, epochs int, dynamic string) epochTrace {
	t.Helper()
	ctx := context.Background()
	g, err := datasets.Generate(dsName, n, seed)
	if err != nil {
		t.Fatal(err)
	}
	h := graph.ToHypergraph(g)
	sess, first, err := client.CreateSession(ctx, cfg, h)
	if err != nil {
		t.Fatal(err)
	}
	tr := epochTrace{parts: [][]int32{first.Partition.Parts}, cached: []bool{first.Cached}}
	gen := newGen(t, dynamic, g, first.Partition, cfg.K, seed)
	for e := 1; e <= epochs; e++ {
		prob, old := gen.Next()
		res, err := sess.SubmitEpochInherited(ctx, prob.H, old)
		if err != nil {
			t.Fatalf("epoch %d: %v", e, err)
		}
		if res.Epoch != int64(e) {
			t.Fatalf("epoch %d: server reports epoch %d", e, res.Epoch)
		}
		tr.parts = append(tr.parts, res.Partition.Parts)
		tr.cached = append(tr.cached, res.Cached)
		if err := gen.Observe(res.Partition); err != nil {
			t.Fatal(err)
		}
	}
	if err := sess.Close(ctx); err != nil {
		t.Fatal(err)
	}
	return tr
}

// runLocal mirrors runRemote with an in-process core.Session.
func runLocal(t *testing.T, cfg core.Config, dsName string, n int, seed int64, epochs int, dynamic string) epochTrace {
	t.Helper()
	g, err := datasets.Generate(dsName, n, seed)
	if err != nil {
		t.Fatal(err)
	}
	h := graph.ToHypergraph(g)
	bal, err := core.NewBalancer(cfg)
	if err != nil {
		t.Fatal(err)
	}
	sess, first, err := core.NewSession(bal, core.Problem{H: h})
	if err != nil {
		t.Fatal(err)
	}
	tr := epochTrace{parts: [][]int32{first.Partition.Parts}}
	gen := newGen(t, dynamic, g, first.Partition, cfg.K, seed)
	for e := 1; e <= epochs; e++ {
		prob, old := gen.Next()
		res, err := sess.RebalanceInherited(prob, old)
		if err != nil {
			t.Fatalf("epoch %d: %v", e, err)
		}
		tr.parts = append(tr.parts, res.Partition.Parts)
		if err := gen.Observe(res.Partition); err != nil {
			t.Fatal(err)
		}
	}
	return tr
}

func newGen(t *testing.T, dynamic string, g *graph.Graph, init partition.Partition, k int, seed int64) dynamics.Generator {
	t.Helper()
	var gen dynamics.Generator
	var err error
	switch dynamic {
	case "structure":
		gen, err = dynamics.NewStructural(g, init, k, 0.25, 0.5, seed*3+1)
	case "weights":
		gen, err = dynamics.NewRefinement(g, init, k, 0.1, 1.5, 7.5, seed*3+2)
	default:
		t.Fatalf("unknown dynamic %q", dynamic)
	}
	if err != nil {
		t.Fatal(err)
	}
	return gen
}

// TestE2EEquivalence: the service must be a transparent remoting of
// core.Session — byte-identical partitions per epoch, same seed schedule,
// for both hypergraph methods and both drift modes.
func TestE2EEquivalence(t *testing.T) {
	cases := []struct {
		method  core.Method
		dynamic string
	}{
		{core.HypergraphRepart, "weights"},
		{core.HypergraphRepart, "structure"},
		{core.HypergraphScratch, "weights"},
		{core.HypergraphScratch, "structure"},
	}
	_, _, client := newTestServer(t, server.Config{})
	for _, tc := range cases {
		t.Run(fmt.Sprintf("%s_%s", tc.method, tc.dynamic), func(t *testing.T) {
			cfg := core.Config{K: 4, Alpha: 50, Seed: 11, Method: tc.method}
			const n, epochs = 300, 3
			remote := runRemote(t, client, cfg, "xyce680s", n, 11, epochs, tc.dynamic)
			local := runLocal(t, cfg, "xyce680s", n, 11, epochs, tc.dynamic)
			if len(remote.parts) != len(local.parts) {
				t.Fatalf("epoch count mismatch: %d vs %d", len(remote.parts), len(local.parts))
			}
			for e := range remote.parts {
				if !int32Equal(remote.parts[e], local.parts[e]) {
					t.Errorf("epoch %d: served partition differs from in-process result", e)
				}
			}
		})
	}
}

// TestCacheHit: an identical workload replayed on the same server must be
// answered from the partition cache, byte-identical, without recomputing.
func TestCacheHit(t *testing.T) {
	_, _, client := newTestServer(t, server.Config{})
	cfg := core.Config{K: 4, Alpha: 50, Seed: 5, Method: core.HypergraphRepart}
	first := runRemote(t, client, cfg, "auto", 300, 5, 2, "weights")
	for e, c := range first.cached {
		if c {
			t.Fatalf("cold run epoch %d unexpectedly cached", e)
		}
	}
	replay := runRemote(t, client, cfg, "auto", 300, 5, 2, "weights")
	for e, c := range replay.cached {
		if !c {
			t.Errorf("replay epoch %d not served from cache", e)
		}
		if !int32Equal(replay.parts[e], first.parts[e]) {
			t.Errorf("replay epoch %d: cached partition differs", e)
		}
	}
}

// TestCacheDisabled: CacheEntries < 0 must compute every epoch.
func TestCacheDisabled(t *testing.T) {
	_, _, client := newTestServer(t, server.Config{CacheEntries: -1})
	cfg := core.Config{K: 4, Alpha: 50, Seed: 5, Method: core.HypergraphRepart}
	a := runRemote(t, client, cfg, "auto", 200, 5, 1, "weights")
	b := runRemote(t, client, cfg, "auto", 200, 5, 1, "weights")
	for e := range b.cached {
		if b.cached[e] {
			t.Errorf("epoch %d cached with the cache disabled", e)
		}
		if !int32Equal(a.parts[e], b.parts[e]) {
			t.Errorf("epoch %d: determinism lost without cache", e)
		}
	}
}

// postEpoch submits a raw epoch request without client-side retries.
func postEpoch(t *testing.T, baseURL, id string, req server.EpochRequest) (int, server.SessionResponse, server.ErrorResponse) {
	t.Helper()
	body, err := json.Marshal(req)
	if err != nil {
		t.Fatal(err)
	}
	resp, err := http.Post(baseURL+"/v1/sessions/"+id+"/epochs", "application/json", bytes.NewReader(body))
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	var ok server.SessionResponse
	var fail server.ErrorResponse
	if resp.StatusCode == http.StatusOK {
		if err := json.NewDecoder(resp.Body).Decode(&ok); err != nil {
			t.Fatal(err)
		}
	} else {
		_ = json.NewDecoder(resp.Body).Decode(&fail)
	}
	return resp.StatusCode, ok, fail
}

// createRaw creates a session and returns its id and the epoch request
// template (the same hypergraph resubmitted as an identical epoch).
func createRaw(t *testing.T, ts *httptest.Server, cfg server.WireConfig, seed int64, n int) (string, server.WireHypergraph) {
	t.Helper()
	g, err := datasets.Generate("xyce680s", n, seed)
	if err != nil {
		t.Fatal(err)
	}
	wh := server.EncodeHypergraph(graph.ToHypergraph(g))
	body, err := json.Marshal(server.CreateSessionRequest{Config: cfg, Hypergraph: wh})
	if err != nil {
		t.Fatal(err)
	}
	resp, err := http.Post(ts.URL+"/v1/sessions", "application/json", bytes.NewReader(body))
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusCreated {
		t.Fatalf("create: status %d", resp.StatusCode)
	}
	var sr server.SessionResponse
	if err := json.NewDecoder(resp.Body).Decode(&sr); err != nil {
		t.Fatal(err)
	}
	return sr.SessionID, wh
}

// TestAdmissionBackpressure: with one worker, no queue, and injected job
// delay, a concurrent burst must see both successes and 429 "busy"
// rejections — and every rejection must leave session state untouched.
func TestAdmissionBackpressure(t *testing.T) {
	_, ts, _ := newTestServer(t, server.Config{
		Workers:    1,
		QueueDepth: -1, // no queue beyond the single worker
		Fault:      &mpi.FaultPlan{Seed: 1, MaxDelay: 80 * time.Millisecond},
	})
	id, wh := createRaw(t, ts, server.WireConfig{K: 4, Alpha: 50, Seed: 2}, 2, 200)

	const burst = 8
	var mu sync.Mutex
	counts := map[int]int{}
	var wg sync.WaitGroup
	for i := 0; i < burst; i++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			status, _, fail := postEpoch(t, ts.URL, id, server.EpochRequest{Hypergraph: wh})
			mu.Lock()
			counts[status]++
			mu.Unlock()
			if status == http.StatusTooManyRequests && fail.Code != "busy" {
				t.Errorf("429 with code %q, want busy", fail.Code)
			}
		}()
	}
	wg.Wait()
	if counts[http.StatusOK] == 0 {
		t.Errorf("burst saw no successes: %v", counts)
	}
	if counts[http.StatusTooManyRequests] == 0 {
		t.Errorf("burst saw no 429 backpressure: %v", counts)
	}
	if counts[http.StatusOK]+counts[http.StatusTooManyRequests] != burst {
		t.Errorf("unexpected statuses in burst: %v", counts)
	}
}

// TestDrain: during drain, in-flight epochs complete with 200, new
// submissions get 503 "draining", healthz flips to 503, and Drain returns
// once the in-flight work is done.
func TestDrain(t *testing.T) {
	srv, ts, _ := newTestServer(t, server.Config{
		Workers: 2,
		Fault:   &mpi.FaultPlan{Seed: 3, MaxDelay: 120 * time.Millisecond},
	})
	id, wh := createRaw(t, ts, server.WireConfig{K: 4, Alpha: 50, Seed: 3}, 3, 200)

	inflight := make(chan int, 1)
	go func() {
		status, _, _ := postEpoch(t, ts.URL, id, server.EpochRequest{Hypergraph: wh})
		inflight <- status
	}()
	time.Sleep(30 * time.Millisecond) // let the epoch get admitted

	drained := make(chan error, 1)
	go func() {
		ctx, cancel := context.WithTimeout(context.Background(), 5*time.Second)
		defer cancel()
		drained <- srv.Drain(ctx)
	}()
	for !srv.Draining() {
		time.Sleep(time.Millisecond)
	}

	status, _, fail := postEpoch(t, ts.URL, id, server.EpochRequest{Hypergraph: wh})
	if status != http.StatusServiceUnavailable || fail.Code != "draining" {
		t.Errorf("submission during drain: status %d code %q, want 503 draining", status, fail.Code)
	}
	if resp, err := http.Get(ts.URL + "/healthz"); err != nil {
		t.Fatal(err)
	} else {
		resp.Body.Close()
		if resp.StatusCode != http.StatusServiceUnavailable {
			t.Errorf("healthz during drain: status %d, want 503", resp.StatusCode)
		}
	}

	if status := <-inflight; status != http.StatusOK {
		t.Errorf("in-flight epoch during drain: status %d, want 200", status)
	}
	if err := <-drained; err != nil {
		t.Errorf("drain: %v", err)
	}
}

// TestEpochConflict: a tagged submission for the wrong epoch must be
// rejected with 409 and the session's actual epoch, without advancing it.
func TestEpochConflict(t *testing.T) {
	_, ts, _ := newTestServer(t, server.Config{})
	id, wh := createRaw(t, ts, server.WireConfig{K: 4, Alpha: 50, Seed: 4}, 4, 200)

	status, _, fail := postEpoch(t, ts.URL, id, server.EpochRequest{Hypergraph: wh, Epoch: 5})
	if status != http.StatusConflict || fail.Code != "epoch_conflict" {
		t.Fatalf("status %d code %q, want 409 epoch_conflict", status, fail.Code)
	}
	if fail.Epoch != 0 {
		t.Errorf("conflict reports session epoch %d, want 0", fail.Epoch)
	}
	// The correctly-tagged submission still lands.
	status, ok, _ := postEpoch(t, ts.URL, id, server.EpochRequest{Hypergraph: wh, Epoch: 1})
	if status != http.StatusOK || ok.Result.Epoch != 1 {
		t.Fatalf("tagged submission: status %d epoch %d, want 200 epoch 1", status, ok.Result.Epoch)
	}
}

// TestConcurrentEpochs: untagged concurrent submissions to one session are
// serialized per session; every one must land and the epoch counter must
// advance exactly once per submission (run under -race).
func TestConcurrentEpochs(t *testing.T) {
	_, ts, client := newTestServer(t, server.Config{})
	id, wh := createRaw(t, ts, server.WireConfig{K: 4, Alpha: 50, Seed: 6}, 6, 200)

	const callers, rounds = 4, 3
	var wg sync.WaitGroup
	for c := 0; c < callers; c++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for r := 0; r < rounds; r++ {
				if status, _, fail := postEpoch(t, ts.URL, id, server.EpochRequest{Hypergraph: wh}); status != http.StatusOK {
					t.Errorf("concurrent epoch: status %d code %q", status, fail.Code)
				}
			}
		}()
	}
	wg.Wait()

	sess, err := client.Session(context.Background(), id)
	if err != nil {
		t.Fatal(err)
	}
	if got := sess.Epoch(); got != callers*rounds {
		t.Errorf("session epoch = %d, want %d", got, callers*rounds)
	}
}

// TestTTLEviction: sessions idle past the TTL are evicted and answer 404.
func TestTTLEviction(t *testing.T) {
	srv, ts, _ := newTestServer(t, server.Config{SessionTTL: 40 * time.Millisecond})
	id, _ := createRaw(t, ts, server.WireConfig{K: 4, Alpha: 50, Seed: 7}, 7, 200)

	deadline := time.Now().Add(2 * time.Second)
	for srv.Sessions() > 0 && time.Now().Before(deadline) {
		time.Sleep(10 * time.Millisecond)
	}
	if n := srv.Sessions(); n != 0 {
		t.Fatalf("session not evicted after TTL: %d live", n)
	}
	resp, err := http.Get(ts.URL + "/v1/sessions/" + id)
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusNotFound {
		t.Errorf("evicted session answered %d, want 404", resp.StatusCode)
	}
}

// TestPartitionEndpoint: the partition view must match the submit response
// and carry a migration summary after a drifted epoch.
func TestPartitionEndpoint(t *testing.T) {
	_, _, client := newTestServer(t, server.Config{})
	ctx := context.Background()
	g, err := datasets.Generate("xyce680s", 240, 9)
	if err != nil {
		t.Fatal(err)
	}
	h := graph.ToHypergraph(g)
	cfg := core.Config{K: 4, Alpha: 50, Seed: 9, Method: core.HypergraphRepart}
	sess, first, err := client.CreateSession(ctx, cfg, h)
	if err != nil {
		t.Fatal(err)
	}
	gen := newGen(t, "weights", g, first.Partition, cfg.K, 9)
	prob, old := gen.Next()
	res, err := sess.SubmitEpochInherited(ctx, prob.H, old)
	if err != nil {
		t.Fatal(err)
	}
	parts, mig, err := sess.Partition(ctx)
	if err != nil {
		t.Fatal(err)
	}
	if !int32Equal(parts.Parts, res.Partition.Parts) {
		t.Error("partition endpoint differs from the epoch response")
	}
	if mig == nil {
		t.Fatal("no migration summary after a drifted epoch")
	}
	if res.Moved > 0 && mig.Moves == 0 {
		t.Errorf("result moved %d vertices but migration summary has no moves", res.Moved)
	}
}

// TestWireHypergraphRoundTrip: encode -> decode must preserve content
// exactly, including weights, sizes, costs and fixed labels (fingerprint
// equality is the cache-correctness property).
func TestWireHypergraphRoundTrip(t *testing.T) {
	b := hyperbal.NewHypergraphBuilder(5)
	b.AddNet(3, 0, 1, 2)
	b.AddNet(1, 2, 3, 4)
	for v := 0; v < 5; v++ {
		b.SetWeight(v, int64(2*v+1))
		b.SetSize(v, int64(10*v+5))
	}
	b.Fix(1, 2)
	h := b.Build()

	data, err := json.Marshal(server.EncodeHypergraph(h))
	if err != nil {
		t.Fatal(err)
	}
	var w server.WireHypergraph
	if err := json.Unmarshal(data, &w); err != nil {
		t.Fatal(err)
	}
	h2, err := w.Decode()
	if err != nil {
		t.Fatal(err)
	}
	if h2.Fingerprint() != h.Fingerprint() {
		t.Error("wire round trip changed the fingerprint")
	}
	if !h2.HasFixed() || h2.Fixed(1) != 2 {
		t.Error("fixed labels lost in wire round trip")
	}
}

// TestBadRequests: malformed inputs map to 400/404 with stable codes.
func TestBadRequests(t *testing.T) {
	_, ts, _ := newTestServer(t, server.Config{})

	// Unknown method name.
	body, _ := json.Marshal(server.CreateSessionRequest{
		Config:     server.WireConfig{K: 4, Method: "nonsense"},
		Hypergraph: server.WireHypergraph{NumVertices: 1},
	})
	resp, err := http.Post(ts.URL+"/v1/sessions", "application/json", bytes.NewReader(body))
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusBadRequest {
		t.Errorf("bad method: status %d, want 400", resp.StatusCode)
	}

	// Pin out of range.
	bad := server.WireHypergraph{NumVertices: 2, Nets: []server.WireNet{{Cost: 1, Pins: []int32{0, 7}}}}
	body, _ = json.Marshal(server.CreateSessionRequest{Config: server.WireConfig{K: 2}, Hypergraph: bad})
	resp, err = http.Post(ts.URL+"/v1/sessions", "application/json", bytes.NewReader(body))
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusBadRequest {
		t.Errorf("bad pins: status %d, want 400", resp.StatusCode)
	}

	// Unknown session.
	status, _, fail := postEpoch(t, ts.URL, "s-missing", server.EpochRequest{})
	if status != http.StatusNotFound || fail.Code != "not_found" {
		t.Errorf("unknown session: status %d code %q, want 404 not_found", status, fail.Code)
	}
}

func int32Equal(a, b []int32) bool {
	if len(a) != len(b) {
		return false
	}
	for i := range a {
		if a[i] != b[i] {
			return false
		}
	}
	return true
}
