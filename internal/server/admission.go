package server

import (
	"context"
	"errors"
	"sync"
)

// Admission-control errors, mapped to HTTP 429 and 503 by the handlers.
var (
	errBusy     = errors.New("server: queue full")
	errDraining = errors.New("server: draining")
)

// admission is the bounded worker pool with backpressure: at most
// `workers` epoch jobs run concurrently, at most `queue` more wait for a
// slot, and everything beyond that is rejected immediately (429). Drain
// flips the controller into rejection mode (503) and waits for every
// admitted job — running or queued — to finish.
type admission struct {
	mu       sync.Mutex
	draining bool
	admitted int // running + queued jobs
	running  int // jobs holding a worker slot (gauge source; guarded by mu)
	limit    int // workers + queue
	workers  int
	slots    chan struct{} // buffered; a held token = a running job
	wg       sync.WaitGroup
}

func newAdmission(workers, queue int) *admission {
	if workers < 1 {
		workers = 1
	}
	if queue < 0 {
		queue = 0
	}
	return &admission{
		limit:   workers + queue,
		workers: workers,
		slots:   make(chan struct{}, workers),
	}
}

// acquire admits one job, blocking in the queue until a worker slot frees
// up or ctx is canceled. The returned release func must be called exactly
// once when the job is done.
func (a *admission) acquire(ctx context.Context) (release func(), err error) {
	a.mu.Lock()
	if a.draining {
		a.mu.Unlock()
		obsRejectedDraining.Inc()
		return nil, errDraining
	}
	if a.admitted >= a.limit {
		a.mu.Unlock()
		obsRejectedBusy.Inc()
		return nil, errBusy
	}
	a.admitted++
	a.wg.Add(1)
	a.gaugesLocked()
	a.mu.Unlock()

	select {
	case a.slots <- struct{}{}:
		a.mu.Lock()
		a.running++
		a.gaugesLocked()
		a.mu.Unlock()
		return func() {
			// Book-keep under the lock before freeing the slot: a queued
			// job woken by the free slot increments running only after this
			// decrement, so the in-flight gauge never exceeds the worker
			// count and queue depth never goes transiently negative.
			a.mu.Lock()
			a.running--
			a.admitted--
			a.gaugesLocked()
			a.mu.Unlock()
			<-a.slots
			a.wg.Done()
		}, nil
	case <-ctx.Done():
		a.mu.Lock()
		a.admitted--
		a.gaugesLocked()
		a.mu.Unlock()
		a.wg.Done()
		return nil, ctx.Err()
	}
}

// drain stops admitting new jobs and waits (bounded by ctx) for every
// admitted job to complete.
func (a *admission) drain(ctx context.Context) error {
	a.mu.Lock()
	a.draining = true
	a.mu.Unlock()
	done := make(chan struct{})
	go func() {
		a.wg.Wait()
		close(done)
	}()
	select {
	case <-done:
		return nil
	case <-ctx.Done():
		return ctx.Err()
	}
}

// isDraining reports whether drain has started.
func (a *admission) isDraining() bool {
	a.mu.Lock()
	defer a.mu.Unlock()
	return a.draining
}

// gaugesLocked refreshes the queue/in-flight gauges; a.mu must be held.
// running and admitted are both mutated under the same lock, so the pair
// of gauges is always a consistent snapshot (the pre-fix code sampled
// len(a.slots) outside any slot/lock ordering, racing the post-acquire
// snapshot into transiently impossible queue depths).
func (a *admission) gaugesLocked() {
	obsInFlight.Set(int64(a.running))
	obsQueueDepth.Set(int64(a.admitted - a.running))
}
