package server_test

// End-to-end tests for the PATCH delta-epoch endpoint. The acceptance
// criterion mirrors the full-epoch suite: a cold-applied delta epoch must
// be byte-identical to the same workload driven through full submissions
// (and hence to an in-process core.Session), fingerprint mismatches must
// hard-fall back to full resync, and concurrent delta/full submissions to
// one session must serialize (run under -race).

import (
	"bytes"
	"context"
	"encoding/json"
	"net/http"
	"net/http/httptest"
	"sync"
	"testing"

	"hyperbal"
	"hyperbal/internal/core"
	"hyperbal/internal/datasets"
	"hyperbal/internal/dynamics"
	"hyperbal/internal/graph"
	"hyperbal/internal/hypergraph"
	"hyperbal/internal/server"
)

// runRemoteDelta mirrors runRemote but ships every epoch as a delta
// against the previous one. For the weights dynamic the vertex set is
// unchanged (SubmitEpochDelta); for the structure dynamic the vertex map
// is derived from consecutive alive lists (SubmitEpochDeltaMapped).
func runRemoteDelta(t *testing.T, client *hyperbal.Client, cfg core.Config, dsName string, n int, seed int64, epochs int, dynamic string, warm bool) (epochTrace, []bool) {
	t.Helper()
	ctx := context.Background()
	g, err := datasets.Generate(dsName, n, seed)
	if err != nil {
		t.Fatal(err)
	}
	h := graph.ToHypergraph(g)
	sess, first, err := client.CreateSession(ctx, cfg, h)
	if err != nil {
		t.Fatal(err)
	}
	tr := epochTrace{parts: [][]int32{first.Partition.Parts}, cached: []bool{first.Cached}}
	warms := []bool{first.Warm}
	gen := newGen(t, dynamic, g, first.Partition, cfg.K, seed)
	prevIDs := make([]int32, g.NumVertices())
	for i := range prevIDs {
		prevIDs[i] = int32(i)
	}
	for e := 1; e <= epochs; e++ {
		prob, old := gen.Next()
		var res hyperbal.RemoteResult
		if st, ok := gen.(*dynamics.Structural); ok {
			curIDs := st.AliveMap()
			vmap := hypergraph.VertexMapFromIDs(prevIDs, curIDs)
			res, err = sess.SubmitEpochDeltaMapped(ctx, prob.H, vmap, old, warm)
			prevIDs = append(prevIDs[:0], curIDs...)
		} else {
			res, err = sess.SubmitEpochDelta(ctx, prob.H, warm)
		}
		if err != nil {
			t.Fatalf("epoch %d: %v", e, err)
		}
		if res.Epoch != int64(e) {
			t.Fatalf("epoch %d: server reports epoch %d", e, res.Epoch)
		}
		tr.parts = append(tr.parts, res.Partition.Parts)
		tr.cached = append(tr.cached, res.Cached)
		warms = append(warms, res.Warm)
		if err := gen.Observe(res.Partition); err != nil {
			t.Fatal(err)
		}
	}
	if err := sess.Close(ctx); err != nil {
		t.Fatal(err)
	}
	return tr, warms
}

// TestDeltaEpochEquivalence: a cold delta epoch must produce exactly the
// partition a full submission of the same hypergraph would — for both
// drift modes — because the server reconstructs the identical hypergraph
// before partitioning.
func TestDeltaEpochEquivalence(t *testing.T) {
	_, _, client := newTestServer(t, server.Config{})
	for _, dynamic := range []string{"weights", "structure"} {
		t.Run(dynamic, func(t *testing.T) {
			cfg := core.Config{K: 4, Alpha: 50, Seed: 13, Method: core.HypergraphRepart}
			const n, epochs = 300, 3
			remote, warms := runRemoteDelta(t, client, cfg, "xyce680s", n, 13, epochs, dynamic, false)
			local := runLocal(t, cfg, "xyce680s", n, 13, epochs, dynamic)
			if len(remote.parts) != len(local.parts) {
				t.Fatalf("epoch count mismatch: %d vs %d", len(remote.parts), len(local.parts))
			}
			for e := range remote.parts {
				if !int32Equal(remote.parts[e], local.parts[e]) {
					t.Errorf("epoch %d: delta-served partition differs from in-process result", e)
				}
				if warms[e] {
					t.Errorf("epoch %d: cold delta reported warm", e)
				}
			}
		})
	}
}

// TestDeltaColdSharesCacheWithFull: a cold delta epoch reconstructs the
// same hypergraph a full submission ships, so the two must share cache
// entries — replaying a full-submission workload as deltas hits the cache.
func TestDeltaColdSharesCacheWithFull(t *testing.T) {
	_, _, client := newTestServer(t, server.Config{})
	cfg := core.Config{K: 4, Alpha: 50, Seed: 17, Method: core.HypergraphRepart}
	full := runRemote(t, client, cfg, "auto", 300, 17, 2, "weights")
	replay, _ := runRemoteDelta(t, client, cfg, "auto", 300, 17, 2, "weights", false)
	for e := range replay.cached {
		if !replay.cached[e] {
			t.Errorf("delta replay epoch %d not served from the full-submission cache entry", e)
		}
		if !int32Equal(replay.parts[e], full.parts[e]) {
			t.Errorf("delta replay epoch %d: partition differs from full submission", e)
		}
	}
}

// TestDeltaEpochWarm: warm delta epochs must report Warm, stay feasible,
// and an identical replay must be served from the warm-keyed cache slot
// byte-identically.
func TestDeltaEpochWarm(t *testing.T) {
	_, _, client := newTestServer(t, server.Config{})
	cfg := core.Config{K: 4, Alpha: 50, Seed: 19, Method: core.HypergraphRepart}
	const n, epochs = 300, 3
	first, warms := runRemoteDelta(t, client, cfg, "xyce680s", n, 19, epochs, "weights", true)
	for e := 1; e <= epochs; e++ {
		if !warms[e] {
			t.Errorf("epoch %d: warm delta not reported warm", e)
		}
		for v, p := range first.parts[e] {
			if p < 0 || int(p) >= cfg.K {
				t.Fatalf("epoch %d: vertex %d assigned to part %d out of range", e, v, p)
			}
		}
	}
	replay, _ := runRemoteDelta(t, client, cfg, "xyce680s", n, 19, epochs, "weights", true)
	for e := 1; e <= epochs; e++ {
		if !replay.cached[e] {
			t.Errorf("warm replay epoch %d not cached", e)
		}
		if !int32Equal(replay.parts[e], first.parts[e]) {
			t.Errorf("warm replay epoch %d: partition differs", e)
		}
	}
}

// patchDelta submits a raw delta epoch request without client-side
// retries or fallbacks.
func patchDelta(t *testing.T, baseURL, id string, req server.DeltaEpochRequest) (int, server.SessionResponse, server.ErrorResponse) {
	t.Helper()
	body, err := json.Marshal(req)
	if err != nil {
		t.Fatal(err)
	}
	httpReq, err := http.NewRequest(http.MethodPatch, baseURL+"/v1/sessions/"+id+"/epochs", bytes.NewReader(body))
	if err != nil {
		t.Fatal(err)
	}
	httpReq.Header.Set("Content-Type", "application/json")
	resp, err := http.DefaultClient.Do(httpReq)
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	var ok server.SessionResponse
	var fail server.ErrorResponse
	if resp.StatusCode == http.StatusOK {
		if err := json.NewDecoder(resp.Body).Decode(&ok); err != nil {
			t.Fatal(err)
		}
	} else {
		_ = json.NewDecoder(resp.Body).Decode(&fail)
	}
	return resp.StatusCode, ok, fail
}

// TestDeltaFingerprintMismatch: a delta against the wrong base must be
// rejected with 409 fingerprint_mismatch carrying the session's actual
// base, without consuming the epoch; a correctly-based delta then lands.
func TestDeltaFingerprintMismatch(t *testing.T) {
	_, ts, _ := newTestServer(t, server.Config{})
	g, err := datasets.Generate("xyce680s", 200, 23)
	if err != nil {
		t.Fatal(err)
	}
	h0 := graph.ToHypergraph(g)
	id, _ := createRawH(t, ts, server.WireConfig{K: 4, Alpha: 50, Seed: 23}, h0)

	// Drift the weights to get a real successor hypergraph.
	h1 := reweighted(h0, 3)
	d, ok := hypergraph.ComputeDelta(h0, h1)
	if !ok {
		t.Fatal("weight drift not delta-able")
	}

	// Stale base: the delta's fingerprint gate must fire.
	stale := *d
	stale.Base = "hbfp1:0000000000000000000000000000000000000000000000000000000000000000"
	status, _, fail := patchDelta(t, ts.URL, id, server.DeltaEpochRequest{Delta: stale, Epoch: 1})
	if status != http.StatusConflict || fail.Code != "fingerprint_mismatch" {
		t.Fatalf("stale delta: status %d code %q, want 409 fingerprint_mismatch", status, fail.Code)
	}
	if fail.Base != h0.Fingerprint() {
		t.Errorf("mismatch response base %q, want the session base %q", fail.Base, h0.Fingerprint())
	}
	if fail.Epoch != 0 {
		t.Errorf("mismatch consumed the epoch: session at %d, want 0", fail.Epoch)
	}

	// The correctly-based delta still lands and reconstructs h1 exactly.
	status, okResp, fail := patchDelta(t, ts.URL, id, server.DeltaEpochRequest{Delta: *d, Epoch: 1})
	if status != http.StatusOK {
		t.Fatalf("valid delta: status %d code %q", status, fail.Code)
	}
	if okResp.Result.Epoch != 1 || !okResp.Result.Rebalanced {
		t.Errorf("valid delta: epoch %d rebalanced %v, want 1 true", okResp.Result.Epoch, okResp.Result.Rebalanced)
	}
}

// TestDeltaClientFallback: when another writer advances the session, the
// client's next delta sees an epoch conflict and reconciles; the one
// after that sees a base fingerprint mismatch (its base tracking is now
// stale) and must transparently fall back to a full submission.
func TestDeltaClientFallback(t *testing.T) {
	_, ts, client := newTestServer(t, server.Config{})
	ctx := context.Background()
	g, err := datasets.Generate("xyce680s", 200, 29)
	if err != nil {
		t.Fatal(err)
	}
	h0 := graph.ToHypergraph(g)
	cfg := core.Config{K: 4, Alpha: 50, Seed: 29, Method: core.HypergraphRepart}
	sess, _, err := client.CreateSession(ctx, cfg, h0)
	if err != nil {
		t.Fatal(err)
	}

	// Out-of-band writer advances the session with a full epoch.
	h1 := reweighted(h0, 7)
	status, _, fail := postEpoch(t, ts.URL, sess.ID, server.EpochRequest{Hypergraph: server.EncodeHypergraph(h1)})
	if status != http.StatusOK {
		t.Fatalf("out-of-band epoch: status %d code %q", status, fail.Code)
	}

	// The client's delta (tagged epoch 1) conflicts and reconciles against
	// the server's epoch-1 result.
	h2 := reweighted(h0, 11)
	res, err := sess.SubmitEpochDelta(ctx, h2, false)
	if err != nil {
		t.Fatalf("delta after out-of-band epoch: %v", err)
	}
	if res.Epoch != 1 {
		t.Fatalf("reconciled epoch %d, want 1", res.Epoch)
	}

	// Now the client's base tracking (h2) disagrees with the server's
	// base (h1) at an aligned epoch: the delta draws 409
	// fingerprint_mismatch and the client must land it as a full epoch.
	h3 := reweighted(h0, 13)
	res, err = sess.SubmitEpochDelta(ctx, h3, false)
	if err != nil {
		t.Fatalf("delta with stale base: %v", err)
	}
	if res.Epoch != 2 || !res.Rebalanced {
		t.Fatalf("fallback result: epoch %d rebalanced %v, want 2 true", res.Epoch, res.Rebalanced)
	}

	// The fallback resynced the base: the next delta goes through as a
	// delta again (server holds h3 now).
	h4 := reweighted(h0, 17)
	res, err = sess.SubmitEpochDelta(ctx, h4, false)
	if err != nil {
		t.Fatalf("delta after resync: %v", err)
	}
	if res.Epoch != 3 {
		t.Fatalf("post-resync epoch %d, want 3", res.Epoch)
	}
}

// TestConcurrentDeltaEpochs: interleaved delta and full submissions from
// many goroutines against one session must serialize — every valid
// submission lands exactly once, stale-based deltas draw 409
// fingerprint_mismatch without consuming an epoch (run under -race).
func TestConcurrentDeltaEpochs(t *testing.T) {
	_, ts, client := newTestServer(t, server.Config{})
	g, err := datasets.Generate("xyce680s", 200, 31)
	if err != nil {
		t.Fatal(err)
	}
	h := graph.ToHypergraph(g)
	id, _ := createRawH(t, ts, server.WireConfig{K: 4, Alpha: 50, Seed: 31}, h)
	wh := server.EncodeHypergraph(h)

	// Every submission carries the same hypergraph, so the session base
	// fingerprint is invariant and an identity delta is valid under any
	// interleaving; a delta against a foreign base never is.
	identity, ok := hypergraph.ComputeDelta(h, h)
	if !ok {
		t.Fatal("identity transition not delta-able")
	}
	stale := *identity
	stale.Base = "hbfp1:1111111111111111111111111111111111111111111111111111111111111111"

	const callers, rounds = 4, 3
	var mu sync.Mutex
	landed, mismatches := 0, 0
	var wg sync.WaitGroup
	for c := 0; c < callers; c++ {
		c := c
		wg.Add(1)
		go func() {
			defer wg.Done()
			for r := 0; r < rounds; r++ {
				var status int
				var fail server.ErrorResponse
				switch (c + r) % 3 {
				case 0: // full epoch, untagged
					status, _, fail = postEpoch(t, ts.URL, id, server.EpochRequest{Hypergraph: wh})
				case 1: // identity delta, untagged
					status, _, fail = patchDelta(t, ts.URL, id, server.DeltaEpochRequest{Delta: *identity})
				default: // stale-based delta: must 409 without advancing
					status, _, fail = patchDelta(t, ts.URL, id, server.DeltaEpochRequest{Delta: stale})
				}
				mu.Lock()
				switch status {
				case http.StatusOK:
					landed++
				case http.StatusConflict:
					mismatches++
					if fail.Code != "fingerprint_mismatch" {
						t.Errorf("409 with code %q, want fingerprint_mismatch", fail.Code)
					}
				default:
					t.Errorf("unexpected status %d code %q", status, fail.Code)
				}
				mu.Unlock()
			}
		}()
	}
	wg.Wait()

	wantLanded := 0
	wantMismatch := 0
	for c := 0; c < callers; c++ {
		for r := 0; r < rounds; r++ {
			if (c+r)%3 == 2 {
				wantMismatch++
			} else {
				wantLanded++
			}
		}
	}
	if landed != wantLanded || mismatches != wantMismatch {
		t.Errorf("landed=%d mismatches=%d, want %d/%d", landed, mismatches, wantLanded, wantMismatch)
	}
	sess, err := client.Session(context.Background(), id)
	if err != nil {
		t.Fatal(err)
	}
	if got := sess.Epoch(); got != int64(wantLanded) {
		t.Errorf("session epoch = %d, want %d", got, wantLanded)
	}
}

// createRawH creates a session over an explicit hypergraph and returns
// its id plus the wire form.
func createRawH(t *testing.T, ts *httptest.Server, cfg server.WireConfig, h *hypergraph.Hypergraph) (string, server.WireHypergraph) {
	t.Helper()
	wh := server.EncodeHypergraph(h)
	body, err := json.Marshal(server.CreateSessionRequest{Config: cfg, Hypergraph: wh})
	if err != nil {
		t.Fatal(err)
	}
	resp, err := http.Post(ts.URL+"/v1/sessions", "application/json", bytes.NewReader(body))
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusCreated {
		t.Fatalf("create: status %d", resp.StatusCode)
	}
	var sr server.SessionResponse
	if err := json.NewDecoder(resp.Body).Decode(&sr); err != nil {
		t.Fatal(err)
	}
	return sr.SessionID, wh
}

// reweighted returns a copy of h with every vertex weight and size
// perturbed deterministically by salt (vertex set and nets unchanged).
func reweighted(h *hypergraph.Hypergraph, salt int64) *hypergraph.Hypergraph {
	b := hypergraph.NewBuilder(h.NumVertices())
	for v := 0; v < h.NumVertices(); v++ {
		b.SetWeight(v, h.Weight(v)+(int64(v)*salt)%5+1)
		b.SetSize(v, h.Size(v)+(int64(v)+salt)%3)
		if f := h.Fixed(v); f != hypergraph.Free {
			b.Fix(v, int(f))
		}
	}
	for n := 0; n < h.NumNets(); n++ {
		b.AddNetInt32(h.Cost(n), h.Pins(n))
	}
	return b.Build()
}
