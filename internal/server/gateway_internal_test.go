package server

// Regression tests for the gateway's create-retarget path. Pre-fix, a
// create whose replica died mid-request was retried on another replica
// under the same pre-assigned id — if the first replica had actually
// processed the request and only the response was lost, two replicas held
// divergent sessions under one id, and a gateway restart's ring probe
// could later resurrect the stale epoch-0 copy.

import (
	"encoding/json"
	"net/http"
	"net/http/httptest"
	"strings"
	"sync"
	"testing"
	"time"
)

// jsonCreateBody renders a minimal JSON create request.
func jsonCreateBody(t *testing.T) []byte {
	t.Helper()
	body, err := json.Marshal(CreateSessionRequest{
		Config:     WireConfig{K: 2, Alpha: 10},
		Hypergraph: EncodeHypergraph(testHypergraph(t)),
	})
	if err != nil {
		t.Fatal(err)
	}
	return body
}

func postCreate(t *testing.T, client *http.Client, base, id string, body []byte) *http.Response {
	t.Helper()
	req, err := http.NewRequest(http.MethodPost, base+"/v1/sessions", strings.NewReader(string(body)))
	if err != nil {
		t.Fatal(err)
	}
	req.Header.Set("Content-Type", "application/json")
	if id != "" {
		req.Header.Set(SessionIDHeader, id)
	}
	resp, err := client.Do(req)
	if err != nil {
		t.Fatal(err)
	}
	return resp
}

// TestGatewayCreateRetargetUsesFreshID: when a replica dies mid-create, the
// retry on a survivor must run under a fresh gateway-generated id — the
// dead replica may have processed the original request, and reusing its id
// would fork the session across replicas. Pre-fix the retry reused the id.
func TestGatewayCreateRetargetUsesFreshID(t *testing.T) {
	srv := New(Config{SessionTTL: -1})
	defer srv.Close()
	live := httptest.NewServer(srv.Handler())
	defer live.Close()

	// A replica that accepts the connection, records the pre-assigned id,
	// and dies without answering — a create processed with the response lost,
	// as far as the gateway can tell.
	var mu sync.Mutex
	var seenIDs []string
	broken := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		mu.Lock()
		seenIDs = append(seenIDs, r.Header.Get(SessionIDHeader))
		mu.Unlock()
		hj, ok := w.(http.Hijacker)
		if !ok {
			t.Error("response writer cannot hijack")
			return
		}
		if conn, _, err := hj.Hijack(); err == nil {
			conn.Close()
		}
	}))
	defer broken.Close()

	g, err := NewGateway(GatewayConfig{
		Replicas:       []string{broken.URL, live.URL},
		HealthInterval: -1,
		Logf:           t.Logf,
	})
	if err != nil {
		t.Fatal(err)
	}
	defer g.Close()
	gts := httptest.NewServer(g.Handler())
	defer gts.Close()

	body := jsonCreateBody(t)
	// Ids are generated per create, so the ring routes roughly half of them
	// to the broken replica first; iterate until one hits it (the broken
	// replica is marked down at that point, so it is hit at most once).
	for i := 0; i < 40; i++ {
		resp := postCreate(t, http.DefaultClient, gts.URL, "", body)
		if resp.StatusCode != http.StatusCreated {
			resp.Body.Close()
			t.Fatalf("create %d: status %d", i, resp.StatusCode)
		}
		var sr SessionResponse
		if err := json.NewDecoder(resp.Body).Decode(&sr); err != nil {
			t.Fatal(err)
		}
		resp.Body.Close()
		mu.Lock()
		hit := len(seenIDs) > 0
		var brokenID string
		if hit {
			brokenID = seenIDs[0]
		}
		mu.Unlock()
		if !hit {
			continue
		}
		// This create was first sent to the broken replica, then retried on
		// the survivor. The id that reached the broken replica must not be
		// the id the create finally succeeded under.
		if sr.SessionID == "" {
			t.Fatal("create succeeded without a session id")
		}
		if sr.SessionID == brokenID {
			t.Fatalf("retargeted create reused id %s sent to the dead replica — a processed-but-unanswered create would fork the session", brokenID)
		}
		if srv.store.get(brokenID) != nil {
			t.Fatalf("survivor holds a session under the dead replica's id %s", brokenID)
		}
		if srv.store.get(sr.SessionID) == nil {
			t.Fatalf("survivor does not hold the returned session %s", sr.SessionID)
		}
		return
	}
	t.Fatal("no create was routed to the broken replica across 40 attempts")
}

// TestGatewayCreateCallerAssignedProbes409: a caller-assigned id cannot be
// swapped on retarget, so before retrying the gateway must probe the id's
// candidates — if the create already landed on a survivor, the answer is
// 409 duplicate_session, not a second session under the same id.
func TestGatewayCreateCallerAssignedProbes409(t *testing.T) {
	srv := New(Config{SessionTTL: -1})
	defer srv.Close()
	live := httptest.NewServer(srv.Handler())
	defer live.Close()

	dead := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {}))
	dead.Close() // connection refused from the first request

	urls := []string{dead.URL, live.URL}
	// Pick an id the ring routes to the dead replica first, so the create
	// takes the transport-error path before probing.
	r := newRing(urls)
	var id string
	for i := 0; ; i++ {
		id = newSessionID()
		if r.candidates(id)[0] == 0 {
			break
		}
		if i > 1000 {
			t.Fatal("no id hashed to the dead replica first")
		}
	}

	body := jsonCreateBody(t)
	// Seed the "create landed, response lost" state: the session already
	// exists under id on the surviving candidate.
	resp := postCreate(t, http.DefaultClient, live.URL, id, body)
	resp.Body.Close()
	if resp.StatusCode != http.StatusCreated {
		t.Fatalf("seeding create: status %d", resp.StatusCode)
	}

	g, err := NewGateway(GatewayConfig{
		Replicas:       urls,
		HealthInterval: -1,
		HTTPClient:     &http.Client{Timeout: 5 * time.Second},
		Logf:           t.Logf,
	})
	if err != nil {
		t.Fatal(err)
	}
	defer g.Close()
	gts := httptest.NewServer(g.Handler())
	defer gts.Close()

	resp = postCreate(t, http.DefaultClient, gts.URL, id, body)
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusConflict {
		t.Fatalf("create after transport error: status %d, want 409 (the session already landed)", resp.StatusCode)
	}
	var er ErrorResponse
	if err := json.NewDecoder(resp.Body).Decode(&er); err != nil {
		t.Fatal(err)
	}
	if er.Code != "duplicate_session" {
		t.Fatalf("error code %q, want duplicate_session", er.Code)
	}
	if srv.Sessions() != 1 {
		t.Fatalf("survivor holds %d sessions, want the single seeded one", srv.Sessions())
	}
	// The probe pins the placement, so follow-up requests route straight to
	// the surviving owner.
	if idx, ok := g.placed(id); !ok || idx != 1 {
		t.Fatalf("placement after probe = (%d,%v), want the survivor", idx, ok)
	}
}
