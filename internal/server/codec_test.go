package server_test

// Differential and adversarial tests for the binary wire protocol: every
// endpoint must produce byte-identical partitions over both codecs (they
// share one validation/solve path, so any divergence is a codec bug),
// malformed binary frames must be rejected with clean 400s, and
// concurrent identical cold solves must collapse to one leader through
// the singleflight group.

import (
	"bytes"
	"context"
	"io"
	"net/http"
	"net/http/httptest"
	"strings"
	"sync"
	"testing"
	"time"

	"hyperbal"
	"hyperbal/internal/core"
	"hyperbal/internal/hypergraph"
	"hyperbal/internal/mpi"
	"hyperbal/internal/obs"
	"hyperbal/internal/server"
)

// TestWireDifferential drives the identical session lifecycle — create,
// full epoch, inherited epoch, only-if-unbalanced epoch, delta epoch,
// info, partition, close — through a JSON client and a binary client
// against separate fresh servers, and requires byte-identical partitions
// at every step.
func TestWireDifferential(t *testing.T) {
	type trace struct {
		parts [][]int32
		warm  []bool
	}
	run := func(wire string) trace {
		srv := server.New(server.Config{})
		defer srv.Close()
		ts := httptest.NewServer(srv.Handler())
		defer ts.Close()
		client := hyperbal.NewClient(ts.URL, hyperbal.ClientOptions{
			MaxRetries: 1, Backoff: 5 * time.Millisecond, Wire: wire,
		})
		ctx := context.Background()
		cfg := core.Config{K: 4, Alpha: 100, Seed: 11}
		h := codecTestHypergraph(1)

		var tr trace
		sess, first, err := client.CreateSession(ctx, cfg, h)
		if err != nil {
			t.Fatalf("%s create: %v", wire, err)
		}
		tr.parts = append(tr.parts, first.Partition.Parts)

		h2 := codecTestHypergraph(2)
		res, err := sess.SubmitEpoch(ctx, h2)
		if err != nil {
			t.Fatalf("%s epoch: %v", wire, err)
		}
		tr.parts = append(tr.parts, res.Partition.Parts)

		h3 := codecTestHypergraph(3)
		res, err = sess.SubmitEpochInherited(ctx, h3, res.Partition)
		if err != nil {
			t.Fatalf("%s inherited: %v", wire, err)
		}
		tr.parts = append(tr.parts, res.Partition.Parts)

		res, err = sess.SubmitEpochIfUnbalanced(ctx, h3)
		if err != nil {
			t.Fatalf("%s if-unbalanced: %v", wire, err)
		}
		tr.parts = append(tr.parts, res.Partition.Parts)

		h4 := codecTestHypergraph(4)
		res, err = sess.SubmitEpochDelta(ctx, h4, true)
		if err != nil {
			t.Fatalf("%s delta: %v", wire, err)
		}
		tr.parts = append(tr.parts, res.Partition.Parts)
		tr.warm = append(tr.warm, res.Warm)

		// Re-attach through the info endpoint, then fetch the partition.
		sess2, err := client.Session(ctx, sess.ID)
		if err != nil {
			t.Fatalf("%s info: %v", wire, err)
		}
		if sess2.Epoch() != sess.Epoch() {
			t.Fatalf("%s info: epoch %d != %d", wire, sess2.Epoch(), sess.Epoch())
		}
		part, _, err := sess.Partition(ctx)
		if err != nil {
			t.Fatalf("%s partition: %v", wire, err)
		}
		tr.parts = append(tr.parts, part.Parts)
		if err := sess.Close(ctx); err != nil {
			t.Fatalf("%s close: %v", wire, err)
		}
		return tr
	}

	j, b := run("json"), run("binary")
	if len(j.parts) != len(b.parts) {
		t.Fatalf("trace lengths differ: %d vs %d", len(j.parts), len(b.parts))
	}
	for i := range j.parts {
		if !bytes.Equal(int32le(j.parts[i]), int32le(b.parts[i])) {
			t.Fatalf("step %d: json and binary partitions differ", i)
		}
	}
	for i := range j.warm {
		if j.warm[i] != b.warm[i] {
			t.Fatalf("warm flag %d differs across codecs", i)
		}
	}
}

// TestBinaryRejectsSameAsJSON checks that the same invalid hypergraph —
// one pin out of range — is rejected as a 400 by both codecs, with both
// error bodies naming the same validation failure (the codecs funnel into
// one shared validation path and cannot drift).
func TestBinaryRejectsSameAsJSON(t *testing.T) {
	_, ts, _ := newTestServer(t, server.Config{})

	jsonBody := `{"config":{"k":2,"alpha":10},"hypergraph":{"num_vertices":3,"nets":[{"cost":1,"pins":[7]}]}}`

	// The binary frame for the same request: encode the valid one-pin
	// variant, then patch the pin value. The hypergraph frame trails the
	// create request with its last two bytes being (pin, cost).
	tiny := hypergraph.NewBuilder(3)
	tiny.AddNet(1, 0)
	binBody := server.AppendCreateRequestBinary(nil,
		server.WireConfigFrom(core.Config{K: 2, Alpha: 10}), tiny.Build())
	binBody[len(binBody)-2] = 7

	for _, tc := range []struct {
		name, contentType string
		body              []byte
	}{
		{"json", "application/json", []byte(jsonBody)},
		{"binary", server.ContentTypeBinary, binBody},
	} {
		resp, err := http.Post(ts.URL+"/v1/sessions", tc.contentType, bytes.NewReader(tc.body))
		if err != nil {
			t.Fatalf("%s: %v", tc.name, err)
		}
		data, _ := io.ReadAll(resp.Body)
		resp.Body.Close()
		if resp.StatusCode != http.StatusBadRequest {
			t.Fatalf("%s: got HTTP %d (%s), want 400", tc.name, resp.StatusCode, data)
		}
		if !strings.Contains(string(data), "pin 7 out of range") {
			t.Fatalf("%s: error body %q does not name the shared validation failure", tc.name, data)
		}
	}
}

// TestMalformedBinaryFrames posts adversarial binary bodies at the create
// endpoint: truncations, corrupt magic, wrong version/message type, and
// element-count bombs must all come back as clean 400s (JSON error body),
// never 5xx, never a hang.
func TestMalformedBinaryFrames(t *testing.T) {
	_, ts, _ := newTestServer(t, server.Config{})
	valid := server.AppendCreateRequestBinary(nil,
		server.WireConfigFrom(core.Config{K: 2, Alpha: 10}), codecTestHypergraph(1))

	post := func(name string, body []byte) {
		t.Helper()
		resp, err := http.Post(ts.URL+"/v1/sessions", server.ContentTypeBinary, bytes.NewReader(body))
		if err != nil {
			t.Fatalf("%s: %v", name, err)
		}
		defer resp.Body.Close()
		if resp.StatusCode != http.StatusBadRequest {
			t.Fatalf("%s: got HTTP %d, want 400", name, resp.StatusCode)
		}
		if ct := resp.Header.Get("Content-Type"); !strings.HasPrefix(ct, "application/json") {
			t.Fatalf("%s: error body Content-Type %q, want JSON", name, ct)
		}
	}

	for i := 0; i < len(valid); i += 7 {
		post("truncated", valid[:i])
	}
	post("empty", nil)

	magic := append([]byte(nil), valid...)
	magic[0] = 'X'
	post("bad-magic", magic)

	ver := append([]byte(nil), valid...)
	ver[3] = 0xEE
	post("bad-version", ver)

	typ := append([]byte(nil), valid...)
	typ[4] = 0x7F
	post("bad-msg-type", typ)

	trailing := append(append([]byte(nil), valid...), 0xAA)
	post("trailing-bytes", trailing)

	// Length prefix claiming ~2^28 pins in a tiny frame: the decoder must
	// bound counts by the remaining frame bytes instead of allocating.
	bomb := append([]byte(nil), valid[:16]...)
	bomb = append(bomb, 0xFF, 0xFF, 0xFF, 0xFF, 0x0F)
	post("count-bomb", bomb)
}

// TestSingleflightCollapse fires identical create requests concurrently
// at a server whose solver is artificially slowed: exactly the concurrent
// duplicates must coalesce onto one leader (obs counters prove it), and
// every response must carry the byte-identical partition.
func TestSingleflightCollapse(t *testing.T) {
	const concurrency = 6
	_, ts, _ := newTestServer(t, server.Config{
		Workers: concurrency + 2,
		Fault:   &mpi.FaultPlan{Seed: 9, MaxDelay: 150 * time.Millisecond},
	})
	h := codecTestHypergraph(1)
	sfLeaders := obs.Default().Counter("server_singleflight_leaders_total")
	sfShared := obs.Default().Counter("server_singleflight_shared_total")

	// The fault delay is pseudorandom per job, so one volley could in
	// principle finish its leader before any follower arrives (cache hits
	// all round, shared == 0). Distinct seeds give each attempt a fresh
	// cache key; one collapsing volley proves the property.
	for attempt := 0; attempt < 5; attempt++ {
		cfg := core.Config{K: 4, Alpha: 100, Seed: int64(5 + attempt)}
		leadersBefore, sharedBefore := sfLeaders.Load(), sfShared.Load()
		var (
			gate     = make(chan struct{})
			wg       sync.WaitGroup
			mu       sync.Mutex
			parts    [][]int32
			uncached int
		)
		for i := 0; i < concurrency; i++ {
			wg.Add(1)
			go func() {
				defer wg.Done()
				client := hyperbal.NewClient(ts.URL, hyperbal.ClientOptions{MaxRetries: 1, Backoff: time.Millisecond})
				<-gate
				_, res, err := client.CreateSession(context.Background(), cfg, h)
				if err != nil {
					t.Errorf("create: %v", err)
					return
				}
				mu.Lock()
				parts = append(parts, res.Partition.Parts)
				if !res.Cached {
					uncached++
				}
				mu.Unlock()
			}()
		}
		close(gate)
		wg.Wait()
		if t.Failed() {
			return
		}

		leaders := sfLeaders.Load() - leadersBefore
		shared := sfShared.Load() - sharedBefore
		if leaders < 1 {
			t.Fatalf("no singleflight leader recorded (leaders=%d)", leaders)
		}
		if uncached != int(leaders) {
			t.Fatalf("%d uncached responses but %d leaders", uncached, leaders)
		}
		for i := 1; i < len(parts); i++ {
			if !bytes.Equal(int32le(parts[0]), int32le(parts[i])) {
				t.Fatalf("response %d partition differs from leader's", i)
			}
		}
		if shared >= 1 {
			t.Logf("volley %d: %d leaders, %d shared, %d cached", attempt, leaders, shared, int64(len(parts))-leaders-shared)
			return
		}
	}
	t.Fatal("no volley produced a shared singleflight result in 5 attempts")
}

// TestEncodeHypergraphDoesNotAlias is the regression test for the
// EncodeHypergraph aliasing footgun: the wire form's pin slices used to
// alias the hypergraph's CSR storage, so callers mutating the wire object
// silently corrupted a live session's base hypergraph.
func TestEncodeHypergraphDoesNotAlias(t *testing.T) {
	h := codecTestHypergraph(1)
	fp := h.Fingerprint()
	w := server.EncodeHypergraph(h)

	for n := range w.Nets {
		for i := range w.Nets[n].Pins {
			w.Nets[n].Pins[i] = -99
		}
	}
	if h.Fingerprint() != fp {
		t.Fatal("mutating wire pins corrupted the source hypergraph")
	}

	// Appending through one net's pins must not run into the next net's
	// storage (the slices share one backing array but have full capacity).
	w2 := server.EncodeHypergraph(h)
	before := append([]int32(nil), w2.Nets[1].Pins...)
	w2.Nets[0].Pins = append(w2.Nets[0].Pins, 0)
	if !bytes.Equal(int32le(before), int32le(w2.Nets[1].Pins)) {
		t.Fatal("append through net 0 pins overwrote net 1 pins")
	}
}

// codecTestHypergraph builds a small deterministic hypergraph; variant
// perturbs weights so successive epochs actually drift.
func codecTestHypergraph(variant int64) *hypergraph.Hypergraph {
	b := hypergraph.NewBuilder(64)
	for v := 0; v < 64; v++ {
		b.SetWeight(v, 1+(int64(v)*variant)%7)
	}
	for n := 0; n < 96; n++ {
		a := n % 64
		c := (n*7 + 13) % 64
		d := (n*13 + 29) % 64
		b.AddNet(1+int64(n%3), a, c, d)
	}
	return b.Build()
}

func int32le(xs []int32) []byte {
	out := make([]byte, 0, 4*len(xs))
	for _, x := range xs {
		out = append(out, byte(x), byte(x>>8), byte(x>>16), byte(x>>24))
	}
	return out
}
