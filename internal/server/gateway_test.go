package server_test

// End-to-end tests for the distributed serving tier: a gateway sharding
// sessions across replicas, fingerprint-keyed cache peering between the
// replicas, and drain-time session handoff. The acceptance bar mirrors the
// single-replica e2e suite: partitions served by an N-replica deployment
// must be byte-identical to the single-process core.Session run.

import (
	"context"
	"errors"
	"net/http"
	"net/http/httptest"
	"testing"
	"time"

	"hyperbal"
	"hyperbal/internal/core"
	"hyperbal/internal/datasets"
	"hyperbal/internal/graph"
	"hyperbal/internal/obs"
	"hyperbal/internal/server"
)

// replicaSet is an in-process N-replica deployment plus its gateway.
type replicaSet struct {
	servers []*server.Server
	listen  []*httptest.Server
	urls    []string
	gw      *server.Gateway
	client  *hyperbal.Client
}

func newReplicaSet(t *testing.T, n int, cfg server.Config) *replicaSet {
	t.Helper()
	rs := &replicaSet{}
	for i := 0; i < n; i++ {
		srv := server.New(cfg)
		ts := httptest.NewServer(srv.Handler())
		t.Cleanup(func() { ts.Close(); srv.Close() })
		rs.servers = append(rs.servers, srv)
		rs.listen = append(rs.listen, ts)
		rs.urls = append(rs.urls, ts.URL)
	}
	for i, srv := range rs.servers {
		srv.SetPeering(rs.urls[i], rs.urls)
	}
	gw, err := server.NewGateway(server.GatewayConfig{
		Replicas:       rs.urls,
		HealthInterval: -1, // liveness is learned from transport errors
		Logf:           t.Logf,
	})
	if err != nil {
		t.Fatal(err)
	}
	gts := httptest.NewServer(gw.Handler())
	t.Cleanup(func() { gts.Close(); gw.Close() })
	rs.gw = gw
	rs.client = hyperbal.NewClient(gts.URL, hyperbal.ClientOptions{MaxRetries: 3, Backoff: 5 * time.Millisecond})
	return rs
}

func (rs *replicaSet) totalSessions() int {
	n := 0
	for _, s := range rs.servers {
		n += s.Sessions()
	}
	return n
}

// genHypergraph builds a deterministic small test hypergraph.
func genHypergraph(t *testing.T, n int, seed int64) *hyperbal.Hypergraph {
	t.Helper()
	g, err := datasets.Generate("auto", n, seed)
	if err != nil {
		t.Fatal(err)
	}
	return graph.ToHypergraph(g)
}

func counterValue(name string) int64 { return obs.Default().Counter(name).Load() }

// TestDistributedByteIdentity: three replicas behind a gateway must serve
// partitions byte-identical to the in-process core.Session run, for the
// Zoltan-repart method under both drift modes.
func TestDistributedByteIdentity(t *testing.T) {
	rs := newReplicaSet(t, 3, server.Config{SessionTTL: -1})
	for _, dynamic := range []string{"weights", "structure"} {
		t.Run(dynamic, func(t *testing.T) {
			cfg := core.Config{K: 4, Alpha: 50, Seed: 17, Method: core.HypergraphRepart}
			const n, epochs = 300, 3
			remote := runRemote(t, rs.client, cfg, "xyce680s", n, 17, epochs, dynamic)
			local := runLocal(t, cfg, "xyce680s", n, 17, epochs, dynamic)
			if len(remote.parts) != len(local.parts) {
				t.Fatalf("epoch count mismatch: %d vs %d", len(remote.parts), len(local.parts))
			}
			for e := range remote.parts {
				if !int32Equal(remote.parts[e], local.parts[e]) {
					t.Errorf("epoch %d: gateway-served partition differs from in-process result", e)
				}
			}
		})
	}
}

// TestDistributedSessionSharding: many sessions created through the
// gateway must actually spread across the replicas (the point of the
// tier), and every one must stay reachable.
func TestDistributedSessionSharding(t *testing.T) {
	rs := newReplicaSet(t, 3, server.Config{SessionTTL: -1})
	ctx := context.Background()
	h := genHypergraph(t, 120, 21)
	cfg := hyperbal.BalancerConfig{K: 2, Alpha: 50, Seed: 9, Method: core.HypergraphRepart}
	const sessions = 12
	var handles []*hyperbal.RemoteSession
	for i := 0; i < sessions; i++ {
		sess, _, err := rs.client.CreateSession(ctx, cfg, h)
		if err != nil {
			t.Fatalf("create %d: %v", i, err)
		}
		handles = append(handles, sess)
	}
	if got := rs.totalSessions(); got != sessions {
		t.Fatalf("replicas hold %d sessions, created %d", got, sessions)
	}
	populated := 0
	for i, srv := range rs.servers {
		n := srv.Sessions()
		t.Logf("replica %d holds %d sessions", i, n)
		if n > 0 {
			populated++
		}
	}
	if populated < 2 {
		t.Fatalf("only %d replicas hold sessions — sharding is not spreading", populated)
	}
	for i, sess := range handles {
		if _, _, err := sess.Partition(ctx); err != nil {
			t.Fatalf("session %d unreachable through gateway: %v", i, err)
		}
	}
}

// TestDrainHandoffLosesNoSessions: draining a replica must move every one
// of its sessions to a peer, keep them serving through the gateway, and
// preserve their state byte-for-byte (the continued epochs must match an
// uninterrupted local run).
func TestDrainHandoffLosesNoSessions(t *testing.T) {
	rs := newReplicaSet(t, 3, server.Config{SessionTTL: -1})
	cfg := core.Config{K: 4, Alpha: 50, Seed: 23, Method: core.HypergraphRepart}
	const n, preEpochs, postEpochs = 300, 2, 2

	sentBefore := counterValue("server_handoff_sessions_total")
	local := runLocal(t, cfg, "xyce680s", n, 23, preEpochs+postEpochs, "weights")
	remote := runRemoteWithDrain(t, rs, cfg, "xyce680s", n, 23, preEpochs, postEpochs, "weights")

	if len(remote.parts) != len(local.parts) {
		t.Fatalf("epoch count mismatch: %d vs %d", len(remote.parts), len(local.parts))
	}
	for e := range local.parts {
		if !int32Equal(remote.parts[e], local.parts[e]) {
			t.Errorf("epoch %d: partition diverged across the drain handoff", e)
		}
	}
	if got := counterValue("server_handoff_sessions_total"); got <= sentBefore {
		t.Error("no session was handed off — the drain path did not exercise handoff")
	}
}

// runRemoteWithDrain mirrors runRemote, but drains the replica holding the
// session after preEpochs epochs, then continues for postEpochs more.
func runRemoteWithDrain(t *testing.T, rs *replicaSet, cfg core.Config, dsName string, n int, seed int64, preEpochs, postEpochs int, dynamic string) epochTrace {
	t.Helper()
	ctx := context.Background()
	g, err := datasets.Generate(dsName, n, seed)
	if err != nil {
		t.Fatal(err)
	}
	h := graph.ToHypergraph(g)
	sess, first, err := rs.client.CreateSession(ctx, cfg, h)
	if err != nil {
		t.Fatal(err)
	}
	tr := epochTrace{parts: [][]int32{first.Partition.Parts}}
	gen := newGen(t, dynamic, g, first.Partition, cfg.K, seed)
	submit := func(e int) {
		prob, old := gen.Next()
		res, err := sess.SubmitEpochInherited(ctx, prob.H, old)
		if err != nil {
			t.Fatalf("epoch %d: %v", e, err)
		}
		tr.parts = append(tr.parts, res.Partition.Parts)
		if err := gen.Observe(res.Partition); err != nil {
			t.Fatal(err)
		}
	}
	for e := 1; e <= preEpochs; e++ {
		submit(e)
	}

	// Drain the replica holding the session: it must hand the session to a
	// ring successor, and the gateway must find it there.
	before := rs.totalSessions()
	drained := false
	for i, srv := range rs.servers {
		if srv.Sessions() == 0 {
			continue
		}
		dctx, cancel := context.WithTimeout(ctx, 10*time.Second)
		err := srv.Drain(dctx)
		cancel()
		if err != nil {
			t.Fatalf("drain replica %d: %v", i, err)
		}
		if srv.Sessions() != 0 {
			t.Fatalf("replica %d still holds %d sessions after drain", i, srv.Sessions())
		}
		drained = true
		break
	}
	if !drained {
		t.Fatal("no replica held the session")
	}
	if got := rs.totalSessions(); got != before {
		t.Fatalf("sessions lost in handoff: %d before drain, %d after", before, got)
	}

	for e := preEpochs + 1; e <= preEpochs+postEpochs; e++ {
		submit(e)
	}
	if err := sess.Close(ctx); err != nil {
		t.Fatal(err)
	}
	return tr
}

// TestOwnerRedirectFollowedByClient: with no gateway in the path, a client
// whose replica drains must transparently follow the 307 +
// X-Hyperbal-Owner tombstone to the session's new replica.
func TestOwnerRedirectFollowedByClient(t *testing.T) {
	rs := newReplicaSet(t, 2, server.Config{SessionTTL: -1})
	ctx := context.Background()
	h := genHypergraph(t, 150, 31)
	cfg := hyperbal.BalancerConfig{K: 2, Alpha: 50, Seed: 13, Method: core.HypergraphRepart}

	redirectsBefore := counterValue("server_owner_redirects_total")
	hopsBefore := counterValue("client_owner_redirects_total")

	// Talk to replica 0 directly, bypassing the gateway.
	direct := hyperbal.NewClient(rs.urls[0], hyperbal.ClientOptions{MaxRetries: 3, Backoff: 5 * time.Millisecond})
	sess, first, err := direct.CreateSession(ctx, cfg, h)
	if err != nil {
		t.Fatal(err)
	}
	if rs.servers[0].Sessions() != 1 {
		t.Fatal("session not on replica 0")
	}

	dctx, cancel := context.WithTimeout(ctx, 10*time.Second)
	defer cancel()
	if err := rs.servers[0].Drain(dctx); err != nil {
		t.Fatal(err)
	}
	if rs.servers[1].Sessions() != 1 {
		t.Fatalf("session was not handed to replica 1 (holds %d)", rs.servers[1].Sessions())
	}

	// The client still points at replica 0; the partition fetch must chase
	// the tombstone and return the exact pre-drain state.
	p, _, err := sess.Partition(ctx)
	if err != nil {
		t.Fatalf("post-drain fetch through tombstone: %v", err)
	}
	if !int32Equal(p.Parts, first.Partition.Parts) {
		t.Error("partition served by the new owner differs from pre-drain state")
	}
	if got := counterValue("server_owner_redirects_total"); got <= redirectsBefore {
		t.Error("the drained replica answered without an owner redirect")
	}
	if got := counterValue("client_owner_redirects_total"); got <= hopsBefore {
		t.Error("the client never followed an owner redirect")
	}
}

// TestPeerCacheHit: a workload already solved on one replica must be
// adopted over the peering protocol when replayed on another replica, for
// every cache key the first replica owns on the ring.
func TestPeerCacheHit(t *testing.T) {
	rs := newReplicaSet(t, 2, server.Config{SessionTTL: -1})
	ctx := context.Background()
	cfg := hyperbal.BalancerConfig{K: 2, Alpha: 50, Seed: 41, Method: core.HypergraphRepart}

	hitsBefore := counterValue("server_peer_hits_total")
	servedBefore := counterValue("server_peer_served_total")

	a := hyperbal.NewClient(rs.urls[0], hyperbal.ClientOptions{Backoff: 5 * time.Millisecond})
	b := hyperbal.NewClient(rs.urls[1], hyperbal.ClientOptions{Backoff: 5 * time.Millisecond})

	// Solve a spread of distinct problems on replica 0, then replay each on
	// replica 1: keys owned by replica 0 come back over peering (about half
	// the seeds, so a dozen attempts always exercises it), and the adopted
	// results must be byte-identical to the original solves.
	for seed := int64(0); seed < 12; seed++ {
		h := genHypergraph(t, 100, 100+seed)
		sa, ra, err := a.CreateSession(ctx, cfg, h)
		if err != nil {
			t.Fatal(err)
		}
		sb, rb, err := b.CreateSession(ctx, cfg, h)
		if err != nil {
			t.Fatal(err)
		}
		if !int32Equal(ra.Partition.Parts, rb.Partition.Parts) {
			t.Fatalf("seed %d: peer-adopted result differs from the original solve", seed)
		}
		_ = sa.Close(ctx)
		_ = sb.Close(ctx)
	}
	if got := counterValue("server_peer_hits_total"); got <= hitsBefore {
		t.Error("no peer cache hit across 12 distinct keys — peering is not being consulted")
	}
	if got := counterValue("server_peer_served_total"); got <= servedBefore {
		t.Error("no replica served a peer lookup")
	}
}

// TestPeerTimeoutDegradesToLocalSolve: a hung peer must cost at most
// PeerTimeout — the replica then solves locally and the request succeeds.
func TestPeerTimeoutDegradesToLocalSolve(t *testing.T) {
	// A peer that accepts connections and never answers.
	hung := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		<-r.Context().Done()
	}))
	defer hung.Close()

	srv := server.New(server.Config{SessionTTL: -1, PeerTimeout: 20 * time.Millisecond})
	ts := httptest.NewServer(srv.Handler())
	defer func() { ts.Close(); srv.Close() }()
	srv.SetPeering(ts.URL, []string{ts.URL, hung.URL})

	timeoutsBefore := counterValue("server_peer_timeouts_total")

	client := hyperbal.NewClient(ts.URL, hyperbal.ClientOptions{Backoff: 5 * time.Millisecond})
	cfg := hyperbal.BalancerConfig{K: 2, Alpha: 50, Seed: 7, Method: core.HypergraphRepart}
	ctx := context.Background()
	for seed := int64(0); seed < 12; seed++ {
		h := genHypergraph(t, 100, 200+seed)
		start := time.Now()
		sess, res, err := client.CreateSession(ctx, cfg, h)
		if err != nil {
			t.Fatalf("seed %d: create failed instead of degrading: %v", seed, err)
		}
		if len(res.Partition.Parts) != 100 {
			t.Fatalf("seed %d: degenerate result", seed)
		}
		if d := time.Since(start); d > 5*time.Second {
			t.Fatalf("seed %d: create took %s — peer timeout not bounding the lookup", seed, d)
		}
		_ = sess.Close(ctx)
	}
	if got := counterValue("server_peer_timeouts_total"); got <= timeoutsBefore {
		t.Error("no peer timeout recorded across 12 keys — the hung peer was never consulted")
	}
}

// TestGatewayReplicaDeathFailover: when a replica dies without draining,
// creates must keep succeeding (routed to survivors) and requests for its
// sessions must answer a clean 404 — not hang, not a 5xx loop.
func TestGatewayReplicaDeathFailover(t *testing.T) {
	rs := newReplicaSet(t, 3, server.Config{SessionTTL: -1})
	ctx := context.Background()
	h := genHypergraph(t, 100, 51)
	cfg := hyperbal.BalancerConfig{K: 2, Alpha: 50, Seed: 3, Method: core.HypergraphRepart}

	var handles []*hyperbal.RemoteSession
	for i := 0; i < 9; i++ {
		sess, _, err := rs.client.CreateSession(ctx, cfg, h)
		if err != nil {
			t.Fatalf("create %d: %v", i, err)
		}
		handles = append(handles, sess)
	}

	// Kill the replica holding the most sessions, without drain.
	victim, most := -1, -1
	for i, srv := range rs.servers {
		if n := srv.Sessions(); n > most {
			victim, most = i, n
		}
	}
	rs.listen[victim].CloseClientConnections()
	rs.listen[victim].Close()
	t.Logf("killed replica %d holding %d sessions", victim, most)

	// Creates must keep landing on survivors.
	for i := 0; i < 4; i++ {
		if _, _, err := rs.client.CreateSession(ctx, cfg, h); err != nil {
			t.Fatalf("create after replica death: %v", err)
		}
	}
	// Sessions on the dead replica died with it (no drain): expect 404.
	lost, served := 0, 0
	for _, sess := range handles {
		_, _, err := sess.Partition(ctx)
		if err == nil {
			served++
			continue
		}
		var apiErr *hyperbal.APIError
		if errors.As(err, &apiErr) && apiErr.Status == http.StatusNotFound {
			lost++
			continue
		}
		t.Fatalf("session fetch after replica death: %v (want success or 404)", err)
	}
	if lost != most {
		t.Errorf("lost %d sessions, the dead replica held %d", lost, most)
	}
	if served != len(handles)-most {
		t.Errorf("%d sessions served, want %d", served, len(handles)-most)
	}
}
