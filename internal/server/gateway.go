package server

// Gateway is the routing tier of the distributed serving mode: a thin,
// stateless-except-for-placement HTTP proxy that shards sessions across N
// balancerd replicas.
//
//   - Creates: the gateway pre-generates the session id, picks a replica by
//     consistent hashing with bounded loads (so one hot ring segment cannot
//     overload a replica), and forwards the create with X-Hyperbal-Session-ID.
//     A create retargeted after a transport error never reuses a
//     gateway-generated id (the dead replica may have processed it); a
//     caller-assigned id is first probed across the ring candidates and
//     answered 409 if the create already landed. Caller-assigned creates are
//     therefore at-most-once: a copy held only by the unreachable replica is
//     invisible to the probe and left to TTL eviction.
//   - Session requests: routed to the placed replica; on a transport error
//     the replica is marked down and the request is retried on the id's
//     next ring candidate — which is exactly where drain-time handoff moved
//     the session, so a rolling restart is invisible to clients beyond one
//     retargeted request.
//   - 307 + X-Hyperbal-Owner answers (a drained replica's forwarding
//     tombstone) are followed transparently and the placement is updated.
//   - 404 from the expected replica triggers a probe of the remaining
//     candidates before giving up, covering placements lost to a gateway
//     restart.
//
// The gateway holds no session state, only the placement map as a routing
// cache; every placement decision is recomputable from the session id and
// the replica list, so a restarted gateway converges by probing.

import (
	"bytes"
	"context"
	"fmt"
	"io"
	"net/http"
	"sync"
	"time"

	"hyperbal/internal/obs"
)

// GatewayConfig parameterizes a Gateway.
type GatewayConfig struct {
	// Replicas is the full replica base-URL list (required, len >= 1).
	Replicas []string
	// LoadFactor is the bounded-load factor c: a replica accepts new
	// sessions while its placement count is under ceil(c·(total+1)/alive)
	// (default 1.25).
	LoadFactor float64
	// HealthInterval is the replica health-poll period (default 500ms;
	// negative disables the poller — tests drive PollHealth directly).
	HealthInterval time.Duration
	// MaxBodyBytes bounds buffered request bodies (default 64 MiB).
	MaxBodyBytes int64
	// HTTPClient overrides the proxy client (default &http.Client{}).
	HTTPClient *http.Client
	// Logf, when non-nil, receives one line per notable routing event.
	Logf func(format string, args ...any)
}

func (c GatewayConfig) withDefaults() GatewayConfig {
	if c.LoadFactor <= 0 {
		c.LoadFactor = 1.25
	}
	if c.HealthInterval == 0 {
		c.HealthInterval = 500 * time.Millisecond
	}
	if c.MaxBodyBytes <= 0 {
		c.MaxBodyBytes = 64 << 20
	}
	if c.HTTPClient == nil {
		c.HTTPClient = &http.Client{}
	}
	if c.Logf == nil {
		c.Logf = func(string, ...any) {}
	}
	return c
}

// Gateway routes the balancerd API across a replica set.
type Gateway struct {
	cfg  GatewayConfig
	ring *ring
	mux  *http.ServeMux

	mu    sync.Mutex
	place map[string]int // session id -> replica index
	loads []int          // placements per replica
	down  []bool

	stop     chan struct{}
	stopOnce sync.Once
}

// NewGateway builds a Gateway over cfg.Replicas and starts the health
// poller (unless disabled).
func NewGateway(cfg GatewayConfig) (*Gateway, error) {
	cfg = cfg.withDefaults()
	if len(cfg.Replicas) == 0 {
		return nil, fmt.Errorf("gateway: no replicas configured")
	}
	g := &Gateway{
		cfg:   cfg,
		ring:  newRing(cfg.Replicas),
		place: make(map[string]int),
		loads: make([]int, len(cfg.Replicas)),
		down:  make([]bool, len(cfg.Replicas)),
		stop:  make(chan struct{}),
	}
	obsGwReplicaAlive.Set(int64(len(cfg.Replicas)))
	mux := http.NewServeMux()
	mux.HandleFunc("POST /v1/sessions", g.route("create", g.handleCreate))
	mux.HandleFunc("GET /v1/sessions/{id}", g.route("info", g.proxySession))
	mux.HandleFunc("POST /v1/sessions/{id}/epochs", g.route("epoch", g.proxySession))
	mux.HandleFunc("PATCH /v1/sessions/{id}/epochs", g.route("delta", g.proxySession))
	mux.HandleFunc("GET /v1/sessions/{id}/partition", g.route("partition", g.proxySession))
	mux.HandleFunc("DELETE /v1/sessions/{id}", g.route("delete", g.proxySession))
	mux.HandleFunc("GET /healthz", g.route("healthz", g.handleHealthz))
	mux.Handle("GET /metrics", obs.Handler(obs.Default()))
	mux.HandleFunc("GET /metrics.json", func(w http.ResponseWriter, r *http.Request) {
		w.Header().Set("Content-Type", "application/json")
		_ = obs.Default().WriteJSON(w)
	})
	g.mux = mux
	if cfg.HealthInterval > 0 {
		go g.healthLoop()
	}
	return g, nil
}

// Handler returns the gateway's HTTP handler.
func (g *Gateway) Handler() http.Handler { return g.mux }

// Close stops the health poller.
func (g *Gateway) Close() { g.stopOnce.Do(func() { close(g.stop) }) }

func (g *Gateway) route(name string, h http.HandlerFunc) http.HandlerFunc {
	return func(w http.ResponseWriter, r *http.Request) {
		start := time.Now()
		obsGwRequests.With(name).Inc()
		h(w, r)
		obsGwRequestNs.With(name).ObserveSince(start)
	}
}

// --- replica liveness ---

func (g *Gateway) healthLoop() {
	t := time.NewTicker(g.cfg.HealthInterval)
	defer t.Stop()
	for {
		select {
		case <-g.stop:
			return
		case <-t.C:
			g.PollHealth(context.Background())
		}
	}
}

// PollHealth probes every replica's /healthz once and updates liveness. A
// replica is alive when it answers at all — a draining replica (503) still
// serves reads and handoff redirects, so it stays routable until the
// listener closes.
func (g *Gateway) PollHealth(ctx context.Context) {
	for i, u := range g.cfg.Replicas {
		pctx, cancel := context.WithTimeout(ctx, 2*time.Second)
		req, err := http.NewRequestWithContext(pctx, http.MethodGet, u+"/healthz", nil)
		alive := false
		if err == nil {
			resp, err := g.cfg.HTTPClient.Do(req)
			if err == nil {
				_, _ = io.Copy(io.Discard, io.LimitReader(resp.Body, 1<<12))
				resp.Body.Close()
				alive = true
			}
		}
		cancel()
		g.setAlive(i, alive)
	}
}

func (g *Gateway) setAlive(i int, alive bool) {
	g.mu.Lock()
	changed := g.down[i] == alive
	g.down[i] = !alive
	n := 0
	for _, d := range g.down {
		if !d {
			n++
		}
	}
	g.mu.Unlock()
	obsGwReplicaAlive.Set(int64(n))
	if changed {
		if alive {
			g.cfg.Logf("gateway: replica %s is back", g.cfg.Replicas[i])
		} else {
			g.cfg.Logf("gateway: replica %s is down", g.cfg.Replicas[i])
		}
	}
}

func (g *Gateway) markDown(i int) {
	obsGwReplicaDown.Inc()
	g.setAlive(i, false)
}

// --- placement bookkeeping ---

func (g *Gateway) placed(id string) (int, bool) {
	g.mu.Lock()
	defer g.mu.Unlock()
	i, ok := g.place[id]
	return i, ok
}

func (g *Gateway) setPlacement(id string, idx int) {
	g.mu.Lock()
	if old, ok := g.place[id]; ok {
		if old == idx {
			g.mu.Unlock()
			return
		}
		g.loads[old]--
	}
	g.place[id] = idx
	g.loads[idx]++
	n := len(g.place)
	g.mu.Unlock()
	obsGwPlaced.Set(int64(n))
}

func (g *Gateway) dropPlacement(id string) {
	g.mu.Lock()
	if old, ok := g.place[id]; ok {
		g.loads[old]--
		delete(g.place, id)
	}
	n := len(g.place)
	g.mu.Unlock()
	obsGwPlaced.Set(int64(n))
}

// replicaIndex maps a base URL back to its index, -1 when unknown.
func (g *Gateway) replicaIndex(url string) int {
	for i, u := range g.cfg.Replicas {
		if u == url {
			return i
		}
	}
	return -1
}

// --- proxying ---

// bufferBody slurps the request body so it can be replayed across
// candidate replicas.
func (g *Gateway) bufferBody(w http.ResponseWriter, r *http.Request) ([]byte, bool) {
	if r.Body == nil {
		return nil, true
	}
	body, err := io.ReadAll(http.MaxBytesReader(w, r.Body, g.cfg.MaxBodyBytes))
	if err != nil {
		writeError(w, http.StatusBadRequest, "bad_request", "invalid request body: "+err.Error())
		return nil, false
	}
	return body, true
}

// forward issues one request to a replica and returns the response. The
// caller owns resp.Body.
func (g *Gateway) forward(r *http.Request, base string, body []byte) (*http.Response, error) {
	req, err := http.NewRequestWithContext(r.Context(), r.Method, base+r.URL.RequestURI(), bytes.NewReader(body))
	if err != nil {
		return nil, err
	}
	for _, h := range []string{"Content-Type", "Accept", SessionIDHeader} {
		if v := r.Header.Get(h); v != "" {
			req.Header.Set(h, v)
		}
	}
	return g.cfg.HTTPClient.Do(req)
}

// relay copies a replica response to the client verbatim.
func relay(w http.ResponseWriter, resp *http.Response) {
	defer resp.Body.Close()
	for _, h := range []string{"Content-Type", OwnerHeader} {
		if v := resp.Header.Get(h); v != "" {
			w.Header().Set(h, v)
		}
	}
	w.WriteHeader(resp.StatusCode)
	_, _ = io.Copy(w, resp.Body)
}

// maxHops bounds 307-owner and candidate-retarget chains per request.
const maxHops = 6

func (g *Gateway) handleCreate(w http.ResponseWriter, r *http.Request) {
	body, ok := g.bufferBody(w, r)
	if !ok {
		return
	}
	// Pre-assign the id so the replica stores the session under the same
	// key the gateway hashes for routing. A client-supplied id (gateway
	// behind gateway, or tests) is honored as-is.
	id := r.Header.Get(SessionIDHeader)
	callerAssigned := id != ""
	if !callerAssigned {
		id = newSessionID()
	}
	r.Header.Set(SessionIDHeader, id)

	g.mu.Lock()
	idx := g.ring.pickBounded(id,
		func(i int) int { return g.loads[i] },
		func(i int) bool { return !g.down[i] },
		g.cfg.LoadFactor)
	g.mu.Unlock()
	if idx < 0 {
		writeError(w, http.StatusServiceUnavailable, "no_replicas", "no replica is alive")
		return
	}
	for hops := 0; hops < maxHops; hops++ {
		resp, err := g.forward(r, g.cfg.Replicas[idx], body)
		if err != nil {
			g.markDown(idx)
			obsGwRetargets.Inc()
			// The unreachable replica may have processed the create with only
			// the response lost; blindly re-sending the same id elsewhere
			// would fork the id across two replicas, and a later gateway
			// restart's ring probe could resurrect the stale epoch-0 copy.
			if callerAssigned {
				// The caller knows this id, so it cannot be swapped. If a
				// surviving candidate already holds the session, the create
				// landed: answer 409 exactly as the replica would on a
				// duplicate, and let the caller recover through GET. If no
				// survivor holds it, retrying elsewhere is safe against every
				// replica we can see — a copy on the unreachable replica
				// itself is the residual at-most-once window, and it can only
				// idle out by TTL (it is never routed to: the placement below
				// pins the retry's replica).
				if oi := g.probeSession(r.Context(), id); oi >= 0 {
					g.setPlacement(id, oi)
					g.cfg.Logf("gateway: create for %s already landed on %s; answering duplicate", id, g.cfg.Replicas[oi])
					writeError(w, http.StatusConflict, "duplicate_session", "session id already exists")
					return
				}
			} else {
				// The caller never saw the gateway-generated id: retry under a
				// fresh one, so a maybe-processed create on the unreachable
				// replica cannot diverge with the retry. The orphan, if any,
				// is unroutable and idles out by TTL.
				id = newSessionID()
				r.Header.Set(SessionIDHeader, id)
			}
			g.mu.Lock()
			idx = g.ring.pickBounded(id,
				func(i int) int { return g.loads[i] },
				func(i int) bool { return !g.down[i] },
				g.cfg.LoadFactor)
			g.mu.Unlock()
			if idx < 0 {
				writeError(w, http.StatusServiceUnavailable, "no_replicas", "no replica is alive")
				return
			}
			continue
		}
		if resp.StatusCode == http.StatusCreated {
			g.setPlacement(id, idx)
		}
		relay(w, resp)
		return
	}
	writeError(w, http.StatusBadGateway, "routing_loop", "create exceeded retarget budget")
}

// probeSession asks the id's live ring candidates whether one already
// holds the session, returning its replica index or -1. Used before
// retargeting a caller-assigned create whose replica died mid-request: a
// 200 from a candidate proves the create landed and the retry must not run.
func (g *Gateway) probeSession(ctx context.Context, id string) int {
	for _, idx := range g.ring.candidates(id) {
		g.mu.Lock()
		dead := g.down[idx]
		g.mu.Unlock()
		if dead {
			continue
		}
		pctx, cancel := context.WithTimeout(ctx, 2*time.Second)
		req, err := http.NewRequestWithContext(pctx, http.MethodGet, g.cfg.Replicas[idx]+"/v1/sessions/"+id, nil)
		if err != nil {
			cancel()
			continue
		}
		resp, err := g.cfg.HTTPClient.Do(req)
		cancel()
		if err != nil {
			continue
		}
		_, _ = io.Copy(io.Discard, io.LimitReader(resp.Body, 1<<16))
		resp.Body.Close()
		if resp.StatusCode == http.StatusOK {
			return idx
		}
	}
	return -1
}

// proxySession routes a request for an existing session: placed replica
// first, then the id's ring candidates. 307+Owner answers are followed,
// transport errors retarget, 404s probe the remaining candidates.
func (g *Gateway) proxySession(w http.ResponseWriter, r *http.Request) {
	id := r.PathValue("id")
	body, ok := g.bufferBody(w, r)
	if !ok {
		return
	}

	// Candidate order: placement cache first, then ring order (skipping the
	// cached entry), so a stale placement degrades to the ring walk.
	var order []int
	if idx, ok := g.placed(id); ok {
		order = append(order, idx)
	}
	for _, c := range g.ring.candidates(id) {
		if len(order) > 0 && c == order[0] {
			continue
		}
		order = append(order, c)
	}

	hops := 0
	var lastNotFound *http.Response
	for _, idx := range order {
		g.mu.Lock()
		dead := g.down[idx]
		g.mu.Unlock()
		if dead {
			continue
		}
	retry:
		if hops >= maxHops {
			break
		}
		hops++
		resp, err := g.forward(r, g.cfg.Replicas[idx], body)
		if err != nil {
			g.markDown(idx)
			obsGwRetargets.Inc()
			continue
		}
		switch {
		case resp.StatusCode == http.StatusTemporaryRedirect && resp.Header.Get(OwnerHeader) != "":
			// Forwarding tombstone on a drained replica: the session moved.
			owner := resp.Header.Get(OwnerHeader)
			_, _ = io.Copy(io.Discard, io.LimitReader(resp.Body, 1<<12))
			resp.Body.Close()
			obsGwRetargets.Inc()
			if oi := g.replicaIndex(owner); oi >= 0 {
				g.cfg.Logf("gateway: session %s moved to %s", id, owner)
				g.setPlacement(id, oi)
				idx = oi
				goto retry
			}
			writeError(w, http.StatusBadGateway, "unknown_owner", "handoff owner "+owner+" is not a configured replica")
			return
		case resp.StatusCode == http.StatusNotFound:
			// Maybe a stale placement — probe the remaining candidates, but
			// keep one 404 to relay if nobody holds the session.
			if lastNotFound != nil {
				_, _ = io.Copy(io.Discard, io.LimitReader(lastNotFound.Body, 1<<12))
				lastNotFound.Body.Close()
			}
			lastNotFound = resp
			obsGwRetargets.Inc()
			continue
		default:
			if resp.StatusCode < 300 {
				if r.Method == http.MethodDelete {
					g.dropPlacement(id)
				} else {
					g.setPlacement(id, idx)
				}
			}
			if lastNotFound != nil {
				_, _ = io.Copy(io.Discard, io.LimitReader(lastNotFound.Body, 1<<12))
				lastNotFound.Body.Close()
			}
			relay(w, resp)
			return
		}
	}
	if lastNotFound != nil {
		g.dropPlacement(id)
		relay(w, lastNotFound)
		return
	}
	writeError(w, http.StatusServiceUnavailable, "no_replicas", "no replica could serve the session")
}

func (g *Gateway) handleHealthz(w http.ResponseWriter, r *http.Request) {
	g.mu.Lock()
	alive := 0
	for _, d := range g.down {
		if !d {
			alive++
		}
	}
	placed := len(g.place)
	g.mu.Unlock()
	status, code := "ok", http.StatusOK
	if alive == 0 {
		status, code = "no_replicas", http.StatusServiceUnavailable
	}
	writeJSON(w, code, map[string]any{
		"status":   status,
		"replicas": len(g.cfg.Replicas),
		"alive":    alive,
		"placed":   placed,
	})
}
