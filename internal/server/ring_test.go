package server

import (
	"fmt"
	"testing"
)

func testURLs(n int) []string {
	urls := make([]string, n)
	for i := range urls {
		urls[i] = fmt.Sprintf("http://replica-%d:8080", i)
	}
	return urls
}

// TestRingDeterminism: every node given the same replica list must compute
// the same candidate order for every key — this is what lets the gateway,
// the cache-peering owner lookup, and the drain handoff agree without
// coordination.
func TestRingDeterminism(t *testing.T) {
	a, b := newRing(testURLs(5)), newRing(testURLs(5))
	for i := 0; i < 200; i++ {
		key := fmt.Sprintf("s-%032x", i)
		ca, cb := a.candidates(key), b.candidates(key)
		if len(ca) != 5 || len(cb) != 5 {
			t.Fatalf("key %s: candidate count %d/%d, want 5", key, len(ca), len(cb))
		}
		seen := map[int]bool{}
		for j := range ca {
			if ca[j] != cb[j] {
				t.Fatalf("key %s: candidate order diverges between identical rings", key)
			}
			if seen[ca[j]] {
				t.Fatalf("key %s: duplicate candidate %d", key, ca[j])
			}
			seen[ca[j]] = true
		}
		if a.owner(key) != b.owner(key) {
			t.Fatalf("key %s: owner diverges", key)
		}
	}
}

// TestRingOwnershipSpread: vnodes must spread key ownership across
// replicas — no replica may own a wildly disproportionate share.
func TestRingOwnershipSpread(t *testing.T) {
	r := newRing(testURLs(4))
	counts := map[string]int{}
	const keys = 4000
	for i := 0; i < keys; i++ {
		counts[r.owner(fmt.Sprintf("s-%032x", i))]++
	}
	for u, c := range counts {
		if c < keys/4/3 || c > keys/4*3 {
			t.Errorf("replica %s owns %d/%d keys — vnode spread is broken", u, c, keys)
		}
	}
}

// TestRingStability: removing one replica must only move the keys it
// owned; every other key keeps its owner. This is the property that makes
// gateway failover and drain handoff converge on the same replica.
func TestRingStability(t *testing.T) {
	urls := testURLs(4)
	full := newRing(urls)
	reduced := newRing(urls[:3]) // drop replica 3
	moved := 0
	const keys = 1000
	for i := 0; i < keys; i++ {
		key := fmt.Sprintf("s-%032x", i)
		was, now := full.owner(key), reduced.owner(key)
		if was != urls[3] {
			if was != now {
				t.Fatalf("key %s: owner moved from %s to %s though its replica survived", key, was, now)
			}
			continue
		}
		moved++
		// Keys of the removed replica must land on their next candidate in
		// the full ring's order.
		cands := full.candidates(key)
		next := ""
		for _, c := range cands {
			if urls[c] != urls[3] {
				next = urls[c]
				break
			}
		}
		if now != next {
			t.Fatalf("key %s: moved to %s, want next candidate %s", key, now, next)
		}
	}
	if moved == 0 {
		t.Fatal("removed replica owned no keys — spread test should have caught this")
	}
}

// TestRingPickBounded: bounded-load placement must respect liveness and
// keep the max load within the cap factor of the mean.
func TestRingPickBounded(t *testing.T) {
	r := newRing(testURLs(4))
	loads := make([]int, 4)
	alive := []bool{true, true, false, true} // replica 2 is down
	const sessions = 900
	for i := 0; i < sessions; i++ {
		idx := r.pickBounded(fmt.Sprintf("s-%032x", i),
			func(j int) int { return loads[j] },
			func(j int) bool { return alive[j] },
			1.25)
		if idx < 0 {
			t.Fatal("pickBounded found no replica with three alive")
		}
		if !alive[idx] {
			t.Fatalf("pickBounded placed a session on dead replica %d", idx)
		}
		loads[idx]++
	}
	if loads[2] != 0 {
		t.Fatalf("dead replica received %d sessions", loads[2])
	}
	mean := sessions / 3
	for i, l := range loads {
		if alive[i] && l > mean*14/10 {
			t.Errorf("replica %d load %d exceeds 1.4x mean %d — bounded-load cap not enforced", i, l, mean)
		}
	}

	// All dead: no placement.
	none := r.pickBounded("s-x", func(int) int { return 0 }, func(int) bool { return false }, 1.25)
	if none != -1 {
		t.Fatalf("pickBounded returned %d with every replica dead, want -1", none)
	}
}
