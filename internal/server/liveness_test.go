package server

// Regression tests for the serving-tier liveness bugs fixed alongside the
// distributed serving tier. Each test encodes the pre-fix failure mode:
//
//   - the TTL janitor evicting a session while a handler still held it,
//   - singleflight followers ignoring their request context and adopting a
//     leader's transient error,
//   - the admission gauges being derived from the racy channel length
//     instead of locked bookkeeping,
//   - partitionCache.put leaving the entries gauge stale on the
//     existing-key early return.

import (
	"bytes"
	"context"
	"errors"
	"io"
	"net/http"
	"net/http/httptest"
	"sync"
	"sync/atomic"
	"testing"
	"time"

	"hyperbal/internal/core"
	"hyperbal/internal/hypergraph"
	"hyperbal/internal/partition"
)

func testResult(parts ...int32) core.Result {
	return core.Result{Partition: partition.Partition{Parts: parts, K: 2}, CommVolume: 7}
}

func testHypergraph(t *testing.T) *hypergraph.Hypergraph {
	t.Helper()
	b := hypergraph.NewBuilder(4)
	b.AddNet(2, 0, 1, 2)
	b.AddNet(1, 1, 3)
	b.AddNet(3, 0, 3)
	return b.Build()
}

// TestSweepSkipsBusySessions: a session held by a handler (busy refcount
// > 0) must survive TTL sweeps regardless of how stale its lastAccess is.
// Pre-fix, sweep only consulted lastAccess, so a cold solve longer than
// the TTL got its session evicted mid-epoch and the handler's result was
// orphaned.
func TestSweepSkipsBusySessions(t *testing.T) {
	st := newStore(0) // no janitor; sweeps are driven by hand
	st.ttl = 10 * time.Millisecond
	defer st.close()

	st.add(&session{id: "s-idle"})
	entry, release := st.acquire("s-idle")
	if entry == nil {
		t.Fatal("acquire failed on a live session")
	}
	// Simulate a solve that outlives the TTL: make the session look long
	// idle while the handler still holds it.
	entry.lastAccess.Store(time.Now().Add(-time.Hour).UnixNano())
	st.sweep(time.Now())
	if st.get("s-idle") == nil {
		t.Fatal("sweep evicted a session a handler still holds")
	}

	release()
	// release touches the session, so the idle clock restarts at handler
	// completion; only once it genuinely idles past the TTL may it go.
	st.sweep(time.Now())
	if st.get("s-idle") == nil {
		t.Fatal("sweep evicted a freshly released session")
	}
	st.get("s-idle").lastAccess.Store(time.Now().Add(-time.Hour).UnixNano())
	st.sweep(time.Now())
	if st.get("s-idle") != nil {
		t.Fatal("idle session survived the sweep after release")
	}
}

// TestAddIfAbsentAdmitsExactlyOne: concurrent creates racing the same
// pre-assigned session id must admit exactly one session. Pre-fix the
// handler used a get-then-add pair, so two creates could both pass the
// duplicate check and the second add silently overwrote the first session.
func TestAddIfAbsentAdmitsExactlyOne(t *testing.T) {
	st := newStore(0)
	defer st.close()

	const contenders = 16
	entries := make([]*session, contenders)
	admitted := make([]bool, contenders)
	var wg sync.WaitGroup
	var start sync.WaitGroup
	start.Add(1)
	for i := 0; i < contenders; i++ {
		entries[i] = &session{id: "s-contended"}
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			start.Wait()
			admitted[i] = st.addIfAbsent(entries[i])
		}(i)
	}
	start.Done()
	wg.Wait()

	winners := 0
	winner := -1
	for i, ok := range admitted {
		if ok {
			winners++
			winner = i
		}
	}
	if winners != 1 {
		t.Fatalf("%d of %d concurrent addIfAbsent calls admitted, want exactly 1", winners, contenders)
	}
	if got := st.get("s-contended"); got != entries[winner] {
		t.Fatal("the stored session is not the admitted winner's entry")
	}
}

// waitForFlight blocks until key has an in-flight solve registered.
func waitForFlight(t *testing.T, s *Server, key string) {
	t.Helper()
	deadline := time.Now().Add(5 * time.Second)
	for time.Now().Before(deadline) {
		s.flights.mu.Lock()
		_, ok := s.flights.m[key]
		s.flights.mu.Unlock()
		if ok {
			return
		}
		time.Sleep(time.Millisecond)
	}
	t.Fatal("leader flight never registered")
}

// TestSolveSharedFollowerCancel: a follower whose request context is
// canceled must unblock immediately instead of being pinned to the
// leader's wall clock. Pre-fix the follower waited on the flight's done
// channel unconditionally.
func TestSolveSharedFollowerCancel(t *testing.T) {
	s := New(Config{SessionTTL: -1})
	defer s.Close()
	const key = "cancel-test-key"

	block := make(chan struct{})
	leaderDone := make(chan struct{})
	go func() {
		defer close(leaderDone)
		_, _, _ = s.solveShared(context.Background(), key, func() (core.Result, error) {
			<-block
			res := testResult(0, 1)
			s.cache.put(key, res)
			return res, nil
		})
	}()
	waitForFlight(t, s, key)

	ctx, cancel := context.WithCancel(context.Background())
	followerErr := make(chan error, 1)
	go func() {
		_, _, err := s.solveShared(ctx, key, func() (core.Result, error) {
			t.Error("canceled follower must not run the solve")
			return core.Result{}, nil
		})
		followerErr <- err
	}()
	time.Sleep(5 * time.Millisecond) // let the follower reach the wait
	cancel()
	select {
	case err := <-followerErr:
		if !errors.Is(err, context.Canceled) {
			t.Fatalf("follower returned %v, want context.Canceled", err)
		}
	case <-time.After(2 * time.Second):
		t.Fatal("canceled follower stayed blocked on the leader's flight")
	}
	close(block) // release the leader
	<-leaderDone
}

// TestSolveSharedLeaderErrorRetry: a leader's transient error must not fan
// out to every follower as a 5xx volley — one follower re-races the flight
// map and retries the solve; the rest share its result. Pre-fix every
// follower adopted the leader's error.
func TestSolveSharedLeaderErrorRetry(t *testing.T) {
	s := New(Config{SessionTTL: -1})
	defer s.Close()
	const key = "retry-test-key"

	block := make(chan struct{})
	leaderErr := make(chan error, 1)
	go func() {
		_, _, err := s.solveShared(context.Background(), key, func() (core.Result, error) {
			<-block
			return core.Result{}, errors.New("transient solve failure")
		})
		leaderErr <- err
	}()
	waitForFlight(t, s, key)

	var retrySolves atomic.Int32
	var wg sync.WaitGroup
	followerErrs := make([]error, 2)
	followerParts := make([][]int32, 2)
	for i := 0; i < 2; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			res, _, err := s.solveShared(context.Background(), key, func() (core.Result, error) {
				retrySolves.Add(1)
				r := testResult(1, 0)
				s.cache.put(key, r)
				return r, nil
			})
			followerErrs[i], followerParts[i] = err, res.Partition.Parts
		}(i)
	}
	time.Sleep(5 * time.Millisecond) // let both followers reach the wait
	close(block)

	if err := <-leaderErr; err == nil {
		t.Fatal("the caller that ran the failing solve must see its error")
	}
	wg.Wait()
	for i := 0; i < 2; i++ {
		if followerErrs[i] != nil {
			t.Fatalf("follower %d adopted the leader's transient error: %v", i, followerErrs[i])
		}
		if len(followerParts[i]) != 2 {
			t.Fatalf("follower %d got no result", i)
		}
	}
	if n := retrySolves.Load(); n < 1 || n > 2 {
		t.Fatalf("retry solves = %d, want 1 (new leader) or 2 (cache race)", n)
	}
}

// TestAdmissionGaugesFromBookkeeping: the in-flight gauge must be derived
// from locked bookkeeping, not from len(slots) — a slot mid-transition on
// the channel (here emulated by draining a token) must not change what the
// gauges report. Pre-fix, gaugesLocked sampled len(a.slots) and the
// post-release snapshot raced queued wake-ups into impossible depths.
func TestAdmissionGaugesFromBookkeeping(t *testing.T) {
	a := newAdmission(2, 4)
	release, err := a.acquire(context.Background())
	if err != nil {
		t.Fatal(err)
	}
	if got := obsInFlight.Load(); got != 1 {
		t.Fatalf("inflight gauge = %d after one acquire, want 1", got)
	}

	// Emulate another goroutine mid slot-transition: the channel length
	// changes, the bookkeeping does not. The gauges must follow the books.
	<-a.slots
	a.mu.Lock()
	a.gaugesLocked()
	a.mu.Unlock()
	if got := obsInFlight.Load(); got != 1 {
		t.Fatalf("inflight gauge = %d, want 1 (gauge must not track channel length)", got)
	}
	if got := obsQueueDepth.Load(); got != 0 {
		t.Fatalf("queue gauge = %d, want 0", got)
	}
	a.slots <- struct{}{}

	release()
	if obsInFlight.Load() != 0 || obsQueueDepth.Load() != 0 {
		t.Fatalf("gauges (%d,%d) after full release, want (0,0)",
			obsInFlight.Load(), obsQueueDepth.Load())
	}
}

// TestCacheGaugeRefreshedOnDuplicatePut: put must refresh the entries
// gauge on every path, including the existing-key early return — the gauge
// is process-global, so a duplicate put on one cache must restore its view
// after another cache moved the gauge. Pre-fix the early return skipped
// the refresh and the gauge kept the other cache's count.
func TestCacheGaugeRefreshedOnDuplicatePut(t *testing.T) {
	res := testResult(0, 1)
	c1 := newPartitionCache(8)
	c1.put("a", res)
	c1.put("b", res)
	c2 := newPartitionCache(8)
	c2.put("x", res) // gauge now reflects c2 (1 entry)

	c1.put("a", res) // duplicate: early return, but the gauge must refresh
	if got := obsCacheEntries.Load(); got != int64(c1.len()) {
		t.Fatalf("entries gauge = %d after duplicate put, want %d", got, c1.len())
	}
}

// TestHandoffCodecRoundTrip: the drain-handoff frame must reproduce the
// session state exactly — config, epoch, last result, migration summary,
// and a hypergraph whose recomputed fingerprint matches the recorded one.
func TestHandoffCodecRoundTrip(t *testing.T) {
	h := testHypergraph(t)
	bal, err := core.NewBalancer(core.Config{K: 2, Alpha: 25, Seed: 3, Method: core.HypergraphRepart})
	if err != nil {
		t.Fatal(err)
	}
	cfg := bal.Config()
	st := handoffState{
		ID:     "s-0123456789abcdef0123456789abcdef",
		Config: WireConfigFrom(cfg),
		Epoch:  4,
		Last: WireResult{
			Epoch: 4, K: 2, Parts: []int32{0, 1, 1, 0},
			CommVolume: 9, MigrationVolume: 3, Moved: 2, RepartMs: 1.5,
			Rebalanced: true, Warm: true,
		},
		Mig: &MigrationSummary{Moves: 2, TotalVolume: 3, MaxOutbound: 2, MaxInbound: 1, Volume: [][]int64{{0, 2}, {1, 0}}},
		H:   h,
		FP:  h.Fingerprint(),
	}
	got, err := decodeHandoffBinary(appendHandoffBinary(nil, st))
	if err != nil {
		t.Fatal(err)
	}
	if got.ID != st.ID || got.Epoch != st.Epoch || got.FP != st.FP {
		t.Fatalf("identity fields corrupted: %+v", got)
	}
	if got.Config != st.Config {
		t.Fatalf("config mismatch: %+v vs %+v", got.Config, st.Config)
	}
	if !int32SliceEqual(got.Last.Parts, st.Last.Parts) || got.Last.CommVolume != st.Last.CommVolume ||
		got.Last.Warm != st.Last.Warm || got.Last.Moved != st.Last.Moved {
		t.Fatalf("last result mismatch: %+v vs %+v", got.Last, st.Last)
	}
	if got.Mig == nil || got.Mig.Moves != 2 || len(got.Mig.Volume) != 2 {
		t.Fatalf("migration summary mismatch: %+v", got.Mig)
	}
	if got.H.Fingerprint() != h.Fingerprint() {
		t.Fatal("hypergraph fingerprint changed across the handoff codec")
	}
}

// TestPostHandoffDeliversLargeFrames: a handoff frame embeds the full base
// hypergraph, so it routinely exceeds the 32KB chunks net/http copies
// request bodies in. The whole frame must arrive. Pre-fix the request body
// reader returned io.EOF alongside the first chunk, so any frame past one
// copy buffer was silently truncated, the receiver's decode failed, every
// ring candidate rejected the handoff, and the session died with the
// draining replica.
func TestPostHandoffDeliversLargeFrames(t *testing.T) {
	s := New(Config{SessionTTL: -1})
	defer s.Close()

	frame := make([]byte, 200<<10)
	for i := range frame {
		frame[i] = byte(i * 31)
	}

	var got []byte
	ts := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		body, err := io.ReadAll(r.Body)
		if err != nil {
			t.Errorf("reading handoff body: %v", err)
		}
		got = body
		w.WriteHeader(http.StatusNoContent)
	}))
	defer ts.Close()

	if !s.postHandoff(context.Background(), ts.URL, frame) {
		t.Fatal("postHandoff reported failure against an accepting peer")
	}
	if len(got) != len(frame) {
		t.Fatalf("peer received %d of %d frame bytes — handoff body truncated", len(got), len(frame))
	}
	if !bytes.Equal(got, frame) {
		t.Fatal("peer received corrupted frame bytes")
	}
}

// TestCacheResultCodecRoundTrip covers the peer-cache wire frame.
func TestCacheResultCodecRoundTrip(t *testing.T) {
	want := core.Result{
		Partition:       partition.Partition{Parts: []int32{1, 0, 1}, K: 2},
		CommVolume:      11,
		MigrationVolume: 4,
		Moved:           3,
		RepartTime:      1700 * time.Microsecond,
		Warm:            true,
	}
	got, err := decodeCacheResultBinary(appendCacheResultBinary(nil, want))
	if err != nil {
		t.Fatal(err)
	}
	if !int32SliceEqual(got.Partition.Parts, want.Partition.Parts) ||
		got.Partition.K != want.Partition.K ||
		got.CommVolume != want.CommVolume ||
		got.MigrationVolume != want.MigrationVolume ||
		got.Moved != want.Moved {
		t.Fatalf("round trip mismatch: %+v vs %+v", got, want)
	}
	// Warm-start provenance must survive adoption: a peer-adopted entry is
	// republished into the local cache, so dropping these fields misreports
	// warm=false / repart_ms=0 for every later hit on the adopted entry.
	if got.RepartTime != want.RepartTime || got.Warm != want.Warm {
		t.Fatalf("provenance lost in round trip: warm=%v repart=%s, want warm=%v repart=%s",
			got.Warm, got.RepartTime, want.Warm, want.RepartTime)
	}
}

func int32SliceEqual(a, b []int32) bool {
	if len(a) != len(b) {
		return false
	}
	for i := range a {
		if a[i] != b[i] {
			return false
		}
	}
	return true
}
