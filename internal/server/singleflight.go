package server

import (
	"context"
	"sync"

	"hyperbal/internal/core"
	"hyperbal/internal/partition"
)

// flightGroup coalesces concurrent cold solves that share a cache key. The
// key is the partition-cache key — content fingerprint × effective config ×
// epoch × inherited distribution (× warm digest) — which pins every input
// of the partitioner except Config.Parallelism, excluded by the
// parallelism-invariance property. So any two requests with equal keys
// would compute byte-identical results, and the follower can adopt the
// leader's result as if it had run the solve itself.
//
// Deadlock-freedom: callers hold an admission worker slot while waiting on
// a flight, but the flight's leader also holds its own slot and never
// waits on another flight, so every wait is on a computation that is
// actively running.
type flightGroup struct {
	mu sync.Mutex
	m  map[string]*flight
}

type flight struct {
	done chan struct{}
	res  core.Result
	err  error
}

func newFlightGroup() *flightGroup { return &flightGroup{m: make(map[string]*flight)} }

// solveOrigin says how a result was obtained.
type solveOrigin int

const (
	originLeader solveOrigin = iota // this caller ran fn
	originShared                    // adopted a concurrent leader's result
	originCached                    // served from the partition cache
	originPeer                      // adopted from a peer replica's cache
)

// solveShared returns the result for key, consulting the partition cache
// first, then a peer replica's cache (when cache peering is configured and
// another replica owns the key — see peering.go), then coalescing
// concurrent misses: one caller (the leader) runs fn — which must also
// publish to the cache on success — and every concurrent caller with the
// same key waits and shares the byte-identical result. Followers receive a
// cloned partition so no two sessions alias part storage.
//
// Two liveness properties of the follower wait:
//
//   - It selects on ctx, so a caller whose request is canceled (client gone,
//     deadline hit) unblocks immediately instead of being pinned to the
//     leader's wall clock.
//   - A leader error does not fan out to every follower: transient failures
//     (fault-injected delays, resource blips) would turn one failed solve
//     into a 5xx volley. Instead the followers loop — one of them wins the
//     flight map and retries the solve as the new leader, the rest follow
//     the new flight. Each round retires the caller that ran fn (it returns
//     its own result or error), so the retry cascade is bounded by the
//     concurrent caller count.
func (s *Server) solveShared(ctx context.Context, key string, fn func() (core.Result, error)) (core.Result, solveOrigin, error) {
	for {
		if err := ctx.Err(); err != nil {
			return core.Result{}, originShared, err
		}
		if res, ok := s.cache.get(key); ok {
			return res, originCached, nil
		}
		g := s.flights
		g.mu.Lock()
		if f, ok := g.m[key]; ok {
			g.mu.Unlock()
			obsSingleflightShared.Inc()
			select {
			case <-ctx.Done():
				return core.Result{}, originShared, ctx.Err()
			case <-f.done:
			}
			if f.err != nil {
				obsSingleflightRetries.Inc()
				continue // race to become the new leader and retry the solve
			}
			res := f.res
			res.Partition = partition.Partition{
				Parts: append([]int32(nil), f.res.Partition.Parts...),
				K:     f.res.Partition.K,
			}
			return res, originShared, nil
		}
		f := &flight{done: make(chan struct{})}
		g.m[key] = f
		g.mu.Unlock()

		origin := originLeader
		if res, ok := s.peerFetch(ctx, key); ok {
			// The key's owner replica already holds the byte-identical
			// result; adopt it and publish locally so followers (and later
			// arrivals) share it without a solve.
			origin = originPeer
			s.cache.put(key, res)
			f.res, f.err = res, nil
		} else {
			obsSingleflightLeaders.Inc()
			f.res, f.err = fn()
		}

		// fn published to the cache before this point, so a caller arriving
		// after the delete below misses the flight but hits the cache.
		g.mu.Lock()
		delete(g.m, key)
		g.mu.Unlock()
		close(f.done)
		if f.err != nil {
			return core.Result{}, origin, f.err
		}
		return f.res, origin, nil
	}
}
