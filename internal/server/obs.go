package server

import "hyperbal/internal/obs"

// Registry handles for the serving tier. Queue/in-flight gauges track the
// admission controller, the cache counters feed the hit-rate panel, and
// server_request_ns{route=...} is the latency histogram the loadgen
// p50/p99 report reads.
var (
	obsRequests  = obs.Default().CounterVec("server_requests_total", "route")
	obsRequestNs = obs.Default().HistogramVec("server_request_ns", "route", obs.DurationBounds)
	obsResponses = obs.Default().CounterVec("server_responses_total", "status")

	obsInFlight         = obs.Default().Gauge("server_inflight_epochs")
	obsQueueDepth       = obs.Default().Gauge("server_queue_depth")
	obsRejectedBusy     = obs.Default().Counter("server_rejected_busy_total")
	obsRejectedDraining = obs.Default().Counter("server_rejected_draining_total")

	obsCacheHits    = obs.Default().Counter("server_cache_hits_total")
	obsCacheMisses  = obs.Default().Counter("server_cache_misses_total")
	obsCacheEntries = obs.Default().Gauge("server_cache_entries")

	obsSessionsActive  = obs.Default().Gauge("server_sessions_active")
	obsSessionsCreated = obs.Default().Counter("server_sessions_created_total")
	obsSessionsEvicted = obs.Default().Counter("server_sessions_evicted_total")
	obsSessionsClosed  = obs.Default().Counter("server_sessions_closed_total")

	obsEpochs       = obs.Default().Counter("server_epochs_total")
	obsEpochSkipped = obs.Default().Counter("server_epochs_skipped_total")
	obsFaultDelayNs = obs.Default().Histogram("server_fault_delay_ns", obs.DurationBounds)

	// Delta epochs: accepted PATCH submissions, 409 fingerprint mismatches
	// (client falls back to a full epoch), wire bytes actually received vs
	// the estimated full-epoch body those bytes replaced, the dirty-region
	// fraction per delta, and partitioning wall time split warm vs cold.
	obsDeltaEpochs        = obs.Default().Counter("server_delta_epochs_total")
	obsDeltaMismatches    = obs.Default().Counter("server_delta_fingerprint_mismatches_total")
	obsDeltaBytes         = obs.Default().Counter("server_delta_bytes_total")
	obsDeltaFullBytesEst  = obs.Default().Counter("server_delta_full_bytes_estimated_total")
	obsDeltaDirtyPermille = obs.Default().Histogram("server_delta_dirty_permille", obs.LinBounds(50, 50, 20))
	obsEpochWarmNs        = obs.Default().Histogram("server_epoch_warm_ns", obs.DurationBounds)
	obsEpochColdNs        = obs.Default().Histogram("server_epoch_cold_ns", obs.DurationBounds)

	// Wire codec accounting: payload bytes in/out per codec (json|binary;
	// error bodies excluded — they are always JSON and tiny), time spent
	// encoding/decoding per operation, and singleflight coalescing — one
	// leader per distinct in-flight cold solve, one shared increment per
	// concurrent request that adopted a leader's result instead of solving.
	obsWireRxBytes         = obs.Default().CounterVec("server_wire_rx_bytes_total", "codec")
	obsWireTxBytes         = obs.Default().CounterVec("server_wire_tx_bytes_total", "codec")
	obsCodecNs             = obs.Default().HistogramVec("server_codec_ns", "op", obs.DurationBounds)
	obsSingleflightLeaders = obs.Default().Counter("server_singleflight_leaders_total")
	obsSingleflightShared  = obs.Default().Counter("server_singleflight_shared_total")
	// Followers that re-raced the flight map after a leader error (one of
	// them retries the solve instead of fanning the error out as a 5xx
	// volley).
	obsSingleflightRetries = obs.Default().Counter("server_singleflight_retries_total")

	// Cache peering and drain handoff (the distributed serving tier).
	// peer_hits: partition-cache misses answered by the key's owner replica
	// (byte-identical by parallelism invariance, adopted without a solve).
	// peer_misses: owner asked but had no entry; peer_timeouts: owner did
	// not answer within PeerTimeout (degraded to a local solve);
	// peer_errors: transport/decode failures, same degradation.
	// peer_served: lookups this replica answered for its peers.
	obsPeerHits     = obs.Default().Counter("server_peer_hits_total")
	obsPeerMisses   = obs.Default().Counter("server_peer_misses_total")
	obsPeerTimeouts = obs.Default().Counter("server_peer_timeouts_total")
	obsPeerErrors   = obs.Default().Counter("server_peer_errors_total")
	obsPeerServed   = obs.Default().Counter("server_peer_served_total")
	// Drain-time session-state handoff: sessions serialized to a successor
	// replica, sessions adopted from a draining peer, and sessions that
	// could not be placed anywhere (kept locally, at risk of loss).
	obsHandoffSent     = obs.Default().Counter("server_handoff_sessions_total")
	obsHandoffReceived = obs.Default().Counter("server_handoff_received_total")
	obsHandoffFailed   = obs.Default().Counter("server_handoff_failed_total")
	// 307 answers pointing a caller at a session's post-handoff owner.
	obsOwnerRedirects = obs.Default().Counter("server_owner_redirects_total")
)

// Gateway-side handles (the routing tier shares the registry; a process is
// either a gateway or a replica, so the families never mix in one dump).
var (
	obsGwRequests  = obs.Default().CounterVec("gateway_requests_total", "route")
	obsGwRequestNs = obs.Default().HistogramVec("gateway_request_ns", "route", obs.DurationBounds)
	// Proxy attempts that moved past their first-choice replica: transport
	// errors (replica marked down), 404 probes across ring candidates, and
	// 307 owner redirects followed.
	obsGwRetargets    = obs.Default().Counter("gateway_retargets_total")
	obsGwReplicaDown  = obs.Default().Counter("gateway_replica_down_total")
	obsGwPlaced       = obs.Default().Gauge("gateway_placed_sessions")
	obsGwReplicaAlive = obs.Default().Gauge("gateway_replicas_alive")
)
