package partition

import (
	"hyperbal/internal/hypergraph"
)

// CommMatrix returns the per-part-pair communication volume implied by a
// partition under the owner-sends model the application simulator uses:
// for each net, the part owning the net's first pin sends the net's cost
// to every other part the net touches. Entry [p][q] is the volume part p
// sends part q per iteration; the total over all entries equals the
// connectivity-1 cut.
func CommMatrix(h *hypergraph.Hypergraph, p Partition) [][]int64 {
	m := make([][]int64, p.K)
	for i := range m {
		m[i] = make([]int64, p.K)
	}
	mark := make([]bool, p.K)
	for n := 0; n < h.NumNets(); n++ {
		pins := h.Pins(n)
		if len(pins) == 0 {
			continue
		}
		owner := p.Parts[pins[0]]
		var touched []int32
		for _, v := range pins {
			q := p.Parts[v]
			if !mark[q] {
				mark[q] = true
				touched = append(touched, q)
			}
		}
		for _, q := range touched {
			mark[q] = false
			if q != owner {
				m[owner][q] += h.Cost(n)
			}
		}
	}
	return m
}

// MatrixTotal sums all entries of a part-pair matrix.
func MatrixTotal(m [][]int64) int64 {
	var t int64
	for _, row := range m {
		for _, v := range row {
			t += v
		}
	}
	return t
}

// SOED returns the sum-of-external-degrees cut metric: each cut net
// contributes cost * lambda (an alternative to connectivity-1 used by some
// partitioners; provided for cross-checking against other tools).
func SOED(h *hypergraph.Hypergraph, p Partition) int64 {
	mark := make([]bool, p.K)
	var s int64
	for n := 0; n < h.NumNets(); n++ {
		lambda := Connectivity(h, p, n, mark)
		if lambda > 1 {
			s += h.Cost(n) * int64(lambda)
		}
	}
	return s
}

// CutNetMetric returns the plain cut-net metric: each cut net contributes
// its cost once, regardless of connectivity.
func CutNetMetric(h *hypergraph.Hypergraph, p Partition) int64 {
	mark := make([]bool, p.K)
	var s int64
	for n := 0; n < h.NumNets(); n++ {
		if Connectivity(h, p, n, mark) > 1 {
			s += h.Cost(n)
		}
	}
	return s
}

// BoundaryVertices returns the vertices incident to at least one cut net
// (the working set of refinement algorithms).
func BoundaryVertices(h *hypergraph.Hypergraph, p Partition) []int32 {
	mark := make([]bool, p.K)
	isBoundary := make([]bool, h.NumVertices())
	for n := 0; n < h.NumNets(); n++ {
		if Connectivity(h, p, n, mark) > 1 {
			for _, v := range h.Pins(n) {
				isBoundary[v] = true
			}
		}
	}
	var out []int32
	for v, b := range isBoundary {
		if b {
			out = append(out, int32(v))
		}
	}
	return out
}
