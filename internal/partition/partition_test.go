package partition

import (
	"math/rand"
	"testing"
	"testing/quick"

	"hyperbal/internal/graph"
	"hyperbal/internal/hypergraph"
)

// figure1EpochJ builds the epoch-j hypergraph of the paper's Figure 1
// worked example (without the augmentation): 9 vertices — the paper's
// vertices 1..7 plus new vertices a, b mapped to indices 0..6, 7(a), 8(b).
// Communication nets: {2,3,a}, {5,6,7}, {4,6,a}, {1,2}, {a,b}... The paper
// does not enumerate all nets; we use exactly the three cut nets mentioned
// plus structure irrelevant to the totals. Costs are 1 before alpha
// scaling.
func figure1EpochJ() *hypergraph.Hypergraph {
	b := hypergraph.NewBuilder(9)
	b.AddNet(1, 1, 2, 7) // {2,3,a}
	b.AddNet(1, 4, 5, 6) // {5,6,7}
	b.AddNet(1, 3, 5, 7) // {4,6,a}
	return b.Build()
}

func TestCutSizePaperExample(t *testing.T) {
	// Reproduces the arithmetic of Section 3: with alpha=5 scaling, nets
	// {2,3,a} and {5,6,7} cut with lambda=2 and {4,6,a} with lambda=3
	// gives 2*5*(2-1) + 1*5*(3-1) = 20.
	h := figure1EpochJ().ScaleCosts(5)
	p := Partition{K: 3, Parts: []int32{
		0, // 1 -> V1
		0, // 2 -> V1
		1, // 3 -> V2 (moved)
		1, // 4 -> V2
		1, // 5 -> V2
		2, // 6 -> V3 (moved)
		2, // 7 -> V3
		0, // a -> V1
		2, // b -> V3
	}}
	if got := CutSize(h, p); got != 20 {
		t.Fatalf("CutSize = %d, want 20 (paper worked example)", got)
	}
	if got := CutNets(h, p); got != 3 {
		t.Fatalf("CutNets = %d, want 3", got)
	}
}

func TestConnectivity(t *testing.T) {
	h := figure1EpochJ()
	p := Partition{K: 3, Parts: []int32{0, 0, 0, 1, 1, 1, 2, 2, 2}}
	// net 0 = {1,2,a} -> parts {0,0,2} lambda=2
	if got := Connectivity(h, p, 0, nil); got != 2 {
		t.Fatalf("Connectivity(net0) = %d, want 2", got)
	}
	// net 1 pins indices {4,5,6} -> parts {1,1,2} lambda=2
	if got := Connectivity(h, p, 1, nil); got != 2 {
		t.Fatalf("Connectivity(net1) = %d, want 2", got)
	}
	// An uncut net has lambda 1.
	uncut := Partition{K: 3, Parts: []int32{0, 0, 0, 0, 0, 0, 0, 0, 0}}
	if got := Connectivity(h, uncut, 1, nil); got != 1 {
		t.Fatalf("Connectivity(uncut net1) = %d, want 1", got)
	}
	// scratch-buffer variant agrees
	mark := make([]bool, 3)
	if got := Connectivity(h, p, 2, mark); got != Connectivity(h, p, 2, nil) {
		t.Fatal("buffered and unbuffered Connectivity disagree")
	}
	for _, m := range mark {
		if m {
			t.Fatal("scratch buffer not re-zeroed")
		}
	}
}

func TestWeightsAndBalance(t *testing.T) {
	b := hypergraph.NewBuilder(4)
	b.SetWeight(0, 2)
	b.SetWeight(1, 2)
	b.SetWeight(2, 3)
	b.SetWeight(3, 1)
	h := b.Build()
	p := Partition{K: 2, Parts: []int32{0, 0, 1, 1}}
	w := Weights(h, p)
	if w[0] != 4 || w[1] != 4 {
		t.Fatalf("Weights = %v", w)
	}
	if Imbalance(w) != 0 {
		t.Fatalf("Imbalance = %v, want 0", Imbalance(w))
	}
	if !IsBalanced(w, 0) {
		t.Fatal("perfectly balanced partition rejected")
	}
	p2 := Partition{K: 2, Parts: []int32{0, 0, 0, 1}}
	w2 := Weights(h, p2) // 7 vs 1, avg 4, imbalance 0.75
	if got := Imbalance(w2); got < 0.74 || got > 0.76 {
		t.Fatalf("Imbalance = %v, want 0.75", got)
	}
	if IsBalanced(w2, 0.5) {
		t.Fatal("imbalanced partition accepted")
	}
}

func TestImbalanceZeroTotal(t *testing.T) {
	if Imbalance([]int64{0, 0}) != 0 {
		t.Fatal("zero-weight imbalance should be 0")
	}
}

func TestMigrationVolume(t *testing.T) {
	b := hypergraph.NewBuilder(4)
	for v := 0; v < 4; v++ {
		b.SetSize(v, 3) // paper example: each vertex has size 3
	}
	h := b.Build()
	old := Partition{K: 3, Parts: []int32{0, 0, 1, 2}}
	now := Partition{K: 3, Parts: []int32{0, 1, 2, 2}}
	// vertices 1 and 2 moved -> 2 * 3 = 6, matching the paper's migration
	// cost arithmetic in Section 3.
	if got := MigrationVolume(h, old, now); got != 6 {
		t.Fatalf("MigrationVolume = %d, want 6", got)
	}
	if got := MovedVertices(old, now); got != 2 {
		t.Fatalf("MovedVertices = %d, want 2", got)
	}
}

func TestEdgeCut(t *testing.T) {
	b := graph.NewBuilder(4)
	b.AddEdge(0, 1, 2)
	b.AddEdge(1, 2, 3)
	b.AddEdge(2, 3, 4)
	g := b.Build()
	p := Partition{K: 2, Parts: []int32{0, 0, 1, 1}}
	if got := EdgeCut(g, p); got != 3 {
		t.Fatalf("EdgeCut = %d, want 3", got)
	}
}

func TestValidate(t *testing.T) {
	p := Partition{K: 2, Parts: []int32{0, 1, 2}}
	if p.Validate() == nil {
		t.Fatal("out-of-range part accepted")
	}
	p.Parts[2] = 1
	if err := p.Validate(); err != nil {
		t.Fatal(err)
	}
}

func TestRemapIdentityWhenUnchanged(t *testing.T) {
	b := hypergraph.NewBuilder(6)
	h := b.Build()
	old := Partition{K: 3, Parts: []int32{0, 0, 1, 1, 2, 2}}
	fresh := Partition{K: 3, Parts: []int32{1, 1, 2, 2, 0, 0}} // same blocks, permuted labels
	mapped := Remap(h, old, fresh)
	if MigrationVolume(h, old, mapped) != 0 {
		t.Fatalf("Remap failed to undo pure relabeling: %v", mapped.Parts)
	}
}

func TestRemapReducesMigration(t *testing.T) {
	rng := rand.New(rand.NewSource(11))
	n, k := 200, 8
	b := hypergraph.NewBuilder(n)
	for v := 0; v < n; v++ {
		b.SetSize(v, int64(1+rng.Intn(9)))
	}
	h := b.Build()
	old := Partition{K: k, Parts: make([]int32, n)}
	for v := range old.Parts {
		old.Parts[v] = int32(v * k / n)
	}
	// fresh: mostly a permutation of old, with noise.
	perm := rng.Perm(k)
	fresh := Partition{K: k, Parts: make([]int32, n)}
	for v := range fresh.Parts {
		if rng.Float64() < 0.9 {
			fresh.Parts[v] = int32(perm[old.Parts[v]])
		} else {
			fresh.Parts[v] = int32(rng.Intn(k))
		}
	}
	before := MigrationVolume(h, old, fresh)
	mapped := Remap(h, old, fresh)
	after := MigrationVolume(h, old, mapped)
	if after > before {
		t.Fatalf("Remap increased migration: %d -> %d", before, after)
	}
	if after >= before/2 {
		t.Fatalf("Remap should roughly undo a 90%% permutation: %d -> %d", before, after)
	}
	// Cut is invariant under relabeling.
	if CutSize(h, fresh) != CutSize(h, mapped) {
		t.Fatal("Remap changed the cut")
	}
}

func TestRemapDifferentK(t *testing.T) {
	h := hypergraph.NewBuilder(4).Build()
	old := Partition{K: 2, Parts: []int32{0, 0, 1, 1}}
	fresh := Partition{K: 4, Parts: []int32{3, 3, 1, 0}}
	mapped := Remap(h, old, fresh)
	if err := mapped.Validate(); err != nil {
		t.Fatal(err)
	}
	// old part 0 overlaps new part 3 most -> 3 relabels to 0.
	if mapped.Parts[0] != 0 || mapped.Parts[1] != 0 {
		t.Fatalf("remap = %v", mapped.Parts)
	}
}

// Property: Remap never increases migration volume relative to the
// untouched fresh partition, and preserves the cut.
func TestQuickRemapNeverWorse(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		n := 5 + rng.Intn(60)
		k := 2 + rng.Intn(6)
		b := hypergraph.NewBuilder(n)
		for v := 0; v < n; v++ {
			b.SetSize(v, int64(1+rng.Intn(5)))
		}
		for i := 0; i < rng.Intn(3*n); i++ {
			u, v := rng.Intn(n), rng.Intn(n)
			if u != v {
				b.AddNet(int64(1+rng.Intn(3)), u, v)
			}
		}
		h := b.Build()
		old := Partition{K: k, Parts: make([]int32, n)}
		fresh := Partition{K: k, Parts: make([]int32, n)}
		for v := 0; v < n; v++ {
			old.Parts[v] = int32(rng.Intn(k))
			fresh.Parts[v] = int32(rng.Intn(k))
		}
		mapped := Remap(h, old, fresh)
		if mapped.Validate() != nil {
			return false
		}
		return MigrationVolume(h, old, mapped) <= MigrationVolume(h, old, fresh) &&
			CutSize(h, mapped) == CutSize(h, fresh)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 60}); err != nil {
		t.Fatal(err)
	}
}

// Property: CutSize is invariant under any relabeling permutation.
func TestQuickCutRelabelInvariant(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		n := 4 + rng.Intn(40)
		k := 2 + rng.Intn(5)
		b := hypergraph.NewBuilder(n)
		for i := 0; i < rng.Intn(2*n)+1; i++ {
			sz := 2 + rng.Intn(4)
			if sz > n {
				sz = n
			}
			b.AddNet(int64(1+rng.Intn(4)), rng.Perm(n)[:sz]...)
		}
		h := b.Build()
		p := Partition{K: k, Parts: make([]int32, n)}
		for v := range p.Parts {
			p.Parts[v] = int32(rng.Intn(k))
		}
		perm := rng.Perm(k)
		q := Partition{K: k, Parts: make([]int32, n)}
		for v := range q.Parts {
			q.Parts[v] = int32(perm[p.Parts[v]])
		}
		return CutSize(h, p) == CutSize(h, q)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 60}); err != nil {
		t.Fatal(err)
	}
}
