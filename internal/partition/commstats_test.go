package partition

import (
	"math/rand"
	"testing"
	"testing/quick"

	"hyperbal/internal/hypergraph"
)

func randomHGParts(seed int64) (*hypergraph.Hypergraph, Partition) {
	rng := rand.New(rand.NewSource(seed))
	n := 5 + rng.Intn(40)
	k := 2 + rng.Intn(4)
	b := hypergraph.NewBuilder(n)
	for i := 0; i < rng.Intn(2*n)+2; i++ {
		sz := 2 + rng.Intn(4)
		if sz > n {
			sz = n
		}
		b.AddNet(int64(1+rng.Intn(3)), rng.Perm(n)[:sz]...)
	}
	h := b.Build()
	p := Partition{K: k, Parts: make([]int32, n)}
	for v := range p.Parts {
		p.Parts[v] = int32(rng.Intn(k))
	}
	return h, p
}

// Property: the comm matrix total equals the connectivity-1 cut — the two
// accountings of "how much data moves per iteration" must agree.
func TestQuickCommMatrixTotalEqualsCut(t *testing.T) {
	f := func(seed int64) bool {
		h, p := randomHGParts(seed)
		return MatrixTotal(CommMatrix(h, p)) == CutSize(h, p)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 60}); err != nil {
		t.Fatal(err)
	}
}

func TestCommMatrixDiagonalZero(t *testing.T) {
	h, p := randomHGParts(5)
	m := CommMatrix(h, p)
	for i := range m {
		if m[i][i] != 0 {
			t.Fatalf("diagonal entry [%d][%d] = %d", i, i, m[i][i])
		}
	}
}

// Property: metric ordering — cut-net <= connectivity-1 <= SOED, with
// SOED = connectivity-1 + cut-net for every partition.
func TestQuickMetricRelationships(t *testing.T) {
	f := func(seed int64) bool {
		h, p := randomHGParts(seed)
		cn := CutNetMetric(h, p)
		c1 := CutSize(h, p)
		so := SOED(h, p)
		return cn <= c1 && c1 <= so && so == c1+cn
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 60}); err != nil {
		t.Fatal(err)
	}
}

func TestBoundaryVertices(t *testing.T) {
	// path of 4 vertices, 3 nets, split in the middle
	b := hypergraph.NewBuilder(4)
	b.AddNet(1, 0, 1)
	b.AddNet(1, 1, 2)
	b.AddNet(1, 2, 3)
	h := b.Build()
	p := Partition{K: 2, Parts: []int32{0, 0, 1, 1}}
	bd := BoundaryVertices(h, p)
	if len(bd) != 2 || bd[0] != 1 || bd[1] != 2 {
		t.Fatalf("boundary = %v, want [1 2]", bd)
	}
	// uncut partition has no boundary
	if got := BoundaryVertices(h, Partition{K: 2, Parts: []int32{0, 0, 0, 0}}); len(got) != 0 {
		t.Fatalf("uncut boundary = %v", got)
	}
}

func TestMetricsUncut(t *testing.T) {
	b := hypergraph.NewBuilder(3)
	b.AddNet(5, 0, 1, 2)
	h := b.Build()
	p := Partition{K: 2, Parts: []int32{0, 0, 0}}
	if SOED(h, p) != 0 || CutNetMetric(h, p) != 0 || CutSize(h, p) != 0 {
		t.Fatal("uncut hypergraph should have zero metrics")
	}
}
