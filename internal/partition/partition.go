// Package partition defines partition assignments and the quality metrics
// used throughout hyperbal: connectivity-1 cut size (Eq. 2 of the paper),
// the balance criterion (Eq. 1), migration volume between two assignments,
// and the maximal-matching part remap used by the partition-from-scratch
// baselines.
package partition

import (
	"fmt"

	"hyperbal/internal/graph"
	"hyperbal/internal/hypergraph"
)

// Partition maps each vertex to a part in [0, K).
type Partition struct {
	Parts []int32
	K     int
}

// New creates a partition of n vertices into k parts, all assigned part 0.
func New(n, k int) Partition {
	return Partition{Parts: make([]int32, n), K: k}
}

// Clone returns a deep copy.
func (p Partition) Clone() Partition {
	return Partition{Parts: append([]int32(nil), p.Parts...), K: p.K}
}

// Of returns the part of vertex v.
func (p Partition) Of(v int) int { return int(p.Parts[v]) }

// Assign sets the part of vertex v.
func (p Partition) Assign(v, part int) { p.Parts[v] = int32(part) }

// Validate checks that every assignment is in range.
func (p Partition) Validate() error {
	for v, q := range p.Parts {
		if q < 0 || int(q) >= p.K {
			return fmt.Errorf("partition: vertex %d assigned to %d, want [0,%d)", v, q, p.K)
		}
	}
	return nil
}

// Weights returns the total vertex weight per part.
func Weights(h *hypergraph.Hypergraph, p Partition) []int64 {
	w := make([]int64, p.K)
	for v := 0; v < h.NumVertices(); v++ {
		w[p.Of(v)] += h.Weight(v)
	}
	return w
}

// GraphWeights returns the total vertex weight per part for a graph.
func GraphWeights(g *graph.Graph, p Partition) []int64 {
	w := make([]int64, p.K)
	for v := 0; v < g.NumVertices(); v++ {
		w[p.Of(v)] += g.Weight(v)
	}
	return w
}

// Imbalance returns max_p W_p / W_avg - 1; 0 is perfect balance. Parts with
// zero average weight return +Inf only when some part has weight.
func Imbalance(weights []int64) float64 {
	var total, max int64
	for _, w := range weights {
		total += w
		if w > max {
			max = w
		}
	}
	if total == 0 {
		return 0
	}
	avg := float64(total) / float64(len(weights))
	return float64(max)/avg - 1
}

// IsBalanced reports whether Eq. 1 holds: W_p <= W_avg * (1+eps) for all p.
func IsBalanced(weights []int64, eps float64) bool {
	return Imbalance(weights) <= eps+1e-12
}

// Connectivity returns lambda_n: the number of distinct parts net n's pins
// touch under p. A scratch buffer of length >= p.K may be supplied to avoid
// allocation; it must be zeroed and is re-zeroed before return.
func Connectivity(h *hypergraph.Hypergraph, p Partition, n int, mark []bool) int {
	local := mark == nil
	if local {
		mark = make([]bool, p.K)
	}
	lambda := 0
	pins := h.Pins(n)
	for _, v := range pins {
		q := p.Of(int(v))
		if !mark[q] {
			mark[q] = true
			lambda++
		}
	}
	for _, v := range pins {
		mark[p.Of(int(v))] = false
	}
	return lambda
}

// CutSize returns the connectivity-1 cut (Eq. 2):
// sum over nets of cost_n * (lambda_n - 1). This equals the total
// communication volume of the computation the hypergraph models.
func CutSize(h *hypergraph.Hypergraph, p Partition) int64 {
	mark := make([]bool, p.K)
	var cut int64
	for n := 0; n < h.NumNets(); n++ {
		lambda := Connectivity(h, p, n, mark)
		if lambda > 1 {
			cut += h.Cost(n) * int64(lambda-1)
		}
	}
	return cut
}

// CutNets returns the number of nets with lambda > 1.
func CutNets(h *hypergraph.Hypergraph, p Partition) int {
	mark := make([]bool, p.K)
	c := 0
	for n := 0; n < h.NumNets(); n++ {
		if Connectivity(h, p, n, mark) > 1 {
			c++
		}
	}
	return c
}

// EdgeCut returns the weighted edge cut of a graph partition: the sum of
// weights of edges whose endpoints lie in different parts.
func EdgeCut(g *graph.Graph, p Partition) int64 {
	var cut int64
	for u := 0; u < g.NumVertices(); u++ {
		adj, wts := g.Adj(u), g.AdjWeights(u)
		pu := p.Of(u)
		for i, v := range adj {
			if int(v) > u && p.Of(int(v)) != pu {
				cut += wts[i]
			}
		}
	}
	return cut
}

// MigrationVolume returns the total data size of vertices whose part
// changed from old to new. Vertices present only in one of the two
// assignments must not be included by the caller (assignments must be over
// the same vertex set/hypergraph).
func MigrationVolume(h *hypergraph.Hypergraph, old, new Partition) int64 {
	if len(old.Parts) != len(new.Parts) {
		panic("partition: MigrationVolume over different vertex sets")
	}
	var vol int64
	for v := range old.Parts {
		if old.Parts[v] != new.Parts[v] {
			vol += h.Size(v)
		}
	}
	return vol
}

// GraphMigrationVolume is MigrationVolume for graph vertices.
func GraphMigrationVolume(g *graph.Graph, old, new Partition) int64 {
	if len(old.Parts) != len(new.Parts) {
		panic("partition: GraphMigrationVolume over different vertex sets")
	}
	var vol int64
	for v := range old.Parts {
		if old.Parts[v] != new.Parts[v] {
			vol += g.Size(v)
		}
	}
	return vol
}

// MovedVertices returns the number of vertices whose assignment changed.
func MovedVertices(old, new Partition) int {
	moved := 0
	for v := range old.Parts {
		if old.Parts[v] != new.Parts[v] {
			moved++
		}
	}
	return moved
}
