package partition

import (
	"slices"

	"hyperbal/internal/hypergraph"
)

// Remap relabels the parts of a freshly computed partition so that each new
// part number is matched to the old part number with which it shares the
// most data, minimizing migration volume after a partition-from-scratch.
// This is the "maximal matching heuristic in Zoltan to map partition
// numbers" referenced in Section 5 of the paper.
//
// The overlap matrix S[p][q] holds the total vertex data size assigned to
// old part p and new part q; a greedy maximal-weight matching on S chooses
// the relabeling. Unmatched new parts are assigned the remaining old labels
// in arbitrary (deterministic) order.
//
// Remap returns a new Partition; the input is not modified.
func Remap(h *hypergraph.Hypergraph, old, fresh Partition) Partition {
	sizes := make([]int64, h.NumVertices())
	for v := range sizes {
		sizes[v] = h.Size(v)
	}
	return remapBySizes(sizes, old, fresh)
}

// RemapBySizes is Remap with explicit per-vertex data sizes, usable for
// graph partitions as well.
func RemapBySizes(sizes []int64, old, fresh Partition) Partition {
	return remapBySizes(sizes, old, fresh)
}

func remapBySizes(sizes []int64, old, fresh Partition) Partition {
	if len(old.Parts) != len(fresh.Parts) {
		panic("partition: Remap over different vertex sets")
	}
	k := fresh.K
	if old.K > k {
		k = old.K
	}
	// Overlap matrix, sparse-ish but k is small; dense is fine.
	overlap := make([][]int64, k)
	for p := range overlap {
		overlap[p] = make([]int64, k)
	}
	for v := range fresh.Parts {
		overlap[old.Parts[v]][fresh.Parts[v]] += sizes[v]
	}

	type entry struct {
		oldPart, newPart int
		size             int64
	}
	entries := make([]entry, 0, k*k)
	for p := 0; p < k; p++ {
		for q := 0; q < k; q++ {
			if overlap[p][q] > 0 {
				entries = append(entries, entry{p, q, overlap[p][q]})
			}
		}
	}
	slices.SortFunc(entries, func(a, b entry) int {
		if a.size != b.size {
			if a.size > b.size {
				return -1
			}
			return 1
		}
		if a.oldPart != b.oldPart {
			return a.oldPart - b.oldPart
		}
		return a.newPart - b.newPart
	})

	newToOld := make([]int32, k)
	for i := range newToOld {
		newToOld[i] = -1
	}
	oldUsed := make([]bool, k)
	for _, e := range entries {
		if newToOld[e.newPart] == -1 && !oldUsed[e.oldPart] {
			newToOld[e.newPart] = int32(e.oldPart)
			oldUsed[e.oldPart] = true
		}
	}
	// Assign leftovers deterministically.
	next := 0
	for q := 0; q < k; q++ {
		if newToOld[q] != -1 {
			continue
		}
		for oldUsed[next] {
			next++
		}
		newToOld[q] = int32(next)
		oldUsed[next] = true
	}

	// Greedy matching maximizes locally but can lose to the identity
	// relabeling (it may spend an old label on one large overlap and
	// strand two medium diagonal ones). Keep whichever mapping retains
	// more data, so Remap never increases migration over the input.
	var greedyKept, identityKept int64
	for q := 0; q < k; q++ {
		greedyKept += overlap[newToOld[q]][q]
		identityKept += overlap[q][q]
	}
	if identityKept > greedyKept {
		for q := 0; q < k; q++ {
			newToOld[q] = int32(q)
		}
	}

	out := Partition{Parts: make([]int32, len(fresh.Parts)), K: fresh.K}
	for v, q := range fresh.Parts {
		out.Parts[v] = newToOld[q]
	}
	return out
}
