package phg

import (
	"fmt"
	"math/rand"
	"sync"
	"testing"
	"time"

	"hyperbal/internal/hgp"
	"hyperbal/internal/hypergraph"
	"hyperbal/internal/mpi"
	"hyperbal/internal/partition"
)

const testWatchdog = 60 * time.Second

func grid2D(w, h int) *hypergraph.Hypergraph {
	b := hypergraph.NewBuilder(w * h)
	id := func(x, y int) int { return y*w + x }
	for y := 0; y < h; y++ {
		for x := 0; x < w; x++ {
			if x+1 < w {
				b.AddNet(1, id(x, y), id(x+1, y))
			}
			if y+1 < h {
				b.AddNet(1, id(x, y), id(x, y+1))
			}
		}
	}
	return b.Build()
}

func randomHG(rng *rand.Rand, n, nets, maxPins int) *hypergraph.Hypergraph {
	b := hypergraph.NewBuilder(n)
	for v := 0; v < n; v++ {
		b.SetWeight(v, int64(1+rng.Intn(3)))
		b.SetSize(v, int64(1+rng.Intn(3)))
	}
	for i := 0; i < nets; i++ {
		sz := 2 + rng.Intn(maxPins-1)
		if sz > n {
			sz = n
		}
		b.AddNet(int64(1+rng.Intn(3)), rng.Perm(n)[:sz]...)
	}
	return b.Build()
}

// runParallel runs phg.Partition on np ranks under the substrate watchdog
// (a stall fails with a DeadlockError naming the blocked ranks) and
// returns the rank-0 result after checking all ranks agree.
func runParallel(t *testing.T, np int, h *hypergraph.Hypergraph, opt Options) partition.Partition {
	t.Helper()
	return runParallelFault(t, np, h, opt, nil)
}

// runParallelFault is runParallel under an injected fault schedule.
func runParallelFault(t *testing.T, np int, h *hypergraph.Hypergraph, opt Options, plan *mpi.FaultPlan) partition.Partition {
	t.Helper()
	results := make([]partition.Partition, np)
	var mu sync.Mutex
	_, err := mpi.RunWith(np, mpi.Options{Watchdog: testWatchdog, Fault: plan}, func(c *mpi.Comm) error {
		p, err := Partition(c, h, opt)
		if err != nil {
			return err
		}
		mu.Lock()
		results[c.Rank()] = p
		mu.Unlock()
		return nil
	})
	if err != nil {
		t.Fatal(err)
	}
	for r := 1; r < np; r++ {
		for v := range results[0].Parts {
			if results[r].Parts[v] != results[0].Parts[v] {
				t.Fatalf("rank %d disagrees with rank 0 at vertex %d", r, v)
			}
		}
	}
	return results[0]
}

func TestParallelPartitionGrid(t *testing.T) {
	h := grid2D(20, 20)
	for _, np := range []int{1, 2, 4, 8} {
		p := runParallel(t, np, h, Options{Serial: hgp.Options{K: 4, Imbalance: 0.05, Seed: 1}})
		if err := p.Validate(); err != nil {
			t.Fatalf("np=%d: %v", np, err)
		}
		w := partition.Weights(h, p)
		if !partition.IsBalanced(w, 0.15) {
			t.Fatalf("np=%d: imbalanced %v", np, w)
		}
		if cut := partition.CutSize(h, p); cut > 240 {
			t.Fatalf("np=%d: cut %d too high", np, cut)
		}
	}
}

func TestParallelFixedVertices(t *testing.T) {
	rng := rand.New(rand.NewSource(3))
	h := randomHG(rng, 200, 300, 5)
	k := 4
	fixed := make([]int32, 200)
	for v := range fixed {
		fixed[v] = hypergraph.Free
	}
	for v := 0; v < 40; v++ {
		fixed[v] = int32(v % k)
	}
	hf := h.WithFixed(fixed)
	p := runParallel(t, 4, hf, Options{Serial: hgp.Options{K: k, Imbalance: 0.10, Seed: 5}})
	for v := 0; v < 40; v++ {
		if p.Of(v) != v%k {
			t.Fatalf("fixed vertex %d landed on %d, want %d", v, p.Of(v), v%k)
		}
	}
}

func TestParallelRepartitioningModel(t *testing.T) {
	// End-to-end: partition, then repartition via the augmented hypergraph
	// (migration nets + fixed partition vertices) in parallel.
	h := grid2D(16, 16)
	k := 4
	opt := Options{Serial: hgp.Options{K: k, Imbalance: 0.05, Seed: 7}}
	old := runParallel(t, 4, h, opt)

	// Build the repartitioning hypergraph by hand (avoid core import cycle
	// risk: core does not depend on phg, so we mirror its construction).
	n := h.NumVertices()
	b := hypergraph.NewBuilder(n + k)
	for v := 0; v < n; v++ {
		b.SetWeight(v, h.Weight(v))
		b.SetSize(v, h.Size(v))
	}
	for i := 0; i < k; i++ {
		b.SetWeight(n+i, 0)
		b.Fix(n+i, i)
	}
	alpha := int64(1) // strong migration anchor
	for netID := 0; netID < h.NumNets(); netID++ {
		b.AddNetInt32(h.Cost(netID)*alpha, h.Pins(netID))
	}
	for v := 0; v < n; v++ {
		b.AddNet(h.Size(v), v, n+int(old.Parts[v]))
	}
	aug := b.Build()

	p := runParallel(t, 4, aug, Options{Serial: hgp.Options{K: k, Imbalance: 0.05, Seed: 9}})
	for i := 0; i < k; i++ {
		if p.Of(n+i) != i {
			t.Fatalf("partition vertex %d moved to %d", i, p.Of(n+i))
		}
	}
	// The model inequality: the chosen partition's augmented cut must not
	// exceed that of staying put (staying put is always feasible).
	stay := partition.Partition{K: k, Parts: make([]int32, n+k)}
	copy(stay.Parts, old.Parts)
	for i := 0; i < k; i++ {
		stay.Parts[n+i] = int32(i)
	}
	if got, lim := partition.CutSize(aug, p), partition.CutSize(aug, stay); got > lim {
		t.Fatalf("repartitioned model cut %d worse than staying put %d", got, lim)
	}
	// At alpha=1 migration dominates: most vertices must stay home.
	moved := 0
	for v := 0; v < n; v++ {
		if p.Parts[v] != old.Parts[v] {
			moved++
		}
	}
	if moved > n/5 {
		t.Fatalf("at alpha=1 parallel repartitioning moved %d of %d vertices", moved, n)
	}
}

func TestParallelQualityClosesToSerial(t *testing.T) {
	rng := rand.New(rand.NewSource(11))
	h := randomHG(rng, 300, 500, 6)
	sp, err := hgp.Partition(h, hgp.Options{K: 4, Imbalance: 0.05, Seed: 13})
	if err != nil {
		t.Fatal(err)
	}
	serialCut := partition.CutSize(h, sp)
	pp := runParallel(t, 4, h, Options{Serial: hgp.Options{K: 4, Imbalance: 0.05, Seed: 13}})
	parallelCut := partition.CutSize(h, pp)
	if float64(parallelCut) > 2.0*float64(serialCut)+20 {
		t.Fatalf("parallel cut %d much worse than serial %d", parallelCut, serialCut)
	}
}

func TestParallelIPMMatchConsistency(t *testing.T) {
	rng := rand.New(rand.NewSource(17))
	h := randomHG(rng, 120, 200, 5)
	fixed := make([]int32, 120)
	for v := range fixed {
		fixed[v] = hypergraph.Free
	}
	for v := 0; v < 30; v++ {
		fixed[v] = int32(v % 3)
	}
	hf := h.WithFixed(fixed)

	matches := make([][]int32, 4)
	err := mpi.Run(4, func(c *mpi.Comm) error {
		rng := rand.New(rand.NewSource(100 + int64(c.Rank())))
		m := parallelIPM(c, hf, rng, Options{MatchRounds: 6, Serial: hgp.Options{K: 3}}.withDefaults())
		matches[c.Rank()] = m
		return nil
	})
	if err != nil {
		t.Fatal(err)
	}
	// identical on all ranks
	for r := 1; r < 4; r++ {
		for v := range matches[0] {
			if matches[r][v] != matches[0][v] {
				t.Fatalf("rank %d match vector differs at %d", r, v)
			}
		}
	}
	// legal: symmetric and filter-respecting
	m := matches[0]
	for v := 0; v < 120; v++ {
		u := int(m[v])
		if int(m[u]) != v {
			t.Fatalf("match not symmetric at %d", v)
		}
		if u != v {
			fv, fu := hf.Fixed(v), hf.Fixed(u)
			if fv != hypergraph.Free && fu != hypergraph.Free && fv != fu {
				t.Fatalf("matched across fixed parts: %d,%d", v, u)
			}
		}
	}
	// it actually matched something
	matched := 0
	for v := range m {
		if int(m[v]) != v {
			matched++
		}
	}
	if matched == 0 {
		t.Fatal("parallel IPM matched nothing")
	}
}

func TestBlockRange(t *testing.T) {
	for _, tc := range []struct{ n, size int }{{10, 3}, {7, 7}, {5, 8}, {100, 4}} {
		covered := 0
		prevHi := 0
		for r := 0; r < tc.size; r++ {
			lo, hi := blockRange(tc.n, tc.size, r)
			if lo != prevHi {
				t.Fatalf("n=%d size=%d rank=%d: gap at %d", tc.n, tc.size, r, lo)
			}
			if hi < lo {
				t.Fatalf("negative block")
			}
			covered += hi - lo
			prevHi = hi
		}
		if covered != tc.n {
			t.Fatalf("n=%d size=%d: covered %d", tc.n, tc.size, covered)
		}
	}
}

func TestParallelK1(t *testing.T) {
	h := grid2D(4, 4)
	p := runParallel(t, 2, h, Options{Serial: hgp.Options{K: 1}})
	for _, q := range p.Parts {
		if q != 0 {
			t.Fatal("K=1 must map to part 0")
		}
	}
}

func TestParallelTrafficAccounted(t *testing.T) {
	h := grid2D(12, 12)
	stats, err := mpi.RunStats(4, func(c *mpi.Comm) error {
		_, err := Partition(c, h, Options{Serial: hgp.Options{K: 4, Seed: 21}})
		return err
	})
	if err != nil {
		t.Fatal(err)
	}
	if stats.Messages.Load() == 0 || stats.Bytes.Load() == 0 {
		t.Fatalf("no substrate traffic recorded: %+v", stats)
	}
}

func ExamplePartition() {
	h := grid2D(8, 8)
	_ = mpi.Run(4, func(c *mpi.Comm) error {
		p, err := Partition(c, h, Options{Serial: hgp.Options{K: 2, Seed: 1}})
		if err != nil {
			return err
		}
		if c.Rank() == 0 {
			w := partition.Weights(h, p)
			fmt.Println(len(w) == 2 && w[0]+w[1] == 64)
		}
		return nil
	})
	// Output: true
}

func TestLocalIPMOption(t *testing.T) {
	rng := rand.New(rand.NewSource(31))
	h := randomHG(rng, 300, 450, 5)
	p := runParallel(t, 4, h, Options{
		Serial:   hgp.Options{K: 4, Imbalance: 0.08, Seed: 33},
		LocalIPM: true,
	})
	if err := p.Validate(); err != nil {
		t.Fatal(err)
	}
	w := partition.Weights(h, p)
	if !partition.IsBalanced(w, 0.20) {
		t.Fatalf("local-IPM partition imbalanced: %v", w)
	}
	// Quality should stay in the same league as global IPM.
	pg := runParallel(t, 4, h, Options{Serial: hgp.Options{K: 4, Imbalance: 0.08, Seed: 33}})
	cutL := partition.CutSize(h, p)
	cutG := partition.CutSize(h, pg)
	if float64(cutL) > 1.7*float64(cutG)+20 {
		t.Fatalf("local IPM quality collapsed: %d vs %d", cutL, cutG)
	}
}

func TestLocalIPMRespectsFixed(t *testing.T) {
	rng := rand.New(rand.NewSource(35))
	h := randomHG(rng, 160, 240, 5)
	k := 4
	fixed := make([]int32, 160)
	for v := range fixed {
		fixed[v] = hypergraph.Free
	}
	for v := 0; v < 32; v++ {
		fixed[v] = int32(v % k)
	}
	hf := h.WithFixed(fixed)
	p := runParallel(t, 4, hf, Options{Serial: hgp.Options{K: k, Seed: 37}, LocalIPM: true})
	for v := 0; v < 32; v++ {
		if p.Of(v) != v%k {
			t.Fatalf("fixed vertex %d landed on %d", v, p.Of(v))
		}
	}
}
