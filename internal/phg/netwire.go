package phg

import "hyperbal/internal/mpi"

// The SPMD rounds ship these payloads through the substrate; registering
// them lets the same code run unchanged over a network transport
// (internal/mpinet), which reconstructs payload types by name.
func init() {
	mpi.RegisterPayload(
		matchBid{}, []matchBid(nil),
		moveProposal{}, []moveProposal(nil),
		matchPair{}, []matchPair(nil),
	)
}
