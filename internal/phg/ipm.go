package phg

import (
	"math/rand"

	"hyperbal/internal/hypergraph"
	"hyperbal/internal/mpi"
)

// matchBid is one rank's best local match offer for a candidate vertex.
type matchBid struct {
	Cand  int32
	Match int32 // proposed partner (local to the bidding rank's block)
	Score float64
}

// matchPair is one block-local match decision, allgathered after the
// LocalIPM phase (package-level so it can cross a network transport).
type matchPair struct{ A, B int32 }

// parallelIPM runs the candidate-round inner-product matching of §4.1.
// All ranks return the identical match vector. With opt.LocalIPM, most
// matching happens inside each rank's block without communication (the
// optimization proposed in the paper's conclusion); the block-local
// matches are then exchanged once, and a single global round mops up
// cross-block pairs.
func parallelIPM(c *mpi.Comm, h *hypergraph.Hypergraph, rng *rand.Rand, opt Options) []int32 {
	n := h.NumVertices()
	match := make([]int32, n)
	for v := range match {
		match[v] = -1
	}
	lo, hi := blockRange(n, c.Size(), c.Rank())
	if opt.LocalIPM {
		localIPM(c, h, match, lo, hi, rng, opt)
		// one global candidate round for the leftovers
		opt.MatchRounds = 1
	}
	maxNetSize := opt.Serial.MaxNetSize
	if maxNetSize <= 0 {
		maxNetSize = 500
	}
	candPerRound := opt.CandidatesPerRound
	if candPerRound <= 0 {
		candPerRound = (hi - lo) / 2
		if candPerRound < 8 {
			candPerRound = 8
		}
	}

	score := make([]float64, n)
	touched := make([]int32, 0, 64)

	for round := 0; round < opt.MatchRounds; round++ {
		// 1. Nominate unmatched local candidates. Every rank must observe
		// the same candidate list order, so candidates are gathered in rank
		// order (AllgatherSlice preserves it).
		var local []int32
		for _, v := range rng.Perm(hi - lo) {
			gv := int32(lo + v)
			if match[gv] == -1 {
				local = append(local, gv)
				if len(local) >= candPerRound {
					break
				}
			}
		}
		obsCandidates.Add(int64(len(local)))
		cands, _ := mpi.AllgatherSlice(c, local)
		if len(cands) == 0 {
			break
		}
		if c.Rank() == 0 {
			obsIPMRounds.Inc()
		}

		// 2. Compute this rank's best bid for each candidate, restricted to
		// unmatched vertices in the local block and honoring the fixed
		// compatibility filter. (All scores are computed; infeasible pairs
		// are filtered at selection, as in Zoltan.)
		bids := make([]matchBid, len(cands))
		feasible := 0
		for i, cand := range cands {
			bids[i] = bestLocalBid(h, match, int(cand), lo, hi, maxNetSize, score, &touched)
			if bids[i].Match >= 0 {
				feasible++
			}
		}
		obsBids.Add(int64(feasible))

		// 3. Global best bid per candidate.
		best := mpi.AllreduceSlice(c, bids, func(a, b matchBid) matchBid {
			if b.Score > a.Score || (b.Score == a.Score && b.Score > 0 && b.Match < a.Match) {
				return b
			}
			return a
		})

		// 4. Finalize matches deterministically: process candidates in
		// order, skipping ones whose endpoint got matched earlier in this
		// round (every rank executes the same loop on the same data).
		for i, cand := range cands {
			b := best[i]
			if b.Score <= 0 || b.Match < 0 {
				continue
			}
			if match[cand] != -1 || match[b.Match] != -1 || cand == b.Match {
				continue
			}
			match[cand] = b.Match
			match[b.Match] = cand
			if c.Rank() == 0 {
				obsGlobalMatches.Inc()
			}
		}
	}
	// Self-match leftovers.
	for v := range match {
		if match[v] == -1 {
			match[v] = int32(v)
		}
	}
	return match
}

// bestLocalBid scores candidate cand against the unmatched vertices of the
// local block via shared nets and returns the best feasible offer.
func bestLocalBid(h *hypergraph.Hypergraph, match []int32, cand, lo, hi, maxNetSize int, score []float64, touched *[]int32) matchBid {
	bid := matchBid{Cand: int32(cand), Match: -1}
	fc := h.Fixed(cand)
	tt := (*touched)[:0]
	for _, netID := range h.Nets(cand) {
		pins := h.Pins(int(netID))
		if len(pins) < 2 || len(pins) > maxNetSize {
			continue
		}
		contrib := float64(h.Cost(int(netID))) / float64(len(pins)-1)
		if contrib <= 0 {
			contrib = 1e-9
		}
		for _, w := range pins {
			v := int(w)
			if v == cand || v < lo || v >= hi || match[v] != -1 {
				continue
			}
			if score[v] == 0 {
				tt = append(tt, w)
			}
			score[v] += contrib
		}
	}
	for _, w := range tt {
		v := int(w)
		s := score[v]
		score[v] = 0
		if s <= bid.Score {
			continue
		}
		fv := h.Fixed(v)
		if fc != hypergraph.Free && fv != hypergraph.Free && fc != fv {
			continue // match filter (§4.1)
		}
		bid.Score = s
		bid.Match = int32(v)
	}
	*touched = tt[:0]
	return bid
}

// localIPM greedily matches unmatched vertices strictly within this
// rank's own block (no communication during scoring), then allgathers the
// per-block match decisions so every rank holds the identical vector.
// Scoring is the same inner-product similarity with the §4.1 fixed
// compatibility filter.
func localIPM(c *mpi.Comm, h *hypergraph.Hypergraph, match []int32, lo, hi int, rng *rand.Rand, opt Options) {
	maxNetSize := opt.Serial.MaxNetSize
	if maxNetSize <= 0 {
		maxNetSize = 500
	}
	var local []matchPair
	score := make([]float64, h.NumVertices())
	var touched []int32
	for _, off := range rng.Perm(hi - lo) {
		u := lo + off
		if match[u] != -1 {
			continue
		}
		fu := h.Fixed(u)
		touched = touched[:0]
		for _, netID := range h.Nets(u) {
			pins := h.Pins(int(netID))
			if len(pins) < 2 || len(pins) > maxNetSize {
				continue
			}
			contrib := float64(h.Cost(int(netID))) / float64(len(pins)-1)
			if contrib <= 0 {
				contrib = 1e-9
			}
			for _, w := range pins {
				v := int(w)
				if v == u || v < lo || v >= hi || match[v] != -1 {
					continue
				}
				if score[v] == 0 {
					touched = append(touched, w)
				}
				score[v] += contrib
			}
		}
		best := -1
		bestScore := 0.0
		for _, w := range touched {
			v := int(w)
			s := score[v]
			score[v] = 0
			if s <= bestScore {
				continue
			}
			fv := h.Fixed(v)
			if fu != hypergraph.Free && fv != hypergraph.Free && fu != fv {
				continue
			}
			best = v
			bestScore = s
		}
		if best >= 0 {
			match[u] = int32(best)
			match[best] = int32(u)
			local = append(local, matchPair{int32(u), int32(best)})
			obsLocalMatches.Inc()
		}
	}
	// Exchange decisions; blocks are disjoint, so no conflicts.
	all, _ := mpi.AllgatherSlice(c, local)
	for _, p := range all {
		match[p.A] = p.B
		match[p.B] = p.A
	}
}
