package phg

import "hyperbal/internal/obs"

// Registry handles for the SPMD partitioner. Counters are summed across
// ranks except where noted: every rank executes the same apply loop in
// parallelRefine, so applied/rejected moves are counted on rank 0 only to
// avoid multiplying the logical count by the communicator size. Stage
// timers are observed per rank (each observation is a real per-rank wall
// time).
var (
	obsPartitions = obs.Default().Counter("phg_partitions_total")

	// Stage timers (nanoseconds), per hierarchy level where applicable.
	obsCoarsenNs     = obs.Default().HistogramVec("phg_coarsen_ns", "level", obs.DurationBounds)
	obsCoarseSolveNs = obs.Default().Histogram("phg_coarse_solve_ns", obs.DurationBounds)
	obsRefineNs      = obs.Default().HistogramVec("phg_refine_ns", "level", obs.DurationBounds)

	// IPM candidate-round protocol volume (§4.1): candidates nominated by
	// each rank, bids computed against candidates, and rounds executed.
	obsIPMRounds     = obs.Default().Counter("phg_ipm_rounds_total")
	obsCandidates    = obs.Default().Counter("phg_candidates_total")
	obsBids          = obs.Default().Counter("phg_bids_total")
	obsLocalMatches  = obs.Default().Counter("phg_local_matches_total")
	obsGlobalMatches = obs.Default().Counter("phg_global_matches_total")

	// Refinement proposal protocol (§4.3): proposals nominated per rank,
	// and (rank 0 only) the outcome of the replicated apply loop.
	obsRefineRounds   = obs.Default().Counter("phg_refine_rounds_total")
	obsProposals      = obs.Default().Counter("phg_refine_proposals_total")
	obsMovesApplied   = obs.Default().Counter("phg_refine_applied_total")
	obsMovesRejected  = obs.Default().Counter("phg_refine_rejected_total")
	obsOversubGuarded = obs.Default().Counter("phg_coarse_solve_serialized_total")
)
