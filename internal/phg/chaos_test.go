package phg

// Chaos tests: the parallel partitioner's correctness claim is schedule
// independence — every rank computes the identical partition no matter how
// the substrate delays or reorders messages. These tests attack that claim
// with seeded fault schedules across all five dataset families, and check
// that injected rank crashes degrade into clean errors, never hangs.

import (
	"errors"
	"fmt"
	"testing"
	"time"

	"hyperbal/internal/datasets"
	"hyperbal/internal/graph"
	"hyperbal/internal/hgp"
	"hyperbal/internal/hypergraph"
	"hyperbal/internal/mpi"
	"hyperbal/internal/partition"
)

// chaosPlans returns distinct injected schedules; index 0 is the clean
// baseline every faulted run must reproduce exactly.
func chaosPlans() []*mpi.FaultPlan {
	return []*mpi.FaultPlan{
		nil,
		{Seed: 1, MaxDelay: 150 * time.Microsecond},
		{Seed: 2, Reorder: true},
		{Seed: 3, MaxDelay: 80 * time.Microsecond, Reorder: true, DelayRanks: []int{0, 2}},
	}
}

func chaosHypergraph(t *testing.T, family string, n int) *hypergraph.Hypergraph {
	t.Helper()
	g, err := datasets.Generate(family, n, 42)
	if err != nil {
		t.Fatal(err)
	}
	return graph.ToHypergraph(g)
}

func TestPartitionScheduleIndependent(t *testing.T) {
	const np = 4
	for _, family := range datasets.Names() {
		h := chaosHypergraph(t, family, 96)
		for _, k := range []int{4, 8} {
			opt := Options{Serial: hgp.Options{K: k, Imbalance: 0.10, Seed: 7}}
			var baseline partition.Partition
			var baseCut int64
			for i, plan := range chaosPlans() {
				p := runParallelFault(t, np, h, opt, plan)
				cut := partition.CutSize(h, p)
				if i == 0 {
					baseline, baseCut = p, cut
					continue
				}
				if cut != baseCut {
					t.Fatalf("%s k=%d: cut %d under FaultPlan{Seed:%d} differs from clean cut %d",
						family, k, cut, plan.Seed, baseCut)
				}
				for v := range baseline.Parts {
					if p.Parts[v] != baseline.Parts[v] {
						t.Fatalf("%s k=%d: partition differs at vertex %d under FaultPlan{Seed:%d}",
							family, k, v, plan.Seed)
					}
				}
			}
		}
	}
}

func TestPartitionCrashFailsCleanly(t *testing.T) {
	h := chaosHypergraph(t, "auto", 96)
	start := time.Now()
	_, err := mpi.RunWith(4, mpi.Options{
		Watchdog: 2 * time.Second,
		Fault:    &mpi.FaultPlan{Crash: map[int]int{1: 4}},
	}, func(c *mpi.Comm) error {
		_, err := Partition(c, h, Options{Serial: hgp.Options{K: 4, Seed: 7}})
		return err
	})
	if err == nil {
		t.Fatal("expected a crash fault to surface as an error")
	}
	var crash *mpi.CrashError
	if !errors.As(err, &crash) {
		t.Fatalf("expected CrashError, got: %v", err)
	}
	if crash.Rank != 1 {
		t.Fatalf("crash = %+v, want rank 1", crash)
	}
	if elapsed := time.Since(start); elapsed > 30*time.Second {
		t.Fatalf("crash took %v to surface (hang-like behavior)", elapsed)
	}
}

// The coarsening and refinement exchanges ship []matchBid and
// []moveProposal; verify the traffic stats account them at packed field
// size (16 bytes each: two int32 + one 8-byte score), as Figs 7–8 assume.
func TestStructPayloadTrafficAccounting(t *testing.T) {
	stats, err := mpi.RunWith(2, mpi.Options{Watchdog: testWatchdog}, func(c *mpi.Comm) error {
		if c.Rank() == 0 {
			c.Send(1, 1, []matchBid{{Cand: 1, Match: 2, Score: 3.5}, {}, {}})
			c.Send(1, 2, []moveProposal{{V: 1, To: 2, Gain: 3}})
		} else {
			if got := c.Recv(0, 1).([]matchBid); len(got) != 3 {
				return fmt.Errorf("got %d bids", len(got))
			}
			if got := c.Recv(0, 2).([]moveProposal); len(got) != 1 {
				return fmt.Errorf("got %d proposals", len(got))
			}
		}
		return nil
	})
	if err != nil {
		t.Fatal(err)
	}
	if got := stats.Bytes.Load(); got != 3*16+1*16 {
		t.Fatalf("struct payloads accounted as %d bytes, want 64", got)
	}
	if stats.Messages.Load() != 2 {
		t.Fatalf("messages = %d", stats.Messages.Load())
	}
}
