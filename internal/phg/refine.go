package phg

import (
	"hyperbal/internal/hgp"
	"hyperbal/internal/hypergraph"
	"hyperbal/internal/mpi"
)

// moveProposal is one rank's suggested relocation.
type moveProposal struct {
	V    int32
	To   int32
	Gain int64
}

// parallelRefine improves parts in place with rounds of propose-exchange-
// apply (§4.3's localized FM adapted to the SPMD setting). Each rank scans
// its vertex block for positive-gain balanced moves, proposals are
// allgathered, and every rank applies the surviving ones in the same
// order, keeping the replicated state identical. Fixed vertices never
// move.
func parallelRefine(c *mpi.Comm, h *hypergraph.Hypergraph, k int, parts []int32, caps []int64, opt Options) {
	n := h.NumVertices()
	lo, hi := blockRange(n, c.Size(), c.Rank())
	state := hgp.NewKwayState(h, k, parts)
	buf := make([]int32, 0, k)
	mark := make([]bool, k)

	for round := 0; round < opt.RefineRounds; round++ {
		// 1. Propose best moves for local block vertices.
		var proposals []moveProposal
		for v := lo; v < hi && len(proposals) < opt.MovesPerRound; v++ {
			if h.Fixed(v) != hypergraph.Free {
				continue
			}
			cands := state.AdjacentParts(v, buf, mark)
			var bestTo int32 = -1
			var bestGain int64
			for _, to := range cands {
				if state.PartWeight(to)+h.Weight(v) > caps[to] {
					continue
				}
				if g := state.MoveGain(v, to); g > bestGain {
					bestGain = g
					bestTo = to
				}
			}
			if bestTo >= 0 && bestGain > 0 {
				proposals = append(proposals, moveProposal{V: int32(v), To: bestTo, Gain: bestGain})
			}
		}

		obsProposals.Add(int64(len(proposals)))

		// 2. Exchange proposals (rank order — deterministic).
		all, _ := mpi.AllgatherSlice(c, proposals)
		if len(all) == 0 {
			break
		}
		if c.Rank() == 0 {
			obsRefineRounds.Inc()
		}

		// 3. Apply: recompute each gain against the evolving state (earlier
		// applied moves may have invalidated it) and keep balance.
		applied := 0
		for _, m := range all {
			v := int(m.V)
			if state.PartOf(v) == m.To {
				continue
			}
			if state.PartWeight(m.To)+h.Weight(v) > caps[m.To] {
				continue
			}
			if state.MoveGain(v, m.To) <= 0 {
				continue
			}
			state.Move(v, m.To)
			applied++
		}
		// Every rank runs the identical apply loop; count outcomes once.
		if c.Rank() == 0 {
			obsMovesApplied.Add(int64(applied))
			obsMovesRejected.Add(int64(len(all) - applied))
		}
		if applied == 0 {
			break
		}
	}
	// A final sequential polish pass on every rank (identical input →
	// identical output) tightens what the round protocol left behind.
	for pass := 0; pass < 2; pass++ {
		if !hgp.RefineKwayPass(state, caps) {
			break
		}
	}
}
