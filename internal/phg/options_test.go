package phg

import (
	"math/rand"
	"reflect"
	"runtime"
	"testing"

	"hyperbal/internal/hgp"
)

// nonZeroSerial builds an hgp.Options with every exported field set to a
// non-zero value via reflection, so the test fails to build a fixture (and
// therefore fails) the moment a new field is added with an unsupported
// kind — keeping the preservation check below exhaustive by construction.
func nonZeroSerial(t *testing.T) hgp.Options {
	t.Helper()
	var o hgp.Options
	rv := reflect.ValueOf(&o).Elem()
	rt := rv.Type()
	for i := 0; i < rt.NumField(); i++ {
		f := rv.Field(i)
		switch f.Kind() {
		case reflect.Int, reflect.Int8, reflect.Int16, reflect.Int32, reflect.Int64:
			f.SetInt(int64(i + 3))
		case reflect.Float32, reflect.Float64:
			f.SetFloat(float64(i) + 0.25)
		case reflect.Bool:
			f.SetBool(true)
		case reflect.String:
			f.SetString("x")
		case reflect.Slice:
			f.Set(reflect.MakeSlice(f.Type(), 2, 2))
		default:
			t.Fatalf("hgp.Options.%s has kind %s: teach nonZeroSerial how to set it",
				rt.Field(i).Name, f.Kind())
		}
		if f.IsZero() {
			t.Fatalf("hgp.Options.%s still zero after fixture setup", rt.Field(i).Name)
		}
	}
	return o
}

// TestOptionsPreserveSerial is the regression test for the withDefaults
// bug that rebuilt Options.Serial field-by-field and silently dropped
// DirectKway, KwayFM, TargetFractions, DisableMatchFilter and Parallelism.
func TestOptionsPreserveSerial(t *testing.T) {
	in := nonZeroSerial(t)
	out := Options{Serial: in}.withDefaults().Serial

	rvIn := reflect.ValueOf(in)
	rvOut := reflect.ValueOf(out)
	rt := rvIn.Type()
	for i := 0; i < rt.NumField(); i++ {
		name := rt.Field(i).Name
		if rvOut.Field(i).IsZero() {
			t.Errorf("withDefaults zeroed Serial.%s", name)
		}
		if !reflect.DeepEqual(rvIn.Field(i).Interface(), rvOut.Field(i).Interface()) {
			t.Errorf("withDefaults changed Serial.%s: %v -> %v",
				name, rvIn.Field(i).Interface(), rvOut.Field(i).Interface())
		}
	}
}

// TestCoarseSolveRankLocalParallelism is the regression test for rank
// oversubscription: with Parallelism unset, each SPMD rank must fall back
// to a serial coarse solve (observable through the serialized-solve
// counter), an explicit setting must win, and the partitions must be
// byte-identical either way.
func TestCoarseSolveRankLocalParallelism(t *testing.T) {
	const np = 4
	h := randomHG(rand.New(rand.NewSource(7)), 300, 450, 6)
	base := Options{Serial: hgp.Options{K: 4, Imbalance: 0.10, Seed: 42}}

	before := obsOversubGuarded.Load()
	def := runParallel(t, np, h, base)
	if got := obsOversubGuarded.Load() - before; got != np {
		t.Errorf("default options: %d ranks serialized their coarse solve, want %d", got, np)
	}

	for _, par := range []int{1, 2, runtime.GOMAXPROCS(0)} {
		opt := base
		opt.Serial.Parallelism = par
		before = obsOversubGuarded.Load()
		got := runParallel(t, np, h, opt)
		if d := obsOversubGuarded.Load() - before; d != 0 {
			t.Errorf("Parallelism=%d: serialized-solve guard fired %d times, want 0 (explicit setting must win)", par, d)
		}
		for v := range def.Parts {
			if got.Parts[v] != def.Parts[v] {
				t.Fatalf("Parallelism=%d: partition differs from default at vertex %d", par, v)
			}
		}
	}
}
