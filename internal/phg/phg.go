// Package phg implements the parallel multilevel hypergraph partitioner
// with fixed vertices of Section 4, running SPMD over the internal/mpi
// substrate. The paper's description maps onto this implementation as
// follows:
//
//   - Coarsening (§4.1): parallel inner-product matching in rounds. Each
//     round, every rank selects candidate vertices from its block of the
//     (1D block-distributed) vertex set; candidates are sent to all ranks;
//     all ranks concurrently compute their best local match for each
//     candidate; a global reduction finalizes the best match per
//     candidate, subject to the fixed-vertex compatibility filter. (Zoltan
//     uses a 2D data distribution; the paper notes those inner workings
//     are "not needed to explain the extension for handling fixed
//     vertices" — this package substitutes a 1D distribution, keeping the
//     candidate-round protocol and all fixed-vertex mechanics.)
//
//   - Coarse partitioning (§4.2): the coarsest hypergraph is replicated on
//     every rank and "each processor runs a randomized greedy hypergraph
//     growing algorithm to compute a different partitioning"; a MinLoc
//     reduction selects the globally best, and fixed coarse vertices keep
//     their parts.
//
//   - Refinement (§4.3): pass-pairs of a localized move-based scheme: each
//     rank proposes moves for the boundary vertices of its block; the
//     proposals are exchanged; all ranks apply the surviving moves in the
//     same deterministic order, so the replicated partition state stays
//     identical everywhere. Fixed vertices are never moved.
//
// Every rank calls Partition with identical inputs and receives the
// identical result; the communication (candidates, bids, move proposals,
// reductions) flows through the mpi substrate and is accounted in its
// Stats.
package phg

import (
	"fmt"
	"math/rand"
	"time"

	"hyperbal/internal/hgp"
	"hyperbal/internal/hypergraph"
	"hyperbal/internal/mpi"
	"hyperbal/internal/partition"
)

// Options extends the serial options with parallel knobs.
type Options struct {
	// Serial carries K, Imbalance, Seed, CoarsenTo, etc. The coarsest-level
	// solve uses these options verbatim (with per-rank seeds).
	Serial hgp.Options
	// CandidatesPerRound bounds how many match candidates each rank
	// nominates per IPM round (default: block size / 2, at least 8).
	CandidatesPerRound int
	// MatchRounds bounds IPM rounds per coarsening level (default 10).
	MatchRounds int
	// MovesPerRound bounds how many refinement moves each rank proposes per
	// exchange (default 128).
	MovesPerRound int
	// RefineRounds bounds proposal exchanges per level (default 12).
	RefineRounds int
	// LocalIPM restricts inner-product matching to each rank's own vertex
	// block, eliminating the candidate broadcast and global best-match
	// reduction — the speed/quality trade the paper's conclusion proposes
	// ("using local IPM instead of global IPM" to reduce global
	// communication). One final global round still runs per level so
	// cross-block structure is not permanently invisible.
	LocalIPM bool
}

func (o Options) withDefaults() Options {
	// o.Serial is passed through verbatim: the coarse solve owns its
	// defaults (hgp.Options.withDefaults), and rebuilding the struct here
	// field-by-field silently dropped every knob this list forgot
	// (DirectKway, KwayFM, TargetFractions, DisableMatchFilter,
	// Parallelism). See TestOptionsPreserveSerial.
	if o.MatchRounds <= 0 {
		o.MatchRounds = 10
	}
	if o.MovesPerRound <= 0 {
		o.MovesPerRound = 128
	}
	if o.RefineRounds <= 0 {
		o.RefineRounds = 12
	}
	return o
}

// blockRange returns rank r's vertex block [lo, hi) of n vertices.
func blockRange(n, size, r int) (int, int) {
	per := n / size
	rem := n % size
	lo := r*per + min(r, rem)
	hi := lo + per
	if r < rem {
		hi++
	}
	return lo, hi
}

func min(a, b int) int {
	if a < b {
		return a
	}
	return b
}

// Partition computes a k-way partition with fixed vertices in parallel.
// Every rank of c must call it with the same hypergraph and options.
func Partition(c *mpi.Comm, h *hypergraph.Hypergraph, opt Options) (partition.Partition, error) {
	opt = opt.withDefaults()
	k := opt.Serial.K
	if k < 1 {
		return partition.Partition{}, fmt.Errorf("phg: K must be >= 1")
	}
	p := partition.Partition{Parts: make([]int32, h.NumVertices()), K: k}
	if k == 1 || h.NumVertices() == 0 {
		return p, nil
	}
	// Per-rank deterministic randomness; shared decisions use reductions.
	rng := rand.New(rand.NewSource(opt.Serial.Seed*1000003 + int64(c.Rank())))

	// ---- Parallel coarsening ----
	coarsenTo := opt.Serial.CoarsenTo
	if coarsenTo <= 0 {
		coarsenTo = 100
	}
	if coarsenTo < 2*k {
		coarsenTo = 2 * k
	}
	minShrink := opt.Serial.MinShrink
	if minShrink <= 0 {
		minShrink = 0.10
	}
	type level struct {
		h    *hypergraph.Hypergraph
		cmap []int32
	}
	if c.Rank() == 0 {
		obsPartitions.Inc()
	}
	levels := []level{{h: h}}
	cur := h
	for cur.NumVertices() > coarsenTo {
		start := time.Now()
		match := parallelIPM(c, cur, rng, opt)
		coarse, cmap := hgp.Contract(cur, match)
		obsCoarsenNs.At(len(levels) - 1).ObserveSince(start)
		if 1-float64(coarse.NumVertices())/float64(cur.NumVertices()) < minShrink {
			break
		}
		levels[len(levels)-1].cmap = cmap
		levels = append(levels, level{h: coarse})
		cur = coarse
	}

	// ---- Coarse partitioning: replicated multi-start, best by cut ----
	coarsest := levels[len(levels)-1].h
	serialOpt := opt.Serial
	serialOpt.Seed = opt.Serial.Seed*7907 + int64(c.Rank()+1)
	if serialOpt.Parallelism <= 0 {
		// Every SPMD rank runs a coarse solve concurrently; letting each
		// default to GOMAXPROCS workers oversubscribes the machine by a
		// factor of c.Size(). Solve serially per rank unless the caller
		// explicitly asked for intra-rank parallelism.
		serialOpt.Parallelism = 1
		obsOversubGuarded.Inc()
	}
	solveStart := time.Now()
	cp, err := hgp.Partition(coarsest, serialOpt)
	if err != nil {
		return partition.Partition{}, err
	}
	myCut := partition.CutSize(coarsest, cp)
	winner := mpi.AllreduceMinLoc(c, myCut)
	parts := mpi.BcastSlice(c, winner.Rank, cp.Parts)
	obsCoarseSolveNs.ObserveSince(solveStart)

	// ---- Uncoarsening with parallel refinement ----
	caps := capsFor(h, k, opt.Serial.Imbalance)
	for i := len(levels) - 1; i >= 0; i-- {
		refineStart := time.Now()
		if i < len(levels)-1 {
			parts = projectParts(levels[i].cmap, parts)
		}
		parallelRefine(c, levels[i].h, k, parts, caps, opt)
		obsRefineNs.At(i).ObserveSince(refineStart)
	}
	copy(p.Parts, parts)
	return p, nil
}

func projectParts(cmap []int32, coarse []int32) []int32 {
	fine := make([]int32, len(cmap))
	for v, cv := range cmap {
		fine[v] = coarse[cv]
	}
	return fine
}

func capsFor(h *hypergraph.Hypergraph, k int, eps float64) []int64 {
	if eps <= 0 {
		eps = 0.05
	}
	total := h.TotalWeight()
	capv := int64(float64(total) / float64(k) * (1 + eps))
	if capv < 1 {
		capv = 1
	}
	caps := make([]int64, k)
	for p := range caps {
		caps[p] = capv
	}
	return caps
}
