// Package jobs registers the partitioner jobs runnable on mpinet compute
// workers: the parallel hypergraph partitioner (phg) and the parallel
// graph partitioner / adaptive repartitioner (pgp). Importing this
// package (balancerd's -compute-worker mode and hgpart's -net-workers
// mode both do, blank or otherwise) makes a process able to serve as any
// rank of those worlds.
//
// Job payloads are self-contained: a JSON options header (length-
// prefixed) followed by the problem in its binary wire form — the
// hypergraph's HBW frame or the graph CSR frame — so the coordinator
// ships the exact problem every rank needs and nothing else. Results are
// the partition vector in varint form (rank 0 only; other ranks return
// nothing, since every rank computes the identical partition).
package jobs

import (
	"encoding/binary"
	"encoding/json"
	"fmt"

	"hyperbal/internal/graph"
	"hyperbal/internal/hypergraph"
	"hyperbal/internal/mpi"
	"hyperbal/internal/mpinet"
	"hyperbal/internal/partition"
	"hyperbal/internal/pgp"
	"hyperbal/internal/phg"
)

// Job names, as launched by mpinet.RunWorld.
const (
	PHGPartition = "phg.partition"
	PGPPartition = "pgp.partition"
)

type phgSpec struct {
	Opt phg.Options
}

type pgpSpec struct {
	Opt      pgp.Options
	Adaptive bool
	Itr      int64
}

// EncodePHG builds the payload for a PHGPartition world: opt as JSON,
// then h's binary frame.
func EncodePHG(h *hypergraph.Hypergraph, opt phg.Options) ([]byte, error) {
	hdr, err := json.Marshal(phgSpec{Opt: opt})
	if err != nil {
		return nil, fmt.Errorf("jobs: marshal phg options: %w", err)
	}
	buf := binary.AppendUvarint(nil, uint64(len(hdr)))
	buf = append(buf, hdr...)
	return h.AppendBinary(buf), nil
}

// EncodePGP builds the payload for a PGPPartition world. old (required
// iff adaptive) is the previous partition AdaptiveRepart improves on; itr
// is the paper's migration-vs-cut trade-off factor.
func EncodePGP(g *graph.Graph, old []int32, itr int64, opt pgp.Options, adaptive bool) ([]byte, error) {
	if adaptive && len(old) != g.NumVertices() {
		return nil, fmt.Errorf("jobs: old partition covers %d vertices, graph has %d", len(old), g.NumVertices())
	}
	hdr, err := json.Marshal(pgpSpec{Opt: opt, Adaptive: adaptive, Itr: itr})
	if err != nil {
		return nil, fmt.Errorf("jobs: marshal pgp options: %w", err)
	}
	buf := binary.AppendUvarint(nil, uint64(len(hdr)))
	buf = append(buf, hdr...)
	buf = g.AppendBinary(buf)
	if adaptive {
		buf = append(buf, 1)
		buf = hypergraph.AppendInt32s(buf, old)
	} else {
		buf = append(buf, 0)
	}
	return buf, nil
}

// DecodeParts decodes a world's result payload (rank 0's partition
// vector).
func DecodeParts(payload []byte) ([]int32, error) {
	r := hypergraph.NewBinReader(payload)
	parts, err := hypergraph.DecodeInt32s(r, hypergraph.MaxWireVertices)
	if err != nil {
		return nil, fmt.Errorf("jobs: result partition: %w", err)
	}
	if r.Rem() != 0 {
		return nil, fmt.Errorf("jobs: %d trailing bytes after result partition", r.Rem())
	}
	return parts, nil
}

func readHeader(payload []byte, spec any) (*hypergraph.BinReader, error) {
	r := hypergraph.NewBinReader(payload)
	n, err := r.Count(1 << 20)
	if err != nil {
		return nil, fmt.Errorf("jobs: options header: %w", err)
	}
	hdr, err := r.Bytes(n)
	if err != nil {
		return nil, fmt.Errorf("jobs: options header: %w", err)
	}
	if err := json.Unmarshal(hdr, spec); err != nil {
		return nil, fmt.Errorf("jobs: options header: %w", err)
	}
	return r, nil
}

func init() {
	mpinet.RegisterJob(PHGPartition, func(c *mpi.Comm, payload []byte) ([]byte, error) {
		var spec phgSpec
		r, err := readHeader(payload, &spec)
		if err != nil {
			return nil, err
		}
		h, _, err := hypergraph.DecodeBinary(r)
		if err != nil {
			return nil, fmt.Errorf("jobs: hypergraph frame: %w", err)
		}
		p, err := phg.Partition(c, h, spec.Opt)
		if err != nil {
			return nil, err
		}
		if c.Rank() != 0 {
			return nil, nil
		}
		return hypergraph.AppendInt32s(nil, p.Parts), nil
	})
	mpinet.RegisterJob(PGPPartition, func(c *mpi.Comm, payload []byte) ([]byte, error) {
		var spec pgpSpec
		r, err := readHeader(payload, &spec)
		if err != nil {
			return nil, err
		}
		g, err := graph.DecodeBinary(r)
		if err != nil {
			return nil, fmt.Errorf("jobs: graph frame: %w", err)
		}
		hasOld, err := r.Byte()
		if err != nil || hasOld > 1 {
			return nil, fmt.Errorf("jobs: old-partition flag: %v", err)
		}
		var p partition.Partition
		if spec.Adaptive {
			if hasOld != 1 {
				return nil, fmt.Errorf("jobs: adaptive pgp payload missing old partition")
			}
			old, err := hypergraph.DecodeInt32s(r, graph.MaxWireVertices)
			if err != nil {
				return nil, fmt.Errorf("jobs: old partition: %w", err)
			}
			p, err = pgp.AdaptiveRepart(c, g, partition.Partition{Parts: old, K: spec.Opt.Serial.K}, spec.Itr, spec.Opt)
			if err != nil {
				return nil, err
			}
		} else {
			p, err = pgp.Partition(c, g, spec.Opt)
			if err != nil {
				return nil, err
			}
		}
		if c.Rank() != 0 {
			return nil, nil
		}
		return hypergraph.AppendInt32s(nil, p.Parts), nil
	})
}
