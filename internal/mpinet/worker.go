package mpinet

import (
	"bufio"
	"errors"
	"fmt"
	"io"
	"net"
	"sync"
	"time"

	"hyperbal/internal/mpi"
)

// A JobFunc is the body of one rank of a distributed world. Closures
// cannot cross processes, so ranks run registered named jobs: the
// coordinator ships (job name, payload), the worker runs the function
// registered under that name with this rank's Comm. The returned bytes
// travel back to the coordinator in the result frame (rank 0
// conventionally returns the answer; other ranks may return nil).
type JobFunc func(c *mpi.Comm, payload []byte) ([]byte, error)

var (
	jobsMu sync.RWMutex
	jobs   = map[string]JobFunc{}
)

// RegisterJob makes a named job launchable on this process. Typically
// called from init (see the jobs subpackage); duplicate names panic.
func RegisterJob(name string, fn JobFunc) {
	jobsMu.Lock()
	defer jobsMu.Unlock()
	if _, ok := jobs[name]; ok {
		panic(fmt.Sprintf("mpinet: job %q registered twice", name))
	}
	jobs[name] = fn
}

func lookupJob(name string) (JobFunc, bool) {
	jobsMu.RLock()
	defer jobsMu.RUnlock()
	fn, ok := jobs[name]
	return fn, ok
}

// pendingTTL bounds how long an unclaimed mesh connection (hello arrived
// before this worker's launch frame) is parked before being dropped.
const pendingTTL = 30 * time.Second

// Worker turns a process into a rank endpoint: it accepts control
// connections carrying launch frames and mesh connections carrying
// substrate traffic, and runs one registered job per launched world. One
// worker can serve many sequential (or concurrent, distinct-world)
// launches.
type Worker struct {
	ln net.Listener

	mu      sync.Mutex
	worlds  map[string]*netTransport
	pending map[string][]*pendingConn
	closed  bool

	wg sync.WaitGroup
}

type pendingConn struct {
	rank  int
	conn  net.Conn
	br    *bufio.Reader
	timer *time.Timer
}

// NewWorker wraps an already-listening socket (the caller owns address
// selection; balancerd reuses its -addr/-addr-file flags).
func NewWorker(ln net.Listener) *Worker {
	return &Worker{
		ln:      ln,
		worlds:  make(map[string]*netTransport),
		pending: make(map[string][]*pendingConn),
	}
}

// Addr returns the worker's listen address.
func (w *Worker) Addr() string { return w.ln.Addr().String() }

// Serve accepts connections until the listener closes. It returns nil
// after Close.
func (w *Worker) Serve() error {
	for {
		conn, err := w.ln.Accept()
		if err != nil {
			w.mu.Lock()
			closed := w.closed
			w.mu.Unlock()
			if closed {
				w.wg.Wait()
				return nil
			}
			return err
		}
		w.wg.Add(1)
		go func() {
			defer w.wg.Done()
			w.handleConn(conn)
		}()
	}
}

// Close stops accepting and tears down live worlds.
func (w *Worker) Close() error {
	w.mu.Lock()
	w.closed = true
	var trs []*netTransport
	for _, tr := range w.worlds {
		trs = append(trs, tr)
	}
	var parked []*pendingConn
	for _, ps := range w.pending {
		parked = append(parked, ps...)
	}
	w.mu.Unlock()
	err := w.ln.Close()
	for _, tr := range trs {
		tr.fail(errClosed)
	}
	for _, p := range parked {
		p.timer.Stop()
		p.conn.Close()
	}
	return err
}

// handleConn demuxes a fresh connection by its first frame: a hello makes
// it a mesh connection (attach or park), a launch makes it the control
// connection of a new world on this worker.
func (w *Worker) handleConn(conn net.Conn) {
	br := bufio.NewReaderSize(conn, 64<<10)
	conn.SetReadDeadline(time.Now().Add(pendingTTL))
	kind, body, err := readFrame(br, DefaultMaxFrame)
	if err != nil {
		conn.Close()
		return
	}
	conn.SetReadDeadline(time.Time{})
	switch kind {
	case frameHello:
		h, err := parseHello(body)
		if err != nil {
			conn.Close()
			return
		}
		w.acceptMesh(h, conn, br)
	case frameLaunch:
		l, err := parseLaunch(body)
		if err != nil {
			writeError(conn, errorBody{Kind: errKindGeneric, Rank: -1, Msg: err.Error()})
			conn.Close()
			return
		}
		w.runLaunch(l, conn)
	default:
		conn.Close()
	}
}

// acceptMesh routes an inbound mesh connection: attach it to the live
// world it names (ack immediately) or park it until that world's launch
// frame arrives here.
func (w *Worker) acceptMesh(h helloBody, conn net.Conn, br *bufio.Reader) {
	w.mu.Lock()
	if tr, ok := w.worlds[h.WorldID]; ok {
		w.mu.Unlock()
		w.finishMeshAccept(tr, h.Rank, conn, br)
		return
	}
	if w.closed {
		w.mu.Unlock()
		conn.Close()
		return
	}
	p := &pendingConn{rank: h.Rank, conn: conn, br: br}
	p.timer = time.AfterFunc(pendingTTL, func() {
		w.mu.Lock()
		ps := w.pending[h.WorldID]
		for i, q := range ps {
			if q == p {
				w.pending[h.WorldID] = append(ps[:i], ps[i+1:]...)
				break
			}
		}
		w.mu.Unlock()
		conn.Close()
	})
	w.pending[h.WorldID] = append(w.pending[h.WorldID], p)
	w.mu.Unlock()
}

func (w *Worker) finishMeshAccept(tr *netTransport, rank int, conn net.Conn, br *bufio.Reader) {
	if err := tr.attach(rank, conn, br); err != nil {
		conn.Close()
		return
	}
	if _, err := conn.Write(appendFrame(nil, frameHelloAck, nil)); err != nil {
		conn.Close()
	}
}

// runLaunch executes one world rank: build the transport, complete the
// mesh (adopt parked inbound conns, dial every lower rank), run the job,
// report on the control connection, then hold the mesh open until the
// coordinator signals global completion by closing that connection.
func (w *Worker) runLaunch(l launchBody, ctrl net.Conn) {
	defer ctrl.Close()
	opt := Options{
		SendWindow:  l.SendWindow,
		RecvTimeout: l.RecvTimeout,
		Jitter:      l.Jitter,
		JitterSeed:  l.JitterSeed,
	}
	tr := newNetTransport(l.WorldID, l.Rank, l.Size, opt)

	w.mu.Lock()
	if w.closed {
		w.mu.Unlock()
		writeError(ctrl, errorBody{Kind: errKindGeneric, Rank: l.Rank, Msg: "worker shutting down"})
		return
	}
	if _, dup := w.worlds[l.WorldID]; dup {
		w.mu.Unlock()
		writeError(ctrl, errorBody{Kind: errKindGeneric, Rank: l.Rank, Msg: fmt.Sprintf("world %s already launched on this worker", l.WorldID)})
		return
	}
	w.worlds[l.WorldID] = tr
	parked := w.pending[l.WorldID]
	delete(w.pending, l.WorldID)
	w.mu.Unlock()
	defer func() {
		w.mu.Lock()
		delete(w.worlds, l.WorldID)
		w.mu.Unlock()
		tr.shutdown()
	}()

	for _, p := range parked {
		if p.timer.Stop() {
			w.finishMeshAccept(tr, p.rank, p.conn, p.br)
		}
	}
	for s := 0; s < l.Rank; s++ {
		if err := dialPeer(tr, s, l.Addrs[s]); err != nil {
			writeError(ctrl, errorBody{Kind: errKindGeneric, Rank: l.Rank, Msg: err.Error()})
			return
		}
	}
	if err := tr.waitReady(); err != nil {
		writeError(ctrl, rankError(l.Rank, err))
		return
	}

	fn, ok := lookupJob(l.Job)
	if !ok {
		writeError(ctrl, errorBody{Kind: errKindGeneric, Rank: l.Rank, Msg: fmt.Sprintf("job %q not registered on this worker", l.Job)})
		return
	}
	var out []byte
	stats, err := mpi.RunTransportRank(tr, l.Rank, l.Size, mpi.Options{ChanCap: l.SendWindow}, func(c *mpi.Comm) error {
		var jerr error
		out, jerr = fn(c, l.Payload)
		return jerr
	})
	if err != nil {
		writeError(ctrl, rankError(l.Rank, err))
		return
	}
	res := resultBody{
		Messages:     stats.Messages.Load(),
		Bytes:        stats.Bytes.Load(),
		Collectives:  stats.Collectives.Load(),
		BlockedSends: stats.BlockedSends.Load(),
		MaxStallNs:   stats.MaxStall.Load(),
		Payload:      out,
	}
	if _, err := ctrl.Write(appendFrame(nil, frameResult, res.encode())); err != nil {
		return
	}
	// Hold the mesh until the coordinator has collected every rank (it
	// closes the control connection then); tearing down earlier would look
	// like a crash to peers still in their final rounds.
	ctrl.SetReadDeadline(time.Now().Add(opt.withDefaults().RecvTimeout + pendingTTL))
	io.Copy(io.Discard, ctrl)
}

// rankError classifies a rank failure for the wire: structured crash and
// stall errors keep their type across the control connection.
func rankError(rank int, err error) errorBody {
	var ce *mpi.CrashError
	if errors.As(err, &ce) {
		return errorBody{Kind: errKindCrash, Rank: ce.Rank, Step: ce.Step, Msg: err.Error()}
	}
	var de *mpi.DeadlockError
	if errors.As(err, &de) {
		return errorBody{Kind: errKindStall, Rank: rank, Msg: err.Error()}
	}
	return errorBody{Kind: errKindGeneric, Rank: rank, Msg: err.Error()}
}

func writeError(conn net.Conn, e errorBody) {
	if len(e.Msg) > maxErrMsgLen {
		e.Msg = e.Msg[:maxErrMsgLen]
	}
	conn.Write(appendFrame(nil, frameError, e.encode()))
}

// dialPeer establishes the outbound half of the mesh: rank r dials every
// lower rank's worker, introduces itself with a hello, and waits for the
// ack (retrying while the peer's launch frame is still in flight).
func dialPeer(t *netTransport, peerRank int, addr string) error {
	deadline := time.Now().Add(t.opt.DialTimeout)
	backoff := 20 * time.Millisecond
	var lastErr error
	for attempt := 0; ; attempt++ {
		if attempt > 0 {
			if time.Now().After(deadline) {
				return fmt.Errorf("mpinet: dial rank %d at %s: %v", peerRank, addr, lastErr)
			}
			obsRedials.Inc()
			time.Sleep(backoff)
			if backoff < 500*time.Millisecond {
				backoff *= 2
			}
		}
		conn, err := net.DialTimeout("tcp", addr, time.Until(deadline))
		if err != nil {
			lastErr = err
			continue
		}
		if tc, ok := conn.(*net.TCPConn); ok {
			tc.SetNoDelay(true)
		}
		start := time.Now()
		hello := appendFrame(nil, frameHello, helloBody{WorldID: t.worldID, Rank: t.rank}.encode())
		if _, err := conn.Write(hello); err != nil {
			conn.Close()
			lastErr = err
			continue
		}
		br := bufio.NewReaderSize(conn, 64<<10)
		conn.SetReadDeadline(time.Now().Add(time.Until(deadline)))
		kind, _, err := readFrame(br, t.opt.MaxFrame)
		conn.SetReadDeadline(time.Time{})
		if err != nil || kind != frameHelloAck {
			conn.Close()
			if err == nil {
				err = fmt.Errorf("expected helloAck, got frame kind %d", kind)
			}
			lastErr = err
			continue
		}
		obsRTT.Observe(time.Since(start).Nanoseconds())
		return t.attach(peerRank, conn, br)
	}
}
