package mpinet

import (
	"context"
	"encoding/binary"
	"errors"
	"fmt"
	"net"
	"testing"
	"time"

	"hyperbal/internal/mpi"
)

func init() {
	RegisterJob("test.sum", func(c *mpi.Comm, payload []byte) ([]byte, error) {
		v, _ := binary.Varint(payload)
		total := mpi.Allreduce(c, v+int64(c.Rank()), mpi.SumInt64)
		return binary.AppendVarint(nil, total), nil
	})
	RegisterJob("test.rounds", func(c *mpi.Comm, payload []byte) ([]byte, error) {
		// A few Allreduce rounds with think time, so a test can kill a
		// worker mid-round.
		var total int64
		for i := 0; i < 40; i++ {
			total = mpi.Allreduce(c, int64(c.Rank()+i), mpi.SumInt64)
			time.Sleep(10 * time.Millisecond)
		}
		return binary.AppendVarint(nil, total), nil
	})
	RegisterJob("test.fail", func(c *mpi.Comm, payload []byte) ([]byte, error) {
		if c.Rank() == 1 {
			return nil, fmt.Errorf("synthetic job failure on rank 1")
		}
		return nil, nil
	})
}

// startWorkers boots n workers on loopback and returns their addresses
// plus the Worker handles (for kill drills).
func startWorkers(t *testing.T, n int) ([]string, []*Worker) {
	t.Helper()
	addrs := make([]string, n)
	ws := make([]*Worker, n)
	for i := 0; i < n; i++ {
		ln, err := net.Listen("tcp", "127.0.0.1:0")
		if err != nil {
			t.Fatal(err)
		}
		w := NewWorker(ln)
		go w.Serve()
		t.Cleanup(func() { w.Close() })
		addrs[i] = w.Addr()
		ws[i] = w
	}
	return addrs, ws
}

func TestRunWorldSum(t *testing.T) {
	addrs, _ := startWorkers(t, 3)
	payload := binary.AppendVarint(nil, 100)
	res, err := RunWorld(context.Background(), "test.sum", payload, addrs, Options{})
	if err != nil {
		t.Fatal(err)
	}
	got, _ := binary.Varint(res.Root())
	want := int64(3*100 + 0 + 1 + 2)
	if got != want {
		t.Fatalf("sum = %d, want %d", got, want)
	}
	for _, r := range res.Ranks {
		if r.Messages == 0 && r.Rank != 0 {
			t.Errorf("rank %d reported zero messages", r.Rank)
		}
	}
}

func TestRunWorldSingleRank(t *testing.T) {
	addrs, _ := startWorkers(t, 1)
	payload := binary.AppendVarint(nil, 5)
	res, err := RunWorld(context.Background(), "test.sum", payload, addrs, Options{})
	if err != nil {
		t.Fatal(err)
	}
	if got, _ := binary.Varint(res.Root()); got != 5 {
		t.Fatalf("size-1 sum = %d, want 5", got)
	}
}

func TestRunWorldJobError(t *testing.T) {
	addrs, _ := startWorkers(t, 2)
	_, err := RunWorld(context.Background(), "test.fail", nil, addrs, Options{RecvTimeout: 5 * time.Second})
	if err == nil {
		t.Fatal("expected an error from the failing job")
	}
}

func TestRunWorldUnknownJob(t *testing.T) {
	addrs, _ := startWorkers(t, 2)
	_, err := RunWorld(context.Background(), "test.nope", nil, addrs, Options{RecvTimeout: 5 * time.Second})
	if err == nil || !errors.Is(err, errors.Unwrap(err)) && err == nil {
		t.Fatal("expected an error for an unregistered job")
	}
}

// A worker torn down mid-round must surface as a structured CrashError at
// the coordinator (via its peers' dropped mesh connections), not a hang.
func TestRunWorldWorkerDeath(t *testing.T) {
	addrs, ws := startWorkers(t, 3)
	go func() {
		time.Sleep(120 * time.Millisecond)
		ws[2].Close()
	}()
	start := time.Now()
	_, err := RunWorld(context.Background(), "test.rounds", nil, addrs, Options{
		RecvTimeout: 10 * time.Second,
		DialTimeout: 5 * time.Second,
	})
	if err == nil {
		t.Fatal("expected an error after killing worker 2")
	}
	var ce *mpi.CrashError
	if !errors.As(err, &ce) {
		t.Fatalf("error %v does not wrap *mpi.CrashError", err)
	}
	if elapsed := time.Since(start); elapsed > 15*time.Second {
		t.Fatalf("crash took %v to surface (hang?)", elapsed)
	}
}
