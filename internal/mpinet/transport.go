package mpinet

import (
	"bufio"
	"errors"
	"fmt"
	"math/rand"
	"net"
	"sync"
	"time"

	"hyperbal/internal/mpi"
)

// Options tune one transport endpoint. The coordinator picks them once
// per world and ships them in the launch frame, so all ranks agree.
type Options struct {
	// SendWindow is the per-peer outbound flow-control window in messages,
	// mirroring the in-process substrate's Options.ChanCap; a send beyond
	// it blocks (and counts as a blocked send). 0 means mpi.DefaultChanCap.
	SendWindow int
	// RecvTimeout bounds a blocked receive; past it the rank fails with a
	// structured stall error — the transport-world analogue of the
	// in-process watchdog, which cannot see remote ranks. 0 means 2m.
	RecvTimeout time.Duration
	// DialTimeout bounds mesh establishment (dialing a peer, including
	// redials while the peer's launch is still in flight). 0 means 20s.
	DialTimeout time.Duration
	// MaxFrame bounds one frame body. 0 means DefaultMaxFrame.
	MaxFrame int
	// Jitter, when positive, delays each outbound message frame by a
	// seeded pseudorandom duration in [0, Jitter) — real-network delay
	// variance on demand, for shaking schedule-dependence out in tests and
	// stretching rounds in kill drills.
	Jitter     time.Duration
	JitterSeed int64
}

func (o Options) withDefaults() Options {
	if o.SendWindow <= 0 {
		o.SendWindow = mpi.DefaultChanCap
	}
	if o.RecvTimeout <= 0 {
		o.RecvTimeout = 2 * time.Minute
	}
	if o.DialTimeout <= 0 {
		o.DialTimeout = 20 * time.Second
	}
	if o.MaxFrame <= 0 {
		o.MaxFrame = DefaultMaxFrame
	}
	return o
}

// errClosed marks a transport shut down after its rank finished; any
// operation racing the shutdown reports it instead of a phantom crash.
var errClosed = errors.New("mpinet: transport closed")

// qkey identifies one inbound message stream: (communicator, source world
// rank). Tags stay inside the stream — like the in-process substrate, a
// tag mismatch at the head of the stream is a protocol error, not a
// filter.
type qkey struct {
	comm uint64
	src  int
}

// peer is one mesh connection. The writer goroutine drains out so Send
// returns as soon as the window has room; the reader goroutine demuxes
// inbound frames into the transport's per-stream queues.
type peer struct {
	rank int
	conn net.Conn
	br   *bufio.Reader // carried over from the handshake, which may have buffered past the hello
	out  chan []byte   // encoded msg frames
	jr   *rand.Rand    // writer-goroutine-only jitter rng

	closeOnce sync.Once
}

func (p *peer) close() {
	p.closeOnce.Do(func() { p.conn.Close() })
}

// netTransport implements mpi.Transport for exactly one rank process.
type netTransport struct {
	worldID string
	rank    int
	size    int
	opt     Options

	peers []*peer // by rank; peers[rank] is nil (self-sends short-circuit)

	mu      sync.Mutex
	queues  map[qkey]chan msgBody
	missing int // peers not yet attached

	ready    chan struct{} // closed once every peer is attached
	dead     chan struct{} // closed on first fatal transport error
	deadOnce sync.Once
	deadErr  error

	writers sync.WaitGroup
	readers sync.WaitGroup
}

func newNetTransport(worldID string, rank, size int, opt Options) *netTransport {
	t := &netTransport{
		worldID: worldID,
		rank:    rank,
		size:    size,
		opt:     opt.withDefaults(),
		peers:   make([]*peer, size),
		queues:  make(map[qkey]chan msgBody),
		ready:   make(chan struct{}),
		missing: size - 1,
		dead:    make(chan struct{}),
	}
	if size == 1 {
		close(t.ready)
	}
	return t
}

// fail records the first fatal error and wakes every blocked operation.
func (t *netTransport) fail(err error) {
	t.deadOnce.Do(func() {
		t.deadErr = err
		close(t.dead)
	})
}

func (t *netTransport) failErr() error {
	<-t.dead // read barrier for deadErr
	return t.deadErr
}

// queue returns the inbound stream for (comm, src), creating it lazily.
// Capacity mirrors the send window so an unread stream exerts the same
// backpressure as a full in-process channel.
func (t *netTransport) queue(k qkey) chan msgBody {
	t.mu.Lock()
	defer t.mu.Unlock()
	q, ok := t.queues[k]
	if !ok {
		q = make(chan msgBody, t.opt.SendWindow)
		t.queues[k] = q
	}
	return q
}

// attach adopts an established mesh connection to peerRank and starts its
// reader/writer goroutines. Each (transport, peerRank) attaches exactly
// once; the worker's accept path and the dialer both funnel through here.
func (t *netTransport) attach(peerRank int, conn net.Conn, br *bufio.Reader) error {
	if peerRank < 0 || peerRank >= t.size || peerRank == t.rank {
		return fmt.Errorf("mpinet: attach of invalid peer rank %d (world size %d)", peerRank, t.size)
	}
	if br == nil {
		br = bufio.NewReaderSize(conn, 64<<10)
	}
	t.mu.Lock()
	if t.peers[peerRank] != nil {
		t.mu.Unlock()
		return fmt.Errorf("mpinet: duplicate connection for rank %d", peerRank)
	}
	p := &peer{
		rank: peerRank,
		conn: conn,
		br:   br,
		out:  make(chan []byte, t.opt.SendWindow),
		jr:   rand.New(rand.NewSource(t.opt.JitterSeed*1000003 + int64(peerRank)*7919 + int64(t.rank) + 1)),
	}
	t.peers[peerRank] = p
	t.missing--
	allReady := t.missing == 0
	t.mu.Unlock()

	t.writers.Add(1)
	t.readers.Add(1)
	go t.writeLoop(p)
	go t.readLoop(p)
	if allReady {
		close(t.ready)
	}
	return nil
}

// waitReady blocks until the full mesh is attached or the dial deadline
// hits. Sends and receives are only legal after it returns nil.
func (t *netTransport) waitReady() error {
	select {
	case <-t.ready:
		return nil
	case <-t.dead:
		return t.failErr()
	case <-time.After(t.opt.DialTimeout):
		t.mu.Lock()
		missing := t.missing
		t.mu.Unlock()
		return fmt.Errorf("mpinet: world %s rank %d: mesh incomplete after %v (%d peers missing)",
			t.worldID, t.rank, t.opt.DialTimeout, missing)
	}
}

func (t *netTransport) writeLoop(p *peer) {
	defer t.writers.Done()
	for buf := range p.out {
		if t.opt.Jitter > 0 {
			if d := time.Duration(p.jr.Int63n(int64(t.opt.Jitter))); d > 0 {
				time.Sleep(d)
			}
		}
		n, err := p.conn.Write(buf)
		obsFramesTx.Inc()
		obsBytesTx.Add(int64(n))
		if err != nil {
			t.fail(fmt.Errorf("mpinet: write to rank %d: %v: %w", p.rank, err, &mpi.CrashError{Rank: p.rank}))
			// Keep draining so a blocked Send enqueue is never stranded;
			// frames after a dead connection go nowhere anyway.
			for range p.out {
			}
			return
		}
	}
}

func (t *netTransport) readLoop(p *peer) {
	defer t.readers.Done()
	for {
		kind, body, err := readFrame(p.br, t.opt.MaxFrame)
		if err != nil {
			// A dropped mesh connection is a dead peer: every subsequent
			// Send/Recv on this transport fails with a structured CrashError
			// naming the rank — the network analogue of a crash fault. (A
			// clean world shutdown closes connections only after every rank
			// has finished, so a mid-run EOF really is a death.)
			t.fail(fmt.Errorf("mpinet: connection to rank %d lost: %v: %w", p.rank, err, &mpi.CrashError{Rank: p.rank}))
			return
		}
		obsFramesRx.Inc()
		obsBytesRx.Add(int64(len(body) + 6))
		if kind != frameMsg {
			t.fail(fmt.Errorf("mpinet: unexpected frame kind %d on mesh connection to rank %d", kind, p.rank))
			return
		}
		m, err := parseMsg(body)
		if err != nil {
			t.fail(fmt.Errorf("mpinet: from rank %d: %w", p.rank, err))
			return
		}
		if m.Src != p.rank {
			t.fail(fmt.Errorf("mpinet: rank %d sent a frame claiming src %d", p.rank, m.Src))
			return
		}
		select {
		case t.queue(qkey{m.Comm, m.Src}) <- m:
		case <-t.dead:
			return
		}
	}
}

// Send implements mpi.Transport. dst is a world rank; a nonzero stall
// means the flow-control window was full (the caller counts it as a
// blocked send, exactly like a full in-process channel).
func (t *netTransport) Send(comm uint64, dst, tag int, data any) (time.Duration, error) {
	typeName, payload, err := encodePayload(data)
	if err != nil {
		return 0, err
	}
	m := msgBody{Comm: comm, Src: t.rank, Tag: tag, TypeName: typeName, Payload: payload}
	if dst == t.rank {
		return t.enqueue(t.queue(qkey{comm, t.rank}), m)
	}
	p := t.peers[dst]
	if p == nil {
		return 0, fmt.Errorf("mpinet: no connection to rank %d", dst)
	}
	buf := appendFrame(nil, frameMsg, m.encode())
	select {
	case p.out <- buf:
		return 0, nil
	case <-t.dead:
		return 0, t.failErr()
	default:
	}
	start := time.Now()
	select {
	case p.out <- buf:
		return time.Since(start), nil
	case <-t.dead:
		return 0, t.failErr()
	}
}

// enqueue is the self-send path: through the inbound queue with the same
// window semantics as a remote send. The payload still round-trips the
// codec so self-delivery and remote delivery are indistinguishable to the
// algorithm (ownership transfer included).
func (t *netTransport) enqueue(q chan msgBody, m msgBody) (time.Duration, error) {
	select {
	case q <- m:
		return 0, nil
	case <-t.dead:
		return 0, t.failErr()
	default:
	}
	start := time.Now()
	select {
	case q <- m:
		return time.Since(start), nil
	case <-t.dead:
		return 0, t.failErr()
	}
}

// Recv implements mpi.Transport. Like the in-process substrate, a tag
// mismatch at the head of the (comm, src) stream is a protocol error.
func (t *netTransport) Recv(comm uint64, src, tag int) (any, time.Duration, error) {
	q := t.queue(qkey{comm, src})
	var m msgBody
	var stall time.Duration
	select {
	case m = <-q:
	default:
		start := time.Now()
		timer := time.NewTimer(t.opt.RecvTimeout)
		select {
		case m = <-q:
			timer.Stop()
			stall = time.Since(start)
		case <-t.dead:
			timer.Stop()
			return nil, 0, t.failErr()
		case <-timer.C:
			return nil, 0, fmt.Errorf("mpinet: world %s: %w", t.worldID, &mpi.DeadlockError{
				Deadline: t.opt.RecvTimeout,
				Blocked:  []mpi.BlockedOp{{Rank: t.rank, Op: "recv", Peer: src, Tag: tag, For: t.opt.RecvTimeout}},
			})
		}
	}
	if m.Tag != tag {
		return nil, 0, fmt.Errorf("mpinet: rank %d expected tag %d from %d, got %d", t.rank, tag, src, m.Tag)
	}
	data, err := decodePayload(m.TypeName, m.Payload)
	if err != nil {
		return nil, 0, err
	}
	return data, stall, nil
}

// shutdown flushes and tears down the mesh after the rank's function has
// returned. Callers must only invoke it once the world is globally done
// (the worker waits for the coordinator to close the control connection
// first), so peers never mistake this close for a crash.
func (t *netTransport) shutdown() {
	t.mu.Lock()
	peers := append([]*peer(nil), t.peers...)
	t.mu.Unlock()
	for _, p := range peers {
		if p != nil {
			close(p.out)
		}
	}
	// Flush outstanding frames (a finished rank may still owe peers the
	// tail of its last collective), but never hang on a dead connection.
	flushed := make(chan struct{})
	go func() { t.writers.Wait(); close(flushed) }()
	select {
	case <-flushed:
	case <-time.After(5 * time.Second):
	}
	t.fail(errClosed)
	for _, p := range peers {
		if p != nil {
			p.close()
		}
	}
	t.readers.Wait()
}
