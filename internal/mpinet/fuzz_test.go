package mpinet

import (
	"bytes"
	"testing"
	"time"
)

// seedFrames returns one well-formed frame of every kind, as produced by
// the real encoders (these are also the checked-in fuzz corpus seeds).
func seedFrames() map[string][]byte {
	return map[string][]byte{
		"hello": appendFrame(nil, frameHello, helloBody{WorldID: "w-deadbeef", Rank: 2}.encode()),
		"ack":   appendFrame(nil, frameHelloAck, nil),
		"launch": appendFrame(nil, frameLaunch, launchBody{
			WorldID: "w-deadbeef", Rank: 1, Size: 3, Job: "phg.partition",
			Addrs:      []string{"127.0.0.1:19091", "127.0.0.1:19092", "127.0.0.1:19093"},
			SendWindow: 1024, RecvTimeout: 2 * time.Minute, Jitter: time.Millisecond, JitterSeed: 7,
			Payload: []byte{1, 2, 3},
		}.encode()),
		"msg": appendFrame(nil, frameMsg, msgBody{
			Comm: 0x9e3779b9, Src: 2, Tag: -41, TypeName: "[]int32", Payload: []byte{9, 8, 7},
		}.encode()),
		"result": appendFrame(nil, frameResult, resultBody{
			Messages: 120, Bytes: 48000, Collectives: 40, BlockedSends: 3,
			MaxStallNs: int64(17 * time.Millisecond), Payload: []byte{0, 1},
		}.encode()),
		"error": appendFrame(nil, frameError, errorBody{
			Kind: errKindCrash, Rank: 2, Step: 0, Msg: "mpi: rank 2 crashed (connection lost)",
		}.encode()),
	}
}

// FuzzFrameDecode drives the frame decoder with hostile input: any byte
// string must yield either a clean error or a frame whose parsed body
// survives an encode/parse round trip unchanged. This is the same
// contract FuzzBinaryCodec enforces for the HBW hypergraph codec.
func FuzzFrameDecode(f *testing.F) {
	for _, s := range seedFrames() {
		f.Add(s)
	}
	f.Add([]byte("HBN"))                                             // truncated header
	f.Add([]byte("XXX\x01\x01\x00"))                                 // bad magic
	f.Add([]byte("HBN\x02\x01\x00"))                                 // unknown version
	f.Add([]byte{'H', 'B', 'N', 1, 4, 0xff, 0xff, 0xff, 0xff, 0x7f}) // length bomb
	f.Add(append(seedFrames()["msg"], seedFrames()["hello"]...))     // two frames back to back

	f.Fuzz(func(t *testing.T, data []byte) {
		kind, body, rest, err := decodeFrame(data, 1<<20)
		if err != nil {
			return
		}
		if len(body)+len(rest) > len(data) {
			t.Fatalf("decoded %d body + %d rest bytes from %d input bytes", len(body), len(rest), len(data))
		}
		switch kind {
		case frameHello:
			h, err := parseHello(body)
			if err != nil {
				return
			}
			h2, err := parseHello(h.encode())
			if err != nil || h2 != h {
				t.Fatalf("hello round trip: %+v -> %+v (%v)", h, h2, err)
			}
		case frameLaunch:
			l, err := parseLaunch(body)
			if err != nil {
				return
			}
			l2, err := parseLaunch(l.encode())
			if err != nil {
				t.Fatalf("launch re-parse: %v", err)
			}
			if l2.WorldID != l.WorldID || l2.Rank != l.Rank || l2.Size != l.Size ||
				l2.Job != l.Job || len(l2.Addrs) != len(l.Addrs) ||
				l2.SendWindow != l.SendWindow || l2.RecvTimeout != l.RecvTimeout ||
				l2.Jitter != l.Jitter || l2.JitterSeed != l.JitterSeed ||
				!bytes.Equal(l2.Payload, l.Payload) {
				t.Fatalf("launch round trip: %+v -> %+v", l, l2)
			}
		case frameMsg:
			m, err := parseMsg(body)
			if err != nil {
				return
			}
			m2, err := parseMsg(m.encode())
			if err != nil || m2.Comm != m.Comm || m2.Src != m.Src || m2.Tag != m.Tag ||
				m2.TypeName != m.TypeName || !bytes.Equal(m2.Payload, m.Payload) {
				t.Fatalf("msg round trip: %+v -> %+v (%v)", m, m2, err)
			}
		case frameResult:
			res, err := parseResult(body)
			if err != nil {
				return
			}
			res2, err := parseResult(res.encode())
			if err != nil || res2.Messages != res.Messages || res2.Bytes != res.Bytes ||
				res2.Collectives != res.Collectives || res2.BlockedSends != res.BlockedSends ||
				res2.MaxStallNs != res.MaxStallNs || !bytes.Equal(res2.Payload, res.Payload) {
				t.Fatalf("result round trip: %+v -> %+v (%v)", res, res2, err)
			}
		case frameError:
			e, err := parseError(body)
			if err != nil {
				return
			}
			e2, err := parseError(e.encode())
			if err != nil || e2 != e {
				t.Fatalf("error round trip: %+v -> %+v (%v)", e, e2, err)
			}
		}
	})
}
