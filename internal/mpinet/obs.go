package mpinet

import "hyperbal/internal/obs"

var (
	obsFrames  = obs.Default().CounterVec("mpinet_frames_total", "dir")
	obsBytes   = obs.Default().CounterVec("mpinet_bytes_total", "dir")
	obsRedials = obs.Default().Counter("mpinet_redials_total")
	obsRTT     = obs.Default().Histogram("mpinet_rtt_ns", obs.DurationBounds)

	obsFramesTx = obsFrames.With("tx")
	obsFramesRx = obsFrames.With("rx")
	obsBytesTx  = obsBytes.With("tx")
	obsBytesRx  = obsBytes.With("rx")
)
