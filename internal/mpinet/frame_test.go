package mpinet

import (
	"bufio"
	"bytes"
	"errors"
	"io"
	"strings"
	"testing"
	"time"
)

// TestFrameStreamRoundTrip: every frame kind must survive the streaming
// reader (readFrame) byte-for-byte, including several frames back to back
// on one stream, with io.EOF verbatim at a clean boundary.
func TestFrameStreamRoundTrip(t *testing.T) {
	frames := seedFrames()
	order := []string{"hello", "ack", "launch", "msg", "result", "error"}
	var stream []byte
	for _, name := range order {
		stream = append(stream, frames[name]...)
	}
	br := bufio.NewReader(bytes.NewReader(stream))
	wantKinds := []byte{frameHello, frameHelloAck, frameLaunch, frameMsg, frameResult, frameError}
	for i, want := range wantKinds {
		kind, body, err := readFrame(br, DefaultMaxFrame)
		if err != nil {
			t.Fatalf("frame %d (%s): %v", i, order[i], err)
		}
		if kind != want {
			t.Fatalf("frame %d: kind %d, want %d", i, kind, want)
		}
		// The slice decoder must agree with the streaming decoder.
		k2, b2, rest, err := decodeFrame(frames[order[i]], DefaultMaxFrame)
		if err != nil || k2 != kind || !bytes.Equal(b2, body) || len(rest) != 0 {
			t.Fatalf("frame %d: decodeFrame disagrees with readFrame (%v)", i, err)
		}
	}
	if _, _, err := readFrame(br, DefaultMaxFrame); err != io.EOF {
		t.Fatalf("clean stream end: err = %v, want io.EOF", err)
	}
}

// TestFrameHostileInput: malformed frames must fail with structured
// errors — never a panic, never io.EOF masquerading as success, and never
// an allocation sized by an attacker-controlled length.
func TestFrameHostileInput(t *testing.T) {
	valid := seedFrames()["msg"]
	cases := []struct {
		name  string
		data  []byte
		magic bool // expect errBadMagic instead of errMalformed
	}{
		{"empty", nil, true},
		{"bad magic", []byte("XXX\x01\x01\x00"), true},
		{"truncated magic", []byte("HB"), true},
		{"bad version", []byte("HBN\x02\x01\x00"), false},
		{"kind zero", []byte("HBN\x01\x00\x00"), false},
		{"kind out of range", []byte("HBN\x01\x63\x00"), false},
		{"missing length", []byte("HBN\x01\x01"), false},
		{"length bomb", []byte{'H', 'B', 'N', 1, 4, 0xff, 0xff, 0xff, 0xff, 0x7f}, false},
		{"truncated body", valid[:len(valid)-2], false},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			_, _, _, err := decodeFrame(tc.data, DefaultMaxFrame)
			if err == nil {
				t.Fatal("decodeFrame accepted hostile input")
			}
			want := errMalformed
			if tc.magic {
				want = errBadMagic
			}
			if !errors.Is(err, want) {
				t.Fatalf("err = %v, want %v", err, want)
			}
			// The streaming twin must reject it too (io.EOF only at offset 0
			// of an empty stream).
			_, _, serr := readFrame(bufio.NewReader(bytes.NewReader(tc.data)), DefaultMaxFrame)
			if serr == nil {
				t.Fatal("readFrame accepted hostile input")
			}
		})
	}
}

// TestFrameBodyBounds: each body parser enforces its documented limits.
func TestFrameBodyBounds(t *testing.T) {
	if _, err := parseHello(helloBody{WorldID: strings.Repeat("x", maxWorldIDLen+1)}.encode()); err == nil {
		t.Error("hello accepted an oversized world id")
	}
	l := launchBody{WorldID: "w", Rank: 0, Size: 2, Job: "j",
		Addrs:      []string{"a", "b", "c"}, // count != Size
		SendWindow: 1, RecvTimeout: time.Second}
	if _, err := parseLaunch(l.encode()); err == nil {
		t.Error("launch accepted addr count != size")
	}
	if _, err := parseError(errorBody{Kind: errKindStall + 1, Msg: "m"}.encode()); err == nil {
		t.Error("error accepted an unknown kind")
	}
	if _, err := parseMsg(msgBody{Src: maxAddrCount + 1, TypeName: "t"}.encode()); err == nil {
		t.Error("msg accepted an out-of-range source rank")
	}
}
