// Package mpinet is the real-network half of the MPI substrate: a TCP
// transport implementing mpi.Transport plus the worker/coordinator pair
// that launches an SPMD world whose ranks live in separate processes. The
// SPMD partitioners (phg, pgp) run over it unchanged, and — by the
// parallelism-invariance the in-process substrate already proves — produce
// byte-identical partitions.
//
// Wire format ("HBN", hyperbal net): every frame is
//
//	"HBN" version(1) kind(1) uvarint(bodyLen) body
//
// with varint-packed bodies in the same bounds-checked discipline as the
// HBW hypergraph codec (internal/hypergraph/wirebin.go): every count is
// capped and checked against the bytes actually present, so hostile input
// yields clean errors, never panics or allocation bombs.
package mpinet

import (
	"bufio"
	"encoding/binary"
	"errors"
	"fmt"
	"io"
	"time"

	"hyperbal/internal/hypergraph"
)

const (
	frameMagic   = "HBN"
	frameVersion = 1
)

// Frame kinds. hello/helloAck establish mesh connections between rank
// processes; launch/result/error flow on the coordinator's control
// connection; msg carries one substrate message between two ranks.
const (
	frameHello byte = iota + 1
	frameHelloAck
	frameLaunch
	frameMsg
	frameResult
	frameError
)

// Hostile-input bounds, in the spirit of hypergraph.MaxWireVertices.
const (
	maxWorldIDLen = 64
	maxJobNameLen = 256
	maxAddrCount  = 1024
	maxAddrLen    = 256
	maxTypeName   = 256
	maxErrMsgLen  = 4096

	// DefaultMaxFrame bounds one frame body; a length prefix past it is
	// rejected before any allocation.
	DefaultMaxFrame = 64 << 20
)

var (
	errBadMagic  = errors.New("mpinet: bad frame magic")
	errMalformed = errors.New("mpinet: malformed frame")
)

// appendFrameHeader appends the fixed header plus the body length.
func appendFrame(buf []byte, kind byte, body []byte) []byte {
	buf = append(buf, frameMagic...)
	buf = append(buf, frameVersion, kind)
	buf = binary.AppendUvarint(buf, uint64(len(body)))
	return append(buf, body...)
}

// readFrame reads one frame from a stream. Returned body is freshly
// allocated (safe to retain). io.EOF is returned verbatim when the stream
// ends cleanly between frames.
func readFrame(br *bufio.Reader, maxFrame int) (byte, []byte, error) {
	var hdr [5]byte
	if _, err := io.ReadFull(br, hdr[:]); err != nil {
		if err == io.ErrUnexpectedEOF {
			return 0, nil, fmt.Errorf("%w: truncated header", errMalformed)
		}
		return 0, nil, err
	}
	if string(hdr[:3]) != frameMagic {
		return 0, nil, errBadMagic
	}
	if hdr[3] != frameVersion {
		return 0, nil, fmt.Errorf("%w: version %d", errMalformed, hdr[3])
	}
	kind := hdr[4]
	if kind < frameHello || kind > frameError {
		return 0, nil, fmt.Errorf("%w: unknown kind %d", errMalformed, kind)
	}
	n, err := binary.ReadUvarint(br)
	if err != nil {
		return 0, nil, fmt.Errorf("%w: body length: %v", errMalformed, err)
	}
	if n > uint64(maxFrame) {
		return 0, nil, fmt.Errorf("%w: body length %d exceeds limit %d", errMalformed, n, maxFrame)
	}
	body := make([]byte, n)
	if _, err := io.ReadFull(br, body); err != nil {
		return 0, nil, fmt.Errorf("%w: truncated body", errMalformed)
	}
	return kind, body, nil
}

// decodeFrame parses one frame from a byte slice (the fuzzable entry
// point; readFrame is its streaming twin). The body aliases data.
func decodeFrame(data []byte, maxFrame int) (kind byte, body []byte, rest []byte, err error) {
	r := hypergraph.NewBinReader(data)
	magic, err := r.Bytes(3)
	if err != nil || string(magic) != frameMagic {
		return 0, nil, nil, errBadMagic
	}
	ver, err := r.Byte()
	if err != nil {
		return 0, nil, nil, fmt.Errorf("%w: truncated header", errMalformed)
	}
	if ver != frameVersion {
		return 0, nil, nil, fmt.Errorf("%w: version %d", errMalformed, ver)
	}
	kind, err = r.Byte()
	if err != nil {
		return 0, nil, nil, fmt.Errorf("%w: truncated header", errMalformed)
	}
	if kind < frameHello || kind > frameError {
		return 0, nil, nil, fmt.Errorf("%w: unknown kind %d", errMalformed, kind)
	}
	n, err := r.Uvarint()
	if err != nil {
		return 0, nil, nil, fmt.Errorf("%w: body length", errMalformed)
	}
	if n > uint64(maxFrame) {
		return 0, nil, nil, fmt.Errorf("%w: body length %d exceeds limit %d", errMalformed, n, maxFrame)
	}
	body, err = r.Bytes(int(n))
	if err != nil {
		return 0, nil, nil, fmt.Errorf("%w: truncated body", errMalformed)
	}
	return kind, body, r.Rest(), nil
}

// ---- body codecs ----

func appendString(buf []byte, s string) []byte {
	buf = binary.AppendUvarint(buf, uint64(len(s)))
	return append(buf, s...)
}

func readString(r *hypergraph.BinReader, limit int) (string, error) {
	n, err := r.Count(limit)
	if err != nil {
		return "", err
	}
	b, err := r.Bytes(n)
	if err != nil {
		return "", err
	}
	return string(b), nil
}

// helloBody introduces a mesh connection: "rank Rank of world WorldID is
// on this conn". Acked with an empty helloAck frame once attached.
type helloBody struct {
	WorldID string
	Rank    int
}

func (h helloBody) encode() []byte {
	buf := appendString(nil, h.WorldID)
	return binary.AppendUvarint(buf, uint64(h.Rank))
}

func parseHello(body []byte) (helloBody, error) {
	r := hypergraph.NewBinReader(body)
	var h helloBody
	var err error
	if h.WorldID, err = readString(r, maxWorldIDLen); err != nil {
		return h, fmt.Errorf("%w: hello world id: %v", errMalformed, err)
	}
	rank, err := r.Uvarint()
	if err != nil || rank > uint64(maxAddrCount) {
		return h, fmt.Errorf("%w: hello rank", errMalformed)
	}
	h.Rank = int(rank)
	if r.Rem() != 0 {
		return h, fmt.Errorf("%w: %d trailing bytes after hello", errMalformed, r.Rem())
	}
	return h, nil
}

// launchBody tells a worker to become one rank of a world.
type launchBody struct {
	WorldID     string
	Rank, Size  int
	Job         string
	Addrs       []string // worker addresses, indexed by rank
	SendWindow  int
	RecvTimeout time.Duration
	Jitter      time.Duration
	JitterSeed  int64
	Payload     []byte // job input, opaque to the transport
}

func (l launchBody) encode() []byte {
	buf := appendString(nil, l.WorldID)
	buf = binary.AppendUvarint(buf, uint64(l.Rank))
	buf = binary.AppendUvarint(buf, uint64(l.Size))
	buf = appendString(buf, l.Job)
	buf = binary.AppendUvarint(buf, uint64(len(l.Addrs)))
	for _, a := range l.Addrs {
		buf = appendString(buf, a)
	}
	buf = binary.AppendUvarint(buf, uint64(l.SendWindow))
	buf = binary.AppendUvarint(buf, uint64(l.RecvTimeout))
	buf = binary.AppendUvarint(buf, uint64(l.Jitter))
	buf = binary.AppendVarint(buf, l.JitterSeed)
	return append(buf, l.Payload...)
}

func parseLaunch(body []byte) (launchBody, error) {
	r := hypergraph.NewBinReader(body)
	var l launchBody
	var err error
	if l.WorldID, err = readString(r, maxWorldIDLen); err != nil {
		return l, fmt.Errorf("%w: launch world id: %v", errMalformed, err)
	}
	rank, err := r.Uvarint()
	if err != nil {
		return l, fmt.Errorf("%w: launch rank", errMalformed)
	}
	size, err := r.Uvarint()
	if err != nil || size == 0 || size > maxAddrCount || rank >= size {
		return l, fmt.Errorf("%w: launch rank/size", errMalformed)
	}
	l.Rank, l.Size = int(rank), int(size)
	if l.Job, err = readString(r, maxJobNameLen); err != nil {
		return l, fmt.Errorf("%w: launch job: %v", errMalformed, err)
	}
	na, err := r.Count(maxAddrCount)
	if err != nil || na != l.Size {
		return l, fmt.Errorf("%w: launch addr count", errMalformed)
	}
	l.Addrs = make([]string, na)
	for i := range l.Addrs {
		if l.Addrs[i], err = readString(r, maxAddrLen); err != nil {
			return l, fmt.Errorf("%w: launch addr %d: %v", errMalformed, i, err)
		}
	}
	win, err := r.Uvarint()
	if err != nil || win > 1<<24 {
		return l, fmt.Errorf("%w: launch send window", errMalformed)
	}
	l.SendWindow = int(win)
	rt, err := r.Uvarint()
	if err != nil || rt > uint64(24*time.Hour) {
		return l, fmt.Errorf("%w: launch recv timeout", errMalformed)
	}
	l.RecvTimeout = time.Duration(rt)
	jit, err := r.Uvarint()
	if err != nil || jit > uint64(time.Hour) {
		return l, fmt.Errorf("%w: launch jitter", errMalformed)
	}
	l.Jitter = time.Duration(jit)
	if l.JitterSeed, err = r.Varint(); err != nil {
		return l, fmt.Errorf("%w: launch jitter seed", errMalformed)
	}
	l.Payload = r.Rest()
	return l, nil
}

// msgBody is one substrate message: communicator stream, source world
// rank, tag, and the gob-encoded payload with its registered type name.
type msgBody struct {
	Comm     uint64
	Src      int
	Tag      int
	TypeName string
	Payload  []byte
}

func (m msgBody) encode() []byte {
	buf := binary.AppendUvarint(nil, m.Comm)
	buf = binary.AppendUvarint(buf, uint64(m.Src))
	buf = binary.AppendVarint(buf, int64(m.Tag))
	buf = appendString(buf, m.TypeName)
	return append(buf, m.Payload...)
}

func parseMsg(body []byte) (msgBody, error) {
	r := hypergraph.NewBinReader(body)
	var m msgBody
	var err error
	if m.Comm, err = r.Uvarint(); err != nil {
		return m, fmt.Errorf("%w: msg comm", errMalformed)
	}
	src, err := r.Uvarint()
	if err != nil || src > uint64(maxAddrCount) {
		return m, fmt.Errorf("%w: msg src", errMalformed)
	}
	m.Src = int(src)
	tag, err := r.Varint()
	if err != nil || tag < -1<<31 || tag > 1<<31 {
		return m, fmt.Errorf("%w: msg tag", errMalformed)
	}
	m.Tag = int(tag)
	if m.TypeName, err = readString(r, maxTypeName); err != nil {
		return m, fmt.Errorf("%w: msg type name: %v", errMalformed, err)
	}
	m.Payload = r.Rest()
	return m, nil
}

// resultBody carries one finished rank's traffic stats and job output
// back to the coordinator.
type resultBody struct {
	Messages     int64
	Bytes        int64
	Collectives  int64
	BlockedSends int64
	MaxStallNs   int64
	Payload      []byte
}

func (res resultBody) encode() []byte {
	buf := binary.AppendUvarint(nil, uint64(res.Messages))
	buf = binary.AppendUvarint(buf, uint64(res.Bytes))
	buf = binary.AppendUvarint(buf, uint64(res.Collectives))
	buf = binary.AppendUvarint(buf, uint64(res.BlockedSends))
	buf = binary.AppendUvarint(buf, uint64(res.MaxStallNs))
	return append(buf, res.Payload...)
}

func parseResult(body []byte) (resultBody, error) {
	r := hypergraph.NewBinReader(body)
	var res resultBody
	for _, dst := range []*int64{&res.Messages, &res.Bytes, &res.Collectives, &res.BlockedSends, &res.MaxStallNs} {
		v, err := r.Uvarint()
		if err != nil || v > 1<<62 {
			return res, fmt.Errorf("%w: result counter", errMalformed)
		}
		*dst = int64(v)
	}
	res.Payload = r.Rest()
	return res, nil
}

// Error kinds carried by frameError.
const (
	errKindGeneric byte = iota
	errKindCrash
	errKindStall
)

// errorBody reports a failed rank: generic job errors, structured crash
// (a peer died — Rank names the dead world rank), or a stalled receive.
type errorBody struct {
	Kind byte
	Rank int
	Step int
	Msg  string
}

func (e errorBody) encode() []byte {
	buf := []byte{e.Kind}
	buf = binary.AppendVarint(buf, int64(e.Rank))
	buf = binary.AppendUvarint(buf, uint64(e.Step))
	return appendString(buf, e.Msg)
}

func parseError(body []byte) (errorBody, error) {
	r := hypergraph.NewBinReader(body)
	var e errorBody
	var err error
	if e.Kind, err = r.Byte(); err != nil || e.Kind > errKindStall {
		return e, fmt.Errorf("%w: error kind", errMalformed)
	}
	rank, err := r.Varint()
	if err != nil || rank < -1 || rank > int64(maxAddrCount) {
		return e, fmt.Errorf("%w: error rank", errMalformed)
	}
	e.Rank = int(rank)
	step, err := r.Uvarint()
	if err != nil || step > 1<<62 {
		return e, fmt.Errorf("%w: error step", errMalformed)
	}
	e.Step = int(step)
	if e.Msg, err = readString(r, maxErrMsgLen); err != nil {
		return e, fmt.Errorf("%w: error message: %v", errMalformed, err)
	}
	if r.Rem() != 0 {
		return e, fmt.Errorf("%w: %d trailing bytes after error", errMalformed, r.Rem())
	}
	return e, nil
}
