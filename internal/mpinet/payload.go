package mpinet

import (
	"bytes"
	"encoding/gob"
	"fmt"
	"reflect"

	"hyperbal/internal/mpi"
)

// Substrate payloads cross the wire as (type name, gob bytes). The type
// name comes from the mpi payload registry (mpi.RegisterPayload), which
// every payload-carrying package populates in its init — both ends run
// the same binary, so names resolve identically. gob rather than a
// hand-rolled codec because payloads are a small closed set of concrete
// types (scalars, slices, small structs with exported fields) and the
// per-message stream header is noise against the partitioners' payload
// sizes; the frame layer above already enforces the hostile-input bounds.

// encodePayload serializes v. A nil payload encodes as ("", nil).
func encodePayload(v any) (typeName string, data []byte, err error) {
	if v == nil {
		return "", nil, nil
	}
	typeName = mpi.PayloadName(v)
	if _, ok := mpi.PayloadTypeByName(typeName); !ok {
		return "", nil, fmt.Errorf("mpinet: payload type %s not registered (mpi.RegisterPayload)", typeName)
	}
	var buf bytes.Buffer
	if err := gob.NewEncoder(&buf).EncodeValue(reflect.ValueOf(v)); err != nil {
		return "", nil, fmt.Errorf("mpinet: encode %s payload: %w", typeName, err)
	}
	return typeName, buf.Bytes(), nil
}

// decodePayload reconstructs a payload from the wire. Unknown type names
// and malformed gob streams return errors, never panic.
func decodePayload(typeName string, data []byte) (v any, err error) {
	if typeName == "" {
		return nil, nil
	}
	t, ok := mpi.PayloadTypeByName(typeName)
	if !ok {
		return nil, fmt.Errorf("mpinet: payload type %q not registered on this side", typeName)
	}
	defer func() {
		// gob's decoder is documented to return errors, but a defensive
		// recover keeps a decoder bug from killing the reader goroutine.
		if r := recover(); r != nil {
			v, err = nil, fmt.Errorf("mpinet: decode %s payload: panic: %v", typeName, r)
		}
	}()
	pv := reflect.New(t)
	if err := gob.NewDecoder(bytes.NewReader(data)).DecodeValue(pv.Elem()); err != nil {
		return nil, fmt.Errorf("mpinet: decode %s payload: %w", typeName, err)
	}
	return pv.Elem().Interface(), nil
}
