package mpinet

import (
	"bufio"
	"context"
	"crypto/rand"
	"encoding/hex"
	"errors"
	"fmt"
	"net"
	"sync"
	"time"

	"hyperbal/internal/mpi"
)

// RankResult is one rank's report: its traffic counters (this rank's
// share of what an in-process world would accumulate in its shared Stats)
// and the job's output bytes.
type RankResult struct {
	Rank         int
	Messages     int64
	Bytes        int64
	Collectives  int64
	BlockedSends int64
	MaxStall     time.Duration
	Payload      []byte
}

// WorldResult collects every rank of a finished world, in rank order.
type WorldResult struct {
	Ranks []RankResult
}

// Root returns rank 0's payload — by convention the job's answer.
func (w *WorldResult) Root() []byte {
	if len(w.Ranks) == 0 {
		return nil
	}
	return w.Ranks[0].Payload
}

// RunWorld launches job as an SPMD world with one rank per worker address
// and waits for completion. It is the network analogue of mpi.RunStats:
// the coordinator ships a launch frame to each worker, the workers mesh
// up among themselves and run the registered job, and each reports back
// on its control connection.
//
// A worker process dying mid-run surfaces as an error wrapping
// *mpi.CrashError naming the dead rank (detected authoritatively by its
// control connection dropping, and independently by its peers' mesh
// connections dropping) — never as a hang: every wait is bounded by
// opt.RecvTimeout/opt.DialTimeout.
func RunWorld(ctx context.Context, job string, payload []byte, workers []string, opt Options) (*WorldResult, error) {
	n := len(workers)
	if n < 1 {
		return nil, fmt.Errorf("mpinet: RunWorld needs at least one worker")
	}
	if n > maxAddrCount {
		return nil, fmt.Errorf("mpinet: %d workers exceeds the limit %d", n, maxAddrCount)
	}
	opt = opt.withDefaults()
	var idb [8]byte
	if _, err := rand.Read(idb[:]); err != nil {
		return nil, fmt.Errorf("mpinet: world id: %w", err)
	}
	worldID := hex.EncodeToString(idb[:])

	conns := make([]net.Conn, n)
	defer func() {
		// Closing the control connections is the global-completion signal
		// the workers hold their mesh open for.
		for _, c := range conns {
			if c != nil {
				c.Close()
			}
		}
	}()
	for r := 0; r < n; r++ {
		c, err := net.DialTimeout("tcp", workers[r], opt.DialTimeout)
		if err != nil {
			return nil, fmt.Errorf("mpinet: dial worker %d at %s: %w", r, workers[r], err)
		}
		if tc, ok := c.(*net.TCPConn); ok {
			tc.SetNoDelay(true)
		}
		conns[r] = c
	}
	for r := 0; r < n; r++ {
		l := launchBody{
			WorldID:     worldID,
			Rank:        r,
			Size:        n,
			Job:         job,
			Addrs:       workers,
			SendWindow:  opt.SendWindow,
			RecvTimeout: opt.RecvTimeout,
			Jitter:      opt.Jitter,
			JitterSeed:  opt.JitterSeed,
			Payload:     payload,
		}
		if _, err := conns[r].Write(appendFrame(nil, frameLaunch, l.encode())); err != nil {
			return nil, fmt.Errorf("mpinet: launch rank %d at %s: %w (%w)",
				r, workers[r], err, &mpi.CrashError{Rank: r})
		}
	}

	// Cancel support: ctx done closes every control connection, which
	// unblocks the collectors and (via EOF) releases the workers.
	watchDone := make(chan struct{})
	defer close(watchDone)
	go func() {
		select {
		case <-ctx.Done():
			for _, c := range conns {
				c.Close()
			}
		case <-watchDone:
		}
	}()

	res := &WorldResult{Ranks: make([]RankResult, n)}
	errs := make([]error, n)
	var wg sync.WaitGroup
	for r := 0; r < n; r++ {
		wg.Add(1)
		go func(r int) {
			defer wg.Done()
			res.Ranks[r], errs[r] = collectRank(conns[r], r, workers[r], opt)
		}(r)
	}
	wg.Wait()
	if err := ctx.Err(); err != nil {
		return nil, err
	}
	// A dead worker usually takes its peers down with secondary crash
	// reports; prefer the structured crash naming the dead rank.
	var first error
	for _, err := range errs {
		if err == nil {
			continue
		}
		var ce *mpi.CrashError
		if errors.As(err, &ce) {
			return nil, err
		}
		if first == nil {
			first = err
		}
	}
	if first != nil {
		return nil, first
	}
	return res, nil
}

// collectRank reads one rank's result or error frame from its control
// connection. A dropped connection is the authoritative crash signal for
// that rank: the worker process died before reporting.
func collectRank(conn net.Conn, rank int, addr string, opt Options) (RankResult, error) {
	out := RankResult{Rank: rank}
	// The worker's own failure paths are all bounded (mesh dial timeout,
	// receive timeout); this deadline only guards against a fully wedged
	// worker process.
	conn.SetReadDeadline(time.Now().Add(opt.DialTimeout + opt.RecvTimeout + 30*time.Second))
	kind, body, err := readFrame(bufio.NewReaderSize(conn, 64<<10), opt.MaxFrame)
	if err != nil {
		return out, fmt.Errorf("mpinet: worker %s control connection lost: %v: %w",
			addr, err, &mpi.CrashError{Rank: rank})
	}
	switch kind {
	case frameResult:
		r, err := parseResult(body)
		if err != nil {
			return out, fmt.Errorf("mpinet: rank %d result: %w", rank, err)
		}
		out.Messages, out.Bytes = r.Messages, r.Bytes
		out.Collectives, out.BlockedSends = r.Collectives, r.BlockedSends
		out.MaxStall = time.Duration(r.MaxStallNs)
		out.Payload = r.Payload
		return out, nil
	case frameError:
		e, err := parseError(body)
		if err != nil {
			return out, fmt.Errorf("mpinet: rank %d error frame: %w", rank, err)
		}
		switch e.Kind {
		case errKindCrash:
			return out, fmt.Errorf("mpinet: rank %d reported: %s: %w",
				rank, e.Msg, &mpi.CrashError{Rank: e.Rank, Step: e.Step})
		case errKindStall:
			return out, fmt.Errorf("mpinet: rank %d reported: %s: %w",
				rank, e.Msg, &mpi.DeadlockError{Deadline: opt.RecvTimeout})
		default:
			return out, fmt.Errorf("mpinet: rank %d failed: %s", rank, e.Msg)
		}
	default:
		return out, fmt.Errorf("mpinet: unexpected frame kind %d on control connection of rank %d", kind, rank)
	}
}
