// Transport-parity suite: the network transport must be observationally
// identical to the in-process substrate — same partitions on every
// dataset analogue under both workload dynamics (including with jitter
// delaying every wire write), same per-rank traffic counts, and the same
// collective edge-case semantics internal/mpi/edge_test.go pins down.
package mpinet_test

import (
	"context"
	"fmt"
	"net"
	"reflect"
	"sync"
	"testing"
	"time"

	"hyperbal/internal/datasets"
	"hyperbal/internal/dynamics"
	"hyperbal/internal/gp"
	"hyperbal/internal/graph"
	"hyperbal/internal/hgp"
	"hyperbal/internal/mpi"
	"hyperbal/internal/mpinet"
	"hyperbal/internal/mpinet/jobs"
	"hyperbal/internal/partition"
	"hyperbal/internal/pgp"
	"hyperbal/internal/phg"
)

// bootWorkers starts n loopback workers (external-package twin of the
// helper in world_test.go).
func bootWorkers(t *testing.T, n int) []string {
	t.Helper()
	addrs := make([]string, n)
	for i := 0; i < n; i++ {
		ln, err := net.Listen("tcp", "127.0.0.1:0")
		if err != nil {
			t.Fatal(err)
		}
		w := mpinet.NewWorker(ln)
		go w.Serve()
		t.Cleanup(func() { w.Close() })
		addrs[i] = w.Addr()
	}
	return addrs
}

func newGen(t *testing.T, dynamic string, g *graph.Graph, init partition.Partition, k int, seed int64) dynamics.Generator {
	t.Helper()
	var gen dynamics.Generator
	var err error
	switch dynamic {
	case "structure":
		gen, err = dynamics.NewStructural(g, init, k, 0.25, 0.5, seed*3+1)
	case "weights":
		gen, err = dynamics.NewRefinement(g, init, k, 0.1, 1.5, 7.5, seed*3+2)
	default:
		t.Fatalf("unknown dynamic %q", dynamic)
	}
	if err != nil {
		t.Fatal(err)
	}
	return gen
}

// TestTransportParityAcrossDatasets is the PR's byte-identity gate: on
// every dataset analogue × both dynamics, phg and adaptive pgp over the
// network transport (3 worker processes, with per-message jitter armed)
// must produce exactly the partition the in-process goroutine substrate
// produces.
func TestTransportParityAcrossDatasets(t *testing.T) {
	const ranks, n, seed = 3, 300, 5
	addrs := bootWorkers(t, ranks)
	netOpt := mpinet.Options{
		RecvTimeout: time.Minute,
		Jitter:      200 * time.Microsecond,
		JitterSeed:  9,
	}
	for _, name := range []string{"xyce680s", "2DLipid", "auto", "apoa1-10", "cage14"} {
		for _, dynamic := range []string{"structure", "weights"} {
			t.Run(name+"/"+dynamic, func(t *testing.T) {
				g, err := datasets.Generate(name, n, seed)
				if err != nil {
					t.Fatal(err)
				}
				h := graph.ToHypergraph(g)
				static, err := hgp.Partition(h, hgp.Options{K: ranks, Seed: seed})
				if err != nil {
					t.Fatal(err)
				}
				// One perturbed epoch, so the wire carries the dynamic's
				// weight/structure changes, not just the pristine generator
				// output.
				prob, old := newGen(t, dynamic, g, static, ranks, seed).Next()

				// phg on the epoch hypergraph.
				phgOpt := phg.Options{Serial: hgp.Options{K: ranks, Seed: seed + 1}}
				var want partition.Partition
				if _, err := mpi.RunWith(ranks, mpi.Options{Watchdog: time.Minute}, func(c *mpi.Comm) error {
					p, err := phg.Partition(c, prob.H, phgOpt)
					if c.Rank() == 0 {
						want = p
					}
					return err
				}); err != nil {
					t.Fatal(err)
				}
				payload, err := jobs.EncodePHG(prob.H, phgOpt)
				if err != nil {
					t.Fatal(err)
				}
				res, err := mpinet.RunWorld(context.Background(), jobs.PHGPartition, payload, addrs, netOpt)
				if err != nil {
					t.Fatalf("phg over mpinet: %v", err)
				}
				got, err := jobs.DecodeParts(res.Root())
				if err != nil {
					t.Fatal(err)
				}
				diffParts(t, "phg", got, want.Parts)

				// Adaptive pgp on the epoch graph, inheriting old.
				pgpOpt := pgp.Options{Serial: gp.Options{K: ranks, Seed: seed + 2}}
				if _, err := mpi.RunWith(ranks, mpi.Options{Watchdog: time.Minute}, func(c *mpi.Comm) error {
					p, err := pgp.AdaptiveRepart(c, prob.G, old, 100, pgpOpt)
					if c.Rank() == 0 {
						want = p
					}
					return err
				}); err != nil {
					t.Fatal(err)
				}
				payload, err = jobs.EncodePGP(prob.G, old.Parts, 100, pgpOpt, true)
				if err != nil {
					t.Fatal(err)
				}
				res, err = mpinet.RunWorld(context.Background(), jobs.PGPPartition, payload, addrs, netOpt)
				if err != nil {
					t.Fatalf("pgp over mpinet: %v", err)
				}
				got, err = jobs.DecodeParts(res.Root())
				if err != nil {
					t.Fatal(err)
				}
				diffParts(t, "pgp", got, want.Parts)
			})
		}
	}
}

func diffParts(t *testing.T, label string, got, want []int32) {
	t.Helper()
	if len(got) != len(want) {
		t.Fatalf("%s: %d parts over mpinet, %d in-process", label, len(got), len(want))
	}
	for v := range want {
		if got[v] != want[v] {
			t.Fatalf("%s: partition diverges at vertex %d: %d over mpinet, %d in-process",
				label, v, got[v], want[v])
		}
	}
}

// TestTransportTrafficParity: the transport must not change what the
// algorithm sends — per world rank, the message count, payload bytes, and
// collective entries over mpinet must equal an OnEvent tally of the same
// run on the in-process substrate.
func TestTransportTrafficParity(t *testing.T) {
	const ranks, n, seed = 3, 260, 7
	g, err := datasets.Generate("xyce680s", n, seed)
	if err != nil {
		t.Fatal(err)
	}
	h := graph.ToHypergraph(g)
	phgOpt := phg.Options{Serial: hgp.Options{K: ranks, Seed: seed}}

	var mu sync.Mutex
	var msgs, bytes, colls [ranks]int64
	if _, err := mpi.RunWith(ranks, mpi.Options{OnEvent: func(e mpi.Event) {
		mu.Lock()
		defer mu.Unlock()
		switch e.Op {
		case "send":
			msgs[e.Rank]++
			bytes[e.Rank] += e.Bytes
		case "recv":
		default:
			colls[e.Rank]++
		}
	}}, func(c *mpi.Comm) error {
		_, err := phg.Partition(c, h, phgOpt)
		return err
	}); err != nil {
		t.Fatal(err)
	}

	payload, err := jobs.EncodePHG(h, phgOpt)
	if err != nil {
		t.Fatal(err)
	}
	res, err := mpinet.RunWorld(context.Background(), jobs.PHGPartition, payload, bootWorkers(t, ranks),
		mpinet.Options{RecvTimeout: time.Minute})
	if err != nil {
		t.Fatal(err)
	}
	for _, r := range res.Ranks {
		if r.Messages != msgs[r.Rank] || r.Bytes != bytes[r.Rank] || r.Collectives != colls[r.Rank] {
			t.Errorf("rank %d traffic: mpinet %d msgs / %d bytes / %d collectives, in-process %d / %d / %d",
				r.Rank, r.Messages, r.Bytes, r.Collectives, msgs[r.Rank], bytes[r.Rank], colls[r.Rank])
		}
	}
}

// ---- collective edge cases over the wire (mirrors mpi/edge_test.go) ----

func edgeErr(cond bool, format string, args ...any) error {
	if cond {
		return nil
	}
	return fmt.Errorf(format, args...)
}

func init() {
	mpinet.RegisterJob("parity.size1", func(c *mpi.Comm, _ []byte) ([]byte, error) {
		if got := mpi.Bcast(c, 0, 42); got != 42 {
			return nil, fmt.Errorf("Bcast = %d, want 42", got)
		}
		if got := mpi.Allgather(c, 7); !reflect.DeepEqual(got, []int{7}) {
			return nil, fmt.Errorf("Allgather = %v, want [7]", got)
		}
		if got := mpi.ExclusiveScan(c, 5, mpi.SumInt64); got != 0 {
			return nil, fmt.Errorf("ExclusiveScan on rank 0 = %d, want zero value", got)
		}
		if got := mpi.AllreduceMinLoc(c, 11); got.Key != 11 || got.Rank != 0 {
			return nil, fmt.Errorf("AllreduceMinLoc = %+v, want {11 0}", got)
		}
		return nil, nil
	})
	mpinet.RegisterJob("parity.exscan", func(c *mpi.Comm, _ []byte) ([]byte, error) {
		got := mpi.ExclusiveScan(c, int64(c.Rank()+1), mpi.SumInt64)
		var want int64
		for r := 1; r <= c.Rank(); r++ {
			want += int64(r)
		}
		return nil, edgeErr(got == want, "rank %d: ExclusiveScan = %d, want %d", c.Rank(), got, want)
	})
	mpinet.RegisterJob("parity.allreduce-empty", func(c *mpi.Comm, _ []byte) ([]byte, error) {
		if got := mpi.AllreduceSlice(c, nil, mpi.SumInt64); len(got) != 0 {
			return nil, fmt.Errorf("AllreduceSlice(nil) = %v, want empty", got)
		}
		if got := mpi.AllreduceSlice(c, []int64{}, mpi.SumInt64); len(got) != 0 {
			return nil, fmt.Errorf("AllreduceSlice([]) = %v, want empty", got)
		}
		return nil, nil
	})
	mpinet.RegisterJob("parity.alltoall-empty", func(c *mpi.Comm, _ []byte) ([]byte, error) {
		send := make([][]int32, c.Size())
		send[(c.Rank()+1)%c.Size()] = []int32{int32(c.Rank())}
		got := mpi.Alltoall(c, send)
		if len(got) != c.Size() {
			return nil, fmt.Errorf("Alltoall returned %d entries, want %d", len(got), c.Size())
		}
		src := (c.Rank() + c.Size() - 1) % c.Size()
		for r, pl := range got {
			if r == src {
				if len(pl) != 1 || pl[0] != int32(src) {
					return nil, fmt.Errorf("from %d got %v, want [%d]", r, pl, src)
				}
			} else if len(pl) != 0 {
				return nil, fmt.Errorf("from %d got %v, want empty", r, pl)
			}
		}
		return nil, nil
	})
	mpinet.RegisterJob("parity.gather-empty", func(c *mpi.Comm, _ []byte) ([]byte, error) {
		var v []int
		if c.Rank()%2 == 0 {
			v = []int{c.Rank()}
		}
		concat, counts := mpi.AllgatherSlice(c, v)
		if want := []int{1, 0, 1, 0}; !reflect.DeepEqual(counts, want) {
			return nil, fmt.Errorf("counts = %v, want %v", counts, want)
		}
		if want := []int{0, 2}; !reflect.DeepEqual(concat, want) {
			return nil, fmt.Errorf("concat = %v, want %v", concat, want)
		}
		return nil, nil
	})
	mpinet.RegisterJob("parity.split", func(c *mpi.Comm, _ []byte) ([]byte, error) {
		// Sub-communicators derive their stream ids without a wire exchange;
		// both halves must reduce independently and agree on the result.
		sub := c.Split(c.Rank()%2, c.Rank())
		got := mpi.Allreduce(sub, int64(c.Rank()), mpi.SumInt64)
		var want int64
		for r := c.Rank() % 2; r < c.Size(); r += 2 {
			want += int64(r)
		}
		return nil, edgeErr(got == want, "rank %d: split Allreduce = %d, want %d", c.Rank(), got, want)
	})
}

func TestTransportCollectiveEdgeCases(t *testing.T) {
	cases := []struct {
		job   string
		ranks int
	}{
		{"parity.size1", 1},
		{"parity.exscan", 4},
		{"parity.allreduce-empty", 3},
		{"parity.alltoall-empty", 3},
		{"parity.gather-empty", 4},
		{"parity.split", 4},
	}
	for _, tc := range cases {
		t.Run(tc.job, func(t *testing.T) {
			addrs := bootWorkers(t, tc.ranks)
			if _, err := mpinet.RunWorld(context.Background(), tc.job, nil, addrs,
				mpinet.Options{RecvTimeout: 30 * time.Second}); err != nil {
				t.Fatal(err)
			}
		})
	}
}
