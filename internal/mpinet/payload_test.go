package mpinet

import (
	"reflect"
	"testing"

	"hyperbal/internal/mpi"
)

type testPayload struct {
	A int32
	B float64
}

func init() {
	mpi.RegisterPayload(testPayload{}, []testPayload(nil))
}

func TestPayloadRoundTrip(t *testing.T) {
	cases := []any{
		nil,
		int(0), int(-7), int32(42), int64(1 << 40), float64(1.5), float64(0),
		true, false, "", "hello",
		[]int32(nil), []int32{}, []int32{1, -2, 3},
		[]int64{9, -9}, []float64{0.25, -1},
		[]int{5, 6}, []byte{1, 2, 3},
		[][]int32{{1}, {}, nil},
		mpi.MinLoc{}, mpi.MinLoc{Key: -3, Rank: 2},
		[]mpi.MinLoc{{Key: 1, Rank: 0}, {Key: 2, Rank: 1}},
		testPayload{A: 7, B: 2.5},
		[]testPayload{{A: 1}, {B: -0.5}},
	}
	for _, v := range cases {
		name, data, err := encodePayload(v)
		if err != nil {
			t.Fatalf("encode %#v: %v", v, err)
		}
		got, err := decodePayload(name, data)
		if err != nil {
			t.Fatalf("decode %#v: %v", v, err)
		}
		if v == nil {
			if got != nil {
				t.Fatalf("nil payload decoded to %#v", got)
			}
			continue
		}
		if reflect.TypeOf(got) != reflect.TypeOf(v) {
			t.Fatalf("payload %#v: type changed to %T", v, got)
		}
		if !payloadEqual(reflect.ValueOf(got), reflect.ValueOf(v)) {
			t.Fatalf("payload %#v round-tripped to %#v", v, got)
		}
	}
}

// payloadEqual is DeepEqual except that nil and empty slices compare
// equal at any depth — the one gob round-trip artifact, unobservable to
// the substrate's algorithms (they only read len and elements).
func payloadEqual(a, b reflect.Value) bool {
	if a.Kind() != b.Kind() {
		return false
	}
	switch a.Kind() {
	case reflect.Slice, reflect.Array:
		if a.Len() != b.Len() {
			return false
		}
		for i := 0; i < a.Len(); i++ {
			if !payloadEqual(a.Index(i), b.Index(i)) {
				return false
			}
		}
		return true
	case reflect.Struct:
		for i := 0; i < a.NumField(); i++ {
			if !payloadEqual(a.Field(i), b.Field(i)) {
				return false
			}
		}
		return true
	default:
		return reflect.DeepEqual(a.Interface(), b.Interface())
	}
}

func TestPayloadUnregisteredType(t *testing.T) {
	type private struct{ X int }
	if _, _, err := encodePayload(private{1}); err == nil {
		t.Fatal("encoding an unregistered type must fail")
	}
	if _, err := decodePayload("mpinet.noSuchType", nil); err == nil {
		t.Fatal("decoding an unregistered type name must fail")
	}
}
