package dhg

import (
	"math/rand"
	"testing"
	"testing/quick"

	"hyperbal/internal/hypergraph"
	"hyperbal/internal/mpi"
	"hyperbal/internal/partition"
)

func TestDistribute2DStats(t *testing.T) {
	rng := rand.New(rand.NewSource(11))
	h := randomHG(rng, 60, 90)
	want := hypergraph.ComputeStats(h)
	for _, grid := range [][2]int{{1, 1}, {2, 2}, {2, 3}, {3, 2}} {
		px, py := grid[0], grid[1]
		err := mpi.Run(px*py, func(c *mpi.Comm) error {
			var in *hypergraph.Hypergraph
			if c.Rank() == 0 {
				in = h
			}
			d, err := Distribute2D(c, 0, in, px, py)
			if err != nil {
				return err
			}
			s := d.Stats()
			if s.NumVertices != want.NumVertices || s.NumNets != want.NumNets ||
				s.NumPins != want.NumPins || s.TotalWeight != want.TotalWeight ||
				s.TotalCost != want.TotalCost {
				t.Errorf("grid %dx%d rank %d: stats %+v, want %+v", px, py, c.Rank(), s, want)
			}
			return nil
		})
		if err != nil {
			t.Fatal(err)
		}
	}
}

func TestDistribute2DGridValidation(t *testing.T) {
	err := mpi.Run(3, func(c *mpi.Comm) error {
		_, err := Distribute2D(c, 0, nil, 2, 2) // 4 != 3
		if err == nil {
			t.Error("expected grid size mismatch error")
		}
		return nil
	})
	if err != nil {
		t.Fatal(err)
	}
}

func TestCut2DMatchesSerial(t *testing.T) {
	rng := rand.New(rand.NewSource(13))
	for trial := 0; trial < 4; trial++ {
		h := randomHG(rng, 25+rng.Intn(40), 70)
		k := 2 + rng.Intn(5)
		parts := make([]int32, h.NumVertices())
		for v := range parts {
			parts[v] = int32(rng.Intn(k))
		}
		want := partition.CutSize(h, partition.Partition{Parts: parts, K: k})
		grids := [][2]int{{1, 2}, {2, 2}, {3, 1}, {2, 3}}
		px, py := grids[trial][0], grids[trial][1]
		err := mpi.Run(px*py, func(c *mpi.Comm) error {
			var in *hypergraph.Hypergraph
			if c.Rank() == 0 {
				in = h
			}
			d, err := Distribute2D(c, 0, in, px, py)
			if err != nil {
				return err
			}
			lo, hi := d.VertexRange()
			got, err := d.CutSize(parts[lo:hi], k)
			if err != nil {
				return err
			}
			if got != want {
				t.Errorf("trial %d grid %dx%d rank %d: cut %d != %d", trial, px, py, c.Rank(), got, want)
			}
			return nil
		})
		if err != nil {
			t.Fatal(err)
		}
	}
}

func TestCut2DManyParts(t *testing.T) {
	// k > 64 exercises multi-word bitmasks.
	rng := rand.New(rand.NewSource(17))
	h := randomHG(rng, 200, 150)
	k := 100
	parts := make([]int32, 200)
	for v := range parts {
		parts[v] = int32(rng.Intn(k))
	}
	want := partition.CutSize(h, partition.Partition{Parts: parts, K: k})
	err := mpi.Run(4, func(c *mpi.Comm) error {
		var in *hypergraph.Hypergraph
		if c.Rank() == 0 {
			in = h
		}
		d, err := Distribute2D(c, 0, in, 2, 2)
		if err != nil {
			return err
		}
		lo, hi := d.VertexRange()
		got, err := d.CutSize(parts[lo:hi], k)
		if err != nil {
			return err
		}
		if got != want {
			t.Errorf("rank %d: k=100 cut %d != %d", c.Rank(), got, want)
		}
		return nil
	})
	if err != nil {
		t.Fatal(err)
	}
}

// Property: 2D distributed cut equals serial for random hypergraphs,
// partitions and grid shapes.
func TestQuick2DCut(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		h := randomHG(rng, 10+rng.Intn(30), 40)
		k := 2 + rng.Intn(4)
		parts := make([]int32, h.NumVertices())
		for v := range parts {
			parts[v] = int32(rng.Intn(k))
		}
		want := partition.CutSize(h, partition.Partition{Parts: parts, K: k})
		px, py := 1+rng.Intn(3), 1+rng.Intn(3)
		ok := true
		err := mpi.Run(px*py, func(c *mpi.Comm) error {
			var in *hypergraph.Hypergraph
			if c.Rank() == 0 {
				in = h
			}
			d, err := Distribute2D(c, 0, in, px, py)
			if err != nil {
				return err
			}
			lo, hi := d.VertexRange()
			got, err := d.CutSize(parts[lo:hi], k)
			if err != nil {
				return err
			}
			if got != want {
				ok = false
			}
			return nil
		})
		return err == nil && ok
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 20}); err != nil {
		t.Fatal(err)
	}
}
