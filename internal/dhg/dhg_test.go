package dhg

import (
	"math/rand"
	"testing"
	"testing/quick"

	"hyperbal/internal/hypergraph"
	"hyperbal/internal/mpi"
	"hyperbal/internal/partition"
)

func randomHG(rng *rand.Rand, n, nets int) *hypergraph.Hypergraph {
	b := hypergraph.NewBuilder(n)
	for v := 0; v < n; v++ {
		b.SetWeight(v, int64(1+rng.Intn(4)))
		b.SetSize(v, int64(1+rng.Intn(4)))
	}
	for i := 0; i < nets; i++ {
		sz := 2 + rng.Intn(4)
		if sz > n {
			sz = n
		}
		b.AddNet(int64(1+rng.Intn(3)), rng.Perm(n)[:sz]...)
	}
	return b.Build()
}

func TestDistributeStats(t *testing.T) {
	rng := rand.New(rand.NewSource(1))
	h := randomHG(rng, 50, 80)
	want := hypergraph.ComputeStats(h)
	err := mpi.Run(4, func(c *mpi.Comm) error {
		var in *hypergraph.Hypergraph
		if c.Rank() == 0 {
			in = h
		}
		d, err := Distribute(c, 0, in)
		if err != nil {
			return err
		}
		s := d.Stats()
		if s.NumVertices != want.NumVertices || s.NumNets != want.NumNets ||
			s.NumPins != want.NumPins || s.TotalWeight != want.TotalWeight ||
			s.TotalSize != want.TotalSize || s.TotalCost != want.TotalCost {
			t.Errorf("rank %d: stats %+v, want %+v", c.Rank(), s, want)
		}
		return nil
	})
	if err != nil {
		t.Fatal(err)
	}
}

func TestDistributeGatherRoundTrip(t *testing.T) {
	rng := rand.New(rand.NewSource(3))
	h := randomHG(rng, 40, 60)
	err := mpi.Run(3, func(c *mpi.Comm) error {
		var in *hypergraph.Hypergraph
		if c.Rank() == 0 {
			in = h
		}
		d, err := Distribute(c, 0, in)
		if err != nil {
			return err
		}
		g := d.Gather(0)
		if c.Rank() != 0 {
			if g != nil {
				t.Error("non-root Gather returned a hypergraph")
			}
			return nil
		}
		if g.NumVertices() != h.NumVertices() || g.NumNets() != h.NumNets() || g.NumPins() != h.NumPins() {
			t.Errorf("round trip shape mismatch: %v vs %v", g, h)
		}
		for v := 0; v < h.NumVertices(); v++ {
			if g.Weight(v) != h.Weight(v) || g.Size(v) != h.Size(v) {
				t.Errorf("vertex %d attrs lost", v)
			}
		}
		// nets may be reordered; compare multisets of (cost, sorted pins)
		type key struct{ cost, pins string }
		count := map[string]int{}
		fp := func(hh *hypergraph.Hypergraph, n int) string {
			s := string(rune(hh.Cost(n))) + ":"
			for _, p := range hh.SortedPins(n) {
				s += string(rune(p)) + ","
			}
			return s
		}
		for n := 0; n < h.NumNets(); n++ {
			count[fp(h, n)]++
		}
		for n := 0; n < g.NumNets(); n++ {
			count[fp(g, n)]--
		}
		for k, v := range count {
			if v != 0 {
				t.Errorf("net multiset mismatch at %q: %d", k, v)
			}
		}
		return nil
	})
	if err != nil {
		t.Fatal(err)
	}
}

func TestDistributedCutMatchesSerial(t *testing.T) {
	rng := rand.New(rand.NewSource(5))
	for trial := 0; trial < 4; trial++ {
		h := randomHG(rng, 30+rng.Intn(40), 60)
		k := 2 + rng.Intn(4)
		parts := make([]int32, h.NumVertices())
		for v := range parts {
			parts[v] = int32(rng.Intn(k))
		}
		want := partition.CutSize(h, partition.Partition{Parts: parts, K: k})
		np := 1 + rng.Intn(5)
		err := mpi.Run(np, func(c *mpi.Comm) error {
			var in *hypergraph.Hypergraph
			if c.Rank() == 0 {
				in = h
			}
			d, err := Distribute(c, 0, in)
			if err != nil {
				return err
			}
			lo, hi := d.LocalRange()
			got, err := d.CutSize(parts[lo:hi], k)
			if err != nil {
				return err
			}
			if got != want {
				t.Errorf("trial %d rank %d: distributed cut %d != serial %d", trial, c.Rank(), got, want)
			}
			return nil
		})
		if err != nil {
			t.Fatal(err)
		}
	}
}

func TestCutSizeLengthValidation(t *testing.T) {
	h := randomHG(rand.New(rand.NewSource(7)), 20, 20)
	err := mpi.Run(2, func(c *mpi.Comm) error {
		var in *hypergraph.Hypergraph
		if c.Rank() == 0 {
			in = h
		}
		d, err := Distribute(c, 0, in)
		if err != nil {
			return err
		}
		if _, err := d.CutSize(make([]int32, 3), 2); err == nil {
			t.Error("expected length mismatch error")
		}
		// keep collective symmetry for the valid path
		lo, hi := d.LocalRange()
		_, err = d.CutSize(make([]int32, hi-lo), 2)
		return err
	})
	if err != nil {
		t.Fatal(err)
	}
}

func TestDistributeRequiresRootHypergraph(t *testing.T) {
	err := mpi.Run(1, func(c *mpi.Comm) error {
		_, err := Distribute(c, 0, nil)
		if err == nil {
			t.Error("expected error for nil root hypergraph")
		}
		return nil
	})
	if err != nil {
		t.Fatal(err)
	}
}

// Property: distributed cut equals serial cut for random hypergraphs,
// partitions and world sizes.
func TestQuickDistributedCut(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		h := randomHG(rng, 8+rng.Intn(30), 30)
		k := 2 + rng.Intn(3)
		parts := make([]int32, h.NumVertices())
		for v := range parts {
			parts[v] = int32(rng.Intn(k))
		}
		want := partition.CutSize(h, partition.Partition{Parts: parts, K: k})
		np := 1 + rng.Intn(4)
		ok := true
		err := mpi.Run(np, func(c *mpi.Comm) error {
			var in *hypergraph.Hypergraph
			if c.Rank() == 0 {
				in = h
			}
			d, err := Distribute(c, 0, in)
			if err != nil {
				return err
			}
			lo, hi := d.LocalRange()
			got, err := d.CutSize(parts[lo:hi], k)
			if err != nil {
				return err
			}
			if got != want {
				ok = false
			}
			return nil
		})
		return err == nil && ok
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 25}); err != nil {
		t.Fatal(err)
	}
}
