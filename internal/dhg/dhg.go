// Package dhg provides a distributed hypergraph: vertices are
// block-distributed over the ranks of a communicator and every net lives
// on the rank owning its first pin. This mirrors how Zoltan stores
// hypergraphs across MPI processes — no rank holds the whole structure —
// and exercises the request/response ghost-exchange pattern that
// distributed-memory partitioners are built from.
//
// Supported distributed operations: scatter from a root-held hypergraph,
// gather back, global statistics via reductions, and a fully distributed
// connectivity-1 cut: each rank resolves the parts of its ghost pins by a
// two-phase id-request/part-response exchange, computes its owned nets'
// contributions, and a reduction produces the global cut on every rank —
// bit-identical to the serial partition.CutSize.
package dhg

import (
	"fmt"
	"sort"

	"hyperbal/internal/hypergraph"
	"hyperbal/internal/mpi"
)

// DH is one rank's share of a distributed hypergraph.
type DH struct {
	c *mpi.Comm

	globalV int
	lo, hi  int // owned vertex block [lo, hi)

	weights []int64 // local block attrs, index v-lo
	sizes   []int64

	// owned nets (owner = rank of first pin), pins hold global vertex ids
	netCosts []int64
	netPins  [][]int32
}

const (
	tagVtx = 9100 + iota
	tagNets
	tagReq
	tagResp
)

type netMsg struct {
	Cost int64
	Pins []int32
}

// blockRange mirrors the partitioners' 1D block distribution.
func blockRange(n, size, r int) (int, int) {
	per := n / size
	rem := n % size
	lo := r*per + minInt(r, rem)
	hi := lo + per
	if r < rem {
		hi++
	}
	return lo, hi
}

func minInt(a, b int) int {
	if a < b {
		return a
	}
	return b
}

// ownerOf returns the rank owning global vertex v.
func ownerOf(v, n, size int) int {
	// invert blockRange: scan is O(size); size is small.
	for r := 0; r < size; r++ {
		lo, hi := blockRange(n, size, r)
		if v >= lo && v < hi {
			return r
		}
	}
	return -1
}

// Distribute scatters a hypergraph held by root across the communicator.
// Every rank calls it; only root's h is read (others may pass nil). Each
// rank receives its vertex block and the nets it owns.
func Distribute(c *mpi.Comm, root int, h *hypergraph.Hypergraph) (*DH, error) {
	type vtxMsg struct {
		GlobalV int
		Weights []int64
		Sizes   []int64
	}
	d := &DH{c: c}
	if c.Rank() == root {
		if h == nil {
			return nil, fmt.Errorf("dhg: root must supply the hypergraph")
		}
		n := h.NumVertices()
		// vertex blocks
		for r := 0; r < c.Size(); r++ {
			lo, hi := blockRange(n, c.Size(), r)
			msg := vtxMsg{GlobalV: n,
				Weights: make([]int64, hi-lo),
				Sizes:   make([]int64, hi-lo)}
			for v := lo; v < hi; v++ {
				msg.Weights[v-lo] = h.Weight(v)
				msg.Sizes[v-lo] = h.Size(v)
			}
			if r == root {
				d.globalV = n
				d.lo, d.hi = lo, hi
				d.weights, d.sizes = msg.Weights, msg.Sizes
			} else {
				c.Send(r, tagVtx, msg)
			}
		}
		// nets to their owners
		perRank := make([][]netMsg, c.Size())
		for netID := 0; netID < h.NumNets(); netID++ {
			pins := h.Pins(netID)
			if len(pins) == 0 {
				continue
			}
			owner := ownerOf(int(pins[0]), n, c.Size())
			perRank[owner] = append(perRank[owner], netMsg{
				Cost: h.Cost(netID),
				Pins: append([]int32(nil), pins...),
			})
		}
		for r := 0; r < c.Size(); r++ {
			if r == root {
				for _, m := range perRank[r] {
					d.netCosts = append(d.netCosts, m.Cost)
					d.netPins = append(d.netPins, m.Pins)
				}
			} else {
				c.Send(r, tagNets, perRank[r])
			}
		}
	} else {
		msg := c.Recv(root, tagVtx).(vtxMsg)
		d.globalV = msg.GlobalV
		d.lo, d.hi = blockRange(msg.GlobalV, c.Size(), c.Rank())
		d.weights, d.sizes = msg.Weights, msg.Sizes
		for _, m := range c.Recv(root, tagNets).([]netMsg) {
			d.netCosts = append(d.netCosts, m.Cost)
			d.netPins = append(d.netPins, m.Pins)
		}
	}
	return d, nil
}

// GlobalVertices returns |V| of the distributed hypergraph.
func (d *DH) GlobalVertices() int { return d.globalV }

// LocalRange returns the owned vertex block [lo, hi).
func (d *DH) LocalRange() (int, int) { return d.lo, d.hi }

// LocalNets returns the number of nets owned by this rank.
func (d *DH) LocalNets() int { return len(d.netCosts) }

// GlobalStats computes global vertex/net/pin counts and weight totals via
// reductions; identical on every rank.
type GlobalStats struct {
	NumVertices, NumNets, NumPins int
	TotalWeight, TotalSize        int64
	TotalCost                     int64
}

// Stats reduces the per-rank contributions into global statistics.
func (d *DH) Stats() GlobalStats {
	var localPins, localW, localS, localC int64
	for i := range d.netPins {
		localPins += int64(len(d.netPins[i]))
		localC += d.netCosts[i]
	}
	for i := range d.weights {
		localW += d.weights[i]
		localS += d.sizes[i]
	}
	totals := mpi.AllreduceSlice(d.c,
		[]int64{int64(len(d.netCosts)), localPins, localW, localS, localC},
		mpi.SumInt64)
	return GlobalStats{
		NumVertices: d.globalV,
		NumNets:     int(totals[0]),
		NumPins:     int(totals[1]),
		TotalWeight: totals[2],
		TotalSize:   totals[3],
		TotalCost:   totals[4],
	}
}

// CutSize computes the global connectivity-1 cut of a distributed
// partition: localParts[i] is the part of vertex lo+i. Ghost pin parts are
// fetched from their owners with an id-request / part-response exchange;
// the per-rank contributions are then summed with a reduction. Every rank
// returns the identical global cut.
func (d *DH) CutSize(localParts []int32, k int) (int64, error) {
	if len(localParts) != d.hi-d.lo {
		return 0, fmt.Errorf("dhg: localParts covers %d vertices, block has %d", len(localParts), d.hi-d.lo)
	}
	ghostParts, err := d.resolveGhosts(localParts)
	if err != nil {
		return 0, err
	}
	partOf := func(v int32) int32 {
		if int(v) >= d.lo && int(v) < d.hi {
			return localParts[int(v)-d.lo]
		}
		return ghostParts[v]
	}
	mark := make([]bool, k)
	var local int64
	for i, pins := range d.netPins {
		lambda := 0
		for _, v := range pins {
			q := partOf(v)
			if !mark[q] {
				mark[q] = true
				lambda++
			}
		}
		for _, v := range pins {
			mark[partOf(v)] = false
		}
		if lambda > 1 {
			local += d.netCosts[i] * int64(lambda-1)
		}
	}
	return mpi.Allreduce(d.c, local, mpi.SumInt64), nil
}

// resolveGhosts fetches the parts of all non-local pins of owned nets.
func (d *DH) resolveGhosts(localParts []int32) (map[int32]int32, error) {
	need := make(map[int32]struct{})
	for _, pins := range d.netPins {
		for _, v := range pins {
			if int(v) < d.lo || int(v) >= d.hi {
				need[v] = struct{}{}
			}
		}
	}
	// Group requests by owner, deterministically ordered.
	reqs := make([][]int32, d.c.Size())
	for v := range need {
		owner := ownerOf(int(v), d.globalV, d.c.Size())
		if owner < 0 {
			return nil, fmt.Errorf("dhg: pin %d outside global range %d", v, d.globalV)
		}
		reqs[owner] = append(reqs[owner], v)
	}
	for r := range reqs {
		sort.Slice(reqs[r], func(i, j int) bool { return reqs[r][i] < reqs[r][j] })
	}
	// Phase 1: exchange requested ids. Phase 2: answer with parts.
	incoming := mpi.Alltoall(d.c, reqs)
	answers := make([][]int32, d.c.Size())
	for r, ids := range incoming {
		answers[r] = make([]int32, len(ids))
		for i, v := range ids {
			if int(v) < d.lo || int(v) >= d.hi {
				return nil, fmt.Errorf("dhg: rank %d asked rank %d for non-owned vertex %d", r, d.c.Rank(), v)
			}
			answers[r][i] = localParts[int(v)-d.lo]
		}
	}
	replies := mpi.Alltoall(d.c, answers)
	ghost := make(map[int32]int32, len(need))
	for r, parts := range replies {
		for i, p := range parts {
			ghost[reqs[r][i]] = p
		}
	}
	return ghost, nil
}

// Gather reassembles the distributed hypergraph on root (inverse of
// Distribute); other ranks return nil. Net order may differ from the
// original; pins, costs and vertex attributes are preserved.
func (d *DH) Gather(root int) *hypergraph.Hypergraph {
	type rankData struct {
		Lo      int
		Weights []int64
		Sizes   []int64
		Nets    []netMsg
	}
	nets := make([]netMsg, len(d.netCosts))
	for i := range nets {
		nets[i] = netMsg{Cost: d.netCosts[i], Pins: d.netPins[i]}
	}
	all := mpi.Gather(d.c, root, rankData{Lo: d.lo, Weights: d.weights, Sizes: d.sizes, Nets: nets})
	if d.c.Rank() != root {
		return nil
	}
	b := hypergraph.NewBuilder(d.globalV)
	for _, rd := range all {
		for i := range rd.Weights {
			b.SetWeight(rd.Lo+i, rd.Weights[i])
			b.SetSize(rd.Lo+i, rd.Sizes[i])
		}
		for _, nm := range rd.Nets {
			b.AddNetInt32(nm.Cost, nm.Pins)
		}
	}
	return b.Build()
}
