package dhg

import (
	"fmt"
	"math/bits"

	"hyperbal/internal/hypergraph"
	"hyperbal/internal/mpi"
)

// DH2D is one rank's share of a 2D-distributed hypergraph: the processor
// grid is px × py, nets are blocked over the px grid rows and vertices
// over the py grid columns, and rank (i,j) stores the pins of row-block i
// restricted to column-block j — a block of the net×vertex incidence
// matrix. This is the layout Zoltan's parallel hypergraph partitioner
// uses ("Zoltan uses a two-dimensional data distribution", §4.1); the
// package provides it with distributed statistics and a fully distributed
// connectivity-1 cut whose row-wise OR-reduction of part masks mirrors
// how 2D codes compute net connectivity.
type DH2D struct {
	c      *mpi.Comm
	row    *mpi.Comm // ranks sharing my net row-block (fixed i, varying j)
	px, py int
	i, j   int // my grid coordinates

	globalV, globalN int
	vLo, vHi         int // my vertex column block
	nLo, nHi         int // my net row block

	weights []int64 // vertex attrs for my column block (replicated down the column)
	sizes   []int64

	netCosts []int64   // costs of my row block's nets (replicated across the row)
	netPins  [][]int32 // local pins (global vertex ids within [vLo,vHi)) per net of my row block
	netSize  []int32   // GLOBAL pin count per net of my row block
}

const (
	tag2DMeta = 9200 + iota
	tag2DBlock
)

// Distribute2D scatters a hypergraph held by root across a px × py grid.
// px*py must equal the communicator size. Rank r sits at grid position
// (r/py, r%py).
func Distribute2D(c *mpi.Comm, root int, h *hypergraph.Hypergraph, px, py int) (*DH2D, error) {
	if px*py != c.Size() {
		return nil, fmt.Errorf("dhg: grid %dx%d needs %d ranks, world has %d", px, py, px*py, c.Size())
	}
	d := &DH2D{c: c, px: px, py: py, i: c.Rank() / py, j: c.Rank() % py}

	type meta struct{ V, N int }
	type block struct {
		Weights, Sizes []int64
		NetCosts       []int64
		NetPins        [][]int32
		NetSize        []int32
	}
	if c.Rank() == root {
		if h == nil {
			return nil, fmt.Errorf("dhg: root must supply the hypergraph")
		}
		m := meta{V: h.NumVertices(), N: h.NumNets()}
		for r := 0; r < c.Size(); r++ {
			if r != root {
				c.Send(r, tag2DMeta, m)
			}
		}
		applyMeta(d, m)
		for r := 0; r < c.Size(); r++ {
			ri, rj := r/py, r%py
			nLo, nHi := blockRange(h.NumNets(), px, ri)
			vLo, vHi := blockRange(h.NumVertices(), py, rj)
			b := block{
				Weights:  make([]int64, vHi-vLo),
				Sizes:    make([]int64, vHi-vLo),
				NetCosts: make([]int64, nHi-nLo),
				NetPins:  make([][]int32, nHi-nLo),
				NetSize:  make([]int32, nHi-nLo),
			}
			for v := vLo; v < vHi; v++ {
				b.Weights[v-vLo] = h.Weight(v)
				b.Sizes[v-vLo] = h.Size(v)
			}
			for n := nLo; n < nHi; n++ {
				b.NetCosts[n-nLo] = h.Cost(n)
				b.NetSize[n-nLo] = int32(h.NetSize(n))
				for _, p := range h.Pins(n) {
					if int(p) >= vLo && int(p) < vHi {
						b.NetPins[n-nLo] = append(b.NetPins[n-nLo], p)
					}
				}
			}
			if r == root {
				applyBlock(d, b)
			} else {
				c.Send(r, tag2DBlock, b)
			}
		}
	} else {
		applyMeta(d, c.Recv(root, tag2DMeta).(meta))
		applyBlock(d, c.Recv(root, tag2DBlock).(block))
	}
	// Row subcommunicator: same i, ordered by j.
	d.row = c.Split(d.i, d.j)
	return d, nil
}

func applyMeta(d *DH2D, m struct{ V, N int }) {
	d.globalV, d.globalN = m.V, m.N
	d.nLo, d.nHi = blockRange(m.N, d.px, d.i)
	d.vLo, d.vHi = blockRange(m.V, d.py, d.j)
}

func applyBlock(d *DH2D, b struct {
	Weights, Sizes []int64
	NetCosts       []int64
	NetPins        [][]int32
	NetSize        []int32
}) {
	d.weights, d.sizes = b.Weights, b.Sizes
	d.netCosts, d.netPins, d.netSize = b.NetCosts, b.NetPins, b.NetSize
}

// Grid returns (px, py, i, j) for this rank.
func (d *DH2D) Grid() (int, int, int, int) { return d.px, d.py, d.i, d.j }

// VertexRange returns this rank's vertex column block [lo, hi).
func (d *DH2D) VertexRange() (int, int) { return d.vLo, d.vHi }

// NetRange returns this rank's net row block [lo, hi).
func (d *DH2D) NetRange() (int, int) { return d.nLo, d.nHi }

// Stats reduces global statistics; identical on every rank. Pin counts
// sum each rank's local pins (each global pin lives on exactly one rank);
// weights/sizes sum one grid row's vertex attrs (column replication would
// overcount otherwise); net costs sum one grid column's rows.
func (d *DH2D) Stats() GlobalStats {
	var localPins int64
	for _, pins := range d.netPins {
		localPins += int64(len(pins))
	}
	var localW, localS, localC int64
	if d.i == 0 { // one row contributes vertex attrs
		for i := range d.weights {
			localW += d.weights[i]
			localS += d.sizes[i]
		}
	}
	if d.j == 0 { // one column contributes net costs
		for _, c := range d.netCosts {
			localC += c
		}
	}
	totals := mpi.AllreduceSlice(d.c, []int64{localPins, localW, localS, localC}, mpi.SumInt64)
	return GlobalStats{
		NumVertices: d.globalV,
		NumNets:     d.globalN,
		NumPins:     int(totals[0]),
		TotalWeight: totals[1],
		TotalSize:   totals[2],
		TotalCost:   totals[3],
	}
}

// CutSize computes the global connectivity-1 cut: localParts[i] is the
// part of vertex vLo+i (every rank of a grid column passes the same
// slice). Each rank builds per-net part bitmasks from its local pins; an
// OR-reduction across the grid row yields each net's full connectivity;
// the j==0 ranks count λ and a global reduction sums the cut. Identical
// on every rank.
func (d *DH2D) CutSize(localParts []int32, k int) (int64, error) {
	if len(localParts) != d.vHi-d.vLo {
		return 0, fmt.Errorf("dhg: localParts covers %d vertices, column block has %d", len(localParts), d.vHi-d.vLo)
	}
	words := (k + 63) / 64
	numNets := d.nHi - d.nLo
	masks := make([]uint64, numNets*words)
	for n := 0; n < numNets; n++ {
		for _, p := range d.netPins[n] {
			q := int(localParts[int(p)-d.vLo])
			masks[n*words+q/64] |= 1 << (q % 64)
		}
	}
	// OR across the row.
	or := func(a, b uint64) uint64 { return a | b }
	full := mpi.AllreduceSlice(d.row, masks, or)
	var local int64
	if d.j == 0 {
		for n := 0; n < numNets; n++ {
			lambda := 0
			for w := 0; w < words; w++ {
				lambda += bits.OnesCount64(full[n*words+w])
			}
			if lambda > 1 {
				local += d.netCosts[n] * int64(lambda-1)
			}
		}
	}
	return mpi.Allreduce(d.c, local, mpi.SumInt64), nil
}
