// Package graph provides a compressed sparse row (CSR) weighted undirected
// graph, used as the input model for the graph-partitioning baseline
// (ParMETIS-style) that the paper compares against, plus conversions
// between graphs and hypergraphs.
package graph

import (
	"fmt"
	"slices"
	"sort"
)

// Graph is an undirected graph in CSR form. Every edge {u,v} is stored
// twice (u->v and v->u) with equal weights. Vertices carry computational
// weights and migration data sizes, mirroring hypergraph vertices.
type Graph struct {
	xadj   []int32 // len = n+1
	adjncy []int32 // neighbor vertex ids
	adjwgt []int64 // edge weights, parallel to adjncy

	vwgt  []int64 // vertex weights
	vsize []int64 // vertex migration sizes
}

// Builder incrementally constructs a Graph from undirected edges.
type Builder struct {
	n     int
	vwgt  []int64
	vsize []int64
	// adjacency accumulated as (u -> list of (v,w))
	nbrs []map[int32]int64
}

// NewBuilder creates a builder for a graph with n vertices of unit weight
// and size and no edges.
func NewBuilder(n int) *Builder {
	b := &Builder{
		n:     n,
		vwgt:  make([]int64, n),
		vsize: make([]int64, n),
		nbrs:  make([]map[int32]int64, n),
	}
	for i := 0; i < n; i++ {
		b.vwgt[i] = 1
		b.vsize[i] = 1
	}
	return b
}

// SetWeight sets the computational weight of vertex v.
func (b *Builder) SetWeight(v int, w int64) { b.vwgt[v] = w }

// SetSize sets the migration data size of vertex v.
func (b *Builder) SetSize(v int, s int64) { b.vsize[v] = s }

// AddEdge adds the undirected edge {u,v} with weight w. Adding an edge that
// already exists accumulates its weight. Self-loops are ignored.
func (b *Builder) AddEdge(u, v int, w int64) {
	if u == v {
		return
	}
	if u < 0 || u >= b.n || v < 0 || v >= b.n {
		panic(fmt.Sprintf("graph: edge (%d,%d) out of range [0,%d)", u, v, b.n))
	}
	if b.nbrs[u] == nil {
		b.nbrs[u] = make(map[int32]int64)
	}
	if b.nbrs[v] == nil {
		b.nbrs[v] = make(map[int32]int64)
	}
	b.nbrs[u][int32(v)] += w
	b.nbrs[v][int32(u)] += w
}

// Build finalizes the CSR arrays. Neighbor lists are sorted by vertex id
// for determinism.
func (b *Builder) Build() *Graph {
	g := &Graph{
		xadj:  make([]int32, b.n+1),
		vwgt:  b.vwgt,
		vsize: b.vsize,
	}
	total := 0
	for _, m := range b.nbrs {
		total += len(m)
	}
	g.adjncy = make([]int32, 0, total)
	g.adjwgt = make([]int64, 0, total)
	var keys []int32 // reused per-vertex sort buffer
	for u := 0; u < b.n; u++ {
		keys = keys[:0]
		for v := range b.nbrs[u] {
			keys = append(keys, v)
		}
		slices.Sort(keys)
		for _, v := range keys {
			g.adjncy = append(g.adjncy, v)
			g.adjwgt = append(g.adjwgt, b.nbrs[u][v])
		}
		g.xadj[u+1] = int32(len(g.adjncy))
	}
	return g
}

// NumVertices returns |V|.
func (g *Graph) NumVertices() int { return len(g.vwgt) }

// NumEdges returns the number of undirected edges |E|.
func (g *Graph) NumEdges() int { return len(g.adjncy) / 2 }

// Adj returns the neighbor ids of v; aliases internal storage.
func (g *Graph) Adj(v int) []int32 { return g.adjncy[g.xadj[v]:g.xadj[v+1]] }

// AdjWeights returns edge weights parallel to Adj(v); aliases storage.
func (g *Graph) AdjWeights(v int) []int64 { return g.adjwgt[g.xadj[v]:g.xadj[v+1]] }

// Degree returns the number of neighbors of v.
func (g *Graph) Degree(v int) int { return int(g.xadj[v+1] - g.xadj[v]) }

// Weight returns the computational weight of v.
func (g *Graph) Weight(v int) int64 { return g.vwgt[v] }

// Size returns the migration data size of v.
func (g *Graph) Size(v int) int64 { return g.vsize[v] }

// TotalWeight returns the sum of vertex weights.
func (g *Graph) TotalWeight() int64 {
	var t int64
	for _, w := range g.vwgt {
		t += w
	}
	return t
}

// Validate checks CSR symmetry and weight sanity.
func (g *Graph) Validate() error {
	n := g.NumVertices()
	if len(g.xadj) != n+1 {
		return fmt.Errorf("xadj length %d, want %d", len(g.xadj), n+1)
	}
	if len(g.adjncy) != len(g.adjwgt) {
		return fmt.Errorf("adjncy/adjwgt length mismatch")
	}
	if g.xadj[0] != 0 || int(g.xadj[n]) != len(g.adjncy) {
		return fmt.Errorf("xadj bounds invalid")
	}
	for u := 0; u < n; u++ {
		if g.xadj[u] > g.xadj[u+1] {
			return fmt.Errorf("xadj not monotone at %d", u)
		}
		adj, wts := g.Adj(u), g.AdjWeights(u)
		for i, v := range adj {
			if v < 0 || int(v) >= n {
				return fmt.Errorf("vertex %d has out-of-range neighbor %d", u, v)
			}
			if int(v) == u {
				return fmt.Errorf("vertex %d has a self loop", u)
			}
			// symmetric entry must exist with same weight
			w, ok := g.edgeWeight(int(v), u)
			if !ok {
				return fmt.Errorf("edge (%d,%d) missing reverse entry", u, v)
			}
			if w != wts[i] {
				return fmt.Errorf("edge (%d,%d) weight asymmetry: %d vs %d", u, v, wts[i], w)
			}
		}
	}
	return nil
}

func (g *Graph) edgeWeight(u, v int) (int64, bool) {
	adj := g.Adj(u)
	i := sort.Search(len(adj), func(i int) bool { return adj[i] >= int32(v) })
	if i < len(adj) && adj[i] == int32(v) {
		return g.AdjWeights(u)[i], true
	}
	return 0, false
}

// HasEdge reports whether {u,v} is an edge.
func (g *Graph) HasEdge(u, v int) bool {
	_, ok := g.edgeWeight(u, v)
	return ok
}

// String returns a short diagnostic summary.
func (g *Graph) String() string {
	return fmt.Sprintf("Graph{V=%d E=%d}", g.NumVertices(), g.NumEdges())
}

// Stats summarizes structural properties (Table 1 columns).
type Stats struct {
	NumVertices int
	NumEdges    int
	MinDegree   int
	MaxDegree   int
	AvgDegree   float64
	TotalWeight int64
}

// ComputeStats scans g once and returns summary statistics.
func ComputeStats(g *Graph) Stats {
	s := Stats{NumVertices: g.NumVertices(), NumEdges: g.NumEdges(), TotalWeight: g.TotalWeight()}
	if s.NumVertices == 0 {
		return s
	}
	s.MinDegree = g.Degree(0)
	for v := 0; v < s.NumVertices; v++ {
		d := g.Degree(v)
		if d < s.MinDegree {
			s.MinDegree = d
		}
		if d > s.MaxDegree {
			s.MaxDegree = d
		}
	}
	s.AvgDegree = float64(2*s.NumEdges) / float64(s.NumVertices)
	return s
}
