package graph

import (
	"bytes"
	"reflect"
	"strings"
	"testing"

	"hyperbal/internal/hypergraph"
)

// buildTestGraph makes a small graph with non-trivial weights and sizes.
func buildTestGraph(t *testing.T) *Graph {
	t.Helper()
	b := NewBuilder(6)
	b.SetWeight(0, 3)
	b.SetWeight(5, 7)
	b.SetSize(1, 4)
	b.AddEdge(0, 1, 2)
	b.AddEdge(1, 2, 1)
	b.AddEdge(2, 3, 5)
	b.AddEdge(3, 4, 1)
	b.AddEdge(4, 5, 9)
	b.AddEdge(0, 5, 1)
	g := b.Build()
	if err := g.Validate(); err != nil {
		t.Fatal(err)
	}
	return g
}

// TestGraphWireRoundTrip: the CSR wire frame must reproduce the graph
// exactly — field for field, and (the check the compute plane relies on)
// with an identical column-net hypergraph fingerprint and text rendering.
func TestGraphWireRoundTrip(t *testing.T) {
	g := buildTestGraph(t)
	buf := g.AppendBinary([]byte("prefix"))
	if !bytes.HasPrefix(buf, []byte("prefix")) {
		t.Fatal("AppendBinary did not append")
	}
	r := hypergraph.NewBinReader(buf[len("prefix"):])
	got, err := DecodeBinary(r)
	if err != nil {
		t.Fatal(err)
	}
	if r.Rem() != 0 {
		t.Fatalf("%d bytes left after decode", r.Rem())
	}
	if !reflect.DeepEqual(got, g) {
		t.Fatalf("decoded graph differs:\n got %v\nwant %v", got, g)
	}
	hw, hg := ToHypergraph(g), ToHypergraph(got)
	if hw.Fingerprint() != hg.Fingerprint() {
		t.Fatalf("hypergraph fingerprints differ: %s vs %s", hw.Fingerprint(), hg.Fingerprint())
	}
	var tw, tg strings.Builder
	if err := hypergraph.WriteText(&tw, hw); err != nil {
		t.Fatal(err)
	}
	if err := hypergraph.WriteText(&tg, hg); err != nil {
		t.Fatal(err)
	}
	if tw.String() != tg.String() {
		t.Fatal("text renderings differ after wire round trip")
	}
}

func TestGraphWireEmpty(t *testing.T) {
	g := NewBuilder(0).Build()
	r := hypergraph.NewBinReader(g.AppendBinary(nil))
	got, err := DecodeBinary(r)
	if err != nil {
		t.Fatal(err)
	}
	if got.NumVertices() != 0 || got.NumEdges() != 0 {
		t.Fatalf("empty graph decoded to %d vertices, %d edges", got.NumVertices(), got.NumEdges())
	}
}

// TestGraphWireHostile: corrupt frames fail cleanly — counts past the
// limits, adjacency out of range, and truncations must all error without
// panicking or allocating attacker-sized buffers.
func TestGraphWireHostile(t *testing.T) {
	valid := buildTestGraph(t).AppendBinary(nil)
	cases := map[string][]byte{
		"empty":          nil,
		"truncated":      valid[:len(valid)-3],
		"vertex bomb":    {0xff, 0xff, 0xff, 0xff, 0x7f},
		"degree overrun": {2, 0xff, 0xff, 0x7f, 0},
	}
	for name, data := range cases {
		t.Run(name, func(t *testing.T) {
			if _, err := DecodeBinary(hypergraph.NewBinReader(data)); err == nil {
				t.Fatal("DecodeBinary accepted hostile input")
			}
		})
	}
	// Flip an adjacency entry out of range: vertex count stays 6 but an
	// endpoint points past it.
	bad := buildTestGraph(t)
	bad.adjncy[0] = 99
	if _, err := DecodeBinary(hypergraph.NewBinReader(bad.AppendBinary(nil))); err == nil {
		t.Fatal("DecodeBinary accepted an out-of-range adjacency")
	}
}
