package graph

import (
	"encoding/binary"
	"fmt"

	"hyperbal/internal/hypergraph"
)

// Binary codec for shipping a Graph to compute workers, in the HBW varint
// discipline (see internal/hypergraph/wirebin.go): every count is bounded
// and checked against the bytes present, so a hostile frame yields a
// clean error, never a panic or an allocation bomb.
//
// Layout: uvarint n, then xadj deltas (uvarint, monotone), adjncy
// (zigzag), adjwgt / vwgt / vsize (zigzag).

// MaxWireVertices bounds a decoded graph, mirroring
// hypergraph.MaxWireVertices.
const MaxWireVertices = 1 << 24

// MaxWireEdgeEntries bounds the CSR adjacency length (2x edges).
const MaxWireEdgeEntries = 1 << 28

// AppendBinary appends g's binary frame to buf.
func (g *Graph) AppendBinary(buf []byte) []byte {
	n := g.NumVertices()
	buf = binary.AppendUvarint(buf, uint64(n))
	for v := 0; v < n; v++ {
		buf = binary.AppendUvarint(buf, uint64(g.xadj[v+1]-g.xadj[v]))
	}
	for _, v := range g.adjncy {
		buf = binary.AppendVarint(buf, int64(v))
	}
	for _, w := range g.adjwgt {
		buf = binary.AppendVarint(buf, w)
	}
	for _, w := range g.vwgt {
		buf = binary.AppendVarint(buf, w)
	}
	for _, s := range g.vsize {
		buf = binary.AppendVarint(buf, s)
	}
	return buf
}

// DecodeBinary reads one graph frame from r (the inverse of AppendBinary)
// and validates CSR invariants before returning.
func DecodeBinary(r *hypergraph.BinReader) (*Graph, error) {
	n, err := r.Count(MaxWireVertices)
	if err != nil {
		return nil, fmt.Errorf("graph: vertex count: %w", err)
	}
	g := &Graph{
		xadj:  make([]int32, n+1),
		vwgt:  make([]int64, n),
		vsize: make([]int64, n),
	}
	var total uint64
	for v := 0; v < n; v++ {
		deg, err := r.Uvarint()
		if err != nil {
			return nil, fmt.Errorf("graph: degree of %d: %w", v, err)
		}
		total += deg
		if total > MaxWireEdgeEntries {
			return nil, fmt.Errorf("graph: adjacency length %d exceeds limit %d", total, MaxWireEdgeEntries)
		}
		g.xadj[v+1] = int32(total)
	}
	// One varint costs at least one byte; reject before allocating.
	if total > uint64(r.Rem()) {
		return nil, fmt.Errorf("graph: adjacency length %d exceeds %d remaining bytes", total, r.Rem())
	}
	g.adjncy = make([]int32, total)
	for i := range g.adjncy {
		v, err := r.Varint()
		if err != nil {
			return nil, fmt.Errorf("graph: adjncy[%d]: %w", i, err)
		}
		if v < 0 || v >= int64(n) {
			return nil, fmt.Errorf("graph: adjncy[%d] = %d out of range [0,%d)", i, v, n)
		}
		g.adjncy[i] = int32(v)
	}
	g.adjwgt = make([]int64, total)
	for i := range g.adjwgt {
		if g.adjwgt[i], err = r.Varint(); err != nil {
			return nil, fmt.Errorf("graph: adjwgt[%d]: %w", i, err)
		}
	}
	for i := range g.vwgt {
		if g.vwgt[i], err = r.Varint(); err != nil {
			return nil, fmt.Errorf("graph: vwgt[%d]: %w", i, err)
		}
	}
	for i := range g.vsize {
		if g.vsize[i], err = r.Varint(); err != nil {
			return nil, fmt.Errorf("graph: vsize[%d]: %w", i, err)
		}
	}
	if err := g.Validate(); err != nil {
		return nil, fmt.Errorf("graph: decoded frame invalid: %w", err)
	}
	return g, nil
}
