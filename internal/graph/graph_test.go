package graph

import (
	"math/rand"
	"testing"
	"testing/quick"

	"hyperbal/internal/hypergraph"
)

func ring(n int) *Graph {
	b := NewBuilder(n)
	for i := 0; i < n; i++ {
		b.AddEdge(i, (i+1)%n, 1)
	}
	return b.Build()
}

func TestBuilderBasic(t *testing.T) {
	g := ring(5)
	if g.NumVertices() != 5 || g.NumEdges() != 5 {
		t.Fatalf("got %v", g)
	}
	if err := g.Validate(); err != nil {
		t.Fatalf("Validate: %v", err)
	}
	if g.Degree(0) != 2 {
		t.Fatalf("Degree(0) = %d", g.Degree(0))
	}
	if !g.HasEdge(0, 4) || g.HasEdge(0, 2) {
		t.Fatal("HasEdge wrong")
	}
}

func TestSelfLoopIgnored(t *testing.T) {
	b := NewBuilder(3)
	b.AddEdge(1, 1, 5)
	g := b.Build()
	if g.NumEdges() != 0 {
		t.Fatalf("self loop not ignored: %v", g)
	}
}

func TestParallelEdgeAccumulates(t *testing.T) {
	b := NewBuilder(2)
	b.AddEdge(0, 1, 2)
	b.AddEdge(1, 0, 3)
	g := b.Build()
	if g.NumEdges() != 1 {
		t.Fatalf("edges = %d, want 1", g.NumEdges())
	}
	if w, _ := g.edgeWeight(0, 1); w != 5 {
		t.Fatalf("weight = %d, want 5", w)
	}
}

func TestOutOfRangeEdgePanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic")
		}
	}()
	NewBuilder(2).AddEdge(0, 7, 1)
}

func TestStats(t *testing.T) {
	g := ring(6)
	s := ComputeStats(g)
	if s.NumVertices != 6 || s.NumEdges != 6 || s.MinDegree != 2 || s.MaxDegree != 2 || s.AvgDegree != 2 {
		t.Fatalf("stats: %+v", s)
	}
}

func TestToHypergraph(t *testing.T) {
	g := ring(4)
	h := ToHypergraph(g)
	if h.NumNets() != 4 || h.NumVertices() != 4 {
		t.Fatalf("got %v", h)
	}
	for n := 0; n < h.NumNets(); n++ {
		if h.NetSize(n) != 2 {
			t.Fatalf("net %d size %d, want 2", n, h.NetSize(n))
		}
	}
	if err := h.Validate(); err != nil {
		t.Fatalf("Validate: %v", err)
	}
}

func TestFromHypergraphClique(t *testing.T) {
	b := hypergraph.NewBuilder(4)
	b.AddNet(6, 0, 1, 2) // triangle, w = 6/2 = 3
	b.SetWeight(3, 9)
	h := b.Build()
	g := FromHypergraph(h, 32)
	if g.NumEdges() != 3 {
		t.Fatalf("edges = %d, want 3", g.NumEdges())
	}
	if w, _ := g.edgeWeight(0, 1); w != 3 {
		t.Fatalf("edge weight = %d, want 3", w)
	}
	if g.Weight(3) != 9 {
		t.Fatal("vertex weight not carried over")
	}
}

func TestFromHypergraphRingFallback(t *testing.T) {
	b := hypergraph.NewBuilder(10)
	pins := make([]int, 10)
	for i := range pins {
		pins[i] = i
	}
	b.AddNet(9, pins...)
	g := FromHypergraph(b.Build(), 4) // net size 10 > 4 -> ring
	if g.NumEdges() != 10 {
		t.Fatalf("edges = %d, want ring of 10", g.NumEdges())
	}
	if err := g.Validate(); err != nil {
		t.Fatal(err)
	}
}

func TestGraphHypergraphRoundTrip(t *testing.T) {
	rng := rand.New(rand.NewSource(3))
	b := NewBuilder(20)
	for i := 0; i < 40; i++ {
		u, v := rng.Intn(20), rng.Intn(20)
		if u != v {
			b.AddEdge(u, v, int64(1+rng.Intn(5)))
		}
	}
	g := b.Build()
	h := ToHypergraph(g)
	g2 := FromHypergraph(h, 32) // all nets size 2, exact
	if g2.NumEdges() != g.NumEdges() {
		t.Fatalf("round trip edges %d != %d", g2.NumEdges(), g.NumEdges())
	}
	for u := 0; u < 20; u++ {
		adj := g.Adj(u)
		for i, v := range adj {
			w2, ok := g2.edgeWeight(u, int(v))
			if !ok {
				t.Fatalf("edge (%d,%d) lost", u, v)
			}
			// net cost c over 2 pins -> edge weight c/(2-1) = c
			if w2 != g.AdjWeights(u)[i] {
				t.Fatalf("edge (%d,%d) weight %d != %d", u, v, w2, g.AdjWeights(u)[i])
			}
		}
	}
}

// Property: random builds validate and degree sum is 2|E|.
func TestQuickBuildInvariants(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		n := 2 + rng.Intn(30)
		b := NewBuilder(n)
		for i := 0; i < rng.Intn(80); i++ {
			b.AddEdge(rng.Intn(n), rng.Intn(n), int64(1+rng.Intn(4)))
		}
		g := b.Build()
		if g.Validate() != nil {
			return false
		}
		sum := 0
		for v := 0; v < n; v++ {
			sum += g.Degree(v)
		}
		return sum == 2*g.NumEdges()
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 50}); err != nil {
		t.Fatal(err)
	}
}
