package graph

import (
	"hyperbal/internal/hypergraph"
)

// FromHypergraph converts a hypergraph to a graph by clique expansion:
// every net of size s contributes an edge between each pair of its pins.
// Edge weights follow the standard 1/(s-1) scaling (rounded up, minimum 1)
// so that cutting a clique roughly reflects the net's cost, matching how
// graph partitioners are typically fed hypergraph problems. Vertex weights
// and sizes carry over unchanged.
//
// Nets larger than maxClique are expanded as rings instead of cliques to
// keep the edge count bounded (dense nets would otherwise explode
// quadratically); this mirrors common practice in graph-model baselines.
func FromHypergraph(h *hypergraph.Hypergraph, maxClique int) *Graph {
	if maxClique < 2 {
		maxClique = 2
	}
	b := NewBuilder(h.NumVertices())
	for v := 0; v < h.NumVertices(); v++ {
		b.SetWeight(v, h.Weight(v))
		b.SetSize(v, h.Size(v))
	}
	for n := 0; n < h.NumNets(); n++ {
		pins := h.Pins(n)
		s := len(pins)
		if s < 2 {
			continue
		}
		w := h.Cost(n) / int64(s-1)
		if w < 1 {
			w = 1
		}
		if s <= maxClique {
			for i := 0; i < s; i++ {
				for j := i + 1; j < s; j++ {
					b.AddEdge(int(pins[i]), int(pins[j]), w)
				}
			}
		} else {
			for i := 0; i < s; i++ {
				b.AddEdge(int(pins[i]), int(pins[(i+1)%s]), w)
			}
		}
	}
	return b.Build()
}

// ToHypergraph converts a graph to a hypergraph with one two-pin net per
// undirected edge, net cost = edge weight. This is the exact hypergraph
// representation of a structurally symmetric problem, as used for the
// paper's test datasets ("all these problems are structurally symmetric,
// and can be accurately represented as both graphs and hypergraphs").
func ToHypergraph(g *Graph) *hypergraph.Hypergraph {
	b := hypergraph.NewBuilder(g.NumVertices())
	for v := 0; v < g.NumVertices(); v++ {
		b.SetWeight(v, g.Weight(v))
		b.SetSize(v, g.Size(v))
	}
	for u := 0; u < g.NumVertices(); u++ {
		adj, wts := g.Adj(u), g.AdjWeights(u)
		for i, v := range adj {
			if int(v) > u { // each undirected edge once
				b.AddNet(wts[i], u, int(v))
			}
		}
	}
	return b.Build()
}
