package harness

import (
	"context"
	"fmt"
	"time"

	"hyperbal/internal/core"
	"hyperbal/internal/datasets"
	"hyperbal/internal/gp"
	"hyperbal/internal/graph"
	"hyperbal/internal/hgp"
	"hyperbal/internal/mpinet"
	"hyperbal/internal/mpinet/jobs"
	"hyperbal/internal/partition"
	"hyperbal/internal/pgp"
	"hyperbal/internal/phg"
)

// ParallelRuntimeNet is ParallelRuntimeWith over the network transport:
// the same augmented problem, but every rank is a separate worker process
// reached through mpinet. The world size is len(workers). Stats per cell
// are the across-rank sums (and max, for stalls) of the per-rank reports,
// which is exactly what the shared in-process Stats accumulate — so cells
// from the two substrates are directly comparable, and by parallelism
// invariance the cuts (and the partitions behind them) must be identical.
func ParallelRuntimeNet(ctx context.Context, workers []string, dataset string, scaleV int, alpha, seed int64, opt mpinet.Options) ([]ParallelCell, error) {
	obsParallel.Inc()
	ranks := len(workers)
	g, err := datasets.Generate(dataset, scaleV, seed)
	if err != nil {
		return nil, err
	}
	h := graph.ToHypergraph(g)
	old, err := hgp.Partition(h, hgp.Options{K: ranks, Seed: seed})
	if err != nil {
		return nil, err
	}
	r, err := core.BuildRepartition(h, old, ranks, alpha)
	if err != nil {
		return nil, err
	}
	var cells []ParallelCell

	// Hypergraph pipeline (phg on the augmented hypergraph).
	payload, err := jobs.EncodePHG(r.H, phg.Options{Serial: hgp.Options{K: ranks, Seed: seed + 1}})
	if err != nil {
		return nil, err
	}
	start := time.Now()
	res, err := mpinet.RunWorld(ctx, jobs.PHGPartition, payload, workers, opt)
	if err != nil {
		return nil, fmt.Errorf("harness: phg world: %w", err)
	}
	parts, err := jobs.DecodeParts(res.Root())
	if err != nil {
		return nil, err
	}
	cell := netCell(ranks, true, time.Since(start), res)
	cell.Cut = r.ModelCut(partitionFromParts(parts, ranks))
	cells = append(cells, cell)

	// Graph pipeline (pgp AdaptiveRepart with ITR = alpha).
	payload, err = jobs.EncodePGP(g, old.Parts, alpha, pgp.Options{Serial: gp.Options{K: ranks, Seed: seed + 2}}, true)
	if err != nil {
		return nil, err
	}
	start = time.Now()
	res, err = mpinet.RunWorld(ctx, jobs.PGPPartition, payload, workers, opt)
	if err != nil {
		return nil, fmt.Errorf("harness: pgp world: %w", err)
	}
	parts, err = jobs.DecodeParts(res.Root())
	if err != nil {
		return nil, err
	}
	cell = netCell(ranks, false, time.Since(start), res)
	cell.Cut = r.ModelCut(r.Extend(partitionFromParts(parts, ranks)))
	cells = append(cells, cell)
	return cells, nil
}

func partitionFromParts(parts []int32, k int) partition.Partition {
	return partition.Partition{Parts: parts, K: k}
}

func netCell(ranks int, hg bool, wall time.Duration, res *mpinet.WorldResult) ParallelCell {
	c := ParallelCell{Ranks: ranks, Hypergraph: hg, WallTime: wall}
	for _, r := range res.Ranks {
		c.Messages += r.Messages
		c.Bytes += r.Bytes
		c.Collectives += r.Collectives
		if r.MaxStall > c.MaxStall {
			c.MaxStall = r.MaxStall
		}
	}
	return c
}
