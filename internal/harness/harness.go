// Package harness drives the paper's Section 5 experiments end to end:
// generate a dataset analogue, compute the epoch-1 static partition, run a
// sequence of dynamic epochs (structural perturbation or simulated mesh
// refinement), repartition each epoch with each of the four algorithms,
// and aggregate the normalized total cost (communication volume +
// migration volume / α) and run time per (procs, α, method) cell — the
// exact quantities plotted in Figures 2 through 8.
package harness

import (
	"fmt"
	"runtime"
	"sync"
	"time"

	"hyperbal/internal/core"
	"hyperbal/internal/datasets"
	"hyperbal/internal/dynamics"
	"hyperbal/internal/graph"
	"hyperbal/internal/hypergraph"
	"hyperbal/internal/partition"
)

// Config describes one experiment (one dataset × one dynamic, swept over
// procs and alpha, averaged over trials).
type Config struct {
	Dataset string // datasets registry name
	ScaleV  int    // vertex count (0 = registry default)
	Dynamic string // "structure" (biased perturbation) or "weights" (refinement)
	Procs   []int
	Alphas  []int64
	Methods []core.Method
	Trials  int // paper: 20; default 3
	Epochs  int // repartitions per trial; default 3
	Seed    int64
	// Imbalance is Eq. 1 epsilon (default 0.05).
	Imbalance float64
	// Dynamics parameters; zero values select the paper's configuration
	// (structure: half the parts lose/gain 25% of vertices; weights: 10% of
	// parts scale by U(1.5, 7.5)).
	VertexFrac float64
	PartFrac   float64
	ScaleMin   float64
	ScaleMax   float64
	// Parallelism bounds the worker goroutines sweeping (procs, alpha,
	// method, trial) cells. Every value produces identical reports; 1
	// forces the serial sweep. Default runtime.GOMAXPROCS(0).
	Parallelism int
	// Warm repartitions each epoch via the delta/warm-start path: the
	// epoch transition is expressed as a hypergraph delta, its dirty
	// region seeds core.Balancer.RepartitionWarm. Only the hypergraph
	// repartitioning method takes a distinct path; the others fall back to
	// their normal repartition internally.
	Warm bool
}

func (c Config) withDefaults() Config {
	if c.Trials <= 0 {
		c.Trials = 3
	}
	if c.Epochs <= 0 {
		c.Epochs = 3
	}
	if len(c.Procs) == 0 {
		c.Procs = []int{8, 16, 32}
	}
	if len(c.Alphas) == 0 {
		c.Alphas = []int64{1, 10, 100, 1000}
	}
	if len(c.Methods) == 0 {
		c.Methods = append([]core.Method(nil), core.Methods...)
	}
	if c.Imbalance <= 0 {
		c.Imbalance = 0.05
	}
	if c.Dynamic == "" {
		c.Dynamic = "structure"
	}
	if c.Parallelism <= 0 {
		c.Parallelism = runtime.GOMAXPROCS(0)
	}
	switch c.Dynamic {
	case "structure":
		if c.VertexFrac <= 0 {
			c.VertexFrac = 0.25
		}
		if c.PartFrac <= 0 {
			c.PartFrac = 0.5
		}
	case "weights":
		if c.PartFrac <= 0 {
			c.PartFrac = 0.1
		}
		if c.ScaleMin <= 0 {
			c.ScaleMin = 1.5
		}
		if c.ScaleMax <= 0 {
			c.ScaleMax = 7.5
		}
	}
	return c
}

// Cell aggregates one (procs, alpha, method) bar of a figure.
type Cell struct {
	Procs  int
	Alpha  int64
	Method core.Method

	// Per-epoch averages across trials.
	CommVolume      float64 // bottom bar segment
	MigrationVolume float64
	MigOverAlpha    float64 // top bar segment (migration / alpha)
	NormalizedCost  float64 // CommVolume + MigOverAlpha
	Imbalance       float64 // achieved imbalance of the new partitions
	RepartTime      time.Duration
	Epochs          int // samples aggregated
}

// Report is a full experiment result.
type Report struct {
	Config Config
	Cells  []Cell
	// DatasetStats records the generated analogue's shape for Table 1
	// comparison.
	DatasetStats graph.Stats
}

// Run executes the experiment.
func Run(cfg Config) (*Report, error) {
	cfg = cfg.withDefaults()
	if _, err := datasets.Lookup(cfg.Dataset); err != nil {
		return nil, err
	}
	if cfg.Dynamic != "structure" && cfg.Dynamic != "weights" {
		return nil, fmt.Errorf("harness: unknown dynamic %q (want structure or weights)", cfg.Dynamic)
	}
	rep := &Report{Config: cfg}

	type key struct {
		procs  int
		alpha  int64
		method core.Method
	}
	acc := map[key]*Cell{}
	for _, procs := range cfg.Procs {
		for _, alpha := range cfg.Alphas {
			for _, m := range cfg.Methods {
				acc[key{procs, alpha, m}] = &Cell{Procs: procs, Alpha: alpha, Method: m}
			}
		}
	}

	// Generate the per-trial graphs up front (cheap and serial), then sweep
	// the independent (trial, procs, alpha, method) cells on a bounded
	// worker pool. Each task accumulates into a private Cell; the merge into
	// acc happens in task order afterwards, so the floating-point sums — and
	// hence the whole report — are identical for every Parallelism value.
	graphs := make([]*graph.Graph, cfg.Trials)
	for trial := 0; trial < cfg.Trials; trial++ {
		seed := cfg.Seed + int64(trial)*104729
		g, err := datasets.Generate(cfg.Dataset, cfg.ScaleV, seed)
		if err != nil {
			return nil, err
		}
		graphs[trial] = g
		if trial == 0 {
			rep.DatasetStats = graph.ComputeStats(g)
		}
	}

	type task struct {
		trial  int
		procs  int
		alpha  int64
		method core.Method
		cell   Cell
		err    error
	}
	var tasks []*task
	for trial := 0; trial < cfg.Trials; trial++ {
		for _, procs := range cfg.Procs {
			for _, alpha := range cfg.Alphas {
				for _, m := range cfg.Methods {
					tasks = append(tasks, &task{trial: trial, procs: procs, alpha: alpha, method: m})
				}
			}
		}
	}
	workers := cfg.Parallelism
	if workers > len(tasks) {
		workers = len(tasks)
	}
	run := func(t *task) {
		seed := cfg.Seed + int64(t.trial)*104729
		t.cell = Cell{Procs: t.procs, Alpha: t.alpha, Method: t.method}
		t.err = runSequence(cfg, graphs[t.trial], t.procs, t.alpha, t.method, seed, &t.cell)
	}
	if workers <= 1 {
		for _, t := range tasks {
			run(t)
		}
	} else {
		ch := make(chan *task)
		var wg sync.WaitGroup
		for w := 0; w < workers; w++ {
			wg.Add(1)
			go func() {
				defer wg.Done()
				for t := range ch {
					run(t)
				}
			}()
		}
		for _, t := range tasks {
			ch <- t
		}
		close(ch)
		wg.Wait()
	}
	for _, t := range tasks {
		if t.err != nil {
			obsCellErrs.Inc()
			return nil, fmt.Errorf("harness: %s procs=%d alpha=%d %v: %w",
				cfg.Dataset, t.procs, t.alpha, t.method, t.err)
		}
		c := acc[key{t.procs, t.alpha, t.method}]
		c.CommVolume += t.cell.CommVolume
		c.MigrationVolume += t.cell.MigrationVolume
		c.Imbalance += t.cell.Imbalance
		c.RepartTime += t.cell.RepartTime
		c.Epochs += t.cell.Epochs
	}
	// Finalize averages.
	for _, procs := range cfg.Procs {
		for _, alpha := range cfg.Alphas {
			for _, m := range cfg.Methods {
				c := acc[key{procs, alpha, m}]
				if c.Epochs > 0 {
					n := float64(c.Epochs)
					c.CommVolume /= n
					c.MigrationVolume /= n
					c.Imbalance /= n
					c.RepartTime = time.Duration(int64(c.RepartTime) / int64(c.Epochs))
				}
				c.MigOverAlpha = c.MigrationVolume / float64(alpha)
				c.NormalizedCost = c.CommVolume + c.MigOverAlpha
				rep.Cells = append(rep.Cells, *c)
			}
		}
	}
	return rep, nil
}

// runSequence plays one trial's epoch loop for one (procs, alpha, method)
// cell, accumulating into cell.
func runSequence(cfg Config, g *graph.Graph, procs int, alpha int64, m core.Method, seed int64, cell *Cell) error {
	// Inner partitioner parallelism stays at 1: the harness already keeps
	// every worker busy with whole cells, and nested workers would only
	// oversubscribe. Results are identical either way.
	bal, err := core.NewBalancer(core.Config{
		K: procs, Alpha: alpha, Imbalance: cfg.Imbalance,
		Seed: seed*31 + int64(m), Method: m, Parallelism: 1,
	})
	if err != nil {
		return err
	}
	prob := core.Problem{G: g, H: graph.ToHypergraph(g)}
	static, err := bal.Partition(prob)
	if err != nil {
		return err
	}

	gen, err := newGenerator(cfg, g, static.Partition, procs, seed)
	if err != nil {
		return err
	}
	obsCells.Inc()
	method := m.String()
	// Warm mode expresses each transition as a delta against the previous
	// epoch's hypergraph; prevIDs tracks stable vertex ids for the
	// structural dynamic's vertex-space translation.
	base := prob.H
	var prevIDs []int32
	if cfg.Warm {
		prevIDs = make([]int32, g.NumVertices())
		for i := range prevIDs {
			prevIDs[i] = int32(i)
		}
	}
	for epoch := 1; epoch <= cfg.Epochs; epoch++ {
		eprob, old := gen.Next()
		var res core.Result
		if cfg.Warm {
			var d *hypergraph.Delta
			var ok bool
			if st, isStruct := gen.(*dynamics.Structural); isStruct {
				curIDs := st.AliveMap()
				vmap := hypergraph.VertexMapFromIDs(prevIDs, curIDs)
				d, ok = hypergraph.ComputeDeltaMapped(base, eprob.H, vmap)
				prevIDs = append(prevIDs[:0], curIDs...)
			} else {
				d, ok = hypergraph.ComputeDelta(base, eprob.H)
			}
			var dirty []bool
			if ok {
				dirty = d.DirtyVertices(base, eprob.H)
			}
			res, err = bal.RepartitionWarm(eprob, old, int64(epoch), dirty)
			base = eprob.H
		} else {
			res, err = bal.Repartition(eprob, old, int64(epoch))
		}
		if err != nil {
			return err
		}
		if err := gen.Observe(res.Partition); err != nil {
			return err
		}
		w := partition.Weights(eprob.H, res.Partition)
		cell.CommVolume += float64(res.CommVolume)
		cell.MigrationVolume += float64(res.MigrationVolume)
		cell.Imbalance += partition.Imbalance(w)
		cell.RepartTime += res.RepartTime
		cell.Epochs++
		obsEpochs.With(method).Inc()
		obsRepartNs.With(method).Observe(int64(res.RepartTime))
		obsCommVol.With(method).Add(res.CommVolume)
		obsMigVol.With(method).Add(res.MigrationVolume)
	}
	return nil
}

func newGenerator(cfg Config, g *graph.Graph, init partition.Partition, k int, seed int64) (dynamics.Generator, error) {
	switch cfg.Dynamic {
	case "structure":
		return dynamics.NewStructural(g, init, k, cfg.VertexFrac, cfg.PartFrac, seed*17+3)
	case "weights":
		return dynamics.NewRefinement(g, init, k, cfg.PartFrac, cfg.ScaleMin, cfg.ScaleMax, seed*17+5)
	default:
		return nil, fmt.Errorf("harness: unknown dynamic %q", cfg.Dynamic)
	}
}
