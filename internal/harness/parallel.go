package harness

import (
	"fmt"
	"io"
	"time"

	"hyperbal/internal/core"
	"hyperbal/internal/datasets"
	"hyperbal/internal/gp"
	"hyperbal/internal/graph"
	"hyperbal/internal/hgp"
	"hyperbal/internal/mpi"
	"hyperbal/internal/pgp"
	"hyperbal/internal/phg"
)

// ParallelCell is one (ranks, method) measurement of the parallel
// repartitioners: wall time plus substrate traffic (messages/bytes,
// collective counts, max stall), the machine-independent scalability
// signal on a single-core host where goroutine ranks cannot show real
// speedup.
type ParallelCell struct {
	Ranks       int
	Hypergraph  bool // true = phg (Zoltan-like), false = pgp (ParMETIS-like)
	WallTime    time.Duration
	Messages    int64
	Bytes       int64
	Collectives int64
	MaxStall    time.Duration
	Cut         int64
}

// ParallelRuntime times the parallel hypergraph and graph repartitioners
// on the same augmented problem at each rank count (cf. Figures 7-8 and
// the paper's closing scalability claim). alpha scales the communication
// nets of the hypergraph model; the graph side uses AdaptiveRepart with
// ITR = alpha. Worlds run under a generous watchdog, so a substrate hang
// surfaces as a DeadlockError instead of stalling the whole harness.
func ParallelRuntime(dataset string, scaleV int, rankCounts []int, alpha int64, seed int64) ([]ParallelCell, error) {
	return ParallelRuntimeWith(mpi.Options{Watchdog: 2 * time.Minute}, dataset, scaleV, rankCounts, alpha, seed)
}

// ParallelRuntimeWith is ParallelRuntime with explicit world options, so
// the whole Figure 7-8 pipeline can run under fault injection (chaos
// benchmarking) or with tracing hooks attached.
func ParallelRuntimeWith(opt mpi.Options, dataset string, scaleV int, rankCounts []int, alpha int64, seed int64) ([]ParallelCell, error) {
	obsParallel.Inc()
	g, err := datasets.Generate(dataset, scaleV, seed)
	if err != nil {
		return nil, err
	}
	h := graph.ToHypergraph(g)
	var cells []ParallelCell
	for _, ranks := range rankCounts {
		// Old partition: serial static at this k.
		old, err := hgp.Partition(h, hgp.Options{K: ranks, Seed: seed})
		if err != nil {
			return nil, err
		}
		r, err := core.BuildRepartition(h, old, ranks, alpha)
		if err != nil {
			return nil, err
		}

		// Hypergraph pipeline (phg on the augmented hypergraph).
		start := time.Now()
		var hgCut int64
		stats, err := mpi.RunWith(ranks, opt, func(c *mpi.Comm) error {
			p, err := phg.Partition(c, r.H, phg.Options{Serial: hgp.Options{K: ranks, Seed: seed + 1}})
			if err != nil {
				return err
			}
			if c.Rank() == 0 {
				hgCut = r.ModelCut(p)
			}
			return nil
		})
		if err != nil {
			return nil, err
		}
		cells = append(cells, ParallelCell{
			Ranks: ranks, Hypergraph: true, WallTime: time.Since(start),
			Messages: stats.Messages.Load(), Bytes: stats.Bytes.Load(),
			Collectives: stats.Collectives.Load(), MaxStall: stats.MaxStallDuration(),
			Cut: hgCut,
		})

		// Graph pipeline (pgp AdaptiveRepart with ITR = alpha).
		start = time.Now()
		var gCut int64
		stats, err = mpi.RunWith(ranks, opt, func(c *mpi.Comm) error {
			p, err := pgp.AdaptiveRepart(c, g, old, alpha, pgp.Options{Serial: gp.Options{K: ranks, Seed: seed + 2}})
			if err != nil {
				return err
			}
			if c.Rank() == 0 {
				gCut = r.ModelCut(r.Extend(p))
			}
			return nil
		})
		if err != nil {
			return nil, err
		}
		cells = append(cells, ParallelCell{
			Ranks: ranks, Hypergraph: false, WallTime: time.Since(start),
			Messages: stats.Messages.Load(), Bytes: stats.Bytes.Load(),
			Collectives: stats.Collectives.Load(), MaxStall: stats.MaxStallDuration(),
			Cut: gCut,
		})
	}
	return cells, nil
}

// WriteParallelRuntime renders the parallel-runtime cells.
func WriteParallelRuntime(w io.Writer, dataset string, cells []ParallelCell) {
	fmt.Fprintf(w, "Parallel repartitioner runtime and traffic: %s (cf. Figures 7-8; ranks are\n", dataset)
	fmt.Fprintf(w, "in-process goroutines, so traffic — not wall time — carries the scaling signal)\n\n")
	fmt.Fprintf(w, "%6s  %-12s %12s %10s %12s %12s %10s %14s\n",
		"ranks", "pipeline", "wall", "messages", "bytes", "collectives", "maxstall", "model cut")
	for _, c := range cells {
		name := "graph"
		if c.Hypergraph {
			name = "hypergraph"
		}
		fmt.Fprintf(w, "%6d  %-12s %12s %10d %12d %12d %10s %14d\n",
			c.Ranks, name, c.WallTime.Round(time.Millisecond), c.Messages, c.Bytes,
			c.Collectives, c.MaxStall.Round(time.Microsecond), c.Cut)
	}
}
