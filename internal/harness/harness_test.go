package harness

import (
	"bytes"
	"strings"
	"testing"

	"hyperbal/internal/core"
)

// smallConfig keeps harness tests fast: tiny dataset, one proc count, two
// alphas, one trial.
func smallConfig(dynamic string) Config {
	return Config{
		Dataset: "auto",
		ScaleV:  600,
		Dynamic: dynamic,
		Procs:   []int{4},
		Alphas:  []int64{1, 100},
		Trials:  1,
		Epochs:  2,
		Seed:    1,
	}
}

func TestRunStructure(t *testing.T) {
	rep, err := Run(smallConfig("structure"))
	if err != nil {
		t.Fatal(err)
	}
	if len(rep.Cells) != 1*2*4 {
		t.Fatalf("cells = %d, want 8", len(rep.Cells))
	}
	for _, c := range rep.Cells {
		if c.Epochs != 2 {
			t.Fatalf("cell %v aggregated %d epochs, want 2", c.Method, c.Epochs)
		}
		if c.CommVolume < 0 || c.NormalizedCost < c.CommVolume {
			t.Fatalf("cell %v has inconsistent costs: %+v", c.Method, c)
		}
		if c.RepartTime <= 0 {
			t.Fatalf("cell %v has no measured time", c.Method)
		}
	}
}

func TestRunWeights(t *testing.T) {
	rep, err := Run(smallConfig("weights"))
	if err != nil {
		t.Fatal(err)
	}
	// Weight dynamics keep the vertex set; all methods should still report
	// sane migration at alpha=1 epoch 1 (weights changed, some movement).
	found := false
	for _, c := range rep.Cells {
		if c.MigrationVolume > 0 {
			found = true
		}
	}
	if !found {
		t.Fatal("no cell reported migration under weight dynamics")
	}
}

func TestRunValidation(t *testing.T) {
	cfg := smallConfig("structure")
	cfg.Dataset = "nosuch"
	if _, err := Run(cfg); err == nil {
		t.Fatal("expected unknown dataset error")
	}
	cfg = smallConfig("structure")
	cfg.Dynamic = "nosuch"
	if _, err := Run(cfg); err == nil {
		t.Fatal("expected unknown dynamic error")
	}
}

func TestScratchPaysMigrationAtAlpha1(t *testing.T) {
	// The paper's headline: at α=1 scratch methods have much larger
	// migration cost than repartitioners.
	rep, err := Run(smallConfig("structure"))
	if err != nil {
		t.Fatal(err)
	}
	zr := rep.cell(4, 1, core.HypergraphRepart)
	zs := rep.cell(4, 1, core.HypergraphScratch)
	if zr == nil || zs == nil {
		t.Fatal("missing cells")
	}
	if zr.MigrationVolume >= zs.MigrationVolume {
		t.Fatalf("repart migration %f should be below scratch %f",
			zr.MigrationVolume, zs.MigrationVolume)
	}
	if zr.NormalizedCost >= zs.NormalizedCost {
		t.Fatalf("at α=1 repart total %f should beat scratch %f",
			zr.NormalizedCost, zs.NormalizedCost)
	}
}

func TestWriteFigure(t *testing.T) {
	rep, err := Run(smallConfig("structure"))
	if err != nil {
		t.Fatal(err)
	}
	var buf bytes.Buffer
	rep.WriteFigure(&buf)
	out := buf.String()
	for _, want := range []string{"Figure 4(a)", "Zoltan-repart", "ParMETIS-scratch", "procs = 4", "lowest total"} {
		if !strings.Contains(out, want) {
			t.Fatalf("figure output missing %q:\n%s", want, out)
		}
	}
	var rbuf bytes.Buffer
	rep.WriteRuntimeFigure(&rbuf)
	if !strings.Contains(rbuf.String(), "Run time") || !strings.Contains(rbuf.String(), "Z-rep") {
		t.Fatalf("runtime figure malformed:\n%s", rbuf.String())
	}
}

func TestWriteTable1(t *testing.T) {
	var buf bytes.Buffer
	if err := WriteTable1(&buf, 1); err != nil {
		t.Fatal(err)
	}
	out := buf.String()
	for _, name := range []string{"xyce680s", "2DLipid", "auto", "apoa1-10", "cage14"} {
		if !strings.Contains(out, name) {
			t.Fatalf("Table 1 missing %s:\n%s", name, out)
		}
	}
	if !strings.Contains(out, "682712") {
		t.Fatal("Table 1 missing paper |V| for xyce680s")
	}
}

func TestCheckShapes(t *testing.T) {
	rep, err := Run(smallConfig("structure"))
	if err != nil {
		t.Fatal(err)
	}
	s := rep.CheckShapes()
	if s.TotalCells != 2 {
		t.Fatalf("total cells = %d, want 2", s.TotalCells)
	}
	// The strongest structural claim at this scale: a repartitioner wins at
	// α=1 and scratch migration dominates there.
	if !s.RepartWinsAtAlpha1 {
		t.Error("expected a repartitioning method to win at α=1")
	}
	if !s.ScratchPaysMoreMigration {
		t.Error("expected scratch methods to migrate more than their repart counterparts at α=1")
	}
}

func TestFigureNumber(t *testing.T) {
	if FigureNumber("xyce680s") != 2 || FigureNumber("cage14") != 6 || FigureNumber("zzz") != 0 {
		t.Fatal("figure numbering wrong")
	}
}

func TestParallelRuntime(t *testing.T) {
	cells, err := ParallelRuntime("auto", 400, []int{2, 4}, 10, 1)
	if err != nil {
		t.Fatal(err)
	}
	if len(cells) != 4 {
		t.Fatalf("cells = %d, want 4", len(cells))
	}
	for _, c := range cells {
		if c.WallTime <= 0 || c.Messages <= 0 || c.Cut < 0 {
			t.Fatalf("degenerate cell %+v", c)
		}
	}
	var buf bytes.Buffer
	WriteParallelRuntime(&buf, "auto", cells)
	if !strings.Contains(buf.String(), "hypergraph") || !strings.Contains(buf.String(), "ranks") {
		t.Fatalf("report malformed:\n%s", buf.String())
	}
}
