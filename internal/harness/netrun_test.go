package harness

import (
	"context"
	"net"
	"testing"
	"time"

	"hyperbal/internal/mpi"
	"hyperbal/internal/mpinet"
)

// TestParallelRuntimeNetMatchesInProcess: the Figure 7-8 pipeline run over
// network workers must report the same model cuts and the same total
// traffic (messages, bytes, collectives — summed across ranks) as the
// in-process substrate at the same rank count.
func TestParallelRuntimeNetMatchesInProcess(t *testing.T) {
	const ranks = 3
	addrs := make([]string, ranks)
	for i := 0; i < ranks; i++ {
		ln, err := net.Listen("tcp", "127.0.0.1:0")
		if err != nil {
			t.Fatal(err)
		}
		w := mpinet.NewWorker(ln)
		go w.Serve()
		t.Cleanup(func() { w.Close() })
		addrs[i] = w.Addr()
	}

	ref, err := ParallelRuntimeWith(mpi.Options{Watchdog: time.Minute}, "xyce680s", 260, []int{ranks}, 100, 5)
	if err != nil {
		t.Fatal(err)
	}
	got, err := ParallelRuntimeNet(context.Background(), addrs, "xyce680s", 260, 100, 5,
		mpinet.Options{RecvTimeout: time.Minute})
	if err != nil {
		t.Fatal(err)
	}
	if len(got) != len(ref) {
		t.Fatalf("%d cells over mpinet, %d in-process", len(got), len(ref))
	}
	for i := range ref {
		r, g := ref[i], got[i]
		if g.Ranks != r.Ranks || g.Hypergraph != r.Hypergraph {
			t.Fatalf("cell %d shape: %+v vs %+v", i, g, r)
		}
		if g.Cut != r.Cut {
			t.Errorf("cell %d (hypergraph=%v): cut %d over mpinet, %d in-process", i, r.Hypergraph, g.Cut, r.Cut)
		}
		if g.Messages != r.Messages || g.Bytes != r.Bytes || g.Collectives != r.Collectives {
			t.Errorf("cell %d traffic: mpinet %d/%d/%d, in-process %d/%d/%d",
				i, g.Messages, g.Bytes, g.Collectives, r.Messages, r.Bytes, r.Collectives)
		}
	}
}
