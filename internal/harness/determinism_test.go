package harness

import (
	"testing"

	"hyperbal/internal/core"
	"hyperbal/internal/datasets"
	"hyperbal/internal/graph"
)

// epochTrace records everything a repartition sequence produces that the
// figures consume: the partition bytes, communication volume, and
// migration volume of every epoch.
type epochTrace struct {
	parts []int32
	comm  int64
	mig   int64
}

// runTrace plays a short balancer epoch sequence and records the full
// per-epoch outcome.
func runTrace(t *testing.T, g *graph.Graph, dynamic string, parallelism int) []epochTrace {
	t.Helper()
	cfg := Config{
		Dataset: "xyce680s", // generator selection below doesn't use it
		Dynamic: dynamic,
	}.withDefaults()
	bal, err := core.NewBalancer(core.Config{
		K: 4, Alpha: 100, Seed: 11, Method: core.HypergraphRepart,
		Parallelism: parallelism,
	})
	if err != nil {
		t.Fatal(err)
	}
	prob := core.Problem{G: g, H: graph.ToHypergraph(g)}
	static, err := bal.Partition(prob)
	if err != nil {
		t.Fatal(err)
	}
	gen, err := newGenerator(cfg, g, static.Partition, 4, 11)
	if err != nil {
		t.Fatal(err)
	}
	var out []epochTrace
	for epoch := 1; epoch <= 2; epoch++ {
		eprob, old := gen.Next()
		res, err := bal.Repartition(eprob, old, int64(epoch))
		if err != nil {
			t.Fatal(err)
		}
		if err := gen.Observe(res.Partition); err != nil {
			t.Fatal(err)
		}
		out = append(out, epochTrace{
			parts: append([]int32(nil), res.Partition.Parts...),
			comm:  res.CommVolume,
			mig:   res.MigrationVolume,
		})
	}
	return out
}

// TestBalancerParallelismDeterminism is the PR's determinism regression
// gate: on every dataset analogue and both dynamics, the full repartition
// sequence — partitions, communication volumes, migration volumes — must
// be byte-identical for Parallelism 1, 2, and 8.
func TestBalancerParallelismDeterminism(t *testing.T) {
	names := []string{"xyce680s", "2DLipid", "auto", "apoa1-10", "cage14"}
	for _, name := range names {
		for _, dynamic := range []string{"structure", "weights"} {
			t.Run(name+"/"+dynamic, func(t *testing.T) {
				g, err := datasets.Generate(name, 260, 5)
				if err != nil {
					t.Fatal(err)
				}
				ref := runTrace(t, g, dynamic, 1)
				for _, par := range []int{2, 8} {
					got := runTrace(t, g, dynamic, par)
					for e := range ref {
						if ref[e].comm != got[e].comm || ref[e].mig != got[e].mig {
							t.Fatalf("Parallelism=%d epoch %d: comm/mig %d/%d, want %d/%d",
								par, e+1, got[e].comm, got[e].mig, ref[e].comm, ref[e].mig)
						}
						for v := range ref[e].parts {
							if ref[e].parts[v] != got[e].parts[v] {
								t.Fatalf("Parallelism=%d epoch %d: partition diverges at vertex %d", par, e+1, v)
							}
						}
					}
				}
			})
		}
	}
}

// TestRunParallelismDeterminism checks the harness sweep itself: the full
// report must be cell-for-cell identical for every Parallelism value,
// including the floating-point averages.
func TestRunParallelismDeterminism(t *testing.T) {
	base := Config{
		Dataset: "2DLipid",
		ScaleV:  220,
		Dynamic: "structure",
		Procs:   []int{4},
		Alphas:  []int64{1, 100},
		Methods: []core.Method{core.HypergraphRepart, core.HypergraphScratch},
		Trials:  2,
		Epochs:  2,
		Seed:    3,
	}
	base.Parallelism = 1
	ref, err := Run(base)
	if err != nil {
		t.Fatal(err)
	}
	for _, par := range []int{2, 8} {
		cfg := base
		cfg.Parallelism = par
		got, err := Run(cfg)
		if err != nil {
			t.Fatal(err)
		}
		if len(got.Cells) != len(ref.Cells) {
			t.Fatalf("Parallelism=%d: %d cells, want %d", par, len(got.Cells), len(ref.Cells))
		}
		for i := range ref.Cells {
			r, g := ref.Cells[i], got.Cells[i]
			// RepartTime is wall clock and legitimately varies.
			r.RepartTime, g.RepartTime = 0, 0
			if r != g {
				t.Errorf("Parallelism=%d cell %d: %+v, want %+v", par, i, g, r)
			}
		}
	}
}
