package harness

import (
	"fmt"
	"io"
	"strings"

	"hyperbal/internal/core"
	"hyperbal/internal/datasets"
	"hyperbal/internal/graph"
)

// FigureNumber maps a dataset to its normalized-total-cost figure in the
// paper (Figures 2-6, sub-figure (a) structure / (b) weights).
func FigureNumber(dataset string) int {
	switch dataset {
	case "xyce680s":
		return 2
	case "2DLipid":
		return 3
	case "auto":
		return 4
	case "apoa1-10":
		return 5
	case "cage14":
		return 6
	default:
		return 0
	}
}

// WriteFigure renders the report in the shape of Figures 2-6: for every
// (procs, α) configuration, four bars (Zoltan-repart, ParMETIS-repart,
// Zoltan-scratch, ParMETIS-scratch) of normalized total cost split into
// communication (bottom) and migration/α (top).
func (r *Report) WriteFigure(w io.Writer) {
	sub := "(a) perturbed data structure"
	if r.Config.Dynamic == "weights" {
		sub = "(b) perturbed weights"
	}
	fig := FigureNumber(r.Config.Dataset)
	fmt.Fprintf(w, "Figure %d%s: %s — normalized total cost (comm + mig/α)\n",
		fig, subLetter(r.Config.Dynamic), r.Config.Dataset)
	fmt.Fprintf(w, "dynamic: %s; |V|=%d |E|=%d; trials=%d epochs=%d\n\n",
		sub, r.DatasetStats.NumVertices, r.DatasetStats.NumEdges, r.Config.Trials, r.Config.Epochs)

	// Max cost for bar scaling.
	maxCost := 0.0
	for _, c := range r.Cells {
		if c.NormalizedCost > maxCost {
			maxCost = c.NormalizedCost
		}
	}
	for _, procs := range r.Config.Procs {
		fmt.Fprintf(w, "procs = %d\n", procs)
		for _, alpha := range r.Config.Alphas {
			fmt.Fprintf(w, "  α = %-5d %-18s %12s %12s %12s  %s\n", alpha, "method", "comm", "mig/α", "total", "")
			for _, m := range r.Config.Methods {
				c := r.cell(procs, alpha, m)
				if c == nil {
					continue
				}
				bar := renderBar(c.CommVolume, c.MigOverAlpha, maxCost, 40)
				fmt.Fprintf(w, "            %-18s %12.1f %12.1f %12.1f  %s\n",
					c.Method, c.CommVolume, c.MigOverAlpha, c.NormalizedCost, bar)
			}
			if win := r.winner(procs, alpha); win != nil {
				fmt.Fprintf(w, "            -> lowest total: %s\n", win.Method)
			}
		}
		fmt.Fprintln(w)
	}
}

// WriteRuntimeFigure renders the report in the shape of Figures 7-8: run
// time per (procs, α, method).
func (r *Report) WriteRuntimeFigure(w io.Writer) {
	fmt.Fprintf(w, "Run time: %s, %s dynamic (cf. paper Figures 7-8)\n",
		r.Config.Dataset, r.Config.Dynamic)
	fmt.Fprintf(w, "|V|=%d |E|=%d; trials=%d epochs=%d\n\n",
		r.DatasetStats.NumVertices, r.DatasetStats.NumEdges, r.Config.Trials, r.Config.Epochs)
	for _, procs := range r.Config.Procs {
		fmt.Fprintf(w, "procs = %d\n", procs)
		for _, alpha := range r.Config.Alphas {
			fmt.Fprintf(w, "  α = %-6d", alpha)
			for _, m := range r.Config.Methods {
				c := r.cell(procs, alpha, m)
				if c == nil {
					continue
				}
				fmt.Fprintf(w, "  %s %8.1fms", shortName(c.Method), float64(c.RepartTime.Microseconds())/1000)
			}
			fmt.Fprintln(w)
		}
		fmt.Fprintln(w)
	}
}

func shortName(m core.Method) string {
	switch m {
	case core.HypergraphRepart:
		return "Z-rep"
	case core.HypergraphScratch:
		return "Z-scr"
	case core.GraphRepart:
		return "P-rep"
	case core.GraphScratch:
		return "P-scr"
	}
	return m.String()
}

func subLetter(dynamic string) string {
	if dynamic == "weights" {
		return "(b)"
	}
	return "(a)"
}

func (r *Report) cell(procs int, alpha int64, m core.Method) *Cell {
	for i := range r.Cells {
		c := &r.Cells[i]
		if c.Procs == procs && c.Alpha == alpha && c.Method == m {
			return c
		}
	}
	return nil
}

// winner returns the cell with the lowest normalized total cost for a
// (procs, alpha) configuration.
func (r *Report) winner(procs int, alpha int64) *Cell {
	var best *Cell
	for i := range r.Cells {
		c := &r.Cells[i]
		if c.Procs != procs || c.Alpha != alpha {
			continue
		}
		if best == nil || c.NormalizedCost < best.NormalizedCost {
			best = c
		}
	}
	return best
}

// renderBar draws a two-segment ASCII bar: '#' for communication and '+'
// for migration/α, scaled to width characters at maxCost.
func renderBar(comm, mig, maxCost float64, width int) string {
	if maxCost <= 0 {
		return ""
	}
	commW := int(comm / maxCost * float64(width))
	migW := int(mig / maxCost * float64(width))
	if commW+migW > width {
		migW = width - commW
	}
	return strings.Repeat("#", commW) + strings.Repeat("+", migW)
}

// WriteTable1 prints the dataset-analogue comparison against the paper's
// Table 1 for all registry datasets at their default scales.
func WriteTable1(w io.Writer, seed int64) error {
	fmt.Fprintf(w, "Table 1: test datasets — paper originals vs generated analogues\n\n")
	fmt.Fprintf(w, "%-10s %-16s | %10s %12s %6s %6s %8s | %8s %10s %5s %6s %8s\n",
		"name", "area", "paper |V|", "paper |E|", "min", "max", "avg",
		"gen |V|", "gen |E|", "min", "max", "avg")
	for _, info := range datasets.Registry {
		g, err := datasets.Generate(info.Name, 0, seed)
		if err != nil {
			return err
		}
		s := graph.ComputeStats(g)
		fmt.Fprintf(w, "%-10s %-16s | %10d %12d %6d %6d %8.1f | %8d %10d %5d %6d %8.1f\n",
			info.Name, info.Area, info.PaperV, info.PaperE,
			info.PaperMinDeg, info.PaperMaxDeg, info.PaperAvgDeg,
			s.NumVertices, s.NumEdges, s.MinDegree, s.MaxDegree, s.AvgDegree)
	}
	return nil
}

// ShapeChecks verifies the qualitative claims (S1-S4 in DESIGN.md) on a
// report and returns human-readable findings. Used by tests and
// EXPERIMENTS.md generation.
type ShapeChecks struct {
	// RepartWinsAtAlpha1 is true when a repartitioning method (not a
	// scratch method) has the lowest total cost at α=1 for every procs.
	RepartWinsAtAlpha1 bool
	// ScratchPaysMoreMigration is true when, at α=1, each scratch method
	// migrates more data than its repartitioning counterpart (hypergraph
	// scratch vs hypergraph repart, graph scratch vs graph repart). At
	// paper scale the scratch migration dwarfs communication outright; at
	// laptop scale the robust signal is this within-family ordering.
	ScratchPaysMoreMigration bool
	// CommConvergesAtHighAlpha is true when at the largest α every method's
	// migration/α term is below its communication term.
	CommConvergesAtHighAlpha bool
	// ZoltanRepartBeatsParmetisCells counts (procs, α) cells where
	// Zoltan-repart's total cost <= ParMETIS-repart's; Total is the cell
	// count.
	ZoltanRepartBeatsParmetisCells int
	TotalCells                     int
}

// CheckShapes evaluates the qualitative claims on the report.
func (r *Report) CheckShapes() ShapeChecks {
	out := ShapeChecks{RepartWinsAtAlpha1: true, ScratchPaysMoreMigration: true, CommConvergesAtHighAlpha: true}
	maxAlpha := int64(0)
	for _, a := range r.Config.Alphas {
		if a > maxAlpha {
			maxAlpha = a
		}
	}
	for _, procs := range r.Config.Procs {
		if win := r.winner(procs, 1); win != nil {
			if win.Method != core.HypergraphRepart && win.Method != core.GraphRepart {
				out.RepartWinsAtAlpha1 = false
			}
		}
		pairs := [][2]core.Method{
			{core.HypergraphScratch, core.HypergraphRepart},
			{core.GraphScratch, core.GraphRepart},
		}
		for _, pair := range pairs {
			scr, rep := r.cell(procs, 1, pair[0]), r.cell(procs, 1, pair[1])
			if scr != nil && rep != nil && scr.MigrationVolume < rep.MigrationVolume {
				out.ScratchPaysMoreMigration = false
			}
		}
		for _, m := range r.Config.Methods {
			if c := r.cell(procs, maxAlpha, m); c != nil && c.MigOverAlpha > c.CommVolume {
				out.CommConvergesAtHighAlpha = false
			}
		}
		for _, alpha := range r.Config.Alphas {
			z := r.cell(procs, alpha, core.HypergraphRepart)
			p := r.cell(procs, alpha, core.GraphRepart)
			if z != nil && p != nil {
				out.TotalCells++
				if z.NormalizedCost <= p.NormalizedCost*1.001 {
					out.ZoltanRepartBeatsParmetisCells++
				}
			}
		}
	}
	return out
}
