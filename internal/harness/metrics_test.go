package harness

import (
	"testing"

	"hyperbal/internal/core"
	"hyperbal/internal/obs"
)

// TestMetricsSchemas is the in-process version of the CI golden check: a
// small Figure-7 cell must populate every serial-pipeline metric named in
// fig7_schema.json, and a parallel runtime cell every SPMD/mpi metric in
// parallel_schema.json. The registry is zeroed first so the assertions are
// about these runs, not leftovers from other tests.
func TestMetricsSchemas(t *testing.T) {
	if testing.Short() {
		t.Skip("runs a full harness cell")
	}
	obs.Default().Reset()

	cfg := Config{
		Dataset: "xyce680s", Dynamic: "structure",
		Procs: []int{4}, Alphas: []int64{100},
		Trials: 1, Epochs: 2, ScaleV: 400, Seed: 1, Parallelism: 1,
		Methods: []core.Method{core.HypergraphRepart},
	}
	if _, err := Run(cfg); err != nil {
		t.Fatal(err)
	}
	schema, err := obs.ReadSchema("../obs/testdata/fig7_schema.json")
	if err != nil {
		t.Fatal(err)
	}
	if err := obs.CheckSnapshot(obs.Default().Snapshot(), schema); err != nil {
		t.Errorf("figure-7 cell: %v", err)
	}

	if _, err := ParallelRuntime("xyce680s", 400, []int{4}, 100, 1); err != nil {
		t.Fatal(err)
	}
	schema, err = obs.ReadSchema("../obs/testdata/parallel_schema.json")
	if err != nil {
		t.Fatal(err)
	}
	if err := obs.CheckSnapshot(obs.Default().Snapshot(), schema); err != nil {
		t.Errorf("parallel cell: %v", err)
	}
}
