package harness

import "hyperbal/internal/obs"

// Registry handles for the figure harness: one cell is a (procs, alpha,
// method) bar; per-epoch repartition time and volumes are recorded under
// the method label so a sweep's metrics dump breaks down exactly like the
// figure bars it produces.
var (
	obsCells  = obs.Default().Counter("harness_cells_total")
	obsEpochs = obs.Default().CounterVec("harness_epochs_total", "method")

	obsRepartNs = obs.Default().HistogramVec("harness_repart_ns", "method", obs.DurationBounds)
	obsCommVol  = obs.Default().CounterVec("harness_comm_volume_total", "method")
	obsMigVol   = obs.Default().CounterVec("harness_migration_volume_total", "method")
	obsCellErrs = obs.Default().Counter("harness_cell_errors_total")
	obsParallel = obs.Default().Counter("harness_parallel_runs_total")
)
